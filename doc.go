// Package repro is a Go reproduction of "Self-managed collections:
// Off-heap memory management for scalable query-dominated collections"
// (Nagel, Bierman, Dragojević, Viglas — EDBT 2017).
//
// The public surface lives in internal/core (the self-managed collection
// type) with the supporting subsystems in internal/mem (type-safe manual
// memory management with compaction and overflow rescue), internal/epoch
// (epoch-based reclamation), internal/offheap (GC-invisible memory),
// internal/region (query-intermediate regions) and internal/schema
// (tabular layouts). See README.md for the architecture overview,
// DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduced evaluation.
//
// # Parallel scan engine
//
// Beyond the paper, queries can fan a full-collection scan out over all
// cores (internal/mem.ParallelScan, internal/core.ParallelForEach and
// ParallelAggregate, and the Q1Par/Q6Par compiled kernels in
// internal/tpch). The block/slot-directory design makes blocks
// independent scan units, so the engine needs exactly one piece of
// shared coordination:
//
//   - One decision pass: a coordinator session snapshots the block order
//     and makes every §5.2 compaction-group pre/post decision exactly
//     once per enumeration — never per worker — pinning pre-state groups
//     and helping moving ones, which yields one resolved block list with
//     exactly-once visitation semantics.
//   - Pinned coordinator epoch: the coordinator's critical section stays
//     at the snapshot epoch (no refresh) until the scan closes, so a
//     compaction planned mid-scan can never reach its moving phase (its
//     epoch waits stall and it aborts harmlessly) and the resolved list
//     stays authoritative.
//   - N worker sessions: each worker runs in its own registered session
//     and critical section, claiming block indices from an atomic cursor
//     (work stealing), folding into per-worker partial accumulators that
//     merge after the scan.
//
// The `par` figure of cmd/smcbench (and `make bench`, which writes
// BENCH_parallel.json) sweeps the engine over 1..NumCPU workers.
//
// # Concurrent query-memory subsystem
//
// The paper's §7 unsafe-query optimization — region-allocated
// intermediates discarded wholesale — is rethought for multi-core so
// the reference-join queries scale with cores too:
//
//   - Arena leases: internal/region.ArenaPool replaces the old
//     one-arena-per-query-stream design. Every query (and every scan
//     worker of a parallel join) leases a private arena and returns it
//     when done; the pool recycles arenas under a bounded retained
//     footprint, and Arena.Reset itself decays retained chunks to the
//     previous cycle's working set, so one huge query no longer pins
//     peak memory forever. Concurrent queries on one query object never
//     share mutable region state.
//   - Partitioned region tables: internal/region.PartitionedTable
//     splits the open-addressing region table into hash partitions with
//     a deterministic partition-by-partition MergeInto, so per-worker
//     group/join state merges once, in worker order, after the scan.
//   - Parallel joins: the tpch Q3Par/Q5Par/Q10Par drivers share their
//     per-block join kernels with the serial Q3/Q5/Q10 (exactly as
//     Q1Par/Q6Par do) and ride the parallel scan engine; worker
//     sessions come from a pool keyed by the memory manager
//     (mem.Manager.LeaseSession), so small scans do not pay per-scan
//     session registration. internal/core.ParallelGroupBy exposes the
//     partial-states-then-ordered-merge pattern to typed callers.
//
// # Unified parallel query pipeline
//
// internal/query extracts the fan-out/merge/finish scaffolding those
// drivers repeated into one reusable layer, and upgrades its two serial
// bottlenecks:
//
//   - A Pipeline owns one parallel query's lifecycle: the coordinator
//     session, the worker count, and every arena leased from a
//     region.ArenaPool on the query's behalf (returned wholesale by
//     Close — the §7 region discipline, now scaffolding-free).
//   - Composable stages: Table (fan-out scan building per-worker
//     partitioned region tables), Accum (padded plain accumulators),
//     Rows (block-sharded finishing scans over dimension collections)
//     and ForEachPartition/PartitionRows (partition-sharded walks of
//     merged state). Stages feed each other: Q9's partsupp cost table —
//     a serial pre-pass before this layer — is a first Table stage whose
//     merged result the main lineitem scan probes read-only.
//   - Parallel merge: region.ParallelMergeInto folds worker tables per
//     partition in parallel under a worker-order-deterministic schedule
//     (shard goroutines own disjoint partition sets, each allocating
//     from its own arena), with destination partitions pre-sized so the
//     merge almost never grows. The finishing passes shard too.
//
// All parallel TPC-H drivers — Q1/Q6 (Accum), Q3/Q5/Q10 and the
// pipeline-native Q7/Q8/Q9 (Table + parallel finish) — are kernel +
// finish closures over this layer, sharing per-block kernels with the
// serial queries, which remain the oracle: results are byte-identical
// at every worker count. Q7–Q9's group state moved from Go-heap maps
// into region tables keyed by packed integers to get there.
// core.Runtime.StatsSnapshot surfaces the arena-pool lease/retained
// metrics and the mem session-pool hit/miss counters for production
// observability.
//
// The `joins` figure of cmd/smcbench (and `make bench-joins`, which
// writes BENCH_joins.json) sweeps Q3/Q5/Q7/Q8/Q9/Q10 over 1..NumCPU
// workers; both figure JSONs are stamped with GOMAXPROCS/NumCPU/Go
// version. examples/query_pipeline shows a custom (non-TPC-H)
// aggregation on the pipeline.
//
// # Parallel compaction engine and maintenance scheduler
//
// The §5.2 maintenance path got the same treatment as the query side:
// a compaction pass is planned exactly once (one block-order snapshot,
// one decision per compaction group, the freezing and relocation epoch
// waits unchanged and global), and the moving phase then fans the
// per-group work out over worker sessions leased from the manager's
// session pool, claimed through an atomic work-stealing cursor.
// Compaction groups are independent by construction — disjoint source
// blocks, a private target block, per-group query pins and per-group
// abort — so the pin-drain/retry/bail-out protocol runs single-owner on
// whichever worker claimed the group, and readers keep helping or
// bailing relocations exactly as they do against the serial compactor.
// The serial moving phase survives behind workers=1
// (mem.CompactNowWorkers) as the oracle the parallel engine is tested
// against.
//
// On top of it, mem.Maintainer is the §5 "dedicated compaction thread"
// grown into a background maintenance scheduler: it polls
// Manager.FragmentationSnapshot and triggers parallel passes once any
// context can form a group (and, optionally, once a configurable
// fraction of the heap is fragmented), replacing ad-hoc CompactNow
// calls. core.Runtime.StatsSnapshot surfaces the engine's counters
// (groups moved/aborted, helped moves, bail-outs, bytes reclaimed,
// pass wall time) next to the session-pool and arena-pool metrics.
//
// The `compact` figure of cmd/smcbench (and `make bench-compact`, which
// writes BENCH_compact.json) sweeps reclamation throughput and Q1/Q6
// interference over 1..NumCPU move workers, and cmd/benchdiff gates CI
// on the committed figure baselines: >30% slowdown at a matching
// (query, layout, workers=1) point fails the build, skipping cleanly
// when the meta blocks show a CPU-count mismatch.
//
// # Block synopses and predicate pushdown (skip-scan)
//
// Every block can carry per-column min/max synopses (zone maps) for
// columns the collection registers at construction
// (core.Collection.RegisterSynopses; int32/int64/date/decimal). The
// maintenance contract fits the paper's query-dominated bet — pay a
// little on mutation, never on scans:
//
//   - Widen on insert: Publish folds the new row's registered values
//     into its block's bounds with widen-only atomic CAS loops, so
//     concurrent adders need no lock.
//   - Stale-but-sound on remove: a delete leaves bounds untouched — a
//     dead row can make bounds loose, never wrong.
//   - Exact rebuild on compaction: a compaction target starts empty and
//     is filled only by moves, each widening by the moved row's values,
//     so a completed target's bounds are exactly its rows' min/max.
//     Fragmented collections get tighter bounds as the Maintainer runs.
//
// Scan-side, a mem.ScanPredicate (interval constraints per registered
// column, built via Collection.Predicate) is evaluated once per block in
// the parallel scan's coordinator decision pass — pruned blocks never
// enter the resolved block list, so workers and the work-stealing cursor
// never see them — and in the serial Enumerator beside the empty-block
// fast path. Pushdown threads through core.ParallelForEachPred /
// ParallelAggregatePred / ParallelBlocksPred and the query.Where source
// wrapper for pipeline stages; kernels keep evaluating their residual
// predicates per row, so pruning is an optimization, never a semantics
// change, and the pruned drivers (Q1/Q3/Q6/Q10 plus the pipeline-native
// Q4Par) stay byte-identical to the unpruned serial oracles. The
// allocation path also signals the Maintainer when a context crosses the
// candidate threshold (abandonAllocBlock wake-up), so compaction — and
// with it bounds re-tightening — starts without waiting out a poll tick.
//
// The `prune` figure of cmd/smcbench (and `make bench-prune`, which
// writes BENCH_prune.json) sweeps pruned vs unpruned Q6-style window
// scans over predicate selectivity × heap fragmentation (fresh /
// churned / churned-then-compacted), recording the blocks-pruned
// fraction; the JSON joins the benchdiff gate.
//
// # Cooperative scan sharing
//
// Under query-dominated load most concurrent scans re-read the same hot
// blocks, so N independent scans pay N decision passes, N snapshots and
// N trips through memory for one collection's worth of data.
// mem.ShareGroup (one per context, via Context.Share) batches compatible
// concurrent scans onto a single shared pass:
//
//   - One §5.2 decision pass and one epoch-pinned snapshot, leased from
//     the manager's session pool and held until the pass closes, exactly
//     the parallel-scan protocol amortized over every attached query.
//   - One trip through memory per block: pass workers claim block
//     indices from the shared cursor and run every attached query's
//     kernel on the claimed block before moving on.
//   - Late attach with catch-up: a query arriving inside the pass's
//     attach window (the first half of the shared list) joins mid-pass,
//     records the cursor position, receives every later block from the
//     shared walk, and covers its missed prefix with a private catch-up
//     scan under the pass's still-held epoch pin. Workers claim and
//     attachers publish under one claim lock, so every (rider, block)
//     pair runs exactly once. Pass workers yield once more while riders
//     are still boarding, so a burst of queries arriving together shares
//     one pass even on a single-P runtime.
//   - Per-query pruning composes: each rider keeps its own synopsis
//     admit bitmap and its kernel's residual predicate; blocks the
//     leader's predicate pruned out of the shared walk are covered by
//     the rider's catch-up. Compatibility is therefore structural (same
//     collection, any predicates), not predicate-equality.
//   - The PR 6 error model holds per rider: cancelling one query's
//     context detaches that rider alone (as does its kernel erroring or
//     returning ErrStopScan), a kernel panic poisons the whole pass with
//     mem.ErrWorkerPanic for every attached query, and
//     fault.PointShareAttach lets the robustness suites fail attachment
//     itself. Queries past the attach window fall back to private scans.
//
// core.Collection.SharedBlocksPredCtx and the query.Shared source
// wrapper route pipeline Accum drivers through the share group
// (tpch.Q6WindowSharedCtx is the reference user); a single attached
// query is result- and counter-identical to its private scan.
// StatsSnapshot surfaces SharedPasses / AttachedQueries / CatchUpBlocks
// / Detaches. The `share` figure of cmd/smcbench (and `make
// bench-share`, which writes BENCH_share.json) measures shared vs
// independent batches of 1/8/64/512 concurrent Q6-style window queries
// — sums asserted identical, physical block visits recorded (the shared
// batch stays ~1× one query's visits) — and the JSON joins the
// benchdiff gate.
//
// # Clustering & cross-edge pruning
//
// Synopsis pruning decays under churn: upsert-style workloads re-add
// rows into reclaimed slots heap-wide, so every block's widen-only
// bounds creep toward the whole key domain and a compacted heap stops
// skipping. Two mechanisms turn the decay back into a steady-state
// guarantee:
//
//   - Clustered compaction: core.Collection.RegisterClusterKey names a
//     registered synopsis column as the compaction sort key; under
//     Options.CompactionPacking == core.PackCluster the planner sorts
//     candidate blocks by their (stale-but-sound) bound ranges, bins
//     key-adjacent runs into multi-target groups spanning up to 32
//     targets' worth of rows, and the freeze phase deals each group's
//     rows key-sorted across consecutive targets — every rebuilt block
//     is one tight key-quantile slice. The synopsis contract
//     (widen-on-insert, stale-on-remove, exact-on-rebuild) is
//     untouched: clustering only changes which rows land together.
//     Candidacy is synopsis-aware too: balanced churn refills holes in
//     place, so full-but-bounds-stale blocks (span over 8x their fair
//     share of the occupied domain) are rewritten even though their
//     occupancy never crosses the threshold — without this, a single
//     churn cycle after the first pass would erase the guarantee while
//     the planner saw no work. PackSize and PackOrder survive as the
//     packing oracles (Options.CompactionPacking).
//   - Cross-edge semi-join pruning: a pipeline's first Table stage
//     already computes which dimension keys qualify (e.g. Q3's
//     qualifying orders); a query.Keys stage distills them into
//     a mem.KeySetPredicate (sorted coalesced key ranges), and the
//     probe-side scan evaluates it per block against the foreign-key
//     column's bounds — blocks whose key range misses every qualifying
//     run are pruned before any worker touches them. Q3Par/Q4Par/
//     Q10Par ride it; kernels keep their residual probes, so rows stay
//     byte-identical to the serial oracles. Effectiveness tracks
//     key-date correlation (auto-increment OLTP feeds prune, dbgen's
//     random orderkey mapping does not), which the cluster figure
//     models by re-keying orders in date order. StatsSnapshot surfaces
//     SynopsisOverlap (key-set admissions) and KeySetPruned.
//
// The `cluster` figure of cmd/smcbench (and `make bench-cluster`, which
// writes BENCH_cluster.json) runs churn cycles against clustered vs
// size-only maintenance — pruned fraction of a 1%-selectivity window
// stays >= 0.90 after one clustered pass — plus the Q3/Q10 cross-edge
// speedups on a date-correlated heap; the JSON joins the benchdiff
// gate.
//
// # Serving
//
// internal/serve and cmd/smcserve put an HTTP front door on the
// engine: the query-dominated collection as a service, every layer
// above reachable from curl. Endpoints: POST /query/{q1,q3,q6,
// q6window,q10} take typed JSON params (`{}` selects the TPC-H
// validation defaults; ?workers=N&timeout_ms=M ride the query string),
// POST /query/q6window/rows streams qualifying rows as chunked NDJSON
// with an integrity trailer ({"done":true,"rows":N} — its absence
// means the stream died), GET /queries publishes each endpoint's
// request/response contract, GET /stats serves
// core.Runtime.StatsSnapshot and GET /healthz gates readiness on the
// Maintainer running. Wire contracts are derived from the Go param/
// response structs by internal/schema's JSON-schema deriver at
// registration time — the same derive-from-the-type, fail-at-
// construction move the tabular Schema makes for off-heap layouts —
// and dates/decimals travel as formatted strings, never JSON numbers.
//
// A request's context flows straight into the engine (query.NewCtx via
// the *ParCtx drivers), so client disconnects and per-request
// deadlines cancel at block-claim granularity; concurrent q6window
// requests ride the cooperative scan-share group. Admission is a
// bounded-wait slot gate in front of the session pool: a full server
// answers 429 (Retry-After) after Config.AdmitWait instead of piling
// goroutines onto LeaseSession, and mem.Budget.Admit fails typed
// within its bounded wait even under a long request deadline. The
// error model maps engine outcomes to statuses: serve.ErrSaturated →
// 429, mem.ErrBudgetExceeded → 503 (both with Retry-After),
// context.DeadlineExceeded → 504, client-canceled → 499, validation →
// 400; every error body is one serve.ErrorEnvelope. The admission
// counters (requests/admitted/saturated/canceled/in-flight) surface
// through StatsSnapshot.Serve, and the storm test plus
// scripts/serve_smoke.sh assert the ledgers balance after canceled and
// rejected requests — a dead client strands no session, arena or
// epoch pin.
//
// The `serve` figure of cmd/smcbench (and `make bench-serve`, which
// writes BENCH_serve.json) drives the served q6window path with
// 1/8/64/512 concurrent HTTP clients — every response sum asserted
// identical to the serial oracle — reporting p50/p99/qps; the JSON
// joins the benchdiff gate on the low-concurrency medians.
//
// # Memory governance
//
// Runtime.SetMemoryBudget had a narrow meaning — a cap on block-heap
// reservations — while three other consumers grew beside it: parked
// arenas in the region pools, idle pooled sessions pinning their
// allocation blocks, and per-block synopses. mem.Governor makes the
// budget mean one thing process-wide: the governed total is heap +
// retained arenas + synopses (pinned session bytes are reported, not
// double counted — they live inside the heap term), and admission
// (query.NewCtx via Budget.Admit) is charged against that total.
//
// Pressure is a level, not a flag: healthy below 75% of the limit,
// tight at 75%, critical at 90%. Under pressure a rebalance pass —
// piggybacked on the Maintainer's tick and on allocation-side reclaim
// waits, single-flight, never a dedicated thread — walks a fixed
// degradation ladder, cheapest reclamation first:
//
//  1. Shrink the arena pools' retained footprint (halve the retain
//     bound when tight, zero it when critical) and TrimTo the parked
//     arenas under the new bound — idle memory nobody is using.
//  2. Trim the idle session pool (to a quarter when tight, empty when
//     critical), closing sessions whose allocation blocks would
//     otherwise stay pinned against compaction.
//  3. Wake the Maintainer (only when a pass actually freed something —
//     trimmed sessions abandon blocks, new compaction candidates), so
//     compaction-for-reclamation starts without waiting out a poll
//     tick.
//  4. Queue admissions: Budget.Admit's bounded wait scales with the
//     level (1x/2x/4x AdmitWait), buying the ladder time to reclaim
//     before anyone is refused.
//  5. Only then fail typed: mem.ErrBudgetExceeded, never an OOM.
//
// When pressure clears, the pass restores the base bounds and the
// pools refill on demand. Every rung is counted (GovernorSnapshot:
// rebalances, restores, transitions, arena bytes freed, sessions
// trimmed) and surfaced through StatsSnapshot.Governor and /stats; the
// reclaim rate feeds an EWMA whose deficit/rate quotient becomes the
// Retry-After on 429/503 responses, clamped to [1s, 30s]. /healthz
// stays 200 under pressure — degraded-but-serving, with the level in
// the body — and 503 only when the Maintainer is down; serve admission
// adds optional per-client-class quotas (X-Client-Class against
// Config.ClassQuotas) so one class saturates before starving the rest.
// fault.PointGovernRebalance and PointGovernPressure let the
// robustness suites abort rebalance passes and count transitions; the
// storm test runs 1000 pressure/churn/trim cycles under -race and
// asserts the byte ledgers balance to the block.
//
// The `govern` figure of cmd/smcbench (and `make bench-govern`, which
// writes BENCH_govern.json) sweeps the served q6window path at budgets
// of unbounded/2x/1.25x/0.9x the measured working set: p50/p99,
// rejected fraction, and the ladder counters per step — zero OOMs,
// every refusal a typed 503 with a reclaim-derived Retry-After, and
// arenas/sessions demonstrably shrink before the first admission
// fails; the JSON joins the benchdiff gate.
package repro
