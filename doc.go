// Package repro is a Go reproduction of "Self-managed collections:
// Off-heap memory management for scalable query-dominated collections"
// (Nagel, Bierman, Dragojević, Viglas — EDBT 2017).
//
// The public surface lives in internal/core (the self-managed collection
// type) with the supporting subsystems in internal/mem (type-safe manual
// memory management with compaction and overflow rescue), internal/epoch
// (epoch-based reclamation), internal/offheap (GC-invisible memory),
// internal/region (query-intermediate regions) and internal/schema
// (tabular layouts). See README.md for the architecture overview,
// DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduced evaluation.
package repro
