// Package repro is a Go reproduction of "Self-managed collections:
// Off-heap memory management for scalable query-dominated collections"
// (Nagel, Bierman, Dragojević, Viglas — EDBT 2017).
//
// The public surface lives in internal/core (the self-managed collection
// type) with the supporting subsystems in internal/mem (type-safe manual
// memory management with compaction and overflow rescue), internal/epoch
// (epoch-based reclamation), internal/offheap (GC-invisible memory),
// internal/region (query-intermediate regions) and internal/schema
// (tabular layouts). See README.md for the architecture overview,
// DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduced evaluation.
//
// # Parallel scan engine
//
// Beyond the paper, queries can fan a full-collection scan out over all
// cores (internal/mem.ParallelScan, internal/core.ParallelForEach and
// ParallelAggregate, and the Q1Par/Q6Par compiled kernels in
// internal/tpch). The block/slot-directory design makes blocks
// independent scan units, so the engine needs exactly one piece of
// shared coordination:
//
//   - One decision pass: a coordinator session snapshots the block order
//     and makes every §5.2 compaction-group pre/post decision exactly
//     once per enumeration — never per worker — pinning pre-state groups
//     and helping moving ones, which yields one resolved block list with
//     exactly-once visitation semantics.
//   - Pinned coordinator epoch: the coordinator's critical section stays
//     at the snapshot epoch (no refresh) until the scan closes, so a
//     compaction planned mid-scan can never reach its moving phase (its
//     epoch waits stall and it aborts harmlessly) and the resolved list
//     stays authoritative.
//   - N worker sessions: each worker runs in its own registered session
//     and critical section, claiming block indices from an atomic cursor
//     (work stealing), folding into per-worker partial accumulators that
//     merge after the scan.
//
// The `par` figure of cmd/smcbench (and `make bench`, which writes
// BENCH_parallel.json) sweeps the engine over 1..NumCPU workers.
package repro
