// Package repro is a Go reproduction of "Self-managed collections:
// Off-heap memory management for scalable query-dominated collections"
// (Nagel, Bierman, Dragojević, Viglas — EDBT 2017).
//
// The public surface lives in internal/core (the self-managed collection
// type) with the supporting subsystems in internal/mem (type-safe manual
// memory management with compaction and overflow rescue), internal/epoch
// (epoch-based reclamation), internal/offheap (GC-invisible memory),
// internal/region (query-intermediate regions) and internal/schema
// (tabular layouts). See README.md for the architecture overview,
// DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduced evaluation.
//
// # Parallel scan engine
//
// Beyond the paper, queries can fan a full-collection scan out over all
// cores (internal/mem.ParallelScan, internal/core.ParallelForEach and
// ParallelAggregate, and the Q1Par/Q6Par compiled kernels in
// internal/tpch). The block/slot-directory design makes blocks
// independent scan units, so the engine needs exactly one piece of
// shared coordination:
//
//   - One decision pass: a coordinator session snapshots the block order
//     and makes every §5.2 compaction-group pre/post decision exactly
//     once per enumeration — never per worker — pinning pre-state groups
//     and helping moving ones, which yields one resolved block list with
//     exactly-once visitation semantics.
//   - Pinned coordinator epoch: the coordinator's critical section stays
//     at the snapshot epoch (no refresh) until the scan closes, so a
//     compaction planned mid-scan can never reach its moving phase (its
//     epoch waits stall and it aborts harmlessly) and the resolved list
//     stays authoritative.
//   - N worker sessions: each worker runs in its own registered session
//     and critical section, claiming block indices from an atomic cursor
//     (work stealing), folding into per-worker partial accumulators that
//     merge after the scan.
//
// The `par` figure of cmd/smcbench (and `make bench`, which writes
// BENCH_parallel.json) sweeps the engine over 1..NumCPU workers.
//
// # Concurrent query-memory subsystem
//
// The paper's §7 unsafe-query optimization — region-allocated
// intermediates discarded wholesale — is rethought for multi-core so
// the reference-join queries scale with cores too:
//
//   - Arena leases: internal/region.ArenaPool replaces the old
//     one-arena-per-query-stream design. Every query (and every scan
//     worker of a parallel join) leases a private arena and returns it
//     when done; the pool recycles arenas under a bounded retained
//     footprint, and Arena.Reset itself decays retained chunks to the
//     previous cycle's working set, so one huge query no longer pins
//     peak memory forever. Concurrent queries on one query object never
//     share mutable region state.
//   - Partitioned region tables: internal/region.PartitionedTable
//     splits the open-addressing region table into hash partitions with
//     a deterministic partition-by-partition MergeInto, so per-worker
//     group/join state merges once, in worker order, after the scan.
//   - Parallel joins: the tpch Q3Par/Q5Par/Q10Par drivers share their
//     per-block join kernels with the serial Q3/Q5/Q10 (exactly as
//     Q1Par/Q6Par do) and ride the parallel scan engine; worker
//     sessions come from a pool keyed by the memory manager
//     (mem.Manager.LeaseSession), so small scans do not pay per-scan
//     session registration. internal/core.ParallelGroupBy exposes the
//     partial-states-then-ordered-merge pattern to typed callers.
//
// The `joins` figure of cmd/smcbench (and `make bench-joins`, which
// writes BENCH_joins.json) sweeps Q3/Q5/Q10 over 1..NumCPU workers.
package repro
