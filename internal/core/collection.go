package core

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"unsafe"

	"repro/internal/mem"
	"repro/internal/schema"
	"repro/internal/types"
)

// Collection is a self-managed collection of tabular objects of type T.
//
// The collection owns its objects' memory: Add allocates a slot in the
// collection's private memory context and constructs the object there;
// Remove frees it and nulls all references (§2). T must be a tabular
// struct (validated at construction); reference fields use Ref[U] and
// require the referenced collection to exist first, mirroring the static
// knowledge the paper's compiler has about inter-collection references.
type Collection[T any] struct {
	rt     *Runtime
	ctx    *mem.Context
	sch    *schema.Schema
	name   string
	layout Layout

	// refPlan[i] describes the i-th schema field of Kind Ref.
	refPlan map[int]*refBinding

	// copyPlan is the precompiled marshalling program: contiguous scalar
	// fields whose Go-struct and slot offsets advance in lockstep are
	// coalesced into single block copies; strings and refs get their own
	// ops. Only used for row layouts (columnar copies per field).
	copyPlan []copyOp

	count atomic.Int64
}

type copyOpKind uint8

const (
	opBlock copyOpKind = iota // memmove size bytes
	opString
	opRef
)

type copyOp struct {
	kind     copyOpKind
	goOff    uintptr
	slotOff  uintptr
	size     uintptr
	fieldIdx int
}

// buildCopyPlan coalesces scalar runs. Schema layout follows Go's field
// order and alignment rules, so scalar offsets advance in lockstep until
// a string (16-byte Go header vs 8-byte StrRef) or a ref breaks the run.
func buildCopyPlan(sch *schema.Schema) []copyOp {
	var plan []copyOp
	for i := range sch.Fields {
		f := &sch.Fields[i]
		switch f.Kind {
		case schema.String:
			plan = append(plan, copyOp{kind: opString, goOff: f.GoOffset, slotOff: f.Offset, fieldIdx: i})
		case schema.Ref:
			plan = append(plan, copyOp{kind: opRef, goOff: f.GoOffset, slotOff: f.Offset, fieldIdx: i})
		default:
			sz := f.Kind.Size()
			if n := len(plan); n > 0 && plan[n-1].kind == opBlock &&
				plan[n-1].goOff+plan[n-1].size == f.GoOffset &&
				plan[n-1].slotOff+plan[n-1].size == f.Offset {
				plan[n-1].size += sz
				continue
			}
			plan = append(plan, copyOp{kind: opBlock, goOff: f.GoOffset, slotOff: f.Offset, size: sz})
		}
	}
	return plan
}

// refBinding wires a Ref field to its target context and encoding.
type refBinding struct {
	field *schema.Field
	src   *mem.Context
	// target is the referenced collection's context; nil while unbound
	// (the target collection does not exist yet). An unbound field can
	// only ever hold null references — references are minted by the
	// target collection's Add — so late binding is always sound.
	target *mem.Context
	// direct is true when the field stores a raw {addr,inc} direct
	// pointer (§6) because the target collection uses RowDirect layout.
	direct bool
}

func (b *refBinding) bind(target *mem.Context) {
	b.target = target
	b.direct = target.Layout() == mem.RowDirect
	target.RegisterRefEdge(b.src, b.field.Index, b.direct)
}

// NewCollection creates a collection named name over element type T.
// Collections referenced by T's Ref fields must already exist in the
// runtime (create collections in dependency order).
func NewCollection[T any](rt *Runtime, name string, layout Layout) (*Collection[T], error) {
	sch, err := schema.Of[T]()
	if err != nil {
		return nil, err
	}
	ctx, err := rt.mgr.NewContext(name, sch, layout)
	if err != nil {
		return nil, err
	}
	c := &Collection[T]{
		rt:      rt,
		ctx:     ctx,
		sch:     sch,
		name:    name,
		layout:  layout,
		refPlan: make(map[int]*refBinding),
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, fi := range sch.RefFields {
		f := &sch.Fields[fi]
		b := &refBinding{field: f, src: ctx}
		var target *mem.Context
		for _, nc := range rt.colls {
			if nc.ctx.Schema().GoType == f.Target {
				if target != nil {
					return nil, fmt.Errorf("core: ref field %s.%s target type %v is ambiguous (multiple collections)", name, f.Name, f.Target)
				}
				target = nc.ctx
			}
		}
		if f.Target == sch.GoType {
			target = ctx // self-reference
		}
		if target != nil {
			b.bind(target)
		} else {
			// Unbound: references to a collection that does not exist
			// cannot exist either, so defer binding until the target
			// collection is created (rt.lateBind below).
			rt.pending = append(rt.pending, b)
		}
		c.refPlan[fi] = b
	}
	// Late-bind any previously created collections whose ref fields were
	// waiting for this element type.
	remaining := rt.pending[:0]
	for _, b := range rt.pending {
		if b.field.Target == sch.GoType {
			b.bind(ctx)
			continue
		}
		remaining = append(remaining, b)
	}
	rt.pending = remaining
	rt.colls = append(rt.colls, namedColl{name, ctx})
	if layout != mem.Columnar {
		c.copyPlan = buildCopyPlan(sch)
	}
	return c, nil
}

// MustCollection is NewCollection, panicking on error.
func MustCollection[T any](rt *Runtime, name string, layout Layout) *Collection[T] {
	c, err := NewCollection[T](rt, name, layout)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the collection name.
func (c *Collection[T]) Name() string { return c.name }

// Schema returns the element schema.
func (c *Collection[T]) Schema() *schema.Schema { return c.sch }

// Context exposes the memory context for compiled query code.
func (c *Collection[T]) Context() *mem.Context { return c.ctx }

// LayoutKind returns the storage layout.
func (c *Collection[T]) LayoutKind() Layout { return c.layout }

// Len returns the number of objects currently in the collection.
func (c *Collection[T]) Len() int { return int(c.count.Load()) }

// MemoryBytes reports the collection's off-heap footprint.
func (c *Collection[T]) MemoryBytes() int64 { return c.ctx.MemoryBytes() }

// Add allocates, constructs and publishes a new object whose fields are
// copied from v, returning a reference to it ("The collection's Add
// method allocates memory for the object, calls the object's constructor,
// adds the object to the collection and returns a reference", §2).
func (c *Collection[T]) Add(s *Session, v *T) (Ref[T], error) {
	ref, obj, err := c.ctx.Alloc(s.ms)
	if err != nil {
		return Ref[T]{}, err
	}
	if err := c.marshal(s, obj, v); err != nil {
		return Ref[T]{}, err
	}
	c.ctx.Publish(s.ms, obj)
	c.count.Add(1)
	return Ref[T]{R: ref}, nil
}

// MustAdd is Add, panicking on error (examples and loaders).
func (c *Collection[T]) MustAdd(s *Session, v *T) Ref[T] {
	r, err := c.Add(s, v)
	if err != nil {
		panic(err)
	}
	return r
}

// Remove frees the object: its slot enters limbo, the incarnation bumps,
// and all references to it become null (§2, §3.5).
func (c *Collection[T]) Remove(s *Session, r Ref[T]) error {
	s.Enter()
	defer s.Exit()
	if err := c.ctx.Remove(s.ms, r.R); err != nil {
		return err
	}
	c.count.Add(-1)
	return nil
}

// Get copies the object out of the collection. Returns ErrNullReference
// if the object was removed.
func (c *Collection[T]) Get(s *Session, r Ref[T]) (T, error) {
	var out T
	s.Enter()
	defer s.Exit()
	obj, err := c.ctx.Deref(s.ms, r.R)
	if err != nil {
		return out, err
	}
	c.unmarshal(s, obj, &out)
	return out, nil
}

// Deref resolves a reference to its raw object location for compiled
// query code. Must be called inside a critical section.
func (c *Collection[T]) Deref(s *Session, r Ref[T]) (mem.Obj, error) {
	return c.ctx.Deref(s.ms, r.R)
}

// Enumerate returns a block enumerator for compiled queries. The session
// must be inside a critical section for the enumeration's lifetime.
func (c *Collection[T]) Enumerate(s *Session) *mem.Enumerator {
	return c.ctx.NewEnumerator(s.ms)
}

// EnumeratePred is Enumerate with a scan predicate: blocks whose synopsis
// bounds cannot intersect pred are skipped beside the empty-block fast
// path. Callers keep evaluating their full per-row predicate — pruning is
// sound, not exact.
func (c *Collection[T]) EnumeratePred(s *Session, pred *mem.ScanPredicate) *mem.Enumerator {
	return c.ctx.NewEnumeratorPred(s.ms, pred)
}

// EnumerateCtx is Enumerate bound to a context: NextBlock observes
// cancellation at block granularity and the enumerator's Err reports the
// cancellation cause. A Background context adds no per-block overhead.
func (c *Collection[T]) EnumerateCtx(cctx context.Context, s *Session) *mem.Enumerator {
	return c.ctx.NewEnumeratorCtx(cctx, s.ms)
}

// EnumeratePredCtx is EnumeratePred bound to a context (see EnumerateCtx).
func (c *Collection[T]) EnumeratePredCtx(cctx context.Context, s *Session, pred *mem.ScanPredicate) *mem.Enumerator {
	return c.ctx.NewEnumeratorPredCtx(cctx, s.ms, pred)
}

// RegisterSynopses declares per-block min/max synopses for the named
// columns (int32, int64, date or decimal fields), enabling predicate
// pushdown on scans of this collection. Must be called before the first
// Add — register at collection-construction time, the way reference
// edges are (the paper's compiler would derive this from the query
// workload; here the application declares it).
func (c *Collection[T]) RegisterSynopses(names ...string) error {
	return c.ctx.RegisterSynopses(names...)
}

// MustRegisterSynopses is RegisterSynopses, panicking on error.
func (c *Collection[T]) MustRegisterSynopses(names ...string) {
	if err := c.ctx.RegisterSynopses(names...); err != nil {
		panic(err)
	}
}

// RegisterClusterKey names one registered synopsis column as the
// collection's compaction sort key: under Options.CompactionPacking ==
// PackCluster, compaction groups form over key-adjacent blocks and
// targets are rebuilt in key order, so the collection's synopsis bounds
// recover to tight, near-disjoint ranges at every maintenance pass
// instead of by accident. Register the synopsis first (RegisterSynopses);
// without PackCluster the registration is inert.
func (c *Collection[T]) RegisterClusterKey(name string) error {
	return c.ctx.RegisterClusterKey(name)
}

// MustRegisterClusterKey is RegisterClusterKey, panicking on error.
func (c *Collection[T]) MustRegisterClusterKey(name string) {
	if err := c.ctx.RegisterClusterKey(name); err != nil {
		panic(err)
	}
}

// Predicate starts a scan predicate over the collection's registered
// synopsis columns; chain the *Range methods and pass it to the *Pred
// scan variants (or query.Where).
func (c *Collection[T]) Predicate() *mem.ScanPredicate {
	return c.ctx.Predicate()
}

// ForEach invokes fn with a reference and a copy of every object, inside
// one critical section per block (§4). fn returning false stops early.
func (c *Collection[T]) ForEach(s *Session, fn func(Ref[T], *T) bool) {
	var tmp T
	c.ctx.ForEachValid(s.ms, func(b *mem.Block, slot int) bool {
		obj := mem.Obj{Blk: b, Slot: slot}
		if c.layout != mem.Columnar {
			obj.Ptr = b.SlotData(slot)
		}
		c.unmarshal(s, obj, &tmp)
		return fn(Ref[T]{R: c.ctx.MakeRef(b, slot)}, &tmp)
	})
}

// marshal copies a Go struct into an off-heap slot.
func (c *Collection[T]) marshal(s *Session, obj mem.Obj, v *T) error {
	base := unsafe.Pointer(v)
	if c.copyPlan != nil {
		slot := obj.Ptr
		for i := range c.copyPlan {
			op := &c.copyPlan[i]
			src := unsafe.Add(base, op.goOff)
			dst := unsafe.Add(slot, op.slotOff)
			switch op.kind {
			case opBlock:
				copy(unsafe.Slice((*byte)(dst), op.size), unsafe.Slice((*byte)(src), op.size))
			case opString:
				sr, err := c.ctx.AllocString(s.ms, *(*string)(src))
				if err != nil {
					return err
				}
				*(*types.StrRef)(dst) = sr
			case opRef:
				c.marshalRef(op.fieldIdx, src, dst)
			}
		}
		return nil
	}
	for i := range c.sch.Fields {
		f := &c.sch.Fields[i]
		src := unsafe.Add(base, f.GoOffset)
		dst := obj.Blk.FieldPtr(obj.Slot, f)
		switch f.Kind {
		case schema.Bool:
			*(*bool)(dst) = *(*bool)(src)
		case schema.Int32, schema.Date:
			*(*int32)(dst) = *(*int32)(src)
		case schema.Int64:
			*(*int64)(dst) = *(*int64)(src)
		case schema.Float64:
			*(*float64)(dst) = *(*float64)(src)
		case schema.Decimal:
			*(*[2]uint64)(dst) = *(*[2]uint64)(src)
		case schema.String:
			sr, err := c.ctx.AllocString(s.ms, *(*string)(src))
			if err != nil {
				return err
			}
			*(*types.StrRef)(dst) = sr
		case schema.Ref:
			c.marshalRef(i, src, dst)
		}
	}
	return nil
}

// marshalRef encodes a reference field: raw direct pointer for RowDirect
// targets (§6), the 16-byte indirect reference otherwise.
func (c *Collection[T]) marshalRef(fieldIdx int, src, dst unsafe.Pointer) {
	b := c.refPlan[fieldIdx]
	r := *(*types.Ref)(src)
	if !b.direct {
		// Indirect encoding; also the only possibility while unbound
		// (an unbound field can only carry null references).
		*(*types.Ref)(dst) = r
		return
	}
	if r.IsNil() {
		*(*uint64)(dst) = 0
		*(*uint64)(unsafe.Add(dst, 8)) = 0
		return
	}
	addr, inc := mem.DirectWord(r)
	*(*uint64)(dst) = addr
	*(*uint32)(unsafe.Add(dst, 8)) = inc
	*(*uint32)(unsafe.Add(dst, 12)) = 0
}

// unmarshal copies an off-heap slot into a Go struct.
func (c *Collection[T]) unmarshal(s *Session, obj mem.Obj, v *T) {
	base := unsafe.Pointer(v)
	for i := range c.sch.Fields {
		f := &c.sch.Fields[i]
		dst := unsafe.Add(base, f.GoOffset)
		src := obj.Field(f)
		switch f.Kind {
		case schema.Bool:
			*(*bool)(dst) = *(*bool)(src)
		case schema.Int32, schema.Date:
			*(*int32)(dst) = *(*int32)(src)
		case schema.Int64:
			*(*int64)(dst) = *(*int64)(src)
		case schema.Float64:
			*(*float64)(dst) = *(*float64)(src)
		case schema.Decimal:
			*(*[2]uint64)(dst) = *(*[2]uint64)(src)
		case schema.String:
			*(*string)(dst) = (*(*types.StrRef)(src)).String()
		case schema.Ref:
			b := c.refPlan[i]
			if !b.direct {
				*(*types.Ref)(dst) = *(*types.Ref)(src)
				continue
			}
			addr := *(*uint64)(src)
			inc := *(*uint32)(unsafe.Add(src, 8))
			*(*types.Ref)(dst) = mem.RefFromDirect(b.target, addr, inc)
		}
	}
}

// SetCoalescedCopy toggles the coalesced marshalling plan (DESIGN.md:
// scalar field runs are copied with single memmoves). It exists for the
// ablation harness — production code leaves coalescing on. No effect on
// columnar collections, which always marshal per field.
func (c *Collection[T]) SetCoalescedCopy(enabled bool) {
	if c.layout == mem.Columnar {
		return
	}
	if enabled {
		c.copyPlan = buildCopyPlan(c.sch)
	} else {
		c.copyPlan = nil
	}
}

// FieldRef is a pre-resolved handle for dereferencing an in-object
// reference field during query processing; compiled queries hoist one per
// join edge ("most joins are performed using references", §7).
type FieldRef struct {
	Field  *schema.Field
	Target *mem.Context
	Direct bool
}

// FieldRefByName builds a FieldRef for the named Ref field.
func (c *Collection[T]) FieldRefByName(name string) FieldRef {
	f := c.sch.MustField(name)
	b, ok := c.refPlan[f.Index]
	if !ok {
		panic(fmt.Sprintf("core: %s.%s is not a reference field", c.name, name))
	}
	if b.target == nil {
		panic(fmt.Sprintf("core: %s.%s references %v, but no such collection exists", c.name, name, f.Target))
	}
	return FieldRef{Field: f, Target: b.target, Direct: b.direct}
}

// Deref follows the reference stored in obj's field into the target
// collection, returning the target object's location. Must run inside a
// critical section. Direct pointers found stale after a relocation are
// fixed up in place (§6).
func (fr FieldRef) Deref(s *Session, obj mem.Obj) (mem.Obj, error) {
	fp := obj.Field(fr.Field)
	if !fr.Direct {
		r := *(*types.Ref)(fp)
		return fr.Target.Deref(s.ms, r)
	}
	addr := atomic.LoadUint64((*uint64)(fp))
	if addr == 0 {
		return mem.Obj{}, ErrNullReference
	}
	inc := *(*uint32)(unsafe.Add(fp, 8))
	p, err := fr.Target.DerefDirect(s.ms, types.LaunderAddr(uintptr(addr)), inc)
	if err != nil {
		return mem.Obj{}, err
	}
	if uint64(uintptr(p)) != addr {
		// Tombstone chased: update the stored pointer for future
		// accesses, as the paper's generated code does.
		atomic.StoreUint64((*uint64)(fp), uint64(uintptr(p)))
	}
	return mem.Obj{Ptr: p}, nil
}

// RefOf reconstructs a typed reference from an enumeration position.
func (c *Collection[T]) RefOf(b *mem.Block, slot int) Ref[T] {
	return Ref[T]{R: c.ctx.MakeRef(b, slot)}
}

var _ types.RefTyped = Ref[struct{ X int32 }]{}

var _ = reflect.TypeOf // keep reflect import for RefTargetType
