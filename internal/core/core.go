// Package core implements self-managed collections (SMCs), the paper's
// primary contribution: a collection type whose objects live in private
// off-heap memory excluded from garbage collection, owned by the
// collection itself (§2, §4).
//
// Semantics (§2):
//
//   - Objects are created by Add and destroyed by Remove; the collection
//     determines object lifetime ("object containment is inspired by
//     database tables").
//   - After Remove, every reference to the object implicitly becomes
//     null; dereferencing yields ErrNullReference.
//   - Enumeration has bag semantics and proceeds in memory order over
//     the collection's private blocks, which is what gives compiled
//     queries their locality (§4).
//   - Element types must be *tabular*: fixed-size fields, strings (owned
//     by the object) and references to other collections only. The check
//     runs at collection construction via internal/schema.
//
// Three storage layouts mirror the paper: the indirect baseline (§3),
// direct pointers between collections (§6), and columnar storage (§4.1).
//
// The manual memory manager underneath is internal/mem; sessions and
// critical sections come from internal/epoch via mem.Session.
package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/types"
)

// ErrNullReference is re-exported for callers of Get/Remove/Deref.
var ErrNullReference = mem.ErrNullReference

// Runtime owns the memory manager shared by a set of collections: the
// indirection table, epoch machinery, block registry and compactor. It
// stands in for the paper's modified managed runtime (§2: "our collection
// types require a deeper integration with the managed runtime").
type Runtime struct {
	mgr *mem.Manager

	mu      sync.Mutex
	colls   []namedColl
	pools   []namedPool   // arena pools registered for stats (stats.go)
	server  ServeMetrics  // front-door admission counters (stats.go)
	pending []*refBinding // ref fields awaiting their target collection
}

type namedColl struct {
	name string
	ctx  *mem.Context
}

type namedPool struct {
	name string
	p    PoolMetrics
}

// Options configures a Runtime; zero values select the defaults
// documented on mem.Config.
type Options struct {
	// BlockSize is the memory-block size (power of two, default 256 KiB).
	BlockSize int
	// ReclaimThreshold is the limbo fraction that queues a block for
	// reclamation (default 5%, the paper's choice after Figure 6).
	ReclaimThreshold float64
	// CompactionThreshold is the occupancy below which blocks join
	// compaction groups (default 30%, §5.2).
	CompactionThreshold float64
	// CompactionWorkers is the default move-phase worker count for
	// compaction passes (default GOMAXPROCS; 1 = serial oracle path).
	CompactionWorkers int
	// CompactionPacking selects how compaction candidates are binned
	// into groups: PackSize (default, first-fit decreasing), PackOrder
	// (historical block-order oracle) or PackCluster (synopsis-clustered
	// compaction; pair with Collection.RegisterClusterKey).
	CompactionPacking mem.PackingMode
	// MemoryBudget caps the off-heap bytes the runtime's block heap may
	// hold (0 = unlimited). Allocations over the cap first wake the
	// maintainer to reclaim, then backpressure briefly, then fail with
	// mem.ErrBudgetExceeded; query admission (query.NewCtx) waits under
	// the same budget.
	MemoryBudget int64
	// HeapBackend forces the portable off-heap backend (tests).
	HeapBackend bool
}

// NewRuntime creates a runtime.
func NewRuntime(opts Options) (*Runtime, error) {
	mgr, err := mem.NewManager(mem.Config{
		BlockSize:           opts.BlockSize,
		ReclaimThreshold:    opts.ReclaimThreshold,
		CompactionThreshold: opts.CompactionThreshold,
		CompactionWorkers:   opts.CompactionWorkers,
		CompactionPacking:   opts.CompactionPacking,
		MemoryBudget:        opts.MemoryBudget,
		HeapBackend:         opts.HeapBackend,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{mgr: mgr}, nil
}

// MustRuntime is NewRuntime, panicking on error.
func MustRuntime(opts Options) *Runtime {
	rt, err := NewRuntime(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// Manager exposes the underlying memory manager (benchmark harnesses and
// compiled query code use it for low-level access).
func (rt *Runtime) Manager() *mem.Manager { return rt.mgr }

// NewSession registers a session. Every goroutine touching collections
// needs its own session; sessions carry the thread-local allocation state
// and the epoch critical-section bookkeeping (§3.4–3.5).
func (rt *Runtime) NewSession() (*Session, error) {
	ms, err := rt.mgr.NewSession()
	if err != nil {
		return nil, err
	}
	return &Session{ms: ms}, nil
}

// LeaseSession returns a session from the manager's idle pool (or
// registers a fresh one when the pool is empty). Pair with
// ReturnSession. A request handler serving thousands of short queries
// leases instead of registering — session slots are a fixed global
// resource, and the pool's hit counters make per-request session churn
// observable in StatsSnapshot.
func (rt *Runtime) LeaseSession() (*Session, error) {
	ms, err := rt.mgr.LeaseSession()
	if err != nil {
		return nil, err
	}
	return &Session{ms: ms}, nil
}

// ReturnSession parks a leased session for reuse. The session must not
// be inside a critical section.
func (rt *Runtime) ReturnSession(s *Session) {
	if s == nil {
		return
	}
	rt.mgr.ReturnSession(s.ms)
}

// MustSession is NewSession, panicking on error.
func (rt *Runtime) MustSession() *Session {
	s, err := rt.NewSession()
	if err != nil {
		panic(err)
	}
	return s
}

// CompactNow synchronously runs one compaction pass (§5) with the
// runtime's configured worker count.
func (rt *Runtime) CompactNow() (moved int, err error) { return rt.mgr.CompactNow() }

// CompactNowWorkers runs one compaction pass with an explicit move-phase
// worker count (<= 0 selects the configured default; 1 is the serial
// oracle path).
func (rt *Runtime) CompactNowWorkers(workers int) (moved int, err error) {
	return rt.mgr.CompactNowWorkers(workers)
}

// StartCompactor runs the background compaction thread of §5; the
// returned function stops it.
func (rt *Runtime) StartCompactor(interval time.Duration) func() {
	return rt.mgr.StartCompactor(interval)
}

// StartMaintainer launches the background maintenance scheduler: it
// watches occupancy/fragmentation and triggers parallel compaction
// passes under the configured thresholds (see mem.MaintainerConfig).
func (rt *Runtime) StartMaintainer(cfg mem.MaintainerConfig) *mem.Maintainer {
	return rt.mgr.StartMaintainer(cfg)
}

// StartMaintainerCtx is StartMaintainer bound to a context: cancellation
// shuts the maintenance goroutine down as if Stop had been called.
func (rt *Runtime) StartMaintainerCtx(ctx context.Context, cfg mem.MaintainerConfig) *mem.Maintainer {
	return rt.mgr.StartMaintainerCtx(ctx, cfg)
}

// SetMemoryBudget adjusts the runtime's off-heap byte budget (0 =
// unlimited). Lowering it below current usage does not evict memory; it
// backpressures future allocations and admissions until reclamation
// catches up.
func (rt *Runtime) SetMemoryBudget(limit int64) { rt.mgr.Budget().SetLimit(limit) }

// FragmentationSnapshot surveys the heap's compactable blocks.
func (rt *Runtime) FragmentationSnapshot() mem.Fragmentation {
	return rt.mgr.FragmentationSnapshot()
}

// RescueOverflowed synchronously runs one §3.1 overflow rescue scan:
// stale references to incarnation-exhausted slots are nulled and the
// slots return to circulation.
func (rt *Runtime) RescueOverflowed() (mem.RescueStats, error) {
	return rt.mgr.RescueOverflowed()
}

// StartOverflowScanner runs the §3.1 background scanner thread; the
// returned function stops it.
func (rt *Runtime) StartOverflowScanner(interval time.Duration) func() {
	return rt.mgr.StartOverflowScanner(interval)
}

// Close releases all off-heap memory owned by the runtime.
func (rt *Runtime) Close() error { return rt.mgr.Close() }

// Session wraps a mem.Session. Critical sections (grace periods) group
// object accesses so their epoch overhead is amortized (§3.4, §4).
type Session struct {
	ms *mem.Session
}

// Enter begins (or nests) a critical section.
func (s *Session) Enter() { s.ms.Enter() }

// Exit leaves the critical section.
func (s *Session) Exit() { s.ms.Exit() }

// Refresh re-publishes the session's epoch mid-enumeration.
func (s *Session) Refresh() { s.ms.Refresh() }

// Close unregisters the session.
func (s *Session) Close() error { return s.ms.Close() }

// Mem exposes the underlying mem.Session for compiled query code.
func (s *Session) Mem() *mem.Session { return s.ms }

// Ref is a typed reference to an object in a Collection[T]. Its zero
// value is the null reference. Refs stay valid across relocations
// (compaction) and become null when the object is removed.
type Ref[T any] struct {
	R types.Ref
}

// RefTargetType implements types.RefTyped so the schema layer can
// discover the referent type of Ref fields inside tabular structs.
func (Ref[T]) RefTargetType() reflect.Type {
	var zero T
	return reflect.TypeOf(zero)
}

// IsNil reports whether the reference is null.
func (r Ref[T]) IsNil() bool { return r.R.IsNil() }

// Layout selects a collection's storage layout.
type Layout = mem.Layout

// Storage layout re-exports.
const (
	RowIndirect = mem.RowIndirect
	RowDirect   = mem.RowDirect
	Columnar    = mem.Columnar
)

// PackingMode selects a runtime's compaction-group packing policy.
type PackingMode = mem.PackingMode

// Compaction packing-mode re-exports (Options.CompactionPacking).
const (
	PackSize    = mem.PackSize
	PackOrder   = mem.PackOrder
	PackCluster = mem.PackCluster
)

// registerCollection records the collection for diagnostics.
func (rt *Runtime) registerCollection(name string, ctx *mem.Context) {
	rt.mu.Lock()
	rt.colls = append(rt.colls, namedColl{name, ctx})
	rt.mu.Unlock()
}

// Dump returns a human-readable summary of all collections.
func (rt *Runtime) Dump() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := ""
	for _, c := range rt.colls {
		out += fmt.Sprintf("%s\n", c.ctx)
	}
	return out
}
