package core

// Production observability for the query-memory subsystem: the runtime
// aggregates its memory manager's counters with the lease/retained-
// footprint metrics of every registered arena pool into one snapshot,
// so a serving process can export a single stats struct instead of
// crawling per-query-object pools.

import "repro/internal/mem"

// PoolMetrics is the metrics surface an arena pool exposes to the
// runtime (region.ArenaPool implements it; the interface keeps core free
// of a region dependency).
type PoolMetrics interface {
	// Stats reports lifetime lease and reuse counts.
	Stats() (leases, reuses int64)
	// RetainedBytes reports the chunk footprint currently parked idle.
	RetainedBytes() int64
}

// poolReturns is the optional extension a pool may implement to report
// lifetime Return counts (region.ArenaPool does). Kept out of
// PoolMetrics so existing PoolMetrics implementations stay valid.
type poolReturns interface {
	Returns() int64
}

// ServeCounters is the admission-control activity of a serving front
// door (internal/serve implements it; the interface keeps core free of
// an HTTP dependency). The serve layer bounds concurrent query
// execution with its own gate so a request storm cannot pile goroutines
// onto the session pool — these counters are how that gate shows up in
// the one stats snapshot a process exports.
type ServeCounters struct {
	// Requests counts query requests that reached admission; Admitted is
	// how many passed the gate, Saturated how many were turned away with
	// typed backpressure (HTTP 429) after the bounded admission wait.
	Requests, Admitted, Saturated int64
	// ClassLimited is the subset of Saturated refused at a per-client-
	// class quota (the multi-tenant isolation gate) rather than the
	// global slot gate.
	ClassLimited int64
	// Canceled counts admitted requests whose context was canceled (client
	// gone or per-request deadline) before the query finished.
	Canceled int64
	// AdmitWaitNanos is cumulative time requests spent blocked at the
	// admission gate (both eventually-admitted and saturated).
	AdmitWaitNanos int64
	// InFlight is the number of requests currently holding an admission
	// slot; 0 when the server is idle (a stuck slot is a leak).
	InFlight int64
}

// ServeMetrics is the surface a front door registers with the runtime.
type ServeMetrics interface {
	ServeCounters() ServeCounters
}

// ArenaPoolStats is one registered pool's point-in-time metrics.
type ArenaPoolStats struct {
	// Name identifies the pool (e.g. "tpch.SMCQueries").
	Name string
	// Leases counts lifetime Lease calls; Reuses counts how many of them
	// were served from the idle set rather than a fresh arena.
	Leases, Reuses int64
	// Returns counts lifetime Return calls (0 when the pool does not
	// report them). Leases == Returns whenever no query holds a leased
	// arena — the robustness suites assert this after cancel/fault
	// cycles.
	Returns int64
	// RetainedBytes is the idle footprint currently held for reuse.
	RetainedBytes int64
}

// RuntimeStats is a point-in-time snapshot of the runtime's query-memory
// counters.
type RuntimeStats struct {
	// Worker-session pooling (parallel scans): lifetime session leases,
	// how many were pool hits (misses registered a fresh session), and
	// how many were returned. Leased == Returned whenever no scan is in
	// flight — leak detection after cancellation and fault injection.
	SessionsLeased, SessionsReused, SessionsReturned int64
	// EpochPins counts sessions currently inside an epoch critical
	// section; 0 when the system is quiesced (a leaked pin blocks
	// reclamation forever).
	EpochPins int
	// Admission control (query.NewCtx) and memory backpressure: queries
	// admitted and rejected under the budget, block allocations that
	// waited for reclamation or failed with ErrBudgetExceeded, and
	// cumulative nanoseconds spent waiting.
	QueriesAdmitted, QueriesRejected int64
	AllocWaits, AllocRejects         int64
	BudgetWaitNanos                  int64
	// BudgetLimit/BudgetUsed are the configured byte budget (0 =
	// unlimited) and the bytes currently charged against it.
	BudgetLimit, BudgetUsed int64
	// Block registry churn.
	BlocksAllocated, BlocksReleased int64
	// Compaction engine activity: passes run, objects relocated, groups
	// whose moving phase completed, groups abandoned (pinned past the
	// timeout or lost at an epoch wait), reader-helped moves and reader
	// bail-outs, block bytes reclaimed, and cumulative pass wall time.
	Compactions, ObjectsMoved    int64
	GroupsMoved, GroupsAborted   int64
	RelocHelped, RelocBailouts   int64
	BytesReclaimed, CompactNanos int64
	// Block-synopsis skip-scan layer: blocks skipped by a constrained
	// scan's min/max bounds check, blocks constrained scans actually
	// visited, and compaction targets whose bounds were rebuilt exactly.
	BlocksPruned, BlocksScanned int64
	SynopsisRebuilds            int64
	// Cross-edge semi-join pruning (mem.KeySetPredicate): blocks pruned
	// because no key range of a distilled key set overlapped their
	// synopsis bounds (a subset of BlocksPruned), and blocks admitted
	// with at least one overlapping key-set constraint.
	KeySetPruned, SynopsisOverlap int64
	// Cooperative scan sharing: shared passes launched, queries that
	// attached to an already-running pass (leaders not counted), blocks
	// visited by riders' private catch-up passes, and riders detached
	// early. BlocksScanned counts physical visits — a shared block is
	// counted once per pass, not once per attached query.
	SharedPasses, AttachedQueries int64
	CatchUpBlocks, Detaches       int64
	// WideAttaches counts shared-pass boardings admitted only because
	// the arrival-rate heuristic widened the attach window under storm.
	WideAttaches int64
	// Governor is the adaptive memory-governance section: per-consumer
	// byte accounting against the one budget, the pressure level, and
	// the degradation-ladder counters (mem.Governor).
	Governor mem.GovernorSnapshot
	// Serve is the registered front door's admission activity (zero when
	// no server is registered).
	Serve ServeCounters
	// Per-registered-pool arena lease metrics, in registration order.
	ArenaPools []ArenaPoolStats
}

// ArenaLeases sums lease counts across all registered pools.
func (s *RuntimeStats) ArenaLeases() int64 {
	var n int64
	for _, p := range s.ArenaPools {
		n += p.Leases
	}
	return n
}

// ArenaRetainedBytes sums the idle footprint across all registered
// pools.
func (s *RuntimeStats) ArenaRetainedBytes() int64 {
	var n int64
	for _, p := range s.ArenaPools {
		n += p.RetainedBytes
	}
	return n
}

// RegisterArenaPool adds a pool to the runtime's stats surface. Query
// objects register the pools they lease intermediates from at
// construction; registration is append-only (pools live as long as
// their query objects, which live as long as the runtime in practice).
func (rt *Runtime) RegisterArenaPool(name string, p PoolMetrics) {
	rt.mu.Lock()
	rt.pools = append(rt.pools, namedPool{name, p})
	rt.mu.Unlock()
	// Pools that expose retain-bound control join the memory governor's
	// degradation ladder: their retained footprint counts against the
	// governed total and is the first thing trimmed under pressure.
	if gp, ok := p.(mem.GovernedPool); ok {
		rt.mgr.Governor().RegisterPool(name, gp)
	}
}

// RegisterServer points the runtime's stats surface at a serving front
// door's admission counters. At most one server registers per runtime
// (a second registration replaces the first).
func (rt *Runtime) RegisterServer(m ServeMetrics) {
	rt.mu.Lock()
	rt.server = m
	rt.mu.Unlock()
}

// StatsSnapshot captures the runtime's query-memory counters: the
// memory manager's session-pool hit/miss and block/compaction counters
// plus every registered arena pool's lease and retained-footprint
// metrics and the registered front door's admission activity.
func (rt *Runtime) StatsSnapshot() RuntimeStats {
	ms := rt.mgr.Stats()
	bc := rt.mgr.Budget().Counters()
	out := RuntimeStats{
		SessionsLeased:   ms.SessionsLeased.Load(),
		SessionsReused:   ms.SessionsReused.Load(),
		SessionsReturned: ms.SessionsReturned.Load(),
		EpochPins:        rt.mgr.Epoch().InCriticalSessions(),

		QueriesAdmitted: bc.Admitted,
		QueriesRejected: bc.Rejected,
		AllocWaits:      bc.AllocWaits,
		AllocRejects:    bc.AllocRejects,
		BudgetWaitNanos: bc.ReclamationWaitNanos,
		BudgetLimit:     bc.Limit,
		BudgetUsed:      bc.Used,

		BlocksAllocated: ms.BlocksAllocated.Load(),
		BlocksReleased:  ms.BlocksReleased.Load(),
		Compactions:     ms.Compactions.Load(),
		ObjectsMoved:    ms.ObjectsMoved.Load(),
		GroupsMoved:     ms.GroupsMoved.Load(),
		GroupsAborted:   ms.GroupsAborted.Load(),
		RelocHelped:     ms.RelocHelped.Load(),
		RelocBailouts:   ms.RelocBailouts.Load(),
		BytesReclaimed:  ms.BytesReclaimed.Load(),
		CompactNanos:    ms.CompactNanos.Load(),

		BlocksPruned:     ms.BlocksPruned.Load(),
		BlocksScanned:    ms.BlocksScanned.Load(),
		SynopsisRebuilds: ms.SynopsisRebuilds.Load(),
		KeySetPruned:     ms.KeySetPruned.Load(),
		SynopsisOverlap:  ms.SynopsisOverlap.Load(),

		SharedPasses:    ms.SharedPasses.Load(),
		AttachedQueries: ms.AttachedQueries.Load(),
		CatchUpBlocks:   ms.CatchUpBlocks.Load(),
		Detaches:        ms.Detaches.Load(),
		WideAttaches:    ms.WideAttaches.Load(),

		Governor: rt.mgr.Governor().Snapshot(),
	}
	rt.mu.Lock()
	pools := make([]namedPool, len(rt.pools))
	copy(pools, rt.pools)
	server := rt.server
	rt.mu.Unlock()
	if server != nil {
		out.Serve = server.ServeCounters()
	}
	out.ArenaPools = make([]ArenaPoolStats, 0, len(pools))
	for _, np := range pools {
		leases, reuses := np.p.Stats()
		ps := ArenaPoolStats{
			Name:          np.name,
			Leases:        leases,
			Reuses:        reuses,
			RetainedBytes: np.p.RetainedBytes(),
		}
		if r, ok := np.p.(poolReturns); ok {
			ps.Returns = r.Returns()
		}
		out.ArenaPools = append(out.ArenaPools, ps)
	}
	return out
}
