package core

import (
	"fmt"
	"testing"

	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/types"
)

type Person struct {
	Name string
	Age  int32
}

type Order struct {
	Key      int64
	Total    decimal.Dec128
	Date     types.Date
	Customer Ref[Person]
}

func testRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Options{BlockSize: 1 << 13, HeapBackend: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestAddGetRemoveSemantics(t *testing.T) {
	for _, layout := range []Layout{RowIndirect, RowDirect, Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			persons := MustCollection[Person](rt, "persons", layout)

			adam, err := persons.Add(s, &Person{Name: "Adam", Age: 27})
			if err != nil {
				t.Fatal(err)
			}
			got, err := persons.Get(s, adam)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != "Adam" || got.Age != 27 {
				t.Fatalf("Get = %+v", got)
			}
			if persons.Len() != 1 {
				t.Fatalf("Len = %d", persons.Len())
			}
			// "When the adam object is removed from the collection, it is
			// gone; ... dereferencing will throw" (§2).
			if err := persons.Remove(s, adam); err != nil {
				t.Fatal(err)
			}
			if _, err := persons.Get(s, adam); err != ErrNullReference {
				t.Fatalf("Get after Remove = %v", err)
			}
			if err := persons.Remove(s, adam); err != ErrNullReference {
				t.Fatalf("double Remove = %v", err)
			}
			if persons.Len() != 0 {
				t.Fatalf("Len after remove = %d", persons.Len())
			}
			var nilRef Ref[Person]
			if !nilRef.IsNil() {
				t.Fatal("zero Ref must be nil")
			}
			if _, err := persons.Get(s, nilRef); err != ErrNullReference {
				t.Fatalf("Get(nil) = %v", err)
			}
		})
	}
}

func TestCrossCollectionReferences(t *testing.T) {
	combos := []struct{ pl, ol Layout }{
		{RowIndirect, RowIndirect},
		{RowDirect, RowDirect},
		{RowDirect, RowIndirect},
		{RowIndirect, Columnar},
		{Columnar, RowIndirect},
	}
	for _, combo := range combos {
		t.Run(fmt.Sprintf("%v_%v", combo.pl, combo.ol), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			persons := MustCollection[Person](rt, "persons", combo.pl)
			orders := MustCollection[Order](rt, "orders", combo.ol)

			alice := persons.MustAdd(s, &Person{Name: "Alice", Age: 30})
			o := orders.MustAdd(s, &Order{
				Key:      42,
				Total:    decimal.MustParse("99.95"),
				Date:     types.MustDate("1995-03-15"),
				Customer: alice,
			})

			// Read back: the ref field must resolve to Alice.
			got, err := orders.Get(s, o)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key != 42 || got.Total.String() != "99.9500" {
				t.Fatalf("order = %+v", got)
			}
			p, err := persons.Get(s, got.Customer)
			if err != nil {
				t.Fatal(err)
			}
			if p.Name != "Alice" {
				t.Fatalf("customer = %+v", p)
			}

			// FieldRef join path (compiled query style).
			fr := orders.FieldRefByName("Customer")
			s.Enter()
			oobj, err := orders.Deref(s, o)
			if err != nil {
				t.Fatal(err)
			}
			pobj, err := fr.Deref(s, oobj)
			if err != nil {
				t.Fatal(err)
			}
			ageF := persons.Schema().MustField("Age")
			if age := *(*int32)(pobj.Field(ageF)); age != 30 {
				t.Fatalf("joined age = %d", age)
			}
			s.Exit()

			// Removing Alice nulls the reference inside the order.
			if err := persons.Remove(s, alice); err != nil {
				t.Fatal(err)
			}
			got2, err := orders.Get(s, o)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := persons.Get(s, got2.Customer); err != ErrNullReference {
				t.Fatalf("ref to removed customer = %v, want null", err)
			}
			s.Enter()
			oobj2, _ := orders.Deref(s, o)
			if _, err := fr.Deref(s, oobj2); err != ErrNullReference {
				t.Fatalf("FieldRef to removed customer = %v, want null", err)
			}
			s.Exit()
		})
	}
}

func TestLateBinding(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	// Order references Person, but the Person collection is created
	// later: the ref field stays unbound (null-only) until then.
	orders, err := NewCollection[Order](rt, "orders", RowIndirect)
	if err != nil {
		t.Fatalf("creation out of dependency order should late-bind: %v", err)
	}
	o1 := orders.MustAdd(s, &Order{Key: 1}) // nil customer is fine
	persons := MustCollection[Person](rt, "persons", RowDirect)
	alice := persons.MustAdd(s, &Person{Name: "Alice", Age: 30})
	o2 := orders.MustAdd(s, &Order{Key: 2, Customer: alice})
	got, err := orders.Get(s, o2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := persons.Get(s, got.Customer)
	if err != nil || p.Name != "Alice" {
		t.Fatalf("late-bound ref round-trip: %+v, %v", p, err)
	}
	if g1, _ := orders.Get(s, o1); !g1.Customer.IsNil() {
		t.Fatal("pre-binding order's customer should stay nil")
	}
	// FieldRef works after binding.
	fr := orders.FieldRefByName("Customer")
	if fr.Target == nil {
		t.Fatal("FieldRef target not bound")
	}
}

func TestFieldRefUnboundPanics(t *testing.T) {
	rt := testRuntime(t)
	orders, err := NewCollection[Order](rt, "orders", RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound FieldRef")
		}
	}()
	orders.FieldRefByName("Customer")
}

func TestNonTabularRejected(t *testing.T) {
	type Bad struct{ P *int32 }
	rt := testRuntime(t)
	if _, err := NewCollection[Bad](rt, "bad", RowIndirect); err == nil {
		t.Fatal("expected tabular validation error")
	}
}

func TestForEachAndRefOf(t *testing.T) {
	for _, layout := range []Layout{RowIndirect, RowDirect, Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			persons := MustCollection[Person](rt, "persons", layout)
			for i := 0; i < 300; i++ {
				persons.MustAdd(s, &Person{Name: fmt.Sprintf("p%03d", i), Age: int32(i)})
			}
			var sum int64
			var refs []Ref[Person]
			persons.ForEach(s, func(r Ref[Person], p *Person) bool {
				sum += int64(p.Age)
				refs = append(refs, r)
				return true
			})
			if want := int64(299 * 300 / 2); sum != want {
				t.Fatalf("sum = %d, want %d", sum, want)
			}
			if len(refs) != 300 {
				t.Fatalf("refs = %d", len(refs))
			}
			// Every enumerated ref must dereference.
			for _, r := range refs {
				if _, err := persons.Get(s, r); err != nil {
					t.Fatal(err)
				}
			}
			// Early stop.
			n := 0
			persons.ForEach(s, func(Ref[Person], *Person) bool {
				n++
				return n < 10
			})
			if n != 10 {
				t.Fatalf("early stop visited %d", n)
			}
		})
	}
}

func TestRefsSurviveCompaction(t *testing.T) {
	for _, layout := range []Layout{RowIndirect, RowDirect, Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			persons := MustCollection[Person](rt, "persons", layout)
			var refs []Ref[Person]
			const n = 2000
			for i := 0; i < n; i++ {
				refs = append(refs, persons.MustAdd(s, &Person{Name: fmt.Sprintf("p%d", i), Age: int32(i % 128)}))
			}
			// Remove 90%, compact, verify the rest.
			for i, r := range refs {
				if i%10 != 0 {
					if err := persons.Remove(s, r); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := rt.CompactNow(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 10 {
				p, err := persons.Get(s, refs[i])
				if err != nil {
					t.Fatalf("ref %d after compaction: %v", i, err)
				}
				if p.Name != fmt.Sprintf("p%d", i) {
					t.Fatalf("ref %d resolved to %q", i, p.Name)
				}
			}
		})
	}
}

// TestDirectJoinAfterCompaction covers the §6 pipeline end-to-end at the
// collection level: orders hold direct pointers to persons; persons are
// compacted; the join field must still resolve (fix-up or tombstone
// chase) and reads must return the exact person.
func TestDirectJoinAfterCompaction(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	persons := MustCollection[Person](rt, "persons", RowDirect)
	orders := MustCollection[Order](rt, "orders", RowDirect)

	const n = 3000
	prefs := make([]Ref[Person], 0, n)
	for i := 0; i < n; i++ {
		prefs = append(prefs, persons.MustAdd(s, &Person{Name: fmt.Sprintf("c%d", i), Age: int32(i % 100)}))
	}
	var orefs []Ref[Order]
	var wantAge []int32
	for i := 0; i < n; i += 10 {
		orefs = append(orefs, orders.MustAdd(s, &Order{Key: int64(i), Customer: prefs[i]}))
		wantAge = append(wantAge, int32(i%100))
	}
	for i, r := range prefs {
		if i%10 != 0 {
			if err := persons.Remove(s, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	moved, err := rt.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("compaction did not move anything; test vacuous")
	}
	fr := orders.FieldRefByName("Customer")
	ageF := persons.Schema().MustField("Age")
	s.Enter()
	for i, or := range orefs {
		oobj, err := orders.Deref(s, or)
		if err != nil {
			t.Fatal(err)
		}
		pobj, err := fr.Deref(s, oobj)
		if err != nil {
			t.Fatalf("order %d join after compaction: %v", i, err)
		}
		if age := *(*int32)(pobj.Field(ageF)); age != wantAge[i] {
			t.Fatalf("order %d joined age %d, want %d", i, age, wantAge[i])
		}
	}
	s.Exit()
}

func TestGetRefFieldEncodings(t *testing.T) {
	// An indirect-layout collection referencing a direct-layout one must
	// round-trip its ref field through the direct encoding.
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	persons := MustCollection[Person](rt, "persons", RowDirect)
	orders := MustCollection[Order](rt, "orders", RowIndirect)
	p := persons.MustAdd(s, &Person{Name: "Zed", Age: 1})
	o := orders.MustAdd(s, &Order{Key: 7, Customer: p})
	got, err := orders.Get(s, o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := persons.Get(s, got.Customer)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Zed" {
		t.Fatalf("round-trip = %+v", back)
	}
	// Nil ref round-trips as nil.
	o2 := orders.MustAdd(s, &Order{Key: 8})
	got2, _ := orders.Get(s, o2)
	if !got2.Customer.IsNil() {
		t.Fatal("nil ref did not round-trip")
	}
}

func TestRuntimeDump(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	persons := MustCollection[Person](rt, "persons", RowIndirect)
	persons.MustAdd(s, &Person{Name: "a"})
	if rt.Dump() == "" {
		t.Fatal("Dump empty")
	}
}

var _ = mem.RowIndirect // referenced to keep import in smaller builds
