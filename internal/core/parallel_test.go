package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type scanRow struct {
	ID   int64
	Val  int64
	Name string
}

func allLayoutsPar() []Layout { return []Layout{RowIndirect, RowDirect, Columnar} }

func TestParallelForEachMatchesForEach(t *testing.T) {
	for _, layout := range allLayoutsPar() {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			coll := MustCollection[scanRow](rt, "rows", layout)
			const n = 2000
			for i := 0; i < n; i++ {
				coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i * 3), Name: fmt.Sprintf("r%d", i)})
			}
			serial := make(map[int64]int64, n)
			coll.ForEach(s, func(_ Ref[scanRow], v *scanRow) bool {
				serial[v.ID] = v.Val
				return true
			})
			for _, workers := range []int{1, 2, 4} {
				var mu sync.Mutex
				par := make(map[int64]int64, n)
				dups := 0
				err := coll.ParallelForEach(s, workers, func(_ int, _ Ref[scanRow], v *scanRow) bool {
					mu.Lock()
					if _, ok := par[v.ID]; ok {
						dups++
					}
					par[v.ID] = v.Val
					mu.Unlock()
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if dups != 0 {
					t.Fatalf("workers=%d: %d duplicate visits", workers, dups)
				}
				if len(par) != len(serial) {
					t.Fatalf("workers=%d: saw %d rows, want %d", workers, len(par), len(serial))
				}
				for id, val := range serial {
					if par[id] != val {
						t.Fatalf("workers=%d: row %d = %d, want %d", workers, id, par[id], val)
					}
				}
			}
		})
	}
}

func TestParallelForEachEarlyStop(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := MustCollection[scanRow](rt, "rows", RowIndirect)
	for i := 0; i < 5000; i++ {
		coll.MustAdd(s, &scanRow{ID: int64(i)})
	}
	var visited atomic.Int64
	err := coll.ParallelForEach(s, 4, func(_ int, _ Ref[scanRow], _ *scanRow) bool {
		return visited.Add(1) < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	// Early stop is cooperative at block granularity: each worker may
	// finish its current block, but the scan must not run to completion.
	if v := visited.Load(); v >= 5000 {
		t.Fatalf("early stop visited all %d rows", v)
	}
}

func TestParallelAggregate(t *testing.T) {
	for _, layout := range allLayoutsPar() {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			coll := MustCollection[scanRow](rt, "rows", layout)
			const n = 3000
			want := int64(0)
			for i := 0; i < n; i++ {
				coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i)})
				want += int64(i)
			}
			for _, workers := range []int{1, 3, 4} {
				got, err := ParallelAggregate(coll, s, workers,
					func(int) int64 { return 0 },
					func(acc int64, _ Ref[scanRow], v *scanRow) int64 { return acc + v.Val },
					func(a, b int64) int64 { return a + b },
				)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
				}
			}
		})
	}
}

func TestParallelAggregateEmpty(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := MustCollection[scanRow](rt, "rows", RowIndirect)
	got, err := ParallelAggregate(coll, s, 4,
		func(int) int64 { return 7 },
		func(acc int64, _ Ref[scanRow], v *scanRow) int64 { return acc + v.Val },
		func(a, b int64) int64 { return a + b },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("empty aggregate = %d, want init value 7", got)
	}
}

// TestParallelForEachStress is the §5.2 satellite stress test:
// ParallelForEach runs concurrently with Add/Remove churn and an active
// background compactor, asserting exactly-once visitation — no
// duplicates ever, and no lost pre-move objects (the stable population
// must be seen exactly once per scan) — across pinned and post-state
// compaction groups. Run it under -race.
func TestParallelForEachStress(t *testing.T) {
	for _, layout := range allLayoutsPar() {
		t.Run(layout.String(), func(t *testing.T) {
			rt := MustRuntime(Options{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.10,
				HeapBackend:      true,
			})
			defer rt.Close()
			coll := MustCollection[scanRow](rt, "rows", layout)

			s := rt.MustSession()
			defer s.Close()
			const stableCount = 400
			for i := 0; i < stableCount; i++ {
				coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i), Name: "stable"})
			}

			stopCompactor := rt.StartCompactor(time.Millisecond)
			defer stopCompactor()

			stop := make(chan struct{})
			var fail atomic.Value
			var wg sync.WaitGroup

			// Churner: adds transient rows and removes most of them,
			// keeping blocks sparse so the compactor always has work.
			const churners = 2
			for w := 0; w < churners; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cs, err := rt.NewSession()
					if err != nil {
						fail.Store(err.Error())
						return
					}
					defer cs.Close()
					next := int64(1)<<40 | int64(w)<<32
					type pair struct {
						id  int64
						ref Ref[scanRow]
					}
					var pool []pair
					for {
						select {
						case <-stop:
							return
						default:
						}
						id := next
						next++
						ref, err := coll.Add(cs, &scanRow{ID: id, Name: "churn"})
						if err != nil {
							fail.Store(err.Error())
							return
						}
						pool = append(pool, pair{id, ref})
						if len(pool) > 8 {
							victim := pool[0]
							pool = pool[1:]
							if err := coll.Remove(cs, victim.ref); err != nil {
								fail.Store(fmt.Sprintf("remove %#x: %v", victim.id, err))
								return
							}
						}
					}
				}(w)
			}

			// Scanner: repeated 4-worker ParallelForEach passes.
			coord := rt.MustSession()
			defer coord.Close()
			deadline := time.Now().Add(500 * time.Millisecond)
			scans := 0
			for time.Now().Before(deadline) && fail.Load() == nil {
				var mu sync.Mutex
				counts := make(map[int64]int)
				err := coll.ParallelForEach(coord, 4, func(_ int, _ Ref[scanRow], v *scanRow) bool {
					mu.Lock()
					counts[v.ID]++
					mu.Unlock()
					return true
				})
				if err != nil {
					t.Fatalf("scan %d: %v", scans, err)
				}
				for id, n := range counts {
					if n != 1 {
						t.Fatalf("scan %d: id %#x visited %d times", scans, id, n)
					}
				}
				for i := 0; i < stableCount; i++ {
					if counts[int64(i)] != 1 {
						t.Fatalf("scan %d: stable id %d visited %d times", scans, i, counts[int64(i)])
					}
				}
				scans++
			}
			close(stop)
			wg.Wait()
			if msg := fail.Load(); msg != nil {
				t.Fatal(msg)
			}
			if scans == 0 {
				t.Fatal("no scans completed")
			}
		})
	}
}

// TestParallelGroupBy: keyed partial states must match a serial group-by
// exactly, at every layout and worker count, including filtered rows.
func TestParallelGroupBy(t *testing.T) {
	for _, layout := range allLayoutsPar() {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			coll := MustCollection[scanRow](rt, "rows", layout)
			const n = 3000
			type agg struct {
				sum   int64
				count int64
			}
			want := make(map[int64]agg)
			for i := 0; i < n; i++ {
				coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i * 2)})
				if i%5 == 0 {
					continue // filtered below
				}
				k := int64(i % 17)
				a := want[k]
				a.sum += int64(i * 2)
				a.count++
				want[k] = a
			}
			for _, workers := range []int{1, 3, 4} {
				got, err := ParallelGroupBy(coll, s, workers,
					func(_ Ref[scanRow], v *scanRow) (int64, bool) {
						if v.ID%5 == 0 {
							return 0, false
						}
						return v.ID % 17, true
					},
					func(acc agg, _ Ref[scanRow], v *scanRow) agg {
						acc.sum += v.Val
						acc.count++
						return acc
					},
					func(a, b agg) agg { return agg{sum: a.sum + b.sum, count: a.count + b.count} },
				)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d groups, want %d", workers, len(got), len(want))
				}
				for k, w := range want {
					if got[k] != w {
						t.Fatalf("workers=%d: group %d = %+v, want %+v", workers, k, got[k], w)
					}
				}
			}
		})
	}
}

// TestParallelGroupByEmpty: an empty collection yields an empty map, not
// nil panics.
func TestParallelGroupByEmpty(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := MustCollection[scanRow](rt, "rows", RowIndirect)
	got, err := ParallelGroupBy(coll, s, 4,
		func(_ Ref[scanRow], v *scanRow) (int64, bool) { return v.ID, true },
		func(acc int64, _ Ref[scanRow], v *scanRow) int64 { return acc + v.Val },
		func(a, b int64) int64 { return a + b },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty group-by returned %d groups", len(got))
	}
}
