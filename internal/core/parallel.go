package core

import (
	"context"

	"repro/internal/mem"
)

// Parallel typed scans over a collection: the compiled-query-style
// fan-out of mem.ScanParallel lifted to the collection API. One §5.2
// decision pass resolves the block list, then per-worker sessions scan
// disjoint blocks claimed from an atomic cursor; typed aggregates fold
// into per-worker partial accumulators that are merged at the end.

// ParallelBlocks shards the collection's resolved block list across
// `workers` goroutines for compiled-query-style callers that scan slot
// directories themselves. fn runs once per block with the worker's index
// and session; returning mem.ErrStopScan ends the scan early and
// cleanly. fn must not share mutable state across workers without its
// own synchronization — index per-worker state by the worker argument.
func (c *Collection[T]) ParallelBlocks(s *Session, workers int, fn func(worker int, ws *Session, b *mem.Block) error) error {
	return c.ParallelBlocksPred(s, workers, nil, fn)
}

// ParallelBlocksCtx is ParallelBlocks bound to a context: every worker
// observes cancellation at block-claim granularity (one channel poll per
// claimed block), the coordinator aborts resolved-list fan-out, and the
// scan returns the cancellation cause once every worker has unwound. A
// Background context adds no overhead.
func (c *Collection[T]) ParallelBlocksCtx(cctx context.Context, s *Session, workers int, fn func(worker int, ws *Session, b *mem.Block) error) error {
	return c.ParallelBlocksPredCtx(cctx, s, workers, nil, fn)
}

// ParallelBlocksPred is ParallelBlocks with a scan predicate pushed into
// the coordinator's one-shot decision pass: pruned blocks never enter
// the resolved block list, so no worker, cursor claim or session ever
// touches them. fn still sees every block that might hold a matching row
// and must keep evaluating the residual predicate per row.
func (c *Collection[T]) ParallelBlocksPred(s *Session, workers int, pred *mem.ScanPredicate, fn func(worker int, ws *Session, b *mem.Block) error) error {
	return c.ParallelBlocksPredCtx(context.Background(), s, workers, pred, fn)
}

// ParallelBlocksPredCtx is ParallelBlocksPred bound to a context (see
// ParallelBlocksCtx).
func (c *Collection[T]) ParallelBlocksPredCtx(cctx context.Context, s *Session, workers int, pred *mem.ScanPredicate, fn func(worker int, ws *Session, b *mem.Block) error) error {
	if workers < 1 {
		workers = 1
	}
	wrappers := make([]*Session, workers)
	return c.ctx.ScanParallelPredCtx(cctx, s.ms, workers, pred, func(w int, ws *mem.Session, b *mem.Block) error {
		cs := wrappers[w]
		if cs == nil {
			if ws == s.ms {
				cs = s
			} else {
				cs = &Session{ms: ws}
			}
			wrappers[w] = cs
		}
		return fn(w, cs, b)
	})
}

// SharedBlocksPredCtx routes a block scan through the collection's
// cooperative scan-share group (mem.ShareGroup): when a compatible
// shared pass over this collection is inside its attach window the
// query rides it — one decision pass, one epoch-pinned snapshot and one
// trip through memory per block, amortized across every attached query —
// and otherwise it leads a new pass (or falls back to a private scan).
// attach is called exactly once, before any block is delivered, with the
// number of worker slots fn must be prepared to see; fn must index
// per-query state by the worker argument, exactly like ParallelBlocks
// workers. Pruning, cancellation and panic semantics are the share
// layer's: the rider's predicate prunes via its private admit bitmap,
// cancelling ctx detaches only this query, and a kernel panic anywhere
// in the pass surfaces as mem.ErrWorkerPanic.
func (c *Collection[T]) SharedBlocksPredCtx(cctx context.Context, s *Session, workers int, pred *mem.ScanPredicate,
	attach func(slots int) func(worker int, ws *Session, b *mem.Block) error) error {
	if workers < 1 {
		workers = 1
	}
	return c.ctx.Share().Scan(cctx, s.ms, workers, pred, func(slots int) func(int, *mem.Session, *mem.Block) error {
		fn := attach(slots)
		// One wrapper per slot; each slot is driven by exactly one
		// goroutine at a time, so the lazy fills never race.
		wrappers := make([]*Session, slots)
		return func(w int, ws *mem.Session, b *mem.Block) error {
			cs := wrappers[w]
			if cs == nil {
				if ws == s.ms {
					cs = s
				} else {
					cs = &Session{ms: ws}
				}
				wrappers[w] = cs
			}
			return fn(w, cs, b)
		}
	})
}

// padded wraps per-worker state so adjacent workers' values never share
// a cache line in the hot fold loop (the compiled tpch kernels pad their
// accumulators the same way).
type padded[T any] struct {
	v T
	_ [64]byte
}

// ParallelForEach invokes fn for every object in the collection from
// `workers` goroutines, each inside its own session and critical
// section. Visitation has the enumerator's exactly-once bag semantics:
// the compaction-group decisions are made once for the whole scan, so an
// object is seen either in its pre-relocation block or its target, never
// both. fn returning false stops the scan across all workers. fn must be
// safe for concurrent invocation; v is a per-worker scratch value that is
// only valid for the duration of the call.
func (c *Collection[T]) ParallelForEach(s *Session, workers int, fn func(worker int, ref Ref[T], v *T) bool) error {
	return c.ParallelForEachPred(s, workers, nil, fn)
}

// ParallelForEachPred is ParallelForEach with a scan predicate: blocks
// provably holding no matching row are skipped, and fn still sees every
// object of the remaining blocks (including non-matching ones — apply
// the residual predicate inside fn).
func (c *Collection[T]) ParallelForEachPred(s *Session, workers int, pred *mem.ScanPredicate, fn func(worker int, ref Ref[T], v *T) bool) error {
	if workers < 1 {
		workers = 1
	}
	tmps := make([]padded[T], workers)
	return c.ParallelBlocksPred(s, workers, pred, func(w int, ws *Session, b *mem.Block) error {
		tmp := &tmps[w].v
		n := b.Capacity()
		for slot := 0; slot < n; slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			obj := mem.Obj{Blk: b, Slot: slot}
			if c.layout != mem.Columnar {
				obj.Ptr = b.SlotData(slot)
			}
			c.unmarshal(ws, obj, tmp)
			if !fn(w, Ref[T]{R: c.ctx.MakeRef(b, slot)}, tmp) {
				return mem.ErrStopScan
			}
		}
		return nil
	})
}

// ParallelAggregate scans c with `workers` goroutines, folding every
// object into a per-worker partial accumulator and merging the partials
// once the scan completes. init builds a worker's accumulator lazily (it
// is only called for workers that receive blocks), fold absorbs one
// object, and merge combines two partials; merge is called in worker
// order, so order-sensitive accumulators see a deterministic merge
// sequence for a quiesced collection. An empty collection returns
// init(0).
func ParallelAggregate[T, A any](c *Collection[T], s *Session, workers int,
	init func(worker int) A,
	fold func(acc A, ref Ref[T], v *T) A,
	merge func(into, from A) A,
) (A, error) {
	return ParallelAggregatePred(c, s, workers, nil, init, fold, merge)
}

// ParallelAggregatePred is ParallelAggregate with a scan predicate:
// synopsis-pruned blocks never reach fold, every remaining object does —
// fold must keep applying the residual predicate itself.
func ParallelAggregatePred[T, A any](c *Collection[T], s *Session, workers int, pred *mem.ScanPredicate,
	init func(worker int) A,
	fold func(acc A, ref Ref[T], v *T) A,
	merge func(into, from A) A,
) (A, error) {
	if workers < 1 {
		workers = 1
	}
	type workerAcc struct {
		acc    A
		inited bool
	}
	accs := make([]padded[workerAcc], workers)
	err := c.ParallelForEachPred(s, workers, pred, func(w int, ref Ref[T], v *T) bool {
		a := &accs[w].v
		if !a.inited {
			a.acc = init(w)
			a.inited = true
		}
		a.acc = fold(a.acc, ref, v)
		return true
	})
	if err != nil {
		var zero A
		return zero, err
	}
	var out A
	first := true
	for w := range accs {
		if !accs[w].v.inited {
			continue
		}
		if first {
			out = accs[w].v.acc
			first = false
		} else {
			out = merge(out, accs[w].v.acc)
		}
	}
	if first {
		out = init(0)
	}
	return out, nil
}

// ParallelGroupBy generalizes ParallelAggregate to keyed partial states:
// each worker folds the objects it scans into a private map of per-group
// accumulators (zero shared mutable state in the hot loop), and the
// partial maps merge after the scan. key selects an object's group and
// may reject the object (ok=false) to keep filtered rows out of the
// maps; fold absorbs one object into its group's accumulator, starting
// from A's zero value; merge combines two partials for the same key and
// is applied in worker order, so the merged state is deterministic for a
// quiesced collection whenever merge itself is.
func ParallelGroupBy[T any, K comparable, A any](c *Collection[T], s *Session, workers int,
	key func(ref Ref[T], v *T) (K, bool),
	fold func(acc A, ref Ref[T], v *T) A,
	merge func(into, from A) A,
) (map[K]A, error) {
	if workers < 1 {
		workers = 1
	}
	groups := make([]padded[map[K]A], workers)
	err := c.ParallelForEach(s, workers, func(w int, ref Ref[T], v *T) bool {
		k, ok := key(ref, v)
		if !ok {
			return true
		}
		g := groups[w].v
		if g == nil {
			g = make(map[K]A)
			groups[w].v = g
		}
		g[k] = fold(g[k], ref, v)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[K]A)
	for w := range groups {
		for k, a := range groups[w].v {
			if cur, ok := out[k]; ok {
				out[k] = merge(cur, a)
			} else {
				out[k] = a
			}
		}
	}
	return out, nil
}
