package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/decimal"
	"repro/internal/types"
)

func TestCollectionAccessors(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	persons := MustCollection[Person](rt, "persons", RowDirect)
	if persons.Name() != "persons" {
		t.Fatalf("Name = %q", persons.Name())
	}
	if persons.LayoutKind() != RowDirect {
		t.Fatalf("LayoutKind = %v", persons.LayoutKind())
	}
	if persons.Context() == nil || persons.Context().Layout() != RowDirect {
		t.Fatal("Context not wired")
	}
	if persons.Schema().Name != "Person" {
		t.Fatalf("Schema = %q", persons.Schema().Name)
	}
	persons.MustAdd(s, &Person{Name: "x", Age: 1})
	if persons.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes = %d", persons.MemoryBytes())
	}
	if rt.Manager() == nil {
		t.Fatal("Manager nil")
	}
}

func TestEnumerateAndRefOf(t *testing.T) {
	for _, layout := range []Layout{RowIndirect, RowDirect, Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			persons := MustCollection[Person](rt, "persons", layout)
			const n = 500
			for i := 0; i < n; i++ {
				persons.MustAdd(s, &Person{Name: fmt.Sprintf("p%d", i), Age: int32(i % 90)})
			}
			// Compiled-query style block walk through the public API.
			seen := 0
			s.Enter()
			en := persons.Enumerate(s)
			for {
				blk, ok := en.NextBlock()
				if !ok {
					break
				}
				for i := 0; i < blk.Capacity(); i++ {
					if !blk.SlotIsValid(i) {
						continue
					}
					seen++
					r := persons.RefOf(blk, i)
					if r.IsNil() {
						t.Fatal("RefOf returned nil for a valid slot")
					}
				}
			}
			en.Close()
			s.Exit()
			if seen != n {
				t.Fatalf("enumerated %d, want %d", seen, n)
			}
		})
	}
}

func TestSetCoalescedCopyEquivalence(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	persons := MustCollection[Person](rt, "persons", RowIndirect)
	orders := MustCollection[Order](rt, "orders", RowIndirect)

	p := persons.MustAdd(s, &Person{Name: "Ada", Age: 36})
	in := Order{Key: 9, Total: decimal.MustParse("12.34"), Date: types.MustDate("1994-06-01"), Customer: p}

	orders.SetCoalescedCopy(false)
	rFieldwise := orders.MustAdd(s, &in)
	orders.SetCoalescedCopy(true)
	rCoalesced := orders.MustAdd(s, &in)

	a, err := orders.Get(s, rFieldwise)
	if err != nil {
		t.Fatal(err)
	}
	b, err := orders.Get(s, rCoalesced)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fieldwise %+v != coalesced %+v", a, b)
	}
	// Columnar collections ignore the switch.
	colPersons := MustCollection[Person](rt, "colPersons", Columnar)
	colPersons.SetCoalescedCopy(false)
	cp := colPersons.MustAdd(s, &Person{Name: "c", Age: 3})
	if got, err := colPersons.Get(s, cp); err != nil || got.Age != 3 {
		t.Fatalf("columnar after switch: %+v, %v", got, err)
	}
}

// TestMarshalRoundTripQuick drives random values through marshal and
// unmarshal in every layout: strings of any content, decimal extremes,
// negative and boundary integers.
func TestMarshalRoundTripQuick(t *testing.T) {
	type Everything struct {
		B    bool
		I32  int32
		I64  int64
		F64  float64
		D    types.Date
		Dec  decimal.Dec128
		Str  string
		Str2 string
	}
	for _, layout := range []Layout{RowIndirect, RowDirect, Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			coll := MustCollection[Everything](rt, "everything-"+layout.String(), layout)
			f := func(b bool, i32 int32, i64 int64, f64 float64, day int32, units int64, str, str2 string) bool {
				if len(str) > types.MaxStringLen || len(str2) > types.MaxStringLen {
					return true // string heap rejects oversized input by contract
				}
				in := Everything{
					B: b, I32: i32, I64: i64, F64: f64,
					D:   types.Date(day % 200000),
					Dec: decimal.FromUnits(units),
					Str: str, Str2: str2,
				}
				r, err := coll.Add(s, &in)
				if err != nil {
					return false
				}
				out, err := coll.Get(s, r)
				if err != nil {
					return false
				}
				if f64 != f64 { // NaN: compare remaining fields only
					out.F64, in.F64 = 0, 0
				}
				return out == in
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAmbiguousRefTargetRejected(t *testing.T) {
	rt := testRuntime(t)
	MustCollection[Person](rt, "persons-a", RowIndirect)
	MustCollection[Person](rt, "persons-b", RowIndirect)
	if _, err := NewCollection[Order](rt, "orders", RowIndirect); err == nil {
		t.Fatal("ambiguous ref target should be rejected")
	}
}

func TestRuntimeOverflowAPI(t *testing.T) {
	rt := testRuntime(t)
	st, err := rt.RescueOverflowed()
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesRescued != 0 || st.SlotsRescued != 0 {
		t.Fatalf("rescue on empty runtime = %+v", st)
	}
	stop := rt.StartOverflowScanner(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
}

// TestConcurrentChurnWithBackgroundThreads is the integration smoke test:
// several sessions churn two linked collections while the compactor and
// the overflow scanner run; every surviving reference must resolve to its
// exact object afterwards.
func TestConcurrentChurnWithBackgroundThreads(t *testing.T) {
	rt := testRuntime(t)
	stopC := rt.StartCompactor(2 * time.Millisecond)
	defer stopC()
	stopS := rt.StartOverflowScanner(5 * time.Millisecond)
	defer stopS()

	persons := MustCollection[Person](rt, "persons", RowDirect)
	orders := MustCollection[Order](rt, "orders", RowIndirect)

	const workers = 3
	const perWorker = 800
	type kept struct {
		or  Ref[Order]
		key int64
		age int32
	}
	keptCh := make(chan []kept, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := rt.MustSession()
			defer s.Close()
			var mine []kept
			for i := 0; i < perWorker; i++ {
				key := int64(w*1_000_000 + i)
				p, err := persons.Add(s, &Person{Name: fmt.Sprintf("p%d", key), Age: int32(i % 100)})
				if err != nil {
					errCh <- err
					return
				}
				o, err := orders.Add(s, &Order{Key: key, Customer: p})
				if err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					// Keep this one.
					mine = append(mine, kept{or: o, key: key, age: int32(i % 100)})
				} else {
					if err := persons.Remove(s, p); err != nil {
						errCh <- fmt.Errorf("remove person: %w", err)
						return
					}
					if err := orders.Remove(s, o); err != nil {
						errCh <- fmt.Errorf("remove order: %w", err)
						return
					}
				}
			}
			keptCh <- mine
		}(w)
	}
	wg.Wait()
	close(errCh)
	close(keptCh)
	for err := range errCh {
		t.Fatal(err)
	}

	s := rt.MustSession()
	defer s.Close()
	fr := orders.FieldRefByName("Customer")
	ageF := persons.Schema().MustField("Age")
	for all := range keptCh {
		for _, k := range all {
			got, err := orders.Get(s, k.or)
			if err != nil {
				t.Fatalf("kept order %d: %v", k.key, err)
			}
			if got.Key != k.key {
				t.Fatalf("order %d resolved to key %d", k.key, got.Key)
			}
			s.Enter()
			oobj, err := orders.Deref(s, k.or)
			if err != nil {
				t.Fatal(err)
			}
			pobj, err := fr.Deref(s, oobj)
			if err != nil {
				t.Fatalf("order %d -> customer: %v", k.key, err)
			}
			if age := *(*int32)(pobj.Field(ageF)); age != k.age {
				t.Fatalf("order %d joined age %d, want %d", k.key, age, k.age)
			}
			s.Exit()
		}
	}
}

func TestRefTargetTypeReflection(t *testing.T) {
	var r Ref[Person]
	if r.RefTargetType() != reflect.TypeOf(Person{}) {
		t.Fatal("RefTargetType mismatch")
	}
}
