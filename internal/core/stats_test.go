package core

import (
	"testing"

	"repro/internal/region"
)

// TestRuntimeStatsCountersMove: the runtime snapshot must reflect both
// the mem session pool (hit/miss across parallel scans) and registered
// arena pools (lease/reuse/retained footprint) — and the counters must
// actually move when the subsystems run.
func TestRuntimeStatsCountersMove(t *testing.T) {
	rt := MustRuntime(Options{BlockSize: 1 << 13, HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	rt.RegisterArenaPool("test-pool", pool)

	base := rt.StatsSnapshot()
	if len(base.ArenaPools) != 1 || base.ArenaPools[0].Name != "test-pool" {
		t.Fatalf("registered pools = %+v, want one named test-pool", base.ArenaPools)
	}
	if base.ArenaLeases() != 0 {
		t.Fatalf("fresh pool reports %d leases", base.ArenaLeases())
	}

	// Arena leases: two lease/return cycles — the second must be a reuse,
	// and the retained footprint must become visible.
	a := pool.Lease()
	region.NewSlice[int64](a, 1024)
	pool.Return(a)
	pool.Return(pool.Lease())
	st := rt.StatsSnapshot()
	if got := st.ArenaPools[0]; got.Leases != 2 || got.Reuses != 1 {
		t.Fatalf("pool stats after two cycles: %+v", got)
	}
	if st.ArenaRetainedBytes() == 0 {
		t.Fatal("retained footprint did not move after returning a used arena")
	}

	// Session pool: a multi-worker parallel scan leases worker sessions
	// from the manager pool; a second scan must reuse them.
	coll := MustCollection[scanRow](rt, "rows", RowIndirect)
	coll.MustRegisterSynopses("ID")
	for i := 0; i < 4000; i++ {
		coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i)})
	}
	for pass := 0; pass < 2; pass++ {
		if err := coll.ParallelForEach(s, 4, func(int, Ref[scanRow], *scanRow) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	st = rt.StatsSnapshot()
	if st.SessionsLeased == base.SessionsLeased {
		t.Fatal("SessionsLeased did not move across parallel scans")
	}
	if st.SessionsReused == base.SessionsReused {
		t.Fatal("SessionsReused did not move across repeated parallel scans")
	}
	if st.BlocksAllocated == 0 {
		t.Fatal("BlocksAllocated did not move after loading a collection")
	}

	// Compaction engine counters: fragment the collection (90% removed
	// leaves every full block under the 30% threshold) and run a pass.
	var refs []Ref[scanRow]
	coll.ForEach(s, func(r Ref[scanRow], _ *scanRow) bool {
		refs = append(refs, r)
		return true
	})
	for i, r := range refs {
		if i%10 != 0 {
			if err := coll.Remove(s, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := rt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st = rt.StatsSnapshot()
	if st.Compactions == 0 || st.ObjectsMoved == 0 {
		t.Fatalf("compaction pass counters did not move: %+v", st)
	}
	if st.GroupsMoved == 0 || st.BytesReclaimed == 0 || st.CompactNanos == 0 {
		t.Fatalf("compaction engine counters did not move: GroupsMoved=%d BytesReclaimed=%d CompactNanos=%d",
			st.GroupsMoved, st.BytesReclaimed, st.CompactNanos)
	}
	if st.SynopsisRebuilds == 0 {
		t.Fatal("SynopsisRebuilds did not move across a compaction of a synopsis-bearing collection")
	}

	// Skip-scan counters: a predicated scan over sequentially loaded IDs
	// must prune blocks and count both sides.
	pred := coll.Predicate().Int64Range("ID", 0, 10)
	if err := coll.ParallelForEachPred(s, 2, pred, func(int, Ref[scanRow], *scanRow) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st = rt.StatsSnapshot()
	if st.BlocksPruned == 0 || st.BlocksScanned == 0 {
		t.Fatalf("skip-scan counters did not move: BlocksPruned=%d BlocksScanned=%d", st.BlocksPruned, st.BlocksScanned)
	}
}
