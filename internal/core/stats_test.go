package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/region"
)

// TestRuntimeStatsCountersMove: the runtime snapshot must reflect both
// the mem session pool (hit/miss across parallel scans) and registered
// arena pools (lease/reuse/retained footprint) — and the counters must
// actually move when the subsystems run.
func TestRuntimeStatsCountersMove(t *testing.T) {
	rt := MustRuntime(Options{BlockSize: 1 << 13, HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	rt.RegisterArenaPool("test-pool", pool)

	base := rt.StatsSnapshot()
	if len(base.ArenaPools) != 1 || base.ArenaPools[0].Name != "test-pool" {
		t.Fatalf("registered pools = %+v, want one named test-pool", base.ArenaPools)
	}
	if base.ArenaLeases() != 0 {
		t.Fatalf("fresh pool reports %d leases", base.ArenaLeases())
	}

	// Arena leases: two lease/return cycles — the second must be a reuse,
	// and the retained footprint must become visible.
	a := pool.Lease()
	region.NewSlice[int64](a, 1024)
	pool.Return(a)
	pool.Return(pool.Lease())
	st := rt.StatsSnapshot()
	if got := st.ArenaPools[0]; got.Leases != 2 || got.Reuses != 1 {
		t.Fatalf("pool stats after two cycles: %+v", got)
	}
	if st.ArenaRetainedBytes() == 0 {
		t.Fatal("retained footprint did not move after returning a used arena")
	}

	// Session pool: a multi-worker parallel scan leases worker sessions
	// from the manager pool; a second scan must reuse them.
	coll := MustCollection[scanRow](rt, "rows", RowIndirect)
	coll.MustRegisterSynopses("ID")
	for i := 0; i < 4000; i++ {
		coll.MustAdd(s, &scanRow{ID: int64(i), Val: int64(i)})
	}
	for pass := 0; pass < 2; pass++ {
		if err := coll.ParallelForEach(s, 4, func(int, Ref[scanRow], *scanRow) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	st = rt.StatsSnapshot()
	if st.SessionsLeased == base.SessionsLeased {
		t.Fatal("SessionsLeased did not move across parallel scans")
	}
	if st.SessionsReused == base.SessionsReused {
		t.Fatal("SessionsReused did not move across repeated parallel scans")
	}
	if st.BlocksAllocated == 0 {
		t.Fatal("BlocksAllocated did not move after loading a collection")
	}

	// Compaction engine counters: fragment the collection (90% removed
	// leaves every full block under the 30% threshold) and run a pass.
	var refs []Ref[scanRow]
	coll.ForEach(s, func(r Ref[scanRow], _ *scanRow) bool {
		refs = append(refs, r)
		return true
	})
	for i, r := range refs {
		if i%10 != 0 {
			if err := coll.Remove(s, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := rt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st = rt.StatsSnapshot()
	if st.Compactions == 0 || st.ObjectsMoved == 0 {
		t.Fatalf("compaction pass counters did not move: %+v", st)
	}
	if st.GroupsMoved == 0 || st.BytesReclaimed == 0 || st.CompactNanos == 0 {
		t.Fatalf("compaction engine counters did not move: GroupsMoved=%d BytesReclaimed=%d CompactNanos=%d",
			st.GroupsMoved, st.BytesReclaimed, st.CompactNanos)
	}
	if st.SynopsisRebuilds == 0 {
		t.Fatal("SynopsisRebuilds did not move across a compaction of a synopsis-bearing collection")
	}

	// Skip-scan counters: a predicated scan over sequentially loaded IDs
	// must prune blocks and count both sides.
	pred := coll.Predicate().Int64Range("ID", 0, 10)
	if err := coll.ParallelForEachPred(s, 2, pred, func(int, Ref[scanRow], *scanRow) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st = rt.StatsSnapshot()
	if st.BlocksPruned == 0 || st.BlocksScanned == 0 {
		t.Fatalf("skip-scan counters did not move: BlocksPruned=%d BlocksScanned=%d", st.BlocksPruned, st.BlocksScanned)
	}

	// Scan-share counters: a leader parked inside block 0 keeps its pass
	// in the attach window, one rider attaches mid-pass (its catch-up
	// must cover the missed block 0), one rider is cancelled after
	// attaching. All four share counters must move.
	share0 := st
	parked := make(chan struct{})
	releaseLeader := make(chan struct{})
	var once sync.Once
	leaderErr := make(chan error, 1)
	noop := func(slots int) func(int, *Session, *mem.Block) error {
		return func(int, *Session, *mem.Block) error { return nil }
	}
	go func() {
		leaderErr <- coll.SharedBlocksPredCtx(nil, s, 1, nil, func(slots int) func(int, *Session, *mem.Block) error {
			return func(int, *Session, *mem.Block) error {
				once.Do(func() {
					close(parked)
					<-releaseLeader
				})
				return nil
			}
		})
	}()
	<-parked
	waitAttach := func(want int64) {
		deadline := time.Now().Add(5 * time.Second)
		for rt.StatsSnapshot().AttachedQueries < share0.AttachedQueries+want {
			if time.Now().After(deadline) {
				t.Fatalf("AttachedQueries never reached +%d", want)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	rs := rt.MustSession()
	defer rs.Close()
	riderErr := make(chan error, 1)
	go func() { riderErr <- coll.SharedBlocksPredCtx(nil, rs, 1, nil, noop) }()
	waitAttach(1)
	cs := rt.MustSession()
	defer cs.Close()
	cctx, cancel := context.WithCancel(context.Background())
	cancErr := make(chan error, 1)
	go func() { cancErr <- coll.SharedBlocksPredCtx(cctx, cs, 1, nil, noop) }()
	waitAttach(2)
	cancel()
	if err := <-cancErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rider returned %v, want context.Canceled", err)
	}
	close(releaseLeader)
	if err := <-leaderErr; err != nil {
		t.Fatalf("share leader: %v", err)
	}
	if err := <-riderErr; err != nil {
		t.Fatalf("share rider: %v", err)
	}
	st = rt.StatsSnapshot()
	if st.SharedPasses != share0.SharedPasses+1 {
		t.Fatalf("SharedPasses moved by %d, want 1", st.SharedPasses-share0.SharedPasses)
	}
	if st.AttachedQueries != share0.AttachedQueries+2 {
		t.Fatalf("AttachedQueries moved by %d, want 2", st.AttachedQueries-share0.AttachedQueries)
	}
	if st.CatchUpBlocks == share0.CatchUpBlocks {
		t.Fatal("CatchUpBlocks did not move for a rider attached past block 0")
	}
	if st.Detaches != share0.Detaches+1 {
		t.Fatalf("Detaches moved by %d, want 1", st.Detaches-share0.Detaches)
	}
	if st.EpochPins != 0 {
		t.Fatalf("%d epoch pins leaked after the shared pass", st.EpochPins)
	}
}
