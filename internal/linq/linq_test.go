package linq

import (
	"testing"
)

func nums(n int) Enumerable[int] {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return FromSlice(s)
}

func TestWhereSelect(t *testing.T) {
	q := Select(Where(nums(10), func(x int) bool { return x%2 == 0 }), func(x int) int { return x * x })
	got := ToSlice(q)
	want := []int{0, 4, 16, 36, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Lazily re-executable: a second drain yields the same results.
	if len(ToSlice(q)) != 5 {
		t.Fatal("second enumeration differs")
	}
}

func TestSelectMany(t *testing.T) {
	q := SelectMany(nums(3), func(x int) Enumerable[int] {
		return FromSlice([]int{x * 10, x*10 + 1})
	})
	got := ToSlice(q)
	want := []int{0, 1, 10, 11, 20, 21}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestGroupBy(t *testing.T) {
	q := GroupBy(nums(10), func(x int) int { return x % 3 })
	groups := ToSlice(q)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Groups appear in first-seen key order.
	if groups[0].Key != 0 || groups[1].Key != 1 || groups[2].Key != 2 {
		t.Fatalf("key order: %v %v %v", groups[0].Key, groups[1].Key, groups[2].Key)
	}
	if len(groups[0].Items) != 4 || len(groups[1].Items) != 3 {
		t.Fatalf("group sizes wrong: %v", groups)
	}
}

func TestJoin(t *testing.T) {
	type ord struct{ id, cust int }
	type cust struct {
		id   int
		name string
	}
	orders := FromSlice([]ord{{1, 10}, {2, 20}, {3, 10}, {4, 99}})
	custs := FromSlice([]cust{{10, "a"}, {20, "b"}})
	q := Join(orders, custs,
		func(o ord) int { return o.cust },
		func(c cust) int { return c.id })
	pairs := ToSlice(q)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].Left.id != 1 || pairs[0].Right.name != "a" {
		t.Fatalf("pair0 = %+v", pairs[0])
	}
	// Order 4 has no customer: inner join drops it.
	for _, p := range pairs {
		if p.Left.id == 4 {
			t.Fatal("unmatched row leaked through inner join")
		}
	}
}

func TestOrderByTake(t *testing.T) {
	src := FromSlice([]int{5, 3, 9, 1, 7})
	got := ToSlice(Take(OrderBy(src, func(a, b int) bool { return b < a }), 3))
	want := []int{9, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSinks(t *testing.T) {
	if Count(nums(7)) != 7 {
		t.Fatal("Count")
	}
	if SumInt64(nums(5), func(x int) int64 { return int64(x) }) != 10 {
		t.Fatal("SumInt64")
	}
	if SumFloat64(nums(5), func(x int) float64 { return float64(x) }) != 10 {
		t.Fatal("SumFloat64")
	}
	if got := Aggregate(nums(4), 1, func(a, x int) int { return a * (x + 1) }); got != 24 {
		t.Fatalf("Aggregate = %d", got)
	}
	if v, ok := First(nums(3)); !ok || v != 0 {
		t.Fatalf("First = %d,%v", v, ok)
	}
	if _, ok := First(nums(0)); ok {
		t.Fatal("First on empty should miss")
	}
	if !Any(nums(5), func(x int) bool { return x == 4 }) {
		t.Fatal("Any true case")
	}
	if Any(nums(5), func(x int) bool { return x > 10 }) {
		t.Fatal("Any false case")
	}
}

func TestEmptySources(t *testing.T) {
	e := FromSlice([]int(nil))
	if Count(e) != 0 {
		t.Fatal("empty count")
	}
	if len(ToSlice(Where(e, func(int) bool { return true }))) != 0 {
		t.Fatal("empty where")
	}
	if len(ToSlice(GroupBy(e, func(x int) int { return x }))) != 0 {
		t.Fatal("empty group")
	}
}
