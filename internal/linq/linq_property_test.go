package linq

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property tests: every operator chain must agree with a straightforward
// loop-based reference implementation on random inputs.

func TestWhereSelectMatchesLoop(t *testing.T) {
	f := func(xs []int32) bool {
		pred := func(v int32) bool { return v%3 == 0 }
		proj := func(v int32) int64 { return int64(v) * 2 }
		got := ToSlice(Select(Where(FromSlice(xs), pred), proj))
		var want []int64
		for _, v := range xs {
			if pred(v) {
				want = append(want, proj(v))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByPartitions(t *testing.T) {
	f := func(xs []int16) bool {
		key := func(v int16) int16 { return v % 7 }
		groups := ToSlice(GroupBy(FromSlice(xs), key))
		// Union of groups = input (as multiset), and each group is pure.
		total := 0
		seen := map[int16]bool{}
		for _, g := range groups {
			if seen[g.Key] {
				return false // duplicate key group
			}
			seen[g.Key] = true
			for _, v := range g.Items {
				if key(v) != g.Key {
					return false
				}
				total++
			}
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMatchesNestedLoops(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		lk := func(v uint8) uint8 { return v % 5 }
		rk := func(v uint8) uint8 { return v % 5 }
		got := ToSlice(Join(FromSlice(ls), FromSlice(rs), lk, rk))
		var want []JoinPair[uint8, uint8]
		for _, l := range ls {
			for _, r := range rs {
				if lk(l) == rk(r) {
					want = append(want, JoinPair[uint8, uint8]{l, r})
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		// Join emits left-order, right-insertion-order: exact match.
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderByIsStableSort(t *testing.T) {
	type rec struct {
		K int8
		I int // original index
	}
	f := func(keys []int8) bool {
		recs := make([]rec, len(keys))
		for i, k := range keys {
			recs[i] = rec{K: k, I: i}
		}
		got := ToSlice(OrderBy(FromSlice(recs), func(a, b rec) bool { return a.K < b.K }))
		want := append([]rec(nil), recs...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].K < want[j].K })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTakeAndCountProperties(t *testing.T) {
	f := func(xs []int32, nRaw uint8) bool {
		n := int(nRaw % 40)
		got := ToSlice(Take(FromSlice(xs), n))
		want := min(n, len(xs))
		if len(got) != want {
			return false
		}
		return Count(FromSlice(xs)) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectManyFlattens(t *testing.T) {
	f := func(xs []uint8) bool {
		// Each element expands to v%4 copies of itself.
		got := ToSlice(SelectMany(FromSlice(xs), func(v uint8) Enumerable[uint8] {
			out := make([]uint8, v%4)
			for i := range out {
				out[i] = v
			}
			return FromSlice(out)
		}))
		var want []uint8
		for _, v := range xs {
			for i := 0; i < int(v%4); i++ {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLazinessReExecution(t *testing.T) {
	// An Enumerable is re-executable: two drains see the same elements,
	// and operators do not run until drained.
	calls := 0
	q := Select(FromSlice([]int{1, 2, 3}), func(v int) int {
		calls++
		return v * 10
	})
	if calls != 0 {
		t.Fatal("Select ran eagerly")
	}
	a := ToSlice(q)
	b := ToSlice(q)
	if calls != 6 {
		t.Fatalf("selector calls = %d, want 6 (two drains)", calls)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("re-execution differs")
		}
	}
}
