// Package linq models LINQ-to-objects: lazily evaluated query operators
// composed over pull-based enumerators with interface (virtual) dispatch
// per element.
//
// This is deliberately the slow baseline. The paper attributes
// LINQ-to-objects' poor performance to "the cost of calling virtual
// functions to propagate intermediate result objects between query
// operators and to evaluate predicate and selector functions in each
// operator" (§1), and reports 40–400% higher evaluation times versus
// compiled queries (§7). Every element here crosses at least one
// interface method call and one closure call per operator, reproducing
// that cost profile in Go.
package linq

import "sort"

// Enumerator is the pull-based iterator: MoveNext advances, Current
// returns the element. Mirrors .NET's IEnumerator<T>.
type Enumerator[T any] interface {
	MoveNext() bool
	Current() T
}

// Enumerable produces fresh enumerators; queries are lazily evaluated and
// re-executable, as in LINQ.
type Enumerable[T any] func() Enumerator[T]

// --- sources ---

type sliceEnum[T any] struct {
	items []T
	i     int
}

func (e *sliceEnum[T]) MoveNext() bool { e.i++; return e.i <= len(e.items) }
func (e *sliceEnum[T]) Current() T     { return e.items[e.i-1] }

// FromSlice enumerates a slice.
func FromSlice[T any](items []T) Enumerable[T] {
	return func() Enumerator[T] { return &sliceEnum[T]{items: items} }
}

// --- operators ---

type whereEnum[T any] struct {
	src  Enumerator[T]
	pred func(T) bool
	cur  T
}

func (e *whereEnum[T]) MoveNext() bool {
	for e.src.MoveNext() {
		c := e.src.Current()
		if e.pred(c) {
			e.cur = c
			return true
		}
	}
	return false
}
func (e *whereEnum[T]) Current() T { return e.cur }

// Where filters elements by a predicate.
func Where[T any](src Enumerable[T], pred func(T) bool) Enumerable[T] {
	return func() Enumerator[T] { return &whereEnum[T]{src: src(), pred: pred} }
}

type selectEnum[T, U any] struct {
	src Enumerator[T]
	f   func(T) U
	cur U
}

func (e *selectEnum[T, U]) MoveNext() bool {
	if e.src.MoveNext() {
		e.cur = e.f(e.src.Current())
		return true
	}
	return false
}
func (e *selectEnum[T, U]) Current() U { return e.cur }

// Select projects each element through f.
func Select[T, U any](src Enumerable[T], f func(T) U) Enumerable[U] {
	return func() Enumerator[U] { return &selectEnum[T, U]{src: src(), f: f} }
}

type selectManyEnum[T, U any] struct {
	src   Enumerator[T]
	f     func(T) Enumerable[U]
	inner Enumerator[U]
	cur   U
}

func (e *selectManyEnum[T, U]) MoveNext() bool {
	for {
		if e.inner != nil && e.inner.MoveNext() {
			e.cur = e.inner.Current()
			return true
		}
		if !e.src.MoveNext() {
			return false
		}
		e.inner = e.f(e.src.Current())()
	}
}
func (e *selectManyEnum[T, U]) Current() U { return e.cur }

// SelectMany flattens a nested enumeration.
func SelectMany[T, U any](src Enumerable[T], f func(T) Enumerable[U]) Enumerable[U] {
	return func() Enumerator[U] { return &selectManyEnum[T, U]{src: src(), f: f} }
}

// Grouping is one key's group.
type Grouping[K comparable, T any] struct {
	Key   K
	Items []T
}

// GroupBy partitions elements by key. Blocking operator: the source is
// drained on first MoveNext, as in LINQ-to-objects.
func GroupBy[T any, K comparable](src Enumerable[T], key func(T) K) Enumerable[Grouping[K, T]] {
	return func() Enumerator[Grouping[K, T]] {
		m := make(map[K]int)
		var groups []Grouping[K, T]
		it := src()
		for it.MoveNext() {
			c := it.Current()
			k := key(c)
			gi, ok := m[k]
			if !ok {
				gi = len(groups)
				m[k] = gi
				groups = append(groups, Grouping[K, T]{Key: k})
			}
			groups[gi].Items = append(groups[gi].Items, c)
		}
		return &sliceEnum[Grouping[K, T]]{items: groups}
	}
}

// JoinPair carries one matched pair from Join.
type JoinPair[L, R any] struct {
	Left  L
	Right R
}

// Join performs an inner hash join on key equality (blocking on the right
// side, streaming on the left, like LINQ's Join).
func Join[L, R any, K comparable](left Enumerable[L], right Enumerable[R], lkey func(L) K, rkey func(R) K) Enumerable[JoinPair[L, R]] {
	return func() Enumerator[JoinPair[L, R]] {
		ht := make(map[K][]R)
		it := right()
		for it.MoveNext() {
			c := it.Current()
			ht[rkey(c)] = append(ht[rkey(c)], c)
		}
		return &joinEnum[L, R, K]{left: left(), lkey: lkey, ht: ht}
	}
}

type joinEnum[L, R any, K comparable] struct {
	left    Enumerator[L]
	lkey    func(L) K
	ht      map[K][]R
	curL    L
	matches []R
	mi      int
}

func (e *joinEnum[L, R, K]) MoveNext() bool {
	for {
		if e.mi < len(e.matches) {
			e.mi++
			return true
		}
		if !e.left.MoveNext() {
			return false
		}
		e.curL = e.left.Current()
		e.matches = e.ht[e.lkey(e.curL)]
		e.mi = 0
	}
}
func (e *joinEnum[L, R, K]) Current() JoinPair[L, R] {
	return JoinPair[L, R]{Left: e.curL, Right: e.matches[e.mi-1]}
}

// OrderBy sorts by the given less function. Blocking operator.
func OrderBy[T any](src Enumerable[T], less func(a, b T) bool) Enumerable[T] {
	return func() Enumerator[T] {
		var items []T
		it := src()
		for it.MoveNext() {
			items = append(items, it.Current())
		}
		sort.SliceStable(items, func(i, j int) bool { return less(items[i], items[j]) })
		return &sliceEnum[T]{items: items}
	}
}

type takeEnum[T any] struct {
	src Enumerator[T]
	n   int
}

func (e *takeEnum[T]) MoveNext() bool {
	if e.n <= 0 {
		return false
	}
	e.n--
	return e.src.MoveNext()
}
func (e *takeEnum[T]) Current() T { return e.src.Current() }

// Take limits the enumeration to the first n elements.
func Take[T any](src Enumerable[T], n int) Enumerable[T] {
	return func() Enumerator[T] { return &takeEnum[T]{src: src(), n: n} }
}

// --- sinks ---

// ToSlice drains the enumeration into a slice.
func ToSlice[T any](src Enumerable[T]) []T {
	var out []T
	it := src()
	for it.MoveNext() {
		out = append(out, it.Current())
	}
	return out
}

// Count drains the enumeration counting elements.
func Count[T any](src Enumerable[T]) int {
	n := 0
	it := src()
	for it.MoveNext() {
		n++
	}
	return n
}

// Aggregate folds the enumeration.
func Aggregate[T, A any](src Enumerable[T], seed A, f func(A, T) A) A {
	acc := seed
	it := src()
	for it.MoveNext() {
		acc = f(acc, it.Current())
	}
	return acc
}

// SumInt64 sums an int64 projection.
func SumInt64[T any](src Enumerable[T], f func(T) int64) int64 {
	var s int64
	it := src()
	for it.MoveNext() {
		s += f(it.Current())
	}
	return s
}

// SumFloat64 sums a float64 projection.
func SumFloat64[T any](src Enumerable[T], f func(T) float64) float64 {
	var s float64
	it := src()
	for it.MoveNext() {
		s += f(it.Current())
	}
	return s
}

// First returns the first element, or ok=false if empty.
func First[T any](src Enumerable[T]) (T, bool) {
	it := src()
	if it.MoveNext() {
		return it.Current(), true
	}
	var zero T
	return zero, false
}

// Any reports whether any element satisfies pred.
func Any[T any](src Enumerable[T], pred func(T) bool) bool {
	it := src()
	for it.MoveNext() {
		if pred(it.Current()) {
			return true
		}
	}
	return false
}
