// Package managed provides the ordinary garbage-collected collection
// baselines the paper evaluates SMCs against (§7): List<T>,
// ConcurrentDictionary<TKey,TValue> and ConcurrentBag<T>.
//
// List stores pointers to heap objects, like a C# List<T> of reference
// types: objects are allocated individually on the managed heap, so after
// churn they end up scattered ("objects may be scattered all over the
// managed heap", §1), which is exactly the locality penalty Figure 10
// measures. ConcurrentDictionary is lock-sharded; ConcurrentBag has no
// specific-element removal, matching the C# API limitation the paper
// notes ("ConcurrentBag<T> does not allow the removal of specific
// objects").
package managed

import (
	"sync"
	"sync/atomic"
)

// List is the C# List<T>-of-reference-types baseline: a dynamic array of
// pointers to individually heap-allocated objects. It is not thread-safe,
// matching the original ("most collections in C# are not thread-safe").
type List[T any] struct {
	items []*T
}

// NewList creates an empty list with the given capacity hint.
func NewList[T any](capacity int) *List[T] {
	return &List[T]{items: make([]*T, 0, capacity)}
}

// Add appends a heap-allocated copy of v and returns its pointer (the
// "reference" the application keeps).
func (l *List[T]) Add(v *T) *T {
	obj := new(T)
	*obj = *v
	l.items = append(l.items, obj)
	return obj
}

// AddPtr appends an existing object pointer.
func (l *List[T]) AddPtr(p *T) { l.items = append(l.items, p) }

// Len returns the number of elements.
func (l *List[T]) Len() int { return len(l.items) }

// At returns the i-th element.
func (l *List[T]) At(i int) *T { return l.items[i] }

// Items exposes the backing slice for compiled query code.
func (l *List[T]) Items() []*T { return l.items }

// RemoveWhere deletes all elements matching pred in one pass, preserving
// order (the paper's refresh streams remove a predicate-selected batch in
// a single enumeration).
func (l *List[T]) RemoveWhere(pred func(*T) bool) int {
	out := l.items[:0]
	removed := 0
	for _, it := range l.items {
		if pred(it) {
			removed++
			continue
		}
		out = append(out, it)
	}
	// Clear the tail so removed objects become collectable.
	for i := len(out); i < len(l.items); i++ {
		l.items[i] = nil
	}
	l.items = out
	return removed
}

// Clear empties the list.
func (l *List[T]) Clear() {
	for i := range l.items {
		l.items[i] = nil
	}
	l.items = l.items[:0]
}

const shardCount = 64

// ConcurrentDictionary is the thread-safe keyed baseline: a hash map
// sharded across shardCount lock-protected segments, the standard Go
// equivalent of C#'s ConcurrentDictionary.
type ConcurrentDictionary[K comparable, V any] struct {
	shards [shardCount]dictShard[K, V]
	length atomic.Int64
	hash   func(K) uint64
}

type dictShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]*V
	_  [40]byte // keep shards off each other's cache lines
}

// NewConcurrentDictionary creates a dictionary using the given hash
// function to pick shards.
func NewConcurrentDictionary[K comparable, V any](hash func(K) uint64) *ConcurrentDictionary[K, V] {
	d := &ConcurrentDictionary[K, V]{hash: hash}
	for i := range d.shards {
		d.shards[i].m = make(map[K]*V)
	}
	return d
}

// NewIntDictionary is a convenience constructor for integer keys.
func NewIntDictionary[V any]() *ConcurrentDictionary[int64, V] {
	return NewConcurrentDictionary[int64, V](func(k int64) uint64 {
		x := uint64(k)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	})
}

func (d *ConcurrentDictionary[K, V]) shard(k K) *dictShard[K, V] {
	return &d.shards[d.hash(k)&(shardCount-1)]
}

// Store inserts or replaces the value for k, returning its pointer.
func (d *ConcurrentDictionary[K, V]) Store(k K, v *V) *V {
	obj := new(V)
	*obj = *v
	s := d.shard(k)
	s.mu.Lock()
	_, existed := s.m[k]
	s.m[k] = obj
	s.mu.Unlock()
	if !existed {
		d.length.Add(1)
	}
	return obj
}

// Load returns the value for k.
func (d *ConcurrentDictionary[K, V]) Load(k K) (*V, bool) {
	s := d.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes k, reporting whether it was present.
func (d *ConcurrentDictionary[K, V]) Delete(k K) bool {
	s := d.shard(k)
	s.mu.Lock()
	_, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	if ok {
		d.length.Add(-1)
	}
	return ok
}

// Len returns the element count.
func (d *ConcurrentDictionary[K, V]) Len() int { return int(d.length.Load()) }

// Range calls fn for every element, shard by shard under read locks.
// fn returning false stops the walk.
func (d *ConcurrentDictionary[K, V]) Range(fn func(K, *V) bool) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// ConcurrentBag is the thread-safe unordered baseline: per-shard slices,
// append-only plus whole-bag enumeration. Like C#'s ConcurrentBag it does
// not support removing specific elements.
type ConcurrentBag[T any] struct {
	shards [shardCount]bagShard[T]
	next   atomic.Uint64
	length atomic.Int64
}

type bagShard[T any] struct {
	mu    sync.Mutex
	items []*T
	_     [40]byte
}

// NewConcurrentBag creates an empty bag.
func NewConcurrentBag[T any]() *ConcurrentBag[T] {
	return &ConcurrentBag[T]{}
}

// Add inserts a heap-allocated copy of v.
func (b *ConcurrentBag[T]) Add(v *T) *T {
	obj := new(T)
	*obj = *v
	i := b.next.Add(1) & (shardCount - 1)
	s := &b.shards[i]
	s.mu.Lock()
	s.items = append(s.items, obj)
	s.mu.Unlock()
	b.length.Add(1)
	return obj
}

// Len returns the element count.
func (b *ConcurrentBag[T]) Len() int { return int(b.length.Load()) }

// Range calls fn for every element. fn returning false stops the walk.
func (b *ConcurrentBag[T]) Range(fn func(*T) bool) {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		items := s.items
		s.mu.Unlock()
		for _, it := range items {
			if !fn(it) {
				return
			}
		}
	}
}
