package managed

import (
	"sync"
	"testing"
)

type item struct {
	ID  int64
	Val int32
}

func TestListBasics(t *testing.T) {
	l := NewList[item](8)
	p := l.Add(&item{ID: 1, Val: 10})
	l.Add(&item{ID: 2, Val: 20})
	l.Add(&item{ID: 3, Val: 30})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.At(0) != p {
		t.Fatal("At(0) is not the returned pointer")
	}
	if l.At(1).ID != 2 {
		t.Fatalf("At(1) = %+v", l.At(1))
	}
	// Mutating through the reference is visible in the list (reference
	// semantics, like C# objects).
	p.Val = 99
	if l.At(0).Val != 99 {
		t.Fatal("reference mutation not visible")
	}
}

func TestListRemoveWhere(t *testing.T) {
	l := NewList[item](0)
	for i := int64(0); i < 100; i++ {
		l.Add(&item{ID: i})
	}
	removed := l.RemoveWhere(func(it *item) bool { return it.ID%3 == 0 })
	if removed != 34 {
		t.Fatalf("removed = %d", removed)
	}
	if l.Len() != 66 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		if l.At(i).ID%3 == 0 {
			t.Fatalf("survivor %d divisible by 3", l.At(i).ID)
		}
	}
	// Order preserved.
	for i := 1; i < l.Len(); i++ {
		if l.At(i).ID <= l.At(i-1).ID {
			t.Fatal("order not preserved")
		}
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestDictionaryBasics(t *testing.T) {
	d := NewIntDictionary[item]()
	d.Store(1, &item{ID: 1, Val: 10})
	d.Store(2, &item{ID: 2, Val: 20})
	d.Store(1, &item{ID: 1, Val: 11}) // replace
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	v, ok := d.Load(1)
	if !ok || v.Val != 11 {
		t.Fatalf("Load(1) = %+v, %v", v, ok)
	}
	if _, ok := d.Load(3); ok {
		t.Fatal("Load(3) should miss")
	}
	if !d.Delete(1) {
		t.Fatal("Delete(1) failed")
	}
	if d.Delete(1) {
		t.Fatal("double Delete should report false")
	}
	if d.Len() != 1 {
		t.Fatalf("Len after delete = %d", d.Len())
	}
}

func TestDictionaryRange(t *testing.T) {
	d := NewIntDictionary[item]()
	for i := int64(0); i < 500; i++ {
		d.Store(i, &item{ID: i})
	}
	var sum int64
	d.Range(func(k int64, v *item) bool {
		sum += v.ID
		return true
	})
	if want := int64(499 * 500 / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	// Early stop.
	n := 0
	d.Range(func(int64, *item) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewIntDictionary[item]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 10000
			for i := int64(0); i < 2000; i++ {
				d.Store(base+i, &item{ID: base + i})
			}
			for i := int64(0); i < 2000; i += 2 {
				d.Delete(base + i)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 4*1000 {
		t.Fatalf("Len = %d, want 4000", d.Len())
	}
}

func TestBagBasics(t *testing.T) {
	b := NewConcurrentBag[item]()
	for i := int64(0); i < 300; i++ {
		b.Add(&item{ID: i})
	}
	if b.Len() != 300 {
		t.Fatalf("Len = %d", b.Len())
	}
	var sum int64
	b.Range(func(it *item) bool { sum += it.ID; return true })
	if want := int64(299 * 300 / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	n := 0
	b.Range(func(*item) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBagConcurrent(t *testing.T) {
	b := NewConcurrentBag[item]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 5000; i++ {
				b.Add(&item{ID: int64(w)<<32 | i})
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != 20000 {
		t.Fatalf("Len = %d", b.Len())
	}
}
