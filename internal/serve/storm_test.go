package serve_test

// The serve storm: concurrent requests racing client cancels and
// server-side deadlines against an active Maintainer, over a front
// door with far fewer admission slots than callers. Run under -race
// (the CI race-stress target matches on the Serve name). The point is
// the quiesce check: after the storm every admission slot is free and
// the engine's session/epoch/arena ledgers balance — a canceled or
// rejected HTTP request must not strand a lease.

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestServeStormLeakFree(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{
		MaxConcurrent:  2,
		AdmitWait:      5 * time.Millisecond,
		DefaultWorkers: 2,
	})

	const goroutines = 10
	const iters = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					// Slot holder that outlives its deadline: reps makes the
					// handler re-observe ctx between scans, so this must come
					// back 504 (or 429 when it never got a slot).
					body := strings.NewReader(`{"reps":1000000}`)
					resp, err := http.Post(e.ts.URL+"/query/q6window?timeout_ms=50", "application/json", body)
					if err != nil {
						t.Errorf("holder request: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK &&
						resp.StatusCode != http.StatusTooManyRequests &&
						resp.StatusCode != http.StatusGatewayTimeout {
						t.Errorf("holder status = %d", resp.StatusCode)
					}
				case 1:
					// Quick aggregate: succeeds or bounces off the gate.
					resp, err := http.Post(e.ts.URL+"/query/q6", "application/json", strings.NewReader(`{}`))
					if err != nil {
						t.Errorf("quick request: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 2:
					// Streaming scan whose client walks away mid-body: the
					// transport error is expected; the leak check below is the
					// real assertion.
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
						e.ts.URL+"/query/q6window/rows", strings.NewReader(`{}`))
					req.Header.Set("Content-Type", "application/json")
					if resp, err := http.DefaultClient.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: in-flight drains to zero, then every ledger balances.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := e.rt.StatsSnapshot()
		balanced := st.Serve.InFlight == 0 &&
			st.EpochPins == 0 &&
			st.SessionsLeased == st.SessionsReturned
		for _, p := range st.ArenaPools {
			if p.Leases != p.Returns {
				balanced = false
			}
		}
		if balanced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storm never quiesced: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := e.rt.StatsSnapshot()
	if st.Serve.Requests == 0 || st.Serve.Admitted == 0 {
		t.Fatalf("storm counters did not advance: %+v", st.Serve)
	}
	if st.Serve.Saturated == 0 {
		t.Errorf("expected at least one 429 with %d callers on 2 slots: %+v", goroutines, st.Serve)
	}
	if st.Serve.Canceled == 0 {
		t.Errorf("expected at least one canceled/deadlined request: %+v", st.Serve)
	}
	// Admission has three exits — admitted, saturated, canceled at the
	// gate — and Canceled also counts post-admission cancels, so the
	// ledger bounds Requests rather than pinning it exactly.
	if r := st.Serve.Requests; r < st.Serve.Admitted+st.Serve.Saturated ||
		r > st.Serve.Admitted+st.Serve.Saturated+st.Serve.Canceled {
		t.Errorf("admission ledger out of bounds: %+v", st.Serve)
	}
}
