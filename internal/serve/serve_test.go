package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/serve"
	"repro/internal/tpch"
	"repro/internal/types"
)

// testEnv is one served database: a runtime, its compiled queries, a
// running maintainer, and an httptest front door.
type testEnv struct {
	rt *core.Runtime
	q  *tpch.SMCQueries
	s  *core.Session
	mt *mem.Maintainer
	ts *httptest.Server
}

func newEnv(t *testing.T, sf float64, cfg serve.Config) *testEnv {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	s := rt.MustSession()
	t.Cleanup(func() { s.Close() })
	data := tpch.Generate(sf, 42)
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := tpch.NewSMCQueries(db)
	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: 20 * time.Millisecond})
	t.Cleanup(func() { mt.Stop() })
	srv := serve.New(rt, q, mt, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &testEnv{rt: rt, q: q, s: s, mt: mt, ts: ts}
}

// post sends a JSON body and decodes the response into out, returning
// the status code.
func (e *testEnv) post(t *testing.T, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(e.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestServeQueriesMatchOracles pins every buffered endpoint's default-
// params response to the serial (un-served) driver: the HTTP layer may
// add latency, never rows.
func TestServeQueriesMatchOracles(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})
	p := tpch.DefaultParams()

	var q1 serve.RowsResponse[tpch.Q1Row]
	if code := e.post(t, "/query/q1", `{}`, &q1); code != http.StatusOK {
		t.Fatalf("q1 status %d", code)
	}
	want1 := e.q.Q1(e.s, p)
	if fmt.Sprint(q1.Rows) != fmt.Sprint(want1) {
		t.Errorf("q1 rows diverge from serial oracle:\n got %v\nwant %v", q1.Rows, want1)
	}

	var q3 serve.RowsResponse[tpch.Q3Row]
	if code := e.post(t, "/query/q3", `{}`, &q3); code != http.StatusOK {
		t.Fatalf("q3 status %d", code)
	}
	want3 := e.q.Q3(e.s, p)
	if fmt.Sprint(q3.Rows) != fmt.Sprint(want3) {
		t.Errorf("q3 rows diverge:\n got %v\nwant %v", q3.Rows, want3)
	}

	var q6 serve.SumResponse
	if code := e.post(t, "/query/q6", `{}`, &q6); code != http.StatusOK {
		t.Fatalf("q6 status %d", code)
	}
	if want := e.q.Q6(e.s, p); q6.Sum != want {
		t.Errorf("q6 sum = %v, want %v", q6.Sum, want)
	}

	var q10 serve.RowsResponse[tpch.Q10Row]
	if code := e.post(t, "/query/q10", `{}`, &q10); code != http.StatusOK {
		t.Fatalf("q10 status %d", code)
	}
	want10 := e.q.Q10(e.s, p)
	if fmt.Sprint(q10.Rows) != fmt.Sprint(want10) {
		t.Errorf("q10 rows diverge:\n got %v\nwant %v", q10.Rows, want10)
	}

	// Typed params actually steer the query: a different Q1 delta changes
	// the cutoff and must match the serial driver at that cutoff.
	p2 := p
	p2.Q1Delta = 300
	var q1b serve.RowsResponse[tpch.Q1Row]
	if code := e.post(t, "/query/q1?workers=2", `{"delta":300}`, &q1b); code != http.StatusOK {
		t.Fatalf("q1 delta status %d", code)
	}
	if want := e.q.Q1(e.s, p2); fmt.Sprint(q1b.Rows) != fmt.Sprint(want) {
		t.Errorf("q1(delta=300) rows diverge:\n got %v\nwant %v", q1b.Rows, want)
	}
}

// TestServeQ6WindowAndStream pins the shared-pass window endpoint and
// the chunked NDJSON row stream to the same oracle: the streamed
// revenues must sum (exactly — decimal addition) to the buffered sum.
func TestServeQ6WindowAndStream(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})
	lo, hi := types.MustDate("1994-01-01"), types.MustDate("1995-06-30")
	oracle, err := e.q.Q6WindowParCtx(context.Background(), e.s, lo, hi, 1, true)
	if err != nil {
		t.Fatal(err)
	}

	var sum serve.SumResponse
	body := fmt.Sprintf(`{"lo":"%s","hi":"%s"}`, lo, hi)
	if code := e.post(t, "/query/q6window", body, &sum); code != http.StatusOK {
		t.Fatalf("q6window status %d", code)
	}
	if sum.Sum != oracle {
		t.Errorf("q6window sum = %v, want %v", sum.Sum, oracle)
	}

	resp, err := http.Post(e.ts.URL+"/query/q6window/rows", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var streamed decimal.Dec128
	var rows int64
	var trailer *serve.StreamTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if trailer != nil {
			t.Fatalf("line after trailer: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) || bytes.Contains(line, []byte(`"error"`)) {
			trailer = new(serve.StreamTrailer)
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			continue
		}
		var hit tpch.Q6WindowHit
		if err := json.Unmarshal(line, &hit); err != nil {
			t.Fatalf("row line: %v (%s)", err, line)
		}
		if hit.ShipDate < lo || hit.ShipDate > hi {
			t.Fatalf("streamed row outside window: %v", hit)
		}
		streamed = streamed.Add(hit.Revenue)
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if trailer == nil || !trailer.Done || trailer.Error != nil {
		t.Fatalf("bad trailer: %+v", trailer)
	}
	if trailer.Rows != rows {
		t.Errorf("trailer rows %d != streamed rows %d", trailer.Rows, rows)
	}
	if rows == 0 {
		t.Fatal("stream produced no rows — degenerate window")
	}
	if streamed != oracle {
		t.Errorf("streamed revenue sum = %v, want %v", streamed, oracle)
	}
}

// TestServeErrorModel pins the typed status mapping: validation 400,
// unknown 404, wrong method 405, deadline 504, budget rejection 503.
func TestServeErrorModel(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})

	var env serve.ErrorEnvelope
	if code := e.post(t, "/query/q6", `{"nonsense":1}`, &env); code != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Errorf("unknown field: status %d code %q", code, env.Error.Code)
	}
	env = serve.ErrorEnvelope{}
	if code := e.post(t, "/query/q6window", `{"lo":"not-a-date"}`, &env); code != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Errorf("bad date: status %d code %q", code, env.Error.Code)
	}
	if code := e.post(t, "/query/q6?workers=zap", `{}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad workers knob: status %d", code)
	}
	resp, err := http.Get(e.ts.URL + "/query/q99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown query: status %d", resp.StatusCode)
	}
	resp, err = http.Get(e.ts.URL + "/query/q6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query: status %d", resp.StatusCode)
	}

	// Per-request deadline: a 1ms budget over thousands of reps cannot
	// finish; the engine observes ctx at block-claim granularity and the
	// server maps the deadline onto 504.
	env = serve.ErrorEnvelope{}
	if code := e.post(t, "/query/q6window?timeout_ms=1", `{"reps":1000000}`, &env); code != http.StatusGatewayTimeout || env.Error.Code != "timeout" {
		t.Errorf("deadline: status %d code %q", code, env.Error.Code)
	}

	// Budget rejection: with a 1-byte budget every admission is rejected
	// after the bounded wait; the typed ErrBudgetExceeded maps onto 503
	// with Retry-After.
	e.rt.SetMemoryBudget(1)
	defer e.rt.SetMemoryBudget(0)
	req, _ := http.NewRequest(http.MethodPost, e.ts.URL+"/query/q6window?timeout_ms=60000", strings.NewReader(`{}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	env = serve.ErrorEnvelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "budget_exceeded" {
		t.Errorf("budget: status %d code %q", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("budget rejection missing Retry-After")
	}
}

// TestServeSaturationBackpressure pins the session-pool saturation fix:
// with one admission slot held busy, a second request gets a typed 429
// with Retry-After within the bounded wait instead of queueing
// unboundedly, and the counter reaches StatsSnapshot.
func TestServeSaturationBackpressure(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{MaxConcurrent: 1, AdmitWait: 20 * time.Millisecond})

	// Occupy the only slot with a long request.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		e.post(t, "/query/q6window?timeout_ms=2000", `{"reps":1000000}`, nil)
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(2 * time.Second)
	for e.rt.StatsSnapshot().Serve.InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long request never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodPost, e.ts.URL+"/query/q6", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env serve.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != "saturated" {
		t.Fatalf("saturated request: status %d code %q", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if wait := time.Since(start); wait > time.Second {
		t.Errorf("saturated request took %v — wait not bounded", wait)
	}
	if st := e.rt.StatsSnapshot(); st.Serve.Saturated == 0 {
		t.Error("Saturated counter not surfaced through StatsSnapshot")
	}
	<-hold
}

// postClass is post with an X-Client-Class header, returning the status
// code and the response headers.
func (e *testEnv) postClass(t *testing.T, path, class, body string, out any) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, e.ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set("X-Client-Class", class)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestServeClassQuotas pins the multi-tenant isolation gate: a greedy
// class exhausts its own quota and eats typed 429s while a classless
// request sails through the global gate, and the refusals surface as
// ClassLimited in StatsSnapshot.
func TestServeClassQuotas(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{
		MaxConcurrent: 4,
		AdmitWait:     20 * time.Millisecond,
		ClassQuotas:   map[string]int{"batch": 1},
	})

	// Occupy batch's only quota slot with a long request.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		e.postClass(t, "/query/q6window?timeout_ms=2000", "batch", `{"reps":1000000}`, nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for e.rt.StatsSnapshot().Serve.InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long batch request never took its quota slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second batch request: refused at the class gate with the typed 429.
	var env serve.ErrorEnvelope
	code, hdr := e.postClass(t, "/query/q6", "batch", `{}`, &env)
	if code != http.StatusTooManyRequests || env.Error.Code != "saturated" {
		t.Fatalf("greedy class: status %d code %q", code, env.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("class-limited 429 missing Retry-After")
	}

	// A classless request is isolated from batch's greed: global slots
	// remain (only 1 of 4 is held), so it runs.
	if code, _ := e.postClass(t, "/query/q6", "", `{}`, nil); code != http.StatusOK {
		t.Errorf("classless request under class pressure: status %d", code)
	}
	st := e.rt.StatsSnapshot().Serve
	if st.ClassLimited == 0 {
		t.Error("ClassLimited not surfaced through StatsSnapshot")
	}
	if st.ClassLimited > st.Saturated {
		t.Errorf("ClassLimited %d not a subset of Saturated %d", st.ClassLimited, st.Saturated)
	}
	<-hold

	// With the quota slot free again, batch is served.
	if code, _ := e.postClass(t, "/query/q6", "batch", `{}`, nil); code != http.StatusOK {
		t.Errorf("batch after slot freed: status %d", code)
	}
}

// TestServeHealthzDegradedButServing pins the pressure-aware /healthz
// contract: memory pressure keeps the status 200 (degraded but serving,
// level in the body) — only a dead Maintainer is a 503. The /stats
// Governor section carries the same accounting.
func TestServeHealthzDegradedButServing(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})

	var hr serve.HealthResponse
	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !hr.OK || hr.Degraded || hr.Pressure != "healthy" {
		t.Fatalf("unpressured healthz: status %d body %+v", resp.StatusCode, hr)
	}

	// A 1-byte budget puts the governed total at Critical: still 200.
	e.rt.SetMemoryBudget(1)
	defer e.rt.SetMemoryBudget(0)
	hr = serve.HealthResponse{}
	resp, err = http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pressured healthz drained the replica: status %d", resp.StatusCode)
	}
	if !hr.OK || !hr.Degraded || hr.Pressure != "critical" {
		t.Errorf("pressured healthz body = %+v, want ok+degraded+critical", hr)
	}

	var stats core.RuntimeStats
	resp, err = http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Governor.Level != "critical" || stats.Governor.Limit != 1 {
		t.Errorf("stats Governor section = %+v, want critical at limit 1", stats.Governor)
	}
	if stats.Governor.GovernedUsed < stats.Governor.HeapUsed {
		t.Errorf("governed total %d below heap term %d", stats.Governor.GovernedUsed, stats.Governor.HeapUsed)
	}
}

// TestServeRetryAfterDerivedBounds pins the wire form of the governor-
// derived backoff: an integer second count inside the [1s, 30s] clamp on
// every budget 503.
func TestServeRetryAfterDerivedBounds(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})
	e.rt.SetMemoryBudget(1)
	defer e.rt.SetMemoryBudget(0)

	req, _ := http.NewRequest(http.MethodPost, e.ts.URL+"/query/q6window?timeout_ms=60000", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env serve.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "budget_exceeded" {
		t.Fatalf("status %d code %q, want 503 budget_exceeded", resp.StatusCode, env.Error.Code)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer second count: %v", ra, err)
	}
	if secs < 1 || secs > 30 {
		t.Errorf("Retry-After %d outside the [1, 30] clamp", secs)
	}
}

// TestServeHealthzStatsQueries covers the operational endpoints:
// readiness follows the Maintainer, /stats carries the runtime snapshot
// with serve counters, /queries publishes the schema-derived contracts.
func TestServeHealthzStatsQueries(t *testing.T) {
	e := newEnv(t, 0.001, serve.Config{})

	resp, err := http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with running maintainer: %d", resp.StatusCode)
	}

	e.post(t, "/query/q6", `{}`, nil)
	var stats core.RuntimeStats
	resp, err = http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serve.Requests == 0 || stats.Serve.Admitted == 0 {
		t.Errorf("stats missing serve counters: %+v", stats.Serve)
	}
	if stats.BlocksAllocated == 0 {
		t.Error("stats missing runtime counters")
	}

	var reg struct {
		Queries []struct {
			Name   string          `json:"name"`
			Path   string          `json:"path"`
			Stream bool            `json:"stream"`
			Params json.RawMessage `json:"params"`
		} `json:"queries"`
	}
	resp, err = http.Get(e.ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"q1": false, "q3": false, "q6": false, "q6window": false, "q6window/rows": true, "q10": false}
	got := map[string]bool{}
	for _, q := range reg.Queries {
		got[q.Name] = q.Stream
		if len(q.Params) == 0 {
			t.Errorf("query %s has no params schema", q.Name)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("registered queries = %v, want %v", got, want)
	}

	// Readiness gates on the maintainer.
	e.mt.Stop()
	resp, err = http.Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with stopped maintainer: %d", resp.StatusCode)
	}
}
