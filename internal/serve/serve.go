// Package serve is the query service's HTTP front door: parameterized
// TPC-H queries over self-managed collections, served to concurrent
// clients.
//
// The engine already has everything a server needs — per-request arena
// leasing, pooled sessions, context cancellation threaded to
// block-claim granularity, budget-gated admission, cooperative scan
// sharing — so the handlers are thin: decode typed params (the wire
// contracts are reflection-derived from Go structs by internal/schema
// and published at /queries), hand the request's context.Context
// straight to query.NewCtx via the *ParCtx drivers, and map the
// engine's typed errors onto HTTP statuses.
//
// Admission: the server bounds concurrent query execution with its own
// gate (Config.MaxConcurrent slots). A request that cannot take a slot
// within Config.AdmitWait is turned away with HTTP 429, a Retry-After
// header and a typed "saturated" envelope — bounded backpressure
// instead of piling goroutines onto the session pool until slot
// exhaustion. Gate activity is surfaced through
// core.Runtime.StatsSnapshot (core.ServeCounters).
//
// Multi-tenant isolation: Config.ClassQuotas optionally bounds each
// client class (the X-Client-Class request header) to its own slot
// count inside the global gate. A greedy class exhausts its quota and
// eats 429s while every other class keeps its latency; classless
// requests see only the global gate.
//
// Backpressure statuses (429/503) carry a Retry-After derived from the
// memory governor's measured reclaim rate (mem.Governor.RetryAfter,
// clamped to [1s, 30s]), so a client backs off for roughly as long as
// the governed deficit needs to drain. /healthz distinguishes
// degraded-but-serving — memory pressure Tight/Critical, still 200,
// level in the body — from not-ready 503 (Maintainer down).
//
// Error model (engine error → HTTP status):
//
//	serve.ErrSaturated        → 429 code "saturated"    (admission gate full past the bounded wait)
//	mem.ErrBudgetExceeded     → 503 code "budget_exceeded" (memory budget rejected the query)
//	context.DeadlineExceeded  → 504 code "timeout"      (per-request deadline hit mid-query)
//	context.Canceled          → 499 code "canceled"     (client went away; logged, rarely seen)
//	decode/validation failure → 400 code "bad_request"
//	unknown query             → 404 code "not_found"
//	anything else (incl. mem.ErrWorkerPanic) → 500 code "internal"
//
// Canceled and deadline-hit queries return within one block's work per
// worker (the engine observes ctx at block-claim granularity) with
// every pooled session returned and every leased arena back in its
// pool — the storm test asserts the balance via StatsSnapshot.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tpch"
)

// ErrSaturated is the typed admission failure: every slot stayed busy
// for the whole bounded wait. Clients should back off and retry (the
// HTTP layer adds Retry-After).
var ErrSaturated = errors.New("serve: admission gate saturated")

// Config sizes the front door.
type Config struct {
	// MaxConcurrent is the number of admission slots — queries executing
	// at once. Default 64: well under epoch.MaxSessions even with every
	// query fanning out workers.
	MaxConcurrent int
	// AdmitWait is the bounded time a request may wait for a slot before
	// the typed 429. Default 100ms.
	AdmitWait time.Duration
	// DefaultTimeout is the server-side deadline applied when the request
	// carries no timeout_ms; MaxTimeout caps what a request may ask for.
	// Defaults 10s / 60s.
	DefaultTimeout, MaxTimeout time.Duration
	// DefaultWorkers is the per-query scan fan-out when the request
	// carries no workers knob; MaxWorkers caps it. Defaults 1 /
	// GOMAXPROCS.
	DefaultWorkers, MaxWorkers int
	// ClassQuotas optionally caps concurrent queries per client class
	// (the X-Client-Class request header): a request whose class cannot
	// take one of its quota slots within AdmitWait gets the typed 429
	// without touching the global gate. Classes not listed here (and
	// classless requests) see only the global gate.
	ClassQuotas map[string]int
}

// classHeader names the request header carrying the client class the
// per-class admission quotas key on.
const classHeader = "X-Client-Class"

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the HTTP front door over one runtime's TPC-H collections.
// It implements http.Handler and core.ServeMetrics.
type Server struct {
	rt  *core.Runtime
	q   *tpch.SMCQueries
	mt  *mem.Maintainer
	cfg Config
	mux *http.ServeMux
	sem chan struct{}
	// classSem holds one quota semaphore per configured client class.
	classSem map[string]chan struct{}

	specs []*Spec

	requests, admitted, saturated atomic.Int64
	canceled, admitWaitNanos      atomic.Int64
	inFlight                      atomic.Int64
	classLimited                  atomic.Int64
}

// New builds a Server over the given runtime and compiled query object,
// registers the built-in query endpoints, and registers the server's
// admission counters with the runtime's stats surface. mt gates
// /healthz readiness: the server reports ready only while the
// Maintainer is up (a serving heap without background compaction
// fragments without bound).
func New(rt *core.Runtime, q *tpch.SMCQueries, mt *mem.Maintainer, cfg Config) *Server {
	s := &Server{
		rt:  rt,
		q:   q,
		mt:  mt,
		cfg: cfg.withDefaults(),
		mux: http.NewServeMux(),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	if len(s.cfg.ClassQuotas) > 0 {
		s.classSem = make(map[string]chan struct{}, len(s.cfg.ClassQuotas))
		for class, n := range s.cfg.ClassQuotas {
			if n > 0 {
				s.classSem[class] = make(chan struct{}, n)
			}
		}
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/queries", s.handleQueries)
	registerBuiltin(s)
	rt.RegisterServer(s)
	return s
}

// ServeHTTP dispatches to the registered endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ServeCounters implements core.ServeMetrics: the admission-gate
// activity StatsSnapshot folds into the process-wide stats.
func (s *Server) ServeCounters() core.ServeCounters {
	return core.ServeCounters{
		Requests:       s.requests.Load(),
		Admitted:       s.admitted.Load(),
		Saturated:      s.saturated.Load(),
		ClassLimited:   s.classLimited.Load(),
		Canceled:       s.canceled.Load(),
		AdmitWaitNanos: s.admitWaitNanos.Load(),
		InFlight:       s.inFlight.Load(),
	}
}

// register adds one endpoint spec; called at construction time, before
// the server handles traffic.
func (s *Server) register(sp *Spec) {
	s.specs = append(s.specs, sp)
	s.mux.HandleFunc(sp.Path, func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, sp)
	})
}

// admit takes an admission slot, waiting at most cfg.AdmitWait. When
// the request's class carries a quota, its class slot is taken first —
// a greedy class saturates its own quota (counted in ClassLimited) and
// never reaches the global gate, so other classes keep their latency.
// The returned release func must be called exactly once. A nil release
// means the request was not admitted and err tells why (ErrSaturated or
// the request context's cause).
func (s *Server) admit(ctx context.Context, class string) (release func(), err error) {
	s.requests.Add(1)
	start := time.Now()
	defer func() { s.admitWaitNanos.Add(time.Since(start).Nanoseconds()) }()
	if q := s.classSem[class]; q != nil {
		if err := s.acquire(ctx, q); err != nil {
			if errors.Is(err, ErrSaturated) {
				s.classLimited.Add(1)
				s.saturated.Add(1)
			} else {
				s.canceled.Add(1)
			}
			return nil, err
		}
		defer func() {
			if release == nil {
				<-q // global gate refused: give the class slot back
			}
		}()
		if err := s.acquire(ctx, s.sem); err != nil {
			if errors.Is(err, ErrSaturated) {
				s.saturated.Add(1)
			} else {
				s.canceled.Add(1)
			}
			return nil, err
		}
		s.admitted.Add(1)
		s.inFlight.Add(1)
		return func() {
			s.inFlight.Add(-1)
			<-s.sem
			<-q
		}, nil
	}
	if err := s.acquire(ctx, s.sem); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.saturated.Add(1)
		} else {
			s.canceled.Add(1)
		}
		return nil, err
	}
	s.admitted.Add(1)
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		<-s.sem
	}, nil
}

// acquire takes one slot from sem within cfg.AdmitWait, or reports
// ErrSaturated / the context's cause.
func (s *Server) acquire(ctx context.Context, sem chan struct{}) error {
	select {
	case sem <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(s.cfg.AdmitWait)
	defer t.Stop()
	select {
	case sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return ErrSaturated
	}
}

// knobs are the per-request execution knobs carried in the query
// string, outside the typed params body: ?workers=N&timeout_ms=M.
func (s *Server) knobs(r *http.Request) (workers int, timeout time.Duration, err error) {
	workers, timeout = s.cfg.DefaultWorkers, s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("workers"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return 0, 0, fmt.Errorf("bad workers %q", v)
		}
		workers = min(n, s.cfg.MaxWorkers)
	}
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return 0, 0, fmt.Errorf("bad timeout_ms %q", v)
		}
		timeout = min(time.Duration(n)*time.Millisecond, s.cfg.MaxTimeout)
	}
	return workers, timeout, nil
}

// handleQuery is the one request path every query endpoint shares:
// admission gate → pooled session lease → typed param decode →
// context-bound driver → typed status mapping.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, sp *Spec) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	workers, timeout, err := s.knobs(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	release, err := s.admit(r.Context(), r.Header.Get(classHeader))
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	defer release()

	params, err := sp.decode(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	sess, err := s.rt.LeaseSession()
	if err != nil {
		// Session slots exhausted outright: same shape as saturation.
		s.saturated.Add(1)
		s.writeQueryError(w, fmt.Errorf("%w: %v", ErrSaturated, err))
		return
	}
	defer s.rt.ReturnSession(sess)

	if sp.Stream != nil {
		s.streamQuery(ctx, w, sp, sess, workers, params)
		return
	}
	resp, err := sp.Run(ctx, s.q, sess, workers, params)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.canceled.Add(1)
		}
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamQuery emits a chunked NDJSON response: one JSON row object per
// line, flushed as the engine's unordered per-block batches arrive, then
// a final {"done":true,...} trailer. Errors after the first chunk
// arrive as an {"error":...} line — the 200 status is already on the
// wire, so the trailer's absence/error form is the integrity signal.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, sp *Spec, sess *core.Session, workers int, params any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n, err := sp.Stream(ctx, s.q, sess, workers, params, func(chunk any) error {
		if err := enc.Encode(chunk); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.canceled.Add(1)
		}
		status, code := statusOf(err)
		_ = enc.Encode(StreamTrailer{Error: &APIError{Code: code, Message: err.Error(), Status: status}})
		return
	}
	_ = enc.Encode(StreamTrailer{Done: true, Rows: n})
	if flusher != nil {
		flusher.Flush()
	}
}

// StreamTrailer is the last NDJSON line of a streamed response: either
// {"done":true,"rows":N} on success or an {"error":...} integrity
// signal (the 200 status is already on the wire by then).
type StreamTrailer struct {
	Done  bool      `json:"done,omitempty"`
	Rows  int64     `json:"rows,omitempty"`
	Error *APIError `json:"error,omitempty"`
}

// HealthResponse is the /healthz body. Not-ready (Maintainer down) is
// a 503; memory pressure is NOT — a governed heap under pressure is
// degraded but serving, so the body reports the pressure level and the
// status stays 200 (a load balancer must not drain a replica for doing
// exactly what the degradation ladder is for).
type HealthResponse struct {
	OK       bool   `json:"ok"`
	Pressure string `json:"pressure"`
	Degraded bool   `json:"degraded"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.mt == nil || !s.mt.Running() {
		writeError(w, http.StatusServiceUnavailable, "not_ready", "maintainer not running")
		return
	}
	lvl := s.rt.Manager().Governor().Level()
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:       true,
		Pressure: lvl.String(),
		Degraded: lvl != mem.Healthy,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.rt.StatsSnapshot())
}

// handleQueries publishes the endpoint registry: every query's path and
// its schema-derived wire contract.
func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name     string `json:"name"`
		Path     string `json:"path"`
		Summary  string `json:"summary"`
		Stream   bool   `json:"stream,omitempty"`
		Params   any    `json:"params"`
		Response any    `json:"response"`
	}
	out := make([]entry, 0, len(s.specs))
	for _, sp := range s.specs {
		out = append(out, entry{
			Name:     sp.Name,
			Path:     sp.Path,
			Summary:  sp.Summary,
			Stream:   sp.Stream != nil,
			Params:   sp.ParamsSchema,
			Response: sp.ResponseSchema,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": out})
}

// APIError is the typed error envelope body.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// ErrorEnvelope is the JSON body of every non-200 query response.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// statusOf maps an engine error onto (HTTP status, error code).
func statusOf(err error) (int, string) {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests, "saturated"
	case errors.Is(err, mem.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, "budget_exceeded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		// Nginx's "client closed request": the client is gone, so the
		// status is for the access log, not the wire.
		return 499, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeQueryError writes the typed envelope for an engine error,
// attaching Retry-After to the backpressure statuses. The value is not
// a constant: the memory governor derives it from the governed deficit
// and the measured reclaim rate (clamped to [1s, 30s]), so clients back
// off for about as long as reclamation actually needs.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	writeError(w, status, code, err.Error())
}

// retryAfterSeconds renders the governor's backoff as whole seconds
// (ceiling, so a sub-second estimate still says 1).
func (s *Server) retryAfterSeconds() string {
	d := s.rt.Manager().Governor().RetryAfter()
	return strconv.FormatInt(int64((d+time.Second-1)/time.Second), 10)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: APIError{Code: code, Message: msg, Status: status}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
