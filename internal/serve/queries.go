package serve

// The endpoint registry: each parameterized query is one Spec — typed
// params struct in, typed response struct out, wire contracts derived
// from the Go types by internal/schema at registration time (a type the
// deriver rejects fails server construction, not the first request).
// Zero-valued params fall back to the TPC-H validation defaults
// (tpch.DefaultParams), so `curl -d '{}'` runs every query.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/schema"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Spec is one registered query endpoint.
type Spec struct {
	Name    string
	Path    string
	Summary string
	// ParamsSchema and ResponseSchema are the schema-derived wire
	// contracts published at /queries. For streaming endpoints the
	// response schema describes one NDJSON row line.
	ParamsSchema, ResponseSchema *schema.JSONSchema
	// Run executes a buffered query; Stream executes a chunked-row query
	// (exactly one of the two is set). Both receive the decoded params
	// value produced by decode.
	Run    func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, params any) (any, error)
	Stream func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, params any, sink func(chunk any) error) (int64, error)

	decode func(r *http.Request) (any, error)
}

// decodeInto strictly decodes the request body into *P; an empty body
// yields zero params (the documented "all defaults" request).
func decodeInto[P any](r *http.Request) (any, error) {
	p := new(P)
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("bad params: %v", err)
	}
	return p, nil
}

// newSpec builds a buffered-response endpoint over typed params P and
// response R, deriving both wire schemas.
func newSpec[P, R any](name, summary string,
	run func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, p *P) (*R, error)) *Spec {
	return &Spec{
		Name:           name,
		Path:           "/query/" + name,
		Summary:        summary,
		ParamsSchema:   schema.MustJSONOf(reflect.TypeFor[P]()),
		ResponseSchema: schema.MustJSONOf(reflect.TypeFor[R]()),
		decode:         decodeInto[P],
		Run: func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, params any) (any, error) {
			return run(ctx, q, s, workers, params.(*P))
		},
	}
}

// newStreamSpec builds a chunked-row endpoint: R is the per-line row
// type, and stream pushes rows through sink as the scan produces them.
func newStreamSpec[P, R any](name, summary string,
	stream func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, p *P, sink func(R) error) (int64, error)) *Spec {
	return &Spec{
		Name:           name,
		Path:           "/query/" + name,
		Summary:        summary,
		ParamsSchema:   schema.MustJSONOf(reflect.TypeFor[P]()),
		ResponseSchema: schema.MustJSONOf(reflect.TypeFor[R]()),
		decode:         decodeInto[P],
		Stream: func(ctx context.Context, q *tpch.SMCQueries, s *core.Session, workers int, params any, sink func(any) error) (int64, error) {
			return stream(ctx, q, s, workers, params.(*P), func(row R) error { return sink(row) })
		},
	}
}

// Wire types. Every field is optional (zero value → TPC-H validation
// default), so the schemas mark them omitempty and `{}` is a valid
// request everywhere.

// Q1Params parameterizes the pricing summary report.
type Q1Params struct {
	// Delta is the shipdate cutoff offset in days before 1998-12-01.
	Delta int `json:"delta,omitempty"`
}

// RowsResponse is the buffered row-set envelope.
type RowsResponse[R any] struct {
	Rows []R `json:"rows"`
}

// Q3Params parameterizes the shipping-priority query.
type Q3Params struct {
	Segment string     `json:"segment,omitempty"`
	Date    types.Date `json:"date,omitempty"`
}

// Q6Params parameterizes the revenue-change query.
type Q6Params struct {
	Date     types.Date     `json:"date,omitempty"`
	Discount decimal.Dec128 `json:"discount,omitempty"`
	Quantity decimal.Dec128 `json:"quantity,omitempty"`
}

// SumResponse is the single-aggregate envelope.
type SumResponse struct {
	Sum decimal.Dec128 `json:"sum"`
}

// Q6WindowParams parameterizes the windowed revenue scan. Lo/Hi bound
// the ship-date window inclusively; a zero Hi means "no upper bound".
// Concurrent q6window requests ride the collection's cooperative
// scan-share group — a burst shares one physical pass.
type Q6WindowParams struct {
	Lo types.Date `json:"lo,omitempty"`
	Hi types.Date `json:"hi,omitempty"`
	// NoPushdown disables the synopsis pushdown (the kernel's residual
	// window check runs either way, so the sum cannot change).
	NoPushdown bool `json:"no_pushdown,omitempty"`
	// Reps re-runs the scan N times and returns the last sum — a load-
	// and cancellation-testing knob (each rep re-admits under the budget
	// and re-observes the request context).
	Reps int `json:"reps,omitempty"`
}

// Q10Params parameterizes the returned-item report.
type Q10Params struct {
	Date types.Date `json:"date,omitempty"`
}

// maxReps caps the q6window load-test knob.
const maxReps = 1 << 20

// registerBuiltin registers the served query set. At minimum the
// parameterized Q1, Q3, Q6, Q6Window and Q10 per the serving roadmap;
// q6window/rows is the chunked streaming form.
func registerBuiltin(s *Server) {
	s.register(newSpec("q1", "TPC-H Q1 pricing summary report",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q1Params) (*RowsResponse[tpch.Q1Row], error) {
			tp := tpch.DefaultParams()
			if p.Delta > 0 {
				tp.Q1Delta = p.Delta
			}
			rows, err := q.Q1ParCtx(ctx, sess, tp, workers)
			if err != nil {
				return nil, err
			}
			return &RowsResponse[tpch.Q1Row]{Rows: rows}, nil
		}))
	s.register(newSpec("q3", "TPC-H Q3 shipping priority (top 10)",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q3Params) (*RowsResponse[tpch.Q3Row], error) {
			tp := tpch.DefaultParams()
			if p.Segment != "" {
				tp.Q3Segment = p.Segment
			}
			if p.Date != 0 {
				tp.Q3Date = p.Date
			}
			rows, err := q.Q3ParCtx(ctx, sess, tp, workers)
			if err != nil {
				return nil, err
			}
			return &RowsResponse[tpch.Q3Row]{Rows: rows}, nil
		}))
	s.register(newSpec("q6", "TPC-H Q6 forecasting revenue change",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q6Params) (*SumResponse, error) {
			tp := tpch.DefaultParams()
			if p.Date != 0 {
				tp.Q6Date = p.Date
			}
			if !p.Discount.IsZero() {
				tp.Q6Discount = p.Discount
			}
			if !p.Quantity.IsZero() {
				tp.Q6Quantity = p.Quantity
			}
			sum, err := q.Q6ParCtx(ctx, sess, tp, workers)
			if err != nil {
				return nil, err
			}
			return &SumResponse{Sum: sum}, nil
		}))
	s.register(newSpec("q6window", "Windowed revenue scan (rides the cooperative scan-share group)",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q6WindowParams) (*SumResponse, error) {
			lo, hi := windowBounds(p.Lo, p.Hi)
			reps := p.Reps
			if reps < 1 {
				reps = 1
			} else if reps > maxReps {
				reps = maxReps
			}
			var sum decimal.Dec128
			for i := 0; i < reps; i++ {
				var err error
				sum, err = q.Q6WindowSharedCtx(ctx, sess, lo, hi, workers, !p.NoPushdown)
				if err != nil {
					return nil, err
				}
			}
			return &SumResponse{Sum: sum}, nil
		}))
	s.register(newStreamSpec("q6window/rows", "Windowed revenue scan, qualifying rows streamed as NDJSON chunks",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q6WindowParams, sink func(tpch.Q6WindowHit) error) (int64, error) {
			lo, hi := windowBounds(p.Lo, p.Hi)
			var n int64
			err := q.Q6WindowRowsCtx(ctx, sess, lo, hi, workers, !p.NoPushdown, func(rows []tpch.Q6WindowHit) error {
				for _, row := range rows {
					if err := sink(row); err != nil {
						return err
					}
					n++
				}
				return nil
			})
			return n, err
		}))
	s.register(newSpec("q10", "TPC-H Q10 returned-item reporting (top 20)",
		func(ctx context.Context, q *tpch.SMCQueries, sess *core.Session, workers int, p *Q10Params) (*RowsResponse[tpch.Q10Row], error) {
			tp := tpch.DefaultParams()
			if p.Date != 0 {
				tp.Q10Date = p.Date
			}
			rows, err := q.Q10ParCtx(ctx, sess, tp, workers)
			if err != nil {
				return nil, err
			}
			return &RowsResponse[tpch.Q10Row]{Rows: rows}, nil
		}))
}

// windowBounds resolves the optional window: zero Hi means unbounded
// above (synopsis intervals are inclusive, so the max date is exact).
func windowBounds(lo, hi types.Date) (types.Date, types.Date) {
	if hi == 0 {
		hi = types.Date(1<<31 - 1)
	}
	return lo, hi
}
