package decimal

import "math/bits"

// In-place pointer arithmetic. The paper's unsafe compiled queries gain
// most of their Q1 advantage by passing 16-byte decimals to arithmetic
// functions by pointer and mutating accumulators in place instead of
// copying values through the managed calling convention (§7, Figure 11).
// These functions are the Go equivalents: they operate directly on
// Dec128 values living inside off-heap memory slots or accumulator
// buffers.

// AddAssign adds v's value to *d in place.
func AddAssign(d *Dec128, v *Dec128) {
	var c uint64
	d.Lo, c = bits.Add64(d.Lo, v.Lo, 0)
	hi, _ := bits.Add64(uint64(d.Hi), uint64(v.Hi), c)
	d.Hi = int64(hi)
}

// SubAssign subtracts v's value from *d in place.
func SubAssign(d *Dec128, v *Dec128) {
	var b uint64
	d.Lo, b = bits.Sub64(d.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(uint64(d.Hi), uint64(v.Hi), b)
	d.Hi = int64(hi)
}

// AddUnitsAssign adds raw 1e-4 units to *d in place. Useful for
// accumulating int-backed columns (quantity) into decimal sums without
// materializing a Dec128.
func AddUnitsAssign(d *Dec128, units int64) {
	var sHi uint64
	if units < 0 {
		sHi = ^uint64(0)
	}
	var c uint64
	d.Lo, c = bits.Add64(d.Lo, uint64(units), 0)
	hi, _ := bits.Add64(uint64(d.Hi), sHi, c)
	d.Hi = int64(hi)
}

// MulAdd computes acc += a*b without copying the operands, mirroring the
// generated code for sum(l_extendedprice * l_discount) style expressions.
func MulAdd(acc, a, b *Dec128) {
	p := a.Mul(*b)
	AddAssign(acc, &p)
}

// MulPair multiplies *a and *b into *dst (dst may alias a or b).
func MulPair(dst, a, b *Dec128) {
	*dst = a.Mul(*b)
}
