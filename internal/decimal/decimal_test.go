package decimal

import (
	"math/big"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestSizeIs16Bytes(t *testing.T) {
	if s := unsafe.Sizeof(Dec128{}); s != 16 {
		t.Fatalf("Dec128 size = %d, want 16", s)
	}
}

func TestBasicConstruction(t *testing.T) {
	if got := FromInt64(3).String(); got != "3.0000" {
		t.Errorf("FromInt64(3) = %s", got)
	}
	if got := FromInt64(-3).String(); got != "-3.0000" {
		t.Errorf("FromInt64(-3) = %s", got)
	}
	if got := FromUnits(12345).String(); got != "1.2345" {
		t.Errorf("FromUnits(12345) = %s", got)
	}
	if got := FromCents(150).String(); got != "1.5000" {
		t.Errorf("FromCents(150) = %s", got)
	}
	if got := FromCents(-995).String(); got != "-9.9500" {
		t.Errorf("FromCents(-995) = %s", got)
	}
	if !Zero.IsZero() || Zero.Sign() != 0 {
		t.Error("Zero must be zero")
	}
}

func TestParse(t *testing.T) {
	cases := map[string]string{
		"0":        "0.0000",
		"1.5":      "1.5000",
		"-1.5":     "-1.5000",
		"+2.25":    "2.2500",
		"0.0001":   "0.0001",
		"-0.0001":  "-0.0001",
		"12345.67": "12345.6700",
		".5":       "0.5000",
		"7.":       "7.0000",
	}
	for in, want := range cases {
		d, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if d.String() != want {
			t.Errorf("Parse(%q) = %s, want %s", in, d, want)
		}
	}
	for _, bad := range []string{"", "-", "1.23456", "abc", "1..2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestArithmeticBasics(t *testing.T) {
	a := MustParse("10.50")
	b := MustParse("2.25")
	if got := a.Add(b).String(); got != "12.7500" {
		t.Errorf("Add = %s", got)
	}
	if got := a.Sub(b).String(); got != "8.2500" {
		t.Errorf("Sub = %s", got)
	}
	if got := a.Mul(b).String(); got != "23.6250" {
		t.Errorf("Mul = %s", got)
	}
	if got := a.Div(b).String(); got != "4.6666" {
		t.Errorf("Div = %s (truncating)", got)
	}
	if got := a.DivInt64(4).String(); got != "2.6250" {
		t.Errorf("DivInt64 = %s", got)
	}
	if got := a.MulInt64(-3).String(); got != "-31.5000" {
		t.Errorf("MulInt64 = %s", got)
	}
	if got := a.Neg().Add(a); !got.IsZero() {
		t.Errorf("a + (-a) = %s", got)
	}
}

func TestTPCHExpressions(t *testing.T) {
	// disc_price = extendedprice * (1 - discount)
	// charge     = disc_price * (1 + tax)
	price := MustParse("901.00")
	disc := MustParse("0.05")
	tax := MustParse("0.02")
	one := FromInt64(1)
	discPrice := price.Mul(one.Sub(disc))
	if got := discPrice.String(); got != "855.9500" {
		t.Errorf("disc_price = %s", got)
	}
	charge := discPrice.Mul(one.Add(tax))
	if got := charge.String(); got != "873.0690" {
		t.Errorf("charge = %s", got)
	}
	rev := price.Mul(disc)
	if got := rev.String(); got != "45.0500" {
		t.Errorf("revenue = %s", got)
	}
}

func TestCmpAndOrdering(t *testing.T) {
	vals := []Dec128{
		MustParse("-100.5"), MustParse("-0.0001"), Zero,
		MustParse("0.0001"), MustParse("1"), MustParse("99999999.9999"),
	}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%s,%s) = %d, want %d", vals[i], vals[j], got, want)
			}
			if got := vals[i].Less(vals[j]); got != (want < 0) {
				t.Errorf("Less(%s,%s) = %v", vals[i], vals[j], got)
			}
		}
	}
}

func TestInt64AndUnits(t *testing.T) {
	d := MustParse("-17.9999")
	if got := d.Int64(); got != -17 {
		t.Errorf("Int64 = %d, want -17 (truncation toward zero)", got)
	}
	u, ok := d.Units()
	if !ok || u != -179999 {
		t.Errorf("Units = (%d,%v)", u, ok)
	}
	big := FromInt64(1 << 62).MulInt64(1 << 10)
	if _, ok := big.Units(); ok {
		t.Error("huge value should not fit int64 units")
	}
}

func TestInPlaceOps(t *testing.T) {
	acc := Zero
	v := MustParse("2.5")
	AddAssign(&acc, &v)
	AddAssign(&acc, &v)
	if acc.String() != "5.0000" {
		t.Errorf("AddAssign acc = %s", acc)
	}
	SubAssign(&acc, &v)
	if acc.String() != "2.5000" {
		t.Errorf("SubAssign acc = %s", acc)
	}
	AddUnitsAssign(&acc, -25000)
	if !acc.IsZero() {
		t.Errorf("AddUnitsAssign acc = %s", acc)
	}
	a, b := MustParse("3.5"), MustParse("2")
	MulAdd(&acc, &a, &b)
	if acc.String() != "7.0000" {
		t.Errorf("MulAdd acc = %s", acc)
	}
	var dst Dec128
	MulPair(&dst, &a, &b)
	if dst.String() != "7.0000" {
		t.Errorf("MulPair dst = %s", dst)
	}
}

// ref computes the same operation with math/big for cross-checking.
func refOp(op string, a, b int64) *big.Int {
	x, y := big.NewInt(a), big.NewInt(b)
	r := new(big.Int)
	switch op {
	case "add":
		r.Add(x, y)
	case "sub":
		r.Sub(x, y)
	case "mul":
		r.Mul(x, y)
		r.Quo(r, big.NewInt(Scale))
	case "div":
		if b == 0 {
			return nil
		}
		r.Mul(x, big.NewInt(Scale))
		r.Quo(r, y)
	}
	return r
}

func unitsToBig(d Dec128) *big.Int {
	b := new(big.Int)
	neg := d.Sign() < 0
	m := d.Abs()
	b.SetUint64(uint64(m.Hi))
	b.Lsh(b, 64)
	b.Or(b, new(big.Int).SetUint64(m.Lo))
	if neg {
		b.Neg(b)
	}
	return b
}

func TestQuickAgainstBig(t *testing.T) {
	for _, op := range []string{"add", "sub", "mul", "div"} {
		op := op
		f := func(a, b int64) bool {
			// Stay within fixed ranges that cannot overflow Mul:
			// |a|,|b| < 2^40 units (~1e8 in value).
			a %= 1 << 40
			b %= 1 << 40
			if op == "div" && b == 0 {
				return true
			}
			da, db := FromUnits(a), FromUnits(b)
			var got Dec128
			switch op {
			case "add":
				got = da.Add(db)
			case "sub":
				got = da.Sub(db)
			case "mul":
				got = da.Mul(db)
			case "div":
				got = da.Div(db)
			}
			want := refOp(op, a, b)
			return unitsToBig(got).Cmp(want) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(units int64) bool {
		d := FromUnits(units % (1 << 50))
		back, err := Parse(d.String())
		return err == nil && back.Cmp(d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivBigDivisorFallback(t *testing.T) {
	// Divisor magnitude above 64 bits of units exercises the math/big path.
	huge := FromInt64(1 << 62).MulInt64(1 << 4) // 2^66 value => 2^66*1e4 units
	small := FromInt64(1 << 61).MulInt64(1 << 4)
	q := huge.Div(small)
	if q.String() != "2.0000" {
		t.Errorf("big-divisor Div = %s, want 2.0000", q)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Div":      func() { FromInt64(1).Div(Zero) },
		"DivInt64": func() { FromInt64(1).DivInt64(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s by zero should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFloat64Approx(t *testing.T) {
	d := MustParse("123.4567")
	if f := d.Float64(); f < 123.4566 || f > 123.4568 {
		t.Errorf("Float64 = %v", f)
	}
	if f := d.Neg().Float64(); f > -123.4566 || f < -123.4568 {
		t.Errorf("neg Float64 = %v", f)
	}
}

func TestLargeValueString(t *testing.T) {
	// A value whose integer part exceeds uint64.
	d := FromInt64(1 << 62)
	d = d.MulInt64(1 << 10) // 2^72
	want := "4722366482869645213696.0000"
	if got := d.String(); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
}
