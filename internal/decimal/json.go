package decimal

import "fmt"

// JSON wire form: decimals travel as quoted strings ("123.4500"), never
// as JSON numbers — float64 cannot represent every Dec128 exactly, and a
// served sum must survive a client round-trip byte-identical. The serve
// layer's schemas declare the field {"type":"string","format":"decimal"}.

// MarshalJSON encodes the decimal as a quoted literal with all four
// fractional digits (the String form, which Parse accepts back).
func (d Dec128) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON decodes a quoted decimal literal.
func (d *Dec128) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("decimal: JSON value %s is not a string", b)
	}
	v, err := Parse(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*d = v
	return nil
}
