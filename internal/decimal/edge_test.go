package decimal

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Edge cases beyond the main property suite: conversions at
// representation boundaries, panic paths, and a Div-vs-math/big property.

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage should panic")
		}
	}()
	MustParse("12.34.56")
}

func TestUnitsBoundaries(t *testing.T) {
	cases := []struct {
		d  Dec128
		v  int64
		ok bool
	}{
		{FromUnits(0), 0, true},
		{FromUnits(1), 1, true},
		{FromUnits(-1), -1, true},
		{FromUnits(1<<62 - 1), 1<<62 - 1, true},
		{MustParse("99999999999999999999.0000"), 0, false}, // > int64 units
	}
	for _, c := range cases {
		v, ok := c.d.Units()
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("Units(%v) = (%d,%v), want (%d,%v)", c.d, v, ok, c.v, c.ok)
		}
	}
	// Negative overflow side.
	neg := MustParse("-99999999999999999999.0000")
	if _, ok := neg.Units(); ok {
		t.Error("huge negative reported as fitting int64 units")
	}
}

func TestMulDivInt64NegativePaths(t *testing.T) {
	d := MustParse("12.5000")
	if got := d.MulInt64(-4); got != MustParse("-50") {
		t.Fatalf("MulInt64(-4) = %v", got)
	}
	if got := d.Neg().MulInt64(-4); got != MustParse("50") {
		t.Fatalf("(-d).MulInt64(-4) = %v", got)
	}
	if got, want := MustParse("-50").DivInt64(-4), MustParse("12.5"); got != want {
		t.Fatalf("DivInt64 = %v, want %v", got, want)
	}
}

// TestDivMatchesBig cross-checks Div against math/big over random values,
// including negative operands and truncation toward zero.
func TestDivMatchesBig(t *testing.T) {
	f := func(aUnits, bUnits int64) bool {
		if bUnits == 0 {
			return true
		}
		a, b := FromUnits(aUnits), FromUnits(bUnits)
		got := a.Div(b)
		// want = trunc(aUnits * Scale / bUnits) in units.
		num := new(big.Int).Mul(big.NewInt(aUnits), big.NewInt(Scale))
		num.Quo(num, big.NewInt(bUnits))
		want, err := fromBig(num)
		if err != nil {
			return true
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64AndFloat64Reporting(t *testing.T) {
	d := MustParse("-1234.5678")
	if d.Int64() != -1234 {
		t.Fatalf("Int64 = %d", d.Int64())
	}
	f := d.Float64()
	if f > -1234.5 || f < -1234.6 {
		t.Fatalf("Float64 = %v", f)
	}
	huge := MustParse("99999999999999999999.5000")
	if huge.Float64() < 9e19 {
		t.Fatalf("huge Float64 = %v", huge.Float64())
	}
	if huge.Int64() != 99999999999999999999%1 && huge.String() != "99999999999999999999.5000" {
		t.Fatalf("huge String = %v", huge.String())
	}
}
