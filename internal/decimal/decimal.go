// Package decimal implements a 128-bit fixed-point decimal type standing
// in for C#'s 16-byte decimal, which the paper's TPC-H adaptation uses for
// all monetary columns.
//
// Values are 128-bit two's-complement integers counting 1e-4 units
// (four fractional decimal digits): enough for TPC-H's two-digit money
// columns and the products/averages Q1 computes, with ~1.7e34 of headroom.
//
// The type is exactly 16 bytes with no indirection, so it can live inside
// off-heap memory slots. The "unsafe" compiled-query variants operate on
// *Dec128 pointing straight into block memory (paper §7: passing decimals
// by pointer instead of by value is what makes Q1 fast); the safe variants
// use the by-value API.
package decimal

import (
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// Scale is the denominator of the fixed-point representation.
const Scale = 10000

// ScaleDigits is the number of fractional decimal digits.
const ScaleDigits = 4

// Dec128 is a 128-bit fixed-point decimal: value = (Hi<<64 | Lo) / Scale
// interpreted as a two's-complement integer.
type Dec128 struct {
	Lo uint64
	Hi int64
}

// Zero is the zero value.
var Zero Dec128

// FromInt64 converts an integer to a decimal.
func FromInt64(v int64) Dec128 {
	hi, lo := bits.Mul64(abs64(v), Scale)
	d := Dec128{Lo: lo, Hi: int64(hi)}
	if v < 0 {
		d = d.Neg()
	}
	return d
}

// FromUnits builds a decimal directly from 1e-4 units. FromUnits(12345)
// is 1.2345.
func FromUnits(units int64) Dec128 {
	d := Dec128{Lo: uint64(units)}
	if units < 0 {
		d.Hi = -1
	}
	return d
}

// FromCents builds a decimal from 1e-2 units (the natural unit of TPC-H
// money columns). FromCents(150) is 1.50.
func FromCents(cents int64) Dec128 {
	return FromUnits(cents * 100)
}

func abs64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

// IsZero reports whether d is zero.
func (d Dec128) IsZero() bool { return d.Lo == 0 && d.Hi == 0 }

// Sign returns -1, 0 or +1.
func (d Dec128) Sign() int {
	if d.Hi < 0 {
		return -1
	}
	if d.Hi == 0 && d.Lo == 0 {
		return 0
	}
	return 1
}

// Neg returns -d.
func (d Dec128) Neg() Dec128 {
	lo, borrow := bits.Sub64(0, d.Lo, 0)
	hi, _ := bits.Sub64(0, uint64(d.Hi), borrow)
	return Dec128{Lo: lo, Hi: int64(hi)}
}

// Abs returns |d|.
func (d Dec128) Abs() Dec128 {
	if d.Sign() < 0 {
		return d.Neg()
	}
	return d
}

// Add returns d + o.
func (d Dec128) Add(o Dec128) Dec128 {
	lo, carry := bits.Add64(d.Lo, o.Lo, 0)
	hi, _ := bits.Add64(uint64(d.Hi), uint64(o.Hi), carry)
	return Dec128{Lo: lo, Hi: int64(hi)}
}

// Sub returns d - o.
func (d Dec128) Sub(o Dec128) Dec128 {
	lo, borrow := bits.Sub64(d.Lo, o.Lo, 0)
	hi, _ := bits.Sub64(uint64(d.Hi), uint64(o.Hi), borrow)
	return Dec128{Lo: lo, Hi: int64(hi)}
}

// Cmp compares d and o: -1 if d<o, 0 if equal, +1 if d>o.
func (d Dec128) Cmp(o Dec128) int {
	if d.Hi != o.Hi {
		if d.Hi < o.Hi {
			return -1
		}
		return 1
	}
	if d.Lo != o.Lo {
		if d.Lo < o.Lo {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports d < o.
func (d Dec128) Less(o Dec128) bool { return d.Cmp(o) < 0 }

// Mul returns d * o (fixed-point: (d.units*o.units)/Scale), truncating
// toward zero. It panics on 128-bit overflow, which cannot occur for the
// magnitudes TPC-H produces.
func (d Dec128) Mul(o Dec128) Dec128 {
	neg := false
	a, b := d, o
	if a.Sign() < 0 {
		a, neg = a.Neg(), !neg
	}
	if b.Sign() < 0 {
		b, neg = b.Neg(), !neg
	}
	// 128x128 -> 256-bit product of magnitudes.
	p := mul128(uint64(a.Hi), a.Lo, uint64(b.Hi), b.Lo)
	// Divide the 256-bit product by Scale.
	q, _ := divBySmall(p, Scale)
	if q[3] != 0 || q[2] != 0 || q[1]>>63 != 0 {
		panic("decimal: Mul overflow")
	}
	r := Dec128{Lo: q[0], Hi: int64(q[1])}
	if neg {
		r = r.Neg()
	}
	return r
}

// MulInt64 returns d * v for an integer v.
func (d Dec128) MulInt64(v int64) Dec128 {
	neg := false
	a := d
	if a.Sign() < 0 {
		a, neg = a.Neg(), !neg
	}
	m := abs64(v)
	if v < 0 {
		neg = !neg
	}
	p := mul128(uint64(a.Hi), a.Lo, 0, m)
	if p[3] != 0 || p[2] != 0 || p[1]>>63 != 0 {
		panic("decimal: MulInt64 overflow")
	}
	r := Dec128{Lo: p[0], Hi: int64(p[1])}
	if neg {
		r = r.Neg()
	}
	return r
}

// DivInt64 returns d / v truncating toward zero. Used for averages
// (sum/count) in Q1.
func (d Dec128) DivInt64(v int64) Dec128 {
	if v == 0 {
		panic("decimal: division by zero")
	}
	neg := false
	a := d
	if a.Sign() < 0 {
		a, neg = a.Neg(), !neg
	}
	m := abs64(v)
	if v < 0 {
		neg = !neg
	}
	q, _ := divBySmall([4]uint64{a.Lo, uint64(a.Hi), 0, 0}, m)
	r := Dec128{Lo: q[0], Hi: int64(q[1])}
	if neg {
		r = r.Neg()
	}
	return r
}

// Div returns d / o in fixed point ((d.units*Scale)/o.units), truncating
// toward zero. Divisors whose magnitude exceeds 64 bits of units
// (~9.2e14) fall back to math/big; TPC-H never hits the slow path.
func (d Dec128) Div(o Dec128) Dec128 {
	if o.IsZero() {
		panic("decimal: division by zero")
	}
	neg := false
	a, b := d, o
	if a.Sign() < 0 {
		a, neg = a.Neg(), !neg
	}
	if b.Sign() < 0 {
		b, neg = b.Neg(), !neg
	}
	if b.Hi != 0 {
		return divBig(d, o)
	}
	// (a * Scale) is at most 192 bits; divide by the 64-bit b.Lo.
	p := mul128(uint64(a.Hi), a.Lo, 0, Scale)
	q, _ := divBySmall(p, b.Lo)
	if q[3] != 0 || q[2] != 0 || q[1]>>63 != 0 {
		panic("decimal: Div overflow")
	}
	r := Dec128{Lo: q[0], Hi: int64(q[1])}
	if neg {
		r = r.Neg()
	}
	return r
}

func divBig(d, o Dec128) Dec128 {
	num := d.bigInt()
	num.Mul(num, big.NewInt(Scale))
	num.Quo(num, o.bigInt())
	r, err := fromBig(num)
	if err != nil {
		panic("decimal: Div overflow")
	}
	return r
}

// mul128 multiplies two unsigned 128-bit numbers into a 256-bit result,
// little-endian words.
func mul128(aHi, aLo, bHi, bLo uint64) [4]uint64 {
	var r [4]uint64
	h0, l0 := bits.Mul64(aLo, bLo)
	r[0] = l0
	r[1] = h0
	h1, l1 := bits.Mul64(aLo, bHi)
	var c uint64
	r[1], c = bits.Add64(r[1], l1, 0)
	r[2], _ = bits.Add64(r[2], h1, c)
	h2, l2 := bits.Mul64(aHi, bLo)
	r[1], c = bits.Add64(r[1], l2, 0)
	r[2], c = bits.Add64(r[2], h2, c)
	r[3], _ = bits.Add64(r[3], 0, c)
	h3, l3 := bits.Mul64(aHi, bHi)
	r[2], c = bits.Add64(r[2], l3, 0)
	r[3], _ = bits.Add64(r[3], h3, c)
	return r
}

// divBySmall divides a 256-bit little-endian number by a 64-bit divisor,
// returning quotient and remainder.
func divBySmall(n [4]uint64, d uint64) ([4]uint64, uint64) {
	var q [4]uint64
	var rem uint64
	for i := 3; i >= 0; i-- {
		q[i], rem = bits.Div64(rem, n[i], d)
	}
	return q, rem
}

func (d Dec128) bigInt() *big.Int {
	b := new(big.Int)
	neg := d.Sign() < 0
	m := d.Abs()
	b.SetUint64(uint64(m.Hi))
	b.Lsh(b, 64)
	b.Or(b, new(big.Int).SetUint64(m.Lo))
	if neg {
		b.Neg(b)
	}
	return b
}

func fromBig(b *big.Int) (Dec128, error) {
	neg := b.Sign() < 0
	m := new(big.Int).Abs(b)
	if m.BitLen() > 127 {
		return Zero, fmt.Errorf("decimal: %v overflows Dec128", b)
	}
	lo := new(big.Int).And(m, new(big.Int).SetUint64(^uint64(0))).Uint64()
	hi := new(big.Int).Rsh(m, 64).Uint64()
	d := Dec128{Lo: lo, Hi: int64(hi)}
	if neg {
		d = d.Neg()
	}
	return d, nil
}

// Units returns the value in 1e-4 units if it fits in an int64.
func (d Dec128) Units() (int64, bool) {
	if d.Hi == 0 && d.Lo>>63 == 0 {
		return int64(d.Lo), true
	}
	if d.Hi == -1 && d.Lo>>63 == 1 {
		return int64(d.Lo), true
	}
	return 0, false
}

// Int64 returns the integer part, truncating toward zero.
func (d Dec128) Int64() int64 {
	neg := d.Sign() < 0
	m := d.Abs()
	q, _ := divBySmall([4]uint64{m.Lo, uint64(m.Hi), 0, 0}, Scale)
	v := int64(q[0])
	if neg {
		v = -v
	}
	return v
}

// Float64 returns an approximate float64 value (for reporting only).
func (d Dec128) Float64() float64 {
	neg := d.Sign() < 0
	m := d.Abs()
	f := (float64(uint64(m.Hi))*18446744073709551616.0 + float64(m.Lo)) / Scale
	if neg {
		f = -f
	}
	return f
}

// String formats the decimal with all four fractional digits.
func (d Dec128) String() string {
	neg := d.Sign() < 0
	m := d.Abs()
	q, rem := divBySmall([4]uint64{m.Lo, uint64(m.Hi), 0, 0}, Scale)
	intPart := formatUint256(q)
	s := fmt.Sprintf("%s.%04d", intPart, rem)
	if neg {
		s = "-" + s
	}
	return s
}

func formatUint256(n [4]uint64) string {
	if n[1] == 0 && n[2] == 0 && n[3] == 0 {
		return fmt.Sprintf("%d", n[0])
	}
	var digits []byte
	for n != [4]uint64{} {
		var rem uint64
		n, rem = divBySmall(n, 10)
		digits = append(digits, byte('0'+rem))
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return string(digits)
}

// Parse parses a decimal literal: optional sign, digits, optional
// fractional part of up to four digits.
func Parse(s string) (Dec128, error) {
	orig := s
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return Zero, fmt.Errorf("decimal: empty literal %q", orig)
	}
	if len(fracPart) > ScaleDigits {
		return Zero, fmt.Errorf("decimal: %q has more than %d fractional digits", orig, ScaleDigits)
	}
	b := new(big.Int)
	if intPart != "" {
		if _, ok := b.SetString(intPart, 10); !ok {
			return Zero, fmt.Errorf("decimal: bad literal %q", orig)
		}
	}
	b.Mul(b, big.NewInt(Scale))
	if fracPart != "" {
		f := new(big.Int)
		if _, ok := f.SetString(fracPart, 10); !ok {
			return Zero, fmt.Errorf("decimal: bad literal %q", orig)
		}
		for i := len(fracPart); i < ScaleDigits; i++ {
			f.Mul(f, big.NewInt(10))
		}
		b.Add(b, f)
	}
	if neg {
		b.Neg(b)
	}
	return fromBig(b)
}

// MustParse parses a decimal literal, panicking on error.
func MustParse(s string) Dec128 {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}
