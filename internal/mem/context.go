package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
)

// Context is a memory context (§3.3): a private set of single-type
// memory blocks serving exactly one collection. Grouping a collection's
// objects in its own blocks is what gives enumeration its spatial
// locality.
type Context struct {
	mgr    *Manager
	id     uint32
	name   string
	sch    *schema.Schema
	layout Layout
	geo    geometry

	mu     sync.RWMutex
	blocks []*Block

	reclaimMu sync.Mutex
	reclaimQ  []reclaimEntry

	strings *stringHeap

	// syn lists the columns carrying per-block min/max synopses
	// (synopsis.go). Registered before the first block under mu; read
	// lock-free afterwards (registration is create-time only).
	syn *synopsisSpec

	// clusterSlot is the synopsis index of the registered cluster key
	// (RegisterClusterKey), or -1. Under PackCluster the compaction
	// planner bins this context's candidates by that column's bounds and
	// the mover relocates group rows in that column's key order.
	clusterSlot atomic.Int32

	// shareGrp is the context's cooperative scan-sharing coordinator
	// (share.go), created lazily on first Share call.
	shareGrp atomic.Pointer[ShareGroup]

	// refEdges lists contexts that hold reference fields INTO this
	// context, together with the source field indexes and their encoding.
	// Registered by the collection layer; consumed by the compactor's
	// direct-pointer fix-up scan (§6: "the references between smcs are
	// statically known and the compiler can produce specialized functions
	// that only scan smcs that have direct pointers that may have to be
	// updated") and by the overflow rescue scan (§3.1).
	edgeMu   sync.Mutex
	refEdges []refEdge
}

type refEdge struct {
	src    *Context
	field  int
	direct bool // field stores the §6 direct encoding (RowDirect target)
}

// reclaimEntry queues a block whose limbo fraction crossed the reclaim
// threshold, along with the earliest epoch at which its limbo slots can
// be reused (§3.5: "the earliest timestamp when the block can be
// reclaimed (global epoch plus two)").
type reclaimEntry struct {
	blk   *Block
	ready uint64
}

func newContext(m *Manager, id uint32, name string, sch *schema.Schema, layout Layout) (*Context, error) {
	geo, err := computeGeometry(m.cfg.BlockSize, sch, layout)
	if err != nil {
		return nil, err
	}
	c := &Context{
		mgr:    m,
		id:     id,
		name:   name,
		sch:    sch,
		layout: layout,
		geo:    geo,
	}
	c.clusterSlot.Store(-1)
	c.strings = newStringHeap(m, c)
	return c, nil
}

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Schema returns the context's object schema.
func (c *Context) Schema() *schema.Schema { return c.sch }

// Layout returns the context's storage layout.
func (c *Context) Layout() Layout { return c.layout }

// Manager returns the owning manager.
func (c *Context) Manager() *Manager { return c.mgr }

// BlockCapacity returns the number of slots per block for this context.
func (c *Context) BlockCapacity() int { return c.geo.capacity }

// RegisterRefEdge declares that src's field fieldIndex holds references
// into this context; direct selects the §6 direct-pointer encoding
// (RowDirect targets). The collection layer registers every bound
// reference field.
func (c *Context) RegisterRefEdge(src *Context, fieldIndex int, direct bool) {
	c.edgeMu.Lock()
	defer c.edgeMu.Unlock()
	for _, e := range c.refEdges {
		if e.src == src && e.field == fieldIndex {
			return
		}
	}
	c.refEdges = append(c.refEdges, refEdge{src: src, field: fieldIndex, direct: direct})
}

func (c *Context) edges() []refEdge {
	c.edgeMu.Lock()
	defer c.edgeMu.Unlock()
	out := make([]refEdge, len(c.refEdges))
	copy(out, c.refEdges)
	return out
}

// appendBlock publishes a block at the end of the enumeration order.
func (c *Context) appendBlock(b *Block) {
	c.mu.Lock()
	c.blocks = append(c.blocks, b)
	c.mu.Unlock()
}

// removeBlocks unlinks the given blocks from the enumeration order.
func (c *Context) removeBlocks(gone map[*Block]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.blocks[:0]
	for _, b := range c.blocks {
		if !gone[b] {
			out = append(out, b)
		}
	}
	c.blocks = out
}

// SnapshotBlocks returns the current enumeration order. The slice is a
// private copy.
func (c *Context) SnapshotBlocks() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// Blocks returns the number of blocks currently in the context.
func (c *Context) Blocks() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// Len returns the number of valid objects across all blocks. O(blocks).
func (c *Context) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, b := range c.blocks {
		n += int(b.validCount.Load())
	}
	return n
}

// MemoryBytes reports the off-heap bytes held by the context: block
// regions plus string storage. This is the "total memory size" series of
// Figure 6.
func (c *Context) MemoryBytes() int64 {
	c.mu.RLock()
	n := int64(len(c.blocks)) * int64(c.mgr.cfg.BlockSize)
	c.mu.RUnlock()
	return n + c.strings.bytes()
}

// enqueueReclaim adds the block to the reclamation queue if its limbo
// fraction crossed the threshold (§3.5). Blocks currently owned by an
// allocating session are skipped; the owner re-checks on abandon.
func (c *Context) enqueueReclaim(b *Block) {
	if b.allocOwned.Load() || b.inReclaimQ.Load() || b.group.Load() != nil || b.buried.Load() {
		return
	}
	thresh := int32(float64(b.capacity) * c.mgr.cfg.ReclaimThreshold)
	if b.limboCount.Load() <= thresh {
		return
	}
	if !b.inReclaimQ.CompareAndSwap(false, true) {
		return
	}
	ready := c.mgr.ep.Global() + 2
	c.reclaimMu.Lock()
	c.reclaimQ = append(c.reclaimQ, reclaimEntry{blk: b, ready: ready})
	c.reclaimMu.Unlock()
}

// takeReclaimable pops a ready block from the reclamation queue, or
// returns nil along with whether any block is waiting but not yet ripe
// (the allocator then tries to advance the epoch, §3.5).
func (c *Context) takeReclaimable() (b *Block, waiting bool) {
	g := c.mgr.ep.Global()
	c.reclaimMu.Lock()
	defer c.reclaimMu.Unlock()
	i := 0
	for i < len(c.reclaimQ) {
		re := c.reclaimQ[i]
		if re.blk.buried.Load() || re.blk.group.Load() != nil {
			// The block was emptied (or is being emptied) by a
			// compaction that ran after it was enqueued: the queue
			// entry is dead, never hand the block out.
			re.blk.inReclaimQ.Store(false)
			c.reclaimQ = append(c.reclaimQ[:i], c.reclaimQ[i+1:]...)
			continue
		}
		if re.ready > g {
			i++
			continue
		}
		c.reclaimQ = append(c.reclaimQ[:i], c.reclaimQ[i+1:]...)
		re.blk.inReclaimQ.Store(false)
		// Exclusive claim: the queue can transiently hold duplicate
		// entries for a block (a remover may re-enqueue it between our
		// pop and this claim), so ownership must be a CAS — two
		// sessions allocating into one block would corrupt it.
		if !re.blk.allocOwned.CompareAndSwap(false, true) {
			continue
		}
		// Dekker-style claim against the compaction planner: mark
		// ownership first, then re-check group and burial. The planner
		// does the opposite (set group, then check ownership), so at
		// least one side always observes the other and backs off;
		// otherwise a block could be emptied and unmapped while a
		// session keeps allocating into it.
		if re.blk.group.Load() != nil || re.blk.buried.Load() {
			re.blk.allocOwned.Store(false)
			continue
		}
		return re.blk, len(c.reclaimQ) > 0
	}
	return nil, len(c.reclaimQ) > 0
}

// releaseAll frees all block and string memory. Called from Manager.Close.
func (c *Context) releaseAll() {
	c.mu.Lock()
	blocks := c.blocks
	c.blocks = nil
	c.mu.Unlock()
	for _, b := range blocks {
		c.mgr.unregisterBlock(b)
		c.mgr.releaseBlockMemory(b)
	}
	c.strings.release()
}

// String renders diagnostics.
func (c *Context) String() string {
	return fmt.Sprintf("ctx %s (%s, %s): %d blocks, %d objects",
		c.name, c.sch.Name, c.layout, c.Blocks(), c.Len())
}
