package mem

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/fault"
)

// Compaction (paper §5) empties under-occupied blocks into fresh ones
// without stopping the application. A run proceeds through the freezing
// epoch (relocation lists built, frozen bits set), then the relocation
// epoch with its waiting phase (readers bail relocations out) and moving
// phase (the compactor and helping readers move objects). Blocks always
// participate in groups whose entire content lands in one target block
// (§5.2); enumerating queries pin groups through query counters, and the
// compactor bails out of pinned groups after a timeout.

// CompactionGroup is a set of low-occupancy blocks emptied into fresh
// target blocks. Size-ordered packing keeps the paper's one-target shape
// (§5.2: a 30% threshold yields three blocks per group); clustered
// packing (PackCluster) spans several targets so the group's rows,
// key-sorted across all sources, deal out into consecutive key-quantile
// slices — the redistribution step that single-target groups cannot
// perform (a lone target can only inherit the union of its sources'
// ranges, so churn-scattered heaps would never re-cluster).
type CompactionGroup struct {
	ctx     *Context
	blocks  []*Block
	targets []*Block
	// pins is the paper's per-group query counter: enumerations that
	// process the group's pre-relocation state hold a pin; the group is
	// not moved while pinned.
	pins  atomic.Int32
	state atomic.Uint32
}

// Group states.
const (
	gPlanned uint32 = iota
	gFrozen
	gMoving
	gDone
	gAborted
)

// clusterGroupSpan is how many targets' worth of rows a clustered
// (PackCluster) compaction bin may span. A single-target group can only
// rebuild bounds equal to the union of its sources' ranges, so a
// churn-scattered heap never re-clusters; dealing a key-sorted group
// across N targets carves it into N disjoint key-quantile slices.
// Worst case (every source bounds-wide, e.g. steady upsert scatter into
// reclaimed slots heap-wide) each group still spans the whole domain,
// so a point window admits one slice per group: the steady-state pruned
// fraction is ~1-1/span. 32 keeps that above 95% while bounding a
// group's transient target charge (span × block size) and the freeze
// sort to a few MB.
const clusterGroupSpan = 32

// clusterStaleFactor is the bounds-staleness threshold for clustered
// candidacy: a block becomes a re-clustering candidate — regardless of
// occupancy — once its cluster-key span exceeds this many times its
// fair share of the occupied domain. See compactionCandidates.
const clusterStaleFactor = 8

// Blocks returns the group's source blocks (diagnostics).
func (g *CompactionGroup) Blocks() []*Block { return g.blocks }

// Target returns the group's first target block (diagnostics).
func (g *CompactionGroup) Target() *Block { return g.targets[0] }

// Targets returns the group's target blocks (diagnostics). Size-ordered
// packing always produces exactly one; clustered packing one per
// key-quantile slice.
func (g *CompactionGroup) Targets() []*Block { return g.targets }

// Relocation entry states.
const (
	rPending uint32 = iota
	rDone
	rFailed // bailed out by a reader in the waiting phase (§5.1 case b)
	rSkipped
)

// relocEntry schedules one slot move ("a list of all slots that have to
// be moved and the memory address the slots have to be moved to", §5.1).
// inc records the object's incarnation at scheduling time; every freeze
// and lock transition CASes against exactly this incarnation, so a
// concurrent removal (which bumps the incarnation) permanently disarms
// the relocation — without this, a mover racing a bailed-out removal
// could resurrect the dead object in the target block.
type relocEntry struct {
	slot   int32
	toSlot int32
	inc    uint32
	toBlk  *Block
	entry  entryRef
	status atomic.Uint32
}

type relocList struct {
	entries []relocEntry
	bySlot  []int32 // slot -> index+1; 0 = not scheduled
}

func (l *relocList) find(slot int) *relocEntry {
	if l == nil || slot >= len(l.bySlot) {
		return nil
	}
	i := l.bySlot[slot]
	if i == 0 {
		return nil
	}
	return &l.entries[i-1]
}

// incCellFor returns the authoritative incarnation word for a slot: the
// indirection entry in indirect layouts (§3.2), the slot header in direct
// mode (§6).
func (c *Context) incCellFor(blk *Block, slot int) *uint32 {
	if c.layout == RowDirect {
		return blk.slotHeaderPtr(slot)
	}
	return (*uint32)(unsafe.Add(blk.backEntry(slot), 8))
}

// CompactNow runs one full compaction pass over all contexts with the
// manager's configured worker count, returning the number of objects
// moved. Concurrent application work may proceed; only one compaction
// runs at a time.
func (m *Manager) CompactNow() (int, error) {
	return m.CompactNowWorkers(0)
}

// CompactNowWorkers runs one full compaction pass with an explicit
// move-phase worker count; workers <= 0 selects the configured default
// (Config.CompactionWorkers). The pass is planned exactly once — one
// block-order snapshot, one decision per compaction group — and then the
// per-group move work fans out over a pool of worker sessions drawn from
// LeaseSession with an atomic work-stealing cursor. Groups are
// independent by construction (disjoint source blocks, private target
// block, per-group pins and abort), so the epoch-wait/retry/abort
// protocol is untouched and stays per-group; with workers == 1 the
// moving phase is byte-for-byte the serial pass, kept as the oracle.
func (m *Manager) CompactNowWorkers(workers int) (int, error) {
	return m.CompactNowWorkersCtx(context.Background(), workers)
}

// CompactNowWorkersCtx is CompactNowWorkers with a cancellation context,
// observed at group-claim granularity: a canceled pass aborts every
// not-yet-moving group (sources return to circulation untouched — a
// group is only abortable before its first object moves), finishes any
// group already mid-move, runs the full epoch/sweep cleanup, and returns
// the context's cause alongside the objects moved so far. A panic in a
// move worker is likewise scoped to its group: the pass completes,
// cleanup still runs, and the panic surfaces as an ErrWorkerPanic error.
func (m *Manager) CompactNowWorkersCtx(cctx context.Context, workers int) (int, error) {
	if workers <= 0 {
		workers = m.cfg.CompactionWorkers
	}
	if workers < 1 {
		workers = 1
	}
	if cctx == nil {
		cctx = context.Background()
	}
	if err := context.Cause(cctx); err != nil {
		return 0, err
	}
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	start := time.Now()
	defer func() { m.stats.CompactNanos.Add(time.Since(start).Nanoseconds()) }()

	cs, err := m.NewSession()
	if err != nil {
		return 0, err
	}
	defer cs.Close()

	if !m.ep.AcquireGate(cs.ep) {
		return 0, nil
	}
	defer m.ep.ReleaseGate(cs.ep)

	groups := m.planGroups()
	if len(groups) == 0 {
		return 0, nil
	}
	m.stats.Compactions.Add(1)

	// The compaction session pins the pre-freezing epoch for the whole
	// run, standing in for the paper's "we run the compaction thread in
	// a critical section that uses the thread-local epoch e" (§5.1).
	cs.Enter()
	defer cs.Exit()

	freezing := m.ep.Global()
	reloc := freezing + 1
	m.relocEpoch.Store(reloc)
	m.movingPhase.Store(false)

	// Freezing epoch: build relocation lists, set frozen bits.
	for _, g := range groups {
		m.freezeGroup(g)
		g.state.Store(gFrozen)
	}

	const epochWait = 500 * time.Millisecond
	done := cctx.Done()
	// Wait for all threads to reach the freezing epoch, then open the
	// relocation epoch. Cancellation during either wait aborts the run
	// before anything moved — the cheap exit.
	if !m.waitAllAtLeast(freezing, cs, epochWait, done) {
		m.abortRun(groups)
		return 0, context.Cause(cctx)
	}
	for m.ep.Global() < reloc {
		if _, ok := m.ep.TryAdvanceOwner(cs.ep); !ok {
			runtime.Gosched()
		}
	}
	// Waiting phase: lasts until every thread has entered the relocation
	// epoch; readers that hit frozen objects bail their relocations out.
	if !m.waitAllAtLeast(reloc, cs, epochWait, done) {
		m.abortRun(groups)
		return 0, context.Cause(cctx)
	}
	// Moving phase: fan the per-group move work out over the workers.
	m.movingPhase.Store(true)
	moved, moveErr := m.moveGroups(groups, workers, done)
	var emptied []*Block
	basesByCtx := make(map[*Context]map[uintptr]bool)
	for _, g := range groups {
		if g.state.Load() == gAborted {
			continue
		}
		m.stats.GroupsMoved.Add(1)
		for _, b := range g.blocks {
			if b.validCount.Load() == 0 {
				emptied = append(emptied, b)
				set := basesByCtx[g.ctx]
				if set == nil {
					set = make(map[uintptr]bool)
					basesByCtx[g.ctx] = set
				}
				set[uintptr(b.base)] = true
			}
		}
	}
	m.stats.BytesReclaimed.Add(int64(len(emptied)) * int64(m.cfg.BlockSize))

	// Direct-pointer fix-up: rewrite in-object pointers into relocated
	// blocks (§6) while the tombstoned blocks are still mapped.
	for ctx, bases := range basesByCtx {
		if ctx.layout == RowDirect {
			m.fixupDirectPointers(ctx, bases)
		}
	}

	// Retire emptied blocks: out of the enumeration order now, memory
	// released after the grace period.
	gone := make(map[*Context]map[*Block]bool)
	for _, b := range emptied {
		set := gone[b.ctx]
		if set == nil {
			set = make(map[*Block]bool)
			gone[b.ctx] = set
		}
		set[b] = true
	}
	for ctx, set := range gone {
		ctx.removeBlocks(set)
	}
	for _, b := range emptied {
		// Invariant check: an emptied block must hold no valid slots.
		n := 0
		for i := 0; i < b.capacity; i++ {
			if slotDirState(b.SlotDirWord(i)) == slotValid {
				n++
			}
		}
		if n != 0 || b.validCount.Load() != 0 {
			panic("mem: burying a block with valid slots (accounting bug)")
		}
		b.buried.Store(true)
		m.bury(b)
	}

	// Close the relocation epoch. Before discarding the relocation
	// lists, sweep any leftover frozen bits (relocations that stayed
	// failed through every retry round): once the lists are gone, nobody
	// else could resolve them.
	m.movingPhase.Store(false)
	m.relocEpoch.Store(0)
	for _, g := range groups {
		for _, b := range g.blocks {
			if list := b.reloc.Load(); list != nil {
				for i := range list.entries {
					re := &list.entries[i]
					if st := re.status.Load(); st == rDone || st == rSkipped {
						continue
					}
					cell := g.ctx.incCellFor(b, int(re.slot))
					for {
						w := atomic.LoadUint32(cell)
						if w&FlagFrozen == 0 {
							break
						}
						if w&FlagLock != 0 {
							runtime.Gosched()
							continue
						}
						if atomic.CompareAndSwapUint32(cell, w, w&^FlagFrozen) {
							break
						}
					}
				}
			}
			b.reloc.Store(nil)
			b.group.Store(nil)
		}
		for _, t := range g.targets {
			t.targetOf.Store(nil)
		}
		if g.state.Load() != gAborted {
			g.state.Store(gDone)
			for _, t := range g.targets {
				if t.syn != nil && t.validCount.Load() > 0 {
					// The target's bounds were rebuilt exactly by the moves
					// that filled it (doMove widens from an empty state).
					m.stats.SynopsisRebuilds.Add(1)
				}
			}
		}
	}
	for m.ep.Global() < reloc+1 {
		if _, ok := m.ep.TryAdvanceOwner(cs.ep); !ok {
			runtime.Gosched()
		}
	}
	m.stats.ObjectsMoved.Add(int64(moved))
	if moveErr != nil {
		return moved, moveErr
	}
	return moved, context.Cause(cctx)
}

// NeedsCompaction reports whether any context has enough under-occupied
// (or, under PackCluster, bounds-stale) blocks to form a group. The
// background compactor polls this.
func (m *Manager) NeedsCompaction() bool {
	for _, ctx := range m.Contexts() {
		if len(m.compactionCandidates(ctx, ctx.SnapshotBlocks())) >= 2 {
			return true
		}
	}
	return false
}

func (m *Manager) isCompactionCandidate(b *Block) bool {
	return !b.allocOwned.Load() &&
		b.group.Load() == nil &&
		b.targetOf.Load() == nil &&
		b.validCount.Load() > 0 &&
		b.occupancy() < b.ctx.mgr.cfg.CompactionThreshold
}

// compactionCandidates collects a context's candidate blocks: the
// under-occupied ones, plus — when the context clusters — full blocks
// whose cluster-key bounds have gone stale-wide. The second class is
// what keeps the steady-state pruning guarantee alive under balanced
// churn: upsert-style workloads refill reclaimed slots in place, so
// occupancy never drops below the threshold even as every block's
// bounds creep toward the whole key domain. A block is bounds-stale
// when its span exceeds clusterStaleFactor times its fair share of the
// occupied domain (domain span scaled by the block's fraction of the
// live rows) — a rewrite-invariant test: freshly dealt quantile slices
// sit at roughly one fair share and are left alone, so a quiescent
// clustered heap plans no work.
func (m *Manager) compactionCandidates(ctx *Context, blocks []*Block) []*Block {
	slot := ctx.clusterKeySlot()
	var domain float64
	var totalValid int64
	if slot >= 0 {
		var glo, ghi int64
		for _, b := range blocks {
			if b.syn == nil || b.validCount.Load() == 0 {
				continue
			}
			lo, hi, ok := b.syn[slot].bounds()
			if !ok {
				continue
			}
			if totalValid == 0 || lo < glo {
				glo = lo
			}
			if totalValid == 0 || hi > ghi {
				ghi = hi
			}
			totalValid += int64(b.validCount.Load())
		}
		domain = float64(ghi) - float64(glo)
	}
	var cands []*Block
	for _, b := range blocks {
		if m.isCompactionCandidate(b) ||
			(slot >= 0 && m.clusterStale(b, slot, domain, totalValid)) {
			cands = append(cands, b)
		}
	}
	return cands
}

// clusterStale reports whether a block's cluster-key bounds span more
// than clusterStaleFactor times its fair share of the context's
// occupied key domain. Factor slack absorbs non-uniform key densities:
// sparse-region blocks legitimately span a few fair shares, and
// flagging them would re-plan converged heaps forever.
func (m *Manager) clusterStale(b *Block, slot int, domain float64, totalValid int64) bool {
	if domain <= 0 || totalValid == 0 || b.syn == nil {
		return false
	}
	if b.allocOwned.Load() || b.group.Load() != nil || b.targetOf.Load() != nil {
		return false
	}
	valid := int64(b.validCount.Load())
	if valid == 0 {
		return false
	}
	lo, hi, ok := b.syn[slot].bounds()
	if !ok {
		return false
	}
	return float64(hi)-float64(lo) > clusterStaleFactor*domain*float64(valid)/float64(totalValid)
}

// planGroups selects candidate blocks per context and packs them into
// groups whose combined live objects fit one fresh target block. The
// default packing is size-sorted (first-fit decreasing on valid-byte
// count): candidates sort fullest-first and each lands in the first
// group bin with room, so targets pack fuller, fewer groups form for the
// same reclaimable bytes, and the parallel moving phase gets more evenly
// sized group work than the old block-order greedy flush (which also
// orphaned large candidates into singleton groups it then had to
// release; kept as the PackOrder oracle). PackCluster sorts candidates
// by their cluster-key bound ranges instead and packs key-adjacent —
// targets then cover one narrow key range each, which is what turns
// churn-staled synopsis pruning back into a steady-state guarantee.
// Each claimed block uses the Dekker protocol that pairs with
// takeReclaimable: store the group pointer first, then re-check
// allocation ownership; back off if a session owns the block.
func (m *Manager) planGroups() []*CompactionGroup {
	var groups []*CompactionGroup
	for _, ctx := range m.Contexts() {
		cands := m.compactionCandidates(ctx, ctx.SnapshotBlocks())
		if len(cands) < 2 {
			continue
		}
		type bin struct {
			blocks []*Block
			valid  int
		}
		var bins []*bin
		// greedyAdjacent packs cands in their current order: one open bin,
		// closed (never revisited) on overflow. PackOrder runs it over the
		// block order with one target's capacity; PackCluster over the
		// key-sorted order with a multi-target span, where neighbors hold
		// adjacent key ranges and belong in one sort scope.
		greedyAdjacent := func(capacity int) {
			var cur *bin
			for _, b := range cands {
				v := int(b.validCount.Load())
				if cur != nil && cur.valid+v > capacity {
					bins = append(bins, cur)
					cur = nil
				}
				if cur == nil {
					cur = &bin{}
				}
				cur.blocks = append(cur.blocks, b)
				cur.valid += v
			}
			if cur != nil {
				bins = append(bins, cur)
			}
		}
		mode := m.cfg.CompactionPacking
		if mode == PackCluster && ctx.clusterKeySlot() < 0 {
			mode = PackSize // no cluster key registered: nothing to sort on
		}
		switch mode {
		case PackOrder:
			greedyAdjacent(ctx.geo.capacity)
		case PackCluster:
			// Sort candidates by their cluster-column bounds (stale-but-
			// sound: a block's range covers every live key it holds), then
			// pack key-adjacent runs into multi-target sort scopes. Bounds
			// cannot be empty here — a candidate has validCount > 0, and
			// every published row widened them — but an empty pair sorts
			// last and stays sound anyway. Churn staleness makes the bound
			// sort noisy; the redistribution across clusterGroupSpan
			// targets is what restores tight slices regardless.
			slot := ctx.clusterKeySlot()
			key := func(b *Block) (int64, int64) {
				if lo, hi, ok := b.syn[slot].bounds(); ok {
					return lo, hi
				}
				return math.MaxInt64, math.MaxInt64
			}
			sort.SliceStable(cands, func(i, j int) bool {
				ilo, ihi := key(cands[i])
				jlo, jhi := key(cands[j])
				if ilo != jlo {
					return ilo < jlo
				}
				return ihi < jhi
			})
			greedyAdjacent(clusterGroupSpan * ctx.geo.capacity)
		default: // PackSize
			// Valid-byte count is validCount × slot stride; the stride is
			// constant within a context, so the valid count orders bytes.
			sort.SliceStable(cands, func(i, j int) bool {
				return cands[i].validCount.Load() > cands[j].validCount.Load()
			})
			for _, b := range cands {
				v := int(b.validCount.Load())
				placed := false
				for _, bn := range bins {
					if bn.valid+v <= ctx.geo.capacity {
						bn.blocks = append(bn.blocks, b)
						bn.valid += v
						placed = true
						break
					}
				}
				if !placed {
					bins = append(bins, &bin{blocks: []*Block{b}, valid: v})
				}
			}
		}
		for _, bn := range bins {
			if len(bn.blocks) < 2 {
				continue // a singleton reclaims nothing; leave it unclaimed
			}
			g := &CompactionGroup{ctx: ctx}
			for _, b := range bn.blocks {
				// Claim: group first, ownership check second.
				b.group.Store(g)
				if b.allocOwned.Load() {
					b.group.Store(nil)
					continue
				}
				g.blocks = append(g.blocks, b)
			}
			if len(g.blocks) >= 2 {
				// One target per capacity's worth of live rows (exactly
				// one outside PackCluster — the bin capacity enforces
				// it). Targets force-charge the budget: compaction is
				// how the budget reclaims, so it must never starve
				// itself.
				valid := 0
				for _, b := range g.blocks {
					valid += int(b.validCount.Load())
				}
				nt := (valid + ctx.geo.capacity - 1) / ctx.geo.capacity
				if nt < 1 {
					nt = 1
				}
				ok := true
				for i := 0; i < nt; i++ {
					target, err := newCompactionTargetBlock(ctx)
					if err != nil {
						ok = false
						break
					}
					g.targets = append(g.targets, target)
					target.targetOf.Store(g)
					ctx.appendBlock(target)
				}
				if ok {
					groups = append(groups, g)
					continue
				}
				// Out of memory mid-way: the created targets stay in the
				// context as ordinary empty blocks, only their target
				// claim is dropped.
				for _, t := range g.targets {
					t.targetOf.Store(nil)
				}
			}
			// Too small after ownership back-offs (or no memory for a
			// target): release the claims.
			for _, b := range g.blocks {
				b.group.Store(nil)
			}
		}
	}
	return groups
}

// freezeGroup builds each block's relocation list and freezes the
// scheduled objects (§5.1, freezing epoch). Target slots are assigned
// sequentially in the target block; under a registered cluster key
// (PackCluster) the sequence follows the cluster column's key order
// instead of block/slot order, so the target comes out physically
// key-sorted and a capacity cutoff drops the extreme keys — the rebuilt
// bounds stay as tight as the group allows. The freeze protocol itself
// is identical either way: publish each block's list, then CAS-freeze
// exactly the scheduled incarnations.
func (m *Manager) freezeGroup(g *CompactionGroup) {
	type sched struct {
		blk  int // index into g.blocks
		slot int32
		inc  uint32
		key  int64
	}
	clusterSlot := g.ctx.clusterKeySlot()
	if g.targets[0].syn == nil {
		clusterSlot = -1 // no bounds to rebuild; key order buys nothing
	}
	// Targets share one geometry; the group's room is their sum.
	tcap := g.targets[0].capacity
	capTotal := len(g.targets) * tcap
	var pending []sched
	for bi, b := range g.blocks {
		if b.allocOwned.Load() {
			panic("mem: freezing a session-owned block (claim protocol violated)")
		}
		for slot := 0; slot < b.capacity; slot++ {
			if slotDirState(b.SlotDirWord(slot)) != slotValid {
				continue
			}
			if clusterSlot < 0 && len(pending) >= capTotal {
				break
			}
			cell := g.ctx.incCellFor(b, slot)
			w := atomic.LoadUint32(cell)
			if w&FlagMask != 0 {
				continue // mid-transition; leave this slot alone
			}
			s := sched{blk: bi, slot: int32(slot), inc: w}
			if clusterSlot >= 0 {
				// Safe to read the field: the slot is valid and unfrozen,
				// removals never touch field bytes, and publishes complete
				// their writes before the directory flips to valid.
				s.key = synKey(b, slot, g.ctx.syn.fields[clusterSlot])
			}
			pending = append(pending, s)
		}
	}
	if clusterSlot >= 0 {
		// Key order decides both the target layout and — when the group
		// overflows the target — which rows stay behind (the highest
		// keys). Stable sort keeps block/slot order within equal keys.
		sort.SliceStable(pending, func(i, j int) bool {
			return pending[i].key < pending[j].key
		})
		if len(pending) > capTotal {
			pending = pending[:capTotal]
		}
	}
	lists := make([]*relocList, len(g.blocks))
	for bi, b := range g.blocks {
		lists[bi] = &relocList{bySlot: make([]int32, b.capacity)}
	}
	for next, s := range pending {
		b, list := g.blocks[s.blk], lists[s.blk]
		// Deal the (key-ordered, under PackCluster) sequence into
		// consecutive targets: target i takes rows [i*tcap, (i+1)*tcap),
		// i.e. one key-quantile slice of the group.
		list.entries = append(list.entries, relocEntry{
			slot:   s.slot,
			toSlot: int32(next % tcap),
			inc:    s.inc,
			toBlk:  g.targets[next/tcap],
			entry:  b.backEntry(int(s.slot)),
		})
		list.bySlot[s.slot] = int32(len(list.entries))
	}
	for bi, b := range g.blocks {
		list := lists[bi]
		// Publish the list before setting any frozen bit: readers that
		// observe a frozen incarnation resolve it through this list.
		b.reloc.Store(list)
		for i := range list.entries {
			re := &list.entries[i]
			cell := g.ctx.incCellFor(b, int(re.slot))
			// Freeze exactly the scheduled incarnation; if the object
			// was removed (or replaced) meanwhile, the CAS fails and
			// the slot is dropped from this compaction.
			if !atomic.CompareAndSwapUint32(cell, re.inc, re.inc|FlagFrozen) {
				re.status.Store(rSkipped)
			}
		}
	}
}

func (m *Manager) waitAllAtLeast(e uint64, cs *Session, timeout time.Duration, done <-chan struct{}) bool {
	deadline := time.Now().Add(timeout)
	for !m.ep.AllAtLeast(e, cs.ep) {
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// moveGroup relocates one group: declare the moving intent, drain query
// pins (with the paper's bail-out timeout), move every scheduled object,
// and retry relocations that readers failed during the waiting phase
// ("it extends compaction by one additional epoch to try all unsuccessful
// relocations again", §5.1 — here a bounded retry loop inside the moving
// phase, during which helpers co-operate rather than bail).
func (m *Manager) moveGroup(g *CompactionGroup) (int, bool) {
	// Declare moving before checking pins: an enumerator pins and then
	// checks the state, so this ordering closes the pin/move race.
	g.state.Store(gMoving)
	deadline := time.Now().Add(m.cfg.PinWaitTimeout)
	for g.pins.Load() != 0 {
		if time.Now().After(deadline) {
			m.abortGroup(g)
			return 0, false
		}
		runtime.Gosched()
	}
	moved := 0
	for round := 0; round < 3; round++ {
		pending := 0
		for _, b := range g.blocks {
			list := b.reloc.Load()
			for i := range list.entries {
				re := &list.entries[i]
				switch re.status.Load() {
				case rPending:
					if m.moveOne(g.ctx, b, re) {
						moved++
					} else if re.status.Load() == rFailed {
						pending++
					}
				case rFailed:
					// Re-freeze and retry: in the moving phase readers
					// help instead of bailing, so this converges. The
					// CAS against the scheduled incarnation guarantees
					// a bailed object that was removed meanwhile can
					// never be rescheduled.
					cell := g.ctx.incCellFor(b, int(re.slot))
					if atomic.CompareAndSwapUint32(cell, re.inc, re.inc|FlagFrozen) {
						re.status.Store(rPending)
						if m.moveOne(g.ctx, b, re) {
							moved++
						} else if re.status.Load() == rFailed {
							pending++
						}
					} else if atomic.LoadUint32(cell)&IncMask != re.inc {
						re.status.Store(rSkipped) // removed meanwhile
					} else {
						pending++
					}
				}
			}
		}
		if pending == 0 {
			break
		}
	}
	return moved, true
}

// moveGroups drives the moving phase over every planned group. With one
// worker it is exactly the serial pass. With more, workers claim whole
// groups from an atomic work-stealing cursor, so independent groups (and
// independent contexts) move concurrently while each group's own
// pin-drain/retry/abort protocol runs single-owner on the worker that
// claimed it — concurrent helpers remain safe exactly as they are for
// the serial compactor, via moveOne's per-slot CAS locking. Extra
// workers run on sessions leased from the manager's session pool; the
// coordinator goroutine participates as worker zero, and a failed lease
// degrades to fewer workers rather than failing the pass.
func (m *Manager) moveGroups(groups []*CompactionGroup, workers int, done <-chan struct{}) (int, error) {
	var firstErr atomic.Pointer[error]
	// runGroup moves one claimed group under the robustness contract.
	// Cancellation observed at the claim aborts the group — safe exactly
	// there, before its first object moves; once moving, the claim owner
	// finishes it (aborting a half-moved group would strand objects). A
	// panic mid-group is recovered and recorded; the group's remaining
	// relocations stay resolvable by the cooperative helper protocol
	// (enumerators help, the post-phase sweep unfreezes leftovers), so
	// one poisoned group never kills the pass or the process.
	runGroup := func(g *CompactionGroup) (moved int) {
		if done != nil {
			select {
			case <-done:
				if g.state.Load() < gMoving {
					m.abortGroup(g)
				}
				return 0
			default:
			}
		}
		defer func() {
			if r := recover(); r != nil {
				err := recoverToError(r)
				firstErr.CompareAndSwap(nil, &err)
			}
		}()
		fault.Point(fault.PointCompactGroup)
		n, _ := m.moveGroup(g)
		return n
	}
	moveErr := func() error {
		if p := firstErr.Load(); p != nil {
			return *p
		}
		return nil
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		moved := 0
		for _, g := range groups {
			moved += runGroup(g)
		}
		return moved, moveErr()
	}
	var cursor atomic.Int64
	counts := make([]int64, workers)
	run := func(w int) {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(groups) {
				return
			}
			counts[w] += int64(runGroup(groups[i]))
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		ws, err := m.LeaseSession()
		if err != nil {
			break // epoch slots exhausted: proceed with fewer workers
		}
		wg.Add(1)
		go func(w int, ws *Session) {
			defer wg.Done()
			defer m.ReturnSession(ws)
			// The critical section publishes the worker at the relocation
			// epoch; it exits before the coordinator closes the epoch, so
			// the final gated advance never waits on a move worker.
			ws.Enter()
			defer ws.Exit()
			run(w)
		}(w, ws)
	}
	run(0)
	wg.Wait()
	moved := 0
	for _, c := range counts {
		moved += int(c)
	}
	return moved, moveErr()
}

// helpGroup moves every resolvable scheduled relocation of g on behalf of
// an enumerator that found the group in its moving phase (§5.2). It
// returns true when no relocation remains unresolved — the group's
// post-relocation state is then complete and safe to enumerate even
// before the compactor marks the group done.
func (m *Manager) helpGroup(g *CompactionGroup) bool {
	resolved := true
	helped := 0
	for _, b := range g.blocks {
		list := b.reloc.Load()
		if list == nil {
			continue // aborted concurrently; the caller's state check decides
		}
		for i := range list.entries {
			re := &list.entries[i]
			switch re.status.Load() {
			case rPending:
				if m.moveOne(g.ctx, b, re) {
					helped++
				} else if st := re.status.Load(); st == rPending || st == rFailed {
					resolved = false
				}
			case rFailed:
				// Re-freeze and retry, as the compactor's retry round does.
				cell := g.ctx.incCellFor(b, int(re.slot))
				if atomic.CompareAndSwapUint32(cell, re.inc, re.inc|FlagFrozen) {
					re.status.Store(rPending)
					if m.moveOne(g.ctx, b, re) {
						helped++
					} else if st := re.status.Load(); st == rPending || st == rFailed {
						resolved = false
					}
				} else if atomic.LoadUint32(cell)&IncMask != re.inc {
					re.status.Store(rSkipped) // removed meanwhile
				} else {
					resolved = false
				}
			}
		}
	}
	if helped > 0 {
		m.stats.RelocHelped.Add(int64(helped))
	}
	return resolved
}

// abortGroup abandons a group before any of its objects moved: unfreeze
// everything and put the blocks back in general circulation.
func (m *Manager) abortGroup(g *CompactionGroup) {
	for _, b := range g.blocks {
		list := b.reloc.Load()
		if list == nil {
			continue
		}
		for i := range list.entries {
			re := &list.entries[i]
			if re.status.Load() != rPending {
				continue
			}
			cell := g.ctx.incCellFor(b, int(re.slot))
			for {
				w := atomic.LoadUint32(cell)
				if w&FlagFrozen == 0 {
					break
				}
				if w&FlagLock != 0 {
					runtime.Gosched()
					continue
				}
				if atomic.CompareAndSwapUint32(cell, w, w&IncMask) {
					break
				}
			}
			re.status.Store(rSkipped)
		}
		b.reloc.Store(nil)
		b.group.Store(nil)
	}
	for _, t := range g.targets {
		t.targetOf.Store(nil)
	}
	g.state.Store(gAborted)
	m.stats.GroupsAborted.Add(1)
}

func (m *Manager) abortRun(groups []*CompactionGroup) {
	for _, g := range groups {
		if g.state.Load() < gMoving {
			m.abortGroup(g)
		}
	}
	m.movingPhase.Store(false)
	m.relocEpoch.Store(0)
	for _, g := range groups {
		for _, t := range g.targets {
			t.targetOf.Store(nil)
		}
	}
}

// moveOne locks and relocates a single scheduled object (§5.1, Figure 4).
// It is also the helper path executed by readers in the moving phase
// (case c of dereference). Returns true if this call performed the move.
func (m *Manager) moveOne(ctx *Context, b *Block, re *relocEntry) bool {
	cell := ctx.incCellFor(b, int(re.slot))
	for {
		if st := re.status.Load(); st != rPending {
			return false
		}
		w := atomic.LoadUint32(cell)
		if w&IncMask != re.inc {
			// The object was removed (incarnation bumped): this
			// relocation is permanently disarmed.
			re.status.Store(rSkipped)
			return false
		}
		if w&FlagFrozen == 0 {
			// Resolved elsewhere: a reader bailed it out (status
			// rFailed) or another mover finished it (rDone); either
			// way the status tells the caller what happened.
			return false
		}
		if w&FlagLock != 0 {
			runtime.Gosched()
			continue
		}
		// Lock exactly the scheduled incarnation+frozen word.
		if !atomic.CompareAndSwapUint32(cell, re.inc|FlagFrozen, re.inc|FlagFrozen|FlagLock) {
			continue
		}
		// Relocation lock held: the incarnation is pinned (removers CAS
		// against a clean word and will retry against the lock), so the
		// slot is provably still valid.
		m.doMove(ctx, b, re, re.inc|FlagFrozen)
		return true
	}
}

func (m *Manager) doMove(ctx *Context, b *Block, re *relocEntry, w uint32) {
	src, dst := int(re.slot), int(re.toSlot)
	to := re.toBlk
	if ctx.layout == Columnar {
		for i := range ctx.sch.Fields {
			f := &ctx.sch.Fields[i]
			sz := f.Kind.Size()
			copyBytes(to.FieldPtr(dst, f), b.FieldPtr(src, f), sz)
		}
	} else {
		copyBytes(to.SlotData(dst), b.SlotData(src), ctx.sch.Size)
	}
	to.setBackEntry(dst, re.entry)
	// Widen the target's synopses before publishing the slot. Targets
	// start with empty bounds and are filled only by moves, so when the
	// group completes the target's bounds are the exact min/max over its
	// rows — compaction is the bounds-tightening point (synopsis.go).
	ctx.widenSynopses(to, dst)
	to.storeSlotDir(dst, packSlotDir(slotValid, 0))
	to.validCount.Add(1)
	// Atomically redirect the indirection entry ("Atomically updating
	// the pointer in the indirection table suffices", §5.1).
	if ctx.layout == Columnar {
		storePayload(re.entry, packColumnar(to.id, dst))
	} else {
		storePayload(re.entry, uint64(uintptr(to.SlotData(dst))))
	}
	g := m.ep.Global()
	b.storeSlotDir(src, packSlotDir(slotLimbo, g))
	b.validCount.Add(-1)
	b.limboCount.Add(1)

	clean := w & IncMask
	if ctx.layout == RowDirect {
		// New slot carries the incarnation; the old slot becomes a
		// forwarding tombstone in the same store that drops the frozen
		// and lock bits (§6).
		atomic.StoreUint32(to.slotHeaderPtr(dst), clean)
		atomic.StoreUint32(b.slotHeaderPtr(src), clean|FlagForward)
	} else {
		atomic.StoreUint32(entryIncPtr(re.entry), clean)
	}
	re.status.Store(rDone)
}

// bailOutRelocation implements dereference case (b): the reader is in the
// waiting phase, cannot read a possibly-moving object and cannot move it
// either, so it fails the relocation (§5.1).
func (c *Context) bailOutRelocation(blk *Block, slot int, cell *uint32) {
	re := blk.reloc.Load().find(slot)
	if re == nil {
		// A frozen bit with no scheduled relocation is a leftover from
		// a completed or aborted compaction (lists are published before
		// any bit is set, so an active freeze always has an entry).
		// Nothing will ever move this object; clear the bit so readers
		// and removers can proceed.
		for {
			w := atomic.LoadUint32(cell)
			if w&FlagFrozen == 0 {
				return
			}
			if w&FlagLock != 0 {
				runtime.Gosched()
				continue
			}
			if atomic.CompareAndSwapUint32(cell, w, w&^FlagFrozen) {
				return
			}
		}
	}
	for {
		w := atomic.LoadUint32(cell)
		if w&FlagFrozen == 0 {
			return // already resolved
		}
		if w&FlagLock != 0 {
			runtime.Gosched()
			continue
		}
		if atomic.CompareAndSwapUint32(cell, w, w|FlagLock) {
			re.status.Store(rFailed)
			atomic.StoreUint32(cell, w&IncMask)
			c.mgr.stats.RelocBailouts.Add(1)
			return
		}
	}
}

// helpRelocate implements dereference case (c): the reader helps the
// compaction thread move the object, then proceeds (§5.1).
func (c *Context) helpRelocate(blk *Block, slot int, cell *uint32) {
	re := blk.reloc.Load().find(slot)
	if re == nil {
		runtime.Gosched()
		return
	}
	if c.mgr.moveOne(c, blk, re) {
		c.mgr.stats.RelocHelped.Add(1)
	}
}

// fixupDirectPointers rewrites every direct in-object pointer that leads
// into a compacted block of target context c (§6): sources are known
// statically (RegisterRefEdge), and a hash probe on the block base avoids
// chasing pointers into untouched blocks.
func (m *Manager) fixupDirectPointers(c *Context, bases map[uintptr]bool) {
	mask := uintptr(m.cfg.BlockSize - 1)
	for _, edge := range c.edges() {
		if !edge.direct {
			continue
		}
		f := &edge.src.sch.Fields[edge.field]
		for _, sb := range edge.src.SnapshotBlocks() {
			for slot := 0; slot < sb.capacity; slot++ {
				if slotDirState(sb.SlotDirWord(slot)) != slotValid {
					continue
				}
				fp := sb.FieldPtr(slot, f)
				addrWord := (*uint64)(fp)
				a := atomic.LoadUint64(addrWord)
				if a == 0 || !bases[uintptr(a)&^mask] {
					continue
				}
				oldBlk := m.blockFromAddr(payloadAddr(a))
				if oldBlk == nil {
					continue
				}
				oslot := oldBlk.slotIndexFromData(payloadAddr(a))
				hw := atomic.LoadUint32(oldBlk.slotHeaderPtr(oslot))
				inc := atomic.LoadUint32((*uint32)(unsafe.Add(fp, 8)))
				if hw&FlagForward == 0 || hw&IncMask != inc {
					// Not a tombstone for this reference: the object was
					// removed rather than relocated. The block is about
					// to be unmapped, so null the pointer out now — a
					// later dereference of a dangling address could not
					// even reach the incarnation check. CAS keeps a
					// racing writer's fresh assignment intact.
					atomic.CompareAndSwapUint64(addrWord, a, 0)
					continue
				}
				e := oldBlk.backEntry(oslot)
				atomic.StoreUint64(addrWord, loadPayload(e))
			}
		}
	}
}

func copyBytes(dst, src unsafe.Pointer, n uintptr) {
	copy(unsafe.Slice((*byte)(dst), n), unsafe.Slice((*byte)(src), n))
}
