package mem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/types"
)

type testObj struct {
	ID   int64
	Name string
}

var testSchema = schema.MustOf[testObj]()

type harness struct {
	m   *Manager
	ctx *Context
	s   *Session

	idF, nameF *schema.Field
}

func newHarness(t *testing.T, layout Layout, cfg Config) *harness {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := m.NewContext("test", testSchema, layout)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return &harness{
		m: m, ctx: ctx, s: s,
		idF:   testSchema.MustField("ID"),
		nameF: testSchema.MustField("Name"),
	}
}

func (h *harness) add(t *testing.T, s *Session, id int64, name string) types.Ref {
	t.Helper()
	ref, obj, err := h.ctx.Alloc(s)
	if err != nil {
		t.Fatal(err)
	}
	*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
	sr, err := h.ctx.AllocString(s, name)
	if err != nil {
		t.Fatal(err)
	}
	*(*types.StrRef)(obj.Blk.FieldPtr(obj.Slot, h.nameF)) = sr
	h.ctx.Publish(s, obj)
	return ref
}

func (h *harness) get(s *Session, ref types.Ref) (int64, string, error) {
	s.Enter()
	defer s.Exit()
	obj, err := h.ctx.Deref(s, ref)
	if err != nil {
		return 0, "", err
	}
	id := *(*int64)(obj.Field(h.idF))
	name := (*(*types.StrRef)(obj.Field(h.nameF))).String()
	return id, name, nil
}

func (h *harness) remove(s *Session, ref types.Ref) error {
	s.Enter()
	defer s.Exit()
	return h.ctx.Remove(s, ref)
}

func (h *harness) count() int { return h.ctx.Len() }

func allLayouts() []Layout { return []Layout{RowIndirect, RowDirect, Columnar} }

func TestManagerConfigValidation(t *testing.T) {
	bad := []Config{
		{BlockSize: 1000},         // not a power of two
		{BlockSize: 2048},         // too small
		{ReclaimThreshold: 1.5},   // out of range
		{CompactionThreshold: -1}, // out of range
		{BlockSize: 1 << 14, ReclaimThreshold: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockSize() != 1<<18 {
		t.Errorf("default block size = %d", m.BlockSize())
	}
	m.Close()
	if err := m.Close(); err == nil {
		t.Error("double Close should fail")
	}
}

func TestAddGetRoundTrip(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 14, HeapBackend: true})
			refs := make([]types.Ref, 0, 500)
			for i := 0; i < 500; i++ {
				refs = append(refs, h.add(t, h.s, int64(i), fmt.Sprintf("name-%d", i)))
			}
			if h.count() != 500 {
				t.Fatalf("Len = %d, want 500", h.count())
			}
			for i, r := range refs {
				id, name, err := h.get(h.s, r)
				if err != nil {
					t.Fatalf("get %d: %v", i, err)
				}
				if id != int64(i) || name != fmt.Sprintf("name-%d", i) {
					t.Fatalf("get %d = (%d,%q)", i, id, name)
				}
			}
		})
	}
}

func TestRemoveNullsReferences(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 14, HeapBackend: true})
			r1 := h.add(t, h.s, 1, "adam")
			r2 := h.add(t, h.s, 2, "eve")
			if err := h.remove(h.s, r1); err != nil {
				t.Fatal(err)
			}
			if _, _, err := h.get(h.s, r1); err != ErrNullReference {
				t.Fatalf("deref removed = %v, want ErrNullReference", err)
			}
			if err := h.remove(h.s, r1); err != ErrNullReference {
				t.Fatalf("double remove = %v, want ErrNullReference", err)
			}
			if id, _, err := h.get(h.s, r2); err != nil || id != 2 {
				t.Fatalf("unrelated object affected: (%d, %v)", id, err)
			}
			if h.count() != 1 {
				t.Fatalf("Len = %d, want 1", h.count())
			}
			// Nil and zero refs behave as null.
			if err := h.remove(h.s, types.Ref{}); err != ErrNullReference {
				t.Fatalf("remove nil ref = %v", err)
			}
		})
	}
}

func TestDerefOutsideCriticalPanics(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 14, HeapBackend: true})
	ref := h.add(t, h.s, 1, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = h.ctx.Deref(h.s, ref)
}

// TestSlotReuseNeedsTwoEpochs verifies the §3.4 reclamation rule: a limbo
// slot freed in epoch e is not reused before epoch e+2.
func TestSlotReuseNeedsTwoEpochs(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.01,
		HeapBackend:      true,
	})
	cap := h.ctx.BlockCapacity()
	refs := make([]types.Ref, 0, cap)
	for i := 0; i < cap; i++ {
		refs = append(refs, h.add(t, h.s, int64(i), ""))
	}
	if h.ctx.Blocks() != 1 {
		t.Fatalf("expected one block, got %d", h.ctx.Blocks())
	}
	// Remove everything: block crosses the reclaim threshold on abandon.
	for _, r := range refs {
		if err := h.remove(h.s, r); err != nil {
			t.Fatal(err)
		}
	}
	reclaimedBefore := h.m.Stats().SlotsReclaimed.Load()
	// Allocate again immediately: epochs have not advanced twice, so the
	// allocator must take a fresh block rather than touch limbo slots.
	h.add(t, h.s, 999, "")
	if h.m.Stats().SlotsReclaimed.Load() != reclaimedBefore {
		t.Fatal("limbo slot reclaimed before two epochs passed")
	}
	// Let epochs advance (no sessions in critical sections).
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	for i := 0; i < cap; i++ {
		h.add(t, h.s, int64(1000+i), "")
	}
	if got := h.m.Stats().SlotsReclaimed.Load(); got == reclaimedBefore {
		t.Fatal("limbo slots never reclaimed after epochs advanced")
	}
}

func TestStringStorageReclaimedWithSlot(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.01,
				HeapBackend:      true,
			})
			var refs []types.Ref
			for i := 0; i < 200; i++ {
				refs = append(refs, h.add(t, h.s, int64(i), fmt.Sprintf("some-longer-string-%06d", i)))
			}
			live := h.ctx.LiveStringBytes()
			if live == 0 {
				t.Fatal("no live string bytes accounted")
			}
			for _, r := range refs {
				if err := h.remove(h.s, r); err != nil {
					t.Fatal(err)
				}
			}
			// Strings are freed at slot *reclamation*, not removal.
			if h.ctx.LiveStringBytes() != live {
				t.Fatal("strings freed before grace period")
			}
			h.m.TryAdvanceEpoch()
			h.m.TryAdvanceEpoch()
			for i := 0; i < 200; i++ {
				h.add(t, h.s, int64(i), "short")
			}
			if after := h.ctx.LiveStringBytes(); after >= live {
				t.Fatalf("string bytes not reclaimed: before=%d after=%d", live, after)
			}
		})
	}
}

func TestEnumerationSeesAllValid(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 13, HeapBackend: true})
			const n = 1000
			refs := make([]types.Ref, 0, n)
			for i := 0; i < n; i++ {
				refs = append(refs, h.add(t, h.s, int64(i), ""))
			}
			// Remove every third object.
			removed := 0
			for i := 0; i < n; i += 3 {
				if err := h.remove(h.s, refs[i]); err != nil {
					t.Fatal(err)
				}
				removed++
			}
			sum := int64(0)
			cnt := 0
			h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
				sum += *(*int64)(b.FieldPtr(slot, h.idF))
				cnt++
				return true
			})
			wantCnt := n - removed
			if cnt != wantCnt {
				t.Fatalf("enumerated %d, want %d", cnt, wantCnt)
			}
			var wantSum int64
			for i := 0; i < n; i++ {
				if i%3 != 0 {
					wantSum += int64(i)
				}
			}
			if sum != wantSum {
				t.Fatalf("sum = %d, want %d", sum, wantSum)
			}
		})
	}
}

func TestMakeRefFromEnumeration(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 13, HeapBackend: true})
			want := map[int64]bool{}
			for i := 0; i < 100; i++ {
				h.add(t, h.s, int64(i), "")
				want[int64(i)] = true
			}
			var refs []types.Ref
			h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
				refs = append(refs, h.ctx.MakeRef(b, slot))
				return true
			})
			if len(refs) != 100 {
				t.Fatalf("made %d refs", len(refs))
			}
			got := map[int64]bool{}
			for _, r := range refs {
				id, _, err := h.get(h.s, r)
				if err != nil {
					t.Fatal(err)
				}
				got[id] = true
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("missing id %d", id)
				}
			}
		})
	}
}

// TestIncarnationProtectsReuse checks the §3.1 guarantee: after a slot is
// reused for a new object, references to the old incarnation observe
// null, never the new object.
func TestIncarnationProtectsReuse(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.01,
				HeapBackend:      true,
			})
			old := make([]types.Ref, 0, 50)
			for i := 0; i < 50; i++ {
				old = append(old, h.add(t, h.s, int64(i), "old"))
			}
			for _, r := range old {
				if err := h.remove(h.s, r); err != nil {
					t.Fatal(err)
				}
			}
			h.m.TryAdvanceEpoch()
			h.m.TryAdvanceEpoch()
			// Refill; most allocations should land in reclaimed slots.
			for i := 0; i < 50; i++ {
				h.add(t, h.s, int64(1000+i), "new")
			}
			for _, r := range old {
				if _, _, err := h.get(h.s, r); err != ErrNullReference {
					t.Fatalf("stale ref returned %v, want null", err)
				}
			}
		})
	}
}

func TestBlocksComeFromReclamationQueue(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.05,
		HeapBackend:      true,
	})
	cap := h.ctx.BlockCapacity()
	// Fill three blocks.
	var refs []types.Ref
	for i := 0; i < cap*3; i++ {
		refs = append(refs, h.add(t, h.s, int64(i), ""))
	}
	blocksBefore := h.ctx.Blocks()
	// Free the first block's worth entirely.
	for i := 0; i < cap; i++ {
		if err := h.remove(h.s, refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	// Refill: the allocator should reuse limbo slots in queued blocks
	// instead of growing the context.
	for i := 0; i < cap; i++ {
		h.add(t, h.s, int64(10000+i), "")
	}
	if got := h.ctx.Blocks(); got > blocksBefore+1 {
		t.Fatalf("blocks grew from %d to %d despite reclaimable space", blocksBefore, got)
	}
	if h.m.Stats().SlotsReclaimed.Load() == 0 {
		t.Fatal("no slots reclaimed")
	}
}

func TestMemoryBytesAccounting(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	if h.ctx.MemoryBytes() != 0 {
		t.Fatalf("fresh context reports %d bytes", h.ctx.MemoryBytes())
	}
	for i := 0; i < 100; i++ {
		h.add(t, h.s, int64(i), "hello world padding padding")
	}
	if h.ctx.MemoryBytes() < 1<<13 {
		t.Fatalf("MemoryBytes = %d, want at least one block", h.ctx.MemoryBytes())
	}
}

func TestSessionExhaustionAndReuse(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 14, HeapBackend: true})
	s2, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	h.add(t, s2, 7, "via-s2")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if h.count() != 1 {
		t.Fatalf("Len = %d", h.count())
	}
}

// TestConcurrentAddRemoveEnumerate is the core bag-semantics stress test:
// concurrent adders, removers and enumerators must never observe torn
// objects or wrong-object dereferences.
func TestConcurrentAddRemoveEnumerate(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.05,
				HeapBackend:      true,
			})
			const perWorker = 600
			const workers = 3
			var wg sync.WaitGroup
			errs := make(chan error, workers*2)

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s, err := h.m.NewSession()
					if err != nil {
						errs <- err
						return
					}
					defer s.Close()
					var mine []types.Ref
					for i := 0; i < perWorker; i++ {
						id := int64(w*1_000_000 + i)
						mine = append(mine, h.add(t, s, id, "w"))
						if i%2 == 1 {
							s.Enter()
							if err := h.ctx.Remove(s, mine[len(mine)-2]); err != nil {
								errs <- fmt.Errorf("remove: %w", err)
								s.Exit()
								return
							}
							s.Exit()
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := h.m.NewSession()
				if err != nil {
					errs <- err
					return
				}
				defer s.Close()
				for round := 0; round < 20; round++ {
					h.ctx.ForEachValid(s, func(b *Block, slot int) bool {
						id := *(*int64)(b.FieldPtr(slot, h.idF))
						if id < 0 || id >= workers*1_000_000+perWorker {
							errs <- fmt.Errorf("torn/garbage id %d", id)
							return false
						}
						return true
					})
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			// Each worker keeps half its objects (odd i removes the even
			// predecessor), so expect workers*perWorker/2 survivors.
			if got, want := h.count(), workers*perWorker/2; got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
		})
	}
}

// TestEntryRetireOnIncOverflow forces an indirection entry to MaxInc and
// checks the allocator retires it rather than recycling (§3.1 overflow).
func TestEntryRetireOnIncOverflow(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.01,
		HeapBackend:      true,
	})
	ref := h.add(t, h.s, 1, "")
	// Force the entry's incarnation to the retirement point.
	e := entryRef(ref.Entry)
	*entryIncPtr(e) = MaxInc - 1
	ref.Inc = MaxInc - 1
	if err := h.remove(h.s, ref); err != nil {
		t.Fatal(err)
	}
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	// The retired entry must not be handed to a new object.
	for i := 0; i < 10; i++ {
		nr := h.add(t, h.s, int64(100+i), "")
		if nr.Entry == ref.Entry {
			t.Fatal("retired entry was recycled")
		}
	}
	if _, _, err := h.get(h.s, ref); err != ErrNullReference {
		t.Fatalf("retired ref deref = %v", err)
	}
}

// TestSlotRetireDirectMode forces a slot-header incarnation to the
// retirement point in direct mode; the slot must leave circulation.
func TestSlotRetireDirectMode(t *testing.T) {
	h := newHarness(t, RowDirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.01,
		HeapBackend:      true,
	})
	ref := h.add(t, h.s, 1, "")
	h.s.Enter()
	obj, err := h.ctx.Deref(h.s, ref)
	if err != nil {
		t.Fatal(err)
	}
	robj := ObjFromPtr(h.ctx, obj.Ptr)
	blk, slot := robj.Blk, robj.Slot
	*blk.slotHeaderPtr(slot) = MaxInc - 1
	// Keep the entry's incarnation mirror in sync, as Remove would.
	*entryIncPtr(entryRef(ref.Entry)) = MaxInc - 1
	h.s.Exit()
	ref.Inc = MaxInc - 1
	if err := h.remove(h.s, ref); err != nil {
		t.Fatal(err)
	}
	if got := slotDirState(blk.SlotDirWord(slot)); got != slotRetired {
		t.Fatalf("slot state = %d, want retired", got)
	}
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	// Refill the block; the retired slot must stay out of circulation.
	for i := 0; i < blk.capacity; i++ {
		h.add(t, h.s, int64(i), "")
	}
	if got := slotDirState(blk.SlotDirWord(slot)); got != slotRetired {
		t.Fatalf("retired slot reused (state %d)", got)
	}
}

func TestGeometryFitsBlock(t *testing.T) {
	for _, layout := range allLayouts() {
		for _, bs := range []int{1 << 12, 1 << 14, 1 << 18} {
			g, err := computeGeometry(bs, testSchema, layout)
			if err != nil {
				t.Fatalf("%v/%d: %v", layout, bs, err)
			}
			if g.capacity <= 0 {
				t.Fatalf("%v/%d: capacity %d", layout, bs, g.capacity)
			}
			end := int(g.backOff) + g.capacity*8
			if end > bs {
				t.Fatalf("%v/%d: layout end %d exceeds block size", layout, bs, end)
			}
		}
	}
}
