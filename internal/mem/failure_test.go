package mem

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// Failure-injection tests: force the rare paths of the compaction
// protocol (§5) and the overflow handling (§3.1) that normal workloads
// hit only probabilistically.

// TestForcedBailOutPath drives dereference case (b): a frozen object in
// the waiting phase is bailed out by a reader, the relocation is marked
// failed, and the reader proceeds with the old location.
func TestForcedBailOutPath(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	groups := h.m.planGroups()
	if len(groups) == 0 {
		t.Fatal("no groups planned")
	}
	for _, g := range groups {
		h.m.freezeGroup(g)
		g.state.Store(gFrozen)
	}
	// Simulate the waiting phase: relocation epoch announced, moving
	// phase not yet reached, reader session already at the relocation
	// epoch.
	reloc := h.m.ep.Global() + 1
	h.m.relocEpoch.Store(reloc)
	h.m.movingPhase.Store(false)
	for g := h.m.ep.Global(); g < reloc; g, _ = h.m.ep.TryAdvance() {
	}

	bailsBefore := h.m.Stats().RelocBailouts.Load()
	// Dereference every survivor: frozen ones must bail their relocation
	// out (case b) and still resolve correctly.
	for id, r := range survivors {
		gotID, _, err := h.get(h.s, r)
		if err != nil || gotID != id {
			t.Fatalf("bail-out deref %d: (%d, %v)", id, gotID, err)
		}
	}
	if h.m.Stats().RelocBailouts.Load() == bailsBefore {
		t.Fatal("no bail-outs recorded; waiting-phase path not exercised")
	}
	// Clean up as an aborted run would.
	h.m.abortRun(groups)
	verifySurvivors(t, h, survivors)
}

// TestForcedHelpPath drives dereference case (c): in the moving phase a
// reader helps relocate the object it needs, then proceeds at the new
// location.
func TestForcedHelpPath(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	groups := h.m.planGroups()
	if len(groups) == 0 {
		t.Fatal("no groups planned")
	}
	for _, g := range groups {
		h.m.freezeGroup(g)
		g.state.Store(gMoving) // helpers may move
	}
	reloc := h.m.ep.Global() + 1
	h.m.relocEpoch.Store(reloc)
	h.m.movingPhase.Store(true)
	for g := h.m.ep.Global(); g < reloc; g, _ = h.m.ep.TryAdvance() {
	}

	helpedBefore := h.m.Stats().RelocHelped.Load()
	for id, r := range survivors {
		gotID, _, err := h.get(h.s, r)
		if err != nil || gotID != id {
			t.Fatalf("help deref %d: (%d, %v)", id, gotID, err)
		}
	}
	if h.m.Stats().RelocHelped.Load() == helpedBefore {
		t.Fatal("no helps recorded; moving-phase path not exercised")
	}
	h.m.movingPhase.Store(false)
	h.m.relocEpoch.Store(0)
	// Helpers moved objects into the targets; contents must be intact.
	verifySurvivors(t, h, survivors)
	for _, g := range groups {
		for _, b := range g.blocks {
			b.reloc.Store(nil)
			b.group.Store(nil)
		}
		for _, tb := range g.targets {
			tb.targetOf.Store(nil)
		}
	}
}

// TestOrphanFrozenBitCleared covers the leftover-frozen defense: a frozen
// incarnation with no relocation list must be cleared by the reader
// rather than spinning forever.
func TestOrphanFrozenBitCleared(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	ref := h.add(t, h.s, 7, "x")
	e := entryRef(ref.Entry)
	// Plant an orphan frozen bit (no reloc list anywhere).
	atomic.StoreUint32(entryIncPtr(e), ref.Inc|FlagFrozen)

	done := make(chan error, 1)
	go func() {
		id, _, err := h.get(h.s, ref)
		if err == nil && id != 7 {
			err = ErrNullReference
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("deref with orphan frozen bit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader hung on orphan frozen bit")
	}
	if w := loadInc(e); w&FlagMask != 0 {
		t.Fatalf("orphan frozen bit not cleared: %#x", w)
	}
	// Remove must also get through.
	if err := h.remove(h.s, ref); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionEpochWaitTimeout aborts a run when a session refuses to
// leave an old epoch: the compactor must give up cleanly, leaving all
// data reachable and unflagged.
func TestCompactionEpochWaitTimeout(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		PinWaitTimeout:   2 * time.Millisecond,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)

	// A stubborn session parks inside a critical section and never
	// refreshes: the freezing-epoch wait must time out.
	stubborn, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	stubborn.Enter()

	done := make(chan struct{})
	var moved int
	go func() {
		defer close(done)
		moved, _ = h.m.CompactNow()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("CompactNow did not return despite stuck session")
	}
	stubborn.Exit()
	stubborn.Close()

	if moved != 0 {
		t.Fatalf("compaction moved %d objects despite epoch stall", moved)
	}
	verifySurvivors(t, h, survivors)
	for id, r := range survivors {
		if w := loadInc(entryRef(r.Entry)); w&FlagMask != 0 {
			t.Fatalf("survivor %d left flagged: %#x", id, w)
		}
	}
	// A later unobstructed run must succeed.
	if _, err := h.m.CompactNow(); err != nil {
		t.Fatal(err)
	}
	verifySurvivors(t, h, survivors)
}

// TestStringTooLongRejected covers the StrRef length cap.
func TestStringTooLongRejected(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 14, HeapBackend: true})
	big := make([]byte, types.MaxStringLen+1)
	if _, err := h.ctx.AllocString(h.s, string(big)); err == nil {
		t.Fatal("oversized string accepted")
	}
	// At the cap is fine.
	ok := make([]byte, types.MaxStringLen)
	sr, err := h.ctx.AllocString(h.s, string(ok))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Len() != types.MaxStringLen {
		t.Fatalf("len = %d", sr.Len())
	}
	h.ctx.FreeString(sr)
}

// TestBigStringDedicatedRegion covers the oversized-string path (past the
// largest size class) including its release.
func TestBigStringDedicatedRegion(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 14, HeapBackend: true})
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	ref := h.add(t, h.s, 1, string(payload))
	_, got, err := h.get(h.s, ref)
	if err != nil || got != string(payload) {
		t.Fatalf("big string round-trip failed: %v", err)
	}
	if err := h.remove(h.s, ref); err != nil {
		t.Fatal(err)
	}
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	// The dedicated region is released when the slot is *reclaimed*, not
	// when it is freed (§3.5 reclaims lazily inside the allocation scan).
	// Fill the block so the allocation cursor wraps onto the ripe limbo
	// slot.
	capacity := h.ctx.SnapshotBlocks()[0].Capacity()
	for i := 0; i < capacity; i++ {
		h.add(t, h.s, int64(i+2), "small")
	}
	if live := h.ctx.LiveStringBytes(); live >= 10_000 {
		t.Fatalf("big string not released: %d live bytes", live)
	}
}
