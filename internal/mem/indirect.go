package mem

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/offheap"
	"repro/internal/types"
)

// Incarnation word layout (paper §3.1, §5.1, §6): the three most
// significant bits are the frozen, lock and forwarding flags; the
// remaining 29 bits are the incarnation counter.
const (
	// IncMask extracts the incarnation counter.
	IncMask uint32 = 0x1fffffff
	// FlagForward marks a relocated slot as a tombstone (§6).
	FlagForward uint32 = 1 << 29
	// FlagLock is the relocation lock bit (§5.1).
	FlagLock uint32 = 1 << 30
	// FlagFrozen marks an object scheduled for relocation (§5.1).
	FlagFrozen uint32 = 1 << 31
	// FlagMask extracts all flag bits.
	FlagMask = FlagFrozen | FlagLock | FlagForward
	// MaxInc is the incarnation at which a slot retires: the paper
	// stops reusing slots whose incarnation would overflow (§3.1).
	MaxInc = IncMask - 1
)

// Indirection-table entry layout (16 bytes, off-heap):
//
//	offset 0: payload (8 bytes) — object address (row layouts) or
//	          block-id<<32|slot (columnar, §4.1)
//	offset 8: incarnation word (4 bytes) — authoritative in indirect
//	          layouts (§3.2); mirrors the slot header in direct mode (§6)
//	offset 12: generation (4 bytes) — bumped on entry reuse (see
//	          types.Ref.Gen)
const entrySize = 16

// entryRef is a pointer to an indirection-table entry.
type entryRef = unsafe.Pointer

func entryPayloadPtr(e entryRef) *uint64 { return (*uint64)(e) }
func entryIncPtr(e entryRef) *uint32     { return (*uint32)(unsafe.Add(e, 8)) }
func entryGenPtr(e entryRef) *uint32     { return (*uint32)(unsafe.Add(e, 12)) }

func loadPayload(e entryRef) uint64     { return atomic.LoadUint64(entryPayloadPtr(e)) }
func storePayload(e entryRef, v uint64) { atomic.StoreUint64(entryPayloadPtr(e), v) }
func loadInc(e entryRef) uint32         { return atomic.LoadUint32(entryIncPtr(e)) }
func loadGen(e entryRef) uint32         { return atomic.LoadUint32(entryGenPtr(e)) }

// packColumnar packs a columnar object locator into an entry payload.
func packColumnar(blockID uint32, slot int) uint64 {
	return uint64(blockID)<<32 | uint64(uint32(slot))
}

func unpackColumnar(p uint64) (blockID uint32, slot int) {
	return uint32(p >> 32), int(uint32(p))
}

// payloadAddr converts a row-layout payload back into a pointer. The
// address always identifies off-heap memory.
func payloadAddr(p uint64) unsafe.Pointer { return types.LaunderAddr(uintptr(p)) }

// indirectTable allocates and recycles indirection entries. Entry memory
// lives off-heap in chunks; freed entries are recycled only after two
// epochs so that concurrent readers (including the compactor's
// direct-pointer fix-up scan) never chase a recycled entry.
type indirectTable struct {
	alloc *offheap.Allocator

	mu     sync.Mutex
	chunks []*offheap.Region
	bump   unsafe.Pointer // next unused entry in the newest chunk
	remain int            // entries remaining in the newest chunk

	free     []freedEntry // FIFO: freed epochs are non-decreasing
	freeHead int
	// fresh holds entries returned from closed sessions' caches: they
	// were never visible to any reference, so they are reusable without
	// an epoch delay (and without touching the FIFO above, whose head
	// index must not shift under consumers).
	fresh []entryRef

	liveEntries atomic.Int64
}

type freedEntry struct {
	e     entryRef
	epoch uint64
}

const (
	entryChunkBytes = 1 << 20 // 64Ki entries per chunk
	entryBatch      = 128     // session cache refill size
)

func newIndirectTable(alloc *offheap.Allocator) (*indirectTable, error) {
	return &indirectTable{alloc: alloc}, nil
}

// allocBatch hands out up to max entries: recycled ripe entries first,
// then fresh ones from the bump chunk. Caller passes the current global
// epoch for ripeness checks.
func (t *indirectTable) allocBatch(dst []entryRef, max int, global uint64) ([]entryRef, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(dst) < max && len(t.fresh) > 0 {
		// Never-visible returns need no ripeness wait and no generation
		// bump (no reference was minted since their last bump).
		e := t.fresh[len(t.fresh)-1]
		t.fresh = t.fresh[:len(t.fresh)-1]
		dst = append(dst, e)
	}
	for len(dst) < max && t.freeHead < len(t.free) {
		fe := t.free[t.freeHead]
		if fe.epoch+2 > global {
			break // FIFO: everything behind is younger
		}
		t.freeHead++
		// Bump the generation so stale refs to the recycled entry fail.
		atomic.AddUint32(entryGenPtr(fe.e), 1)
		dst = append(dst, fe.e)
	}
	if t.freeHead > 4096 && t.freeHead*2 > len(t.free) {
		t.free = append([]freedEntry(nil), t.free[t.freeHead:]...)
		t.freeHead = 0
	}
	for len(dst) < max {
		if t.remain == 0 {
			r, err := t.alloc.Alloc(entryChunkBytes, 64)
			if err != nil {
				return dst, err
			}
			t.chunks = append(t.chunks, r)
			t.bump = r.Base()
			t.remain = entryChunkBytes / entrySize
		}
		dst = append(dst, t.bump)
		t.bump = unsafe.Add(t.bump, entrySize)
		t.remain--
	}
	t.liveEntries.Add(int64(len(dst)))
	return dst, nil
}

// freeBatch returns entries to the recycling queue, tagged with the epoch
// in which they were freed.
func (t *indirectTable) freeBatch(entries []entryRef, epoch uint64) {
	if len(entries) == 0 {
		return
	}
	t.mu.Lock()
	for _, e := range entries {
		t.free = append(t.free, freedEntry{e: e, epoch: epoch})
	}
	t.liveEntries.Add(-int64(len(entries)))
	t.mu.Unlock()
}

// releaseCache returns a session's cached (never-used) entries without an
// epoch delay: they were not visible to anyone. They go on the fresh
// stack — inserting at the head of the FIFO would shift the consumed
// prefix under freeHead and hand live entries out twice.
func (t *indirectTable) releaseCache(entries []entryRef) {
	if len(entries) == 0 {
		return
	}
	t.mu.Lock()
	t.fresh = append(t.fresh, entries...)
	t.liveEntries.Add(-int64(len(entries)))
	t.mu.Unlock()
}

func (t *indirectTable) release() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.chunks {
		_ = t.alloc.Free(r)
	}
	t.chunks = nil
	t.free = nil
	t.freeHead = 0
	t.fresh = nil
	t.remain = 0
}

// entryAlloc returns one entry for the session, refilling its cache from
// the table as needed.
func (s *Session) entryAlloc() (entryRef, error) {
	if len(s.entryCache) == 0 {
		var err error
		s.entryCache, err = s.mgr.table.allocBatch(s.entryCache, entryBatch, s.mgr.ep.Global())
		if err != nil {
			return nil, err
		}
	}
	e := s.entryCache[len(s.entryCache)-1]
	s.entryCache = s.entryCache[:len(s.entryCache)-1]
	return e, nil
}

// entryFree recycles one entry after a removal, tagging it with the
// current global epoch.
func (s *Session) entryFree(e entryRef) {
	s.mgr.table.freeBatch([]entryRef{e}, s.mgr.ep.Global())
}
