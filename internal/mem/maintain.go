package mem

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Background maintenance scheduler. The paper runs compaction on "a
// dedicated compaction thread" (§5); Maintainer is that thread grown
// into a production component: it watches the heap's occupancy and
// fragmentation through the manager's stats plumbing and triggers
// parallel compaction passes under configurable thresholds, so
// applications stop sprinkling ad-hoc CompactNow calls through their
// code.

// MaintainerConfig tunes the background maintenance scheduler. The zero
// value is usable: poll every 25ms, trigger once any context has two
// compactable blocks (the minimum that can form a §5.2 group), use the
// manager's configured compaction worker count.
type MaintainerConfig struct {
	// Interval is the poll period (default 25ms).
	Interval time.Duration
	// MinFragmentedBlocks is the number of compaction-candidate blocks a
	// single context must accumulate before a pass triggers (default 2 —
	// a compaction group needs at least two sources).
	MinFragmentedBlocks int
	// FragmentedFraction optionally gates passes on global fragmentation:
	// when > 0, a pass also requires candidates/total-blocks >= this
	// fraction, which keeps a large mostly-dense heap from compacting
	// over and over for a couple of sparse blocks.
	FragmentedFraction float64
	// Workers is the move-phase worker count per pass; <= 0 selects the
	// manager's configured default (Config.CompactionWorkers).
	Workers int
}

func (c MaintainerConfig) withDefaults() MaintainerConfig {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.MinFragmentedBlocks <= 0 {
		c.MinFragmentedBlocks = 2
	}
	return c
}

// Maintainer is a running background maintenance goroutine; see
// Manager.StartMaintainer.
type Maintainer struct {
	m   *Manager
	cfg MaintainerConfig
	ctx context.Context

	// state is the lifecycle guard: a Maintainer starts exactly once and
	// never restarts (restart = a fresh StartMaintainer).
	state    atomic.Int32
	done     chan struct{}
	finished chan struct{}
	stopOnce sync.Once

	// wake is the allocation-pressure wake-up: abandonAllocBlock signals
	// it (via Manager.signalAllocPressure) when a context crosses
	// MinFragmentedBlocks, so reclamation latency is bounded by the
	// abandon, not the poll interval.
	wake chan struct{}
	reg  *maintWakeReg

	ticks   atomic.Int64
	passes  atomic.Int64
	wakeups atomic.Int64
	panics  atomic.Int64
}

// Maintainer lifecycle states.
const (
	mtIdle int32 = iota
	mtRunning
	mtStopped
)

// ErrMaintainerStarted is returned by Start on a maintainer whose
// goroutine is already running.
var ErrMaintainerStarted = errors.New("mem: maintainer already started")

// ErrMaintainerStopped is returned by Start on a stopped maintainer;
// restart with a fresh StartMaintainer.
var ErrMaintainerStopped = errors.New("mem: maintainer stopped (start a new one)")

// maintWakeReg is the manager-side registration of a Maintainer's wake
// channel.
type maintWakeReg struct {
	ch chan struct{}
}

// signalAllocPressure wakes the registered Maintainer. Called from the
// allocation path only when an abandoned block itself just became a
// compaction candidate (the O(1) gate in abandonAllocBlock), so it
// fires at most once per sparse-block abandon and never on dense bulk
// loads. It deliberately does no threshold checking of its own: the
// woken maintainer re-evaluates its full shouldCompact gates
// (MinFragmentedBlocks, FragmentedFraction) before compacting, off the
// allocator's critical path, and the non-blocking send into a buffered
// channel coalesces bursts into one wake-up.
func (m *Manager) signalAllocPressure() {
	reg := m.maintWake.Load()
	if reg == nil {
		return
	}
	select {
	case reg.ch <- struct{}{}:
	default:
	}
}

// Fragmentation is a point-in-time view of how compactable the heap is.
type Fragmentation struct {
	// TotalBlocks counts live blocks across all contexts.
	TotalBlocks int
	// Fragmented counts compaction-candidate blocks (occupancy under the
	// configured threshold, unowned, not already in a group).
	Fragmented int
	// MaxContextFragmented is the largest per-context candidate count;
	// groups form within one context, so this decides whether a pass can
	// do anything at all.
	MaxContextFragmented int
}

// FragmentationSnapshot surveys every context's blocks once. It is the
// Maintainer's trigger input and a cheap observability surface (one
// atomic load per block).
func (m *Manager) FragmentationSnapshot() Fragmentation {
	var f Fragmentation
	for _, ctx := range m.Contexts() {
		n := 0
		for _, b := range ctx.SnapshotBlocks() {
			f.TotalBlocks++
			if m.isCompactionCandidate(b) {
				n++
			}
		}
		f.Fragmented += n
		if n > f.MaxContextFragmented {
			f.MaxContextFragmented = n
		}
	}
	return f
}

// StartMaintainer launches the background maintenance goroutine: every
// Interval it snapshots fragmentation, runs one parallel compaction pass
// when the thresholds say the pass can reclaim something, and drains the
// block graveyard. Between ticks it also reacts to allocation-pressure
// wake-ups (signalAllocPressure), so a context that crosses the
// candidate threshold is compacted immediately instead of waiting out
// the poll interval. Stop it with Maintainer.Stop.
func (m *Manager) StartMaintainer(cfg MaintainerConfig) *Maintainer {
	return m.StartMaintainerCtx(context.Background(), cfg)
}

// StartMaintainerCtx is StartMaintainer bound to a context: when ctx is
// canceled the maintenance goroutine shuts itself down (an in-flight
// compaction pass sees the same ctx and aborts its remaining groups),
// exactly as if Stop had been called. Stop remains safe to call and
// still blocks until the goroutine has exited.
func (m *Manager) StartMaintainerCtx(ctx context.Context, cfg MaintainerConfig) *Maintainer {
	if ctx == nil {
		ctx = context.Background()
	}
	mt := &Maintainer{
		m:        m,
		cfg:      cfg.withDefaults(),
		ctx:      ctx,
		done:     make(chan struct{}),
		finished: make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
	mt.reg = &maintWakeReg{ch: mt.wake}
	_ = mt.Start() // fresh instance: cannot fail
	return mt
}

// Start launches the maintenance goroutine. It runs at most once per
// Maintainer: a second call returns ErrMaintainerStarted, a call after
// Stop returns ErrMaintainerStopped (StartMaintainer constructs an
// already-started instance, so only those errors are observable).
func (mt *Maintainer) Start() error {
	if !mt.state.CompareAndSwap(mtIdle, mtRunning) {
		if mt.state.Load() == mtStopped {
			return ErrMaintainerStopped
		}
		return ErrMaintainerStarted
	}
	// Last registration wins when several maintainers run (tests);
	// Stop only clears its own registration.
	mt.m.maintWake.Store(mt.reg)
	go mt.loop()
	return nil
}

// Running reports whether the maintenance goroutine is live.
func (mt *Maintainer) Running() bool { return mt.state.Load() == mtRunning }

func (mt *Maintainer) loop() {
	defer func() {
		mt.state.Store(mtStopped)
		mt.m.maintWake.CompareAndSwap(mt.reg, nil)
		close(mt.finished)
	}()
	t := time.NewTicker(mt.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-mt.done:
			return
		case <-mt.ctx.Done():
			return
		case <-t.C:
			mt.ticks.Add(1)
			mt.maintain()
		case <-mt.wake:
			mt.wakeups.Add(1)
			mt.maintain()
		}
	}
}

// maintain runs one maintenance pass under the robustness contract: a
// panic anywhere in the pass (snapshot, compaction, graveyard) is
// recovered and counted, and the maintainer keeps running — background
// reclamation must outlive one poisoned pass.
func (mt *Maintainer) maintain() {
	defer func() {
		if r := recover(); r != nil {
			mt.panics.Add(1)
		}
	}()
	fault.Point(fault.PointMaintainerPass)
	// Governance first: reclassify memory pressure, keep the degradation
	// ladder engaged while it lasts, and restore pool bounds once it
	// clears — the periodic safety net behind the event-driven rebalance
	// on the budget's reclaim path.
	mt.m.governor.tick()
	if mt.shouldCompact(mt.m.FragmentationSnapshot()) {
		if _, err := mt.m.CompactNowWorkersCtx(mt.ctx, mt.cfg.Workers); err == nil {
			mt.passes.Add(1)
		}
	}
	mt.m.drainGraveyard()
}

func (mt *Maintainer) shouldCompact(f Fragmentation) bool {
	if f.MaxContextFragmented < mt.cfg.MinFragmentedBlocks {
		return false
	}
	if mt.cfg.FragmentedFraction > 0 && f.TotalBlocks > 0 &&
		float64(f.Fragmented) < mt.cfg.FragmentedFraction*float64(f.TotalBlocks) {
		return false
	}
	return true
}

// Stop shuts the maintenance goroutine down and blocks until it has
// exited (any in-flight compaction pass completes first), releasing the
// allocation-pressure wake registration so no goroutine or channel
// lingers. Idempotent, and safe on a maintainer whose context already
// shut it down.
func (mt *Maintainer) Stop() {
	mt.stopOnce.Do(func() {
		mt.m.maintWake.CompareAndSwap(mt.reg, nil)
		close(mt.done)
	})
	<-mt.finished
}

// Ticks reports how many poll intervals the maintainer has evaluated.
func (mt *Maintainer) Ticks() int64 { return mt.ticks.Load() }

// Passes reports how many compaction passes the maintainer has run.
func (mt *Maintainer) Passes() int64 { return mt.passes.Load() }

// Wakeups reports how many allocation-pressure wake-ups the maintainer
// has serviced (signals arriving while a pass runs coalesce into one).
func (mt *Maintainer) Wakeups() int64 { return mt.wakeups.Load() }

// Panics reports how many maintenance passes were recovered from a
// panic (the maintainer survives them).
func (mt *Maintainer) Panics() int64 { return mt.panics.Load() }

// StartCompactor launches a background goroutine that compacts whenever
// any context can form a group, polling at the given interval. It is the
// pre-Maintainer API, now a thin wrapper: the returned stop function is
// Maintainer.Stop (blocks until exit, safe to call more than once).
func (m *Manager) StartCompactor(interval time.Duration) (stop func()) {
	return m.StartMaintainer(MaintainerConfig{Interval: interval}).Stop
}
