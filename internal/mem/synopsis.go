package mem

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/decimal"
	"repro/internal/schema"
	"repro/internal/types"
)

// Block synopses: per-block, per-column min/max bounds that let scans
// skip whole blocks whose value range cannot intersect a query's
// predicate (classic zone maps, fitted to this codebase's lifecycle).
//
// The maintenance contract is deliberately asymmetric:
//
//   - Insert widens. Publish (and a compaction move landing in a target
//     block) folds the new row's registered column values into the
//     block's bounds with widen-only atomic CAS loops, so concurrent
//     adders never need a lock and bounds only ever grow.
//   - Remove leaves bounds untouched. A deleted row can make bounds
//     loose, never wrong: every live row still lies inside them, so
//     pruning stays sound ("stale but sound").
//   - Compaction rebuilds exactly. A compaction target starts life with
//     empty bounds and is filled exclusively by moves, each widening by
//     the moved row's actual values — so when the moving phase completes,
//     the target's bounds are the exact min/max over its rows. Fragmented
//     collections therefore get tighter bounds as the Maintainer runs.
//
// Values are compared in a per-kind int64 key space (synKey): int32/date
// widen losslessly, int64 is the identity, and decimal saturates its
// 128-bit 1e-4-unit integer into int64. Saturation is monotone
// (non-strictly order-preserving), which is all pruning needs: if a
// predicate interval and a block's key bounds are disjoint, no row in the
// block can satisfy the predicate.

// colSynopsis is one registered column's bounds on one block. Bounds are
// int64 sort keys; min > max is the empty state (no row ever published).
type colSynopsis struct {
	min atomic.Int64
	max atomic.Int64
}

func (cs *colSynopsis) reset() {
	cs.min.Store(math.MaxInt64)
	cs.max.Store(math.MinInt64)
}

// widen folds one key into the bounds (widen-only CAS loops: concurrent
// adders race benignly, the bounds converge to cover every folded key).
func (cs *colSynopsis) widen(k int64) {
	for {
		cur := cs.min.Load()
		if k >= cur || cs.min.CompareAndSwap(cur, k) {
			break
		}
	}
	for {
		cur := cs.max.Load()
		if k <= cur || cs.max.CompareAndSwap(cur, k) {
			break
		}
	}
}

// bounds loads the current bounds; ok is false for the empty state.
func (cs *colSynopsis) bounds() (lo, hi int64, ok bool) {
	lo, hi = cs.min.Load(), cs.max.Load()
	return lo, hi, lo <= hi
}

// synopsisSpec is a context's registered synopsis columns.
type synopsisSpec struct {
	fields []*schema.Field
}

// synopsisKinds lists the field kinds a synopsis can be registered on.
func synopsisKind(k schema.Kind) bool {
	switch k {
	case schema.Int32, schema.Int64, schema.Date, schema.Decimal:
		return true
	}
	return false
}

// RegisterSynopses declares min/max block synopses for the named columns
// (int32, int64, date or decimal). It must be called before the context
// allocates its first block — typically right after collection creation —
// so every block in the context's lifetime carries bounds for every
// registered column. Registering twice replaces nothing: subsequent calls
// append columns not yet registered.
func (c *Context) RegisterSynopses(names ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.blocks) > 0 {
		return fmt.Errorf("mem: %s: RegisterSynopses after blocks were allocated", c.name)
	}
	for _, name := range names {
		f, ok := c.sch.Field(name)
		if !ok {
			return fmt.Errorf("mem: %s has no field %q", c.sch.Name, name)
		}
		if !synopsisKind(f.Kind) {
			return fmt.Errorf("mem: %s.%s: synopsis unsupported for %s fields", c.sch.Name, name, f.Kind)
		}
		if c.syn == nil {
			c.syn = &synopsisSpec{}
		}
		dup := false
		for _, g := range c.syn.fields {
			if g.Index == f.Index {
				dup = true
				break
			}
		}
		if !dup {
			c.syn.fields = append(c.syn.fields, f)
		}
	}
	return nil
}

// RegisterClusterKey names one registered synopsis column as the
// context's compaction sort key. Under Config.CompactionPacking ==
// PackCluster, the compaction planner bins this context's candidate
// blocks by the column's bound ranges (key-adjacent blocks share a
// group) and the mover fills each target in key order, so rebuilt
// targets come out with tight, near-disjoint bound ranges. The synopsis
// maintenance contract is untouched: clustering only changes which rows
// land together, never what the bounds may claim. Without PackCluster
// the registration is inert. Registering again replaces the key.
func (c *Context) RegisterClusterKey(name string) error {
	f, ok := c.sch.Field(name)
	if !ok {
		return fmt.Errorf("mem: %s has no field %q", c.sch.Name, name)
	}
	slot := c.synopsisSlot(f)
	if slot < 0 {
		return fmt.Errorf("mem: %s.%s: cluster key needs a registered synopsis (RegisterSynopses first)", c.sch.Name, name)
	}
	c.clusterSlot.Store(int32(slot))
	return nil
}

// clusterKeySlot resolves the synopsis index the compaction planner
// should cluster on, or -1 when clustering is off for this context
// (packing mode not PackCluster, or no registered cluster key).
func (c *Context) clusterKeySlot() int {
	if c.mgr.cfg.CompactionPacking != PackCluster {
		return -1
	}
	return int(c.clusterSlot.Load())
}

// synopsisFootprint estimates the bytes held by per-block synopses
// across all contexts: two 8-byte bounds per registered column per
// block. It is the fourth consumer term in the governor's accounting
// (govern.go) — small next to the heap, but counted so a synopsis-heavy
// schema cannot silently eat the budget.
func (m *Manager) synopsisFootprint() int64 {
	var n int64
	for _, c := range m.Contexts() {
		if c.syn == nil {
			continue
		}
		n += int64(c.Blocks()) * int64(len(c.syn.fields)) * 16
	}
	return n
}

// synopsisSlot resolves a registered column's synopsis index, or -1.
func (c *Context) synopsisSlot(f *schema.Field) int {
	if c.syn == nil {
		return -1
	}
	for i, g := range c.syn.fields {
		if g.Index == f.Index {
			return i
		}
	}
	return -1
}

// newBlockSynopses builds the per-block bounds array for a context (nil
// when no synopses are registered).
func (c *Context) newBlockSynopses() []colSynopsis {
	if c.syn == nil {
		return nil
	}
	syn := make([]colSynopsis, len(c.syn.fields))
	for i := range syn {
		syn[i].reset()
	}
	return syn
}

// widenSynopses folds one slot's registered column values into its
// block's bounds. Called with the slot's field data fully written,
// before the slot directory publishes it: a scanner that observes the
// slot valid was preceded by the widen (the benign exception is the same
// racing-Publish window the empty-block fast path already has — a row
// published while a scan is deciding linearizes after that scan).
func (c *Context) widenSynopses(b *Block, slot int) {
	if b.syn == nil {
		return
	}
	for i, f := range c.syn.fields {
		b.syn[i].widen(synKey(b, slot, f))
	}
}

// synKey reads a slot's field and maps it into the synopsis key space.
func synKey(b *Block, slot int, f *schema.Field) int64 {
	p := b.FieldPtr(slot, f)
	switch f.Kind {
	case schema.Int32, schema.Date:
		return int64(*(*int32)(p))
	case schema.Int64:
		return *(*int64)(p)
	case schema.Decimal:
		return decimalKey(*(*decimal.Dec128)(p))
	}
	panic("mem: synKey on unsupported kind")
}

// decimalKey saturates a 128-bit 1e-4-unit decimal into an int64 sort
// key. The map is monotone non-decreasing over the decimal order, which
// keeps interval pruning sound; TPC-H-scale values (|v| < ~9.2e14) are
// represented exactly.
func decimalKey(d decimal.Dec128) int64 {
	if d.Hi == int64(d.Lo)>>63 {
		return int64(d.Lo)
	}
	if d.Hi < 0 {
		return math.MinInt64
	}
	return math.MaxInt64
}

// ScanPredicate is a conjunction of per-column interval constraints over
// a context's registered synopsis columns, evaluated once per block
// during scan resolution. Pruning is an optimization, never a semantics
// change: queries keep evaluating their full residual predicate per row,
// the synopsis check only removes blocks that provably hold no matching
// row. Build one with Context.Predicate and the *Range methods; a nil
// predicate (or one with no constraints) matches every block.
//
// All intervals are inclusive on both ends; encode one-sided constraints
// with math.MinInt64 / math.MaxInt64 (or the Date/Decimal extremes).
type ScanPredicate struct {
	ctx  *Context
	cons []predCon
}

type predCon struct {
	slot   int   // index into Block.syn
	lo, hi int64 // inclusive key-space interval
	// ks refines the interval with a sorted-range key set (cross-edge
	// semi-join pruning): the block is admitted only when some key-set
	// range intersects its bounds, not merely the envelope [lo, hi].
	ks *KeySetPredicate
}

// KeySetPredicate is a set of int64 synopsis keys distilled from an
// earlier pipeline stage (e.g. the order keys surviving a date cut),
// stored as sorted disjoint inclusive ranges with adjacent keys
// coalesced. Attached to a ScanPredicate via InKeySet, it prunes the
// next stage's blocks across a reference edge: a block whose key-column
// bounds contain no surviving range provably holds no row that can join,
// so the coordinator never claims it. Like every synopsis check it is
// sound, never exact — kernels keep evaluating the real join per row.
//
// The structure is immutable after construction and safe for concurrent
// use by any number of scans.
type KeySetPredicate struct {
	lo, hi []int64 // parallel slices of inclusive range bounds
	keys   int     // distinct keys folded in
}

// NewKeySetPredicate builds a key-set predicate from the (unsorted,
// possibly duplicated) keys of a completed stage. An empty key set is
// valid and matches no block — the stage it came from produced nothing,
// so the next stage has nothing to find.
func NewKeySetPredicate(keys []int64) *KeySetPredicate {
	ks := &KeySetPredicate{}
	if len(keys) == 0 {
		return ks
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, k := range sorted {
		if i > 0 && k == sorted[i-1] {
			continue
		}
		ks.keys++
		if n := len(ks.hi); n > 0 && k == ks.hi[n-1]+1 {
			ks.hi[n-1] = k // extend the open range over the adjacent key
			continue
		}
		ks.lo = append(ks.lo, k)
		ks.hi = append(ks.hi, k)
	}
	return ks
}

// Empty reports whether the set holds no keys (matches no block).
func (ks *KeySetPredicate) Empty() bool { return len(ks.lo) == 0 }

// Keys returns the number of distinct keys in the set.
func (ks *KeySetPredicate) Keys() int { return ks.keys }

// Ranges returns the number of coalesced ranges the set stores.
func (ks *KeySetPredicate) Ranges() int { return len(ks.lo) }

// Overlaps reports whether any range intersects [lo, hi]. O(log ranges):
// binary-search the first range ending at or after lo, then check it
// starts at or before hi.
func (ks *KeySetPredicate) Overlaps(lo, hi int64) bool {
	i := sort.Search(len(ks.hi), func(i int) bool { return ks.hi[i] >= lo })
	return i < len(ks.lo) && ks.lo[i] <= hi
}

// Contains reports whether k is in the set.
func (ks *KeySetPredicate) Contains(k int64) bool { return ks.Overlaps(k, k) }

// Predicate starts a scan predicate over this context's registered
// synopsis columns.
func (c *Context) Predicate() *ScanPredicate {
	return &ScanPredicate{ctx: c}
}

// addCon appends one interval constraint; the column must be registered
// (panicking otherwise matches the MustField idiom compiled query setup
// code already uses — predicates are built once at query start).
func (p *ScanPredicate) addCon(name string, lo, hi int64) *ScanPredicate {
	f := p.ctx.sch.MustField(name)
	slot := p.ctx.synopsisSlot(f)
	if slot < 0 {
		panic(fmt.Sprintf("mem: %s.%s has no registered synopsis", p.ctx.sch.Name, name))
	}
	p.cons = append(p.cons, predCon{slot: slot, lo: lo, hi: hi})
	return p
}

// Int64Range constrains an int64 column to [lo, hi].
func (p *ScanPredicate) Int64Range(name string, lo, hi int64) *ScanPredicate {
	return p.addCon(name, lo, hi)
}

// Int32Range constrains an int32 column to [lo, hi].
func (p *ScanPredicate) Int32Range(name string, lo, hi int32) *ScanPredicate {
	return p.addCon(name, int64(lo), int64(hi))
}

// DateRange constrains a date column to [lo, hi].
func (p *ScanPredicate) DateRange(name string, lo, hi types.Date) *ScanPredicate {
	return p.addCon(name, int64(lo), int64(hi))
}

// DecimalRange constrains a decimal column to [lo, hi]. The bounds pass
// through the same monotone key map as stored values, so saturated
// extremes stay sound.
func (p *ScanPredicate) DecimalRange(name string, lo, hi decimal.Dec128) *ScanPredicate {
	return p.addCon(name, decimalKey(lo), decimalKey(hi))
}

// InKeySet constrains an int64/int32/date column to a key set distilled
// from an earlier pipeline stage (cross-edge semi-join pruning; see
// KeySetPredicate). The interval envelope [first, last] is checked
// first, then the set's ranges. An empty set matches no block: the
// producing stage found nothing, so neither can this one.
func (p *ScanPredicate) InKeySet(name string, ks *KeySetPredicate) *ScanPredicate {
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64) // empty envelope
	if !ks.Empty() {
		lo, hi = ks.lo[0], ks.hi[len(ks.hi)-1]
	}
	p.addCon(name, lo, hi)
	p.cons[len(p.cons)-1].ks = ks
	return p
}

// matchBlock reports whether the block's synopsis bounds can intersect
// every constraint, and — for the pruning counters — whether the
// decision involved a key-set constraint: on a false return, keySet
// means the failing constraint carried one; on true, it means at least
// one key-set constraint was checked (and overlapped). Blocks with
// empty bounds (no row ever published) never match a constrained
// predicate — the same bag-semantics window as the validCount==0 fast
// path.
func (p *ScanPredicate) matchBlock(b *Block) (ok, keySet bool) {
	if p == nil || len(p.cons) == 0 {
		return true, false
	}
	if b.syn == nil {
		return true, false // context predates registration (cannot happen; stay sound)
	}
	hadKeySet := false
	for i := range p.cons {
		cn := &p.cons[i]
		lo, hi, ok := b.syn[cn.slot].bounds()
		if !ok || hi < cn.lo || lo > cn.hi {
			return false, cn.ks != nil
		}
		if cn.ks != nil {
			if !cn.ks.Overlaps(lo, hi) {
				return false, true
			}
			hadKeySet = true
		}
	}
	return true, hadKeySet
}

// admitBlock is the shared scan-side gate: the empty-block fast path
// plus the synopsis check, with pruning counters maintained only for
// constrained scans (unpredicated scans pay one nil check). Key-set
// pruning keeps its own pair: KeySetPruned counts prunes attributable
// to a key-set constraint (a subset of BlocksPruned), SynopsisOverlap
// counts admitted blocks a key-set constraint overlapped — the residual
// scan work the key set could not remove.
func (p *ScanPredicate) admitBlock(b *Block) bool {
	if b.validCount.Load() == 0 {
		return false
	}
	if p == nil || len(p.cons) == 0 {
		return true
	}
	ok, keySet := p.matchBlock(b)
	if !ok {
		p.ctx.mgr.stats.BlocksPruned.Add(1)
		if keySet {
			p.ctx.mgr.stats.KeySetPruned.Add(1)
		}
		return false
	}
	p.ctx.mgr.stats.BlocksScanned.Add(1)
	if keySet {
		p.ctx.mgr.stats.SynopsisOverlap.Add(1)
	}
	return true
}

// SynopsisBounds exposes a block's bounds for a registered column
// (diagnostics and tests); ok is false when the column is unregistered
// or the bounds are empty.
func (b *Block) SynopsisBounds(name string) (lo, hi int64, ok bool) {
	f, found := b.ctx.sch.Field(name)
	if !found || b.syn == nil {
		return 0, 0, false
	}
	slot := b.ctx.synopsisSlot(f)
	if slot < 0 {
		return 0, 0, false
	}
	return b.syn[slot].bounds()
}
