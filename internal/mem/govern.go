package mem

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Adaptive memory governance. The process has four memory consumers —
// the block heap (Budget), every registered arena pool's retained idle
// set, the parked worker-session pool (whose sessions pin allocation
// blocks against compaction), and the per-block synopses — and one byte
// budget. A static split between them loses as soon as the workload
// shifts, so the Governor rebalances instead: it accounts all four
// against the one limit and, under rising pressure, walks a degradation
// ladder that gives bytes back before any admission fails:
//
//  1. Shrink arena-pool retention: every registered pool's retain bound
//     is lowered (half at Tight, zero at Critical) and already-parked
//     arenas are trimmed immediately.
//  2. Trim the idle session pool: parked sessions are closed, which
//     abandons their allocation blocks — turning pinned slack into
//     compaction candidates.
//  3. Wake the Maintainer for a compaction-for-reclamation pass.
//  4. Queue admissions (Budget.Admit) with pressure-derived bounded
//     waits instead of the flat default.
//  5. Only when all of that cannot bring the governed total under the
//     limit does an admission fail with the typed ErrBudgetExceeded.
//
// When pressure clears the ladder unwinds: bounds are restored to their
// registered bases and the pools refill on demand. Every transition is
// observable — the pressure level (Healthy/Tight/Critical) and the
// per-consumer byte accounting surface through Snapshot into
// core.RuntimeStats, and the serve layer derives Retry-After from the
// governor's measured reclaim rate.
//
// The session pool's pinned bytes are reported but not added to the
// governed total: its allocation blocks are already charged to the
// block-heap Budget, and double counting would manufacture pressure.

// PressureLevel classifies how close the governed total is to the
// limit: Healthy below governTightFrac, Tight from there, Critical from
// governCriticalFrac. An unlimited budget is always Healthy.
type PressureLevel int32

// Pressure levels, in escalation order.
const (
	Healthy PressureLevel = iota
	Tight
	Critical
)

// String names the level for /stats and test labels.
func (l PressureLevel) String() string {
	switch l {
	case Healthy:
		return "healthy"
	case Tight:
		return "tight"
	case Critical:
		return "critical"
	}
	return "unknown"
}

const (
	// governTightFrac / governCriticalFrac are the governed-total
	// fractions of the limit at which pressure escalates.
	governTightFrac    = 0.75
	governCriticalFrac = 0.90

	// governTightSessions is how many parked sessions survive a Tight
	// trim (Critical drains the pool entirely).
	governTightSessions = maxPooledSessions / 4

	// Retry-After clamps: the deficit/reclaim-rate estimate is advisory,
	// so it must never tell a client "now" while over budget nor banish
	// it for minutes.
	minRetryAfter = 1 * time.Second
	maxRetryAfter = 30 * time.Second

	// governRateSample is the minimum interval between reclaim-rate
	// samples folded into the EWMA.
	governRateSample = 50 * time.Millisecond
)

// GovernedPool is the surface an arena pool exposes to the governor
// (region.ArenaPool implements it; the interface keeps mem free of a
// region dependency).
type GovernedPool interface {
	// RetainedBytes reports the idle footprint currently parked.
	RetainedBytes() int64
	// RetainBound reports the current retained-footprint bound.
	RetainBound() int64
	// SetRetainBound replaces the bound (gates future returns).
	SetRetainBound(int64)
	// TrimTo releases parked arenas down to target bytes, returning the
	// bytes freed.
	TrimTo(target int64) int64
}

// governedPool is one registered pool plus the base bound restored when
// pressure clears.
type governedPool struct {
	name string
	pool GovernedPool
	base int64
}

// Governor is a Manager's adaptive memory-governance control loop; see
// the package-level comment above. Always non-nil (Manager.Governor);
// with an unlimited budget it is a passive accountant.
type Governor struct {
	m *Manager

	mu    sync.Mutex
	pools []governedPool

	level    atomic.Int32 // PressureLevel last published
	degraded atomic.Bool  // ladder engaged; bounds below base
	inflight atomic.Bool  // single-flight rebalance gate

	// Reclaim-rate estimator: lifetime bytes given back (budget releases
	// plus governor arena trims), sampled into an EWMA of bytes/second.
	released   atomic.Int64
	rateMu     sync.Mutex
	rateNanos  int64
	rateBase   int64
	rateBytesS float64

	rebalances     atomic.Int64
	rebalanceFails atomic.Int64
	restores       atomic.Int64
	transitions    atomic.Int64
	arenaFreed     atomic.Int64
	sessTrimmed    atomic.Int64
}

func newGovernor(m *Manager) *Governor { return &Governor{m: m} }

// Governor returns the manager's memory governor.
func (m *Manager) Governor() *Governor { return m.governor }

// RegisterPool adds an arena pool to the governed set, recording its
// current retain bound as the base restored when pressure clears.
// Registration is append-only, mirroring core.RegisterArenaPool.
func (g *Governor) RegisterPool(name string, p GovernedPool) {
	g.mu.Lock()
	g.pools = append(g.pools, governedPool{name: name, pool: p, base: p.RetainBound()})
	g.mu.Unlock()
}

// snapshotPools copies the registered set.
func (g *Governor) snapshotPools() []governedPool {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]governedPool, len(g.pools))
	copy(out, g.pools)
	return out
}

// ArenaRetained sums the registered pools' parked footprints.
func (g *Governor) ArenaRetained() int64 {
	var n int64
	for _, gp := range g.snapshotPools() {
		n += gp.pool.RetainedBytes()
	}
	return n
}

// GovernedUsed is the byte total the governor holds against the limit:
// block heap + arena retention + synopses. Session-pinned blocks are
// inside the heap term already (see the package comment).
func (g *Governor) GovernedUsed() int64 {
	return g.m.budget.Used() + g.ArenaRetained() + g.m.synopsisFootprint()
}

// computeLevel classifies the current governed total.
func (g *Governor) computeLevel() PressureLevel {
	l := g.m.budget.Limit()
	if l <= 0 {
		return Healthy
	}
	u := float64(g.GovernedUsed())
	switch {
	case u >= governCriticalFrac*float64(l):
		return Critical
	case u >= governTightFrac*float64(l):
		return Tight
	}
	return Healthy
}

// refreshLevel recomputes and publishes the pressure level, counting
// transitions and firing the injection point on each.
func (g *Governor) refreshLevel() PressureLevel {
	lvl := g.computeLevel()
	if old := PressureLevel(g.level.Swap(int32(lvl))); old != lvl {
		g.transitions.Add(1)
		fault.Point(fault.PointGovernPressure)
	}
	return lvl
}

// Level recomputes and returns the current pressure level.
func (g *Governor) Level() PressureLevel { return g.refreshLevel() }

// noteReleased feeds the reclaim-rate estimator; Budget.release and the
// governor's own arena trims call it.
func (g *Governor) noteReleased(n int64) { g.released.Add(n) }

// reclaimRate returns the EWMA bytes/second the system has been giving
// back, folding in a fresh sample when enough time has passed.
func (g *Governor) reclaimRate() float64 {
	now := time.Now().UnixNano()
	total := g.released.Load()
	g.rateMu.Lock()
	defer g.rateMu.Unlock()
	if g.rateNanos == 0 {
		g.rateNanos, g.rateBase = now, total
		return g.rateBytesS
	}
	if dt := now - g.rateNanos; dt >= int64(governRateSample) {
		inst := float64(total-g.rateBase) / (float64(dt) / float64(time.Second))
		g.rateBytesS = 0.5*g.rateBytesS + 0.5*inst
		g.rateNanos, g.rateBase = now, total
	}
	return g.rateBytesS
}

// RetryAfter derives a client backoff from the governed deficit and the
// measured reclaim rate, clamped to [minRetryAfter, maxRetryAfter]: a
// deficit the system is draining fast earns a short retry, a stalled
// reclaim path earns the max.
func (g *Governor) RetryAfter() time.Duration {
	l := g.m.budget.Limit()
	if l <= 0 {
		return minRetryAfter
	}
	deficit := g.GovernedUsed() - l
	if deficit <= 0 {
		return minRetryAfter
	}
	rate := g.reclaimRate()
	if rate <= 0 {
		return maxRetryAfter
	}
	d := time.Duration(float64(deficit) / rate * float64(time.Second))
	return min(max(d, minRetryAfter), maxRetryAfter)
}

// AdmitWait is the pressure-derived bound on how long one admission may
// queue before failing typed: the flat default while Healthy, stretched
// under pressure so admissions queue through a reclamation cycle instead
// of failing into a retry storm.
func (g *Governor) AdmitWait() time.Duration {
	switch PressureLevel(g.level.Load()) {
	case Critical:
		return 4 * budgetAdmitWait
	case Tight:
		return 2 * budgetAdmitWait
	}
	return budgetAdmitWait
}

// Rebalance runs one ladder pass: reclassify pressure, shrink or
// restore the governed consumers accordingly, and wake the Maintainer.
// Single-flight (concurrent callers return immediately) and cheap when
// Healthy and not degraded, so the budget's reclaim path can call it on
// every pressure event. The fault.PointGovernRebalance Err rule aborts
// the pass before it touches any consumer — counted, retried on the
// next pressure signal, never inconsistent.
func (g *Governor) Rebalance() error { return g.rebalance() }

func (g *Governor) rebalance() error {
	if !g.inflight.CompareAndSwap(false, true) {
		return nil
	}
	defer g.inflight.Store(false)
	if err := fault.Check(fault.PointGovernRebalance); err != nil {
		g.rebalanceFails.Add(1)
		return err
	}
	lvl := g.refreshLevel()
	g.rebalances.Add(1)
	var freed int64
	var trimmed int
	switch lvl {
	case Healthy:
		if g.degraded.CompareAndSwap(true, false) {
			for _, gp := range g.snapshotPools() {
				gp.pool.SetRetainBound(gp.base)
			}
			g.restores.Add(1)
		}
		return nil
	case Tight:
		freed = g.shrinkPools(2)
		trimmed = g.m.TrimSessionPool(governTightSessions)
	case Critical:
		freed = g.shrinkPools(0)
		trimmed = g.m.TrimSessionPool(0)
	}
	g.sessTrimmed.Add(int64(trimmed))
	g.degraded.Store(true)
	// Wake the Maintainer only when this pass actually gave something
	// back (trimmed sessions abandon blocks — new compaction candidates).
	// An unconditional wake here would self-perpetuate: the woken
	// maintainer's tick rebalances, which would wake it again, spinning
	// the maintenance loop for as long as pressure lasts.
	if freed > 0 || trimmed > 0 {
		g.m.signalAllocPressure()
	}
	if freed > 0 {
		g.arenaFreed.Add(freed)
		g.noteReleased(freed)
		// The governed total just dropped without a budget release;
		// admission waiters must re-check against the new total.
		g.m.budget.broadcast()
	}
	return nil
}

// shrinkPools lowers every pool's retain bound to base/div (0 for
// div==0) and trims parked arenas down to it, returning bytes freed.
func (g *Governor) shrinkPools(div int64) int64 {
	var freed int64
	for _, gp := range g.snapshotPools() {
		target := int64(0)
		if div > 0 {
			target = gp.base / div
		}
		gp.pool.SetRetainBound(target)
		freed += gp.pool.TrimTo(target)
	}
	return freed
}

// tick is the Maintainer's periodic governance hook: reclassify, keep
// the ladder engaged while pressure lasts, and unwind it (restore pool
// bounds) once pressure clears — including after the limit itself was
// raised or removed.
func (g *Governor) tick() {
	if g.m.budget.Limit() <= 0 {
		if g.degraded.Load() {
			_ = g.rebalance()
		}
		return
	}
	if g.refreshLevel() != Healthy || g.degraded.Load() {
		_ = g.rebalance()
	}
}

// GovernorSnapshot is a point-in-time view of the governed accounting,
// surfaced through core.RuntimeStats (the /stats Governor section).
type GovernorSnapshot struct {
	// Level is the pressure level ("healthy", "tight", "critical").
	Level string
	// Limit is the byte budget (0 = unlimited); GovernedUsed the total
	// held against it, split into the per-consumer terms below.
	Limit, GovernedUsed int64
	// HeapUsed is the block-heap reservation; ArenaRetained the parked
	// arena footprint across registered pools; SynopsisBytes the
	// per-block bounds estimate.
	HeapUsed, ArenaRetained, SynopsisBytes int64
	// PooledSessions / SessionPinnedBytes describe the idle session
	// pool: sessions parked, and the allocation-block bytes they pin
	// against compaction (reported, not double counted — those bytes are
	// inside HeapUsed).
	PooledSessions, SessionPinnedBytes int64
	// Ladder activity: rebalance passes run, passes aborted by fault
	// injection, restores after pressure cleared, observed level
	// transitions, arena bytes trimmed, and sessions closed by trims.
	Rebalances, RebalanceFails, Restores int64
	Transitions                          int64
	ArenaBytesFreed, SessionsTrimmed     int64
	// ReclaimBytesPerSec is the measured reclaim-rate EWMA behind
	// Retry-After.
	ReclaimBytesPerSec float64
}

// Snapshot captures the governor's accounting and counters, refreshing
// the pressure level as a side effect.
func (g *Governor) Snapshot() GovernorSnapshot {
	heap := g.m.budget.Used()
	arena := g.ArenaRetained()
	syn := g.m.synopsisFootprint()
	sessions, pinned := g.m.sessionPoolFootprint()
	return GovernorSnapshot{
		Level:              g.refreshLevel().String(),
		Limit:              g.m.budget.Limit(),
		GovernedUsed:       heap + arena + syn,
		HeapUsed:           heap,
		ArenaRetained:      arena,
		SynopsisBytes:      syn,
		PooledSessions:     int64(sessions),
		SessionPinnedBytes: pinned,
		Rebalances:         g.rebalances.Load(),
		RebalanceFails:     g.rebalanceFails.Load(),
		Restores:           g.restores.Load(),
		Transitions:        g.transitions.Load(),
		ArenaBytesFreed:    g.arenaFreed.Load(),
		SessionsTrimmed:    g.sessTrimmed.Load(),
		ReclaimBytesPerSec: g.reclaimRate(),
	}
}
