package mem

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/schema"
	"repro/internal/types"
)

// Obj locates a live object. Row-layout objects are identified by their
// slot-data pointer (Ptr); Blk/Slot may be nil/0 when the object came
// from a fast-path dereference, which never needs them. Columnar objects
// carry Blk and Slot with Ptr nil.
type Obj struct {
	Blk  *Block
	Slot int
	Ptr  unsafe.Pointer
}

// Field returns the address of a field of the object under its layout.
// This is the accessor compiled queries use on join results; for row
// layouts it is a single pointer addition.
func (o Obj) Field(f *schema.Field) unsafe.Pointer {
	if o.Ptr != nil {
		return unsafe.Add(o.Ptr, f.Offset)
	}
	return o.Blk.FieldPtr(o.Slot, f)
}

// flagAction is the outcome of coordinating with an in-flight relocation.
type flagAction uint8

const (
	actProceed flagAction = iota // current location is safe to use
	actRetry                     // re-resolve the object's location
	actChase                     // forwarding tombstone: caller follows it
)

// Deref resolves a reference to its object, enforcing the paper's
// type-safety contract: the result is the exact object the reference was
// assigned, or ErrNullReference if it has been removed (§2). It must be
// called inside a critical section; the returned location stays valid
// until the session leaves (or refreshes) the section (§3.4).
//
// The implementation follows the dereference_object listing of §5.1: a
// clean incarnation match is the fast path; a frozen incarnation engages
// the three-case relocation protocol — freezing epoch (proceed), waiting
// phase (bail the relocation out, then proceed), moving phase (help move,
// then re-resolve).
func (c *Context) Deref(s *Session, ref types.Ref) (Obj, error) {
	if !s.InCritical() {
		panic("mem: Deref outside critical section")
	}
	if ref.IsNil() {
		return Obj{}, ErrNullReference
	}
	e := entryRef(ref.Entry)
	if loadGen(e) != ref.Gen {
		return Obj{}, ErrNullReference
	}
	// Validate the incarnation against the entry before chasing the
	// payload: a stale reference may name an address inside a block that
	// has already been unmapped. In indirect layouts the entry word is
	// authoritative; in direct mode it is a mirror maintained by Remove,
	// and the slot header is re-checked below.
	w := loadInc(e)
	if w&IncMask != ref.Inc {
		return Obj{}, ErrNullReference
	}
	// Fast path: clean incarnation match. The payload loaded after the
	// check is either the current location or — if a relocation races —
	// the pre-move location, whose bytes stay intact and mapped for the
	// rest of this grace period (§5.1 case a reasoning). No block/slot
	// resolution is needed for row layouts.
	if w == ref.Inc {
		payload := loadPayload(e)
		switch c.layout {
		case Columnar:
			blk := c.mgr.blockByID(uint32(payload >> 32))
			if blk == nil {
				return Obj{}, ErrNullReference
			}
			return Obj{Blk: blk, Slot: int(uint32(payload))}, nil
		case RowDirect:
			p := payloadAddr(payload)
			if atomic.LoadUint32((*uint32)(unsafe.Add(p, -8))) == ref.Inc {
				return Obj{Ptr: p}, nil
			}
			// Slot header disagrees (flags or a just-removed object):
			// take the full protocol below.
		default:
			return Obj{Ptr: payloadAddr(payload)}, nil
		}
	}
	m := c.mgr
	for {
		payload := loadPayload(e)
		var blk *Block
		var slot int
		var cell *uint32
		switch c.layout {
		case Columnar:
			id, sl := unpackColumnar(payload)
			blk = m.blockByID(id)
			slot = sl
			cell = entryIncPtr(e)
		default:
			p := payloadAddr(payload)
			blk = m.blockFromAddr(p)
			if blk == nil {
				return Obj{}, ErrNullReference
			}
			slot = blk.slotIndexFromData(p)
			if c.layout == RowDirect {
				cell = blk.slotHeaderPtr(slot)
			} else {
				cell = entryIncPtr(e)
			}
		}
		if blk == nil {
			return Obj{}, ErrNullReference
		}
		w := atomic.LoadUint32(cell)
		if w&IncMask != ref.Inc {
			return Obj{}, ErrNullReference
		}
		if w == ref.Inc {
			// Fast path: matching incarnation, no flags ("the
			// incarnation number comparison that we have to do anyway
			// is enough to cover the most common path", §5.1).
			return Obj{Blk: blk, Slot: slot, Ptr: c.objPtr(blk, slot)}, nil
		}
		switch c.resolveForRead(s, blk, slot, cell, w) {
		case actProceed:
			return Obj{Blk: blk, Slot: slot, Ptr: c.objPtr(blk, slot)}, nil
		case actRetry, actChase:
			// actChase only arises for slot-header words (direct mode):
			// the entry payload already names the new location, so a
			// plain retry resolves it.
			continue
		}
	}
}

// DerefDirect resolves a direct in-object pointer field into this
// (target) context: addr is the stored slot-data address and inc the
// stored incarnation (§6). On success it returns the current slot-data
// address; if the object was relocated, the result differs from addr and
// the caller should write it back to the field ("the query also updates
// the direct pointer to the object's new memory location").
func (c *Context) DerefDirect(s *Session, addr unsafe.Pointer, inc uint32) (unsafe.Pointer, error) {
	if !s.InCritical() {
		panic("mem: DerefDirect outside critical section")
	}
	if addr == nil {
		return nil, ErrNullReference
	}
	// Fast path: the slot header (8 bytes before the data) matches the
	// stored incarnation with no flags. Reading it is safe even for a
	// stale pointer: blocks holding targets of direct fields are only
	// unmapped after the fix-up scan has rewritten or nulled those
	// fields and a full grace period has passed, so any address read
	// inside the current critical section is still mapped.
	if atomic.LoadUint32((*uint32)(unsafe.Add(addr, -8))) == inc {
		return addr, nil
	}
	m := c.mgr
	cur := addr
	for {
		blk := m.blockFromAddr(cur)
		if blk == nil {
			return nil, ErrNullReference
		}
		slot := blk.slotIndexFromData(cur)
		cell := blk.slotHeaderPtr(slot)
		w := atomic.LoadUint32(cell)
		if w&IncMask != inc {
			return nil, ErrNullReference
		}
		if w == inc {
			return cur, nil
		}
		switch c.resolveForRead(s, blk, slot, cell, w) {
		case actProceed:
			return cur, nil
		case actChase:
			// Tombstone: reach the object through its back-pointer and
			// indirection entry (§6, Figure 5). The tombstoned block is
			// kept alive until the fix-up scan and the grace period
			// complete, so this chase is safe.
			e := blk.backEntry(slot)
			cur = payloadAddr(loadPayload(e))
		case actRetry:
			// Re-read the same location.
		}
	}
}

// resolveForRead coordinates a *reader* with an in-flight compaction
// (§5.1's dereference cases).
func (c *Context) resolveForRead(s *Session, blk *Block, slot int, cell *uint32, w uint32) flagAction {
	if w&FlagLock != 0 {
		// A mover holds the relocation lock; spin until it resolves
		// ("we spin until it is unset", §5.1).
		runtime.Gosched()
		return actRetry
	}
	if w&FlagFrozen != 0 {
		m := c.mgr
		if s.ep.Epoch() != m.relocEpoch.Load() {
			// Case (a): freezing epoch — no relocation this epoch.
			return actProceed
		}
		if !m.movingPhase.Load() {
			// Case (b): waiting phase — fail the relocation, proceed.
			c.bailOutRelocation(blk, slot, cell)
			return actProceed
		}
		// Case (c): moving phase — help, then re-resolve.
		c.helpRelocate(blk, slot, cell)
		return actRetry
	}
	if w&FlagForward != 0 {
		return actChase
	}
	return actRetry
}

// resolveForWrite coordinates a *mutator* (Remove) with an in-flight
// compaction. Unlike readers, a mutator cannot proceed against a frozen
// word — it must own a clean word to CAS the incarnation — so cases (a)
// and (b) both bail the relocation out first (§5.1 footnote: "this
// requires free to also use cas to increment incarnation numbers").
func (c *Context) resolveForWrite(s *Session, blk *Block, slot int, cell *uint32, w uint32) flagAction {
	if w&FlagLock != 0 {
		runtime.Gosched()
		return actRetry
	}
	if w&FlagFrozen != 0 {
		m := c.mgr
		if s.ep.Epoch() == m.relocEpoch.Load() && m.movingPhase.Load() {
			c.helpRelocate(blk, slot, cell)
		} else {
			c.bailOutRelocation(blk, slot, cell)
		}
		return actRetry
	}
	if w&FlagForward != 0 {
		return actChase
	}
	return actRetry
}
