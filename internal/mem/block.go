package mem

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/offheap"
	"repro/internal/schema"
)

// Slot directory states (§3.2): each slot is free (never used), valid
// (holds object data), or limbo (freed, awaiting reclamation). Retired is
// this implementation's overflow state: a slot whose incarnation counter
// reached MaxInc is never reused (§3.1 handles overflow by taking slots
// out of circulation until a background scan clears stale references; we
// retire them permanently and account for them in tests).
const (
	slotFree uint32 = iota
	slotValid
	slotLimbo
	slotRetired

	slotStateMask uint32 = 3
	slotEpochBits        = 30
	slotEpochMask uint32 = 1<<slotEpochBits - 1
)

// packSlotDir packs a state and a removal epoch into a 32-bit slot
// directory entry ("the state of each slot and further state-related
// information (for a total of 32 bits)", §3.2).
func packSlotDir(state uint32, epoch uint64) uint32 {
	return state | uint32(epoch&uint64(slotEpochMask))<<2
}

func slotDirState(w uint32) uint32 { return w & slotStateMask }
func slotDirEpoch(w uint32) uint32 { return w >> 2 }

// slotEpochRipe reports whether a 30-bit truncated removal epoch is at
// least two epochs old relative to the global epoch, using wraparound-
// safe sequence arithmetic (the real epoch distance is always far below
// 2^29 in any live system).
func slotEpochRipe(removal30 uint32, global uint64) bool {
	delta := (uint32(global) - removal30) & slotEpochMask
	return delta >= 2 && delta < 1<<(slotEpochBits-1)
}

// Block is the Go-side descriptor of one off-heap memory block. The
// off-heap layout is:
//
//	[0,8)    block id (recovered from interior pointers by masking, §3.1)
//	[8,16)   reserved
//	[16,..)  object store (row slots or column segments)
//	         slot directory: capacity × 4 bytes
//	         back-pointers:  capacity × 8 bytes (§3.2)
//
// All block metadata that queries do not touch per-object lives here on
// the Go side; off-heap memory never holds Go pointers.
type Block struct {
	id  uint32
	ctx *Context

	base     unsafe.Pointer
	data     unsafe.Pointer // object store base
	slotDir  unsafe.Pointer // slot directory base
	backPtrs unsafe.Pointer // back-pointer array base
	colOff   []uintptr      // columnar: per-field segment offsets from base

	capacity   int
	slotStride int // row layouts: header + data size
	hdrSize    int // 8 in RowDirect, else 0

	validCount atomic.Int32
	limboCount atomic.Int32

	cursor int // allocation cursor (only the owning session allocates)

	inReclaimQ atomic.Bool
	allocOwned atomic.Bool // currently some session's allocation block
	buried     atomic.Bool // emptied by compaction, awaiting release

	// syn holds the block's per-column min/max synopses, one per column
	// registered on the context (nil otherwise). Widen-only on insert,
	// stale-but-sound on remove, exact on compaction targets
	// (synopsis.go).
	syn []colSynopsis

	group    atomic.Pointer[CompactionGroup] // group emptying this block
	targetOf atomic.Pointer[CompactionGroup] // set on compaction targets
	reloc    atomic.Pointer[relocList]

	region *offheap.Region
}

// geometry computes per-block capacity and layout for a context.
type geometry struct {
	capacity   int
	slotStride int
	hdrSize    int
	dataOff    uintptr
	slotDirOff uintptr
	backOff    uintptr
	colOff     []uintptr // columnar only
}

const blockHeaderBytes = 16

func computeGeometry(blockSize int, sch *schema.Schema, layout Layout) (geometry, error) {
	var g geometry
	switch layout {
	case RowIndirect, Columnar:
		g.hdrSize = 0
	case RowDirect:
		g.hdrSize = 8
	default:
		return g, fmt.Errorf("mem: unknown layout %v", layout)
	}
	if layout == Columnar {
		// Iterate capacity downward until the column segments plus the
		// directories fit.
		var perObj uintptr
		for _, f := range sch.Fields {
			perObj += f.Kind.Size()
		}
		cap := (blockSize - blockHeaderBytes - 64) / (int(perObj) + 12)
		for cap > 0 {
			colOff, total := sch.ColumnarLayout(cap)
			need := blockHeaderBytes + int(total)
			need = (need + 3) &^ 3
			sd := need
			need += cap * 4
			need = (need + 7) &^ 7
			bp := need
			need += cap * 8
			if need <= blockSize {
				g.capacity = cap
				g.dataOff = blockHeaderBytes
				g.slotDirOff = uintptr(sd)
				g.backOff = uintptr(bp)
				g.colOff = make([]uintptr, len(colOff))
				for i, c := range colOff {
					g.colOff[i] = blockHeaderBytes + c
				}
				break
			}
			cap--
		}
		if g.capacity <= 0 {
			return g, fmt.Errorf("mem: block size %d too small for columnar %s", blockSize, sch.Name)
		}
		return g, nil
	}
	stride := g.hdrSize + int(sch.Size)
	cap := (blockSize - blockHeaderBytes - 16) / (stride + 12)
	if cap <= 0 {
		return g, fmt.Errorf("mem: block size %d too small for %s (slot %d bytes)", blockSize, sch.Name, stride)
	}
	g.capacity = cap
	g.slotStride = stride
	g.dataOff = blockHeaderBytes
	sd := blockHeaderBytes + cap*stride
	sd = (sd + 3) &^ 3
	g.slotDirOff = uintptr(sd)
	bp := sd + cap*4
	bp = (bp + 7) &^ 7
	g.backOff = uintptr(bp)
	if bp+cap*8 > blockSize {
		return g, fmt.Errorf("mem: geometry overflow for %s", sch.Name)
	}
	return g, nil
}

// newBlock allocates and registers a block for the context, charging the
// manager's memory budget (backpressuring, then failing with
// ErrBudgetExceeded when reclamation cannot make room).
func newBlock(ctx *Context) (*Block, error) {
	return newBlockBudgeted(ctx, false)
}

// newCompactionTargetBlock allocates a block for a compaction group's
// target, force-charging the budget: the target is the reclamation
// vehicle itself (it frees at least two source blocks), so refusing it
// under pressure would deadlock the budget against its own remedy.
func newCompactionTargetBlock(ctx *Context) (*Block, error) {
	return newBlockBudgeted(ctx, true)
}

func newBlockBudgeted(ctx *Context, forced bool) (*Block, error) {
	m := ctx.mgr
	if err := fault.Check(fault.PointAllocBlock); err != nil {
		return nil, err
	}
	bs := int64(m.cfg.BlockSize)
	if forced {
		m.budget.forceReserve(bs)
	} else if err := m.budget.reserveBlock(bs); err != nil {
		return nil, err
	}
	r, err := m.alloc.Alloc(m.cfg.BlockSize, m.cfg.BlockSize)
	if err != nil {
		m.budget.release(bs)
		return nil, err
	}
	g := ctx.geo
	b := &Block{
		ctx:        ctx,
		base:       r.Base(),
		data:       unsafe.Add(r.Base(), g.dataOff),
		slotDir:    unsafe.Add(r.Base(), g.slotDirOff),
		backPtrs:   unsafe.Add(r.Base(), g.backOff),
		capacity:   g.capacity,
		slotStride: g.slotStride,
		hdrSize:    g.hdrSize,
		region:     r,
		syn:        ctx.newBlockSynopses(),
	}
	if g.colOff != nil {
		b.colOff = make([]uintptr, len(g.colOff))
		for i, c := range g.colOff {
			b.colOff[i] = c
		}
	}
	m.registerBlock(b)
	*(*uint64)(b.base) = uint64(b.id)
	return b, nil
}

// ID returns the block's registry id.
func (b *Block) ID() uint32 { return b.id }

// Capacity returns the number of slots in the block.
func (b *Block) Capacity() int { return b.capacity }

// Context returns the owning memory context.
func (b *Block) Context() *Context { return b.ctx }

// Valid returns the number of valid slots.
func (b *Block) Valid() int { return int(b.validCount.Load()) }

// Limbo returns the number of limbo slots.
func (b *Block) Limbo() int { return int(b.limboCount.Load()) }

// slotDirPtr returns the address of slot i's directory entry.
func (b *Block) slotDirPtr(i int) *uint32 {
	return (*uint32)(unsafe.Add(b.slotDir, uintptr(i)*4))
}

// SlotDirWord atomically loads slot i's directory entry. Compiled query
// code iterates the directory through this ("it is fairly cheap to
// iterate over the slot directory to check for valid slots", §4).
func (b *Block) SlotDirWord(i int) uint32 {
	return atomic.LoadUint32(b.slotDirPtr(i))
}

// SlotIsValid reports whether slot i currently holds an object.
func (b *Block) SlotIsValid(i int) bool {
	return slotDirState(b.SlotDirWord(i)) == slotValid
}

func (b *Block) storeSlotDir(i int, w uint32) {
	atomic.StoreUint32(b.slotDirPtr(i), w)
}

func (b *Block) casSlotDir(i int, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(b.slotDirPtr(i), old, new)
}

// backPtrPtr returns the address of slot i's back-pointer cell.
func (b *Block) backPtrPtr(i int) *uint64 {
	return (*uint64)(unsafe.Add(b.backPtrs, uintptr(i)*8))
}

// backEntry returns the indirection entry recorded for slot i (§3.2:
// "back-pointers ... store a pointer to the object's indirection table
// entry").
func (b *Block) backEntry(i int) entryRef {
	return payloadAddr(atomic.LoadUint64(b.backPtrPtr(i)))
}

func (b *Block) setBackEntry(i int, e entryRef) {
	atomic.StoreUint64(b.backPtrPtr(i), uint64(uintptr(e)))
}

// SlotData returns the address of slot i's object data (row layouts).
func (b *Block) SlotData(i int) unsafe.Pointer {
	return unsafe.Add(b.data, uintptr(i)*uintptr(b.slotStride)+uintptr(b.hdrSize))
}

// slotHeaderPtr returns the slot's incarnation word (RowDirect only, §6).
func (b *Block) slotHeaderPtr(i int) *uint32 {
	return (*uint32)(unsafe.Add(b.data, uintptr(i)*uintptr(b.slotStride)))
}

// slotIndexFromData recovers a slot index from a slot-data address.
func (b *Block) slotIndexFromData(p unsafe.Pointer) int {
	off := uintptr(p) - uintptr(b.data) - uintptr(b.hdrSize)
	return int(off / uintptr(b.slotStride))
}

// FieldPtr returns the address of a field of slot i under the block's
// layout. Hot compiled-query code should hoist strides out of loops; this
// is the general accessor.
func (b *Block) FieldPtr(i int, f *schema.Field) unsafe.Pointer {
	if b.colOff != nil {
		return unsafe.Add(b.base, b.colOff[f.Index]+uintptr(i)*f.Kind.Size())
	}
	return unsafe.Add(b.SlotData(i), f.Offset)
}

// ColBase returns the base address of a column segment (Columnar only);
// compiled columnar queries hoist this per block (§4.1).
func (b *Block) ColBase(f *schema.Field) unsafe.Pointer {
	return unsafe.Add(b.base, b.colOff[f.Index])
}

// blockFromAddr recovers the block owning an off-heap address by masking
// the low bits and reading the block id from the header (§3.1: "We align
// the base address of all blocks to the block size to allow extracting
// the address of the block's header from the object pointer").
func (m *Manager) blockFromAddr(p unsafe.Pointer) *Block {
	base := unsafe.Add(p, -int(uintptr(p)&uintptr(m.cfg.BlockSize-1)))
	id := *(*uint64)(base)
	return m.blockByID(uint32(id))
}

// occupancy returns the valid fraction of the block.
func (b *Block) occupancy() float64 {
	return float64(b.validCount.Load()) / float64(b.capacity)
}
