package mem

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/types"
)

// clusterScatterLoad fills the harness with `blocks` blocks' worth of
// rows whose IDs are a pseudo-random permutation of 0..n-1, so every
// block's bounds span essentially the whole domain — the shape a churned
// heap degenerates to, where zone maps prune nothing. It then removes
// a seeded 40% sample (leaving every block under the default threshold)
// and releases the allocation claim so all blocks are candidates.
func clusterScatterLoad(t *testing.T, h *harness, blocks int, seed int64) map[int64]types.Ref {
	t.Helper()
	n := h.ctx.BlockCapacity() * blocks
	rng := rand.New(rand.NewSource(seed))
	refs := make(map[int64]types.Ref, n)
	for _, id := range rng.Perm(n) {
		refs[int64(id)] = h.add(t, h.s, int64(id), fmt.Sprintf("s%d", id))
	}
	h.s.allocBlocks[h.ctx.id] = nil
	for _, b := range h.ctx.SnapshotBlocks() {
		b.allocOwned.Store(false)
	}
	for _, id := range rng.Perm(n)[:n*40/100] {
		if err := h.remove(h.s, refs[int64(id)]); err != nil {
			t.Fatal(err)
		}
		delete(refs, int64(id))
	}
	return refs
}

// blockSpans returns the exact [lo,hi] ID span of every non-empty block,
// sorted by lo, asserting every row lies within its synopsis bounds.
func blockSpans(t *testing.T, h *harness) [][2]int64 {
	t.Helper()
	var spans [][2]int64
	for _, b := range h.ctx.SnapshotBlocks() {
		if b.Valid() == 0 {
			continue
		}
		slo, shi, ok := b.SynopsisBounds("ID")
		if !ok {
			t.Fatalf("block %d: %d valid rows but empty bounds", b.ID(), b.Valid())
		}
		lo, hi := int64(1)<<62, int64(-1)<<62
		for slot := 0; slot < b.Capacity(); slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			v := *(*int64)(b.FieldPtr(slot, h.idF))
			if v < slo || v > shi {
				t.Fatalf("block %d: row %d outside synopsis bounds [%d,%d]", b.ID(), v, slo, shi)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spans = append(spans, [2]int64{lo, hi})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	return spans
}

// countPruned runs a point-window predicated scan and returns how many
// blocks the synopsis pruned vs admitted.
func countPruned(t *testing.T, h *harness, lo, hi int64) (pruned, scanned int64) {
	t.Helper()
	pred := h.ctx.Predicate().Int64Range("ID", lo, hi)
	p0 := h.m.stats.BlocksPruned.Load()
	s0 := h.m.stats.BlocksScanned.Load()
	if err := h.ctx.ScanParallelPred(h.s, 2, pred, func(_ int, _ *Session, _ *Block) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return h.m.stats.BlocksPruned.Load() - p0, h.m.stats.BlocksScanned.Load() - s0
}

// TestClusterPackingRedistributes is the clustered-compaction contract
// test: from a fully scattered heap (every block's bounds span the whole
// domain) one maintenance pass under PackCluster must deal the surviving
// rows, key-sorted, across a multi-target group — rebuilt blocks come
// out as near-disjoint key slices, and a narrow window scan prunes at
// least as many blocks as size-only packing manages on the identical
// load (strictly more here: size-only rebuilds exact but arbitrary
// mixes, which stay domain-wide).
func TestClusterPackingRedistributes(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			const blocks, seed = 6, 7
			// A maintenance-aggressive threshold: the 40% removal leaves
			// blocks at 60% occupancy, which must still be rewritable or
			// the scattered blocks would sit out the pass (the scenario
			// the cluster figure's churned heaps exercise).
			mk := func(packing PackingMode) *harness {
				h := newHarness(t, layout, Config{
					BlockSize: 1 << 13, HeapBackend: true,
					CompactionPacking: packing, CompactionThreshold: 0.85,
				})
				if err := h.ctx.RegisterSynopses("ID"); err != nil {
					t.Fatal(err)
				}
				if packing == PackCluster {
					if err := h.ctx.RegisterClusterKey("ID"); err != nil {
						t.Fatal(err)
					}
				}
				return h
			}
			hc := mk(PackCluster)
			survivors := clusterScatterLoad(t, hc, blocks, seed)
			moved, err := hc.m.CompactNow()
			if err != nil {
				t.Fatal(err)
			}
			if moved == 0 {
				t.Fatal("clustered compaction moved nothing")
			}
			verifySurvivors(t, hc, survivors)

			// Redistribution produced multiple targets per group whose
			// exact spans tile the domain near-disjointly: sorted by lo,
			// each block must start past the previous block's hi (ties on
			// the boundary key are the only allowed overlap).
			spans := blockSpans(t, hc)
			if len(spans) < 2 {
				t.Fatalf("scatter heap compacted into %d blocks; need several targets", len(spans))
			}
			for i := 1; i < len(spans); i++ {
				if spans[i][0] < spans[i-1][1] {
					t.Fatalf("blocks overlap after clustered pass: [%d,%d] then [%d,%d]",
						spans[i-1][0], spans[i-1][1], spans[i][0], spans[i][1])
				}
			}

			// The same load under size-only packing: exact rebuilds, but
			// arbitrary source mixes keep every target domain-wide. The
			// clustered heap must prune at least as many blocks on the
			// identical window (monotonicity), and actually prune some.
			hs := mk(PackSize)
			clusterScatterLoad(t, hs, blocks, seed)
			if _, err := hs.m.CompactNow(); err != nil {
				t.Fatal(err)
			}
			// A ~1% window at the first quartile (not the exact median,
			// which is a quantile-slice boundary).
			n := int64(hc.ctx.BlockCapacity() * blocks)
			wlo, whi := n/4, n/4+n/100
			cp, cs := countPruned(t, hc, wlo, whi)
			sp, ss := countPruned(t, hs, wlo, whi)
			if cp == 0 {
				t.Fatalf("clustered heap pruned nothing (scanned %d)", cs)
			}
			if cp < sp {
				t.Fatalf("clustered pass prunes less than size-only: %d < %d", cp, sp)
			}
			t.Logf("cluster: %d pruned/%d scanned; size: %d pruned/%d scanned", cp, cs, sp, ss)
		})
	}
}

// TestClusterPackingSizeModeUntouched pins the fallback: PackCluster
// without a registered cluster key must behave exactly like PackSize —
// one target per group, no key sorting, no redistribution.
func TestClusterPackingSizeModeUntouched(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true, CompactionPacking: PackCluster})
	if err := h.ctx.RegisterSynopses("ID"); err != nil {
		t.Fatal(err)
	}
	// No RegisterClusterKey: clusterKeySlot() < 0 falls back to PackSize.
	survivors := churnToLowOccupancy(t, h, 4)
	moved, err := h.m.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	verifySurvivors(t, h, survivors)
}
