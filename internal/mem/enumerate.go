package mem

import (
	"context"
	"runtime"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/types"
)

// errPredWrongContext is the panic message for a ScanPredicate handed to
// a scan over a context it was not built for. One constant shared by the
// serial and parallel entry points, so tests and fault-injection matching
// see exactly one string.
const errPredWrongContext = "mem: scan predicate built for a different context"

// Enumerator walks a context's blocks in memory order (bag semantics,
// §2/§4). Compiled queries drive it block-by-block and scan each block's
// slot directory themselves; the enumerator's job is the §5.2 protocol:
// consistent interaction with concurrent compaction through group pins,
// so a query sees each object exactly once — either in the group's
// pre-relocation blocks or in its post-relocation target, never both.
//
// The session must be inside a critical section for the whole walk; call
// Refresh between blocks (NextBlock does it) so long enumerations do not
// stall epoch advancement.
type Enumerator struct {
	ctx  *Context
	sess *Session

	blocks []*Block
	i      int

	decisions map[*CompactionGroup]bool // true = pre-state (pinned)
	pinned    []*CompactionGroup
	inSnap    map[*Block]bool
	closed    bool

	// noRefresh pins the session's published epoch for the whole walk
	// instead of refreshing between blocks. The parallel-scan resolution
	// pass uses it: with the coordinator pinned at the snapshot epoch, a
	// compaction planned after the snapshot can never reach its moving
	// phase (its epoch waits cannot complete), so the one-shot block list
	// and group decisions stay authoritative for the scan's lifetime.
	noRefresh bool

	// pred prunes blocks whose synopsis bounds cannot intersect the
	// query's interval constraints (synopsis.go); nil scans everything.
	// The check runs after the §5.2 group decision, so it composes with
	// compaction: pre-state originals are pruned by their own bounds,
	// post-state targets by theirs (complete once the move finished).
	pred *ScanPredicate

	// done, when non-nil, is the walk's cancellation signal: NextBlock
	// polls it once per block (one channel poll, nil for Background-like
	// contexts, so the uncancellable oracle path costs nothing) and ends
	// the walk early, recording the cause in err.
	done  <-chan struct{}
	cause func() error
	err   error
}

// NewEnumerator snapshots the context's block order for enumeration.
func (c *Context) NewEnumerator(s *Session) *Enumerator {
	return c.NewEnumeratorPred(s, nil)
}

// NewEnumeratorPred is NewEnumerator with a scan predicate: blocks whose
// synopsis bounds cannot intersect pred are skipped beside the existing
// validCount==0 fast path. The caller keeps evaluating its full residual
// predicate per row — pruning is sound, not exact.
func (c *Context) NewEnumeratorPred(s *Session, pred *ScanPredicate) *Enumerator {
	return c.NewEnumeratorPredCtx(context.Background(), s, pred)
}

// NewEnumeratorCtx is NewEnumerator with a cancellation context; see
// NewEnumeratorPredCtx.
func (c *Context) NewEnumeratorCtx(cctx context.Context, s *Session) *Enumerator {
	return c.NewEnumeratorPredCtx(cctx, s, nil)
}

// NewEnumeratorPredCtx is NewEnumeratorPred with a cancellation context:
// the walk checks cctx once per block and ends early when it is done,
// with Err reporting the cause. A Background (or nil) context compiles to
// the exact uncancellable walk — no per-block poll.
func (c *Context) NewEnumeratorPredCtx(cctx context.Context, s *Session, pred *ScanPredicate) *Enumerator {
	if !s.InCritical() {
		panic("mem: NewEnumerator outside critical section")
	}
	if pred != nil && pred.ctx != c {
		panic(errPredWrongContext)
	}
	e := &Enumerator{ctx: c, sess: s, blocks: c.SnapshotBlocks(), pred: pred}
	if cctx != nil {
		if done := cctx.Done(); done != nil {
			e.done = done
			e.cause = func() error { return context.Cause(cctx) }
		}
	}
	return e
}

// NextBlock returns the next block to scan, or false at the end. Between
// blocks it refreshes the session's published epoch.
func (e *Enumerator) NextBlock() (*Block, bool) {
	if e.closed {
		return nil, false
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.err = e.cause()
			return nil, false
		default:
		}
	}
	if !e.noRefresh {
		// Injection point for the robustness suites ("panic at the Nth
		// block"); one atomic load when disarmed. The parallel-scan
		// resolution pass (noRefresh) is exempt so hit counts mean
		// "blocks handed to a kernel".
		fault.Point(fault.PointScanBlock)
	}
	for e.i < len(e.blocks) {
		b := e.blocks[e.i]
		e.i++
		if e.i > 1 && !e.noRefresh {
			// Re-publish our epoch between blocks unless we pinned a
			// group in its pre-state: the pin (not the epoch) is what
			// protects pinned originals, so refreshing stays safe.
			e.sess.Refresh()
		}
		if g := b.group.Load(); g != nil {
			if e.decidePre(g) {
				if !e.pred.admitBlock(b) {
					continue // pinned but empty or pruned: nothing to scan
				}
				return b, true // pre-state: scan the original
			}
			continue // post-state: objects reappear in the target
		}
		if g := b.targetOf.Load(); g != nil {
			if e.decidePre(g) {
				continue // pre-state: originals cover these objects
			}
			if !e.pred.admitBlock(b) {
				continue // empty or pruned target
			}
			return b, true // post-state: scan the target
		}
		// Empty-block fast path and synopsis pruning: a block with no
		// valid slots — or whose min/max bounds cannot intersect the scan
		// predicate — has nothing for the query; skip it before the caller
		// touches its slot directory. Under bag semantics a racing Publish
		// into such a block linearizes after this scan.
		if !e.pred.admitBlock(b) {
			continue
		}
		return b, true
	}
	return nil, false
}

// decidePre chooses, once per group, whether this enumeration observes
// the group's pre-relocation state (pinning it) or its post-relocation
// state (waiting for the move to finish). The pin/state ordering pairs
// with moveGroup: the mover declares gMoving before draining pins, so a
// successful pin taken before the declaration is always honoured.
func (e *Enumerator) decidePre(g *CompactionGroup) bool {
	if d, ok := e.decisions[g]; ok {
		return d
	}
	if e.decisions == nil {
		e.decisions = make(map[*CompactionGroup]bool)
	}
	g.pins.Add(1)
	if g.state.Load() < gMoving {
		e.decisions[g] = true
		e.pinned = append(e.pinned, g)
		return true
	}
	g.pins.Add(-1)
	// The group is moving: help perform its relocation ("the query first
	// helps performing the relocation of the compaction group and then
	// uses the compacted memory block for query processing", §5.2), then
	// observe the post-relocation content. Helping also guarantees
	// progress when the compaction thread is slow: once every scheduled
	// relocation is resolved, the post-state is complete regardless of
	// where the compactor's state machine stands.
	for g.state.Load() == gMoving {
		if e.ctx.mgr.helpGroup(g) {
			break
		}
		runtime.Gosched()
	}
	if g.state.Load() == gAborted {
		// Nothing moved; the originals remain authoritative.
		e.decisions[g] = true
		return true
	}
	e.decisions[g] = false
	// The targets may have been created after our snapshot; make sure we
	// visit each exactly once.
	if e.inSnap == nil {
		e.inSnap = make(map[*Block]bool, len(e.blocks))
		for _, b := range e.blocks {
			e.inSnap[b] = true
		}
	}
	for _, t := range g.targets {
		if !e.inSnap[t] {
			e.blocks = append(e.blocks, t)
			e.inSnap[t] = true
		}
	}
	return false
}

// Err reports why the walk ended early: the context's cancellation cause
// after a canceled walk, nil after a completed one. Callers that passed a
// cancellable context must check it after NextBlock returns false.
func (e *Enumerator) Err() error { return e.err }

// Close releases the enumeration's group pins. Always call it (defer)
// once the walk ends; the compactor times out on leaked pins but records
// an aborted group (§5.2).
func (e *Enumerator) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, g := range e.pinned {
		g.pins.Add(-1)
	}
	e.pinned = nil
}

// MakeRef constructs a reference to the valid object in (blk, slot),
// mirroring the generated enumeration code of §4: the back-pointer
// yields the indirection entry, whose current incarnation the reference
// captures.
func (c *Context) MakeRef(blk *Block, slot int) types.Ref {
	e := blk.backEntry(slot)
	var inc uint32
	if c.layout == RowDirect {
		inc = atomic.LoadUint32(blk.slotHeaderPtr(slot))
	} else {
		inc = loadInc(e)
	}
	return types.Ref{Entry: e, Inc: inc & IncMask, Gen: loadGen(e)}
}

// ForEachValid invokes fn for every valid slot of the context, handling
// enumeration order, critical sections per block and compaction pins.
// fn returning false stops the walk. This is the convenience path; hot
// compiled queries open-code the loop.
func (c *Context) ForEachValid(s *Session, fn func(b *Block, slot int) bool) {
	s.Enter()
	defer s.Exit()
	en := c.NewEnumerator(s)
	defer en.Close()
	for {
		b, ok := en.NextBlock()
		if !ok {
			return
		}
		for slot := 0; slot < b.capacity; slot++ {
			if slotDirState(b.SlotDirWord(slot)) != slotValid {
				continue
			}
			if !fn(b, slot) {
				return
			}
		}
	}
}
