package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Overflow rescue (§3.1): "We do not expect incarnation numbers to
// overflow in the lifetime of a typical application, but if overflows
// should occur, we stop reusing these memory slots until a background
// thread has scanned all manually managed objects and has set all
// invalid references to null."
//
// Retirement (the "stop reusing" half) happens inline in Remove: an
// indirection entry whose counter would overflow goes on the manager's
// retired list; in direct mode the slot's directory state becomes
// slotRetired. This file implements the background scan: null every
// stale in-object reference naming a retired resource, wait out a grace
// period so no reader still holds a pre-null copy, then restart the
// incarnation sequence and put the resource back in circulation.
//
// Go-side references held by the application need no scan: they carry
// the entry generation (types.Ref.Gen), which the rescue bumps, so stale
// application references keep failing the generation check after reuse.
// In-object references are the ones that must be nulled — the direct
// encoding (§6) carries no generation.
//
// One theoretical hole remains, shared with the paper's scheme: an Add
// that stays unpublished across the entire scan and both grace periods
// can smuggle a stale direct encoding past the scan. Exploiting it also
// requires the slot to burn through all 2^29 incarnations again before
// the next scan. The write-barrier validation in DirectWord keeps this
// the only remaining path.

// RescueStats reports one rescue pass.
type RescueStats struct {
	EntriesRescued int
	SlotsRescued   int
	RefsNulled     int
}

// RescueOverflowed runs one §3.1 background scan. It is safe to call
// concurrently with application work; it excludes compaction for its
// duration (both walk block memory) and returns without rescuing if the
// grace-period wait times out (a later call retries).
func (m *Manager) RescueOverflowed() (RescueStats, error) {
	// Compaction is excluded for the whole rescue: both walk block memory
	// and compaction is the only mechanism that unmaps blocks mid-run.
	m.compactMu.Lock()
	defer m.compactMu.Unlock()

	var st RescueStats

	cs, err := m.NewSession()
	if err != nil {
		return st, err
	}
	defer cs.Close()

	// Collect victims: retired entries (indirect/columnar removals)...
	m.retiredMu.Lock()
	entries := m.retiredEntries
	m.retiredEntries = nil
	m.retiredMu.Unlock()

	victimsByCtx := make(map[*Context]map[entryRef]bool)
	for _, re := range entries {
		set := victimsByCtx[re.ctx]
		if set == nil {
			set = make(map[entryRef]bool)
			victimsByCtx[re.ctx] = set
		}
		set[re.e] = true
	}
	// ... and retired slots (direct-mode removals), found by their
	// slot-directory state.
	type retiredSlot struct {
		blk  *Block
		slot int
	}
	slotsByCtx := make(map[*Context][]retiredSlot)
	cs.Enter()
	for _, ctx := range m.Contexts() {
		if ctx.layout != RowDirect {
			continue
		}
		for _, b := range ctx.SnapshotBlocks() {
			for i := 0; i < b.capacity; i++ {
				if slotDirState(b.SlotDirWord(i)) == slotRetired {
					slotsByCtx[ctx] = append(slotsByCtx[ctx], retiredSlot{b, i})
				}
			}
		}
	}
	cs.Exit()
	if len(victimsByCtx) == 0 && len(slotsByCtx) == 0 {
		return st, nil
	}
	m.stats.OverflowScans.Add(1)

	// nullPass walks every registered in-edge of every context that has
	// victims and nulls the stale references. Two passes bracket the
	// grace period so objects published mid-scan are covered too.
	nullPass := func() {
		cs.Enter()
		defer cs.Exit()
		for ctx, victims := range victimsByCtx {
			for _, edge := range ctx.edges() {
				if edge.direct {
					continue // indirect victims live behind entry pointers
				}
				st.RefsNulled += m.nullIndirectRefs(cs, edge, victims)
			}
		}
		for ctx := range slotsByCtx {
			for _, edge := range ctx.edges() {
				if !edge.direct {
					continue
				}
				st.RefsNulled += m.nullDirectRefs(cs, edge)
			}
		}
	}

	nullPass()
	// Grace period: every reference copy taken before the null pass has
	// been abandoned once all sessions pass two epochs.
	if !m.advanceTwo(cs, 500*time.Millisecond) {
		// A stalled session blocks the epoch; put the entry victims back
		// and retry on a later scan. Slots simply stay retired.
		m.retiredMu.Lock()
		m.retiredEntries = append(m.retiredEntries, entries...)
		m.retiredMu.Unlock()
		return RescueStats{RefsNulled: st.RefsNulled}, nil
	}
	nullPass()

	// Reuse: restart incarnation sequences and return resources to
	// circulation.
	for _, re := range entries {
		atomic.StoreUint32(entryIncPtr(re.e), 0)
		atomic.AddUint32(entryGenPtr(re.e), 1)
	}
	if len(entries) > 0 {
		refs := make([]entryRef, len(entries))
		for i, re := range entries {
			refs[i] = re.e
		}
		m.table.freeBatch(refs, m.ep.Global())
		st.EntriesRescued = len(entries)
		m.stats.EntriesRescued.Add(int64(len(entries)))
	}
	g := m.ep.Global()
	for ctx, slots := range slotsByCtx {
		for _, rs := range slots {
			atomic.StoreUint32(rs.blk.slotHeaderPtr(rs.slot), 0)
			rs.blk.storeSlotDir(rs.slot, packSlotDir(slotLimbo, g))
			rs.blk.limboCount.Add(1)
			ctx.enqueueReclaim(rs.blk)
			st.SlotsRescued++
		}
	}
	m.stats.SlotsRescued.Add(int64(st.SlotsRescued))
	m.stats.RefsNulled.Add(int64(st.RefsNulled))
	return st, nil
}

// nullIndirectRefs nulls every reference field of edge.src whose entry
// pointer names a victim entry.
func (m *Manager) nullIndirectRefs(cs *Session, edge refEdge, victims map[entryRef]bool) int {
	f := &edge.src.sch.Fields[edge.field]
	nulled := 0
	for _, sb := range edge.src.SnapshotBlocks() {
		cs.Refresh()
		for slot := 0; slot < sb.capacity; slot++ {
			if slotDirState(sb.SlotDirWord(slot)) != slotValid {
				continue
			}
			fp := sb.FieldPtr(slot, f)
			// types.Ref layout: entry pointer in the first word. Nulling
			// stores nil there first; a racing reader that already loaded
			// the old entry pointer fails the incarnation check (the
			// victim's counter sits at MaxInc, which no reference holds).
			ep := (*uint64)(fp)
			a := atomic.LoadUint64(ep)
			if a == 0 || !victims[payloadAddr(a)] {
				continue
			}
			if atomic.CompareAndSwapUint64(ep, a, 0) {
				// Clear the inc/gen words too so the field is a pristine
				// null reference.
				atomic.StoreUint64((*uint64)(unsafe.Add(fp, 8)), 0)
				nulled++
			}
		}
	}
	return nulled
}

// nullDirectRefs nulls every direct-pointer field of edge.src whose
// target slot is retired.
func (m *Manager) nullDirectRefs(cs *Session, edge refEdge) int {
	f := &edge.src.sch.Fields[edge.field]
	nulled := 0
	for _, sb := range edge.src.SnapshotBlocks() {
		cs.Refresh()
		for slot := 0; slot < sb.capacity; slot++ {
			if slotDirState(sb.SlotDirWord(slot)) != slotValid {
				continue
			}
			fp := sb.FieldPtr(slot, f)
			ap := (*uint64)(fp)
			a := atomic.LoadUint64(ap)
			if a == 0 {
				continue
			}
			tb := m.blockFromAddr(payloadAddr(a))
			if tb == nil {
				continue
			}
			ts := tb.slotIndexFromData(payloadAddr(a))
			if slotDirState(tb.SlotDirWord(ts)) != slotRetired {
				continue
			}
			// CAS so a concurrent tombstone fix-up (which rewrites the
			// address to a live location) is never overwritten.
			if atomic.CompareAndSwapUint64(ap, a, 0) {
				atomic.StoreUint64((*uint64)(unsafe.Add(fp, 8)), 0)
				nulled++
			}
		}
	}
	return nulled
}

// advanceTwo drives the global epoch two steps past the current one,
// giving up at the deadline if a session refuses to move.
func (m *Manager) advanceTwo(cs *Session, timeout time.Duration) bool {
	target := m.ep.Global() + 2
	deadline := time.Now().Add(timeout)
	for m.ep.Global() < target {
		if m.TryAdvanceEpoch() {
			continue
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// RetiredEntries reports the number of entries currently awaiting rescue.
func (m *Manager) RetiredEntries() int {
	m.retiredMu.Lock()
	defer m.retiredMu.Unlock()
	return len(m.retiredEntries)
}

// StartOverflowScanner launches the §3.1 background thread: it polls for
// retired resources and runs RescueOverflowed when any exist. The
// returned stop function blocks until the goroutine exits.
func (m *Manager) StartOverflowScanner(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if m.RetiredEntries() > 0 ||
					m.stats.SlotsRetired.Load() > m.stats.SlotsRescued.Load() {
					_, _ = m.RescueOverflowed()
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
