package mem

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// Robustness suites for the cancellation / backpressure / fault-isolation
// layer: context threading through scans and compaction, the memory
// budget's pressure protocol, and panic isolation in worker goroutines.
// The leak assertions lean on the pool counters added for exactly this:
// SessionsLeased == SessionsReturned and zero epoch pins whenever no
// scan is in flight.

// assertScanQuiesced fails the test when a finished (or canceled, or
// faulted) scan leaked a pooled session or an epoch pin.
func assertScanQuiesced(t *testing.T, h *harness) {
	t.Helper()
	st := h.m.Stats()
	if l, r := st.SessionsLeased.Load(), st.SessionsReturned.Load(); l != r {
		t.Fatalf("session pool unbalanced: %d leased, %d returned", l, r)
	}
	if n := h.m.Epoch().InCriticalSessions(); n != 0 {
		t.Fatalf("%d epoch pins leaked", n)
	}
}

// sumIDs runs a cancelable parallel scan summing the ID field, the
// byte-identical-result oracle for the stress suites.
func sumIDs(h *harness, cctx context.Context, workers int) (int64, error) {
	var total atomic.Int64
	err := h.ctx.ScanParallelCtx(cctx, h.s, workers, func(_ int, _ *Session, b *Block) error {
		var local int64
		for slot := 0; slot < b.capacity; slot++ {
			if b.SlotIsValid(slot) {
				local += *(*int64)(b.FieldPtr(slot, h.idF))
			}
		}
		total.Add(local)
		return nil
	})
	return total.Load(), err
}

func populateBlocks(t *testing.T, h *harness, blocks int) (n int, want int64) {
	t.Helper()
	n = h.ctx.BlockCapacity()*blocks + 3
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), fmt.Sprintf("s%d", i))
		want += int64(i)
	}
	return n, want
}

// TestScanCancelPreCanceled: a scan under an already-canceled context
// does no block work and reports the cancellation cause.
func TestScanCancelPreCanceled(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	populateBlocks(t, h, 4)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		visited := 0
		err := h.ctx.ScanParallelCtx(cctx, h.s, workers, func(_ int, _ *Session, b *Block) error {
			visited++
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if visited != 0 {
			t.Fatalf("workers=%d: %d blocks visited under a canceled context", workers, visited)
		}
	}
	assertScanQuiesced(t, h)
}

// TestScanCancelMidScan: cancellation raised from inside a worker kernel
// stops the fan-out within one block's work per worker, the scan returns
// the cause, and nothing leaks.
func TestScanCancelMidScan(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	populateBlocks(t, h, 8)
	for _, workers := range []int{1, 2, 4} {
		cctx, cancel := context.WithCancelCause(context.Background())
		boom := errors.New("operator hit stop")
		var visited atomic.Int64
		err := h.ctx.ScanParallelCtx(cctx, h.s, workers, func(_ int, _ *Session, b *Block) error {
			if visited.Add(1) == 2 {
				cancel(boom)
			}
			return nil
		})
		cancel(nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want cancellation cause", workers, err)
		}
		// Cancellation is observed at block-claim granularity: after the
		// canceling claim, each in-flight worker may finish at most the
		// block it already holds.
		if v := visited.Load(); v > int64(2+workers) {
			t.Fatalf("workers=%d: %d blocks visited after cancel (bound %d)", workers, v, 2+workers)
		}
		assertScanQuiesced(t, h)
	}
}

// TestSerialEnumeratorCancel: the serial enumerator observes its context
// between blocks and surfaces the cause through Err.
func TestSerialEnumeratorCancel(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	populateBlocks(t, h, 4)
	cctx, cancel := context.WithCancel(context.Background())
	h.s.Enter()
	en := h.ctx.NewEnumeratorCtx(cctx, h.s)
	if _, ok := en.NextBlock(); !ok {
		t.Fatal("first NextBlock failed on a populated context")
	}
	cancel()
	if _, ok := en.NextBlock(); ok {
		t.Fatal("NextBlock returned a block after cancellation")
	}
	if err := en.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	en.Close()
	h.s.Exit()
	if n := h.m.Epoch().InCriticalSessions(); n != 0 {
		t.Fatalf("%d epoch pins leaked", n)
	}
}

// TestScanFaultWorkerPanicIsolated: a panicking kernel must not kill the
// process — the scan unwinds every worker, converts the panic to a typed
// ErrWorkerPanic, and leaves the pool balanced; the same data then scans
// cleanly.
func TestScanFaultWorkerPanicIsolated(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	_, want := populateBlocks(t, h, 4)
	for _, workers := range []int{1, 4} {
		disarm := fault.Enable(map[string]*fault.Rule{
			fault.PointScanBlock: {At: 2, Panic: true},
		})
		_, err := sumIDs(h, context.Background(), workers)
		disarm()
		if !errors.Is(err, ErrWorkerPanic) {
			t.Fatalf("workers=%d: err = %v, want ErrWorkerPanic", workers, err)
		}
		assertScanQuiesced(t, h)
		got, err := sumIDs(h, context.Background(), workers)
		if err != nil || got != want {
			t.Fatalf("workers=%d: clean scan after fault = (%d, %v), want (%d, nil)", workers, got, err, want)
		}
	}
}

// TestScanFaultCancelStressLeakFree is the acceptance stress: 1000
// fault-injection + cancellation cycles across worker counts, asserting
// that every surviving (error-free) scan returns the identical sum and
// that the cycle storm leaks no session, arena or epoch pin.
func TestScanFaultCancelStressLeakFree(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	_, want := populateBlocks(t, h, 4)
	const cycles = 1000
	clean := 0
	for i := 0; i < cycles; i++ {
		workers := 1 + i%4
		var disarm func()
		switch i % 3 {
		case 0:
			// Panicking kernel at a varying block.
			disarm = fault.Enable(map[string]*fault.Rule{
				fault.PointScanBlock: {At: int64(1 + i%5), Panic: true},
			})
		case 1:
			// Plain cancellation mid-scan.
			disarm = func() {}
		default:
			// No injection: this cycle must produce the oracle sum.
			disarm = func() {}
		}
		cctx, cancel := context.WithCancel(context.Background())
		if i%3 == 1 {
			cancel()
		}
		got, err := sumIDs(h, cctx, workers)
		cancel()
		disarm()
		if err == nil {
			clean++
			if got != want {
				t.Fatalf("cycle %d: surviving scan sum %d, want %d", i, got, want)
			}
		}
	}
	if clean < cycles/3 {
		t.Fatalf("only %d/%d cycles survived; injection schedule broken", clean, cycles)
	}
	assertScanQuiesced(t, h)
}

// TestBudgetAllocBackpressure: a heap capped below the load's footprint
// must refuse further block allocations with the typed error once
// reclamation cannot help, counting the waits and rejects.
func TestBudgetAllocBackpressure(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:    1 << 13,
		MemoryBudget: 3 << 13, // three blocks: objects + strings + one spare
		HeapBackend:  true,
	})
	var allocErr error
	for i := 0; ; i++ {
		if i > 1<<16 {
			t.Fatal("budget never refused an allocation")
		}
		_, obj, err := h.ctx.Alloc(h.s)
		if err != nil {
			allocErr = err
			break
		}
		*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = int64(i)
		h.ctx.Publish(h.s, obj)
	}
	if !errors.Is(allocErr, ErrBudgetExceeded) {
		t.Fatalf("alloc failed with %v, want ErrBudgetExceeded", allocErr)
	}
	b := h.m.Budget()
	c := b.Counters()
	if c.AllocWaits == 0 || c.AllocRejects == 0 {
		t.Fatalf("pressure counters did not advance: %+v", c)
	}
	if c.Used > c.Limit {
		t.Fatalf("ordinary allocations exceeded the limit: used %d > limit %d", c.Used, c.Limit)
	}
	// Raising the limit unblocks allocation immediately.
	b.SetLimit(64 << 13)
	if _, obj, err := h.ctx.Alloc(h.s); err != nil {
		t.Fatalf("alloc after raising the limit: %v", err)
	} else {
		h.ctx.Publish(h.s, obj)
	}
}

// TestBudgetAdmitGate: Admit is free under the limit, honors the
// caller's cancellation and deadline over the budget wait, and fails
// with ErrBudgetExceeded after the bounded deadline-free wait.
func TestBudgetAdmitGate(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	b := h.m.Budget()
	if err := b.Admit(context.Background()); err != nil {
		t.Fatalf("unlimited Admit: %v", err)
	}
	b.SetLimit(1 << 13)
	b.forceReserve(2 << 13) // drive over the limit without real blocks

	// Pre-canceled context: the cause wins without waiting.
	cctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("caller gave up")
	cancel(boom)
	if err := b.Admit(cctx); !errors.Is(err, boom) {
		t.Fatalf("Admit(pre-canceled) = %v, want cause", err)
	}

	// Deadline: ctx expiry bounds the wait.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	start := time.Now()
	if err := b.Admit(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Admit(deadline) = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline Admit took %v", d)
	}

	// No deadline: the budget's own bound produces the typed error.
	if err := b.Admit(context.Background()); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Admit(no deadline, over limit) = %v, want ErrBudgetExceeded", err)
	}

	// A release while a waiter blocks lets the admission through
	// (overLimit is used >= limit, so drop strictly below it).
	done := make(chan error, 1)
	go func() { done <- b.Admit(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	b.release(2 << 13)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Admit after release = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("released bytes never woke the admission waiter")
	}
	c := b.Counters()
	if c.Admitted < 2 || c.Rejected < 2 {
		t.Fatalf("admission counters did not advance: %+v", c)
	}
}

// TestBudgetCompactionTargetForced: compaction targets are charged with
// forceReserve, so a pass still reclaims when the heap sits exactly at
// its limit — the budget must never starve its own remedy.
func TestBudgetCompactionTargetForced(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	// Clamp the budget to current use: an ordinary allocation would wait
	// and fail, but the pass's target block must go through.
	h.m.Budget().SetLimit(h.m.Budget().Used())
	moved, err := h.m.CompactNowWorkers(2)
	if err != nil {
		t.Fatalf("CompactNowWorkers under a clamped budget: %v", err)
	}
	if moved == 0 {
		t.Fatal("clamped budget starved the compaction pass")
	}
	verifySurvivors(t, h, survivors)
}

// TestCompactCancelAbortsUnmovedGroups: a pass canceled before its
// moving phase aborts every group cleanly — sources return to
// circulation and a later uncanceled pass compacts them.
func TestCompactCancelAbortsUnmovedGroups(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	moved, err := h.m.CompactNowWorkersCtx(cctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled pass returned %v, want context.Canceled", err)
	}
	if moved != 0 {
		t.Fatalf("canceled pass moved %d objects before its moving phase", moved)
	}
	verifySurvivors(t, h, survivors)
	moved, err = h.m.CompactNowWorkers(2)
	if err != nil || moved == 0 {
		t.Fatalf("follow-up pass = (%d, %v), want progress", moved, err)
	}
	verifySurvivors(t, h, survivors)
}

// TestCompactFaultGroupPanicScoped: a panic while moving one group is
// scoped to that group — the pass completes its cleanup, surfaces
// ErrWorkerPanic, leaves every object readable, and a repeat pass
// finishes the reclamation.
func TestCompactFaultGroupPanicScoped(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 6)
	disarm := fault.Enable(map[string]*fault.Rule{
		fault.PointCompactGroup: {At: 1, Panic: true},
	})
	_, err := h.m.CompactNowWorkers(2)
	disarm()
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("poisoned pass returned %v, want ErrWorkerPanic", err)
	}
	verifySurvivors(t, h, survivors)
	if _, err := h.m.CompactNowWorkers(2); err != nil {
		t.Fatalf("follow-up pass after fault: %v", err)
	}
	verifySurvivors(t, h, survivors)
	assertScanQuiesced(t, h)
}

// TestFaultAllocBlockError: an injected allocation error surfaces as the
// allocation's failure without wedging the context; disarming restores
// service.
func TestFaultAllocBlockError(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	populateBlocks(t, h, 1) // warm: context has its allocation block
	bang := errors.New("injected alloc failure")
	disarm := fault.Enable(map[string]*fault.Rule{
		fault.PointAllocBlock: {Err: bang},
	})
	// Fill the current allocation block until a fresh one is needed.
	var allocErr error
	for i := 0; i < h.ctx.BlockCapacity()+2; i++ {
		_, obj, err := h.ctx.Alloc(h.s)
		if err != nil {
			allocErr = err
			break
		}
		h.ctx.Publish(h.s, obj)
	}
	disarm()
	if !errors.Is(allocErr, bang) {
		t.Fatalf("alloc under injection = %v, want injected error", allocErr)
	}
	if _, obj, err := h.ctx.Alloc(h.s); err != nil {
		t.Fatalf("alloc after disarm: %v", err)
	} else {
		h.ctx.Publish(h.s, obj)
	}
}

// TestMaintainerLifecycleCancelRestart: the lifecycle guard — double
// Start errors, Stop is idempotent, a stopped maintainer refuses
// restart, a fresh StartMaintainer takes over, and context cancellation
// shuts the goroutine down like Stop.
func TestMaintainerLifecycleCancelRestart(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	if !mt.Running() {
		t.Fatal("maintainer not running after StartMaintainer")
	}
	if err := mt.Start(); !errors.Is(err, ErrMaintainerStarted) {
		t.Fatalf("second Start = %v, want ErrMaintainerStarted", err)
	}
	mt.Stop()
	mt.Stop() // idempotent
	if mt.Running() {
		t.Fatal("maintainer still running after Stop")
	}
	if err := mt.Start(); !errors.Is(err, ErrMaintainerStopped) {
		t.Fatalf("Start after Stop = %v, want ErrMaintainerStopped", err)
	}
	// Restart is a fresh instance.
	mt2 := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	if !mt2.Running() {
		t.Fatal("fresh maintainer not running after restart")
	}
	mt2.Stop()

	// Context shutdown behaves like Stop, and Stop stays safe after it.
	cctx, cancel := context.WithCancel(context.Background())
	mt3 := h.m.StartMaintainerCtx(cctx, MaintainerConfig{Interval: time.Millisecond})
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for mt3.Running() {
		if time.Now().After(deadline) {
			t.Fatal("context cancellation never stopped the maintainer")
		}
		time.Sleep(time.Millisecond)
	}
	mt3.Stop()
}

// TestMaintainerFaultPassPanicSurvives: a poisoned maintenance pass is
// recovered and counted; the maintainer keeps scheduling passes after.
func TestMaintainerFaultPassPanicSurvives(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	disarm := fault.Enable(map[string]*fault.Rule{
		fault.PointMaintainerPass: {At: 1, Panic: true},
	})
	defer disarm()
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	defer mt.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for mt.Panics() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected pass panic never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	ticksAfterPanic := mt.Ticks()
	for mt.Ticks() <= ticksAfterPanic+2 {
		if time.Now().After(deadline) {
			t.Fatal("maintainer stopped ticking after a recovered panic")
		}
		time.Sleep(time.Millisecond)
	}
	if !mt.Running() {
		t.Fatal("maintainer dead after a recovered pass panic")
	}
}
