package mem

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/offheap"
	"repro/internal/types"
)

// stringHeap stores the variable-length string data of a context's
// objects. The paper (§3.1) disallows variable-sized data in object
// slots so slot positions stay constant; strings are "considered part of
// the object; their lifetime matches that of the object" (§2). The heap
// therefore provides explicit alloc/free keyed to object reclamation.
//
// Small strings come from size-class free lists (lock-free Treiber
// stacks) refilled from per-session bump chunks; oversized strings get
// dedicated regions. Each small-string node carries an 8-byte link
// header *in front of* the payload: the link word is only ever accessed
// atomically, and payload copies never overlap it, so free-list traversal
// by a stale popper cannot race with the new owner's payload writes.
type stringHeap struct {
	mgr *Manager
	ctx *Context

	mu     sync.Mutex
	chunks []*offheap.Region
	big    map[uintptr]*offheap.Region

	// classes[i] is a packed Treiber head: address<<16 | tag.
	classes [len(strClasses)]atomic.Uint64

	liveBytes  atomic.Int64
	chunkBytes atomic.Int64
}

var strClasses = [...]int{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096}

const (
	strChunkBytes = 1 << 16 // per-session bump chunk
	strBigLimit   = 4096
	strLinkBytes  = 8 // free-list link header preceding each payload
)

// strChunk is a session's private bump allocator for one context.
type strChunk struct {
	cur    unsafe.Pointer
	remain int
}

func newStringHeap(m *Manager, c *Context) *stringHeap {
	return &stringHeap{mgr: m, ctx: c, big: make(map[uintptr]*offheap.Region)}
}

func classFor(n int) int {
	for i, c := range strClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// allocStr copies s into the heap and returns its packed reference.
func (h *stringHeap) allocStr(sess *Session, s string) (types.StrRef, error) {
	n := len(s)
	if n == 0 {
		return 0, nil
	}
	if n > types.MaxStringLen {
		return 0, errStringTooLong
	}
	var p unsafe.Pointer
	if n > strBigLimit {
		r, err := h.mgr.alloc.Alloc(n, 8)
		if err != nil {
			return 0, err
		}
		h.mu.Lock()
		h.big[uintptr(r.Base())] = r
		h.mu.Unlock()
		p = r.Base()
	} else {
		cls := classFor(n)
		node := h.popClass(cls)
		if node == nil {
			var err error
			node, err = h.bump(sess, strClasses[cls]+strLinkBytes)
			if err != nil {
				return 0, err
			}
		}
		p = unsafe.Add(node, strLinkBytes)
	}
	copy(unsafe.Slice((*byte)(p), n), s)
	h.liveBytes.Add(int64(n))
	return types.PackStrRef(uintptr(p), n), nil
}

// freeStr releases a string's storage. Callers only invoke this when the
// owning slot is reclaimed (two epochs after the object was freed), so no
// reader can still hold the bytes.
func (h *stringHeap) freeStr(sr types.StrRef) {
	n := sr.Len()
	if n == 0 {
		return
	}
	h.liveBytes.Add(-int64(n))
	if n > strBigLimit {
		h.mu.Lock()
		r, ok := h.big[sr.Addr()]
		if ok {
			delete(h.big, sr.Addr())
		}
		h.mu.Unlock()
		if ok {
			_ = h.mgr.alloc.Free(r)
		}
		return
	}
	node := unsafe.Add(types.LaunderAddr(sr.Addr()), -strLinkBytes)
	h.pushClass(classFor(n), node)
}

// popClass pops a node from the class free list.
func (h *stringHeap) popClass(cls int) unsafe.Pointer {
	head := &h.classes[cls]
	for {
		old := head.Load()
		addr := uintptr(old >> 16)
		if addr == 0 {
			return nil
		}
		node := types.LaunderAddr(addr)
		next := atomic.LoadUint64((*uint64)(node)) // packed: nextAddr<<16
		tag := (old + 1) & 0xffff
		if head.CompareAndSwap(old, next&^0xffff|tag) {
			return node
		}
	}
}

// pushClass pushes a node onto the class free list. The node's first
// eight bytes store the next link.
func (h *stringHeap) pushClass(cls int, node unsafe.Pointer) {
	head := &h.classes[cls]
	for {
		old := head.Load()
		atomic.StoreUint64((*uint64)(node), old&^0xffff)
		tag := (old + 1) & 0xffff
		if head.CompareAndSwap(old, uint64(uintptr(node))<<16|tag) {
			return
		}
	}
}

// bump carves size bytes from the session's chunk, refilling it from a
// fresh off-heap region when exhausted.
func (h *stringHeap) bump(sess *Session, size int) (unsafe.Pointer, error) {
	ch := sess.strChunks[h.ctx.id]
	if ch == nil {
		ch = &strChunk{}
		sess.strChunks[h.ctx.id] = ch
	}
	if ch.remain < size {
		r, err := h.mgr.alloc.Alloc(strChunkBytes, 8)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		h.chunks = append(h.chunks, r)
		h.mu.Unlock()
		h.chunkBytes.Add(strChunkBytes)
		ch.cur = r.Base()
		ch.remain = strChunkBytes
	}
	p := ch.cur
	ch.cur = unsafe.Add(ch.cur, size)
	ch.remain -= size
	return p, nil
}

// bytes reports the off-heap bytes the heap holds (chunks plus oversized
// regions).
func (h *stringHeap) bytes() int64 {
	h.mu.Lock()
	big := int64(0)
	for _, r := range h.big {
		big += int64(r.Size())
	}
	h.mu.Unlock()
	return h.chunkBytes.Load() + big
}

// LiveStringBytes reports the live (referenced) string payload bytes.
func (c *Context) LiveStringBytes() int64 { return c.strings.liveBytes.Load() }

func (h *stringHeap) release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.chunks {
		_ = h.mgr.alloc.Free(r)
	}
	h.chunks = nil
	for _, r := range h.big {
		_ = h.mgr.alloc.Free(r)
	}
	h.big = make(map[uintptr]*offheap.Region)
	for i := range h.classes {
		h.classes[i].Store(0)
	}
}
