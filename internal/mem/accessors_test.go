package mem

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// Accessor and helper coverage: the small exported surface that compiled
// query code and the harnesses build on.

func TestBlockAndContextAccessors(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	ref := h.add(t, h.s, 1, "x")
	_ = ref

	if h.ctx.Name() != "test" {
		t.Fatalf("Name = %q", h.ctx.Name())
	}
	if h.ctx.Layout() != RowIndirect {
		t.Fatalf("Layout = %v", h.ctx.Layout())
	}
	if h.ctx.Manager() != h.m {
		t.Fatal("Manager mismatch")
	}
	if !strings.Contains(h.ctx.String(), "test") {
		t.Fatalf("String = %q", h.ctx.String())
	}
	if h.ctx.BlockCapacity() <= 0 {
		t.Fatal("BlockCapacity not positive")
	}

	blocks := h.ctx.SnapshotBlocks()
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	b := blocks[0]
	if b.Context() != h.ctx {
		t.Fatal("block Context mismatch")
	}
	if b.Capacity() <= 0 {
		t.Fatal("Capacity not positive")
	}
	if b.Valid() != 1 || b.Limbo() != 0 {
		t.Fatalf("Valid/Limbo = %d/%d", b.Valid(), b.Limbo())
	}
	if got := h.m.blockByID(b.ID()); got != b {
		t.Fatal("ID does not resolve through the registry")
	}
	if !b.SlotIsValid(0) {
		t.Fatal("slot 0 should be valid")
	}

	if h.m.Epoch() == nil {
		t.Fatal("Epoch nil")
	}
	if h.m.OffheapStats() == nil {
		t.Fatal("OffheapStats nil")
	}
	if h.s.EpochSession() == nil {
		t.Fatal("EpochSession nil")
	}
}

func TestOpenCodedDerefHelpers(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	ref := h.add(t, h.s, 42, "y")
	e := ref.Entry

	if EntryGen(e) != ref.Gen {
		t.Fatal("EntryGen mismatch")
	}
	if EntryIncWord(e) != ref.Inc {
		t.Fatal("EntryIncWord mismatch (clean word expected)")
	}
	p := EntryPayloadRow(e)
	if p == nil {
		t.Fatal("EntryPayloadRow nil")
	}
	if got := *(*int64)(p); got != 42 {
		t.Fatalf("payload object = %d", got)
	}
}

func TestSlotIncWordAndRefFromDirect(t *testing.T) {
	h := newHarness(t, RowDirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	ref := h.add(t, h.s, 7, "z")

	h.s.Enter()
	obj, err := h.ctx.Deref(h.s, ref)
	if err != nil {
		t.Fatal(err)
	}
	if SlotIncWord(obj.Ptr) != ref.Inc {
		t.Fatal("SlotIncWord mismatch")
	}
	addr, inc := DirectWord(ref)
	if addr == 0 {
		t.Fatal("DirectWord null for live ref")
	}
	back := RefFromDirect(h.ctx, addr, inc)
	if back.Entry != ref.Entry || back.Inc != ref.Inc || back.Gen != ref.Gen {
		t.Fatalf("RefFromDirect = %+v, want %+v", back, ref)
	}
	if !RefFromDirect(h.ctx, 0, 0).IsNil() {
		t.Fatal("RefFromDirect(0) should be nil")
	}
	h.s.Exit()
}

func TestColBaseColumnar(t *testing.T) {
	h := newHarness(t, Columnar, Config{BlockSize: 1 << 13, HeapBackend: true})
	h.add(t, h.s, 5, "c")
	blk := h.ctx.SnapshotBlocks()[0]
	base := blk.ColBase(h.idF)
	if base == nil {
		t.Fatal("ColBase nil")
	}
	if got := *(*int64)(base); got != 5 {
		t.Fatalf("column value = %d", got)
	}
	if blk.FieldPtr(0, h.idF) != base {
		t.Fatal("FieldPtr(0) should equal the column base")
	}
}

func TestCompactionGroupAccessors(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	churnToLowOccupancy(t, h, 4)
	groups := h.m.planGroups()
	if len(groups) == 0 {
		t.Fatal("no groups planned")
	}
	g := groups[0]
	if len(g.Blocks()) < 2 {
		t.Fatalf("group blocks = %d", len(g.Blocks()))
	}
	if g.Target() == nil {
		t.Fatal("group target nil")
	}
	h.m.abortRun(groups)
}

func TestObjFromPtrRoundTrip(t *testing.T) {
	h := newHarness(t, RowDirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	ref := h.add(t, h.s, 11, "w")
	h.s.Enter()
	defer h.s.Exit()
	obj, err := h.ctx.Deref(h.s, ref)
	if err != nil {
		t.Fatal(err)
	}
	ro := ObjFromPtr(h.ctx, obj.Ptr)
	if ro.Blk == nil || ro.Ptr != obj.Ptr {
		t.Fatalf("ObjFromPtr = %+v", ro)
	}
	if got := *(*int64)(ro.Field(h.idF)); got != 11 {
		t.Fatalf("object through ObjFromPtr = %d", got)
	}
	_ = types.Ref{} // keep the types import alongside future cases
}
