package mem

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/decimal"
	"repro/internal/types"
)

// synHarness is a harness whose context carries an ID synopsis
// (registration must precede the first block, so it cannot be bolted
// onto an already-loaded harness).
func newSynHarness(t *testing.T, layout Layout) *harness {
	return newSynHarnessPacked(t, layout, PackSize)
}

// newSynHarnessPacked is newSynHarness under an explicit compaction
// packing mode; PackCluster additionally registers ID as the cluster
// key, so maintenance passes re-sort by it.
func newSynHarnessPacked(t *testing.T, layout Layout, packing PackingMode) *harness {
	t.Helper()
	h := newHarness(t, layout, Config{BlockSize: 1 << 13, HeapBackend: true, CompactionPacking: packing})
	if err := h.ctx.RegisterSynopses("ID"); err != nil {
		t.Fatal(err)
	}
	if packing == PackCluster {
		if err := h.ctx.RegisterClusterKey("ID"); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestSynopsisRegisterValidation(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	if err := h.ctx.RegisterSynopses("NoSuchField"); err == nil {
		t.Fatal("registering an unknown field succeeded")
	}
	if err := h.ctx.RegisterSynopses("Name"); err == nil {
		t.Fatal("registering a string field succeeded")
	}
	if err := h.ctx.RegisterSynopses("ID"); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-registration keeps one synopsis slot.
	if err := h.ctx.RegisterSynopses("ID"); err != nil {
		t.Fatal(err)
	}
	h.add(t, h.s, 1, "x")
	if err := h.ctx.RegisterSynopses("ID"); err == nil {
		t.Fatal("registering after block allocation succeeded")
	}
}

// TestSynopsisWidenOnInsert: bounds cover exactly the inserted values as
// they widen, block by block.
func TestSynopsisWidenOnInsert(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newSynHarness(t, layout)
			n := h.ctx.BlockCapacity()*2 + 5
			for i := 0; i < n; i++ {
				h.add(t, h.s, int64(i*10), "v")
			}
			for _, b := range h.ctx.SnapshotBlocks() {
				if b.Valid() == 0 {
					continue
				}
				lo, hi, ok := b.SynopsisBounds("ID")
				if !ok {
					t.Fatalf("block %d: no bounds despite %d valid rows", b.ID(), b.Valid())
				}
				wantLo, wantHi := int64(math.MaxInt64), int64(math.MinInt64)
				for slot := 0; slot < b.Capacity(); slot++ {
					if !b.SlotIsValid(slot) {
						continue
					}
					v := *(*int64)(b.FieldPtr(slot, h.idF))
					if v < wantLo {
						wantLo = v
					}
					if v > wantHi {
						wantHi = v
					}
				}
				if lo != wantLo || hi != wantHi {
					t.Fatalf("block %d bounds [%d,%d], rows span [%d,%d]", b.ID(), lo, hi, wantLo, wantHi)
				}
			}
		})
	}
}

// TestSynopsisRemoveNeverTightens is the regression test for the
// stale-but-sound half of the contract: removing rows must leave bounds
// byte-identical — a tightening remove could turn a loose bound into a
// wrong one under concurrency.
func TestSynopsisRemoveNeverTightens(t *testing.T) {
	h := newSynHarness(t, RowIndirect)
	n := h.ctx.BlockCapacity() + 10
	refs := make([]types.Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, h.add(t, h.s, int64(i), "v"))
	}
	type bnds struct{ lo, hi int64 }
	before := map[uint32]bnds{}
	for _, b := range h.ctx.SnapshotBlocks() {
		if lo, hi, ok := b.SynopsisBounds("ID"); ok {
			before[b.ID()] = bnds{lo, hi}
		}
	}
	// Remove the extreme rows of every block — the ones whose values
	// define the bounds.
	for i, r := range refs {
		if i%2 == 0 {
			if err := h.remove(h.s, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, b := range h.ctx.SnapshotBlocks() {
		lo, hi, ok := b.SynopsisBounds("ID")
		want, had := before[b.ID()]
		if had != ok || (ok && (lo != want.lo || hi != want.hi)) {
			t.Fatalf("block %d bounds changed on remove: [%d,%d] want [%d,%d]", b.ID(), lo, hi, want.lo, want.hi)
		}
	}
}

// TestSynopsisCompactionRebuildTightens: after churn leaves bounds
// stale-wide, a compaction pass must produce a target whose bounds are
// exactly the survivors' min/max — strictly tighter than the widest
// stale source — and count the rebuild.
func TestSynopsisCompactionRebuildTightens(t *testing.T) {
	h := newSynHarness(t, RowIndirect)
	survivors := churnToLowOccupancy(t, h, 4)
	rebuildsBefore := h.m.stats.SynopsisRebuilds.Load()
	moved, err := h.m.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	if h.m.stats.SynopsisRebuilds.Load() == rebuildsBefore {
		t.Fatal("SynopsisRebuilds did not move")
	}
	wantLo, wantHi := int64(math.MaxInt64), int64(math.MinInt64)
	for id := range survivors {
		if id < wantLo {
			wantLo = id
		}
		if id > wantHi {
			wantHi = id
		}
	}
	// Every live row must lie inside its block's bounds, and at least one
	// block (a compaction target) must have exact bounds despite the
	// churn having spanned the full ID range.
	exact := false
	for _, b := range h.ctx.SnapshotBlocks() {
		if b.Valid() == 0 {
			continue
		}
		lo, hi, ok := b.SynopsisBounds("ID")
		if !ok {
			t.Fatalf("block %d: live rows but empty bounds", b.ID())
		}
		blo, bhi := int64(math.MaxInt64), int64(math.MinInt64)
		for slot := 0; slot < b.Capacity(); slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			v := *(*int64)(b.FieldPtr(slot, h.idF))
			if v < lo || v > hi {
				t.Fatalf("block %d: row %d outside bounds [%d,%d]", b.ID(), v, lo, hi)
			}
			if v < blo {
				blo = v
			}
			if v > bhi {
				bhi = v
			}
		}
		if lo == blo && hi == bhi {
			exact = true
		}
	}
	if !exact {
		t.Fatal("no block has exact bounds after compaction (rebuild did not tighten)")
	}
	verifySurvivors(t, h, survivors)
}

// TestQuickSynopsisSoundness is the property test for the soundness
// invariant: after any interleaving of add, remove, epoch advancement
// and compaction, every live row's value lies within its block's
// synopsis bounds. Runs under both the default size packing and
// clustered packing (where compaction additionally redistributes by
// key across several targets) — the soundness contract is identical.
func TestQuickSynopsisSoundness(t *testing.T) {
	for _, layout := range allLayouts() {
		for _, packing := range []PackingMode{PackSize, PackCluster} {
			layout, packing := layout, packing
			t.Run(layout.String()+"/"+packing.String(), func(t *testing.T) {
				f := func(seed int64) bool {
					rng := rand.New(rand.NewSource(seed))
					h := newSynHarnessPacked(t, layout, packing)
					var live []types.Ref
					nextID := int64(0)
					check := func() bool {
						for _, b := range h.ctx.SnapshotBlocks() {
							for slot := 0; slot < b.Capacity(); slot++ {
								if !b.SlotIsValid(slot) {
									continue
								}
								v := *(*int64)(b.FieldPtr(slot, h.idF))
								lo, hi, ok := b.SynopsisBounds("ID")
								if !ok || v < lo || v > hi {
									t.Logf("block %d: live row %d outside bounds [%d,%d] (ok=%v)", b.ID(), v, lo, hi, ok)
									return false
								}
							}
						}
						return true
					}
					for op := 0; op < 300; op++ {
						switch r := rng.Intn(12); {
						case r < 6 || len(live) == 0:
							// Spread values over a wide domain so stale bounds
							// and exact rebuilds are distinguishable.
							id := nextID*1_000_003 - 500_000
							nextID++
							live = append(live, h.add(t, h.s, id, "q"))
						case r < 9:
							i := rng.Intn(len(live))
							if err := h.remove(h.s, live[i]); err != nil {
								t.Logf("remove: %v", err)
								return false
							}
							live = append(live[:i], live[i+1:]...)
						case r < 10:
							h.m.TryAdvanceEpoch()
						default:
							// Release the allocation claim so blocks can form
							// groups, then compact.
							h.s.allocBlocks[h.ctx.id] = nil
							for _, b := range h.ctx.SnapshotBlocks() {
								b.allocOwned.Store(false)
							}
							if _, err := h.m.CompactNow(); err != nil {
								t.Logf("compact: %v", err)
								return false
							}
						}
						if op%50 == 0 && !check() {
							return false
						}
					}
					return check()
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// prunedScanIDs drains a predicated parallel scan, returning every ID in
// the admitted blocks.
func prunedScanIDs(t *testing.T, h *harness, workers int, pred *ScanPredicate) map[int64]int {
	t.Helper()
	var mu sync.Mutex
	seen := make(map[int64]int)
	err := h.ctx.ScanParallelPred(h.s, workers, pred, func(_ int, _ *Session, b *Block) error {
		local := make(map[int64]int)
		for slot := 0; slot < b.capacity; slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			local[*(*int64)(b.FieldPtr(slot, h.idF))]++
		}
		mu.Lock()
		for id, n := range local {
			seen[id] += n
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanParallelPred: %v", err)
	}
	return seen
}

// TestParallelScanPredPrunesAndMatches: a predicated scan must (a) admit
// every matching row exactly once, (b) actually skip blocks on a
// clustered load, and (c) agree with the serial predicated enumerator.
func TestParallelScanPredPrunesAndMatches(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newSynHarness(t, layout)
			// Sequential IDs cluster by insertion order, so block bounds
			// are disjoint ranges — the zone-map-friendly shape.
			n := h.ctx.BlockCapacity()*6 + 3
			for i := 0; i < n; i++ {
				h.add(t, h.s, int64(i), "v")
			}
			lo, hi := int64(n/3), int64(n/3+n/10)
			pred := h.ctx.Predicate().Int64Range("ID", lo, hi)

			prunedBefore := h.m.stats.BlocksPruned.Load()
			scannedBefore := h.m.stats.BlocksScanned.Load()
			for _, workers := range []int{1, 2, 4} {
				seen := prunedScanIDs(t, h, workers, pred)
				for id := lo; id <= hi; id++ {
					if seen[id] != 1 {
						t.Fatalf("workers=%d: matching id %d seen %d times", workers, id, seen[id])
					}
				}
				for id := range seen {
					// Admitted non-matching rows ride along in partially
					// matching blocks; with sequential IDs they can be at
					// most one block away from the interval.
					if id < lo-int64(h.ctx.BlockCapacity()) || id > hi+int64(h.ctx.BlockCapacity()) {
						t.Fatalf("workers=%d: id %d admitted from a block that cannot contain matches", workers, id)
					}
				}
			}
			if h.m.stats.BlocksPruned.Load() == prunedBefore {
				t.Fatal("no blocks pruned on a clustered load")
			}
			if h.m.stats.BlocksScanned.Load() == scannedBefore {
				t.Fatal("BlocksScanned did not move")
			}

			// Serial predicated enumerator sees the same admitted IDs.
			serial := make(map[int64]int)
			h.s.Enter()
			en := h.ctx.NewEnumeratorPred(h.s, pred)
			for {
				b, ok := en.NextBlock()
				if !ok {
					break
				}
				for slot := 0; slot < b.Capacity(); slot++ {
					if !b.SlotIsValid(slot) {
						continue
					}
					serial[*(*int64)(b.FieldPtr(slot, h.idF))]++
				}
			}
			en.Close()
			h.s.Exit()
			par := prunedScanIDs(t, h, 3, pred)
			if len(par) != len(serial) {
				t.Fatalf("parallel admitted %d ids, serial %d", len(par), len(serial))
			}
			for id := range serial {
				if par[id] != 1 {
					t.Fatalf("id %d: parallel %d, serial %d", id, par[id], serial[id])
				}
			}
		})
	}
}

// TestParallelPrunedScanMaintainerChurnStress: predicated scans under
// add/remove churn with an active Maintainer must keep seeing every
// stable matching row exactly once — blocks appear, empty, compact and
// re-tighten underneath the scans. Run with -race (race-stress).
func TestParallelPrunedScanMaintainerChurnStress(t *testing.T) {
	h := newSynHarness(t, RowIndirect)
	const stable = 500
	for i := 0; i < stable; i++ {
		h.add(t, h.s, int64(i), "stable")
	}
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	defer mt.Stop()

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup
	const churners = 2
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs, err := h.m.NewSession()
			if err != nil {
				fail.Store(err.Error())
				return
			}
			defer cs.Close()
			var pool []types.Ref
			// Churn IDs live far outside the stable range, so the
			// predicate provably excludes them; their blocks widen and
			// may later tighten back via compaction.
			id := int64(1) << 40
			for {
				select {
				case <-stop:
					return
				default:
				}
				pool = append(pool, h.add(t, cs, id+int64(w), "churn"))
				id++
				if len(pool) > 24 {
					victim := pool[0]
					pool = pool[1:]
					cs.Enter()
					err := h.ctx.Remove(cs, victim)
					cs.Exit()
					if err != nil {
						fail.Store(err.Error())
						return
					}
				}
			}
		}(w)
	}

	pred := h.ctx.Predicate().Int64Range("ID", 0, stable-1)
	deadline := time.Now().Add(400 * time.Millisecond)
	runs := 0
	for time.Now().Before(deadline) && fail.Load() == nil {
		workers := 1 + runs%4
		seen := prunedScanIDs(t, h, workers, pred)
		for i := 0; i < stable; i++ {
			if seen[int64(i)] != 1 {
				t.Fatalf("run %d (workers=%d): stable id %d seen %d times", runs, workers, i, seen[int64(i)])
			}
		}
		runs++
	}
	close(stop)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if runs == 0 {
		t.Fatal("no pruned scans completed")
	}
}

// TestDecimalKeyMonotone pins the saturating decimal → key map the
// pruning soundness argument relies on: in-int64-range unit counts map
// to themselves, out-of-range values saturate without reordering.
func TestDecimalKeyMonotone(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1 << 40, -10000, -1, 0, 1, 10000, 1 << 40, math.MaxInt64 - 1, math.MaxInt64}
	var prev int64
	for i, u := range vals {
		k := decimalKey(decimal.FromUnits(u))
		if i > 0 && k < prev {
			t.Fatalf("decimalKey not monotone at %d: %d < %d", u, k, prev)
		}
		if k != u {
			t.Fatalf("in-range value %d mapped to %d", u, k)
		}
		prev = k
	}
	// Out-of-int64-range values saturate without reordering.
	huge := decimal.FromUnits(math.MaxInt64).Add(decimal.FromUnits(math.MaxInt64))
	if k := decimalKey(huge); k != math.MaxInt64 {
		t.Fatalf("positive overflow key %d", k)
	}
	tiny := decimal.FromUnits(math.MinInt64).Add(decimal.FromUnits(math.MinInt64))
	if k := decimalKey(tiny); k != math.MinInt64 {
		t.Fatalf("negative overflow key %d", k)
	}
}
