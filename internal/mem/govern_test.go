package mem

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/types"
)

// Governor suites: pressure classification, the degradation ladder's
// shrink-before-fail ordering, reclaim-rate-derived Retry-After clamps,
// rebalance fault isolation, and the 1000-cycle pressure storm.

// fakePool is an in-package GovernedPool stand-in (mem cannot import
// region): a mutable retained footprint behind a mutex, with fill()
// standing in for queries parking arenas back into the idle set.
type fakePool struct {
	mu       sync.Mutex
	retained int64
	bound    int64
	trims    int64
}

func (p *fakePool) RetainedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retained
}

func (p *fakePool) RetainBound() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bound
}

func (p *fakePool) SetRetainBound(bound int64) {
	p.mu.Lock()
	p.bound = bound
	p.mu.Unlock()
}

func (p *fakePool) TrimTo(target int64) int64 {
	if target < 0 {
		target = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	freed := p.retained - target
	if freed <= 0 {
		return 0
	}
	p.retained = target
	p.trims++
	return freed
}

// fill parks bytes back into the idle set, respecting the current bound
// exactly like ArenaPool.Return does.
func (p *fakePool) fill(target int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if target > p.bound {
		target = p.bound
	}
	if target > p.retained {
		p.retained = target
	}
}

func (p *fakePool) trimCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.trims
}

// pumpSessionPool leases n fresh sessions and returns them all, leaving
// the idle pool holding at least min(n, maxPooledSessions) sessions.
func pumpSessionPool(t *testing.T, m *Manager, n int) {
	t.Helper()
	sessions := make([]*Session, 0, n)
	for i := 0; i < n; i++ {
		s, err := m.LeaseSession()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	for _, s := range sessions {
		m.ReturnSession(s)
	}
}

// TestGovernorPressureLevels pins the Healthy/Tight/Critical thresholds
// against the governed total and counts transitions (each one fires the
// PointGovernPressure injection point).
func TestGovernorPressureLevels(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	defer fault.Enable(map[string]*fault.Rule{
		fault.PointGovernPressure: {At: 1 << 40}, // never fires, counts hits
	})()

	if lvl := g.Level(); lvl != Healthy {
		t.Fatalf("unlimited budget level = %v, want healthy", lvl)
	}
	const limit = 1 << 20
	b.SetLimit(limit)
	if lvl := g.Level(); lvl != Healthy {
		t.Fatalf("empty heap level = %v, want healthy", lvl)
	}
	b.forceReserve(limit * 80 / 100)
	if lvl := g.Level(); lvl != Tight {
		t.Fatalf("at 0.80 level = %v, want tight", lvl)
	}
	b.forceReserve(limit * 15 / 100)
	if lvl := g.Level(); lvl != Critical {
		t.Fatalf("at 0.95 level = %v, want critical", lvl)
	}
	b.release(limit * 95 / 100)
	if lvl := g.Level(); lvl != Healthy {
		t.Fatalf("after release level = %v, want healthy", lvl)
	}
	if n := g.Snapshot().Transitions; n < 3 {
		t.Errorf("transitions = %d, want >= 3", n)
	}
	if n := fault.Hits(fault.PointGovernPressure); n < 3 {
		t.Errorf("PointGovernPressure hits = %d, want >= 3", n)
	}
}

// TestGovernorLadderShrinkRestore walks the ladder both ways: Critical
// zeroes arena retention and drains the session pool, Tight halves the
// bound and keeps a reduced session pool, and a Healthy rebalance
// restores registered base bounds.
func TestGovernorLadderShrinkRestore(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	const base = 1 << 20
	fp := &fakePool{bound: base, retained: base}
	g.RegisterPool("fake", fp)
	pumpSessionPool(t, h.m, 24)

	// Critical: governed (all arena) == limit.
	b.SetLimit(base)
	if err := g.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := fp.RetainBound(); got != 0 {
		t.Errorf("critical retain bound = %d, want 0", got)
	}
	if got := fp.RetainedBytes(); got != 0 {
		t.Errorf("critical retained = %d, want 0", got)
	}
	if n, _ := h.m.sessionPoolFootprint(); n != 0 {
		t.Errorf("critical pooled sessions = %d, want 0", n)
	}
	snap := g.Snapshot()
	if snap.ArenaBytesFreed != base {
		t.Errorf("ArenaBytesFreed = %d, want %d", snap.ArenaBytesFreed, base)
	}
	if snap.SessionsTrimmed < 24 {
		t.Errorf("SessionsTrimmed = %d, want >= 24", snap.SessionsTrimmed)
	}

	// Pressure cleared: the next rebalance restores base bounds.
	if err := g.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := fp.RetainBound(); got != base {
		t.Errorf("restored retain bound = %d, want %d", got, base)
	}
	if n := g.Snapshot().Restores; n != 1 {
		t.Errorf("Restores = %d, want 1", n)
	}

	// Tight: governed at exactly 0.75 of the limit halves the bound and
	// keeps a reduced session pool.
	fp.fill(base)
	b.SetLimit(base * 4 / 3)
	pumpSessionPool(t, h.m, 24)
	if err := g.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := fp.RetainBound(); got != base/2 {
		t.Errorf("tight retain bound = %d, want %d", got, base/2)
	}
	if got := fp.RetainedBytes(); got != base/2 {
		t.Errorf("tight retained = %d, want %d", got, base/2)
	}
	if n, _ := h.m.sessionPoolFootprint(); n != governTightSessions {
		t.Errorf("tight pooled sessions = %d, want %d", n, governTightSessions)
	}
}

// TestGovernorAdmitShrinksBeforeFail is the acceptance-gate ordering: an
// admission over the governed limit must first shrink arena retention
// (and succeed when that clears the deficit), and when the deficit is in
// untrimmable heap the failure is typed — with the trims having run
// before it.
func TestGovernorAdmitShrinksBeforeFail(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	const base = 1 << 20
	fp := &fakePool{bound: base, retained: base}
	g.RegisterPool("fake", fp)
	b.SetLimit(base / 2)

	// Deficit is all trimmable slack: Admit must rebalance it away and
	// succeed instead of rejecting.
	if err := b.Admit(context.Background()); err != nil {
		t.Fatalf("Admit with trimmable slack failed: %v", err)
	}
	if got := fp.RetainedBytes(); got != 0 {
		t.Errorf("retained after admit = %d, want 0 (ladder must have trimmed)", got)
	}
	if fp.trimCount() == 0 {
		t.Error("pool never trimmed — admission succeeded without the ladder")
	}

	// Deficit is heap the ladder cannot touch: the trims still run first,
	// then the bounded wait elapses into the typed error.
	b.forceReserve(base)
	fp.SetRetainBound(base)
	fp.fill(base / 4)
	trimsBefore := fp.trimCount()
	err := b.Admit(context.Background())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Admit over untrimmable heap = %v, want ErrBudgetExceeded", err)
	}
	if got := fp.RetainedBytes(); got != 0 {
		t.Errorf("retained after typed failure = %d, want 0", got)
	}
	if fp.trimCount() == trimsBefore {
		t.Error("typed failure without a preceding trim — ladder ordering broken")
	}
	if rej := b.Counters().Rejected; rej == 0 {
		t.Error("typed admission failure not counted")
	}
}

// TestGovernorAdmitWaitScales pins the pressure-derived admission queue
// bounds: flat while Healthy, stretched 2x/4x under Tight/Critical.
func TestGovernorAdmitWaitScales(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	if got := g.AdmitWait(); got != budgetAdmitWait {
		t.Errorf("healthy AdmitWait = %v, want %v", got, budgetAdmitWait)
	}
	const limit = 1 << 20
	b.SetLimit(limit)
	b.forceReserve(limit * 80 / 100)
	g.Level()
	if got := g.AdmitWait(); got != 2*budgetAdmitWait {
		t.Errorf("tight AdmitWait = %v, want %v", got, 2*budgetAdmitWait)
	}
	b.forceReserve(limit * 15 / 100)
	g.Level()
	if got := g.AdmitWait(); got != 4*budgetAdmitWait {
		t.Errorf("critical AdmitWait = %v, want %v", got, 4*budgetAdmitWait)
	}
}

// TestGovernorRetryAfterClamps pins the Retry-After derivation: minimum
// when unlimited or not over budget, maximum when the reclaim path is
// stalled, deficit/rate in between, clamped to [1s, 30s].
func TestGovernorRetryAfterClamps(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()

	if got := g.RetryAfter(); got != minRetryAfter {
		t.Errorf("unlimited RetryAfter = %v, want %v", got, minRetryAfter)
	}
	const limit = 1 << 20
	b.SetLimit(limit)
	if got := g.RetryAfter(); got != minRetryAfter {
		t.Errorf("under-budget RetryAfter = %v, want %v", got, minRetryAfter)
	}

	// Over budget with no measured reclaim: the stalled path earns max.
	b.forceReserve(2 * limit)
	if got := g.RetryAfter(); got != maxRetryAfter {
		t.Errorf("zero-rate RetryAfter = %v, want %v", got, maxRetryAfter)
	}

	// Seed the estimator directly (same package): deficit is limit bytes.
	seed := func(rate float64) {
		g.rateMu.Lock()
		g.rateBytesS = rate
		g.rateNanos = time.Now().UnixNano()
		g.rateBase = g.released.Load()
		g.rateMu.Unlock()
	}
	deficit := float64(limit)
	seed(deficit / 5) // 5s to drain
	if got := g.RetryAfter(); got < 4*time.Second || got > 7*time.Second {
		t.Errorf("mid-rate RetryAfter = %v, want ~5s", got)
	}
	seed(deficit * 100) // drains in 10ms: clamp up to min
	if got := g.RetryAfter(); got != minRetryAfter {
		t.Errorf("fast-rate RetryAfter = %v, want %v", got, minRetryAfter)
	}
	seed(1) // 1 byte/s: clamp down to max
	if got := g.RetryAfter(); got != maxRetryAfter {
		t.Errorf("slow-rate RetryAfter = %v, want %v", got, maxRetryAfter)
	}
}

// TestGovernorRebalanceFaultAborts pins the injection contract: a
// PointGovernRebalance Err rule aborts the pass before it touches any
// consumer — counted, state untouched, next pass succeeds.
func TestGovernorRebalanceFaultAborts(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	const base = 1 << 20
	fp := &fakePool{bound: base, retained: base}
	g.RegisterPool("fake", fp)
	b.SetLimit(base / 2)

	boom := errors.New("injected rebalance failure")
	disarm := fault.Enable(map[string]*fault.Rule{
		fault.PointGovernRebalance: {Err: boom}, // At 0: every hit
	})
	if err := g.Rebalance(); !errors.Is(err, boom) {
		t.Fatalf("Rebalance under injection = %v, want %v", err, boom)
	}
	if got := fp.RetainedBytes(); got != base {
		t.Errorf("aborted pass touched the pool: retained = %d, want %d", got, base)
	}
	if got := fp.RetainBound(); got != base {
		t.Errorf("aborted pass touched the bound: %d, want %d", got, base)
	}
	snap := g.Snapshot()
	if snap.RebalanceFails == 0 {
		t.Error("aborted pass not counted in RebalanceFails")
	}
	if snap.Rebalances != 0 {
		t.Errorf("aborted pass counted as completed: Rebalances = %d", snap.Rebalances)
	}
	disarm()

	// The next pressure signal retries and completes the trim.
	if err := g.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got := fp.RetainedBytes(); got != 0 {
		t.Errorf("post-injection rebalance retained = %d, want 0", got)
	}
}

// TestGovernorSnapshotAccounting pins the per-consumer byte split the
// /stats Governor section publishes: heap, arena retention, and the
// reported-not-governed session-pinned bytes.
func TestGovernorSnapshotAccounting(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	populateBlocks(t, h, 2)
	fp := &fakePool{bound: 1 << 20, retained: 3 << 10}
	g.RegisterPool("fake", fp)

	// Park a session that owns allocation blocks so the pool pins bytes.
	s, err := h.m.LeaseSession()
	if err != nil {
		t.Fatal(err)
	}
	h.add(t, s, 424242, "pinned")
	h.m.ReturnSession(s)

	snap := g.Snapshot()
	if snap.HeapUsed != h.m.Budget().Used() {
		t.Errorf("HeapUsed = %d, want %d", snap.HeapUsed, h.m.Budget().Used())
	}
	if snap.ArenaRetained != 3<<10 {
		t.Errorf("ArenaRetained = %d, want %d", snap.ArenaRetained, 3<<10)
	}
	if snap.GovernedUsed != snap.HeapUsed+snap.ArenaRetained+snap.SynopsisBytes {
		t.Errorf("GovernedUsed = %d, want sum of consumer terms", snap.GovernedUsed)
	}
	if snap.PooledSessions < 1 {
		t.Errorf("PooledSessions = %d, want >= 1", snap.PooledSessions)
	}
	if snap.SessionPinnedBytes < int64(h.m.cfg.BlockSize) {
		t.Errorf("SessionPinnedBytes = %d, want >= one block", snap.SessionPinnedBytes)
	}
	if snap.GovernedUsed < snap.SessionPinnedBytes+snap.ArenaRetained {
		t.Error("session-pinned bytes double counted outside the heap term")
	}
	if snap.Level != "healthy" {
		t.Errorf("Level = %q, want healthy (unlimited)", snap.Level)
	}
}

// sumIDsWith is sumIDs on a caller-supplied coordinator session, so the
// storm can run scans concurrently (sessions are single-owner).
func sumIDsWith(h *harness, cctx context.Context, s *Session, workers int) (int64, error) {
	var total atomic.Int64
	err := h.ctx.ScanParallelCtx(cctx, s, workers, func(_ int, _ *Session, b *Block) error {
		var local int64
		for slot := 0; slot < b.capacity; slot++ {
			if b.SlotIsValid(slot) {
				local += *(*int64)(b.FieldPtr(slot, h.idF))
			}
		}
		total.Add(local)
		return nil
	})
	return total.Load(), err
}

// churnAdd is h.add without the t.Fatal: the storm tolerates typed
// budget rejections on its churn path.
func churnAdd(h *harness, s *Session, id int64) (types.Ref, error) {
	r, obj, err := h.ctx.Alloc(s)
	if err != nil {
		return types.Ref{}, err
	}
	*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
	h.ctx.Publish(s, obj)
	return r, nil
}

// TestGovernorStormLeakFree is the 1000-cycle pressure storm: a budget
// held in the Tight band by refilled arena slack, racing parallel scans,
// object churn, session-pool pump/trim cycles, a 1ms Maintainer driving
// rebalances, periodic over-limit admissions that must be rescued by the
// ladder, and injected rebalance failures — all under -race. Afterwards
// every ledger balances and surviving sums equal the serial oracle.
func TestGovernorStormLeakFree(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.m.Governor()
	b := h.m.Budget()
	_, want := populateBlocks(t, h, 4)

	heap := b.Used()
	base := 4 * heap
	fp := &fakePool{bound: base, retained: heap}
	g.RegisterPool("storm", fp)
	// Limit: heap + retained lands exactly on the Tight threshold, with
	// heap itself far below the limit so churn allocations never stall.
	limit := (heap + heap) * 4 / 3
	b.SetLimit(limit)

	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	defer mt.Stop()

	boom := errors.New("injected storm rebalance failure")
	cycles := 1000
	if testing.Short() {
		cycles = 100
	}
	for i := 0; i < cycles; i++ {
		if i%7 == 0 {
			fp.fill(heap) // queries keep parking arenas back
		}
		if i%31 == 0 {
			pumpSessionPool(t, h.m, 20) // grow the pool past the Tight keep
		}
		armed := i%97 == 13
		if armed {
			fault.Enable(map[string]*fault.Rule{
				fault.PointGovernRebalance: {Err: boom}, // every hit while armed
			})
			// Force at least one aborted pass per armed window (a racing
			// maintainer pass may hold the single-flight gate briefly).
			for try := 0; try < 100; try++ {
				if err := g.Rebalance(); errors.Is(err, boom) {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		if i%97 == 50 {
			// Push the governed total over the limit with trimmable slack:
			// the admission must be rescued by the ladder, never 500.
			fp.SetRetainBound(base)
			fp.fill(3 * heap)
			if err := b.Admit(context.Background()); err != nil && !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("cycle %d: over-limit admission: %v", i, err)
			}
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := h.m.LeaseSession()
			if err != nil {
				return
			}
			defer h.m.ReturnSession(s)
			var refs []types.Ref
			for k := 0; k < 4; k++ {
				r, err := churnAdd(h, s, int64(1_000_000+i*8+k))
				if err != nil {
					if !errors.Is(err, ErrBudgetExceeded) {
						t.Errorf("cycle %d: churn alloc: %v", i, err)
					}
					break
				}
				refs = append(refs, r)
			}
			for _, r := range refs {
				if err := h.remove(s, r); err != nil {
					t.Errorf("cycle %d: churn remove: %v", i, err)
				}
			}
		}(i)
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := h.m.LeaseSession()
				if err != nil {
					t.Errorf("cycle %d: scan lease: %v", i, err)
					return
				}
				defer h.m.ReturnSession(s)
				if _, err := sumIDsWith(h, context.Background(), s, 2); err != nil {
					t.Errorf("cycle %d: scan: %v", i, err)
				}
			}()
		}
		wg.Wait()
		if armed {
			fault.Disarm()
		}

		if i%50 == 0 {
			serial, err := sumIDs(h, context.Background(), 1)
			if err != nil {
				t.Fatalf("cycle %d: serial oracle: %v", i, err)
			}
			par, err := sumIDs(h, context.Background(), 4)
			if err != nil {
				t.Fatalf("cycle %d: parallel sum: %v", i, err)
			}
			if serial != want || par != want {
				t.Fatalf("cycle %d: sums diverged: serial %d parallel %d want %d", i, serial, par, want)
			}
		}
	}

	mt.Stop()
	fault.Disarm()
	assertScanQuiesced(t, h)

	// Byte ledger: every allocated-but-unreleased block is charged, every
	// released block refunded — graveyard blocks count on both sides.
	st := h.m.Stats()
	live := (st.BlocksAllocated.Load() - st.BlocksReleased.Load()) * int64(h.m.cfg.BlockSize)
	if used := b.Used(); used != live {
		t.Errorf("budget ledger unbalanced: used %d, live block bytes %d", used, live)
	}
	if got := fp.RetainedBytes(); got < 0 || got > fp.RetainBound() {
		t.Errorf("arena ledger unbalanced: retained %d, bound %d", got, fp.RetainBound())
	}

	serial, err := sumIDs(h, context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sumIDs(h, context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial != want || par != want {
		t.Fatalf("surviving sums diverged: serial %d parallel %d want %d", serial, par, want)
	}

	snap := g.Snapshot()
	if snap.Rebalances == 0 {
		t.Error("storm never rebalanced")
	}
	if snap.RebalanceFails == 0 {
		t.Error("injected rebalance failures never fired")
	}
	if snap.ArenaBytesFreed == 0 {
		t.Error("storm never trimmed arena retention")
	}
	if snap.SessionsTrimmed == 0 {
		t.Error("storm never trimmed the session pool")
	}
	if snap.Restores == 0 {
		t.Error("storm never restored base bounds after pressure cleared")
	}
	if snap.Transitions == 0 {
		t.Error("storm never transitioned pressure levels")
	}
	b.SetLimit(0)
	if lvl := g.Level(); lvl != Healthy {
		t.Errorf("post-storm level = %v, want healthy", lvl)
	}
	_ = fmt.Sprintf("%+v", snap) // snapshot stays printable under -race
}
