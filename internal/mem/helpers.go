package mem

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/types"
)

// DirectWord resolves a reference into the direct-pointer encoding stored
// inside objects that reference a RowDirect collection (§6): the current
// slot-data address and the incarnation the reference carries. The write
// barrier validates the reference first and encodes a stale one as null —
// §2's "references implicitly become null" applied at store time. The
// overflow rescue (§3.1) depends on this: once the background scan has
// nulled the stale direct pointers to a retired slot, no new ones can be
// minted, so the slot's incarnation sequence can restart.
func DirectWord(r types.Ref) (addr uint64, inc uint32) {
	if r.IsNil() {
		return 0, 0
	}
	e := entryRef(r.Entry)
	if loadGen(e) != r.Gen || loadInc(e)&IncMask != r.Inc {
		return 0, 0
	}
	return loadPayload(e), r.Inc
}

// RefFromDirect rebuilds an indirect reference from a direct in-object
// pointer into ctx, using the slot's back-pointer to find the indirection
// entry (unmarshalling path of the collection layer).
func RefFromDirect(c *Context, addr uint64, inc uint32) types.Ref {
	if addr == 0 {
		return types.Ref{}
	}
	p := payloadAddr(addr)
	blk := c.mgr.blockFromAddr(p)
	if blk == nil {
		return types.Ref{}
	}
	slot := blk.slotIndexFromData(p)
	e := blk.backEntry(slot)
	return types.Ref{Entry: e, Inc: inc, Gen: loadGen(e)}
}

// ObjFromPtr builds an Obj from a slot-data pointer into ctx (row
// layouts only).
func ObjFromPtr(c *Context, p unsafe.Pointer) Obj {
	blk := c.mgr.blockFromAddr(p)
	if blk == nil {
		return Obj{}
	}
	return Obj{Blk: blk, Slot: blk.slotIndexFromData(p), Ptr: p}
}

// The following accessors are the building blocks of the dereference
// checks that the paper's modified JIT compiler inlines into generated
// query code (§2, §3.1). Compiled query packages use them to open-code
// the fast path — generation match, clean incarnation match, payload
// load — and fall back to Context.Deref / FieldRef.Deref for the flagged
// slow path (relocation protocol, null). Each is small enough for the Go
// inliner.

// EntryGen loads an indirection entry's reuse generation.
func EntryGen(e unsafe.Pointer) uint32 {
	return atomic.LoadUint32((*uint32)(unsafe.Add(e, 12)))
}

// EntryIncWord loads an indirection entry's incarnation word (flags
// included; a clean match against Ref.Inc means no flags are set).
func EntryIncWord(e unsafe.Pointer) uint32 {
	return atomic.LoadUint32((*uint32)(unsafe.Add(e, 8)))
}

// EntryPayloadRow loads an entry's payload as a row-layout data pointer.
// Only valid for contexts with row layouts.
func EntryPayloadRow(e unsafe.Pointer) unsafe.Pointer {
	return types.LaunderAddr(uintptr(atomic.LoadUint64((*uint64)(e))))
}

// SlotIncWord loads the slot-header incarnation word for a row-direct
// slot-data pointer (§6: the incarnation lives 8 bytes before the data).
func SlotIncWord(p unsafe.Pointer) uint32 {
	return atomic.LoadUint32((*uint32)(unsafe.Add(p, -8)))
}
