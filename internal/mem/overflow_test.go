package mem

import (
	"reflect"
	"testing"
	"time"
	"unsafe"

	"repro/internal/schema"
	"repro/internal/types"
)

// The overflow tests build a two-context object graph at the mem level:
// target objects referenced by holder objects through a Ref field, with
// the edge registered the way the collection layer does it.

type ovTarget struct{ ID int64 }

// ovRef is a minimal RefTyped wrapper so schema classifies the holder
// field as Kind Ref targeting ovTarget.
type ovRef struct{ R types.Ref }

// RefTargetType implements types.RefTyped.
func (ovRef) RefTargetType() reflect.Type { return reflect.TypeOf(ovTarget{}) }

type ovHolder struct {
	Ref ovRef
	Pad int64
}

type ovHarness struct {
	m      *Manager
	target *Context
	holder *Context
	s      *Session
	tID    *schema.Field
	hRef   *schema.Field
	direct bool
}

func newOvHarness(t *testing.T, targetLayout Layout) *ovHarness {
	t.Helper()
	m, err := NewManager(Config{BlockSize: 1 << 13, HeapBackend: true})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := m.NewContext("target", schema.MustOf[ovTarget](), targetLayout)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := m.NewContext("holder", schema.MustOf[ovHolder](), RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	direct := targetLayout == RowDirect
	tc.RegisterRefEdge(hc, 0, direct)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return &ovHarness{
		m: m, target: tc, holder: hc, s: s,
		tID:    tc.Schema().MustField("ID"),
		hRef:   hc.Schema().MustField("Ref"),
		direct: direct,
	}
}

func (h *ovHarness) addTarget(t *testing.T, id int64) types.Ref {
	t.Helper()
	ref, obj, err := h.target.Alloc(h.s)
	if err != nil {
		t.Fatal(err)
	}
	*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.tID)) = id
	h.target.Publish(h.s, obj)
	return ref
}

// addHolder stores ref into the holder's Ref field using the encoding the
// collection layer would pick for the target layout.
func (h *ovHarness) addHolder(t *testing.T, ref types.Ref) Obj {
	t.Helper()
	_, obj, err := h.holder.Alloc(h.s)
	if err != nil {
		t.Fatal(err)
	}
	fp := obj.Blk.FieldPtr(obj.Slot, h.hRef)
	if h.direct {
		addr, inc := DirectWord(ref)
		*(*uint64)(fp) = addr
		*(*uint32)(unsafe.Add(fp, 8)) = inc
		*(*uint32)(unsafe.Add(fp, 12)) = 0
	} else {
		*(*types.Ref)(fp) = ref
	}
	h.holder.Publish(h.s, obj)
	return obj
}

// forceLastIncarnation pushes the target object's incarnation to the
// retirement brink and returns the fixed-up reference.
func (h *ovHarness) forceLastIncarnation(t *testing.T, ref types.Ref) types.Ref {
	t.Helper()
	e := entryRef(ref.Entry)
	if h.direct {
		h.s.Enter()
		obj, err := h.target.Deref(h.s, ref)
		if err != nil {
			t.Fatal(err)
		}
		blk := h.m.blockFromAddr(obj.Ptr)
		*blk.slotHeaderPtr(blk.slotIndexFromData(obj.Ptr)) = MaxInc - 1
		h.s.Exit()
	}
	*entryIncPtr(e) = MaxInc - 1
	ref.Inc = MaxInc - 1
	return ref
}

func (h *ovHarness) removeTarget(t *testing.T, ref types.Ref) {
	t.Helper()
	h.s.Enter()
	err := h.target.Remove(h.s, ref)
	h.s.Exit()
	if err != nil {
		t.Fatal(err)
	}
}

// holderRefWord reads back the holder field's first word (entry pointer
// or direct address).
func holderRefWord(h *ovHarness, obj Obj) uint64 {
	return *(*uint64)(obj.Blk.FieldPtr(obj.Slot, h.hRef))
}

func TestRescueNullsIndirectRefsAndRecyclesEntry(t *testing.T) {
	h := newOvHarness(t, RowIndirect)
	ref := h.addTarget(t, 7)
	ref = h.forceLastIncarnation(t, ref)
	holder := h.addHolder(t, ref)
	h.removeTarget(t, ref)

	if n := h.m.RetiredEntries(); n != 1 {
		t.Fatalf("RetiredEntries = %d, want 1", n)
	}
	st, err := h.m.RescueOverflowed()
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesRescued != 1 || st.RefsNulled != 1 {
		t.Fatalf("rescue = %+v, want 1 entry, 1 nulled ref", st)
	}
	if w := holderRefWord(h, holder); w != 0 {
		t.Fatalf("in-object ref not nulled: %#x", w)
	}
	// The stale application reference stays null forever.
	h.s.Enter()
	if _, err := h.target.Deref(h.s, ref); err != ErrNullReference {
		t.Fatalf("stale deref = %v", err)
	}
	h.s.Exit()

	// The rescued entry returns to circulation after the recycle grace
	// period, restarting at incarnation 0 with a bumped generation.
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	reused := false
	for i := 0; i < entryBatch*2 && !reused; i++ {
		nr := h.addTarget(t, int64(100+i))
		if nr.Entry == ref.Entry {
			reused = true
			if nr.Inc != 0 {
				t.Fatalf("rescued entry incarnation = %d, want 0", nr.Inc)
			}
			if nr.Gen == ref.Gen {
				t.Fatal("rescued entry generation not bumped")
			}
			h.s.Enter()
			obj, err := h.target.Deref(h.s, nr)
			if err != nil {
				t.Fatalf("deref of reused entry: %v", err)
			}
			if got := *(*int64)(obj.Field(h.tID)); got != int64(100+i) {
				t.Fatalf("reused entry object = %d", got)
			}
			// The retired reference must still be null.
			if _, err := h.target.Deref(h.s, ref); err != ErrNullReference {
				t.Fatalf("stale deref after reuse = %v", err)
			}
			h.s.Exit()
		}
	}
	if !reused {
		t.Fatal("rescued entry never recycled")
	}
}

func TestRescueNullsDirectRefsAndReusesSlot(t *testing.T) {
	h := newOvHarness(t, RowDirect)
	ref := h.addTarget(t, 7)
	ref = h.forceLastIncarnation(t, ref)
	holder := h.addHolder(t, ref)
	if holderRefWord(h, holder) == 0 {
		t.Fatal("direct encoding unexpectedly null before removal")
	}

	// Locate the slot before removing.
	h.s.Enter()
	obj, err := h.target.Deref(h.s, ref)
	if err != nil {
		t.Fatal(err)
	}
	blk := h.m.blockFromAddr(obj.Ptr)
	slot := blk.slotIndexFromData(obj.Ptr)
	h.s.Exit()

	h.removeTarget(t, ref)
	if got := slotDirState(blk.SlotDirWord(slot)); got != slotRetired {
		t.Fatalf("slot state = %d, want retired", got)
	}

	st, err := h.m.RescueOverflowed()
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsRescued != 1 || st.RefsNulled != 1 {
		t.Fatalf("rescue = %+v, want 1 slot, 1 nulled ref", st)
	}
	if w := holderRefWord(h, holder); w != 0 {
		t.Fatalf("direct pointer not nulled: %#x", w)
	}
	if got := slotDirState(blk.SlotDirWord(slot)); got != slotLimbo {
		t.Fatalf("rescued slot state = %d, want limbo", got)
	}

	// After the grace period the slot serves new objects from a fresh
	// incarnation sequence.
	h.m.TryAdvanceEpoch()
	h.m.TryAdvanceEpoch()
	refilled := false
	for i := 0; i < blk.capacity; i++ {
		nr := h.addTarget(t, int64(1000+i))
		h.s.Enter()
		nobj, err := h.target.Deref(h.s, nr)
		if err != nil {
			t.Fatal(err)
		}
		nb := h.m.blockFromAddr(nobj.Ptr)
		ns := nb.slotIndexFromData(nobj.Ptr)
		h.s.Exit()
		if nb == blk && ns == slot {
			refilled = true
			if nr.Inc != 0 {
				t.Fatalf("rescued slot incarnation = %d, want 0", nr.Inc)
			}
			break
		}
	}
	if !refilled {
		t.Fatal("rescued slot never reused")
	}
}

func TestRescueNoVictimsIsNoop(t *testing.T) {
	h := newOvHarness(t, RowIndirect)
	h.addTarget(t, 1)
	st, err := h.m.RescueOverflowed()
	if err != nil {
		t.Fatal(err)
	}
	if st != (RescueStats{}) {
		t.Fatalf("no-victim rescue = %+v", st)
	}
	if n := h.m.Stats().OverflowScans.Load(); n != 0 {
		t.Fatalf("no-victim rescue counted a scan: %d", n)
	}
}

func TestRescueTimeoutLeavesVictimsRetired(t *testing.T) {
	h := newOvHarness(t, RowIndirect)
	ref := h.forceLastIncarnation(t, h.addTarget(t, 7))
	h.addHolder(t, ref)
	h.removeTarget(t, ref)

	// A stubborn session blocks the grace period; the rescue must give up
	// and requeue the victims.
	stubborn, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	stubborn.Enter()
	done := make(chan RescueStats, 1)
	go func() {
		st, _ := h.m.RescueOverflowed()
		done <- st
	}()
	select {
	case st := <-done:
		if st.EntriesRescued != 0 {
			t.Fatalf("rescue succeeded despite stuck session: %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rescue did not return despite stuck session")
	}
	if n := h.m.RetiredEntries(); n != 1 {
		t.Fatalf("victims not requeued: %d", n)
	}
	stubborn.Exit()
	stubborn.Close()

	st, err := h.m.RescueOverflowed()
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesRescued != 1 {
		t.Fatalf("retry rescue = %+v", st)
	}
}

func TestOverflowScannerBackground(t *testing.T) {
	h := newOvHarness(t, RowIndirect)
	stop := h.m.StartOverflowScanner(time.Millisecond)
	defer stop()

	ref := h.forceLastIncarnation(t, h.addTarget(t, 7))
	holder := h.addHolder(t, ref)
	h.removeTarget(t, ref)

	deadline := time.Now().Add(10 * time.Second)
	for h.m.RetiredEntries() > 0 || h.m.Stats().EntriesRescued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scanner never rescued the entry")
		}
		time.Sleep(time.Millisecond)
	}
	if w := holderRefWord(h, holder); w != 0 {
		t.Fatalf("in-object ref not nulled by background scan: %#x", w)
	}
}

func TestDirectWordValidatesStaleRefs(t *testing.T) {
	h := newOvHarness(t, RowDirect)
	ref := h.addTarget(t, 7)
	if addr, _ := DirectWord(ref); addr == 0 {
		t.Fatal("live ref encoded as null")
	}
	h.removeTarget(t, ref)
	if addr, inc := DirectWord(ref); addr != 0 || inc != 0 {
		t.Fatalf("stale ref encoded as {%#x,%d}, want null", addr, inc)
	}
	if addr, inc := DirectWord(types.Ref{}); addr != 0 || inc != 0 {
		t.Fatalf("nil ref encoded as {%#x,%d}", addr, inc)
	}
}
