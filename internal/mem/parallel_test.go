package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// scanIDs drains a parallel scan with the given worker count and returns
// every ID seen, with duplicate detection.
func scanIDs(t *testing.T, h *harness, workers int) map[int64]int {
	t.Helper()
	var mu sync.Mutex
	seen := make(map[int64]int)
	err := h.ctx.ScanParallel(h.s, workers, func(_ int, _ *Session, b *Block) error {
		local := make(map[int64]int)
		for slot := 0; slot < b.capacity; slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			local[*(*int64)(b.FieldPtr(slot, h.idF))]++
		}
		mu.Lock()
		for id, n := range local {
			seen[id] += n
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanParallel: %v", err)
	}
	return seen
}

func TestParallelScanMatchesSerial(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 13, HeapBackend: true})
			n := h.ctx.BlockCapacity()*4 + 7
			refs := make(map[int64]bool, n)
			for i := 0; i < n; i++ {
				ref := h.add(t, h.s, int64(i), fmt.Sprintf("s%d", i))
				if i%3 == 0 {
					if err := h.remove(h.s, ref); err != nil {
						t.Fatal(err)
					}
				} else {
					refs[int64(i)] = true
				}
			}
			serial := make(map[int64]int)
			h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
				serial[*(*int64)(b.FieldPtr(slot, h.idF))]++
				return true
			})
			for _, workers := range []int{1, 2, 4, 9} {
				par := scanIDs(t, h, workers)
				if len(par) != len(serial) {
					t.Fatalf("workers=%d: parallel saw %d ids, serial %d", workers, len(par), len(serial))
				}
				for id, cnt := range par {
					if cnt != 1 {
						t.Fatalf("workers=%d: id %d seen %d times", workers, id, cnt)
					}
					if !refs[id] {
						t.Fatalf("workers=%d: saw removed id %d", workers, id)
					}
				}
			}
		})
	}
}

// TestParallelScanEmptyBlockFastPath checks that blocks with no valid
// slots are skipped before the per-slot loop runs.
func TestParallelScanEmptyBlockFastPath(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	cap := h.ctx.BlockCapacity()
	for i := 0; i < cap*3; i++ {
		h.add(t, h.s, int64(i), "x")
	}
	// Empty the middle block entirely.
	blocks := h.ctx.SnapshotBlocks()
	if len(blocks) < 3 {
		t.Fatalf("want >=3 blocks, got %d", len(blocks))
	}
	mid := blocks[1]
	for slot := 0; slot < mid.capacity; slot++ {
		if !mid.SlotIsValid(slot) {
			continue
		}
		h.s.Enter()
		ref := h.ctx.MakeRef(mid, slot)
		if err := h.ctx.Remove(h.s, ref); err != nil {
			t.Fatal(err)
		}
		h.s.Exit()
	}
	if mid.Valid() != 0 {
		t.Fatalf("middle block still has %d valid slots", mid.Valid())
	}
	visited := 0
	h.s.Enter()
	en := h.ctx.NewEnumerator(h.s)
	for {
		b, ok := en.NextBlock()
		if !ok {
			break
		}
		if b == mid {
			t.Fatal("enumerator returned an empty block")
		}
		visited++
	}
	en.Close()
	h.s.Exit()
	if visited == 0 {
		t.Fatal("no blocks visited")
	}
}

// TestParallelScanPinsOutCompaction: a compaction planned while a
// parallel scan is open must not move anything (the pinned coordinator
// epoch stalls its epoch waits), and the scan's view stays exactly-once.
func TestParallelScanPinsOutCompaction(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:      1 << 13,
		PinWaitTimeout: 2 * time.Millisecond,
		HeapBackend:    true,
	})
	survivors := churnToLowOccupancy(t, h, 4)

	ps := h.ctx.NewParallelScan(h.s)
	// Compaction planned after the scan opened: must abort moving.
	movedBefore := h.m.stats.ObjectsMoved.Load()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = h.m.CompactNow()
	}()

	ws, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	seen := make(map[int64]int)
	ws.Enter()
	for {
		b, ok := ps.Next(ws)
		if !ok {
			break
		}
		for slot := 0; slot < b.capacity; slot++ {
			if !b.SlotIsValid(slot) {
				continue
			}
			seen[*(*int64)(b.FieldPtr(slot, h.idF))]++
		}
	}
	ws.Exit()
	<-done // the compaction attempt has finished (aborted or not)
	ps.Close()

	if moved := h.m.stats.ObjectsMoved.Load(); moved != movedBefore {
		t.Fatalf("compaction moved %d objects under an open parallel scan", moved-movedBefore)
	}
	if len(seen) != len(survivors) {
		t.Fatalf("scan saw %d ids, want %d", len(seen), len(survivors))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %d seen %d times", id, n)
		}
		if _, ok := survivors[id]; !ok {
			t.Fatalf("saw unexpected id %d", id)
		}
	}

	// With the scan closed, compaction proceeds and the parallel view
	// still matches (post-state this time).
	if _, err := h.m.CompactNow(); err != nil {
		t.Fatal(err)
	}
	after := scanIDs(t, h, 4)
	if len(after) != len(survivors) {
		t.Fatalf("post-compaction scan saw %d ids, want %d", len(after), len(survivors))
	}
}

// TestParallelScanStress runs parallel scans against concurrent
// add/remove churn and repeated compactions: every stable object must be
// seen exactly once per scan, and nothing may ever be seen twice.
func TestParallelScanStress(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.10,
				PinWaitTimeout:   2 * time.Millisecond,
				HeapBackend:      true,
			})

			const stableCount = 300
			stable := make(map[int64]bool, stableCount)
			for i := 0; i < stableCount; i++ {
				h.add(t, h.s, int64(i), "stable")
				stable[int64(i)] = true
			}

			stop := make(chan struct{})
			var fail atomic.Value
			var wg sync.WaitGroup

			// Churners: add transient objects, remove most of them.
			const churners = 2
			for w := 0; w < churners; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s, err := h.m.NewSession()
					if err != nil {
						fail.Store(err.Error())
						return
					}
					defer s.Close()
					next := int64(1)<<40 | int64(w)<<32
					type pair struct {
						id  int64
						ref types.Ref
					}
					var pool []pair
					for {
						select {
						case <-stop:
							return
						default:
						}
						id := next
						next++
						ref, obj, err := h.ctx.Alloc(s)
						if err != nil {
							fail.Store(err.Error())
							return
						}
						*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
						h.ctx.Publish(s, obj)
						pool = append(pool, pair{id, ref})
						if len(pool) > 8 {
							victim := pool[0]
							pool = pool[1:]
							s.Enter()
							err := h.ctx.Remove(s, victim.ref)
							s.Exit()
							if err != nil {
								fail.Store(fmt.Sprintf("remove %#x: %v", victim.id, err))
								return
							}
						}
					}
				}(w)
			}

			// Compactor loop.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if _, err := h.m.CompactNow(); err != nil {
							fail.Store(err.Error())
							return
						}
						time.Sleep(time.Millisecond)
					}
				}
			}()

			// Scanner: repeated parallel scans asserting exactly-once.
			deadline := time.Now().Add(400 * time.Millisecond)
			coord, err := h.m.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			scans := 0
			for time.Now().Before(deadline) && fail.Load() == nil {
				var mu sync.Mutex
				counts := make(map[int64]int)
				err := h.ctx.ScanParallel(coord, 4, func(_ int, _ *Session, b *Block) error {
					local := make([]int64, 0, b.capacity)
					for slot := 0; slot < b.capacity; slot++ {
						if !b.SlotIsValid(slot) {
							continue
						}
						local = append(local, *(*int64)(b.FieldPtr(slot, h.idF)))
					}
					mu.Lock()
					for _, id := range local {
						counts[id]++
					}
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("scan %d: %v", scans, err)
				}
				for id, n := range counts {
					if n != 1 {
						t.Fatalf("scan %d: id %#x seen %d times", scans, id, n)
					}
				}
				for id := range stable {
					if counts[id] != 1 {
						t.Fatalf("scan %d: stable id %d seen %d times", scans, id, counts[id])
					}
				}
				scans++
			}
			close(stop)
			wg.Wait()
			if msg := fail.Load(); msg != nil {
				t.Fatal(msg)
			}
			if scans == 0 {
				t.Fatal("no scans completed")
			}
		})
	}
}
