package mem

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Memory governance (admission control & backpressure). The heap used to
// grow until the OS killed the process; Budget turns that into a governed
// resource: one process-level byte budget per Manager, accounted on block
// alloc/free, that under pressure first triggers
// compaction-for-reclamation (the Maintainer's allocation-pressure
// wake-up), then briefly backpressures allocators and new query
// admissions, and only when reclamation cannot help fails with a typed
// ErrBudgetExceeded — degrade, then refuse, never OOM.

// ErrBudgetExceeded is returned when an allocation or query admission
// cannot proceed within the manager's memory budget and reclamation
// could not free enough within the bounded wait. It is a typed, permanent
// answer for this attempt — callers may retry after load drops.
var ErrBudgetExceeded = errors.New("mem: memory budget exceeded")

// Budget governs a Manager's block-heap footprint. The zero limit means
// "unlimited": accounting still runs (Used stays accurate) but nothing
// waits or fails. All methods are safe for concurrent use.
type Budget struct {
	m     *Manager
	limit atomic.Int64 // bytes; 0 = unlimited
	used  atomic.Int64 // block bytes currently reserved

	// gen is a broadcast channel replaced (and the old one closed) on
	// every release, so waiters can block on "some bytes came back"
	// without a lock-held condition variable.
	mu  sync.Mutex
	gen chan struct{}

	// Counters surfaced through core.RuntimeStats.
	admitted     atomic.Int64 // query admissions allowed
	rejected     atomic.Int64 // query admissions refused (budget, not ctx)
	allocWaits   atomic.Int64 // block allocations that had to wait
	allocRejects atomic.Int64 // block allocations refused
	waitNanos    atomic.Int64 // cumulative reclamation-wait time
}

// budgetAllocWait bounds how long one block allocation backpressures
// before returning ErrBudgetExceeded. Reclamation that can help (the
// maintainer pass plus graveyard ripening) completes well inside this on
// any healthy heap.
const budgetAllocWait = 100 * time.Millisecond

// budgetAdmitWait bounds how long Admit backpressures when the caller's
// context carries no deadline of its own.
const budgetAdmitWait = 250 * time.Millisecond

func newBudget(m *Manager, limit int64) *Budget {
	b := &Budget{m: m, gen: make(chan struct{})}
	if limit > 0 {
		b.limit.Store(limit)
	}
	return b
}

// SetLimit replaces the byte limit; 0 disables enforcement. Lowering the
// limit below current use does not evict anything — it backpressures
// future allocations and admissions until reclamation catches up.
func (b *Budget) SetLimit(limit int64) {
	if limit < 0 {
		limit = 0
	}
	b.limit.Store(limit)
	if limit != 0 {
		b.broadcast() // waiters re-evaluate against the new limit
	}
}

// Limit returns the configured byte limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit.Load() }

// Used returns the block bytes currently reserved against the budget.
func (b *Budget) Used() int64 { return b.used.Load() }

// overLimit reports whether block-heap use has reached the limit (the
// allocation-path check; block reservations stay heap-vs-limit).
func (b *Budget) overLimit() bool {
	l := b.limit.Load()
	return l > 0 && b.used.Load() >= l
}

// overGoverned reports whether the governed total — heap plus arena
// retention plus synopses — has reached the limit. Admission gates on
// this wider total so that shrinking retained pools genuinely relieves
// admission pressure: a budget sized below heap+slack rebalances the
// slack away instead of rejecting queries forever.
func (b *Budget) overGoverned() bool {
	l := b.limit.Load()
	if l <= 0 {
		return false
	}
	if b.used.Load() >= l {
		return true
	}
	if g := b.m.governor; g != nil {
		return g.GovernedUsed() >= l
	}
	return false
}

// admitBound is the pressure-derived cap on one admission's queue time.
func (b *Budget) admitBound() time.Duration {
	if g := b.m.governor; g != nil {
		return g.AdmitWait()
	}
	return budgetAdmitWait
}

// waitChan returns the current broadcast generation.
func (b *Budget) waitChan() <-chan struct{} {
	b.mu.Lock()
	ch := b.gen
	b.mu.Unlock()
	return ch
}

// broadcast wakes every waiter to re-check the budget.
func (b *Budget) broadcast() {
	b.mu.Lock()
	close(b.gen)
	b.gen = make(chan struct{})
	b.mu.Unlock()
}

// tryReserve reserves n bytes iff they fit under the limit.
func (b *Budget) tryReserve(n int64) bool {
	l := b.limit.Load()
	if l <= 0 {
		b.used.Add(n)
		return true
	}
	for {
		u := b.used.Load()
		if u+n > l {
			return false
		}
		if b.used.CompareAndSwap(u, u+n) {
			return true
		}
	}
}

// forceReserve reserves n bytes even past the limit. Compaction targets
// use it: a target block is the reclamation vehicle itself (it frees at
// least two source blocks), so refusing it under pressure would deadlock
// the budget against its own remedy.
func (b *Budget) forceReserve(n int64) { b.used.Add(n) }

// release returns n bytes to the budget, feeds the governor's
// reclaim-rate estimator, and wakes waiters.
func (b *Budget) release(n int64) {
	b.used.Add(-n)
	if g := b.m.governor; g != nil {
		g.noteReleased(n)
	}
	if b.limit.Load() > 0 {
		b.broadcast()
	}
}

// reclaim nudges every reclamation path that can run off the allocator's
// foot: wake the Maintainer for a compaction-for-reclamation pass, try a
// lazy epoch advance, drain ripe graves now, and run the governor's
// rebalance ladder (arena-retention and session-pool trims) — so the
// cheaper consumers shrink before any admission fails.
func (b *Budget) reclaim() {
	b.m.signalAllocPressure()
	b.m.TryAdvanceEpoch()
	b.m.drainGraveyard()
	if g := b.m.governor; g != nil {
		_ = g.rebalance()
	}
}

// reserveBlock reserves one block's bytes for allocation, applying the
// pressure protocol on failure: trigger reclamation, then backpressure
// (bounded) for released bytes, and only then fail with
// ErrBudgetExceeded.
func (b *Budget) reserveBlock(n int64) error {
	if b.tryReserve(n) {
		return nil
	}
	b.allocWaits.Add(1)
	start := time.Now()
	defer func() { b.waitNanos.Add(time.Since(start).Nanoseconds()) }()
	deadline := time.NewTimer(budgetAllocWait)
	defer deadline.Stop()
	for {
		ch := b.waitChan()
		b.reclaim()
		if b.tryReserve(n) {
			return nil
		}
		select {
		case <-ch:
			// Bytes were released (or the limit moved): retry.
		case <-deadline.C:
			b.allocRejects.Add(1)
			return ErrBudgetExceeded
		}
	}
}

// Admit gates one new query admission on the governed byte total (heap
// plus arena retention plus synopses — see overGoverned): free when
// under the limit, otherwise it triggers reclamation (including the
// governor's rebalance ladder) and blocks — at most the governor's
// pressure-derived admitBound, or less when the context expires first —
// until the governed total drops under the limit. It returns ctx's
// error when the caller gave up first and ErrBudgetExceeded when the
// bounded wait elapsed, so an over-budget admission fails typed and
// promptly even under a long request deadline (the serve layer maps it
// to a retryable 503 with a reclaim-rate-derived Retry-After rather
// than queueing the request for its whole timeout); admission holds no
// resource, so there is nothing to release. The reclaim inside the wait
// loop runs before the bound can expire, so the ladder's trims always
// precede a typed admission failure.
func (b *Budget) Admit(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return err
	}
	if !b.overGoverned() {
		b.admitted.Add(1)
		return nil
	}
	start := time.Now()
	defer func() { b.waitNanos.Add(time.Since(start).Nanoseconds()) }()
	t := time.NewTimer(b.admitBound())
	defer t.Stop()
	bound := t.C
	for {
		ch := b.waitChan()
		b.reclaim()
		if !b.overGoverned() {
			b.admitted.Add(1)
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			b.rejected.Add(1)
			return context.Cause(ctx)
		case <-bound:
			b.rejected.Add(1)
			return ErrBudgetExceeded
		}
	}
}

// BudgetCounters is a point-in-time view of the budget's activity.
type BudgetCounters struct {
	Limit, Used              int64
	Admitted, Rejected       int64
	AllocWaits, AllocRejects int64
	ReclamationWaitNanos     int64
}

// Counters snapshots the budget's admission/rejection/wait counters.
func (b *Budget) Counters() BudgetCounters {
	return BudgetCounters{
		Limit:                b.limit.Load(),
		Used:                 b.used.Load(),
		Admitted:             b.admitted.Load(),
		Rejected:             b.rejected.Load(),
		AllocWaits:           b.allocWaits.Load(),
		AllocRejects:         b.allocRejects.Load(),
		ReclamationWaitNanos: b.waitNanos.Load(),
	}
}
