package mem

import (
	"testing"
)

// TestParallelScanSessionPoolReuse: repeated parallel scans must reuse
// worker sessions from the manager's pool instead of registering fresh
// epoch slots per scan.
func TestParallelScanSessionPoolReuse(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*6 + 3
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "x")
	}
	const workers, scans = 4, 50
	for i := 0; i < scans; i++ {
		if err := h.ctx.ScanParallel(h.s, workers, func(int, *Session, *Block) error { return nil }); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
	}
	leased := h.m.stats.SessionsLeased.Load()
	reused := h.m.stats.SessionsReused.Load()
	fresh := leased - reused
	if leased != workers*scans {
		t.Fatalf("leased %d sessions, want %d", leased, workers*scans)
	}
	// Only the very first scan may register sessions; every later scan
	// must draw fully from the pool.
	if fresh != workers {
		t.Fatalf("%d fresh registrations across %d scans, want %d", fresh, scans, workers)
	}
}

// TestParallelScanSessionPoolDisabled: with pooling off, every scan
// registers and closes its own sessions (the pre-pool behavior), and the
// pool holds nothing.
func TestParallelScanSessionPoolDisabled(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	h.m.SetSessionPooling(false)
	n := h.ctx.BlockCapacity()*6 + 3
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "x")
	}
	const workers, scans = 4, 10
	for i := 0; i < scans; i++ {
		if err := h.ctx.ScanParallel(h.s, workers, func(int, *Session, *Block) error { return nil }); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
	}
	if reused := h.m.stats.SessionsReused.Load(); reused != 0 {
		t.Fatalf("reused %d sessions with pooling disabled", reused)
	}
	// Epoch slots must not leak: a fresh registration still succeeds
	// after scans*workers unpooled sessions came and went.
	s, err := h.m.NewSession()
	if err != nil {
		t.Fatalf("session slots leaked: %v", err)
	}
	s.Close()
}

// BenchmarkParallelScanSmall measures a small parallel scan end to end —
// the regime where per-scan session registration dominates — with the
// session pool on and off.
func BenchmarkParallelScanSmall(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "fresh-sessions"
		}
		b.Run(name, func(b *testing.B) {
			m, err := NewManager(Config{BlockSize: 1 << 13, HeapBackend: true})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx, err := m.NewContext("bench", testSchema, RowIndirect)
			if err != nil {
				b.Fatal(err)
			}
			s, err := m.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			idF := testSchema.MustField("ID")
			for i := 0; i < ctx.BlockCapacity()*8; i++ {
				ref, obj, err := ctx.Alloc(s)
				if err != nil {
					b.Fatal(err)
				}
				_ = ref
				*(*int64)(obj.Blk.FieldPtr(obj.Slot, idF)) = int64(i)
				ctx.Publish(s, obj)
			}
			m.SetSessionPooling(pooled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sums [4]struct {
					v int64
					_ [56]byte
				}
				err := ctx.ScanParallel(s, 4, func(w int, _ *Session, blk *Block) error {
					for slot := 0; slot < blk.Capacity(); slot++ {
						if blk.SlotIsValid(slot) {
							sums[w].v += *(*int64)(blk.FieldPtr(slot, idF))
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
