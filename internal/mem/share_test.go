package mem

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/types"
)

// Cooperative scan-sharing suites: single-query oracle parity against the
// private parallel scan, the attach/catch-up boundary protocol, per-rider
// error isolation (cancel, kernel error, ErrStopScan) versus pass-fatal
// panics, predicate composition across riders, and the -race churn
// stress. The gated-leader helper parks the pass inside its first block
// so a follower's attach deterministically lands mid-pass.

// sharedIDs runs one query through the share group and returns every ID
// it saw with duplicate counts.
func sharedIDs(t *testing.T, h *harness, s *Session, workers int, pred *ScanPredicate) map[int64]int {
	t.Helper()
	var mu sync.Mutex
	seen := make(map[int64]int)
	err := h.ctx.Share().Scan(nil, s, workers, pred, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, b *Block) error {
			local := make(map[int64]int)
			for slot := 0; slot < b.capacity; slot++ {
				if b.SlotIsValid(slot) {
					local[*(*int64)(b.FieldPtr(slot, h.idF))]++
				}
			}
			mu.Lock()
			for id, n := range local {
				seen[id] += n
			}
			mu.Unlock()
			return nil
		}
	})
	if err != nil {
		t.Fatalf("shared scan: %v", err)
	}
	return seen
}

func TestSharedScanMatchesSerial(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{BlockSize: 1 << 13, HeapBackend: true})
			n := h.ctx.BlockCapacity()*4 + 7
			for i := 0; i < n; i++ {
				ref := h.add(t, h.s, int64(i), fmt.Sprintf("s%d", i))
				if i%3 == 0 {
					if err := h.remove(h.s, ref); err != nil {
						t.Fatal(err)
					}
				}
			}
			serial := make(map[int64]int)
			h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
				serial[*(*int64)(b.FieldPtr(slot, h.idF))]++
				return true
			})
			for _, workers := range []int{1, 2, 4} {
				seen := sharedIDs(t, h, h.s, workers, nil)
				if len(seen) != len(serial) {
					t.Fatalf("workers=%d: shared saw %d ids, serial %d", workers, len(seen), len(serial))
				}
				for id, cnt := range seen {
					if cnt != 1 {
						t.Fatalf("workers=%d: id %d seen %d times", workers, id, cnt)
					}
					if serial[id] != 1 {
						t.Fatalf("workers=%d: shared saw id %d the serial scan did not", workers, id)
					}
				}
				assertScanQuiesced(t, h)
			}
		})
	}
}

// TestSharedScanSingleQueryCountersMatchPrivate: one query through the
// share group maintains the same pruning counters a private predicated
// scan would — sharing is counter-transparent at N=1.
func TestSharedScanSingleQueryCountersMatchPrivate(t *testing.T) {
	h := newSynHarness(t, RowIndirect)
	n := h.ctx.BlockCapacity()*6 + 5
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
	}
	lo, hi := int64(0), int64(h.ctx.BlockCapacity())
	pred := h.ctx.Predicate().Int64Range("ID", lo, hi)

	st := h.m.Stats()
	p0, s0 := st.BlocksPruned.Load(), st.BlocksScanned.Load()
	if err := h.ctx.ScanParallelPred(h.s, 1, pred, func(_ int, _ *Session, _ *Block) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	privPruned := st.BlocksPruned.Load() - p0
	privScanned := st.BlocksScanned.Load() - s0

	p0, s0 = st.BlocksPruned.Load(), st.BlocksScanned.Load()
	sharedIDs(t, h, h.s, 1, pred)
	if got := st.BlocksPruned.Load() - p0; got != privPruned {
		t.Fatalf("shared single query pruned %d blocks, private pruned %d", got, privPruned)
	}
	if got := st.BlocksScanned.Load() - s0; got != privScanned {
		t.Fatalf("shared single query scanned %d blocks, private scanned %d", got, privScanned)
	}
	if privPruned == 0 || privScanned == 0 {
		t.Fatalf("degenerate layout: pruned=%d scanned=%d", privPruned, privScanned)
	}
}

// gatedQuery is one query run through the share group whose kernel can
// park at its first block, plus the channels to observe/steer it.
type gatedQuery struct {
	seen map[int64]int
	errc chan error
}

// startGatedLeader launches a leader query (workers=1) whose kernel
// parks inside the first claimed block until release is closed. It
// returns once the pass worker is parked — i.e. the pass is provably
// mid-block-0, cursor already at 1 — so anything the caller does next
// lands mid-pass.
func startGatedLeader(t *testing.T, h *harness, s *Session, release chan struct{}) *gatedQuery {
	t.Helper()
	q := &gatedQuery{seen: make(map[int64]int), errc: make(chan error, 1)}
	parked := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	go func() {
		q.errc <- h.ctx.Share().Scan(nil, s, 1, nil, func(slots int) func(int, *Session, *Block) error {
			return func(_ int, _ *Session, b *Block) error {
				once.Do(func() {
					close(parked)
					<-release
				})
				mu.Lock()
				for slot := 0; slot < b.capacity; slot++ {
					if b.SlotIsValid(slot) {
						q.seen[*(*int64)(b.FieldPtr(slot, h.idF))]++
					}
				}
				mu.Unlock()
				return nil
			}
		})
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never claimed its first block")
	}
	return q
}

// waitCounter polls an atomic counter until it moves past base.
func waitCounter(t *testing.T, c *atomic.Int64, base int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() == base {
		if time.Now().After(deadline) {
			t.Fatalf("%s never moved", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func assertExactlyOnce(t *testing.T, seen, want map[int64]int, who string) {
	t.Helper()
	if len(seen) != len(want) {
		t.Fatalf("%s saw %d ids, want %d", who, len(seen), len(want))
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("%s: id %d seen %d times", who, id, cnt)
		}
		if want[id] != 1 {
			t.Fatalf("%s: unexpected id %d", who, id)
		}
	}
}

// TestSharedScanAttachCatchUp: a second query attaching while the pass is
// inside block 0 records attachPos >= 1, so its private catch-up must
// cover the missed prefix; both queries see every ID exactly once and
// the share counters move.
func TestSharedScanAttachCatchUp(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*5 + 3
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	st := h.m.Stats()
	passes0 := st.SharedPasses.Load()
	attached0 := st.AttachedQueries.Load()
	catchup0 := st.CatchUpBlocks.Load()

	release := make(chan struct{})
	leader := startGatedLeader(t, h, h.s, release)

	rs, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rider := make(chan map[int64]int, 1)
	go func() {
		seen := sharedIDs(t, h, rs, 1, nil)
		rider <- seen
	}()
	waitCounter(t, &st.AttachedQueries, attached0, "AttachedQueries")
	close(release)

	if err := <-leader.errc; err != nil {
		t.Fatalf("leader: %v", err)
	}
	riderSeen := <-rider
	assertExactlyOnce(t, leader.seen, want, "leader")
	assertExactlyOnce(t, riderSeen, want, "rider")
	if got := st.SharedPasses.Load() - passes0; got != 1 {
		t.Fatalf("SharedPasses moved by %d, want 1", got)
	}
	if got := st.AttachedQueries.Load() - attached0; got != 1 {
		t.Fatalf("AttachedQueries moved by %d, want 1", got)
	}
	if st.CatchUpBlocks.Load() == catchup0 {
		t.Fatal("rider attached past block 0 but CatchUpBlocks never moved")
	}
	assertScanQuiesced(t, h)
}

// attachRider attaches a second query to the pass the gated leader is
// holding open and returns its result channels. It returns only after
// the attach is visible in the stats, so the caller can release the
// leader without racing the attachment.
func attachRider(t *testing.T, h *harness, kernel func(slots int) func(int, *Session, *Block) error, cctx context.Context) (chan error, *Session) {
	t.Helper()
	rs, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	st := h.m.Stats()
	attached0 := st.AttachedQueries.Load()
	errc := make(chan error, 1)
	go func() {
		errc <- h.ctx.Share().Scan(cctx, rs, 1, nil, kernel)
	}()
	waitCounter(t, &st.AttachedQueries, attached0, "AttachedQueries")
	return errc, rs
}

// TestSharedScanRiderErrorDetachesOne: a rider kernel failing detaches
// that rider alone; the leader's scan completes with full results.
func TestSharedScanRiderErrorDetachesOne(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*4 + 3
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	st := h.m.Stats()
	detach0 := st.Detaches.Load()

	release := make(chan struct{})
	leader := startGatedLeader(t, h, h.s, release)

	errBoom := errors.New("rider kernel failure")
	riderErr, rs := attachRider(t, h, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, _ *Block) error { return errBoom }
	}, nil)
	defer rs.Close()
	close(release)

	if err := <-leader.errc; err != nil {
		t.Fatalf("leader poisoned by rider error: %v", err)
	}
	assertExactlyOnce(t, leader.seen, want, "leader")
	if err := <-riderErr; !errors.Is(err, errBoom) {
		t.Fatalf("rider error = %v, want %v", err, errBoom)
	}
	if got := st.Detaches.Load() - detach0; got != 1 {
		t.Fatalf("Detaches moved by %d, want 1", got)
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanRiderStopScan: ErrStopScan from a rider kernel is a
// clean early detach — nil error, no catch-up, leader unaffected.
func TestSharedScanRiderStopScan(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*4 + 3
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	release := make(chan struct{})
	leader := startGatedLeader(t, h, h.s, release)

	riderErr, rs := attachRider(t, h, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, _ *Block) error { return ErrStopScan }
	}, nil)
	defer rs.Close()
	close(release)

	if err := <-leader.errc; err != nil {
		t.Fatalf("leader: %v", err)
	}
	assertExactlyOnce(t, leader.seen, want, "leader")
	if err := <-riderErr; err != nil {
		t.Fatalf("ErrStopScan rider returned %v, want nil", err)
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanCancelDetachesOne: cancelling one rider's context
// detaches that rider with its cancellation cause; the leader and the
// pass keep going.
func TestSharedScanCancelDetachesOne(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*4 + 3
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	st := h.m.Stats()
	detach0 := st.Detaches.Load()

	release := make(chan struct{})
	leader := startGatedLeader(t, h, h.s, release)

	cctx, cancel := context.WithCancel(context.Background())
	riderErr, rs := attachRider(t, h, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, _ *Block) error { return nil }
	}, cctx)
	defer rs.Close()
	cancel()
	if err := <-riderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rider returned %v, want context.Canceled", err)
	}
	close(release)

	if err := <-leader.errc; err != nil {
		t.Fatalf("leader poisoned by rider cancel: %v", err)
	}
	assertExactlyOnce(t, leader.seen, want, "leader")
	if got := st.Detaches.Load() - detach0; got != 1 {
		t.Fatalf("Detaches moved by %d, want 1", got)
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanPanicPoisonsPass: a panicking rider kernel is pass-fatal
// — every attached query returns an ErrWorkerPanic-wrapped error,
// mirroring the unshared contract.
func TestSharedScanPanicPoisonsPass(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*4 + 3
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
	}
	release := make(chan struct{})
	leader := startGatedLeader(t, h, h.s, release)

	riderErr, rs := attachRider(t, h, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, _ *Block) error { panic("rider kernel bug") }
	}, nil)
	defer rs.Close()
	close(release)

	if err := <-leader.errc; !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("leader error = %v, want ErrWorkerPanic", err)
	}
	if err := <-riderErr; !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("rider error = %v, want ErrWorkerPanic", err)
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanPredicateComposition: riders keep their own synopsis
// admit decisions. The leader's predicate covers the low half of the
// key space, the rider's the high half; the shared walk covers only the
// leader's blocks, so the rider's catch-up must cover the blocks the
// leader pruned — and each query must still see every row its predicate
// admits exactly once.
func TestSharedScanPredicateComposition(t *testing.T) {
	h := newSynHarness(t, RowIndirect)
	cap := h.ctx.BlockCapacity()
	n := cap*6 + 5
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
	}
	leadLo, leadHi := int64(0), int64(cap*2)
	rideLo, rideHi := int64(cap*4), int64(n)
	leadPred := h.ctx.Predicate().Int64Range("ID", leadLo, leadHi)
	ridePred := h.ctx.Predicate().Int64Range("ID", rideLo, rideHi)

	st := h.m.Stats()
	catchup0 := st.CatchUpBlocks.Load()

	q := &gatedQuery{seen: make(map[int64]int), errc: make(chan error, 1)}
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	go func() {
		q.errc <- h.ctx.Share().Scan(nil, h.s, 1, leadPred, func(slots int) func(int, *Session, *Block) error {
			return func(_ int, _ *Session, b *Block) error {
				once.Do(func() {
					close(parked)
					<-release
				})
				for slot := 0; slot < b.capacity; slot++ {
					if b.SlotIsValid(slot) {
						q.seen[*(*int64)(b.FieldPtr(slot, h.idF))]++
					}
				}
				return nil
			}
		})
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never claimed its first block")
	}

	rs, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	attached0 := st.AttachedQueries.Load()
	rider := make(chan map[int64]int, 1)
	go func() {
		rider <- sharedIDs(t, h, rs, 1, ridePred)
	}()
	waitCounter(t, &st.AttachedQueries, attached0, "AttachedQueries")
	close(release)

	if err := <-q.errc; err != nil {
		t.Fatalf("leader: %v", err)
	}
	riderSeen := <-rider

	check := func(seen map[int64]int, lo, hi int64, who string) {
		t.Helper()
		for id, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("%s: id %d seen %d times", who, id, cnt)
			}
		}
		for id := lo; id <= hi && id < int64(n); id++ {
			if seen[id] != 1 {
				t.Fatalf("%s: in-range id %d seen %d times, want 1", who, id, seen[id])
			}
		}
	}
	check(q.seen, leadLo, leadHi, "leader")
	check(riderSeen, rideLo, rideHi, "rider")
	// The rider's range lives entirely in blocks the leader pruned, so
	// its rows must have arrived via catch-up.
	if st.CatchUpBlocks.Load() == catchup0 {
		t.Fatal("rider range disjoint from shared walk but CatchUpBlocks never moved")
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanAttachWindowCloses: once more than half the shared list
// has been claimed, new queries run privately instead of attaching —
// full results, no AttachedQueries movement.
func TestSharedScanAttachWindowCloses(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	n := h.ctx.BlockCapacity()*6 + 3
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	nblocks := 0
	for _, b := range h.ctx.SnapshotBlocks() {
		if b.Valid() > 0 {
			nblocks++
		}
	}
	threshold := nblocks/2 + 1 // first claim index past the window

	st := h.m.Stats()
	attached0 := st.AttachedQueries.Load()

	q := &gatedQuery{seen: make(map[int64]int), errc: make(chan error, 1)}
	parked := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	go func() {
		q.errc <- h.ctx.Share().Scan(nil, h.s, 1, nil, func(slots int) func(int, *Session, *Block) error {
			return func(_ int, _ *Session, b *Block) error {
				calls++
				if calls == threshold {
					close(parked)
					<-release
				}
				for slot := 0; slot < b.capacity; slot++ {
					if b.SlotIsValid(slot) {
						q.seen[*(*int64)(b.FieldPtr(slot, h.idF))]++
					}
				}
				return nil
			}
		})
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the window threshold")
	}

	// The pass is provably past its attach window; this query must fall
	// back to a private scan and complete while the leader is parked.
	rs, err := h.m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	late := sharedIDs(t, h, rs, 2, nil)
	assertExactlyOnce(t, late, want, "late private query")
	if got := st.AttachedQueries.Load(); got != attached0 {
		t.Fatalf("late query attached (AttachedQueries %d -> %d), want private fallback", attached0, got)
	}
	close(release)
	if err := <-q.errc; err != nil {
		t.Fatalf("leader: %v", err)
	}
	assertExactlyOnce(t, q.seen, want, "leader")
	assertScanQuiesced(t, h)
}

// TestSharedScanFaultAttach: an armed mem.share.attach fault fails the
// scan before any pass state is touched.
func TestSharedScanFaultAttach(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	h.add(t, h.s, 1, "v")
	errInjected := errors.New("injected attach failure")
	defer fault.Enable(map[string]*fault.Rule{
		fault.PointShareAttach: {Every: true, Err: errInjected},
	})()
	ran := false
	err := h.ctx.Share().Scan(nil, h.s, 1, nil, func(slots int) func(int, *Session, *Block) error {
		ran = true
		return func(_ int, _ *Session, _ *Block) error { return nil }
	})
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if ran {
		t.Fatal("attach callback ran despite the injected fault")
	}
	fault.Disarm()
	assertScanQuiesced(t, h)
}

// TestSharedScanChurnStress: staggered shared queries (some attaching
// mid-pass, some cancelled) against add/remove churn with the maintainer
// compacting behind them. Every completed query must see each stable ID
// exactly once and nothing twice; after the storm the session pool and
// epoch pins must balance. Run with -race in CI.
func TestSharedScanChurnStress(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.10,
		PinWaitTimeout:   2 * time.Millisecond,
		HeapBackend:      true,
	})
	// Enough stable blocks that a pass parked on block 0 is still inside
	// its attach window (cursor*2 <= len(shared)) when the followers
	// arrive.
	stableCount := h.ctx.BlockCapacity()*6 + 3
	stable := make(map[int64]bool, stableCount)
	for i := 0; i < stableCount; i++ {
		h.add(t, h.s, int64(i), "stable")
		stable[int64(i)] = true
	}

	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	defer mt.Stop()

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churner feeding the maintainer fragmented blocks
		defer wg.Done()
		s, err := h.m.NewSession()
		if err != nil {
			fail.Store(err.Error())
			return
		}
		defer s.Close()
		next := int64(1) << 40
		var pool []types.Ref
		for {
			select {
			case <-stop:
				return
			default:
			}
			ref, obj, err := h.ctx.Alloc(s)
			if err != nil {
				fail.Store(err.Error())
				return
			}
			*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = next
			next++
			h.ctx.Publish(s, obj)
			pool = append(pool, ref)
			if len(pool) > 4 {
				victim := pool[0]
				pool = pool[1:]
				s.Enter()
				err := h.ctx.Remove(s, victim)
				s.Exit()
				if err != nil {
					fail.Store(fmt.Sprintf("churn remove: %v", err))
					return
				}
			}
		}
	}()

	cycles := 1000
	if testing.Short() {
		cycles = 120
	}
	st := h.m.Stats()
	// runQuery runs one shared scan and checks its result; gate, when
	// non-nil, is called inside the first kernel invocation (the leader
	// parks there so followers land mid-pass).
	runQuery := func(c, i, workers int, cctx context.Context, cancel context.CancelFunc, gate func()) {
		s, err := h.m.NewSession()
		if err != nil {
			fail.Store(err.Error())
			return
		}
		defer s.Close()
		var mu sync.Mutex
		var once sync.Once
		counts := make(map[int64]int)
		err = h.ctx.Share().Scan(cctx, s, workers, nil, func(slots int) func(int, *Session, *Block) error {
			return func(_ int, _ *Session, b *Block) error {
				if gate != nil {
					once.Do(gate)
				}
				local := make([]int64, 0, b.capacity)
				for slot := 0; slot < b.capacity; slot++ {
					if b.SlotIsValid(slot) {
						local = append(local, *(*int64)(b.FieldPtr(slot, h.idF)))
					}
				}
				mu.Lock()
				for _, id := range local {
					counts[id]++
				}
				mu.Unlock()
				return nil
			}
		})
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return // discarded result; only leak-freedom matters
			}
			fail.Store(fmt.Sprintf("cycle %d query %d: %v", c, i, err))
			return
		}
		for id, cnt := range counts {
			if cnt != 1 {
				fail.Store(fmt.Sprintf("cycle %d query %d: id %#x seen %d times", c, i, id, cnt))
				return
			}
		}
		for id := range stable {
			if counts[id] != 1 {
				fail.Store(fmt.Sprintf("cycle %d query %d: stable id %d seen %d times", c, i, id, counts[id]))
				return
			}
		}
	}
	for c := 0; c < cycles && fail.Load() == nil; c++ {
		attached0 := st.AttachedQueries.Load()
		passes0 := st.SharedPasses.Load()
		release := make(chan struct{})
		var qwg sync.WaitGroup
		qwg.Add(1)
		go func(c int) { // leader: parks on block 0 until the followers are aboard
			defer qwg.Done()
			runQuery(c, 0, 1, nil, nil, func() { <-release })
		}(c)
		// Wait for the leader's pass before launching the followers, so
		// they attach to it rather than leading their own.
		deadline := time.Now().Add(5 * time.Second)
		for st.SharedPasses.Load() == passes0 && time.Now().Before(deadline) && fail.Load() == nil {
			time.Sleep(10 * time.Microsecond)
		}
		for i := 1; i <= 2; i++ {
			qwg.Add(1)
			go func(c, i int) {
				defer qwg.Done()
				var cctx context.Context
				var cancel context.CancelFunc
				if (c+i)%5 == 0 {
					cctx, cancel = context.WithCancel(context.Background())
					go cancel() // racing cancel: detach-vs-complete both legal
				}
				runQuery(c, i, 2, cctx, cancel, nil)
			}(c, i)
		}
		// Hold the leader until both followers attached (or failed), then
		// let the pass run.
		for st.AttachedQueries.Load() < attached0+2 && time.Now().Before(deadline) && fail.Load() == nil {
			time.Sleep(10 * time.Microsecond)
		}
		close(release)
		qwg.Wait()
	}
	close(stop)
	wg.Wait()
	mt.Stop()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if st.SharedPasses.Load() == 0 {
		t.Fatal("stress ran without launching a single shared pass")
	}
	if st.AttachedQueries.Load() == 0 {
		t.Fatal("stress ran without a single mid-pass attach")
	}
	assertScanQuiesced(t, h)
}

// TestShareAttachWindowAdaptsToArrivalRate: the attach window is the
// fixed first half at rest, widens to three quarters once a rate bucket
// sees a storm's worth of arrivals, survives one bucket rotation on the
// previous bucket's evidence, and narrows back after two quiet buckets.
// Bucket boundaries are simulated by rewinding rateStart, so the test
// never sleeps through real 100ms buckets.
func TestShareAttachWindowAdaptsToArrivalRate(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	g := h.ctx.Share()
	if num, den, wide := g.attachWindow(); num != 1 || den != shareAttachWindowDen || wide {
		t.Fatalf("zero-stats window = %d/%d widened=%v, want 1/%d narrow", num, den, wide, shareAttachWindowDen)
	}
	for i := 0; i < shareStormArrivals; i++ {
		g.noteArrival()
	}
	if num, den, wide := g.attachWindow(); num != shareAttachWideNum || den != shareAttachWideDen || !wide {
		t.Fatalf("storm window = %d/%d widened=%v, want %d/%d widened", num, den, wide, shareAttachWideNum, shareAttachWideDen)
	}
	// One bucket rotation: the storm bucket becomes the previous bucket
	// and keeps the window wide.
	g.rateStart.Store(time.Now().UnixNano() - int64(shareRateBucket) - 1)
	g.noteArrival()
	if prev := g.ratePrevN.Load(); prev < shareStormArrivals {
		t.Fatalf("rotation carried %d arrivals into the previous bucket, want >= %d", prev, shareStormArrivals)
	}
	if _, _, wide := g.attachWindow(); !wide {
		t.Fatal("window narrowed immediately after the storm bucket closed")
	}
	// Two quiet buckets: the closing bucket is already stale, so the
	// previous-bucket evidence is dropped and the window narrows.
	g.rateStart.Store(time.Now().UnixNano() - 2*int64(shareRateBucket) - 1)
	g.noteArrival()
	if num, den, wide := g.attachWindow(); num != 1 || den != shareAttachWindowDen || wide {
		t.Fatalf("post-quiet window = %d/%d widened=%v, want 1/%d narrow", num, den, wide, shareAttachWindowDen)
	}
	assertScanQuiesced(t, h)
}

// TestSharedScanWideAttachPastHalf: with the storm window armed, a rider
// arriving after the pass crossed the fixed half boundary still boards
// (and WideAttaches counts it); the same cursor would have been rejected
// by the narrow window. The leader is parked inside block 4 of 8, so the
// cursor sits at 5: past 8/2, within 3*8/4.
func TestSharedScanWideAttachPastHalf(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	const nBlocks = 8
	n := h.ctx.BlockCapacity() * nBlocks
	want := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		h.add(t, h.s, int64(i), "v")
		want[int64(i)] = 1
	}
	const parkCursor = 5 // kernel parked inside block 4
	if parkCursor*shareAttachWindowDen <= nBlocks {
		t.Fatalf("park point %d is inside the narrow window for %d blocks; the test would not exercise widening", parkCursor, nBlocks)
	}
	if parkCursor*shareAttachWideDen > nBlocks*shareAttachWideNum {
		t.Fatalf("park point %d is outside even the widened window for %d blocks", parkCursor, nBlocks)
	}
	st := h.m.Stats()
	attached0 := st.AttachedQueries.Load()
	wide0 := st.WideAttaches.Load()
	catchup0 := st.CatchUpBlocks.Load()

	// Arm the storm before the leader starts so the window is already
	// wide when the late rider knocks.
	g := h.ctx.Share()
	for i := 0; i < shareStormArrivals; i++ {
		g.noteArrival()
	}

	release := make(chan struct{})
	parked := make(chan struct{})
	var calls atomic.Int64
	var mu sync.Mutex
	leaderSeen := make(map[int64]int)
	leaderErr := make(chan error, 1)
	go func() {
		leaderErr <- g.Scan(nil, h.s, 1, nil, func(slots int) func(int, *Session, *Block) error {
			return func(_ int, _ *Session, b *Block) error {
				if calls.Add(1) == parkCursor {
					close(parked)
					<-release
				}
				mu.Lock()
				for slot := 0; slot < b.capacity; slot++ {
					if b.SlotIsValid(slot) {
						leaderSeen[*(*int64)(b.FieldPtr(slot, h.idF))]++
					}
				}
				mu.Unlock()
				return nil
			}
		})
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the park cursor")
	}

	var riderMu sync.Mutex
	riderSeen := make(map[int64]int)
	riderErr, rs := attachRider(t, h, func(slots int) func(int, *Session, *Block) error {
		return func(_ int, _ *Session, b *Block) error {
			riderMu.Lock()
			for slot := 0; slot < b.capacity; slot++ {
				if b.SlotIsValid(slot) {
					riderSeen[*(*int64)(b.FieldPtr(slot, h.idF))]++
				}
			}
			riderMu.Unlock()
			return nil
		}
	}, nil)
	defer rs.Close()
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-riderErr; err != nil {
		t.Fatalf("rider: %v", err)
	}
	assertExactlyOnce(t, leaderSeen, want, "leader")
	assertExactlyOnce(t, riderSeen, want, "rider")
	if got := st.AttachedQueries.Load() - attached0; got != 1 {
		t.Fatalf("AttachedQueries moved by %d, want 1", got)
	}
	if got := st.WideAttaches.Load() - wide0; got != 1 {
		t.Fatalf("WideAttaches moved by %d, want 1: the attach past the half boundary must be credited to the widened window", got)
	}
	if st.CatchUpBlocks.Load() == catchup0 {
		t.Fatal("rider attached past half but CatchUpBlocks never moved")
	}
	assertScanQuiesced(t, h)
}
