package mem

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/types"
)

// ErrNullReference is returned when dereferencing (or removing through) a
// reference whose object has been removed from its host collection: "all
// references to a self-managed object implicitly become null after
// removing the object" (§2).
var ErrNullReference = errors.New("mem: null reference (object removed or never assigned)")

var errStringTooLong = fmt.Errorf("mem: string exceeds %d bytes", types.MaxStringLen)

// Alloc reserves a memory slot and an indirection entry for a new object
// in this context, returning the reference and the slot location. The
// caller writes the object's fields through the returned Obj and then
// calls Publish to make the slot visible to enumerations. Allocation is
// performed from session-local blocks (§3.5), so no lock is taken on the
// fast path.
func (c *Context) Alloc(s *Session) (types.Ref, Obj, error) {
	m := c.mgr
	var blk *Block
	var slot int
	for {
		blk = s.allocBlocks[c.id]
		if blk == nil {
			b, err := c.grabAllocBlock(s)
			if err != nil {
				return types.Ref{}, Obj{}, err
			}
			s.allocBlocks[c.id] = b
			blk = b
		}
		var ok bool
		slot, ok = c.findSlot(blk)
		if ok {
			break
		}
		// Block exhausted: abandon it and pick another.
		s.abandonAllocBlock(c.id, blk)
		s.allocBlocks[c.id] = nil
	}

	e, inc, err := c.prepareEntry(s, blk, slot)
	if err != nil {
		return types.Ref{}, Obj{}, err
	}
	blk.setBackEntry(slot, e)
	ref := types.Ref{Entry: e, Inc: inc, Gen: loadGen(e)}
	m.stats.Allocs.Add(1)
	return ref, Obj{Blk: blk, Slot: slot, Ptr: c.objPtr(blk, slot)}, nil
}

// objPtr computes the data pointer for row layouts (nil for columnar).
func (c *Context) objPtr(blk *Block, slot int) unsafe.Pointer {
	if c.layout == Columnar {
		return nil
	}
	return blk.SlotData(slot)
}

// prepareEntry wires an indirection entry to the slot and determines the
// incarnation number the new object's references will carry.
func (c *Context) prepareEntry(s *Session, blk *Block, slot int) (entryRef, uint32, error) {
	for {
		e, err := s.entryAlloc()
		if err != nil {
			return nil, 0, err
		}
		switch c.layout {
		case Columnar:
			storePayload(e, packColumnar(blk.id, slot))
		default:
			storePayload(e, uint64(uintptr(blk.SlotData(slot))))
		}
		switch c.layout {
		case RowDirect:
			// Incarnation authority lives in the slot header (§6).
			w := atomic.LoadUint32(blk.slotHeaderPtr(slot)) & IncMask
			// Mirror into the entry for diagnostics.
			atomic.StoreUint32(entryIncPtr(e), w)
			return e, w, nil
		default:
			// Incarnation authority lives in the entry (§3.2). A
			// recycled entry continues its incarnation sequence; an
			// entry at MaxInc must never host a new object, because
			// old references could alias it. Retire it and take
			// another (§3.1's overflow rule).
			w := atomic.LoadUint32(entryIncPtr(e)) & IncMask
			if w >= MaxInc {
				continue // entry leaked deliberately (retired)
			}
			return e, w, nil
		}
	}
}

// Publish makes an allocated slot visible as a valid object. Field data
// must be fully written before Publish; enumerating queries only read
// slots whose directory state is valid. The block's column synopses
// widen first, so any scan that admits the slot also sees bounds
// covering it (synopsis.go).
func (c *Context) Publish(s *Session, o Obj) {
	if o.Blk.buried.Load() {
		panic("mem: Publish into a buried block")
	}
	c.widenSynopses(o.Blk, o.Slot)
	o.Blk.storeSlotDir(o.Slot, packSlotDir(slotValid, 0))
	o.Blk.validCount.Add(1)
}

// grabAllocBlock implements the paper's block acquisition policy (§3.5):
// prefer a ripe block from the reclamation queue; if blocks are waiting
// but not ripe, lazily try to advance the global epoch and re-check; fall
// back to a fresh block from the unmanaged heap.
func (c *Context) grabAllocBlock(s *Session) (*Block, error) {
	b, waiting := c.takeReclaimable()
	if b == nil && waiting {
		c.mgr.TryAdvanceEpoch()
		b, _ = c.takeReclaimable()
	}
	if b != nil {
		// Ownership was claimed (CAS) inside takeReclaimable.
		return b, nil
	}
	nb, err := newBlock(c)
	if err != nil {
		return nil, err
	}
	nb.allocOwned.Store(true)
	c.appendBlock(nb)
	return nb, nil
}

// abandonAllocBlock releases a session's claim on its allocation block
// and re-checks the reclamation threshold it may have crossed while
// owned. Abandonment is also the allocation-pressure signal point: an
// abandon only ever changes the abandoned block's own compaction
// candidacy, so the Maintainer wake-up check runs exactly when this
// block comes out sparse (a dense bulk load abandons full blocks and
// pays one O(1) candidacy test per block, never a context walk).
func (s *Session) abandonAllocBlock(ctxID uint32, b *Block) {
	b.allocOwned.Store(false)
	b.ctx.enqueueReclaim(b)
	if s.mgr.isCompactionCandidate(b) {
		s.mgr.signalAllocPressure()
	}
}

// findSlot scans the slot directory from the allocation cursor for a free
// slot or a ripe limbo slot (§3.5). Returns the claimed slot, or false if
// the block is exhausted. Only the owning session calls this.
func (c *Context) findSlot(b *Block) (int, bool) {
	g := c.mgr.ep.Global()
	n := b.capacity
	i := b.cursor
	for scanned := 0; scanned < n; scanned++ {
		if i >= n {
			i = 0
		}
		w := b.SlotDirWord(i)
		switch slotDirState(w) {
		case slotFree:
			b.cursor = i + 1
			return i, true
		case slotLimbo:
			if slotEpochRipe(slotDirEpoch(w), g) {
				c.reclaimSlot(b, i)
				b.cursor = i + 1
				return i, true
			}
		}
		i++
	}
	return 0, false
}

// reclaimSlot reuses a ripe limbo slot: the old object's string storage
// is released now (no grace-period reader can still hold it), and the
// slot leaves limbo accounting. The slot directory stays limbo until
// Publish so concurrent enumerations keep skipping it.
func (c *Context) reclaimSlot(b *Block, slot int) {
	c.freeSlotStrings(b, slot)
	b.limboCount.Add(-1)
	c.mgr.stats.SlotsReclaimed.Add(1)
}

// freeSlotStrings releases the string payloads referenced by a dead slot.
func (c *Context) freeSlotStrings(b *Block, slot int) {
	for _, fi := range c.sch.StringFields {
		f := &c.sch.Fields[fi]
		p := (*types.StrRef)(b.FieldPtr(slot, f))
		if sr := *p; !sr.IsNil() {
			c.strings.freeStr(sr)
			*p = 0
		}
	}
}

// AllocString copies s into the context's string heap on behalf of the
// collection layer's marshalling code.
func (c *Context) AllocString(s *Session, str string) (types.StrRef, error) {
	return c.strings.allocStr(s, str)
}

// FreeString releases a string that was allocated but whose object failed
// to publish (error unwinding), or that is being replaced by an update.
// The caller must guarantee no concurrent reader holds it.
func (c *Context) FreeString(sr types.StrRef) { c.strings.freeStr(sr) }

// Remove frees the object named by ref (§3.5): it bumps the incarnation
// so all references become null, marks the slot limbo with the current
// epoch, and queues the block for reclamation when the limbo threshold is
// crossed. Must be called inside a critical section.
func (c *Context) Remove(s *Session, ref types.Ref) error {
	if !s.InCritical() {
		panic("mem: Remove outside critical section")
	}
	if ref.IsNil() {
		return ErrNullReference
	}
	e := entryRef(ref.Entry)
	if loadGen(e) != ref.Gen {
		return ErrNullReference
	}
	// Pre-validate against the entry before chasing the payload (see
	// Deref for why: stale payloads may point into unmapped blocks).
	if loadInc(e)&IncMask != ref.Inc {
		return ErrNullReference
	}
	m := c.mgr

	var blk *Block
	var slot int
	var cell *uint32
	var w uint32
	for {
		// Resolve the current location each attempt: a concurrent
		// relocation may move the object between retries.
		payload := loadPayload(e)
		switch c.layout {
		case Columnar:
			id, sl := unpackColumnar(payload)
			blk = m.blockByID(id)
			slot = sl
			cell = entryIncPtr(e)
		default:
			p := payloadAddr(payload)
			blk = m.blockFromAddr(p)
			if blk == nil {
				return ErrNullReference
			}
			slot = blk.slotIndexFromData(p)
			if c.layout == RowDirect {
				cell = blk.slotHeaderPtr(slot)
			} else {
				cell = entryIncPtr(e)
			}
		}
		if blk == nil {
			return ErrNullReference
		}
		w = atomic.LoadUint32(cell)
		if w&IncMask != ref.Inc {
			return ErrNullReference
		}
		if w&FlagMask != 0 {
			// Coordinate with an in-flight relocation, then retry
			// ("this requires free to also use cas to increment
			// incarnation numbers", §5.1 fn. 2).
			c.resolveForWrite(s, blk, slot, cell, w)
			continue
		}
		if atomic.CompareAndSwapUint32(cell, w, (w+1)&IncMask) {
			break
		}
	}

	// In indirect layouts a relocation can complete between the payload
	// read above and the successful CAS while leaving the incarnation
	// word at the identical clean value (freeze → lock → unfreeze is an
	// ABA). The CAS fences the entry: no further move can start (its
	// freeze CAS expects the old incarnation) and any completed move has
	// already published its payload, so re-reading the payload now gives
	// the object's authoritative location. Direct mode needs no re-read:
	// its CAS was on the slot header, which a relocation turns into a
	// FORWARD-flagged word, failing the CAS outright.
	if c.layout != RowDirect {
		payload := loadPayload(e)
		switch c.layout {
		case Columnar:
			id, sl := unpackColumnar(payload)
			blk = m.blockByID(id)
			slot = sl
		default:
			p := payloadAddr(payload)
			blk = m.blockFromAddr(p)
			if blk != nil {
				slot = blk.slotIndexFromData(p)
			}
		}
		if blk == nil {
			// Unreachable in a correct system; fail loudly in tests.
			panic("mem: removed object's payload resolves to no block")
		}
	}

	g := m.ep.Global()
	blk.storeSlotDir(slot, packSlotDir(slotLimbo, g))
	blk.validCount.Add(-1)
	blk.limboCount.Add(1)

	newInc := (w + 1) & IncMask
	retire := newInc >= MaxInc
	switch c.layout {
	case RowDirect:
		// Maintain the entry's incarnation mirror so stale external
		// references fail fast without touching slot memory.
		atomic.StoreUint32(entryIncPtr(e), newInc)
		if retire {
			// The slot's incarnation is exhausted: take it out of
			// circulation until the overflow rescue scan has nulled all
			// stale direct pointers to it (§3.1). Identified by the
			// retired slot-directory state.
			blk.storeSlotDir(slot, packSlotDir(slotRetired, g))
			blk.limboCount.Add(-1)
			c.freeSlotStrings(blk, slot)
			m.stats.SlotsRetired.Add(1)
		}
		s.entryFree(e)
	default:
		if !retire {
			s.entryFree(e)
		} else {
			// The entry leaves circulation until the rescue scan clears
			// the stale references naming it (§3.1); the slot itself
			// remains reusable because its identity lives in the entry.
			m.retiredMu.Lock()
			m.retiredEntries = append(m.retiredEntries, retiredEntry{e: e, ctx: c})
			m.retiredMu.Unlock()
			m.stats.EntriesRetired.Add(1)
		}
	}
	m.stats.Frees.Add(1)
	c.enqueueReclaim(blk)
	return nil
}
