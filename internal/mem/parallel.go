package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel block-sharded scans. The block/slot-directory design is
// embarrassingly parallel by construction: blocks are independent scan
// units, and the §5.2 compaction protocol synchronizes on compaction
// groups, not on individual readers. A parallel scan therefore needs
// exactly one piece of shared coordination — the enumeration's view of
// the world — and can fan the actual block work out to any number of
// workers.
//
// Protocol ("one decision pass, N worker sessions, merge step"):
//
//  1. A coordinator session takes one block-order snapshot and makes the
//     §5.2 pre/post decision for every compaction group it encounters,
//     exactly once per enumeration — never per worker — pinning pre-state
//     groups and waiting out (helping) moving ones. The result is one
//     resolved block list with exactly-once semantics.
//  2. The coordinator's critical section stays pinned at the snapshot
//     epoch (no Refresh) until the scan closes. That pin is load-bearing:
//     a compaction planned after our snapshot can never complete its
//     freezing/relocation epoch waits while we hold it, so it aborts
//     without moving anything (§5.1's bail-out path) and the resolved
//     list stays authoritative. It also keeps every snapshot block's
//     memory mapped: burials ripen two epochs after the pin, which the
//     pinned epoch can never reach.
//  3. Workers — each with its own registered Session in its own critical
//     section — claim block indices from an atomic cursor (work
//     stealing: fast workers drain the tail, no static partitioning
//     imbalance).
//
// ErrStopScan is the cooperative early-stop signal: a worker returning it
// stops the whole scan without reporting an error.
var ErrStopScan = errors.New("mem: scan stopped early")

// ParallelScan is a resolved, shardable enumeration of one context. It is
// created by NewParallelScan, drained from any number of goroutines via
// Next, and must be Closed to release its group pins and the
// coordinator's critical section.
type ParallelScan struct {
	coord  *Session
	blocks []*Block
	pinned []*CompactionGroup
	cursor atomic.Int64
	stop   atomic.Bool
	closed bool
}

// NewParallelScan snapshots the context's block order and resolves every
// §5.2 compaction-group decision once, returning a scan whose block list
// can be drained concurrently. It enters a critical section on the
// coordinator session and holds it — without refreshing — until Close;
// the caller must not Refresh the coordinator while the scan is open.
func (c *Context) NewParallelScan(s *Session) *ParallelScan {
	return c.NewParallelScanPred(s, nil)
}

// NewParallelScanPred is NewParallelScan with a scan predicate: the
// coordinator's decision pass evaluates pred's interval constraints
// against each block's synopsis bounds exactly once, so pruned blocks
// never enter the resolved block list — workers, the work-stealing
// cursor and per-worker sessions never see them. Pruning is sound, not
// exact: workers keep evaluating the residual predicate per row.
func (c *Context) NewParallelScanPred(s *Session, pred *ScanPredicate) *ParallelScan {
	if pred != nil && pred.ctx != c {
		panic("mem: scan predicate built for a different context")
	}
	s.Enter()
	e := &Enumerator{ctx: c, sess: s, blocks: c.SnapshotBlocks(), noRefresh: true, pred: pred}
	var blocks []*Block
	for {
		b, ok := e.NextBlock()
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}
	ps := &ParallelScan{coord: s, blocks: blocks, pinned: e.pinned}
	// Steal the enumerator's pins: they now belong to the scan and are
	// released by ParallelScan.Close, not by the resolution pass.
	e.pinned = nil
	e.closed = true
	return ps
}

// NumBlocks returns the number of resolved blocks the scan will visit.
func (ps *ParallelScan) NumBlocks() int { return len(ps.blocks) }

// Next claims the next unscanned block for a worker, or returns false
// when the list is drained (or the scan was stopped). ws is the calling
// worker's session; it is refreshed between blocks (pass nil to skip,
// e.g. when driving the scan on the pinned coordinator session).
func (ps *ParallelScan) Next(ws *Session) (*Block, bool) {
	if ps.stop.Load() {
		return nil, false
	}
	i := int(ps.cursor.Add(1)) - 1
	if i >= len(ps.blocks) {
		return nil, false
	}
	if ws != nil && i > 0 {
		ws.Refresh()
	}
	return ps.blocks[i], true
}

// Stop makes all subsequent Next calls return false, ending the scan
// early across every worker.
func (ps *ParallelScan) Stop() { ps.stop.Store(true) }

// Close releases the scan's group pins and the coordinator's critical
// section. Always call it (defer) once the scan ends.
func (ps *ParallelScan) Close() {
	if ps.closed {
		return
	}
	ps.closed = true
	for _, g := range ps.pinned {
		g.pins.Add(-1)
	}
	ps.pinned = nil
	ps.coord.Exit()
}

// ScanParallel resolves the context once and shards its blocks across
// `workers` goroutines, each with its own freshly registered Session
// inside its own critical section. fn is invoked once per resolved block;
// returning ErrStopScan stops the scan cleanly, any other error stops it
// and is returned. With workers <= 1 (or a single resolved block) the
// scan runs inline on the coordinator session with zero goroutine
// overhead, which keeps 1-worker baselines honest.
func (c *Context) ScanParallel(coord *Session, workers int, fn func(worker int, ws *Session, b *Block) error) error {
	return c.ScanParallelPred(coord, workers, nil, fn)
}

// ScanParallelPred is ScanParallel with a scan predicate pushed into the
// coordinator's resolution pass (see NewParallelScanPred).
func (c *Context) ScanParallelPred(coord *Session, workers int, pred *ScanPredicate, fn func(worker int, ws *Session, b *Block) error) error {
	ps := c.NewParallelScanPred(coord, pred)
	defer ps.Close()
	if workers > len(ps.blocks) {
		workers = len(ps.blocks)
	}
	if workers <= 1 {
		for {
			b, ok := ps.Next(nil)
			if !ok {
				return nil
			}
			if err := fn(0, coord, b); err != nil {
				if errors.Is(err, ErrStopScan) {
					return nil
				}
				return err
			}
		}
	}

	// Worker sessions come from the manager's session pool: a small scan
	// must not pay N epoch-slot registrations per invocation, and the
	// sessions' entry/string caches stay warm across scans.
	sessions := make([]*Session, workers)
	for i := range sessions {
		ws, err := c.mgr.LeaseSession()
		if err != nil {
			for _, s := range sessions[:i] {
				c.mgr.ReturnSession(s)
			}
			return fmt.Errorf("mem: parallel scan worker session: %w", err)
		}
		sessions[i] = ws
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sessions[w]
			ws.Enter()
			defer ws.Exit()
			for {
				b, ok := ps.Next(ws)
				if !ok {
					return
				}
				if err := fn(w, ws, b); err != nil {
					ps.Stop()
					if !errors.Is(err, ErrStopScan) {
						errs[w] = err
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, s := range sessions {
		c.mgr.ReturnSession(s)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
