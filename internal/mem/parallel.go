package mem

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// Parallel block-sharded scans. The block/slot-directory design is
// embarrassingly parallel by construction: blocks are independent scan
// units, and the §5.2 compaction protocol synchronizes on compaction
// groups, not on individual readers. A parallel scan therefore needs
// exactly one piece of shared coordination — the enumeration's view of
// the world — and can fan the actual block work out to any number of
// workers.
//
// Protocol ("one decision pass, N worker sessions, merge step"):
//
//  1. A coordinator session takes one block-order snapshot and makes the
//     §5.2 pre/post decision for every compaction group it encounters,
//     exactly once per enumeration — never per worker — pinning pre-state
//     groups and waiting out (helping) moving ones. The result is one
//     resolved block list with exactly-once semantics.
//  2. The coordinator's critical section stays pinned at the snapshot
//     epoch (no Refresh) until the scan closes. That pin is load-bearing:
//     a compaction planned after our snapshot can never complete its
//     freezing/relocation epoch waits while we hold it, so it aborts
//     without moving anything (§5.1's bail-out path) and the resolved
//     list stays authoritative. It also keeps every snapshot block's
//     memory mapped: burials ripen two epochs after the pin, which the
//     pinned epoch can never reach.
//  3. Workers — each with its own registered Session in its own critical
//     section — claim block indices from an atomic cursor (work
//     stealing: fast workers drain the tail, no static partitioning
//     imbalance).
//
// Robustness contract: scans are cancellable at block-claim granularity
// (one non-blocking channel poll per claimed block, skipped entirely for
// Background contexts) and panic-isolated (a kernel panic in any worker
// unwinds that worker, stops the scan, and surfaces as an ErrWorkerPanic
// error on the caller — sessions, pins and the coordinator's critical
// section are still released exactly once).
//
// ErrStopScan is the cooperative early-stop signal: a worker returning it
// stops the whole scan without reporting an error.
var ErrStopScan = errors.New("mem: scan stopped early")

// ErrWorkerPanic wraps a panic recovered from a scan, merge or compaction
// worker goroutine: the failure is scoped to the operation that ran the
// kernel, not the process. Inspect with errors.Is.
var ErrWorkerPanic = errors.New("mem: worker panicked")

// recoverToError converts a recovered panic value into an ErrWorkerPanic-
// wrapped error, preserving fault.PanicValue and error payloads.
func recoverToError(r any) error {
	switch v := r.(type) {
	case error:
		return fmt.Errorf("%w: %w", ErrWorkerPanic, v)
	default:
		return fmt.Errorf("%w: %v", ErrWorkerPanic, v)
	}
}

// ParallelScan is a resolved, shardable enumeration of one context. It is
// created by NewParallelScan, drained from any number of goroutines via
// Next, and must be Closed to release its group pins and the
// coordinator's critical section.
type ParallelScan struct {
	coord  *Session
	blocks []*Block
	pinned []*CompactionGroup
	cursor atomic.Int64
	stop   atomic.Bool
	closed bool

	// done/cause mirror Enumerator's cancellation plumbing: Next polls
	// done once per claimed block; nil (Background) costs nothing.
	done  <-chan struct{}
	cause func() error
	err   atomic.Pointer[error]
}

// NewParallelScan snapshots the context's block order and resolves every
// §5.2 compaction-group decision once, returning a scan whose block list
// can be drained concurrently. It enters a critical section on the
// coordinator session and holds it — without refreshing — until Close;
// the caller must not Refresh the coordinator while the scan is open.
func (c *Context) NewParallelScan(s *Session) *ParallelScan {
	return c.NewParallelScanPred(s, nil)
}

// NewParallelScanPred is NewParallelScan with a scan predicate: the
// coordinator's decision pass evaluates pred's interval constraints
// against each block's synopsis bounds exactly once, so pruned blocks
// never enter the resolved block list — workers, the work-stealing
// cursor and per-worker sessions never see them. Pruning is sound, not
// exact: workers keep evaluating the residual predicate per row.
func (c *Context) NewParallelScanPred(s *Session, pred *ScanPredicate) *ParallelScan {
	return c.NewParallelScanPredCtx(context.Background(), s, pred)
}

// NewParallelScanPredCtx is NewParallelScanPred with a cancellation
// context: the coordinator's resolution pass checks cctx between blocks
// (aborting the fan-out early), and every subsequent Next polls it once
// per claimed block, so a canceled scan returns within one block's work.
// The scan must still be Closed — cancellation never leaks pins or the
// coordinator's critical section. Err reports the cause.
func (c *Context) NewParallelScanPredCtx(cctx context.Context, s *Session, pred *ScanPredicate) *ParallelScan {
	if pred != nil && pred.ctx != c {
		panic(errPredWrongContext)
	}
	s.Enter()
	e := &Enumerator{ctx: c, sess: s, blocks: c.SnapshotBlocks(), noRefresh: true, pred: pred}
	ps := &ParallelScan{coord: s}
	if cctx != nil {
		if done := cctx.Done(); done != nil {
			ps.done = done
			ps.cause = func() error { return context.Cause(cctx) }
			e.done = done
			e.cause = ps.cause
		}
	}
	var blocks []*Block
	for {
		b, ok := e.NextBlock()
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}
	if e.err != nil {
		// Canceled mid-resolution: keep whatever pins were taken (Close
		// releases them) but never hand a block to a worker.
		ps.stop.Store(true)
		ps.setErr(e.err)
	}
	ps.blocks = blocks
	ps.pinned = e.pinned
	// Steal the enumerator's pins: they now belong to the scan and are
	// released by ParallelScan.Close, not by the resolution pass.
	e.pinned = nil
	e.closed = true
	return ps
}

// NumBlocks returns the number of resolved blocks the scan will visit.
func (ps *ParallelScan) NumBlocks() int { return len(ps.blocks) }

// setErr records the scan's first error; later ones lose the race.
func (ps *ParallelScan) setErr(err error) {
	if err != nil {
		ps.err.CompareAndSwap(nil, &err)
	}
}

// Err reports why the scan ended early: the cancellation cause after a
// canceled scan, nil otherwise.
func (ps *ParallelScan) Err() error {
	if p := ps.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Next claims the next unscanned block for a worker, or returns false
// when the list is drained (or the scan was stopped or canceled). ws is
// the calling worker's session; it is refreshed between blocks (pass nil
// to skip, e.g. when driving the scan on the pinned coordinator session).
func (ps *ParallelScan) Next(ws *Session) (*Block, bool) {
	if ps.stop.Load() {
		return nil, false
	}
	if ps.done != nil {
		select {
		case <-ps.done:
			ps.setErr(ps.cause())
			ps.stop.Store(true)
			return nil, false
		default:
		}
	}
	i := int(ps.cursor.Add(1)) - 1
	if i >= len(ps.blocks) {
		return nil, false
	}
	if ws != nil && i > 0 {
		ws.Refresh()
	}
	fault.Point(fault.PointScanBlock)
	return ps.blocks[i], true
}

// Stop makes all subsequent Next calls return false, ending the scan
// early across every worker.
func (ps *ParallelScan) Stop() { ps.stop.Store(true) }

// Close releases the scan's group pins and the coordinator's critical
// section. Always call it (defer) once the scan ends.
func (ps *ParallelScan) Close() {
	if ps.closed {
		return
	}
	ps.closed = true
	for _, g := range ps.pinned {
		g.pins.Add(-1)
	}
	ps.pinned = nil
	ps.coord.Exit()
}

// ScanParallel resolves the context once and shards its blocks across
// `workers` goroutines, each with its own freshly registered Session
// inside its own critical section. fn is invoked once per resolved block;
// returning ErrStopScan stops the scan cleanly, any other error stops it
// and is returned. With workers <= 1 (or a single resolved block) the
// scan runs inline on the coordinator session with zero goroutine
// overhead, which keeps 1-worker baselines honest.
func (c *Context) ScanParallel(coord *Session, workers int, fn func(worker int, ws *Session, b *Block) error) error {
	return c.ScanParallelPredCtx(context.Background(), coord, workers, nil, fn)
}

// ScanParallelCtx is ScanParallel with a cancellation context; see
// ScanParallelPredCtx.
func (c *Context) ScanParallelCtx(cctx context.Context, coord *Session, workers int, fn func(worker int, ws *Session, b *Block) error) error {
	return c.ScanParallelPredCtx(cctx, coord, workers, nil, fn)
}

// ScanParallelPred is ScanParallel with a scan predicate pushed into the
// coordinator's resolution pass (see NewParallelScanPred).
func (c *Context) ScanParallelPred(coord *Session, workers int, pred *ScanPredicate, fn func(worker int, ws *Session, b *Block) error) error {
	return c.ScanParallelPredCtx(context.Background(), coord, workers, pred, fn)
}

// ScanParallelPredCtx is the full-contract scan driver: predicate
// pushdown, cancellation, and panic isolation. Cancellation is observed
// at block-claim granularity, so a canceled scan returns within one
// block's work and the context's cause is returned. A panicking fn
// unwinds only its worker: the scan stops, every worker session exits
// its critical section and returns to the pool, and the panic surfaces
// as an ErrWorkerPanic-wrapped error. With a Background context and a
// non-panicking fn the workers=1 path is byte-for-byte the serial
// oracle.
func (c *Context) ScanParallelPredCtx(cctx context.Context, coord *Session, workers int, pred *ScanPredicate, fn func(worker int, ws *Session, b *Block) error) error {
	ps := c.NewParallelScanPredCtx(cctx, coord, pred)
	defer ps.Close()
	if workers > len(ps.blocks) {
		workers = len(ps.blocks)
	}
	if workers <= 1 {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = recoverToError(r)
				}
			}()
			for {
				b, ok := ps.Next(nil)
				if !ok {
					return nil
				}
				if err := fn(0, coord, b); err != nil {
					return err
				}
			}
		}()
		if err != nil && !errors.Is(err, ErrStopScan) {
			return err
		}
		return ps.Err()
	}

	// Worker sessions come from the manager's session pool: a small scan
	// must not pay N epoch-slot registrations per invocation, and the
	// sessions' entry/string caches stay warm across scans.
	sessions := make([]*Session, workers)
	for i := range sessions {
		ws, err := c.mgr.LeaseSession()
		if err != nil {
			for _, s := range sessions[:i] {
				c.mgr.ReturnSession(s)
			}
			return fmt.Errorf("mem: parallel scan worker session: %w", err)
		}
		sessions[i] = ws
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sessions[w]
			ws.Enter()
			defer ws.Exit()
			// Panic isolation: a kernel panic must not kill the process
			// with the session in a critical section and the scan's pins
			// held. The deferred Exit and the caller's ReturnSession and
			// ps.Close still run, so the unwind is complete.
			defer func() {
				if r := recover(); r != nil {
					ps.Stop()
					errs[w] = recoverToError(r)
				}
			}()
			for {
				b, ok := ps.Next(ws)
				if !ok {
					return
				}
				if err := fn(w, ws, b); err != nil {
					ps.Stop()
					if !errors.Is(err, ErrStopScan) {
						errs[w] = err
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, s := range sessions {
		c.mgr.ReturnSession(s)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ps.Err()
}
