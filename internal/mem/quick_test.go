package mem

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/types"
)

// Property: for any sequence of add/remove/advance-epoch operations, the
// collection's live set exactly matches a reference map — every live
// reference resolves to its value, every removed reference is null, and
// enumeration sees exactly the live IDs.
func TestQuickAddRemoveSequences(t *testing.T) {
	for _, layout := range allLayouts() {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				h := newQuickHarness(t, layout)
				defer h.close()

				type liveObj struct {
					ref types.Ref
					id  int64
				}
				var live []liveObj
				var dead []liveObj
				nextID := int64(0)

				for op := 0; op < 400; op++ {
					switch r := rng.Intn(10); {
					case r < 5 || len(live) == 0: // add
						id := nextID
						nextID++
						ref := h.add(id, fmt.Sprintf("v%d", id))
						live = append(live, liveObj{ref, id})
					case r < 8: // remove random live
						i := rng.Intn(len(live))
						if err := h.remove(live[i].ref); err != nil {
							t.Logf("remove live: %v", err)
							return false
						}
						dead = append(dead, live[i])
						live = append(live[:i], live[i+1:]...)
					case r < 9: // advance epochs (enables reuse)
						h.m.TryAdvanceEpoch()
					default: // deref a dead ref: must stay null
						if len(dead) > 0 {
							d := dead[rng.Intn(len(dead))]
							if _, _, err := h.get(d.ref); err != ErrNullReference {
								t.Logf("dead ref %d resolved: %v", d.id, err)
								return false
							}
						}
					}
				}
				// Final validation.
				if h.ctx.Len() != len(live) {
					t.Logf("Len=%d want %d", h.ctx.Len(), len(live))
					return false
				}
				for _, lo := range live {
					id, name, err := h.get(lo.ref)
					if err != nil || id != lo.id || name != fmt.Sprintf("v%d", lo.id) {
						t.Logf("live ref %d: (%d,%q,%v)", lo.id, id, name, err)
						return false
					}
				}
				for _, d := range dead {
					if _, _, err := h.get(d.ref); err != ErrNullReference {
						t.Logf("dead ref %d not null: %v", d.id, err)
						return false
					}
				}
				seen := map[int64]bool{}
				h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
					seen[*(*int64)(b.FieldPtr(slot, h.idF))] = true
					return true
				})
				if len(seen) != len(live) {
					t.Logf("enumerated %d want %d", len(seen), len(live))
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: compaction never changes the observable contents, for any
// random churn pattern.
func TestQuickCompactionPreservesContents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newQuickHarness(t, RowIndirect)
		defer h.close()

		refs := map[int64]types.Ref{}
		n := 300 + rng.Intn(300)
		for i := 0; i < n; i++ {
			refs[int64(i)] = h.add(int64(i), fmt.Sprintf("q%d", i))
		}
		h.s.allocBlocks[h.ctx.id] = nil
		for _, b := range h.ctx.SnapshotBlocks() {
			b.allocOwned.Store(false)
		}
		// Remove a random subset.
		for id, r := range refs {
			if rng.Intn(100) < 70 {
				if err := h.remove(r); err != nil {
					return false
				}
				delete(refs, id)
			}
		}
		if _, err := h.m.CompactNow(); err != nil {
			t.Logf("compact: %v", err)
			return false
		}
		for id, r := range refs {
			got, name, err := h.get(r)
			if err != nil || got != id || name != fmt.Sprintf("q%d", id) {
				t.Logf("after compaction ref %d: (%d,%q,%v)", id, got, name, err)
				return false
			}
		}
		return h.ctx.Len() == len(refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the string heap round-trips arbitrary byte strings and
// recycles storage without corrupting other live strings.
func TestQuickStringHeapRoundTrip(t *testing.T) {
	h := newQuickHarness(t, RowIndirect)
	defer h.close()
	heap := h.ctx.strings

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type entry struct {
			sr  types.StrRef
			val string
		}
		var liveStrs []entry
		for op := 0; op < 200; op++ {
			if rng.Intn(3) != 0 || len(liveStrs) == 0 {
				n := rng.Intn(300)
				b := make([]byte, n)
				for i := range b {
					b[i] = byte(rng.Intn(256))
				}
				s := string(b)
				sr, err := heap.allocStr(h.s, s)
				if err != nil {
					t.Logf("alloc: %v", err)
					return false
				}
				liveStrs = append(liveStrs, entry{sr, s})
			} else {
				i := rng.Intn(len(liveStrs))
				heap.freeStr(liveStrs[i].sr)
				liveStrs = append(liveStrs[:i], liveStrs[i+1:]...)
			}
		}
		for _, e := range liveStrs {
			if e.sr.String() != e.val {
				t.Logf("string corrupted: got %q want %q", e.sr.String(), e.val)
				return false
			}
		}
		for _, e := range liveStrs {
			heap.freeStr(e.sr)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// quickHarness is a lighter harness for property tests (no *testing.T
// binding in the hot path).
type quickHarness struct {
	m    *Manager
	ctx  *Context
	s    *Session
	idF  *schema.Field
	nmF  *schema.Field
	done func()
}

func newQuickHarness(t *testing.T, layout Layout) *quickHarness {
	t.Helper()
	m, err := NewManager(Config{BlockSize: 1 << 13, ReclaimThreshold: 0.05, HeapBackend: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := m.NewContext("quick", testSchema, layout)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return &quickHarness{
		m: m, ctx: ctx, s: s,
		idF: testSchema.MustField("ID"),
		nmF: testSchema.MustField("Name"),
		done: func() {
			s.Close()
			m.Close()
		},
	}
}

func (h *quickHarness) close() { h.done() }

func (h *quickHarness) add(id int64, name string) types.Ref {
	ref, obj, err := h.ctx.Alloc(h.s)
	if err != nil {
		panic(err)
	}
	*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
	sr, err := h.ctx.AllocString(h.s, name)
	if err != nil {
		panic(err)
	}
	*(*types.StrRef)(obj.Blk.FieldPtr(obj.Slot, h.nmF)) = sr
	h.ctx.Publish(h.s, obj)
	return ref
}

func (h *quickHarness) remove(r types.Ref) error {
	h.s.Enter()
	defer h.s.Exit()
	return h.ctx.Remove(h.s, r)
}

func (h *quickHarness) get(r types.Ref) (int64, string, error) {
	h.s.Enter()
	defer h.s.Exit()
	obj, err := h.ctx.Deref(h.s, r)
	if err != nil {
		return 0, "", err
	}
	return *(*int64)(obj.Field(h.idF)), (*(*types.StrRef)(obj.Field(h.nmF))).String(), nil
}
