package mem

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Cooperative scan sharing: one block pass serves many concurrent
// queries. Under query-dominated load most concurrent scans re-read the
// same hot blocks, so N independent scans pay N trips through memory for
// one collection's worth of data. A ShareGroup batches compatible
// concurrent scans onto a single shared pass:
//
//   - One §5.2 decision pass. The pass leases its own coordinator
//     session from the manager's pool, takes one block-order snapshot,
//     resolves every compaction-group pre/post decision exactly once and
//     stays epoch-pinned (no Refresh) until the pass closes — exactly
//     the ParallelScan protocol, amortized over every attached query.
//   - One trip through memory per block. Pass workers claim block
//     indices from an atomic cursor and run the kernel of every
//     attached query on the claimed block before moving on, so the
//     block's cache lines are paid for once, not once per query.
//   - Late attach with catch-up. A query arriving while the pass is
//     still inside its attach window joins mid-pass, records the cursor
//     position at attach, receives every block claimed from that
//     position on, and finishes its missed prefix with a private
//     catch-up pass over only the blocks it missed — under the shared
//     pass's epoch pin, so the snapshot stays mapped.
//   - Per-query pruning composes. The shared cursor walks the blocks
//     admitted by the leader's predicate; each attached query keeps a
//     private admit bitmap from its own predicate's synopsis check and
//     its full residual predicate per row, so pruning stays sound and
//     never exact. Blocks a rider admits that the shared walk does not
//     cover (pruned by the leader, or claimed before attach) are
//     covered by that rider's catch-up.
//
// Attach boundary protocol: a pass worker claims a block index and reads
// the rider list inside a read-locked claim section; attach publishes
// the rider and reads the cursor inside the write-locked section. A
// claim therefore either happens before the attach — in which case the
// rider's recorded attach position is past the claimed index and the
// catch-up owns the block — or after it, in which case the worker is
// guaranteed to see the rider. Every (rider, block) pair runs exactly
// once.
//
// Error model (the PR 6 contract, per rider):
//
//   - Cancelling one query's context detaches that rider without
//     killing the shared pass; the rider returns its cancellation cause
//     after its in-flight kernel calls drain.
//   - A rider's kernel returning an error (or ErrStopScan) detaches
//     only that rider.
//   - A kernel panic is pass-fatal: the pass stops and every attached
//     query returns an ErrWorkerPanic-wrapped error, mirroring the
//     unshared scan contract where a panic poisons the whole scan.
//   - fault.PointShareAttach fires at every ShareGroup.Scan entry, so
//     the robustness suites can fail or stall attachment itself.

// shareAttachWindowDen bounds how late a query may attach to a running
// pass: attachment is admitted while fewer than len(shared)/Den blocks
// have been claimed. Past the window a query runs a private scan — a
// rider that attached near the end would re-scan almost everything in
// catch-up, paying more memory traffic than an independent scan.
//
// The first-half heuristic is the zero-stats default. Under a request
// storm the group tracks its recent arrival rate (noteArrival) and
// widens the window to three quarters: with arrivals landing every few
// milliseconds, a late rider's catch-up is amortized across many more
// saved private passes, so trading extra catch-up traffic for one more
// shared boarding wins. The window narrows back to the default as soon
// as a bucket goes quiet.
const (
	shareAttachWindowDen = 2
	// Widened window: cursor*Den <= len(shared)*Num, i.e. three quarters.
	shareAttachWideNum = 3
	shareAttachWideDen = 4
	// shareRateBucket is the arrival-rate sampling bucket;
	// shareStormArrivals is the per-bucket arrival count that marks a
	// storm and widens the window.
	shareRateBucket    = 100 * time.Millisecond
	shareStormArrivals = 8
)

// ShareGroup coordinates cooperative scan sharing over one context. At
// most one shared pass runs at a time; queries arriving while it is
// inside its attach window ride it, later ones fall back to private
// scans (and the first of those becomes the next pass's leader).
type ShareGroup struct {
	ctx *Context

	mu  sync.Mutex
	cur *sharePass
	gen int64 // passes launched; diagnostic generation counter

	// Arrival-rate tracking for the adaptive attach window: arrivals are
	// counted into shareRateBucket-sized buckets; the previous completed
	// bucket (and the current one) decide whether the window widens.
	// Best-effort atomics — a lost count under a racing rotation only
	// delays the widening by one bucket.
	rateStart atomic.Int64 // bucket start, unix nanos; 0 = unstarted
	rateN     atomic.Int64 // arrivals in the current bucket
	ratePrevN atomic.Int64 // arrivals in the last completed bucket
}

// noteArrival counts one Scan arrival into the current rate bucket,
// rotating buckets as time passes.
func (g *ShareGroup) noteArrival() {
	now := time.Now().UnixNano()
	start := g.rateStart.Load()
	if start == 0 {
		g.rateStart.CompareAndSwap(0, now)
		start = g.rateStart.Load()
	}
	if age := now - start; age >= int64(shareRateBucket) {
		if g.rateStart.CompareAndSwap(start, now) {
			n := g.rateN.Swap(0)
			if age >= 2*int64(shareRateBucket) {
				n = 0 // the bucket that just closed was already stale
			}
			g.ratePrevN.Store(n)
		}
	}
	g.rateN.Add(1)
}

// attachWindow resolves the current attach-window fraction as num/den:
// the fixed first-half default, or three quarters while the recent
// arrival rate says a storm is boarding.
func (g *ShareGroup) attachWindow() (num, den int64, widened bool) {
	if g.ratePrevN.Load() >= shareStormArrivals || g.rateN.Load() >= shareStormArrivals {
		return shareAttachWideNum, shareAttachWideDen, true
	}
	return 1, shareAttachWindowDen, false
}

// Share returns the context's share group, creating it on first use.
func (c *Context) Share() *ShareGroup {
	if g := c.shareGrp.Load(); g != nil {
		return g
	}
	g := &ShareGroup{ctx: c}
	if c.shareGrp.CompareAndSwap(nil, g) {
		return g
	}
	return c.shareGrp.Load()
}

// shareRider is one query attached to a shared pass.
type shareRider struct {
	kernel func(worker int, ws *Session, b *Block) error

	// pred/bitmap: the rider's own synopsis admit decision per full-list
	// block; a nil bitmap admits everything (unconstrained rider).
	pred   *ScanPredicate
	bitmap []bool

	// attachPos is the first shared-list index whose claim is guaranteed
	// to run this rider's kernel; written once inside the attach-locked
	// section, read by workers inside claim-locked sections.
	attachPos int64

	detached atomic.Bool
	inflight atomic.Int64
	err      atomic.Pointer[error]
	quit     chan struct{} // closed when the rider is detached early
}

func (r *shareRider) loadErr() error {
	if p := r.err.Load(); p != nil {
		return *p
	}
	return nil
}

// sharePass is one running shared pass over a context.
type sharePass struct {
	grp   *ShareGroup
	ctx   *Context
	coord *Session // pool-leased, epoch-pinned until close

	full    []*Block // resolved snapshot (every non-empty block)
	shared  []int    // indices into full admitted by the leader's predicate
	inShare []int64  // full index -> shared index, -1 when not shared
	pinned  []*CompactionGroup
	workers int

	// claimMu orders block claims against attachment (see the boundary
	// protocol above): workers claim under RLock, attach publishes under
	// Lock.
	claimMu sync.RWMutex
	cursor  atomic.Int64
	riders  atomic.Pointer[[]*shareRider]

	stop    atomic.Bool
	active  atomic.Int64 // attached riders not yet detached
	refs    atomic.Int64 // riders holding the pass open (through catch-up)
	exited  atomic.Int64
	passErr atomic.Pointer[error] // pass-fatal (panic) error
	done    chan struct{}         // closed by the last exiting pass worker
}

// Scan runs one query's block scan through the share group: it attaches
// to the running pass when one is inside its attach window, leads a new
// pass otherwise, and falls back to a private ScanParallelPredCtx when
// the running pass is past its window. attach is called exactly once,
// before any kernel invocation, with the number of worker slots the
// kernel must be prepared to see (pass workers plus one catch-up slot);
// it returns the query's per-block kernel, which must index any private
// state by the worker argument. The single-attached-query path is
// result-identical to ScanParallelPredCtx — sharing is an optimization,
// never a semantics change.
func (g *ShareGroup) Scan(cctx context.Context, s *Session, workers int, pred *ScanPredicate,
	attach func(slots int) func(worker int, ws *Session, b *Block) error) error {
	if pred != nil && pred.ctx != g.ctx {
		panic(errPredWrongContext)
	}
	if workers < 1 {
		workers = 1
	}
	if err := fault.Check(fault.PointShareAttach); err != nil {
		return err
	}
	g.noteArrival()

	g.mu.Lock()
	if p := g.cur; p != nil {
		if r := p.tryAttach(pred, attach); r != nil {
			g.mu.Unlock()
			g.ctx.mgr.stats.AttachedQueries.Add(1)
			return p.ride(r, cctx, s)
		}
		// A pass is running but past its attach window (or already
		// stopping): run privately rather than wait for it.
		g.mu.Unlock()
		return g.ctx.ScanParallelPredCtx(cctx, s, workers, pred, attach(workers))
	}
	p, lead, err := g.newPass(cctx, workers, pred)
	if !lead {
		g.mu.Unlock()
		if err != nil {
			return err
		}
		// Nothing to scan (everything empty or pruned): call attach for
		// API symmetry, never invoke the kernel.
		_ = attach(1)
		return nil
	}
	leader := p.addRider(pred, attach, true)
	g.cur = p
	g.gen++
	p.start()
	g.mu.Unlock()
	return p.ride(leader, cctx, s)
}

// newPass resolves a new shared pass as the calling query's leader.
// Called with g.mu held. lead=false means no pass was created: either an
// error occurred or the resolved shared list is empty (err nil, scan
// trivially complete).
func (g *ShareGroup) newPass(cctx context.Context, workers int, pred *ScanPredicate) (p *sharePass, lead bool, err error) {
	c := g.ctx
	coord, err := c.mgr.LeaseSession()
	if err != nil {
		return nil, false, fmt.Errorf("mem: shared scan coordinator session: %w", err)
	}
	coord.Enter()
	e := &Enumerator{ctx: c, sess: coord, blocks: c.SnapshotBlocks(), noRefresh: true}
	if cctx != nil {
		if done := cctx.Done(); done != nil {
			e.done = done
			e.cause = func() error { return context.Cause(cctx) }
		}
	}
	var full []*Block
	for {
		b, ok := e.NextBlock()
		if !ok {
			break
		}
		full = append(full, b)
	}
	pinned := e.pinned
	e.pinned = nil
	e.closed = true
	release := func() {
		for _, grp := range pinned {
			grp.pins.Add(-1)
		}
		coord.Exit()
		c.mgr.ReturnSession(coord)
	}
	if e.err != nil {
		release()
		return nil, false, e.err
	}
	// The shared cursor walks the leader's admitted blocks; admitBlock
	// maintains the leader's pruning counters exactly as its private scan
	// would, and counts each shared block's one physical visit.
	shared := make([]int, 0, len(full))
	inShare := make([]int64, len(full))
	for i, b := range full {
		inShare[i] = -1
		if pred.admitBlock(b) {
			inShare[i] = int64(len(shared))
			shared = append(shared, i)
		}
	}
	if len(shared) == 0 {
		release()
		return nil, false, nil
	}
	if workers > len(shared) {
		workers = len(shared)
	}
	p = &sharePass{
		grp:     g,
		ctx:     c,
		coord:   coord,
		full:    full,
		shared:  shared,
		inShare: inShare,
		pinned:  pinned,
		workers: workers,
		done:    make(chan struct{}),
	}
	empty := make([]*shareRider, 0, 4)
	p.riders.Store(&empty)
	c.mgr.stats.SharedPasses.Add(1)
	return p, true, nil
}

// tryAttach attaches a new rider to a running pass, or returns nil when
// the pass is past its attach window or already winding down. Called
// with g.mu held.
func (p *sharePass) tryAttach(pred *ScanPredicate, attach func(slots int) func(worker int, ws *Session, b *Block) error) *shareRider {
	if p.stop.Load() || p.passErr.Load() != nil {
		return nil
	}
	num, den, widened := p.grp.attachWindow()
	cur := p.cursor.Load()
	if cur*den > int64(len(p.shared))*num {
		return nil
	}
	// Hold the pass open through this rider's catch-up; a pass whose
	// refcount already hit zero is closing and must not be joined.
	for {
		n := p.refs.Load()
		if n == 0 {
			return nil
		}
		if p.refs.CompareAndSwap(n, n+1) {
			break
		}
	}
	if widened && cur*shareAttachWindowDen > int64(len(p.shared)) {
		// Admitted only because the storm heuristic widened the window
		// past the fixed first-half default.
		p.ctx.mgr.stats.WideAttaches.Add(1)
	}
	return p.addRider(pred, attach, false)
}

// addRider builds and publishes a rider. Called with g.mu held; the
// leader is added before start, later riders via tryAttach (which has
// already taken their pass reference — addRider takes the leader's).
// leader suppresses the bitmap's pruned counting: the shared-list build
// already counted the leader's pruning via admitBlock, and the bitmap
// exists only so the leader's catch-up skips its pruned blocks.
func (p *sharePass) addRider(pred *ScanPredicate, attach func(slots int) func(worker int, ws *Session, b *Block) error, leader bool) *shareRider {
	r := &shareRider{
		kernel: attach(p.workers + 1),
		pred:   pred,
		quit:   make(chan struct{}),
	}
	if pred != nil && len(pred.cons) > 0 {
		// The rider's own synopsis decision per snapshot block. matchBlock
		// (not admitBlock): the rider's pruned count is its own, but the
		// physical visit of each shared block is counted once by the pass,
		// so BlocksScanned keeps meaning "blocks actually read".
		r.bitmap = make([]bool, len(p.full))
		for i, b := range p.full {
			if ok, keySet := pred.matchBlock(b); ok {
				r.bitmap[i] = true
			} else if !leader {
				p.ctx.mgr.stats.BlocksPruned.Add(1)
				if keySet {
					p.ctx.mgr.stats.KeySetPruned.Add(1)
				}
			}
		}
	}
	if p.riders.Load() == nil {
		panic("mem: addRider before pass init")
	}
	// Publish the rider, then read the cursor: see the attach boundary
	// protocol in the package comment.
	p.claimMu.Lock()
	old := *p.riders.Load()
	next := make([]*shareRider, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	p.riders.Store(&next)
	r.attachPos = p.cursor.Load()
	p.claimMu.Unlock()
	p.active.Add(1)
	if len(old) == 0 {
		p.refs.Add(1) // the leader's reference
	}
	return r
}

// start leases worker sessions and launches the pass workers. Called
// with g.mu held, after the leader rider is attached. When the session
// pool cannot supply every worker the pass degrades to however many it
// got; with zero, the pass runs its one worker on the pinned coordinator
// session (no Enter/Exit/Refresh — the pin is the point).
func (p *sharePass) start() {
	sessions := make([]*Session, 0, p.workers)
	for i := 0; i < p.workers; i++ {
		ws, err := p.ctx.mgr.LeaseSession()
		if err != nil {
			break
		}
		sessions = append(sessions, ws)
	}
	if len(sessions) == 0 {
		p.workers = 1
		go p.runWorker(0, p.coord, false)
		return
	}
	p.workers = len(sessions)
	for w, ws := range sessions {
		go p.runWorker(w, ws, true)
	}
}

// runWorker is one pass worker: claim a shared block, run every visible
// attached rider's kernel on it, repeat. own says the session is a
// pool-leased worker session (entered, refreshed, returned here); false
// means the pinned coordinator drives the scan and must not be touched.
func (p *sharePass) runWorker(w int, ws *Session, own bool) {
	defer func() {
		if n := p.exited.Add(1); n == int64(p.workers) {
			close(p.done)
		}
	}()
	if own {
		defer p.ctx.mgr.ReturnSession(ws)
	}
	defer func() {
		if r := recover(); r != nil {
			// Panics escaping the per-rider recover (fault injection at
			// the claim point, engine bugs) poison the pass.
			p.fatal(recoverToError(r))
		}
	}()
	if own {
		ws.Enter()
		defer ws.Exit()
	}
	// Attach grace: before the first claim, yield while compatible
	// queries are still boarding — each yield drains the run queue, so a
	// burst of queries arriving with the leader boards at cursor 0 and
	// needs no catch-up. The loop stops as soon as a yield admits no new
	// rider (bounded; boarding bursts converge in a couple of drains).
	// Without it a single-P runtime runs the whole pass before any
	// would-be rider is ever scheduled, degrading a query storm to N
	// private passes.
	for prev, spins := len(*p.riders.Load()), 0; spins < 16; spins++ {
		runtime.Gosched()
		cur := len(*p.riders.Load())
		if cur == prev {
			break
		}
		prev = cur
	}
	for {
		if p.stop.Load() {
			return
		}
		p.claimMu.RLock()
		j := p.cursor.Add(1) - 1
		riders := *p.riders.Load()
		p.claimMu.RUnlock()
		if j >= int64(len(p.shared)) {
			return
		}
		if own && j > 0 {
			ws.Refresh()
		}
		fault.Point(fault.PointScanBlock)
		fi := p.shared[j]
		b := p.full[fi]
		for _, r := range riders {
			if j < r.attachPos || (r.bitmap != nil && !r.bitmap[fi]) {
				continue
			}
			p.runRider(r, w, ws, b)
			if p.stop.Load() && p.passErr.Load() != nil {
				return
			}
		}
	}
}

// runRider runs one rider's kernel on one block with the rider's
// in-flight count held, so a detaching rider can wait out concurrent
// kernel calls before its state is torn down.
func (p *sharePass) runRider(r *shareRider, w int, ws *Session, b *Block) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	if r.detached.Load() {
		return
	}
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = recoverToError(rec)
			}
		}()
		return r.kernel(w, ws, b)
	}()
	switch {
	case err == nil:
	case errors.Is(err, ErrWorkerPanic):
		p.fatal(err)
	case errors.Is(err, ErrStopScan):
		p.finishRider(r, nil)
	default:
		p.finishRider(r, err)
	}
}

// fatal records a pass-fatal error and stops the pass; every attached
// query observes it.
func (p *sharePass) fatal(err error) {
	p.passErr.CompareAndSwap(nil, &err)
	p.stop.Store(true)
}

// finishRider detaches a rider early, recording its terminal error
// (which may be nil for a clean ErrStopScan detach); the first call
// wins. When the last rider detaches the pass stops — nothing is
// riding it.
func (p *sharePass) finishRider(r *shareRider, err error) {
	if err != nil {
		r.err.CompareAndSwap(nil, &err)
	}
	if !r.detached.CompareAndSwap(false, true) {
		return
	}
	close(r.quit)
	p.ctx.mgr.stats.Detaches.Add(1)
	if p.active.Add(-1) == 0 {
		p.stop.Store(true)
	}
}

// ride is a rider's life after attach: wait for the shared phase (or an
// early detach, or the query's own cancellation), drain in-flight kernel
// calls, catch up the missed prefix, and release the pass reference.
func (p *sharePass) ride(r *shareRider, cctx context.Context, s *Session) error {
	var ctxDone <-chan struct{}
	if cctx != nil {
		ctxDone = cctx.Done()
	}
	select {
	case <-p.done:
	case <-r.quit:
	case <-ctxDone:
		p.finishRider(r, context.Cause(cctx))
	}
	// No kernel call for this rider may be in flight once we return (or
	// run catch-up): the rider's accumulators belong to the caller again.
	for r.inflight.Load() != 0 {
		runtime.Gosched()
	}
	var err error
	switch {
	case p.passErr.Load() != nil:
		err = *p.passErr.Load()
	case r.detached.Load():
		err = r.loadErr()
	default:
		err = p.catchUp(r, s, cctx)
	}
	p.release()
	return err
}

// catchUp scans, on the rider's own session and the pass's extra worker
// slot, every snapshot block the rider admits that the shared phase did
// not cover for it: blocks claimed before its attach position plus
// blocks the leader's predicate pruned out of the shared walk. It runs
// after the shared phase, under the pass's epoch pin (the pass reference
// is still held), so the snapshot blocks are still mapped.
func (p *sharePass) catchUp(r *shareRider, s *Session, cctx context.Context) error {
	var need []int
	for i := range p.full {
		if r.bitmap != nil && !r.bitmap[i] {
			continue
		}
		if si := p.inShare[i]; si >= 0 && si >= r.attachPos {
			continue // covered by the shared phase
		}
		need = append(need, i)
	}
	if len(need) == 0 {
		return nil
	}
	var done <-chan struct{}
	var cause func() error
	if cctx != nil {
		if d := cctx.Done(); d != nil {
			done = d
			cause = func() error { return context.Cause(cctx) }
		}
	}
	stats := &p.ctx.mgr.stats
	constrained := r.pred != nil && len(r.pred.cons) > 0
	s.Enter()
	defer s.Exit()
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = recoverToError(rec)
			}
		}()
		for k, i := range need {
			if done != nil {
				select {
				case <-done:
					return cause()
				default:
				}
			}
			if k > 0 {
				s.Refresh()
			}
			fault.Point(fault.PointScanBlock)
			stats.CatchUpBlocks.Add(1)
			if constrained {
				stats.BlocksScanned.Add(1)
			}
			if err := r.kernel(p.workers, s, p.full[i]); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil && errors.Is(err, ErrStopScan) {
		return nil
	}
	return err
}

// release drops one pass reference; the last reference waits out the
// pass workers and closes the pass (pins, coordinator pin, session) —
// bounded by one block's work, since a pass nobody rides has stopped.
func (p *sharePass) release() {
	if p.refs.Add(-1) != 0 {
		return
	}
	<-p.done
	g := p.grp
	g.mu.Lock()
	if g.cur == p {
		g.cur = nil
	}
	g.mu.Unlock()
	for _, grp := range p.pinned {
		grp.pins.Add(-1)
	}
	p.pinned = nil
	p.coord.Exit()
	p.ctx.mgr.ReturnSession(p.coord)
}
