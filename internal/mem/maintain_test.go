package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// TestMaintainerCompactsAboveThreshold: a fragmented heap must trigger a
// compaction pass, after which every survivor still resolves.
func TestMaintainerCompactsAboveThreshold(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	f := h.m.FragmentationSnapshot()
	if f.MaxContextFragmented < 2 {
		t.Fatalf("churn produced only %d candidate blocks", f.MaxContextFragmented)
	}
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: 2 * time.Millisecond})
	defer mt.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for h.m.Stats().Compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintainer never compacted a fragmented heap")
		}
		time.Sleep(time.Millisecond)
	}
	mt.Stop()
	if mt.Passes() == 0 {
		t.Fatal("maintainer pass counter did not advance")
	}
	verifySurvivors(t, h, survivors)
}

// TestMaintainerAllocPressureWakeup: with the poll interval effectively
// disabled (one hour), crossing the candidate threshold must still
// trigger a pass — the abandonAllocBlock signal wakes the maintainer, so
// reclamation latency is bounded by the allocation path, not the tick.
func TestMaintainerAllocPressureWakeup(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Hour})
	defer mt.Stop()

	// Fragment the heap (no signal yet: churnToLowOccupancy abandons by
	// hand, not through the allocation path).
	survivors := churnToLowOccupancy(t, h, 4)
	if f := h.m.FragmentationSnapshot(); f.MaxContextFragmented < 2 {
		t.Fatalf("churn produced only %d candidate blocks", f.MaxContextFragmented)
	}
	// Fill one fresh block exactly, remove most of its rows (the limbo
	// slots stay unripe — nothing advances the epoch here), then allocate
	// once more: findSlot comes up empty, the session abandons the
	// now-sparse block, and that abandon — the block itself just became
	// a candidate — signals the wake channel. Allocation then moves to a
	// fresh block, so the candidates stay sparse for the maintainer's
	// snapshot.
	start := time.Now()
	cap := h.ctx.BlockCapacity()
	fills := make([]types.Ref, 0, cap)
	for i := 0; i < cap; i++ {
		fills = append(fills, h.add(t, h.s, int64(1_000_000+i), "fill"))
	}
	for _, r := range fills[:cap*4/5] {
		if err := h.remove(h.s, r); err != nil {
			t.Fatal(err)
		}
	}
	h.add(t, h.s, 2_000_000, "spill")
	deadline := time.Now().Add(5 * time.Second)
	for mt.Passes() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no pass within %v of allocation pressure (wakeups=%d, interval=1h)",
				time.Since(start), mt.Wakeups())
		}
		time.Sleep(time.Millisecond)
	}
	// The pass must have come from a wake-up, not a poll tick: the
	// interval is an hour and no tick can have fired.
	if mt.Ticks() != 0 {
		t.Fatalf("poll ticked %d times during an hour interval", mt.Ticks())
	}
	if mt.Wakeups() == 0 {
		t.Fatal("pass ran but no wake-up was recorded")
	}
	if lat := time.Since(start); lat > 5*time.Second {
		t.Fatalf("reclamation latency %v not below the poll interval", lat)
	}
	// Every survivor still resolves after the wake-triggered pass (the
	// fill rows added above keep verifySurvivors' exact-count check out).
	for id, r := range survivors {
		got, _, err := h.get(h.s, r)
		if err != nil || got != id {
			t.Fatalf("survivor %d after wake-up pass: (%d, %v)", id, got, err)
		}
	}
}

// TestMaintainerIdleBelowThreshold: a dense heap must never trigger a
// pass, however long the maintainer polls.
func TestMaintainerIdleBelowThreshold(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	for i := 0; i < 200; i++ {
		h.add(t, h.s, int64(i), "dense")
	}
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for mt.Ticks() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("maintainer never polled")
		}
		time.Sleep(time.Millisecond)
	}
	mt.Stop()
	if n := h.m.Stats().Compactions.Load(); n != 0 {
		t.Fatalf("maintainer ran %d passes on a dense heap", n)
	}
	if mt.Passes() != 0 {
		t.Fatalf("pass counter = %d on a dense heap", mt.Passes())
	}
}

// TestMaintainerFragmentedFractionGate: with a high global-fraction gate
// a mostly-dense heap stays uncompacted even though one context could
// form a group.
func TestMaintainerFragmentedFractionGate(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	// Many dense blocks first (full blocks never become allocation
	// targets again)...
	for i := 0; i < h.ctx.BlockCapacity()*8; i++ {
		h.add(t, h.s, int64(1)<<32|int64(i), "dense")
	}
	// ...then two sparse ones.
	churnToLowOccupancy(t, h, 2)
	f := h.m.FragmentationSnapshot()
	if f.MaxContextFragmented < 2 || f.TotalBlocks < 8 {
		t.Fatalf("unexpected shape: %+v", f)
	}
	mt := h.m.StartMaintainer(MaintainerConfig{
		Interval:           time.Millisecond,
		FragmentedFraction: 0.9,
	})
	deadline := time.Now().Add(2 * time.Second)
	for mt.Ticks() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("maintainer never polled")
		}
		time.Sleep(time.Millisecond)
	}
	mt.Stop()
	if n := h.m.Stats().Compactions.Load(); n != 0 {
		t.Fatalf("fraction gate did not hold: %d passes", n)
	}
}

// TestMaintainerCleanShutdown: Stop blocks until the goroutine exits,
// is idempotent, and is safe immediately after start.
func TestMaintainerCleanShutdown(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Hour})
	done := make(chan struct{})
	go func() {
		mt.Stop()
		mt.Stop() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
	// The stop functions returned by the compat wrapper behave the same.
	stop := h.m.StartCompactor(time.Hour)
	stop()
	stop()
}

// TestMaintainerParallelScanChurnStress combines the background
// maintainer with parallel scans and add/remove churn: every scan must
// see each stable object exactly once and no object twice, while the
// maintainer compacts the churners' garbage behind them. Run with
// -race in CI.
func TestMaintainerParallelScanChurnStress(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.10,
				PinWaitTimeout:   2 * time.Millisecond,
				HeapBackend:      true,
			})

			const stableCount = 250
			stable := make(map[int64]bool, stableCount)
			for i := 0; i < stableCount; i++ {
				h.add(t, h.s, int64(i), "stable")
				stable[int64(i)] = true
			}

			mt := h.m.StartMaintainer(MaintainerConfig{Interval: time.Millisecond})
			defer mt.Stop()

			stop := make(chan struct{})
			var fail atomic.Value
			var wg sync.WaitGroup

			const churners = 2
			for w := 0; w < churners; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s, err := h.m.NewSession()
					if err != nil {
						fail.Store(err.Error())
						return
					}
					defer s.Close()
					next := int64(1)<<40 | int64(w)<<32
					type pair struct {
						id  int64
						ref types.Ref
					}
					var pool []pair
					for {
						select {
						case <-stop:
							return
						default:
						}
						id := next
						next++
						ref, obj, err := h.ctx.Alloc(s)
						if err != nil {
							fail.Store(err.Error())
							return
						}
						*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
						h.ctx.Publish(s, obj)
						pool = append(pool, pair{id, ref})
						// Remove most transients quickly: this is what
						// feeds the maintainer fragmented blocks.
						if len(pool) > 4 {
							victim := pool[0]
							pool = pool[1:]
							s.Enter()
							err := h.ctx.Remove(s, victim.ref)
							s.Exit()
							if err != nil {
								fail.Store(fmt.Sprintf("remove %#x: %v", victim.id, err))
								return
							}
						}
					}
				}(w)
			}

			deadline := time.Now().Add(400 * time.Millisecond)
			coord, err := h.m.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			scans := 0
			for time.Now().Before(deadline) && fail.Load() == nil {
				var mu sync.Mutex
				counts := make(map[int64]int)
				err := h.ctx.ScanParallel(coord, 4, func(_ int, _ *Session, b *Block) error {
					local := make([]int64, 0, b.capacity)
					for slot := 0; slot < b.capacity; slot++ {
						if !b.SlotIsValid(slot) {
							continue
						}
						local = append(local, *(*int64)(b.FieldPtr(slot, h.idF)))
					}
					mu.Lock()
					for _, id := range local {
						counts[id]++
					}
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("scan %d: %v", scans, err)
				}
				for id, n := range counts {
					if n != 1 {
						t.Fatalf("scan %d: id %#x seen %d times", scans, id, n)
					}
				}
				for id := range stable {
					if counts[id] != 1 {
						t.Fatalf("scan %d: stable id %d seen %d times", scans, id, counts[id])
					}
				}
				scans++
			}
			close(stop)
			wg.Wait()
			mt.Stop()
			if msg := fail.Load(); msg != nil {
				t.Fatal(msg)
			}
			if scans == 0 {
				t.Fatal("no scans completed")
			}
			if mt.Passes() == 0 {
				t.Log("note: maintainer never triggered during the stress window")
			}
		})
	}
}
