package mem

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"repro/internal/schema"
	"repro/internal/types"
)

type reflectType = reflect.Type

func reflectTypeOf(v any) reflect.Type { return reflect.TypeOf(v) }

// churnToLowOccupancy fills several blocks and then removes most objects,
// leaving every block under the compaction threshold. Returns surviving
// refs keyed by their ID.
func churnToLowOccupancy(t *testing.T, h *harness, blocks int) map[int64]types.Ref {
	t.Helper()
	cap := h.ctx.BlockCapacity()
	n := cap * blocks
	refs := make([]types.Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, h.add(t, h.s, int64(i), fmt.Sprintf("s%d", i)))
	}
	// Abandon the allocation block so it becomes a compaction candidate.
	h.s.allocBlocks[h.ctx.id] = nil
	for _, b := range h.ctx.SnapshotBlocks() {
		b.allocOwned.Store(false)
	}
	survivors := make(map[int64]types.Ref)
	for i, r := range refs {
		if i%10 == 0 { // keep 10%
			survivors[int64(i)] = r
			continue
		}
		if err := h.remove(h.s, r); err != nil {
			t.Fatal(err)
		}
	}
	return survivors
}

func verifySurvivors(t *testing.T, h *harness, survivors map[int64]types.Ref) {
	t.Helper()
	for id, r := range survivors {
		got, name, err := h.get(h.s, r)
		if err != nil {
			t.Fatalf("survivor %d: %v", id, err)
		}
		if got != id || name != fmt.Sprintf("s%d", id) {
			t.Fatalf("survivor %d read back (%d,%q)", id, got, name)
		}
	}
	// Enumeration agrees.
	seen := map[int64]bool{}
	h.ctx.ForEachValid(h.s, func(b *Block, slot int) bool {
		seen[*(*int64)(b.FieldPtr(slot, h.idF))] = true
		return true
	})
	if len(seen) != len(survivors) {
		t.Fatalf("enumerated %d objects, want %d", len(seen), len(survivors))
	}
	for id := range survivors {
		if !seen[id] {
			t.Fatalf("enumeration missing %d", id)
		}
	}
}

func TestCompactionEmptiesSparseBlocks(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.9, // keep reclamation out of the way
				HeapBackend:      true,
			})
			survivors := churnToLowOccupancy(t, h, 6)
			before := h.ctx.Blocks()
			moved, err := h.m.CompactNow()
			if err != nil {
				t.Fatal(err)
			}
			if moved == 0 {
				t.Fatal("compaction moved nothing")
			}
			if after := h.ctx.Blocks(); after >= before {
				t.Fatalf("blocks %d -> %d; compaction did not shrink", before, after)
			}
			verifySurvivors(t, h, survivors)
			if h.m.Stats().Compactions.Load() != 1 {
				t.Fatal("compaction not counted")
			}
			// Graveyard blocks are released once epochs pass.
			h.m.TryAdvanceEpoch()
			h.m.TryAdvanceEpoch()
			h.m.TryAdvanceEpoch()
			h.m.drainGraveyard()
			if rel := h.m.Stats().BlocksReleased.Load(); rel == 0 {
				t.Fatal("no block memory released after grace period")
			}
		})
	}
}

// TestParallelCompactionMatchesSerialOracle: a parallel moving phase
// must produce the same surviving-object set, valid references and
// shrunken block list as the serial pass at every worker count. The
// churn is deterministic, so the workers=1 pass (the oracle, exactly
// the old serial loop) and every parallel pass must agree with the
// survivors map, and with each other, exactly.
func TestParallelCompactionMatchesSerialOracle(t *testing.T) {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		sweep = append(sweep, n)
	}
	for _, layout := range allLayouts() {
		for _, workers := range sweep {
			t.Run(fmt.Sprintf("%s/workers=%d", layout, workers), func(t *testing.T) {
				h := newHarness(t, layout, Config{
					BlockSize:        1 << 13,
					ReclaimThreshold: 0.9,
					HeapBackend:      true,
				})
				survivors := churnToLowOccupancy(t, h, 6)
				before := h.ctx.Blocks()
				st := h.m.Stats()
				groupsBefore := st.GroupsMoved.Load()
				bytesBefore := st.BytesReclaimed.Load()
				moved, err := h.m.CompactNowWorkers(workers)
				if err != nil {
					t.Fatal(err)
				}
				if moved == 0 {
					t.Fatal("compaction moved nothing")
				}
				if after := h.ctx.Blocks(); after >= before {
					t.Fatalf("blocks %d -> %d; compaction did not shrink", before, after)
				}
				// Same surviving-object set, every reference valid, and the
				// enumeration agrees — the oracle property.
				verifySurvivors(t, h, survivors)
				if st.GroupsMoved.Load() == groupsBefore {
					t.Fatal("GroupsMoved did not advance")
				}
				if st.BytesReclaimed.Load() == bytesBefore {
					t.Fatal("BytesReclaimed did not advance")
				}
				if st.CompactNanos.Load() == 0 {
					t.Fatal("CompactNanos not recorded")
				}
			})
		}
	}
}

func TestCompactionRemovedObjectsStayNull(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	cap := h.ctx.BlockCapacity()
	var live, dead []types.Ref
	for i := 0; i < cap*4; i++ {
		r := h.add(t, h.s, int64(i), "")
		if i%8 == 0 {
			live = append(live, r)
		} else {
			dead = append(dead, r)
		}
	}
	h.s.allocBlocks[h.ctx.id] = nil
	for _, b := range h.ctx.SnapshotBlocks() {
		b.allocOwned.Store(false)
	}
	for _, r := range dead {
		if err := h.remove(h.s, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.m.CompactNow(); err != nil {
		t.Fatal(err)
	}
	for _, r := range dead {
		if _, _, err := h.get(h.s, r); err != ErrNullReference {
			t.Fatalf("dead ref after compaction: %v", err)
		}
	}
	for _, r := range live {
		if _, _, err := h.get(h.s, r); err != nil {
			t.Fatalf("live ref after compaction: %v", err)
		}
	}
}

func TestCompactionNothingToDo(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{BlockSize: 1 << 13, HeapBackend: true})
	for i := 0; i < 100; i++ {
		h.add(t, h.s, int64(i), "")
	}
	moved, err := h.m.CompactNow()
	if err != nil || moved != 0 {
		t.Fatalf("CompactNow on dense context = (%d, %v)", moved, err)
	}
	if h.m.NeedsCompaction() {
		t.Fatal("NeedsCompaction true on dense context")
	}
}

// TestCompactionPinAbort drives moveGroup against a pinned group: it must
// abort, unfreeze everything and leave the data intact (§5.2 bail-out).
func TestCompactionPinAbort(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		PinWaitTimeout:   5 * time.Millisecond,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	groups := h.m.planGroups()
	if len(groups) == 0 {
		t.Fatal("no groups planned")
	}
	g := groups[0]
	h.m.freezeGroup(g)
	g.state.Store(gFrozen)
	g.pins.Add(1) // a query holds the group's read pin

	moved, ok := h.m.moveGroup(g)
	if ok || moved != 0 {
		t.Fatalf("pinned group moved: (%d,%v)", moved, ok)
	}
	if g.state.Load() != gAborted {
		t.Fatalf("group state = %d, want aborted", g.state.Load())
	}
	g.pins.Add(-1)
	// Clean up the remaining planned groups as an aborted run would.
	h.m.abortRun(groups)
	// No frozen bits may remain; every survivor dereferences cleanly.
	verifySurvivors(t, h, survivors)
	for id, r := range survivors {
		w := loadInc(entryRef(r.Entry))
		if w&FlagMask != 0 {
			t.Fatalf("survivor %d left with flags %#x", id, w)
		}
	}
}

// TestCompactionWithConcurrentChurn is the §5 stress test: concurrent
// adders/removers/enumerators run against repeated compactions. At the
// end every surviving reference must resolve to its exact object and the
// enumeration count must match.
func TestCompactionWithConcurrentChurn(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			h := newHarness(t, layout, Config{
				BlockSize:        1 << 13,
				ReclaimThreshold: 0.10,
				PinWaitTimeout:   2 * time.Millisecond,
				HeapBackend:      true,
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var fail atomic.Value

			const workers = 2
			type owned struct {
				id  int64
				ref types.Ref
			}
			survivors := make([][]owned, workers)

			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s, err := h.m.NewSession()
					if err != nil {
						fail.Store(err.Error())
						return
					}
					defer s.Close()
					var mine []owned
					i := 0
					for {
						select {
						case <-stop:
							survivors[w] = mine
							return
						default:
						}
						id := int64(w)<<40 | int64(i)
						ref, obj, err := h.ctx.Alloc(s)
						if err != nil {
							fail.Store(err.Error())
							return
						}
						*(*int64)(obj.Blk.FieldPtr(obj.Slot, h.idF)) = id
						h.ctx.Publish(s, obj)
						mine = append(mine, owned{id, ref})
						// Remove ~80% shortly after insertion to create
						// sparse blocks for the compactor.
						if len(mine) > 5 && i%5 != 0 {
							victim := mine[len(mine)-2]
							s.Enter()
							err := h.ctx.Remove(s, victim.ref)
							s.Exit()
							if err != nil {
								e := entryRef(victim.ref.Entry)
								diag := ""
								payload := loadPayload(e)
								if h.ctx.layout == Columnar {
									id, sl := unpackColumnar(payload)
									b := h.m.blockByID(id)
									diag = fmt.Sprintf("blk(%d)=%v slot=%d", id, b != nil, sl)
									if b != nil {
										diag += fmt.Sprintf(" slotdir=%#x cellInc=%#x", b.SlotDirWord(sl), loadInc(e))
									}
								} else {
									b := h.m.blockFromAddr(payloadAddr(payload))
									diag = fmt.Sprintf("blk=%v", b != nil)
									if b != nil {
										sl := b.slotIndexFromData(payloadAddr(payload))
										w := uint32(0)
										if h.ctx.layout == RowDirect {
											w = *b.slotHeaderPtr(sl)
										}
										diag += fmt.Sprintf(" slot=%d slotdir=%#x hdr=%#x grp=%v tgt=%v", sl, b.SlotDirWord(sl), w, b.group.Load() != nil, b.targetOf.Load() != nil)
									}
								}
								fail.Store(fmt.Sprintf(
									"remove id=%#x: %v [refInc=%d refGen=%d entryInc=%#x entryGen=%d payload=%#x %s]",
									victim.id, err, victim.ref.Inc, victim.ref.Gen,
									loadInc(e), loadGen(e), payload, diag))
								return
							}
							mine = append(mine[:len(mine)-2], mine[len(mine)-1])
						}
						i++
					}
				}(w)
			}

			// Enumerator goroutine: every object it sees must have a
			// plausible ID (no torn reads, no duplicates within a pass
			// beyond bag-semantics tolerance for in-flight moves).
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := h.m.NewSession()
				if err != nil {
					fail.Store(err.Error())
					return
				}
				defer s.Close()
				for {
					select {
					case <-stop:
						return
					default:
					}
					h.ctx.ForEachValid(s, func(b *Block, slot int) bool {
						id := *(*int64)(b.FieldPtr(slot, h.idF))
						if w := id >> 40; w < 0 || w >= workers {
							fail.Store(fmt.Sprintf("garbage id %#x", id))
							return false
						}
						return true
					})
				}
			}()

			// Compactor loop, rotating the move-phase worker count so the
			// parallel fan-out runs under churn too.
			deadline := time.After(400 * time.Millisecond)
			func() {
				for pass := 0; ; pass++ {
					select {
					case <-deadline:
						close(stop)
						return
					default:
						workers := []int{1, 2, 4}[pass%3]
						if _, err := h.m.CompactNowWorkers(workers); err != nil {
							fail.Store(err.Error())
							close(stop)
							return
						}
						time.Sleep(time.Millisecond)
					}
				}
			}()
			wg.Wait()
			if msg := fail.Load(); msg != nil {
				t.Fatal(msg)
			}

			// Quiesced: every surviving ref resolves to its exact id.
			total := 0
			for w := 0; w < workers; w++ {
				for _, o := range survivors[w] {
					id, _, err := h.get(h.s, o.ref)
					if err != nil {
						t.Fatalf("survivor %#x: %v", o.id, err)
					}
					if id != o.id {
						t.Fatalf("survivor ref resolved to %#x, want %#x (wrong object!)", id, o.id)
					}
					total++
				}
			}
			if got := h.count(); got != total {
				t.Fatalf("Len = %d, survivors = %d", got, total)
			}
		})
	}
}

// Direct-pointer fix-up (§6): objects in a source context hold raw
// {addr,inc} pointers into a target context; after compacting the target,
// the pointers must be rewritten (or tombstone-chased) to the new
// locations.

// testRef makes types.Ref usable as a schema field in this test.
type testRef struct{ R types.Ref }

func (testRef) RefTargetType() reflectType { return reflectTypeOf(testObj{}) }

type srcObj struct {
	ID     int64
	Friend testRef // stands in for a direct pointer field (16 bytes)
}

func TestDirectPointerFixupAfterCompaction(t *testing.T) {
	m, err := NewManager(Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	target, err := m.NewContext("target", testSchema, RowDirect)
	if err != nil {
		t.Fatal(err)
	}
	srcSchema := schema.MustOf[srcObj]()
	src, err := m.NewContext("src", srcSchema, RowDirect)
	if err != nil {
		t.Fatal(err)
	}
	friendF := srcSchema.MustField("Friend")
	idF := testSchema.MustField("ID")
	srcIDF := srcSchema.MustField("ID")
	target.RegisterRefEdge(src, friendF.Index, true)

	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Populate the target sparsely across several blocks.
	cap := target.BlockCapacity()
	n := cap * 4
	trefs := make([]types.Ref, 0, n)
	for i := 0; i < n; i++ {
		ref, obj, err := target.Alloc(s)
		if err != nil {
			t.Fatal(err)
		}
		*(*int64)(obj.Blk.FieldPtr(obj.Slot, idF)) = int64(i)
		target.Publish(s, obj)
		trefs = append(trefs, ref)
	}
	s.allocBlocks[target.id] = nil
	for _, b := range target.SnapshotBlocks() {
		b.allocOwned.Store(false)
	}

	// Source objects point at every 10th target object via direct
	// {addr,inc} words, as the collection layer would store them.
	type link struct {
		srcRef types.Ref
		want   int64
	}
	var links []link
	s.Enter()
	for i := 0; i < n; i += 10 {
		tobj, err := target.Deref(s, trefs[i])
		if err != nil {
			t.Fatal(err)
		}
		ref, obj, err := src.Alloc(s)
		if err != nil {
			t.Fatal(err)
		}
		*(*int64)(obj.Blk.FieldPtr(obj.Slot, srcIDF)) = int64(i)
		fp := obj.Blk.FieldPtr(obj.Slot, friendF)
		*(*uint64)(fp) = uint64(uintptr(tobj.Ptr))
		*(*uint32)(unsafe.Add(fp, 8)) = trefs[i].Inc
		src.Publish(s, obj)
		links = append(links, link{ref, int64(i)})
	}
	s.Exit()
	s.allocBlocks[src.id] = nil

	// Remove everything in the target except the referenced objects.
	s.Enter()
	for i, r := range trefs {
		if i%10 != 0 {
			if err := target.Remove(s, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Exit()

	moved, err := m.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no objects moved")
	}

	// Every source object's direct pointer must now reach the relocated
	// target object.
	s.Enter()
	for _, l := range links {
		obj, err := src.Deref(s, l.srcRef)
		if err != nil {
			t.Fatal(err)
		}
		fp := obj.Field(friendF)
		addr := types.LaunderAddr(uintptr(*(*uint64)(fp)))
		inc := *(*uint32)(unsafe.Add(fp, 8))
		p, err := target.DerefDirect(s, addr, inc)
		if err != nil {
			t.Fatalf("direct deref for %d: %v", l.want, err)
		}
		got := *(*int64)(unsafe.Add(p, idF.Offset))
		if got != l.want {
			t.Fatalf("direct pointer resolved to %d, want %d", got, l.want)
		}
	}
	s.Exit()
}

// TestDerefDirectTombstoneChase verifies a stale direct pointer (not yet
// fixed up) still reaches the moved object through the forwarding flag
// and back-pointer (§6, Figure 5).
func TestDerefDirectTombstoneChase(t *testing.T) {
	h := newHarness(t, RowDirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)

	// Capture raw direct pointers before compaction.
	type raw struct {
		addr unsafe.Pointer
		inc  uint32
		want int64
	}
	var raws []raw
	h.s.Enter()
	for id, r := range survivors {
		obj, err := h.ctx.Deref(h.s, r)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw{obj.Ptr, r.Inc, id})
	}
	h.s.Exit()

	if _, err := h.m.CompactNow(); err != nil {
		t.Fatal(err)
	}

	h.s.Enter()
	chased := 0
	for _, rw := range raws {
		p, err := h.ctx.DerefDirect(h.s, rw.addr, rw.inc)
		if err != nil {
			t.Fatalf("tombstone chase for %d: %v", rw.want, err)
		}
		if p != rw.addr {
			chased++
		}
		got := *(*int64)(unsafe.Add(p, h.idF.Offset))
		if got != rw.want {
			t.Fatalf("chased to %d, want %d", got, rw.want)
		}
	}
	h.s.Exit()
	if chased == 0 {
		t.Fatal("no pointer was actually relocated; test vacuous")
	}
}

func TestBackgroundCompactor(t *testing.T) {
	h := newHarness(t, RowIndirect, Config{
		BlockSize:        1 << 13,
		ReclaimThreshold: 0.9,
		HeapBackend:      true,
	})
	survivors := churnToLowOccupancy(t, h, 4)
	stopc := h.m.StartCompactor(2 * time.Millisecond)
	defer stopc()
	deadline := time.Now().Add(2 * time.Second)
	for h.m.Stats().Compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compactor never ran")
		}
		time.Sleep(time.Millisecond)
	}
	stopc()
	verifySurvivors(t, h, survivors)
}

// buildPackingHeap constructs a deterministic five-block heap with
// occupancies 60/50/40/30/20% of capacity — the shape where block-order
// greedy packing orphans the fullest block into a released singleton
// while size-sorted (first-fit decreasing) packing reclaims every block.
func buildPackingHeap(t *testing.T, packing PackingMode) *harness {
	t.Helper()
	h := newHarness(t, RowIndirect, Config{
		BlockSize: 1 << 13,
		// Every block below 95% occupancy is a candidate, so the packing
		// policy — not candidate selection — decides the outcome.
		CompactionThreshold: 0.95,
		CompactionPacking:   packing,
		HeapBackend:         true,
	})
	cap := h.ctx.BlockCapacity()
	refs := make([]types.Ref, 0, cap*5)
	for i := 0; i < cap*5; i++ {
		refs = append(refs, h.add(t, h.s, int64(i), "p"))
	}
	h.s.allocBlocks[h.ctx.id] = nil
	for _, b := range h.ctx.SnapshotBlocks() {
		b.allocOwned.Store(false)
	}
	keepPct := []int{60, 50, 40, 30, 20}
	for blk := 0; blk < 5; blk++ {
		keep := cap * keepPct[blk] / 100
		for slot := keep; slot < cap; slot++ {
			if err := h.remove(h.s, refs[blk*cap+slot]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

// TestPlanGroupsSizeSortedPacking: on the same heap, size-sorted packing
// must reclaim at least as many bytes in at most as many groups as the
// historical block-order greedy packing — and on this shape strictly
// more bytes (the 60% block orphans under block order).
func TestPlanGroupsSizeSortedPacking(t *testing.T) {
	sorted := buildPackingHeap(t, PackSize)
	if _, err := sorted.m.CompactNow(); err != nil {
		t.Fatal(err)
	}
	legacy := buildPackingHeap(t, PackOrder)
	if _, err := legacy.m.CompactNow(); err != nil {
		t.Fatal(err)
	}
	sb, lb := sorted.m.stats.BytesReclaimed.Load(), legacy.m.stats.BytesReclaimed.Load()
	sg, lg := sorted.m.stats.GroupsMoved.Load(), legacy.m.stats.GroupsMoved.Load()
	if lg == 0 || sg == 0 {
		t.Fatalf("no groups moved (sorted %d, legacy %d); test vacuous", sg, lg)
	}
	if sg > lg {
		t.Fatalf("size-sorted packing used %d groups, block-order %d", sg, lg)
	}
	if sb <= lb {
		t.Fatalf("expected strictly more reclaimed bytes on this shape: sorted %d vs legacy %d", sb, lb)
	}
}
