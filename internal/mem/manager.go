// Package mem implements the paper's type-safe manual memory management
// system (§3) and its extensions: single-type memory blocks with slot
// directories and back-pointers (§3.1–3.2), a global indirection table,
// memory contexts (§3.3), epoch-based reclamation with limbo slots and
// lazy epoch advancement (§3.4–3.5), online compaction with freezing and
// relocation epochs (§5), direct pointers with forwarding tombstones (§6)
// and columnar block layouts (§4.1).
//
// The package deals in raw memory slots; the typed collection API lives
// in internal/core, which marshals tabular Go structs in and out of slots
// using internal/schema layouts.
//
// # Safety model
//
// All object memory lives off-heap (internal/offheap): the Go garbage
// collector never scans, moves or frees it. Type safety is provided the
// paper's way: a reference names an indirection-table entry plus the
// incarnation number observed at creation; every dereference re-validates
// the incarnation, and a removed object's reference behaves as null.
// Thread safety is provided by epoch-based reclamation: dereferences
// happen inside critical sections (epoch.Session.Enter/Exit), and a freed
// slot is reused only after two epochs have passed.
//
// # Error model
//
// The package distinguishes three failure classes, each with a typed
// sentinel callers can test with errors.Is:
//
//   - Cancellation. Scans (ScanParallelCtx, NewEnumeratorCtx), compaction
//     (CompactNowWorkersCtx) and the Maintainer (StartMaintainerCtx)
//     accept a context.Context observed at block-claim / group-claim
//     granularity: one atomic load per claim, zero overhead for
//     context.Background. A canceled operation unwinds every worker,
//     returns every pooled session and exits every epoch critical
//     section before reporting context.Cause(ctx). Partial compaction
//     work is kept (moved groups stay moved, unmoved groups are aborted
//     back into circulation); partial scan results are discarded.
//
//   - Backpressure. ErrBudgetExceeded reports that the process-level
//     memory Budget could not admit a query (Budget.Admit) or reserve a
//     block. Allocation failure is not immediate: the budget first
//     triggers reclamation (Maintainer wake-up, lazy epoch advance,
//     graveyard drain) and waits — bounded — for released bytes.
//     Compaction target blocks bypass admission (forceReserve) so the
//     budget can never starve its own remedy.
//
//   - Fault isolation. ErrWorkerPanic reports a panic recovered on a
//     worker goroutine (scan kernel, compaction move, maintenance
//     pass). Panics never cross goroutine boundaries unhandled: workers
//     recover, convert the panic to a query-scoped error carrying the
//     panic value, and unwind their session/epoch state; the Maintainer
//     recovers pass panics, counts them (Maintainer.Panics) and keeps
//     running. internal/fault provides the injection points the -race
//     robustness suites drive.
//
// Leak freedom after any of the three is observable: Stats
// SessionsLeased == SessionsReturned and epoch.Manager
// InCriticalSessions() == 0 whenever no operation is in flight.
package mem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/offheap"
	"repro/internal/schema"
)

// Layout selects how a context stores its objects (paper §3.2, §4.1, §6).
type Layout uint8

const (
	// RowIndirect is the baseline layout: row-major slots, incarnation
	// numbers in the indirection entry, all references indirect.
	RowIndirect Layout = iota
	// RowDirect stores the incarnation in an 8-byte slot header and
	// uses direct pointers for references between collections (§6).
	RowDirect
	// Columnar stores each field in a per-block column segment (§4.1);
	// the indirection entry holds (block id, slot) instead of a pointer.
	Columnar
)

// String names the layout for diagnostics and test labels.
func (l Layout) String() string {
	switch l {
	case RowIndirect:
		return "row-indirect"
	case RowDirect:
		return "row-direct"
	case Columnar:
		return "columnar"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// PackingMode selects how planGroups bins compaction candidates into
// groups (one rebuilt target block per capacity's worth of surviving
// rows; exactly one outside PackCluster).
type PackingMode uint8

const (
	// PackSize is the default: size-sorted first-fit decreasing on valid
	// count. Targets pack fuller and fewer groups form for the same
	// reclaimable bytes, but each target mixes whatever key ranges its
	// sources happened to hold.
	PackSize PackingMode = iota
	// PackOrder is the historical block-order greedy packing: one open
	// bin in enumeration order, closed on overflow. Kept as the
	// comparison oracle for the packing tests.
	PackOrder
	// PackCluster bins candidates by their cluster-key synopsis range
	// (Context.RegisterClusterKey): candidates sort by key bounds and
	// pack key-adjacent into multi-target groups, and the moving phase
	// deals each group's rows, key-sorted, into consecutive targets —
	// one key-quantile slice per target. Rebuilt targets come out with
	// tight, near-disjoint bound ranges even from a fully scattered
	// heap, so churn-staled pruning recovers to a steady-state floor
	// instead of by accident. Candidacy is synopsis-aware under this
	// mode: full blocks whose bounds have gone stale-wide are rewritten
	// regardless of occupancy (see Manager.compactionCandidates), which
	// keeps the floor holding under balanced upsert churn that refills
	// reclaimed slots in place. Contexts without a registered cluster
	// key fall back to PackSize.
	PackCluster
)

// String names the packing mode for diagnostics and test labels.
func (p PackingMode) String() string {
	switch p {
	case PackSize:
		return "size"
	case PackOrder:
		return "order"
	case PackCluster:
		return "cluster"
	}
	return fmt.Sprintf("PackingMode(%d)", uint8(p))
}

// Config tunes a Manager.
type Config struct {
	// BlockSize is the size of each memory block in bytes; must be a
	// power of two. Blocks are aligned to their size so a block header
	// can be recovered from any interior pointer by masking (§3.1).
	BlockSize int
	// ReclaimThreshold is the fraction of limbo slots above which a
	// block joins the reclamation queue (§3.5; the paper evaluates this
	// knob in Figure 6 and settles on 5%).
	ReclaimThreshold float64
	// CompactionThreshold is the occupancy below which a block may join
	// a compaction group (§5.2; the paper uses 30%).
	CompactionThreshold float64
	// PinWaitTimeout bounds how long the compactor waits for a
	// compaction group's query pins to drain before skipping the group
	// (§5.2: "bails out ... after waiting for a predefined amount of
	// time for the read lock to be released").
	PinWaitTimeout time.Duration
	// CompactionWorkers is the default number of move-phase workers a
	// compaction pass fans its groups out over (default GOMAXPROCS).
	// 1 selects the serial moving phase, kept as the oracle.
	CompactionWorkers int
	// CompactionPacking selects how compaction candidates are binned
	// into groups: PackSize (default), PackOrder (historical oracle) or
	// PackCluster (synopsis-clustered; see PackingMode).
	CompactionPacking PackingMode
	// HeapBackend forces the portable heap-slab off-heap backend.
	HeapBackend bool
	// MemoryBudget caps the manager's block-heap footprint in bytes
	// (0 = unlimited). When exceeded, allocations and new query
	// admissions backpressure through the reclamation machinery before
	// failing with ErrBudgetExceeded; see Budget.
	MemoryBudget int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BlockSize == 0 {
		out.BlockSize = 1 << 18 // 256 KiB
	}
	if out.ReclaimThreshold == 0 {
		out.ReclaimThreshold = 0.05
	}
	if out.CompactionThreshold == 0 {
		out.CompactionThreshold = 0.30
	}
	if out.PinWaitTimeout == 0 {
		out.PinWaitTimeout = 10 * time.Millisecond
	}
	if out.CompactionWorkers <= 0 {
		out.CompactionWorkers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Manager owns the off-heap memory of a set of memory contexts, the
// indirection table, the epoch manager and the compactor.
type Manager struct {
	cfg   Config
	alloc *offheap.Allocator
	ep    *epoch.Manager
	table *indirectTable

	mu       sync.Mutex
	contexts []*Context
	closed   bool

	// blocks is the append-only block registry: block id -> *Block.
	// Readers load the slice atomically; growth copies under mu.
	blocks atomic.Pointer[[]*Block]

	// Compaction state shared with the dereference protocol (§5.1).
	relocEpoch  atomic.Uint64 // the paper's nextRelocationEpoch; 0 = none
	movingPhase atomic.Bool   // true while relocations may happen
	compactMu   sync.Mutex    // serializes whole compaction runs

	// graveyard holds emptied blocks until two epochs have passed and
	// any direct-pointer fix-ups have completed.
	graveMu   sync.Mutex
	graveyard []grave

	// retired holds indirection entries whose incarnation counter
	// overflowed (§3.1): they are out of circulation until the overflow
	// rescue scan has nulled all stale references to them.
	retiredMu      sync.Mutex
	retiredEntries []retiredEntry

	// sessPool parks idle worker sessions between parallel scans so a
	// small scan does not pay N session registrations (epoch slot churn,
	// cache map allocation) per invocation. Pooled sessions stay
	// registered; the pool is bounded and drained on Close.
	sessMu      sync.Mutex
	sessPool    []*Session
	sessPoolOff bool

	// maintWake, when non-nil, is the running Maintainer's allocation-
	// pressure wake-up registration: abandonAllocBlock signals it when a
	// context's compaction-candidate count crosses the maintainer's
	// threshold, so reclamation starts without waiting out a poll tick.
	maintWake atomic.Pointer[maintWakeReg]

	// budget governs the block-heap footprint (admission control and
	// allocation backpressure); always non-nil, unlimited by default.
	budget *Budget

	// governor is the adaptive memory-governance control loop over the
	// budget and the registered arena pools (govern.go); always non-nil.
	governor *Governor

	stats Stats
}

// maxPooledSessions bounds how many idle sessions a manager parks; epoch
// session slots are a fixed global resource (epoch.MaxSessions), so the
// pool must never hoard them.
const maxPooledSessions = 64

// retiredEntry records one overflowed indirection entry and the context
// whose object it last named (the rescue scan walks that context's
// in-edges).
type retiredEntry struct {
	e   entryRef
	ctx *Context
}

type grave struct {
	blk   *Block
	ready uint64
}

// Stats aggregates manager-wide counters.
type Stats struct {
	Allocs          atomic.Int64
	Frees           atomic.Int64
	SlotsReclaimed  atomic.Int64
	BlocksAllocated atomic.Int64
	BlocksReleased  atomic.Int64
	EpochAdvances   atomic.Int64
	Compactions     atomic.Int64
	ObjectsMoved    atomic.Int64
	RelocBailouts   atomic.Int64
	RelocHelped     atomic.Int64

	// Parallel compaction engine: groups whose moving phase completed,
	// groups abandoned (pinned past the timeout or aborted at an epoch
	// wait), block bytes handed to the graveyard by compaction, and the
	// cumulative wall time of compaction passes.
	GroupsMoved    atomic.Int64
	GroupsAborted  atomic.Int64
	BytesReclaimed atomic.Int64
	CompactNanos   atomic.Int64

	// §3.1 overflow handling: resources taken out of circulation at
	// incarnation overflow and put back by the rescue scan.
	EntriesRetired atomic.Int64
	SlotsRetired   atomic.Int64
	EntriesRescued atomic.Int64
	SlotsRescued   atomic.Int64
	RefsNulled     atomic.Int64
	OverflowScans  atomic.Int64

	// Worker-session pooling (parallel scans). Leased == Returned when
	// no query holds a session — the robustness suites assert this
	// balance after cancellation and fault-injection cycles.
	SessionsLeased   atomic.Int64
	SessionsReused   atomic.Int64
	SessionsReturned atomic.Int64

	// Block synopses / predicate pushdown (synopsis.go): blocks skipped
	// by a constrained scan's min/max check, blocks a constrained scan
	// actually visited, and compaction targets whose bounds were rebuilt
	// exactly by the moving phase.
	BlocksPruned     atomic.Int64
	BlocksScanned    atomic.Int64
	SynopsisRebuilds atomic.Int64

	// Cross-edge semi-join pruning (KeySetPredicate): blocks pruned
	// because no key-set range survived inside their bounds (a subset of
	// BlocksPruned), and admitted blocks whose bounds a key-set
	// constraint did overlap — the residual work the key set could not
	// remove. KeySetPruned / (KeySetPruned + SynopsisOverlap) is the
	// cross-edge pruning rate of a key-set-constrained scan.
	KeySetPruned    atomic.Int64
	SynopsisOverlap atomic.Int64

	// Cooperative scan sharing (share.go): shared passes launched,
	// queries that attached to an already-running pass (leaders are not
	// counted), blocks visited by private catch-up passes, and riders
	// detached early (cancellation, kernel error, ErrStopScan).
	// BlocksScanned keeps counting physical visits: each shared block is
	// counted once by the pass, not once per attached query.
	SharedPasses    atomic.Int64
	AttachedQueries atomic.Int64
	CatchUpBlocks   atomic.Int64
	Detaches        atomic.Int64

	// WideAttaches counts shared-pass attaches admitted only because the
	// arrival-rate heuristic had widened the attach window past the fixed
	// first-half default (share.go).
	WideAttaches atomic.Int64
}

// NewManager builds a Manager from the configuration.
func NewManager(cfg Config) (*Manager, error) {
	c := cfg.withDefaults()
	if c.BlockSize&(c.BlockSize-1) != 0 || c.BlockSize < 1<<12 {
		return nil, fmt.Errorf("mem: block size %d must be a power of two >= 4096", c.BlockSize)
	}
	if c.ReclaimThreshold <= 0 || c.ReclaimThreshold >= 1 {
		return nil, fmt.Errorf("mem: reclaim threshold %v out of (0,1)", c.ReclaimThreshold)
	}
	if c.CompactionThreshold <= 0 || c.CompactionThreshold >= 1 {
		return nil, fmt.Errorf("mem: compaction threshold %v out of (0,1)", c.CompactionThreshold)
	}
	var opts []offheap.Option
	if c.HeapBackend {
		opts = append(opts, offheap.WithHeapBackend())
	}
	if c.MemoryBudget < 0 {
		return nil, fmt.Errorf("mem: memory budget %d must be >= 0", c.MemoryBudget)
	}
	m := &Manager{
		cfg:   c,
		alloc: offheap.New(opts...),
		ep:    epoch.NewManager(),
	}
	m.budget = newBudget(m, c.MemoryBudget)
	m.governor = newGovernor(m)
	empty := make([]*Block, 0)
	m.blocks.Store(&empty)
	t, err := newIndirectTable(m.alloc)
	if err != nil {
		return nil, err
	}
	m.table = t
	return m, nil
}

// Epoch returns the manager's epoch manager.
func (m *Manager) Epoch() *epoch.Manager { return m.ep }

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Budget returns the manager's memory budget (unlimited unless
// Config.MemoryBudget or SetLimit set a cap).
func (m *Manager) Budget() *Budget { return m.budget }

// BlockSize returns the configured block size.
func (m *Manager) BlockSize() int { return m.cfg.BlockSize }

// OffheapStats exposes the off-heap allocator's accounting.
func (m *Manager) OffheapStats() *offheap.Stats { return m.alloc.Stats() }

// NewContext creates a memory context (§3.3) holding objects of the given
// schema in the given layout. The name is used in diagnostics.
func (m *Manager) NewContext(name string, sch *schema.Schema, layout Layout) (*Context, error) {
	if sch == nil {
		return nil, fmt.Errorf("mem: nil schema")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("mem: manager closed")
	}
	ctx, err := newContext(m, uint32(len(m.contexts)), name, sch, layout)
	if err != nil {
		return nil, err
	}
	m.contexts = append(m.contexts, ctx)
	return ctx, nil
}

// Contexts returns a snapshot of all contexts.
func (m *Manager) Contexts() []*Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Context, len(m.contexts))
	copy(out, m.contexts)
	return out
}

// registerBlock assigns an id to a new block and publishes it.
func (m *Manager) registerBlock(b *Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.blocks.Load()
	id := uint32(len(cur))
	b.id = id
	next := make([]*Block, len(cur)+1)
	copy(next, cur)
	next[id] = b
	m.blocks.Store(&next)
	m.stats.BlocksAllocated.Add(1)
}

// blockByID resolves a block id from the registry; nil for released ids.
func (m *Manager) blockByID(id uint32) *Block {
	cur := *m.blocks.Load()
	if int(id) >= len(cur) {
		return nil
	}
	return cur[id]
}

// unregisterBlock clears the registry entry (the id is not reused; stale
// masked lookups on a released block would read freed memory anyway, and
// the graveyard delay guarantees no reader can still do so).
func (m *Manager) unregisterBlock(b *Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.blocks.Load()
	if int(b.id) < len(cur) && cur[b.id] == b {
		next := make([]*Block, len(cur))
		copy(next, cur)
		next[b.id] = nil
		m.blocks.Store(&next)
	}
}

// TryAdvanceEpoch attempts one lazy epoch advance (the paper performs
// this inside the allocation function, §3.5).
func (m *Manager) TryAdvanceEpoch() bool {
	if _, ok := m.ep.TryAdvance(); ok {
		m.stats.EpochAdvances.Add(1)
		m.drainGraveyard()
		return true
	}
	return false
}

// burialEpoch computes when a block buried now may be freed.
func (m *Manager) burialEpoch() uint64 { return m.ep.Global() + 2 }

func (m *Manager) bury(b *Block) {
	m.graveMu.Lock()
	m.graveyard = append(m.graveyard, grave{blk: b, ready: m.burialEpoch()})
	m.graveMu.Unlock()
}

// drainGraveyard frees buried blocks whose grace period has fully passed.
func (m *Manager) drainGraveyard() {
	g := m.ep.Global()
	m.graveMu.Lock()
	var keep []grave
	var free []*Block
	for _, gr := range m.graveyard {
		if gr.ready <= g {
			free = append(free, gr.blk)
		} else {
			keep = append(keep, gr)
		}
	}
	m.graveyard = keep
	m.graveMu.Unlock()
	for _, b := range free {
		m.unregisterBlock(b)
		m.releaseBlockMemory(b)
	}
}

func (m *Manager) releaseBlockMemory(b *Block) {
	if b.region != nil && b.region.Valid() {
		_ = m.alloc.Free(b.region)
		m.stats.BlocksReleased.Add(1)
		m.budget.release(int64(m.cfg.BlockSize))
	}
}

// Close releases all off-heap memory. No sessions may be active.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("mem: already closed")
	}
	m.closed = true
	ctxs := make([]*Context, len(m.contexts))
	copy(ctxs, m.contexts)
	m.mu.Unlock()

	// Drain the worker-session pool while the contexts and indirection
	// table are still alive (Session.Close returns caches to them).
	m.sessMu.Lock()
	pooled := m.sessPool
	m.sessPool = nil
	m.sessPoolOff = true
	m.sessMu.Unlock()
	for _, s := range pooled {
		_ = s.Close()
	}

	m.graveMu.Lock()
	graves := m.graveyard
	m.graveyard = nil
	m.graveMu.Unlock()
	for _, gr := range graves {
		m.releaseBlockMemory(gr.blk)
	}
	for _, ctx := range ctxs {
		ctx.releaseAll()
	}
	m.table.release()
	return nil
}

// Session is a registered participant: it carries the epoch session, the
// per-session ("thread-local", §3.5) allocation blocks, and caches of
// indirection entries and string chunks.
type Session struct {
	mgr *Manager
	ep  *epoch.Session

	allocBlocks map[uint32]*Block // context id -> current allocation block
	entryCache  []entryRef        // cached ripe indirection entries
	strChunks   map[uint32]*strChunk
}

// NewSession registers a session. Sessions must be used by one goroutine
// at a time and closed when done.
func (m *Manager) NewSession() (*Session, error) {
	es, err := m.ep.NewSession()
	if err != nil {
		return nil, err
	}
	return &Session{
		mgr:         m,
		ep:          es,
		allocBlocks: make(map[uint32]*Block),
		strChunks:   make(map[uint32]*strChunk),
	}, nil
}

// LeaseSession returns a parked idle session, or registers a fresh one
// when the pool is empty. Pair it with ReturnSession; a leased session
// has the exact same contract as one from NewSession (single goroutine,
// not in a critical section).
func (m *Manager) LeaseSession() (*Session, error) {
	m.sessMu.Lock()
	if n := len(m.sessPool); n > 0 {
		s := m.sessPool[n-1]
		m.sessPool = m.sessPool[:n-1]
		m.sessMu.Unlock()
		m.stats.SessionsLeased.Add(1)
		m.stats.SessionsReused.Add(1)
		return s, nil
	}
	m.sessMu.Unlock()
	s, err := m.NewSession()
	if err != nil {
		return nil, err
	}
	m.stats.SessionsLeased.Add(1)
	return s, nil
}

// ReturnSession parks a session for the next LeaseSession; if the pool is
// full (or the manager closed), the session is closed instead. The
// session must not be inside a critical section.
func (m *Manager) ReturnSession(s *Session) {
	if s == nil {
		return
	}
	m.stats.SessionsReturned.Add(1)
	m.sessMu.Lock()
	if !m.sessPoolOff && len(m.sessPool) < maxPooledSessions {
		m.sessPool = append(m.sessPool, s)
		m.sessMu.Unlock()
		return
	}
	m.sessMu.Unlock()
	_ = s.Close()
}

// TrimSessionPool closes parked idle sessions beyond keep, returning
// how many were closed. Closing a parked session abandons its
// allocation blocks, which turns session-pinned slack into compaction
// candidates — the governor's ladder uses this under memory pressure.
func (m *Manager) TrimSessionPool(keep int) int {
	if keep < 0 {
		keep = 0
	}
	m.sessMu.Lock()
	var drain []*Session
	if len(m.sessPool) > keep {
		drain = append(drain, m.sessPool[keep:]...)
		m.sessPool = m.sessPool[:keep]
	}
	m.sessMu.Unlock()
	for _, s := range drain {
		_ = s.Close()
	}
	return len(drain)
}

// sessionPoolFootprint reports how many sessions are parked idle and the
// allocation-block bytes they pin against compaction. Parked sessions
// are unowned, so reading their alloc maps under sessMu is race-free
// (lease/return transfer ownership under the same lock).
func (m *Manager) sessionPoolFootprint() (sessions int, pinnedBytes int64) {
	m.sessMu.Lock()
	defer m.sessMu.Unlock()
	for _, s := range m.sessPool {
		for _, b := range s.allocBlocks {
			if b != nil {
				pinnedBytes += int64(m.cfg.BlockSize)
			}
		}
	}
	return len(m.sessPool), pinnedBytes
}

// SetSessionPooling toggles worker-session pooling (on by default); when
// turned off the current pool is drained. Benchmarks use it to measure
// the register-per-scan cost the pool removes.
func (m *Manager) SetSessionPooling(on bool) {
	m.sessMu.Lock()
	m.sessPoolOff = !on
	var drain []*Session
	if !on {
		drain = m.sessPool
		m.sessPool = nil
	}
	m.sessMu.Unlock()
	for _, s := range drain {
		_ = s.Close()
	}
}

// Close unregisters the session, returning its caches to global pools.
func (s *Session) Close() error {
	for ctxID, b := range s.allocBlocks {
		if b != nil {
			s.abandonAllocBlock(ctxID, b)
		}
	}
	s.mgr.table.releaseCache(s.entryCache)
	s.entryCache = nil
	return s.ep.Close()
}

// Enter begins a critical section (grace period, §3.4).
func (s *Session) Enter() { s.ep.Enter() }

// Exit ends the critical section.
func (s *Session) Exit() { s.ep.Exit() }

// Refresh re-publishes the current global epoch mid-enumeration.
func (s *Session) Refresh() { s.ep.Refresh() }

// InCritical reports whether the session is inside a critical section.
func (s *Session) InCritical() bool { return s.ep.InCritical() }

// EpochSession exposes the underlying epoch session.
func (s *Session) EpochSession() *epoch.Session { return s.ep }

// Manager returns the manager this session is registered with; the query
// layer uses it to reach the memory budget for admission control.
func (s *Session) Manager() *Manager { return s.mgr }
