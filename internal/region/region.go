// Package region implements region-based memory management for query
// intermediates (Tofte & Talpin [16], as used by the paper's unsafe
// compiled queries: "use memory regions for all intermediate data during
// query processing, which improves performance by excluding those
// intermediates from garbage collection", §7).
//
// An Arena hands out raw off-heap memory in bump-allocated chunks and
// releases everything at once: either recycling the chunks for the next
// query (Reset) or returning them to the OS (Release). Individual
// intermediates are never freed — the whole point of a region is that
// object lifetimes equal the region's lifetime, so there is nothing for
// a collector to track.
//
// Because the Go garbage collector never scans arena memory, values
// placed in an arena must not contain Go pointers; the typed helpers
// (New, NewSlice, Table) enforce this with a reflection check at first
// use. Strings and slices are Go-pointer-bearing and therefore excluded
// — query code keeps those in ordinary Go memory or in the collection's
// string heap.
package region

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/offheap"
)

// DefaultChunkSize is the arena chunk size when none is given.
const DefaultChunkSize = 256 << 10

// Arena is a bump allocator over off-heap chunks. Not safe for
// concurrent use: queries are single-threaded and each owns its arena,
// mirroring the paper's per-query regions.
type Arena struct {
	alloc *offheap.Allocator
	chunk int // chunk size in bytes

	chunks []*offheap.Region
	cur    int     // index of the chunk being bumped
	off    uintptr // bump offset within chunks[cur]

	// big holds dedicated chunks for allocations larger than the chunk
	// size; they are returned to the OS on Reset (their sizes are one-off,
	// so recycling them would not help the next query).
	big []*offheap.Region

	used int64 // bytes handed out since the last Reset
}

// NewArena creates an arena with the given chunk size (0 selects
// DefaultChunkSize). A nil allocator gets a private default.
func NewArena(alloc *offheap.Allocator, chunkSize int) *Arena {
	if alloc == nil {
		alloc = offheap.New()
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Arena{alloc: alloc, chunk: chunkSize, cur: -1}
}

// Alloc returns size bytes of zeroed arena memory aligned to align (a
// power of two ≤ 64). Allocations larger than the chunk size get a
// dedicated chunk.
func (a *Arena) Alloc(size, align uintptr) unsafe.Pointer {
	if size == 0 {
		size = 1
	}
	if align == 0 || align&(align-1) != 0 || align > 64 {
		panic(fmt.Sprintf("region: bad alignment %d", align))
	}
	a.used += int64(size)
	if int(size) > a.chunk {
		r, err := a.alloc.Alloc(int(size), 64)
		if err != nil {
			panic(fmt.Sprintf("region: %v", err))
		}
		a.big = append(a.big, r)
		return r.Base()
	}
	for {
		if a.cur >= 0 && a.cur < len(a.chunks) {
			base := a.chunks[a.cur].Base()
			off := (a.off + align - 1) &^ (align - 1)
			if off+size <= uintptr(a.chunk) {
				a.off = off + size
				p := unsafe.Add(base, off)
				// Chunks are recycled by Reset without re-zeroing; the
				// contract is zeroed memory, so clear the slice here.
				clear(unsafe.Slice((*byte)(p), size))
				return p
			}
		}
		// Advance to the next chunk, reusing one recycled by Reset if
		// available, else growing the arena.
		if a.cur+1 < len(a.chunks) {
			a.cur++
			a.off = 0
			continue
		}
		r, err := a.alloc.Alloc(a.chunk, 64)
		if err != nil {
			panic(fmt.Sprintf("region: %v", err))
		}
		a.chunks = append(a.chunks, r)
		a.cur = len(a.chunks) - 1
		a.off = 0
	}
}

// Reset empties the arena: pointers previously handed out become
// invalid. Dedicated (oversized) chunks go back to the OS, and the
// retained bump chunks decay to what the cycle since the previous Reset
// actually touched (floor: one chunk). A single huge query therefore no
// longer pins its peak footprint for the process lifetime — the retained
// memory tracks the working set of the most recent cycle.
func (a *Arena) Reset() {
	for _, r := range a.big {
		_ = a.alloc.Free(r)
	}
	a.big = nil
	// Decay: chunks [0, cur] were bumped since the last Reset; everything
	// past them is idle capacity from an earlier, larger cycle.
	keep := a.cur + 1
	if keep < 1 {
		keep = 1
	}
	if keep < len(a.chunks) {
		for _, r := range a.chunks[keep:] {
			_ = a.alloc.Free(r)
		}
		a.chunks = a.chunks[:keep]
	}
	a.cur = -1
	a.off = 0
	a.used = 0
}

// Release returns all chunks to the OS. The arena is unusable afterwards
// until allocations grow it again.
func (a *Arena) Release() {
	a.Reset()
	for _, r := range a.chunks {
		_ = a.alloc.Free(r)
	}
	a.chunks = nil
}

// Used returns the bytes handed out since the last Reset.
func (a *Arena) Used() int64 { return a.used }

// Footprint returns the total chunk bytes held by the arena.
func (a *Arena) Footprint() int64 {
	var n int64
	for _, r := range a.chunks {
		n += int64(r.Size())
	}
	for _, r := range a.big {
		n += int64(r.Size())
	}
	return n
}

// hasGoPointers reports whether values of type t contain Go pointers the
// collector would need to see.
func hasGoPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16,
		reflect.Int32, reflect.Int64, reflect.Uint, reflect.Uint8,
		reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64,
		reflect.Complex128:
		return false
	case reflect.Array:
		return hasGoPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasGoPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// Ptr, UnsafePointer, String, Slice, Map, Chan, Func, Interface.
		return true
	}
}

// checkPointerFree panics if T contains Go pointers.
func checkPointerFree[T any]() {
	var zero T
	if t := reflect.TypeOf(zero); hasGoPointers(t) {
		panic(fmt.Sprintf("region: %v contains Go pointers and cannot live in a region", t))
	}
}

// New allocates one zeroed T in the arena.
func New[T any](a *Arena) *T {
	checkPointerFree[T]()
	var zero T
	return (*T)(a.Alloc(unsafe.Sizeof(zero), unsafe.Alignof(zero)))
}

// NewSlice allocates a zeroed []T of length n backed by arena memory.
// The slice header lives in Go memory; only the backing array is in the
// region.
func NewSlice[T any](a *Arena, n int) []T {
	checkPointerFree[T]()
	if n == 0 {
		return nil
	}
	var zero T
	p := a.Alloc(uintptr(n)*unsafe.Sizeof(zero), unsafe.Alignof(zero))
	return unsafe.Slice((*T)(p), n)
}
