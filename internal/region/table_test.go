package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableBasic(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	tab := NewTable[int64](a, 4)
	if tab.Len() != 0 {
		t.Fatal("new table not empty")
	}
	*tab.At(1) = 10
	*tab.At(2) = 20
	*tab.At(1) += 5
	if got := *tab.Get(1); got != 15 {
		t.Fatalf("Get(1) = %d", got)
	}
	if got := *tab.Get(2); got != 20 {
		t.Fatalf("Get(2) = %d", got)
	}
	if tab.Get(3) != nil {
		t.Fatal("Get(3) should be nil")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTableGrowthKeepsEntries(t *testing.T) {
	a := NewArena(nil, 1<<16)
	defer a.Release()
	tab := NewTable[int64](a, 2) // force many grows
	const n = 10_000
	for i := int64(0); i < n; i++ {
		*tab.At(i * 7) = i
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		v := tab.Get(i * 7)
		if v == nil || *v != i {
			t.Fatalf("entry %d lost across growth", i)
		}
	}
}

func TestTableZeroAndNegativeKeys(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	tab := NewTable[int32](a, 4)
	*tab.At(0) = 1
	*tab.At(-1) = 2
	*tab.At(-1 << 62) = 3
	if *tab.Get(0) != 1 || *tab.Get(-1) != 2 || *tab.Get(-1 << 62) != 3 {
		t.Fatal("zero/negative keys mishandled")
	}
}

func TestTableRange(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	tab := NewTable[int64](a, 8)
	want := map[int64]int64{}
	for i := int64(0); i < 100; i++ {
		*tab.At(i) = i * i
		want[i] = i * i
	}
	got := map[int64]int64{}
	tab.Range(func(k int64, v *int64) bool {
		got[k] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tab.Range(func(int64, *int64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: %d visits", n)
	}
}

// TestTableMatchesMap is the property test: a random operation sequence
// applied to both a region table and a Go map must agree.
func TestTableMatchesMap(t *testing.T) {
	f := func(keys []int64, adds []int16) bool {
		a := NewArena(nil, 1<<14)
		defer a.Release()
		tab := NewTable[int64](a, 4)
		ref := map[int64]int64{}
		for i, k := range keys {
			var d int64 = 1
			if i < len(adds) {
				d = int64(adds[i])
			}
			*tab.At(k) += d
			ref[k] += d
		}
		if tab.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got := tab.Get(k)
			if got == nil || *got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPresenceSet covers the semi-join key-set idiom: a
// PartitionedTable[struct{}] with At as insert and Get as membership
// (the shape serial Q4 and Q4Par's per-worker merge both use).
func TestPresenceSet(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	s := NewPartitionedTable[struct{}](a, 1, 8)
	for i := int64(0); i < 50; i++ {
		s.At(i * 3)
	}
	s.At(6) // duplicate
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Get(6) == nil || s.Get(147) == nil || s.Get(7) != nil {
		t.Fatal("membership wrong")
	}
}

func BenchmarkTableAt(b *testing.B) {
	a := NewArena(nil, 1<<20)
	defer a.Release()
	tab := NewTable[int64](a, 1<<16)
	r := rand.New(rand.NewSource(1))
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = r.Int63n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*tab.At(keys[i&(1<<16-1)]) += 1
	}
}

func BenchmarkGoMapAt(b *testing.B) {
	m := map[int64]int64{}
	r := rand.New(rand.NewSource(1))
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = r.Int63n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m[keys[i&(1<<16-1)]]++
	}
}
