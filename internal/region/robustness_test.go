package region

import (
	"strings"
	"sync"
	"testing"
)

// TestArenaPoolReturnsBalanceFaultFree: the Returns counter tracks every
// Return — including the ones racing from many goroutines — so callers
// can assert the Leases == Returns balance invariant after unwinding.
func TestArenaPoolReturnsBalanceFaultFree(t *testing.T) {
	p := NewArenaPool(nil, 1024, 1<<20)
	defer p.Close()
	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a := p.Lease()
				a.Alloc(64, 8)
				p.Return(a)
			}
		}()
	}
	wg.Wait()
	p.Return(nil) // nil returns don't count
	leases, _ := p.Stats()
	if leases != goroutines*rounds {
		t.Fatalf("leases = %d, want %d", leases, goroutines*rounds)
	}
	if ret := p.Returns(); ret != leases {
		t.Fatalf("returns = %d, want %d (balance invariant)", ret, leases)
	}
}

// TestParallelMergeIntoFaultRethrown: a panic inside a shard's merge
// worker must resurface on the caller's goroutine — with its original
// value — so the pipeline layer's recover can convert it to an error
// instead of the process dying on an unjoined goroutine panic.
func TestParallelMergeIntoFaultRethrown(t *testing.T) {
	mkTable := func(a *Arena, keys ...int64) *PartitionedTable[int64] {
		pt := NewPartitionedTable[int64](a, 4, 8)
		for _, k := range keys {
			*pt.At(k) = k
		}
		return pt
	}
	a := NewArena(nil, 0)
	b := NewArena(nil, 0)
	t1 := mkTable(a, 1, 2, 3, 4, 5, 6, 7, 8)
	t2 := mkTable(b, 1, 2, 3, 4, 5, 6, 7, 8)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic was swallowed, not re-raised on the caller")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "merge shard corrupted") {
			t.Fatalf("re-raised panic = %v, want the shard's original value", r)
		}
	}()
	ParallelMergeInto([]*Arena{a, b}, []*PartitionedTable[int64]{t1, t2}, func(d, s *int64) {
		panic("merge shard corrupted")
	})
	t.Fatal("ParallelMergeInto returned despite a panicking merge")
}
