package region

// PartitionedTable is a Table[V] split into P hash partitions, the
// building block of the concurrent query-memory subsystem: every scan
// worker owns a private PartitionedTable in its own leased arena and
// writes group/join state with zero shared mutable state; when the scan
// ends the coordinator folds the workers' tables together with MergeInto.
// Because every table routes a key with the same partition function, a
// key lives in the same partition index everywhere, so the merge is a
// cheap partition-by-partition fold (and could itself be parallelized
// per partition).
//
// Partition routing uses the upper hash bits, in-partition probing the
// lower ones, so partitioning does not degrade probe distribution. Like
// Table, a PartitionedTable is single-goroutine; concurrency comes from
// one-table-per-worker, not from sharing.
type PartitionedTable[V any] struct {
	parts []*Table[V]
	mask  uint64
}

// NewPartitionedTable creates a table with parts partitions (rounded up
// to a power of two, minimum 1) sized for about capHint total entries,
// all storage in a.
func NewPartitionedTable[V any](a *Arena, parts, capHint int) *PartitionedTable[V] {
	p := 1
	for p < parts {
		p <<= 1
	}
	per := capHint / p
	if per < 8 {
		per = 8
	}
	t := &PartitionedTable[V]{parts: make([]*Table[V], p), mask: uint64(p - 1)}
	for i := range t.parts {
		t.parts[i] = NewTable[V](a, per)
	}
	return t
}

// partition routes a key to its partition index (upper hash bits).
func (t *PartitionedTable[V]) partition(key int64) *Table[V] {
	return t.parts[(hash(key)>>32)&t.mask]
}

// At returns a pointer to the value for key, inserting a zero value if
// absent; same in-place accumulation contract as Table.At.
func (t *PartitionedTable[V]) At(key int64) *V { return t.partition(key).At(key) }

// Get returns a pointer to the value for key, or nil if absent.
func (t *PartitionedTable[V]) Get(key int64) *V { return t.partition(key).Get(key) }

// Len returns the number of entries across all partitions.
func (t *PartitionedTable[V]) Len() int {
	n := 0
	for _, p := range t.parts {
		n += p.Len()
	}
	return n
}

// Parts returns the partition count.
func (t *PartitionedTable[V]) Parts() int { return len(t.parts) }

// Range calls fn for every entry until fn returns false, walking
// partitions in index order.
func (t *PartitionedTable[V]) Range(fn func(key int64, v *V) bool) {
	for _, p := range t.parts {
		stopped := false
		p.Range(func(k int64, v *V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// MergeInto folds every entry of t into dst, partition by partition:
// merge is called with dst's value slot (zero-initialized when the key is
// new there) and t's value. Both tables must have the same partition
// count — workers built from the same coordinator spec always do. The
// coordinator calls MergeInto once per worker in worker order, which
// makes the merged state deterministic whenever merge itself is (for a
// quiesced collection the workers' multiset of entries is fixed; worker
// order fixes the fold order).
func (t *PartitionedTable[V]) MergeInto(dst *PartitionedTable[V], merge func(dst, src *V)) {
	if len(t.parts) != len(dst.parts) {
		panic("region: MergeInto across mismatched partition counts")
	}
	for i, p := range t.parts {
		d := dst.parts[i]
		p.Range(func(k int64, v *V) bool {
			merge(d.At(k), v)
			return true
		})
	}
}

// Bytes returns the total arena storage footprint of all partitions.
func (t *PartitionedTable[V]) Bytes() int64 {
	var n int64
	for _, p := range t.parts {
		n += p.Bytes()
	}
	return n
}
