package region

import (
	"sync"
	"sync/atomic"
)

// PartitionedTable is a Table[V] split into P hash partitions, the
// building block of the concurrent query-memory subsystem: every scan
// worker owns a private PartitionedTable in its own leased arena and
// writes group/join state with zero shared mutable state; when the scan
// ends the coordinator folds the workers' tables together with MergeInto.
// Because every table routes a key with the same partition function, a
// key lives in the same partition index everywhere, so the merge is a
// cheap partition-by-partition fold (and could itself be parallelized
// per partition).
//
// Partition routing uses the upper hash bits, in-partition probing the
// lower ones, so partitioning does not degrade probe distribution. Like
// Table, a PartitionedTable is single-goroutine; concurrency comes from
// one-table-per-worker, not from sharing.
type PartitionedTable[V any] struct {
	parts []*Table[V]
	mask  uint64
}

// NewPartitionedTable creates a table with parts partitions (rounded up
// to a power of two, minimum 1) sized for about capHint total entries,
// all storage in a.
func NewPartitionedTable[V any](a *Arena, parts, capHint int) *PartitionedTable[V] {
	p := 1
	for p < parts {
		p <<= 1
	}
	per := capHint / p
	if per < 8 {
		per = 8
	}
	t := &PartitionedTable[V]{parts: make([]*Table[V], p), mask: uint64(p - 1)}
	for i := range t.parts {
		t.parts[i] = NewTable[V](a, per)
	}
	return t
}

// partition routes a key to its partition index (upper hash bits).
func (t *PartitionedTable[V]) partition(key int64) *Table[V] {
	return t.parts[(hash(key)>>32)&t.mask]
}

// At returns a pointer to the value for key, inserting a zero value if
// absent; same in-place accumulation contract as Table.At.
func (t *PartitionedTable[V]) At(key int64) *V { return t.partition(key).At(key) }

// Get returns a pointer to the value for key, or nil if absent.
func (t *PartitionedTable[V]) Get(key int64) *V { return t.partition(key).Get(key) }

// Len returns the number of entries across all partitions.
func (t *PartitionedTable[V]) Len() int {
	n := 0
	for _, p := range t.parts {
		n += p.Len()
	}
	return n
}

// Parts returns the partition count.
func (t *PartitionedTable[V]) Parts() int { return len(t.parts) }

// Partition returns partition i. Distinct partitions are disjoint key
// spaces, so read-only consumers (finishing passes, row emission) may
// walk different partitions from different goroutines concurrently.
func (t *PartitionedTable[V]) Partition(i int) *Table[V] { return t.parts[i] }

// Range calls fn for every entry until fn returns false, walking
// partitions in index order.
func (t *PartitionedTable[V]) Range(fn func(key int64, v *V) bool) {
	for _, p := range t.parts {
		stopped := false
		p.Range(func(k int64, v *V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// MergeInto folds every entry of t into dst, partition by partition:
// merge is called with dst's value slot (zero-initialized when the key is
// new there) and t's value. Both tables must have the same partition
// count — workers built from the same coordinator spec always do. The
// coordinator calls MergeInto once per worker in worker order, which
// makes the merged state deterministic whenever merge itself is (for a
// quiesced collection the workers' multiset of entries is fixed; worker
// order fixes the fold order).
func (t *PartitionedTable[V]) MergeInto(dst *PartitionedTable[V], merge func(dst, src *V)) {
	if len(t.parts) != len(dst.parts) {
		panic("region: MergeInto across mismatched partition counts")
	}
	for i, p := range t.parts {
		d := dst.parts[i]
		p.Range(func(k int64, v *V) bool {
			merge(d.At(k), v)
			return true
		})
	}
}

// ParallelMergeInto folds the non-nil worker tables in srcs into a fresh
// merged table, partition by partition in parallel. Every source
// partition i is folded — in worker (slice) order — into destination
// partition i, so the merged state is exactly what the serial
// worker-order MergeInto fold produces whenever merge itself is
// deterministic: partitions are disjoint key spaces, and within a
// partition the fold order is the worker order regardless of which
// goroutine runs it.
//
// Arenas are single-owner, so the shard schedule and the arena
// assignment must coincide; this function owns that invariant. Shard
// goroutine g builds destination partitions {i : i mod G == g}, G =
// len(arenas), allocating all of them from arenas[g] (pass one arena to
// merge serially with zero goroutine overhead). Each destination
// partition is pre-sized to the sum of its source partitions' entry
// counts, so the merge itself almost never grows.
//
// All srcs must share one partition count (workers built from the same
// spec always do). Returns nil when every source is nil.
func ParallelMergeInto[V any](arenas []*Arena, srcs []*PartitionedTable[V], merge func(dst, src *V)) *PartitionedTable[V] {
	if len(arenas) == 0 {
		panic("region: ParallelMergeInto needs at least one arena")
	}
	var first *PartitionedTable[V]
	for _, t := range srcs {
		if t == nil {
			continue
		}
		if first == nil {
			first = t
		} else if t.Parts() != first.Parts() {
			panic("region: ParallelMergeInto across mismatched partition counts")
		}
	}
	if first == nil {
		return nil
	}
	parts := first.Parts()
	shards := len(arenas)
	if shards > parts {
		shards = parts
	}
	dst := &PartitionedTable[V]{parts: make([]*Table[V], parts), mask: first.mask}
	mergeShard := func(g int) {
		a := arenas[g]
		for i := g; i < parts; i += shards {
			hint := 0
			for _, t := range srcs {
				if t != nil {
					hint += t.parts[i].Len()
				}
			}
			d := NewTable[V](a, hint)
			dst.parts[i] = d
			for _, t := range srcs {
				if t == nil {
					continue
				}
				t.parts[i].Range(func(k int64, v *V) bool {
					merge(d.At(k), v)
					return true
				})
			}
		}
	}
	if shards == 1 {
		mergeShard(0)
		return dst
	}
	// A merge callback that panics in a shard goroutine must not kill the
	// process: capture the first panic and re-raise it on the caller's
	// goroutine after every shard has unwound, where the query layer's
	// recover guard can convert it into a query-scoped error.
	var panicked atomic.Pointer[any]
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			mergeShard(g)
		}(g)
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
	return dst
}

// Bytes returns the total arena storage footprint of all partitions.
func (t *PartitionedTable[V]) Bytes() int64 {
	var n int64
	for _, p := range t.parts {
		n += p.Bytes()
	}
	return n
}
