package region

import (
	"testing"
)

func TestPartitionedTableBasics(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	pt := NewPartitionedTable[int64](a, 4, 64)
	if pt.Parts() != 4 {
		t.Fatalf("Parts() = %d, want 4", pt.Parts())
	}
	const n = 5000
	for i := int64(0); i < n; i++ {
		*pt.At(i) += i
		*pt.At(i) += 1
	}
	if pt.Len() != n {
		t.Fatalf("Len = %d, want %d", pt.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		v := pt.Get(i)
		if v == nil || *v != i+1 {
			t.Fatalf("Get(%d) = %v, want %d", i, v, i+1)
		}
	}
	if pt.Get(n+1) != nil {
		t.Fatal("Get of absent key not nil")
	}
	seen := 0
	pt.Range(func(k int64, v *int64) bool {
		if *v != k+1 {
			t.Fatalf("Range(%d) = %d, want %d", k, *v, k+1)
		}
		seen++
		return true
	})
	if seen != n {
		t.Fatalf("Range visited %d, want %d", seen, n)
	}
}

// TestPartitionedTableRoundsParts: partition counts round up to a power
// of two with a floor of one.
func TestPartitionedTableRoundsParts(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		if got := NewPartitionedTable[int64](a, tc.in, 16).Parts(); got != tc.want {
			t.Fatalf("parts(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// mergeRun simulates `workers` scan workers filling private partitioned
// tables from a deterministic key stream (interleaved by `stride` to vary
// per-worker interleaving) and merging them in worker order.
func mergeRun(t *testing.T, a *Arena, workers, parts, stride int) map[int64]int64 {
	t.Helper()
	tables := make([]*PartitionedTable[int64], workers)
	for w := range tables {
		tables[w] = NewPartitionedTable[int64](a, parts, 32)
	}
	// A fixed stream of contributions: which worker absorbs a given
	// contribution depends on workers and stride, but the multiset of
	// (key, value) contributions never does.
	const keys = 512
	for i := 0; i < keys*4; i++ {
		w := (i / stride) % workers
		k := int64(i % keys)
		*tables[w].At(k) += int64(k + 1)
	}
	dst := NewPartitionedTable[int64](a, parts, 32)
	for _, src := range tables {
		src.MergeInto(dst, func(d, s *int64) { *d += *s })
	}
	out := make(map[int64]int64, dst.Len())
	dst.Range(func(k int64, v *int64) bool {
		out[k] = *v
		return true
	})
	return out
}

// TestPartitionedTableMergeDeterminism: the merged state must not depend
// on how rows were interleaved across workers — only on the multiset of
// contributions — and repeated merges of the same inputs are identical.
func TestPartitionedTableMergeDeterminism(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	want := mergeRun(t, a, 4, 4, 1)
	for _, tc := range []struct{ workers, parts, stride int }{
		{4, 4, 7}, {4, 4, 13}, {2, 4, 3}, {8, 4, 5}, {1, 4, 1},
	} {
		got := mergeRun(t, a, tc.workers, tc.parts, tc.stride)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d keys, want %d", tc, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%+v: key %d = %d, want %d", tc, k, got[k], v)
			}
		}
	}
}

// buildWorkerTables fills `workers` private tables from a deterministic
// contribution stream (the same stream mergeRun uses).
func buildWorkerTables(a *Arena, workers, parts, stride, keys int) []*PartitionedTable[int64] {
	tables := make([]*PartitionedTable[int64], workers)
	for w := range tables {
		tables[w] = NewPartitionedTable[int64](a, parts, 32)
	}
	for i := 0; i < keys*4; i++ {
		w := (i / stride) % workers
		k := int64(i % keys)
		*tables[w].At(k) += int64(k + 1)
	}
	return tables
}

// TestParallelMergeIntoMatchesSerial: the parallel per-partition merge
// must produce exactly the serial worker-order MergeInto fold — same
// keys, same values — for every shard count, including shard counts
// exceeding the partition count and nil worker slots.
func TestParallelMergeIntoMatchesSerial(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	add := func(d, s *int64) { *d += *s }
	for _, tc := range []struct{ workers, parts, stride, shards int }{
		{4, 4, 7, 1}, {4, 4, 7, 2}, {4, 4, 7, 4}, {4, 4, 7, 8},
		{2, 8, 3, 3}, {8, 2, 5, 4}, {1, 4, 1, 2}, {3, 16, 11, 5},
	} {
		tables := buildWorkerTables(a, tc.workers, tc.parts, tc.stride, 512)
		// Serial oracle: worker-order MergeInto fold into a fresh table.
		serial := NewPartitionedTable[int64](a, tc.parts, 32)
		for _, src := range tables {
			src.MergeInto(serial, add)
		}
		// Nil slots must be skipped (workers that saw no blocks).
		withNil := append([]*PartitionedTable[int64]{nil}, tables...)
		withNil = append(withNil, nil)
		arenas := make([]*Arena, tc.shards)
		for i := range arenas {
			arenas[i] = NewArena(nil, 0)
			defer arenas[i].Release()
		}
		merged := ParallelMergeInto(arenas, withNil, add)
		if merged == nil {
			t.Fatalf("%+v: nil merged table", tc)
		}
		if merged.Parts() != serial.Parts() {
			t.Fatalf("%+v: merged parts %d, want %d", tc, merged.Parts(), serial.Parts())
		}
		if merged.Len() != serial.Len() {
			t.Fatalf("%+v: merged %d entries, want %d", tc, merged.Len(), serial.Len())
		}
		serial.Range(func(k int64, v *int64) bool {
			got := merged.Get(k)
			if got == nil || *got != *v {
				t.Fatalf("%+v: key %d = %v, want %d", tc, k, got, *v)
			}
			return true
		})
	}
}

// TestParallelMergeIntoAllNil: no worker built state → nil result.
func TestParallelMergeIntoAllNil(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	if got := ParallelMergeInto([]*Arena{a}, []*PartitionedTable[int64]{nil, nil}, func(d, s *int64) { *d += *s }); got != nil {
		t.Fatalf("merged = %v, want nil", got)
	}
}

// TestParallelMergeIntoMismatchPanics mirrors the MergeInto guard.
func TestParallelMergeIntoMismatchPanics(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	srcs := []*PartitionedTable[int64]{
		NewPartitionedTable[int64](a, 2, 16),
		NewPartitionedTable[int64](a, 4, 16),
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ParallelMergeInto did not panic")
		}
	}()
	ParallelMergeInto([]*Arena{a}, srcs, func(d, s *int64) { *d += *s })
}

// TestPartitionedTableMergeMismatchPanics: merging across different
// partition counts is a programming error and must fail loudly.
func TestPartitionedTableMergeMismatchPanics(t *testing.T) {
	a := NewArena(nil, 0)
	defer a.Release()
	src := NewPartitionedTable[int64](a, 2, 16)
	dst := NewPartitionedTable[int64](a, 4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MergeInto did not panic")
		}
	}()
	src.MergeInto(dst, func(d, s *int64) { *d += *s })
}
