package region

import (
	"sync"

	"repro/internal/offheap"
)

// DefaultPoolRetain is the retained-footprint bound for an ArenaPool when
// none is given: idle arenas beyond it are released to the OS instead of
// parked.
const DefaultPoolRetain = 16 << 20

// ArenaPool hands out arenas on lease and takes them back when the query
// finishes. It is the concurrent replacement for the old one-arena-per-
// query-stream design: any number of goroutines can lease simultaneously
// (each leased arena is still single-owner), and the pool bounds the
// total footprint it retains across leases — a returned arena that would
// push the idle set past the bound is released to the OS instead of
// parked.
type ArenaPool struct {
	alloc *offheap.Allocator
	chunk int
	bound int64

	mu        sync.Mutex
	idle      []*Arena
	idleBytes int64

	leases  int64
	reuses  int64
	returns int64
}

// NewArenaPool creates a pool whose arenas use the given allocator and
// chunk size (nil/0 select the Arena defaults) and whose idle set retains
// at most maxRetain bytes of chunk footprint (0 selects
// DefaultPoolRetain, negative retains nothing).
func NewArenaPool(alloc *offheap.Allocator, chunkSize int, maxRetain int64) *ArenaPool {
	if alloc == nil {
		alloc = offheap.New()
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if maxRetain == 0 {
		maxRetain = DefaultPoolRetain
	}
	return &ArenaPool{alloc: alloc, chunk: chunkSize, bound: maxRetain}
}

// Lease returns an empty arena owned by the caller until Return. The
// arena itself is single-goroutine, but Lease/Return are safe to call
// concurrently — this is what lets concurrent queries on one query object
// each get private region state.
func (p *ArenaPool) Lease() *Arena {
	p.mu.Lock()
	p.leases++
	if n := len(p.idle); n > 0 {
		a := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.idleBytes -= a.Footprint()
		p.reuses++
		p.mu.Unlock()
		return a
	}
	p.mu.Unlock()
	return NewArena(p.alloc, p.chunk)
}

// Return resets a and parks it for the next Lease, releasing it to the OS
// instead whenever parking would push the idle footprint past the pool's
// bound. Returning nil is a no-op, so callers can defer Return
// unconditionally.
func (p *ArenaPool) Return(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	fp := a.Footprint()
	p.mu.Lock()
	p.returns++
	if p.idleBytes+fp > p.bound {
		p.mu.Unlock()
		a.Release()
		return
	}
	p.idle = append(p.idle, a)
	p.idleBytes += fp
	p.mu.Unlock()
}

// RetainedBytes reports the chunk footprint currently parked in the idle
// set.
func (p *ArenaPool) RetainedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.idleBytes
}

// RetainBound reports the current retained-footprint bound.
func (p *ArenaPool) RetainBound() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bound
}

// SetRetainBound replaces the retained-footprint bound. It only gates
// future Returns — pair it with TrimTo to shed already-parked arenas.
// The memory governor lowers the bound under pressure and restores it
// when pressure clears; a negative bound retains nothing.
func (p *ArenaPool) SetRetainBound(bound int64) {
	p.mu.Lock()
	p.bound = bound
	p.mu.Unlock()
}

// TrimTo releases idle arenas (newest-parked first) until the retained
// footprint is at most target, returning the bytes freed. Leased arenas
// are untouched; the pool stays usable.
func (p *ArenaPool) TrimTo(target int64) (freed int64) {
	if target < 0 {
		target = 0
	}
	p.mu.Lock()
	var drop []*Arena
	for len(p.idle) > 0 && p.idleBytes > target {
		a := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		p.idleBytes -= a.Footprint()
		freed += a.Footprint()
		drop = append(drop, a)
	}
	p.mu.Unlock()
	for _, a := range drop {
		a.Release()
	}
	return freed
}

// Stats reports lifetime lease and reuse counts.
func (p *ArenaPool) Stats() (leases, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leases, p.reuses
}

// Returns reports the lifetime Return count. Leases == Returns whenever
// no query holds a leased arena — the robustness suites assert this
// balance after cancellation, double-Close and fault-injection cycles.
func (p *ArenaPool) Returns() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.returns
}

// Close releases every idle arena to the OS. Leased arenas are unaffected
// and may still be Returned (the pool stays usable).
func (p *ArenaPool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.idleBytes = 0
	p.mu.Unlock()
	for _, a := range idle {
		a.Release()
	}
}
