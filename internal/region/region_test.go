package region

import (
	"testing"
	"unsafe"
)

func TestArenaAllocAlignment(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	for _, align := range []uintptr{1, 2, 4, 8, 16, 32, 64} {
		p := a.Alloc(3, align)
		if uintptr(p)&(align-1) != 0 {
			t.Fatalf("alloc not aligned to %d: %p", align, p)
		}
	}
}

func TestArenaAllocZeroed(t *testing.T) {
	a := NewArena(nil, 1024)
	defer a.Release()
	// Dirty a chunk, reset, and check the recycled memory reads zero.
	p := (*[512]byte)(a.Alloc(512, 8))
	for i := range p {
		p[i] = 0xff
	}
	a.Reset()
	q := (*[512]byte)(a.Alloc(512, 8))
	for i, b := range q {
		if b != 0 {
			t.Fatalf("recycled byte %d = %#x, want 0", i, b)
		}
	}
}

func TestArenaGrowsAcrossChunks(t *testing.T) {
	a := NewArena(nil, 1024)
	defer a.Release()
	seen := map[unsafe.Pointer]bool{}
	for i := 0; i < 100; i++ {
		p := a.Alloc(100, 8)
		if seen[p] {
			t.Fatal("allocation overlap")
		}
		seen[p] = true
		// Write the full allocation; overlap would corrupt neighbours.
		for j := 0; j < 100; j++ {
			*(*byte)(unsafe.Add(p, j)) = byte(i)
		}
	}
	if a.Footprint() < 100*100 {
		t.Fatalf("footprint %d too small", a.Footprint())
	}
	if a.Used() != 100*100 {
		t.Fatalf("used = %d, want %d", a.Used(), 100*100)
	}
}

func TestArenaBigAllocation(t *testing.T) {
	a := NewArena(nil, 1024)
	defer a.Release()
	p := a.Alloc(10_000, 8)
	for i := 0; i < 10_000; i++ {
		*(*byte)(unsafe.Add(p, i)) = 0xab
	}
	// A subsequent small allocation must not land inside the big one.
	q := a.Alloc(64, 8)
	qa, pa := uintptr(q), uintptr(p)
	if qa >= pa && qa < pa+10_000 {
		t.Fatal("small allocation placed inside dedicated big chunk")
	}
	before := a.Footprint()
	a.Reset()
	if a.Footprint() >= before {
		t.Fatalf("Reset did not release the dedicated chunk: %d -> %d", before, a.Footprint())
	}
}

func TestArenaResetRecyclesChunks(t *testing.T) {
	a := NewArena(nil, 1024)
	defer a.Release()
	for i := 0; i < 50; i++ {
		a.Alloc(512, 8)
	}
	fp := a.Footprint()
	a.Reset()
	for i := 0; i < 50; i++ {
		a.Alloc(512, 8)
	}
	if a.Footprint() != fp {
		t.Fatalf("footprint changed across Reset: %d -> %d", fp, a.Footprint())
	}
}

// TestArenaResetDecaysFootprint is the footprint-retention regression
// test: one large cycle must not pin peak memory forever. Reset retains
// what the previous cycle touched, so after a large cycle followed by a
// small one the footprint decays back to a single chunk.
func TestArenaResetDecaysFootprint(t *testing.T) {
	const chunk = 1024
	a := NewArena(nil, chunk)
	defer a.Release()
	for i := 0; i < 200; i++ {
		a.Alloc(512, 8)
	}
	peak := a.Footprint()
	if peak < 100*chunk {
		t.Fatalf("peak footprint %d unexpectedly small", peak)
	}
	// First reset still retains the peak working set (it was all touched
	// last cycle)...
	a.Reset()
	if a.Footprint() != peak {
		t.Fatalf("footprint after first Reset = %d, want the working set %d", a.Footprint(), peak)
	}
	// ...a small cycle then decays retention to what it used.
	a.Alloc(512, 8)
	a.Reset()
	if fp := a.Footprint(); fp != chunk {
		t.Fatalf("footprint after small cycle = %d, want one chunk (%d)", fp, chunk)
	}
	// An idle cycle (no allocations at all) keeps the one-chunk floor.
	a.Reset()
	if fp := a.Footprint(); fp != chunk {
		t.Fatalf("footprint after idle cycle = %d, want one chunk (%d)", fp, chunk)
	}
	// The arena stays fully usable after decay.
	p := (*[512]byte)(a.Alloc(512, 8))
	for i := range p {
		if p[i] != 0 {
			t.Fatal("post-decay allocation not zeroed")
		}
	}
}

func TestArenaBadAlignPanics(t *testing.T) {
	a := NewArena(nil, 1024)
	defer a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two alignment accepted")
		}
	}()
	a.Alloc(8, 3)
}

func TestNewTyped(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	type pair struct {
		A int64
		B float64
	}
	p := New[pair](a)
	if p.A != 0 || p.B != 0 {
		t.Fatal("not zeroed")
	}
	p.A, p.B = 7, 2.5
	q := New[pair](a)
	if q.A != 0 {
		t.Fatal("second allocation not zeroed")
	}
	if p.A != 7 {
		t.Fatal("allocations overlap")
	}
}

func TestNewSlice(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	s := NewSlice[int64](a, 100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		s[i] = int64(i)
	}
	for i := range s {
		if s[i] != int64(i) {
			t.Fatal("slice storage corrupt")
		}
	}
	if NewSlice[int64](a, 0) != nil {
		t.Fatal("zero-length slice should be nil")
	}
}

func TestPointerFreeEnforced(t *testing.T) {
	a := NewArena(nil, 4096)
	defer a.Release()
	for name, fn := range map[string]func(){
		"pointer": func() { New[*int](a) },
		"string":  func() { New[string](a) },
		"slice":   func() { New[[]int](a) },
		"map":     func() { New[map[int]int](a) },
		"nested": func() {
			type bad struct{ S string }
			New[bad](a)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s type accepted into region", name)
				}
			}()
			fn()
		}()
	}
	// Pointer-free composites are fine.
	type ok struct {
		A [4]int32
		B struct{ C, D uint64 }
	}
	if p := New[ok](a); p == nil {
		t.Fatal("pointer-free struct rejected")
	}
}
