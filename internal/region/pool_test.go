package region

import (
	"sync"
	"testing"
)

func TestArenaPoolLeaseReturnReuses(t *testing.T) {
	p := NewArenaPool(nil, 1024, 1<<20)
	defer p.Close()
	a := p.Lease()
	a.Alloc(512, 8)
	p.Return(a)
	if got := p.RetainedBytes(); got != 1024 {
		t.Fatalf("retained after return = %d, want 1024", got)
	}
	b := p.Lease()
	if b != a {
		t.Fatal("second lease did not reuse the returned arena")
	}
	if b.Used() != 0 {
		t.Fatalf("reused arena not reset: used=%d", b.Used())
	}
	leases, reuses := p.Stats()
	if leases != 2 || reuses != 1 {
		t.Fatalf("stats = (%d leases, %d reuses), want (2, 1)", leases, reuses)
	}
	p.Return(b)
}

// TestArenaPoolBoundsRetainedFootprint: returned arenas past the bound
// are released, not parked, so the idle set's footprint stays bounded no
// matter how large the queries were.
func TestArenaPoolBoundsRetainedFootprint(t *testing.T) {
	const chunk = 1024
	p := NewArenaPool(nil, chunk, 3*chunk)
	defer p.Close()
	arenas := make([]*Arena, 8)
	for i := range arenas {
		arenas[i] = p.Lease()
		arenas[i].Alloc(512, 8) // one chunk each
	}
	for _, a := range arenas {
		p.Return(a)
	}
	if got := p.RetainedBytes(); got > 3*chunk {
		t.Fatalf("retained %d bytes, bound is %d", got, 3*chunk)
	}
	if got := p.RetainedBytes(); got != 3*chunk {
		t.Fatalf("retained %d bytes, want the full bound %d", got, 3*chunk)
	}
}

// TestArenaPoolTrimToReleasesIdle: TrimTo sheds parked arenas down to
// the target and reports the bytes freed; leased arenas are untouched
// and the pool stays usable.
func TestArenaPoolTrimToReleasesIdle(t *testing.T) {
	const chunk = 1024
	p := NewArenaPool(nil, chunk, 8*chunk)
	defer p.Close()
	arenas := make([]*Arena, 4)
	for i := range arenas {
		arenas[i] = p.Lease()
		arenas[i].Alloc(512, 8)
	}
	leased := p.Lease()
	leased.Alloc(512, 8)
	for _, a := range arenas {
		p.Return(a)
	}
	if got := p.RetainedBytes(); got != 4*chunk {
		t.Fatalf("retained = %d, want %d", got, 4*chunk)
	}
	if freed := p.TrimTo(chunk); freed != 3*chunk {
		t.Fatalf("TrimTo(%d) freed %d, want %d", chunk, freed, 3*chunk)
	}
	if got := p.RetainedBytes(); got != chunk {
		t.Fatalf("retained after trim = %d, want %d", got, chunk)
	}
	if freed := p.TrimTo(chunk); freed != 0 {
		t.Fatalf("idempotent trim freed %d, want 0", freed)
	}
	// Negative targets clamp to zero (the governor's Critical trim).
	if freed := p.TrimTo(-1); freed != chunk {
		t.Fatalf("TrimTo(-1) freed %d, want %d", freed, chunk)
	}
	if got := p.RetainedBytes(); got != 0 {
		t.Fatalf("retained after full trim = %d, want 0", got)
	}
	// The leased arena was never the pool's to release.
	p.Return(leased)
	if got := p.RetainedBytes(); got != chunk {
		t.Fatalf("retained after returning leased arena = %d, want %d", got, chunk)
	}
}

// TestArenaPoolRetainBoundGatesReturns: lowering the bound via
// SetRetainBound gates future returns (the governor pairs it with
// TrimTo); restoring the base bound lets the pool refill on demand.
func TestArenaPoolRetainBoundGatesReturns(t *testing.T) {
	const chunk = 1024
	p := NewArenaPool(nil, chunk, 4*chunk)
	defer p.Close()
	if got := p.RetainBound(); got != 4*chunk {
		t.Fatalf("RetainBound = %d, want %d", got, 4*chunk)
	}
	p.SetRetainBound(0)
	a := p.Lease()
	a.Alloc(512, 8)
	p.Return(a)
	if got := p.RetainedBytes(); got != 0 {
		t.Fatalf("zero bound parked %d bytes", got)
	}
	p.SetRetainBound(4 * chunk)
	b := p.Lease()
	b.Alloc(512, 8)
	p.Return(b)
	if got := p.RetainedBytes(); got != chunk {
		t.Fatalf("restored bound retained %d, want %d", got, chunk)
	}
}

func TestArenaPoolReturnNil(t *testing.T) {
	p := NewArenaPool(nil, 0, 0)
	defer p.Close()
	p.Return(nil) // must not panic: callers defer Return unconditionally
}

func TestArenaPoolClose(t *testing.T) {
	p := NewArenaPool(nil, 1024, 1<<20)
	a := p.Lease()
	a.Alloc(100, 8)
	p.Return(a)
	p.Close()
	if got := p.RetainedBytes(); got != 0 {
		t.Fatalf("retained after Close = %d, want 0", got)
	}
	// Pool stays usable after Close.
	b := p.Lease()
	b.Alloc(100, 8)
	p.Return(b)
	p.Close()
}

// TestArenaPoolParallelLease: concurrent lease/return must hand every
// goroutine a private arena — the race detector plus overlap checks catch
// any sharing.
func TestArenaPoolParallelLease(t *testing.T) {
	p := NewArenaPool(nil, 4096, 1<<20)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := p.Lease()
				s := NewSlice[int64](a, 64)
				for j := range s {
					s[j] = int64(g)
				}
				for j := range s {
					if s[j] != int64(g) {
						t.Errorf("arena shared across goroutines")
						break
					}
				}
				p.Return(a)
			}
		}(g)
	}
	wg.Wait()
}
