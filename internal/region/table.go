package region

import "unsafe"

// Table is an open-addressing hash table from int64 keys to pointer-free
// values, with all storage in an Arena. It is the intermediate data
// structure the paper's unsafe compiled queries use for group-by and
// semi-join state: the entire table vanishes with the region at the end
// of the query, no per-entry free and nothing for a collector to trace.
//
// There is no delete — query intermediates only grow — which keeps
// probing tombstone-free. Not safe for concurrent use.
type Table[V any] struct {
	a *Arena

	keys  []int64
	vals  []V
	state []uint8 // 0 = empty, 1 = occupied

	n    int
	mask uint64
}

// NewTable creates a table sized for about capHint entries.
func NewTable[V any](a *Arena, capHint int) *Table[V] {
	checkPointerFree[V]()
	capacity := 16
	for capacity*3 < capHint*4 { // initial load factor headroom
		capacity <<= 1
	}
	t := &Table[V]{a: a}
	t.grow(capacity)
	return t
}

func (t *Table[V]) grow(capacity int) {
	oldKeys, oldVals, oldState := t.keys, t.vals, t.state
	t.keys = NewSlice[int64](t.a, capacity)
	t.vals = NewSlice[V](t.a, capacity)
	t.state = NewSlice[uint8](t.a, capacity)
	t.mask = uint64(capacity - 1)
	t.n = 0
	for i, st := range oldState {
		if st != 0 {
			*t.At(oldKeys[i]) = oldVals[i]
		}
	}
	// The old arrays stay in the arena until Reset — the region trade-off
	// the paper accepts for intermediates.
}

// hash mixes the key (splitmix64 finalizer).
func hash(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// At returns a pointer to the value for key, inserting a zero value if
// absent. The pointer stays valid until the next grow — use it for
// immediate in-place accumulation, the compiled-query idiom.
func (t *Table[V]) At(key int64) *V {
	if uint64(t.n)*4 >= uint64(len(t.keys))*3 {
		t.grow(len(t.keys) * 2)
	}
	i := hash(key) & t.mask
	for {
		if t.state[i] == 0 {
			t.state[i] = 1
			t.keys[i] = key
			t.n++
			return &t.vals[i]
		}
		if t.keys[i] == key {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// Get returns a pointer to the value for key, or nil if absent.
func (t *Table[V]) Get(key int64) *V {
	i := hash(key) & t.mask
	for {
		if t.state[i] == 0 {
			return nil
		}
		if t.keys[i] == key {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.n }

// Range calls fn for every entry until fn returns false. Iteration order
// is unspecified.
func (t *Table[V]) Range(fn func(key int64, v *V) bool) {
	for i, st := range t.state {
		if st != 0 {
			if !fn(t.keys[i], &t.vals[i]) {
				return
			}
		}
	}
}

// Bytes returns the table's current storage footprint in the arena.
func (t *Table[V]) Bytes() int64 {
	var v V
	per := int64(unsafe.Sizeof(v)) + 8 + 1
	return per * int64(len(t.keys))
}

// Semi-join key sets are PartitionedTable[struct{}] (presence via
// At/Get) — one table shape serves both serial and per-worker-merged
// parallel queries; the former Set wrapper was removed with its last
// caller.
