package colstore

import (
	"repro/internal/decimal"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Q1–Q6 executors: single-threaded, column-at-a-time, value-based joins,
// clustered-index range pruning on the date keys. The shapes mirror how
// a columnar RDBMS plans these queries, which is what Figure 13 contrasts
// with the SMC reference joins.

// Q1 seeks the clustered ShipDate index and scans the qualifying prefix.
func (db *DB) Q1(p tpch.Params) []tpch.Q1Row {
	cutoff := p.Q1Cutoff()
	lc := &db.Lineitem
	// shipdate <= cutoff  ⇔  rows [0, hi) of the clustered order.
	hi := dateLowerBound(lc.ShipDate, cutoff+1)
	type acc struct {
		rf, ls                              int32
		sumQty, sumBase, sumDisc, sumCharge decimal.Dec128
		count                               int64
	}
	// RetFlag and LineStatus are single bytes, so the combined group key
	// fits 16 bits: a dense slot table replaces the hash-map lookup in
	// the tightest loop of the executor. slot holds index+1 so the zeroed
	// table means "no group yet"; the table lives on the DB and only the
	// touched entries are re-zeroed at the end, so repeated queries pay
	// no per-call allocation.
	if db.q1Slot == nil {
		db.q1Slot = make([]int32, 1<<16)
	}
	slot := db.q1Slot
	accs := make([]acc, 0, 8)
	one := decimal.FromInt64(1)
	for i := 0; i < hi; i++ {
		k := uint16(lc.RetFlag[i])<<8 | uint16(lc.LineStatus[i])
		j := slot[k]
		if j == 0 {
			accs = append(accs, acc{rf: lc.RetFlag[i], ls: lc.LineStatus[i]})
			j = int32(len(accs))
			slot[k] = j
		}
		a := &accs[j-1]
		a.sumQty = a.sumQty.Add(lc.Quantity[i])
		a.sumBase = a.sumBase.Add(lc.ExtPrice[i])
		a.sumDisc = a.sumDisc.Add(lc.Discount[i])
		disc := lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i]))
		a.sumCharge = a.sumCharge.Add(disc.Mul(one.Add(lc.Tax[i])))
		a.count++
	}
	rows := make([]tpch.Q1Row, 0, len(accs))
	for i := range accs {
		a := &accs[i]
		slot[uint16(a.rf)<<8|uint16(a.ls)] = 0 // reset for the next call
		rows = append(rows, tpch.Q1Row{
			ReturnFlag: a.rf,
			LineStatus: a.ls,
			SumQty:     a.sumQty,
			SumBase:    a.sumBase,
			SumDisc:    a.sumDisc,
			SumCharge:  a.sumCharge,
			AvgQty:     a.sumQty.DivInt64(a.count),
			AvgPrice:   a.sumBase.DivInt64(a.count),
			AvgDisc:    a.sumDisc.DivInt64(a.count),
			Count:      a.count,
		})
	}
	tpch.SortQ1(rows)
	return rows
}

// Q2 uses value-based hash joins part→partsupp→supplier→nation.
func (db *DB) Q2(p tpch.Params) []tpch.Q2Row {
	// Qualifying parts.
	partOK := make(map[int64]int32) // key -> part row
	for i := 0; i < db.Part.N; i++ {
		if db.Part.Size[i] == p.Q2Size && hasSuffix(db.Part.Type[i], p.Q2Type) {
			partOK[db.Part.Key[i]] = int32(i)
		}
	}
	// Suppliers in the region.
	rk := db.regionKeyByName(p.Q2Region)
	nations := db.nationsInRegion(rk)
	suppOK := make(map[int64]int32)
	for i := 0; i < db.Supplier.N; i++ {
		if _, ok := nations[db.Supplier.NationKey[i]]; ok {
			suppOK[db.Supplier.Key[i]] = int32(i)
		}
	}
	// Minimum cost per part among qualifying suppliers.
	minCost := make(map[int64]decimal.Dec128)
	for i := 0; i < db.PartSupp.N; i++ {
		pk := db.PartSupp.PartKey[i]
		if _, ok := partOK[pk]; !ok {
			continue
		}
		if _, ok := suppOK[db.PartSupp.SuppKey[i]]; !ok {
			continue
		}
		cur, ok := minCost[pk]
		if !ok || db.PartSupp.Cost[i].Less(cur) {
			minCost[pk] = db.PartSupp.Cost[i]
		}
	}
	var rows []tpch.Q2Row
	for i := 0; i < db.PartSupp.N; i++ {
		pk := db.PartSupp.PartKey[i]
		mc, ok := minCost[pk]
		if !ok || db.PartSupp.Cost[i] != mc {
			continue
		}
		srow, ok := suppOK[db.PartSupp.SuppKey[i]]
		if !ok {
			continue
		}
		prow := partOK[pk]
		rows = append(rows, tpch.Q2Row{
			AcctBal: db.Supplier.AcctBal[srow],
			SName:   db.Supplier.Name[srow],
			NName:   nations[db.Supplier.NationKey[srow]],
			PartKey: pk,
			Mfgr:    db.Part.Mfgr[prow],
			Address: db.Supplier.Address[srow],
			Phone:   db.Supplier.Phone[srow],
			Comment: db.Supplier.Comment[srow],
		})
	}
	return tpch.SortQ2(rows)
}

// Q3 seeks both clustered indexes and hash-joins on integer keys.
func (db *DB) Q3(p tpch.Params) []tpch.Q3Row {
	segCode := db.Customer.Segment.Code(p.Q3Segment)
	if segCode < 0 {
		return nil
	}
	// Customers in segment.
	custOK := make(map[int64]bool)
	for i := 0; i < db.Customer.N; i++ {
		if int(db.Customer.Segment.Codes[i]) == segCode {
			custOK[db.Customer.Key[i]] = true
		}
	}
	// Orders with o_orderdate < date: clustered prefix.
	type oinfo struct {
		date  types.Date
		sprio int32
	}
	ohi := dateLowerBound(db.Orders.OrderDate, p.Q3Date)
	orderOK := make(map[int64]oinfo)
	for i := 0; i < ohi; i++ {
		if custOK[db.Orders.CustKey[i]] {
			orderOK[db.Orders.Key[i]] = oinfo{date: db.Orders.OrderDate[i], sprio: db.Orders.ShipPrio[i]}
		}
	}
	// Lineitems with l_shipdate > date: clustered suffix.
	lc := &db.Lineitem
	llo := dateLowerBound(lc.ShipDate, p.Q3Date+1)
	one := decimal.FromInt64(1)
	rev := make(map[int64]decimal.Dec128)
	for i := llo; i < lc.N; i++ {
		ok := lc.OrderKey[i]
		if _, hit := orderOK[ok]; !hit {
			continue
		}
		rev[ok] = rev[ok].Add(lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i])))
	}
	rows := make([]tpch.Q3Row, 0, len(rev))
	for ok, r := range rev {
		oi := orderOK[ok]
		rows = append(rows, tpch.Q3Row{OrderKey: ok, Revenue: r, OrderDate: oi.date, ShipPriority: oi.sprio})
	}
	return tpch.SortQ3(rows)
}

// Q4 seeks the ORDERS clustered index for the quarter and semi-joins
// lineitems by orderkey.
func (db *DB) Q4(p tpch.Params) []tpch.Q4Row {
	hi := p.Q4Date.AddMonths(3)
	olo := dateLowerBound(db.Orders.OrderDate, p.Q4Date)
	ohi := dateLowerBound(db.Orders.OrderDate, hi)
	inRange := make(map[int64]bool, ohi-olo)
	for i := olo; i < ohi; i++ {
		inRange[db.Orders.Key[i]] = true
	}
	late := make(map[int64]bool)
	lc := &db.Lineitem
	for i := 0; i < lc.N; i++ {
		if lc.CommitDate[i] < lc.RecvDate[i] && inRange[lc.OrderKey[i]] {
			late[lc.OrderKey[i]] = true
		}
	}
	counts := make(map[string]int64)
	for i := olo; i < ohi; i++ {
		if late[db.Orders.Key[i]] {
			counts[db.Orders.Priority.At(i)]++
		}
	}
	rows := make([]tpch.Q4Row, 0, len(counts))
	for pr, n := range counts {
		rows = append(rows, tpch.Q4Row{Priority: pr, Count: n})
	}
	tpch.SortQ4(rows)
	return rows
}

// Q5 seeks the ORDERS clustered index for the year, then hash-joins.
func (db *DB) Q5(p tpch.Params) []tpch.Q5Row {
	hi := p.Q5Date.AddYears(1)
	rk := db.regionKeyByName(p.Q5Region)
	nations := db.nationsInRegion(rk)

	// Orders in the year, with the customer's nation attached.
	olo := dateLowerBound(db.Orders.OrderDate, p.Q5Date)
	ohi := dateLowerBound(db.Orders.OrderDate, hi)
	orderNation := make(map[int64]int64, ohi-olo)
	for i := olo; i < ohi; i++ {
		crow, ok := db.Customer.keyToRow[db.Orders.CustKey[i]]
		if !ok {
			continue
		}
		orderNation[db.Orders.Key[i]] = db.Customer.NationKey[crow]
	}
	one := decimal.FromInt64(1)
	rev := make(map[string]decimal.Dec128)
	lc := &db.Lineitem
	for i := 0; i < lc.N; i++ {
		cnk, ok := orderNation[lc.OrderKey[i]]
		if !ok {
			continue
		}
		srow, ok := db.Supplier.keyToRow[lc.SuppKey[i]]
		if !ok {
			continue
		}
		snk := db.Supplier.NationKey[srow]
		name, inRegion := nations[snk]
		if !inRegion || snk != cnk {
			continue
		}
		rev[name] = rev[name].Add(lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i])))
	}
	rows := make([]tpch.Q5Row, 0, len(rev))
	for n, v := range rev {
		rows = append(rows, tpch.Q5Row{Nation: n, Revenue: v})
	}
	tpch.SortQ5(rows)
	return rows
}

// Q6 is a pure clustered-index range scan.
func (db *DB) Q6(p tpch.Params) decimal.Dec128 {
	hi := p.Q6Date.AddYears(1)
	lc := &db.Lineitem
	lo := dateLowerBound(lc.ShipDate, p.Q6Date)
	end := dateLowerBound(lc.ShipDate, hi)
	dlo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	dhi := p.Q6Discount.Add(decimal.MustParse("0.01"))
	var sum decimal.Dec128
	for i := lo; i < end; i++ {
		d := lc.Discount[i]
		if d.Less(dlo) || dhi.Less(d) {
			continue
		}
		if !lc.Quantity[i].Less(p.Q6Quantity) {
			continue
		}
		sum = sum.Add(lc.ExtPrice[i].Mul(d))
	}
	return sum
}

// All runs Q1–Q6.
func (db *DB) All(p tpch.Params) *tpch.Result {
	return &tpch.Result{
		Q1: db.Q1(p),
		Q2: db.Q2(p),
		Q3: db.Q3(p),
		Q4: db.Q4(p),
		Q5: db.Q5(p),
		Q6: db.Q6(p),
	}
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
