package colstore

import (
	"testing"

	"repro/internal/tpch"
	"repro/internal/types"
)

func TestColstoreAgreesWithList(t *testing.T) {
	d := tpch.Generate(0.001, 42)
	p := tpch.DefaultParams()
	gold := tpch.ListAll(tpch.LoadManaged(d), p)
	db := Load(d)
	if diff := gold.Diff(db.All(p)); diff != "" {
		t.Fatal(diff)
	}
}

func TestColstoreExtendedAgreesWithList(t *testing.T) {
	// SF chosen so the selective Q7/Q8 predicates are non-empty (matches
	// the tpch package's extended-agreement test).
	d := tpch.Generate(0.004, 42)
	p := tpch.DefaultParams()
	gold := tpch.ListAllX(tpch.LoadManaged(d), p)
	if len(gold.Q7) == 0 || len(gold.Q8) == 0 || len(gold.Q9) == 0 || len(gold.Q10) == 0 {
		t.Fatalf("gold extended result suspiciously empty: %d/%d/%d/%d",
			len(gold.Q7), len(gold.Q8), len(gold.Q9), len(gold.Q10))
	}
	db := Load(d)
	if diff := gold.Diff(db.AllX(p)); diff != "" {
		t.Fatal(diff)
	}
}

func TestClusteredOrder(t *testing.T) {
	d := tpch.Generate(0.0005, 1)
	db := Load(d)
	for i := 1; i < db.Lineitem.N; i++ {
		if db.Lineitem.ShipDate[i] < db.Lineitem.ShipDate[i-1] {
			t.Fatal("lineitem not clustered by shipdate")
		}
	}
	for i := 1; i < db.Orders.N; i++ {
		if db.Orders.OrderDate[i] < db.Orders.OrderDate[i-1] {
			t.Fatal("orders not clustered by orderdate")
		}
	}
}

func TestDateLowerBound(t *testing.T) {
	dates := []types.Date{10, 20, 20, 30}
	cases := []struct {
		d    types.Date
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 3}, {30, 3}, {31, 4}}
	for _, c := range cases {
		if got := dateLowerBound(dates, c.d); got != c.want {
			t.Errorf("lowerBound(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDictEncoding(t *testing.T) {
	d := newDict()
	for _, s := range []string{"a", "b", "a", "c", "b"} {
		d.append(s)
	}
	if len(d.Values) != 3 {
		t.Fatalf("dict values = %d", len(d.Values))
	}
	if d.At(0) != "a" || d.At(2) != "a" || d.At(3) != "c" {
		t.Fatal("dict decode wrong")
	}
	if d.Code("b") != 1 || d.Code("zzz") != -1 {
		t.Fatal("dict code wrong")
	}
}

func TestQ6RangePruning(t *testing.T) {
	// Q6 over a window with no lineitems must return zero without error.
	d := tpch.Generate(0.0005, 1)
	db := Load(d)
	p := tpch.DefaultParams()
	p.Q6Date = types.MustDate("2020-01-01")
	if !db.Q6(p).IsZero() {
		t.Fatal("Q6 outside data range should be zero")
	}
}
