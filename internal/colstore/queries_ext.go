package colstore

import (
	"strings"

	"repro/internal/decimal"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Q7–Q10 executors: the extended query set, planned the way a columnar
// RDBMS would — dimension filters build key hash sets, the clustered date
// indexes prune the fact scans where a date predicate allows, and all
// joins are value-based hash probes.

// q7Window is the Q7/Q8 date window [1995-01-01, 1996-12-31].
var (
	q7WindowLo = types.MustDate("1995-01-01")
	q7WindowHi = types.MustDate("1996-12-31")
)

// nationNameByKey builds the nation key -> name dimension lookup.
func (db *DB) nationNameByKey() map[int64]string {
	out := make(map[int64]string, db.Nation.N)
	for i := 0; i < db.Nation.N; i++ {
		out[db.Nation.Key[i]] = db.Nation.Name[i]
	}
	return out
}

// nationKeyByName resolves one nation name to its key, or -1.
func (db *DB) nationKeyByName(name string) int64 {
	for i := 0; i < db.Nation.N; i++ {
		if db.Nation.Name[i] == name {
			return db.Nation.Key[i]
		}
	}
	return -1
}

// Q7 seeks the clustered ShipDate index for the two-year window, then
// hash-joins supplier and order→customer nations.
func (db *DB) Q7(p tpch.Params) []tpch.Q7Row {
	nk1 := db.nationKeyByName(p.Q7Nation1)
	nk2 := db.nationKeyByName(p.Q7Nation2)
	if nk1 < 0 || nk2 < 0 {
		return nil
	}
	// Customer nation per order key (orders in the window only would
	// under-count: Q7 filters on ship date, not order date).
	orderCust := db.Orders.keyToRow
	lc := &db.Lineitem
	lo := dateLowerBound(lc.ShipDate, q7WindowLo)
	hi := dateLowerBound(lc.ShipDate, q7WindowHi+1)
	one := decimal.FromInt64(1)
	rev := make(map[int32]decimal.Dec128, 4)
	for i := lo; i < hi; i++ {
		srow, ok := db.Supplier.keyToRow[lc.SuppKey[i]]
		if !ok {
			continue
		}
		snk := db.Supplier.NationKey[srow]
		var first bool
		switch snk {
		case nk1:
			first = true
		case nk2:
			first = false
		default:
			continue
		}
		orow, ok := orderCust[lc.OrderKey[i]]
		if !ok {
			continue
		}
		crow, ok := db.Customer.keyToRow[db.Orders.CustKey[orow]]
		if !ok {
			continue
		}
		cnk := db.Customer.NationKey[crow]
		if first && cnk != nk2 {
			continue
		}
		if !first && cnk != nk1 {
			continue
		}
		k := int32(lc.ShipDate[i].Year()) << 1
		if !first {
			k |= 1
		}
		rev[k] = rev[k].Add(lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i])))
	}
	rows := make([]tpch.Q7Row, 0, len(rev))
	for k, v := range rev {
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if k&1 == 1 {
			sn, cn = cn, sn
		}
		rows = append(rows, tpch.Q7Row{SuppNation: sn, CustNation: cn, Year: k >> 1, Revenue: v})
	}
	tpch.SortQ7(rows)
	return rows
}

// Q8 seeks the clustered OrderDate index for the two-year window and
// hash-joins part, customer-region and supplier-nation dimensions.
func (db *DB) Q8(p tpch.Params) []tpch.Q8Row {
	snk := db.nationKeyByName(p.Q8Nation)
	rk := db.regionKeyByName(p.Q8Region)
	if snk < 0 || rk < 0 {
		return nil
	}
	regionNations := db.nationsInRegion(rk)
	// Parts of the exact type.
	partOK := make(map[int64]bool)
	for i := 0; i < db.Part.N; i++ {
		if db.Part.Type[i] == p.Q8Type {
			partOK[db.Part.Key[i]] = true
		}
	}
	// Orders in the window whose customer is in the region: orderkey ->
	// order year.
	olo := dateLowerBound(db.Orders.OrderDate, q7WindowLo)
	ohi := dateLowerBound(db.Orders.OrderDate, q7WindowHi+1)
	orderYear := make(map[int64]int32, ohi-olo)
	for i := olo; i < ohi; i++ {
		crow, ok := db.Customer.keyToRow[db.Orders.CustKey[i]]
		if !ok {
			continue
		}
		if _, ok := regionNations[db.Customer.NationKey[crow]]; !ok {
			continue
		}
		orderYear[db.Orders.Key[i]] = int32(db.Orders.OrderDate[i].Year())
	}
	one := decimal.FromInt64(1)
	groups := make(map[int32]*q8Acc, 2)
	lc := &db.Lineitem
	for i := 0; i < lc.N; i++ {
		if !partOK[lc.PartKey[i]] {
			continue
		}
		y, ok := orderYear[lc.OrderKey[i]]
		if !ok {
			continue
		}
		a := groups[y]
		if a == nil {
			a = &q8Acc{}
			groups[y] = a
		}
		vol := lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i]))
		a.total = a.total.Add(vol)
		srow, ok := db.Supplier.keyToRow[lc.SuppKey[i]]
		if ok && db.Supplier.NationKey[srow] == snk {
			a.nation = a.nation.Add(vol)
		}
	}
	rows := make([]tpch.Q8Row, 0, len(groups))
	for y, a := range groups {
		share := decimal.Zero
		if !a.total.IsZero() {
			share = a.nation.Div(a.total)
		}
		rows = append(rows, tpch.Q8Row{Year: y, MktShare: share})
	}
	tpch.SortQ8(rows)
	return rows
}

// q8Acc accumulates Q8's per-year volume sums.
type q8Acc struct {
	nation, total decimal.Dec128
}

// Q9 filters parts by name fragment, probes the PARTSUPP join index for
// costs, and joins orders for the year and suppliers for the nation.
func (db *DB) Q9(p tpch.Params) []tpch.Q9Row {
	partOK := make(map[int64]bool)
	for i := 0; i < db.Part.N; i++ {
		if strings.Contains(db.Part.Name[i], p.Q9Color) {
			partOK[db.Part.Key[i]] = true
		}
	}
	nationName := db.nationNameByKey()
	one := decimal.FromInt64(1)
	type gk struct {
		nation string
		year   int32
	}
	profit := make(map[gk]decimal.Dec128)
	lc := &db.Lineitem
	for i := 0; i < lc.N; i++ {
		if !partOK[lc.PartKey[i]] {
			continue
		}
		cost, ok := db.PartSupp.CostOf(lc.PartKey[i], lc.SuppKey[i])
		if !ok {
			continue
		}
		orow, ok := db.Orders.keyToRow[lc.OrderKey[i]]
		if !ok {
			continue
		}
		srow, ok := db.Supplier.keyToRow[lc.SuppKey[i]]
		if !ok {
			continue
		}
		amount := lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i])).Sub(cost.Mul(lc.Quantity[i]))
		k := gk{
			nation: nationName[db.Supplier.NationKey[srow]],
			year:   int32(db.Orders.OrderDate[orow].Year()),
		}
		profit[k] = profit[k].Add(amount)
	}
	rows := make([]tpch.Q9Row, 0, len(profit))
	for k, v := range profit {
		rows = append(rows, tpch.Q9Row{Nation: k.nation, Year: k.year, SumProfit: v})
	}
	tpch.SortQ9(rows)
	return rows
}

// Q10 seeks the ORDERS clustered index for the quarter, semi-joins
// returned lineitems and aggregates per customer.
func (db *DB) Q10(p tpch.Params) []tpch.Q10Row {
	hi := p.Q10Date.AddMonths(3)
	olo := dateLowerBound(db.Orders.OrderDate, p.Q10Date)
	ohi := dateLowerBound(db.Orders.OrderDate, hi)
	orderCust := make(map[int64]int64, ohi-olo)
	for i := olo; i < ohi; i++ {
		orderCust[db.Orders.Key[i]] = db.Orders.CustKey[i]
	}
	one := decimal.FromInt64(1)
	rev := make(map[int64]decimal.Dec128)
	lc := &db.Lineitem
	for i := 0; i < lc.N; i++ {
		if lc.RetFlag[i] != 'R' {
			continue
		}
		ck, ok := orderCust[lc.OrderKey[i]]
		if !ok {
			continue
		}
		rev[ck] = rev[ck].Add(lc.ExtPrice[i].Mul(one.Sub(lc.Discount[i])))
	}
	nationName := db.nationNameByKey()
	rows := make([]tpch.Q10Row, 0, len(rev))
	for ck, v := range rev {
		crow, ok := db.Customer.keyToRow[ck]
		if !ok {
			continue
		}
		rows = append(rows, tpch.Q10Row{
			CustKey: ck,
			Name:    db.Customer.Name[crow],
			Revenue: v,
			AcctBal: db.Customer.AcctBal[crow],
			Nation:  nationName[db.Customer.NationKey[crow]],
			Address: db.Customer.Address[crow],
			Phone:   db.Customer.Phone[crow],
			Comment: db.Customer.Comment[crow],
		})
	}
	return tpch.SortQ10(rows)
}

// AllX runs Q7–Q10.
func (db *DB) AllX(p tpch.Params) *tpch.ResultX {
	return &tpch.ResultX{
		Q7:  db.Q7(p),
		Q8:  db.Q8(p),
		Q9:  db.Q9(p),
		Q10: db.Q10(p),
	}
}
