// Package colstore is the stand-in for the commercial RDBMS the paper
// compares against in Figure 13: SQL Server 2014's in-memory column
// store, configured with clustered indexes on l_shipdate and o_orderdate,
// read-uncommitted isolation and no intra-query parallelism (§7).
//
// The substitution (documented in DESIGN.md) keeps the properties the
// paper credits the comparator with:
//
//   - columnar storage: each attribute is a contiguous typed array;
//     low-cardinality strings are dictionary-encoded (the "compressed
//     in-memory columnar store");
//   - clustered organisation: LINEITEM is sorted by ShipDate and ORDERS
//     by OrderDate, so date-range predicates prune by binary search —
//     this is why the paper's database wins the queries with selective
//     date predicates;
//   - value-based joins: hash tables on integer keys, in contrast to the
//     SMC engines' reference joins — this is why SMCs win the join-heavy
//     queries.
//
// The executor is single-threaded and vectorised per column, like the
// configuration used in the paper.
package colstore

import (
	"sort"

	"repro/internal/decimal"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Dict is a dictionary-encoded string column.
type Dict struct {
	Values []string         // id -> string
	Codes  []uint8          // row -> id
	index  map[string]uint8 // string -> id (build time)
}

func newDict() *Dict { return &Dict{index: make(map[string]uint8)} }

func (d *Dict) append(s string) {
	id, ok := d.index[s]
	if !ok {
		id = uint8(len(d.Values))
		d.index[s] = id
		d.Values = append(d.Values, s)
	}
	d.Codes = append(d.Codes, id)
}

// Code returns the dictionary id for s, or -1 if absent.
func (d *Dict) Code(s string) int {
	if id, ok := d.index[s]; ok {
		return int(id)
	}
	return -1
}

// At returns the decoded string at row i.
func (d *Dict) At(i int) string { return d.Values[d.Codes[i]] }

// LineitemCols is the LINEITEM column set, clustered by ShipDate.
type LineitemCols struct {
	N          int
	OrderKey   []int64
	PartKey    []int64
	SuppKey    []int64
	Quantity   []decimal.Dec128
	ExtPrice   []decimal.Dec128
	Discount   []decimal.Dec128
	Tax        []decimal.Dec128
	RetFlag    []int32
	LineStatus []int32
	ShipDate   []types.Date // sorted ascending (clustered index)
	CommitDate []types.Date
	RecvDate   []types.Date
	ShipMode   *Dict
	Instruct   *Dict
}

// OrdersCols is the ORDERS column set, clustered by OrderDate.
type OrdersCols struct {
	N         int
	Key       []int64
	CustKey   []int64
	Status    []int32
	Total     []decimal.Dec128
	OrderDate []types.Date // sorted ascending (clustered index)
	Priority  *Dict
	ShipPrio  []int32
	keyToRow  map[int64]int32
}

// CustomerCols is the CUSTOMER column set.
type CustomerCols struct {
	N         int
	Key       []int64
	Name      []string
	Address   []string
	NationKey []int64
	Phone     []string
	Segment   *Dict
	AcctBal   []decimal.Dec128
	Comment   []string
	keyToRow  map[int64]int32
}

// SupplierCols is the SUPPLIER column set.
type SupplierCols struct {
	N         int
	Key       []int64
	Name      []string
	Address   []string
	NationKey []int64
	Phone     []string
	AcctBal   []decimal.Dec128
	Comment   []string
	keyToRow  map[int64]int32
}

// PartCols is the PART column set.
type PartCols struct {
	N        int
	Key      []int64
	Name     []string
	Mfgr     []string
	Type     []string
	Size     []int32
	keyToRow map[int64]int32
}

// PartSuppCols is the PARTSUPP column set.
type PartSuppCols struct {
	N       int
	PartKey []int64
	SuppKey []int64
	Cost    []decimal.Dec128
	// costByKey is the (partkey, suppkey) hash index Q9's cost lookup
	// probes — the columnar executor's equivalent of a join index.
	costByKey map[psKey]decimal.Dec128
}

// psKey identifies one PARTSUPP row.
type psKey struct{ part, supp int64 }

// CostOf returns the supply cost for (partkey, suppkey).
func (ps *PartSuppCols) CostOf(part, supp int64) (decimal.Dec128, bool) {
	c, ok := ps.costByKey[psKey{part, supp}]
	return c, ok
}

// NationCols is the NATION column set.
type NationCols struct {
	N         int
	Key       []int64
	Name      []string
	RegionKey []int64
}

// RegionCols is the REGION column set.
type RegionCols struct {
	N    int
	Key  []int64
	Name []string
}

// DB is the loaded column store.
type DB struct {
	Lineitem LineitemCols
	Orders   OrdersCols
	Customer CustomerCols
	Supplier SupplierCols
	Part     PartCols
	PartSupp PartSuppCols
	Nation   NationCols
	Region   RegionCols

	// q1Slot is Q1's dense group-table scratch (64K 16-bit keys),
	// allocated once and reset per query by zeroing only the touched
	// entries. Like the executor itself (see package comment), it is
	// single-threaded state.
	q1Slot []int32
}

// Load builds the column store from a generated dataset, sorting the fact
// tables by their clustered keys.
func Load(d *tpch.Dataset) *DB {
	db := &DB{}

	// LINEITEM, clustered by ShipDate.
	perm := make([]int, len(d.Lineitems))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return d.Lineitems[perm[a]].ShipDate < d.Lineitems[perm[b]].ShipDate
	})
	lc := &db.Lineitem
	lc.N = len(perm)
	lc.ShipMode = newDict()
	lc.Instruct = newDict()
	for _, i := range perm {
		l := &d.Lineitems[i]
		lc.OrderKey = append(lc.OrderKey, l.OrderKey)
		lc.PartKey = append(lc.PartKey, l.PartKey)
		lc.SuppKey = append(lc.SuppKey, l.SupplierKey)
		lc.Quantity = append(lc.Quantity, l.Quantity)
		lc.ExtPrice = append(lc.ExtPrice, l.ExtendedPrice)
		lc.Discount = append(lc.Discount, l.Discount)
		lc.Tax = append(lc.Tax, l.Tax)
		lc.RetFlag = append(lc.RetFlag, l.ReturnFlag)
		lc.LineStatus = append(lc.LineStatus, l.LineStatus)
		lc.ShipDate = append(lc.ShipDate, l.ShipDate)
		lc.CommitDate = append(lc.CommitDate, l.CommitDate)
		lc.RecvDate = append(lc.RecvDate, l.ReceiptDate)
		lc.ShipMode.append(l.ShipMode)
		lc.Instruct.append(l.ShipInstruct)
	}

	// ORDERS, clustered by OrderDate.
	operm := make([]int, len(d.Orders))
	for i := range operm {
		operm[i] = i
	}
	sort.SliceStable(operm, func(a, b int) bool {
		return d.Orders[operm[a]].OrderDate < d.Orders[operm[b]].OrderDate
	})
	oc := &db.Orders
	oc.N = len(operm)
	oc.Priority = newDict()
	oc.keyToRow = make(map[int64]int32, oc.N)
	for row, i := range operm {
		o := &d.Orders[i]
		oc.Key = append(oc.Key, o.Key)
		oc.CustKey = append(oc.CustKey, o.CustomerKey)
		oc.Status = append(oc.Status, o.OrderStatus)
		oc.Total = append(oc.Total, o.TotalPrice)
		oc.OrderDate = append(oc.OrderDate, o.OrderDate)
		oc.Priority.append(o.OrderPriority)
		oc.ShipPrio = append(oc.ShipPrio, o.ShipPriority)
		oc.keyToRow[o.Key] = int32(row)
	}

	cc := &db.Customer
	cc.N = len(d.Customers)
	cc.Segment = newDict()
	cc.keyToRow = make(map[int64]int32, cc.N)
	for i := range d.Customers {
		c := &d.Customers[i]
		cc.Key = append(cc.Key, c.Key)
		cc.Name = append(cc.Name, c.Name)
		cc.Address = append(cc.Address, c.Address)
		cc.NationKey = append(cc.NationKey, c.NationKey)
		cc.Phone = append(cc.Phone, c.Phone)
		cc.Segment.append(c.MktSegment)
		cc.AcctBal = append(cc.AcctBal, c.AcctBal)
		cc.Comment = append(cc.Comment, c.Comment)
		cc.keyToRow[c.Key] = int32(i)
	}

	sc := &db.Supplier
	sc.N = len(d.Suppliers)
	sc.keyToRow = make(map[int64]int32, sc.N)
	for i := range d.Suppliers {
		s := &d.Suppliers[i]
		sc.Key = append(sc.Key, s.Key)
		sc.Name = append(sc.Name, s.Name)
		sc.Address = append(sc.Address, s.Address)
		sc.NationKey = append(sc.NationKey, s.NationKey)
		sc.Phone = append(sc.Phone, s.Phone)
		sc.AcctBal = append(sc.AcctBal, s.AcctBal)
		sc.Comment = append(sc.Comment, s.Comment)
		sc.keyToRow[s.Key] = int32(i)
	}

	pc := &db.Part
	pc.N = len(d.Parts)
	pc.keyToRow = make(map[int64]int32, pc.N)
	for i := range d.Parts {
		p := &d.Parts[i]
		pc.Key = append(pc.Key, p.Key)
		pc.Name = append(pc.Name, p.Name)
		pc.Mfgr = append(pc.Mfgr, p.Mfgr)
		pc.Type = append(pc.Type, p.Type)
		pc.Size = append(pc.Size, p.Size)
		pc.keyToRow[p.Key] = int32(i)
	}

	psc := &db.PartSupp
	psc.N = len(d.PartSupps)
	psc.costByKey = make(map[psKey]decimal.Dec128, psc.N)
	for i := range d.PartSupps {
		ps := &d.PartSupps[i]
		psc.PartKey = append(psc.PartKey, ps.PartKey)
		psc.SuppKey = append(psc.SuppKey, ps.SupplierKey)
		psc.Cost = append(psc.Cost, ps.SupplyCost)
		psc.costByKey[psKey{ps.PartKey, ps.SupplierKey}] = ps.SupplyCost
	}

	nc := &db.Nation
	nc.N = len(d.Nations)
	for i := range d.Nations {
		n := &d.Nations[i]
		nc.Key = append(nc.Key, n.Key)
		nc.Name = append(nc.Name, n.Name)
		nc.RegionKey = append(nc.RegionKey, n.RegionKey)
	}

	rc := &db.Region
	rc.N = len(d.Regions)
	for i := range d.Regions {
		r := &d.Regions[i]
		rc.Key = append(rc.Key, r.Key)
		rc.Name = append(rc.Name, r.Name)
	}
	return db
}

// dateLowerBound returns the first index with dates[i] >= d (dates
// ascending): the clustered-index seek.
func dateLowerBound(dates []types.Date, d types.Date) int {
	return sort.Search(len(dates), func(i int) bool { return dates[i] >= d })
}

// regionKeyByName resolves a region name to its key, or -1.
func (db *DB) regionKeyByName(name string) int64 {
	for i, n := range db.Region.Name {
		if n == name {
			return db.Region.Key[i]
		}
	}
	return -1
}

// nationsInRegion returns the set of nation keys belonging to a region.
func (db *DB) nationsInRegion(regionKey int64) map[int64]string {
	out := make(map[int64]string)
	for i := 0; i < db.Nation.N; i++ {
		if db.Nation.RegionKey[i] == regionKey {
			out[db.Nation.Key[i]] = db.Nation.Name[i]
		}
	}
	return out
}
