// Package types holds the primitive value types shared by the schema layer,
// the manual memory manager and the self-managed collection API: calendar
// dates, packed off-heap string references and untyped object references.
//
// The package is a leaf: it imports nothing but the standard library, so
// every other package in the module can depend on it without cycles.
package types

import (
	"reflect"
	"unsafe"
)

// Ref is an untyped reference to a self-managed object.
//
// A Ref names an indirection-table entry together with the incarnation
// number the referent had when the Ref was created (paper §3.1–3.2). The
// memory manager validates the incarnation on every dereference; after the
// object is removed from its host collection the Ref implicitly becomes
// null and dereferencing it fails with ErrNullReference.
//
// The zero Ref is the null reference.
type Ref struct {
	// Entry points at the object's indirection-table entry. The entry
	// lives in off-heap memory owned by the memory manager; it is never a
	// Go heap pointer.
	Entry unsafe.Pointer
	// Inc is the incarnation number (flag bits always clear) observed
	// when the reference was created.
	Inc uint32
	// Gen is the indirection-table entry's reuse generation. The paper
	// keeps incarnation continuity in the entry itself (§3.2), which
	// protects entry reuse in indirect mode; in direct-pointer mode
	// (§6) the incarnation moves into the memory slot, so Gen guards
	// against an entry being recycled for an unrelated object while a
	// stale external reference still names it. It also pads Ref to 16
	// bytes, matching the paper's ObjRef width.
	Gen uint32
}

// Nil is the null reference.
var Nil Ref

// IsNil reports whether r is the null reference.
func (r Ref) IsNil() bool { return r.Entry == nil }

// RefTyped is implemented by typed reference wrappers (core.Ref[T]) so the
// schema package can discover the referent's Go type through reflection
// without importing the collection package.
type RefTyped interface {
	// RefTargetType returns the Go struct type of the referent.
	RefTargetType() reflect.Type
}

// StrRef is a packed reference to an off-heap string: the top 48 bits hold
// the byte address, the low 16 bits the length. Strings referenced by
// tabular objects are considered part of the object (paper §2); their
// storage is owned by the collection's string heap and reclaimed together
// with the object's memory slot.
//
// The 48-bit address fits every user-space address on the supported
// platforms; the string heap rejects addresses that do not fit and strings
// longer than 65535 bytes.
type StrRef uint64

// MaxStringLen is the longest string representable by a StrRef.
const MaxStringLen = 1<<16 - 1

// PackStrRef builds a StrRef from an address and a length.
// It panics if the address needs more than 48 bits or the length more
// than 16; callers validate user input before allocating.
func PackStrRef(addr uintptr, n int) StrRef {
	if uint64(addr) >= 1<<48 {
		panic("types: string address exceeds 48 bits")
	}
	if n < 0 || n > MaxStringLen {
		panic("types: string length out of range")
	}
	return StrRef(uint64(addr)<<16 | uint64(n))
}

// Addr returns the byte address of the string data.
func (s StrRef) Addr() uintptr { return uintptr(s >> 16) }

// Len returns the string length in bytes.
func (s StrRef) Len() int { return int(s & 0xffff) }

// IsNil reports whether s refers to no string (the empty packed value).
func (s StrRef) IsNil() bool { return s == 0 }

// Bytes returns the referenced bytes without copying. The result aliases
// off-heap memory and is only valid inside the critical section in which
// it was obtained.
func (s StrRef) Bytes() []byte {
	if s == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(launder(s.Addr())), s.Len())
}

// String copies the referenced bytes into a Go string.
func (s StrRef) String() string {
	if s == 0 {
		return ""
	}
	return string(s.Bytes())
}

// launder converts an integer address into an unsafe.Pointer. The address
// must identify off-heap memory (mmap regions or pinned pointer-free
// slabs); such addresses are outside the Go heap, so the conversion is
// safe. Routing the conversion through a pointer-typed local keeps vet's
// unsafeptr check satisfied and documents the single place where integer
// addresses re-enter pointer space.
func launder(a uintptr) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&a))
}

// LaunderAddr is the exported form of launder for sibling internal
// packages (the memory manager stores addresses as integers inside
// off-heap cells and must convert them back).
func LaunderAddr(a uintptr) unsafe.Pointer { return launder(a) }
