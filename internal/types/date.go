package types

import "fmt"

// Date is a calendar date stored as days since the Unix epoch
// (1970-01-01). TPC-H date columns span 1992-01-01 .. 1998-12-31, far
// inside the int32 range. Dates compare with ordinary integer operators,
// which is what the compiled query code relies on.
type Date int32

// MakeDate builds a Date from a proleptic Gregorian year, month and day.
// The algorithm is the classical days-from-civil conversion (Howard
// Hinnant); it is exact for all representable dates.
func MakeDate(year, month, day int) Date {
	y := int64(year)
	if month <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	m := int64(month)
	d := int64(day)
	var doy int64
	if m > 2 {
		doy = (153*(m-3)+2)/5 + d - 1
	} else {
		doy = (153*(m+9)+2)/5 + d - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return Date(era*146097 + doe - 719468)
}

// Civil returns the year, month and day of d.
func (d Date) Civil() (year, month, day int) {
	z := int64(d) + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	day = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		month = int(mp + 3)
	} else {
		month = int(mp - 9)
	}
	if month <= 2 {
		y++
	}
	return int(y), month, day
}

// AddDays returns d shifted by n days.
func (d Date) AddDays(n int) Date { return d + Date(n) }

// Year returns the calendar year of d (SQL's EXTRACT(YEAR FROM d), used
// by the TPC-H queries that group by year).
func (d Date) Year() int {
	y, _, _ := d.Civil()
	return y
}

// AddMonths returns d shifted by n calendar months, clamping the day to
// the target month's length (matching SQL date arithmetic used by the
// TPC-H query parameters).
func (d Date) AddMonths(n int) Date {
	y, m, day := d.Civil()
	tm := y*12 + (m - 1) + n
	ny, nm := tm/12, tm%12+1
	if nm < 1 {
		nm += 12
		ny--
	}
	if dim := daysInMonth(ny, nm); day > dim {
		day = dim
	}
	return MakeDate(ny, nm, day)
}

// AddYears returns d shifted by n years (clamping Feb 29).
func (d Date) AddYears(n int) Date { return d.AddMonths(12 * n) }

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// String formats the date as YYYY-MM-DD.
func (d Date) String() string {
	y, m, dd := d.Civil()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// MarshalJSON encodes the date as a quoted YYYY-MM-DD string, the wire
// representation the serve layer's request/response schemas declare
// ({"type":"string","format":"date"}).
func (d Date) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON decodes a quoted YYYY-MM-DD string.
func (d *Date) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("types: date JSON value %s is not a string", b)
	}
	v, err := ParseDate(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// ParseDate parses a YYYY-MM-DD string.
func ParseDate(s string) (Date, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > daysInMonth(y, m) {
		return 0, fmt.Errorf("types: date %q out of range", s)
	}
	return MakeDate(y, m, d), nil
}

// MustDate parses a YYYY-MM-DD string, panicking on error. Intended for
// constants in tests and the TPC-H query parameters.
func MustDate(s string) Date {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}
