package types

import (
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestRefSizeAndNil(t *testing.T) {
	if s := unsafe.Sizeof(Ref{}); s != 16 {
		t.Fatalf("Ref size = %d, want 16", s)
	}
	var r Ref
	if !r.IsNil() {
		t.Fatal("zero Ref must be nil")
	}
	if !Nil.IsNil() {
		t.Fatal("Nil must be nil")
	}
}

func TestStrRefPacking(t *testing.T) {
	cases := []struct {
		addr uintptr
		n    int
	}{
		{0x1000, 0},
		{0x7fffdeadb000, 17},
		{0xffffffffffff, MaxStringLen},
	}
	for _, c := range cases {
		s := PackStrRef(c.addr, c.n)
		if s.Addr() != c.addr || s.Len() != c.n {
			t.Errorf("pack(%#x,%d) round-trip got (%#x,%d)", c.addr, c.n, s.Addr(), s.Len())
		}
	}
	if !StrRef(0).IsNil() {
		t.Fatal("zero StrRef must be nil")
	}
	if StrRef(0).String() != "" {
		t.Fatal("nil StrRef must read as empty string")
	}
}

func TestStrRefPackingPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("addr too big", func() { PackStrRef(1<<48, 1) })
	mustPanic("len too big", func() { PackStrRef(0x1000, MaxStringLen+1) })
	mustPanic("negative len", func() { PackStrRef(0x1000, -1) })
}

func TestStrRefBytes(t *testing.T) {
	buf := []byte("hello, off-heap world")
	addr := uintptr(unsafe.Pointer(&buf[0]))
	if addr >= 1<<48 {
		t.Skip("test address does not fit 48 bits on this platform")
	}
	s := PackStrRef(addr, len(buf))
	if got := s.String(); got != string(buf) {
		t.Fatalf("StrRef.String() = %q, want %q", got, buf)
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{
		"1970-01-01", "1992-01-01", "1995-03-15", "1996-12-31",
		"1998-12-31", "2000-02-29", "1900-02-28", "2024-02-29",
	} {
		d := MustDate(s)
		if d.String() != s {
			t.Errorf("round-trip %s -> %s", s, d.String())
		}
	}
	if MustDate("1970-01-01") != 0 {
		t.Error("epoch must be day 0")
	}
	if MustDate("1970-01-02") != 1 {
		t.Error("epoch+1 must be day 1")
	}
}

func TestDateAgainstTimePackage(t *testing.T) {
	// Cross-check the civil-date conversion against the standard library
	// for every day in the TPC-H range.
	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 7*366; i += 7 {
		tm := start.AddDate(0, 0, i)
		d := MakeDate(tm.Year(), int(tm.Month()), tm.Day())
		want := int32(tm.Unix() / 86400)
		if int32(d) != want {
			t.Fatalf("MakeDate(%v) = %d, want %d", tm, d, want)
		}
		y, m, dd := d.Civil()
		if y != tm.Year() || m != int(tm.Month()) || dd != tm.Day() {
			t.Fatalf("Civil(%d) = %d-%d-%d, want %v", d, y, m, dd, tm)
		}
	}
}

func TestDateAddMonths(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"1995-01-31", 1, "1995-02-28"},
		{"1996-01-31", 1, "1996-02-29"},
		{"1995-12-01", 3, "1996-03-01"},
		{"1995-03-15", -3, "1994-12-15"},
		{"1993-10-01", 3, "1994-01-01"},
	}
	for _, c := range cases {
		if got := MustDate(c.in).AddMonths(c.n); got.String() != c.want {
			t.Errorf("%s + %dmo = %s, want %s", c.in, c.n, got, c.want)
		}
	}
	if got := MustDate("1996-02-29").AddYears(1); got.String() != "1997-02-28" {
		t.Errorf("leap-year clamp got %s", got)
	}
}

func TestDateQuickRoundTrip(t *testing.T) {
	f := func(off int32) bool {
		d := Date(off % 200000) // ~±547 years around epoch
		y, m, dd := d.Civil()
		return MakeDate(y, m, dd) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"not-a-date", "1995-13-01", "1995-02-30", "1995-00-10"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestMustDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDate on a bad literal should panic")
		}
	}()
	MustDate("1995-02-31")
}

func TestDateYearAndAddDays(t *testing.T) {
	d := MustDate("1995-03-15")
	if d.Year() != 1995 {
		t.Fatalf("Year = %d", d.Year())
	}
	if got := d.AddDays(17); got.String() != "1995-04-01" {
		t.Fatalf("AddDays = %s", got)
	}
	if got := d.AddDays(-74); got.String() != "1994-12-31" {
		t.Fatalf("AddDays negative = %s", got)
	}
	// Year boundaries, leap and non-leap.
	if MustDate("1996-12-31").Year() != 1996 || MustDate("1997-01-01").Year() != 1997 {
		t.Fatal("Year at boundary wrong")
	}
	f := func(off int32) bool {
		d := Date(off % 200000)
		y, _, _ := d.Civil()
		return d.Year() == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaunderAddrRoundTrip(t *testing.T) {
	buf := []byte{42}
	a := uintptr(unsafe.Pointer(&buf[0]))
	if *(*byte)(LaunderAddr(a)) != 42 {
		t.Fatal("LaunderAddr did not round-trip the address")
	}
}
