// Package query is the unified parallel query-pipeline layer: the
// fan-out/merge/finish scaffolding every parallel compiled query shares,
// extracted from the hand-rolled Par drivers it replaced.
//
// The paper's query-dominated design generates per-thread query state
// and merges it after the scan; a pipeline stage is exactly that shape,
// made reusable:
//
//   - Fan-out: a stage drives the source's block-sharded parallel scan
//     (mem.ScanParallel underneath — one §5.2 decision pass, pooled
//     worker sessions, atomic-cursor work stealing). Each worker builds
//     private state: a region.PartitionedTable in a leased arena
//     (Table), a padded plain accumulator (Accum), or a row buffer
//     (Rows). The hot loop writes zero shared mutable state.
//   - Merge: worker tables fold together per partition in parallel
//     (region.ParallelMergeInto) under a worker-order-deterministic
//     schedule; plain accumulators fold in worker order. Group state
//     stays in region tables — it never spills back into Go-heap maps.
//   - Finish: dimension-resolution passes shard over the dimension
//     collection's blocks (Rows) or over the merged table's partitions
//     (ForEachPartition / PartitionRows), both parallel.
//
// A Pipeline owns the memory lifecycle: every arena any stage leases
// from the region.ArenaPool is tracked and returned by Close, so a
// driver is "lease-free": build a pipeline, compose stages, defer
// Close. Stages may feed each other (a merged table from one Table
// stage can be probed read-only by the next stage's kernel — Q9's
// partsupp cost table feeding its lineitem scan is the canonical use).
package query

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/region"
)

// Source is the scan side of a pipeline stage: anything that can shard
// its resolved block list across workers and report its element count.
// *core.Collection[T] implements it for every element type.
type Source interface {
	ParallelBlocks(s *core.Session, workers int, fn func(worker int, ws *core.Session, b *mem.Block) error) error
	// ParallelBlocksCtx is ParallelBlocks bound to a context: workers
	// observe cancellation at block-claim granularity and the scan
	// returns the cancellation cause once every worker has unwound.
	ParallelBlocksCtx(ctx context.Context, s *core.Session, workers int, fn func(worker int, ws *core.Session, b *mem.Block) error) error
	// Len reports the source's current element count; Table uses it to
	// size adaptive worker-table hints.
	Len() int
}

// PredSource is a Source that can additionally push a scan predicate
// into its block-resolution pass (synopsis pruning); *core.Collection[T]
// implements it. Wrap one with Where to run any stage skip-scanned.
type PredSource interface {
	Source
	ParallelBlocksPred(s *core.Session, workers int, pred *mem.ScanPredicate, fn func(worker int, ws *core.Session, b *mem.Block) error) error
	ParallelBlocksPredCtx(ctx context.Context, s *core.Session, workers int, pred *mem.ScanPredicate, fn func(worker int, ws *core.Session, b *mem.Block) error) error
}

// Where wraps a source with a pushed-down scan predicate: every stage
// driven from the returned Source scans only blocks whose synopsis
// bounds can intersect pred. Pruning is an optimization, never a
// semantics change — the stage kernel must keep evaluating its full
// residual predicate per row, exactly as it does unwrapped. A nil pred
// returns src unchanged.
func Where(src PredSource, pred *mem.ScanPredicate) Source {
	if pred == nil {
		return src
	}
	return &whereSource{src: src, pred: pred}
}

type whereSource struct {
	src  PredSource
	pred *mem.ScanPredicate
}

func (w *whereSource) ParallelBlocks(s *core.Session, workers int, fn func(worker int, ws *core.Session, b *mem.Block) error) error {
	return w.src.ParallelBlocksPred(s, workers, w.pred, fn)
}

func (w *whereSource) ParallelBlocksCtx(ctx context.Context, s *core.Session, workers int, fn func(worker int, ws *core.Session, b *mem.Block) error) error {
	return w.src.ParallelBlocksPredCtx(ctx, s, workers, w.pred, fn)
}

// Len reports the unpruned element count: adaptive table hints stay an
// upper bound (over-estimating under a selective predicate is exactly
// what AdaptiveSparseHint's discount is for).
func (w *whereSource) Len() int { return w.src.Len() }

// ShareSource is a PredSource that can additionally route a stage's
// scan through its collection's cooperative scan-share group
// (mem.ShareGroup); *core.Collection[T] implements it. Wrap one with
// Shared to let a stage ride a concurrent compatible scan.
type ShareSource interface {
	PredSource
	SharedBlocksPredCtx(ctx context.Context, s *core.Session, workers int, pred *mem.ScanPredicate,
		attach func(slots int) func(worker int, ws *core.Session, b *mem.Block) error) error
}

// Shared wraps a source so share-aware stages (Accum) batch their block
// scan onto the collection's shared pass: concurrent compatible queries
// pay one decision pass, one epoch-pinned snapshot and one trip through
// memory per block, with each query's kernel fanned to the pass's
// workers. pred prunes exactly as Where would — per attached query, via
// a private admit bitmap, sound and never exact — so the stage kernel
// must keep evaluating its full residual predicate per row. Stages
// without a shared fan-out path fall back to a private predicated scan,
// byte-identical to Where(src, pred). Sharing is an optimization, never
// a semantics change: a pass with a single attached query produces
// exactly the unshared stage's result.
func Shared(src ShareSource, pred *mem.ScanPredicate) Source {
	return &sharedSource{whereSource{src: src, pred: pred}, src}
}

// sharedSource falls back to whereSource's private predicated scan for
// every stage that does not special-case it; share-aware stages reach
// the share group through shr.
type sharedSource struct {
	whereSource
	shr ShareSource
}

// AdaptiveHint and AdaptiveSparseHint, passed as Table's capHint, size
// each worker's table from the source's live element count instead of a
// static guess — growth is the expensive case for region tables, which
// retain the old arrays as arena garbage until the arena resets.
//
// AdaptiveHint sizes at Len()/workers: the upper bound on distinct keys
// one worker can accumulate (work stealing aside). Use it when nearly
// every row contributes its own key (Q9's per-partsupp cost table).
//
// AdaptiveSparseHint sizes at Len()/(16*workers): for stages whose
// predicate and grouping collapse rows well below the bound (Q3's
// filtered per-order state, Q10's one-quarter per-customer state), the
// full bound would eagerly allocate tens of times more arena than the
// groups need — and the pool retains that footprint. The tables still
// scale with the input, just with a selectivity discount; a skewed
// worker simply grows once or twice.
//
// Keep a small static hint when cardinality does not scale with the
// input at all (per-nation, per-year).
const (
	AdaptiveHint       = 0
	AdaptiveSparseHint = -1
)

// adaptiveHintFloor keeps adaptive hints from collapsing on tiny
// collections.
const adaptiveHintFloor = 64

// adaptiveHint resolves the adaptive capHint sentinels against the
// source's live count.
func adaptiveHint(capHint int, src Source, workers int) int {
	n := src.Len() / workers
	if capHint == AdaptiveSparseHint {
		n /= 16
	}
	if n < adaptiveHintFloor {
		n = adaptiveHintFloor
	}
	return n
}

// Pipeline carries one parallel query's execution state: the
// coordinator session, the worker count, and every arena leased on the
// query's behalf. It is single-goroutine (the driver's), like the
// session it wraps; the concurrency lives inside the stages.
type Pipeline struct {
	s       *core.Session
	pool    *region.ArenaPool
	workers int
	ctx     context.Context

	mu     sync.Mutex
	arenas []*region.Arena
}

// New builds a pipeline over the coordinator session s, leasing query
// memory from pool, fanning stages out over `workers` (floored at 1).
// The pipeline runs under context.Background() — never canceled, exempt
// from budget admission; use NewCtx for cancelable, admission-gated
// queries.
func New(s *core.Session, pool *region.ArenaPool, workers int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	return &Pipeline{s: s, pool: pool, workers: workers, ctx: context.Background()}
}

// NewCtx is New bound to a context, with budget admission control: when
// the runtime's governed memory total (block heap plus arena retention
// plus synopses) is over its limit the call queues — bounded by the
// context deadline, or by the governor's pressure-derived wait when
// there is none — while the degradation ladder (arena trims, session-
// pool trims, compaction-for-reclamation) makes room, returning
// mem.ErrBudgetExceeded only when all of that could not — load-shedding
// happens before the query leases anything.
// Every stage of the returned pipeline observes ctx at block-claim
// granularity; a canceled stage returns the cancellation cause after
// all its workers unwind, and Close still returns every leased arena.
func NewCtx(ctx context.Context, s *core.Session, pool *region.ArenaPool, workers int) (*Pipeline, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Mem().Manager().Budget().Admit(ctx); err != nil {
		return nil, err
	}
	p := New(s, pool, workers)
	p.ctx = ctx
	return p, nil
}

// Workers returns the pipeline's worker count.
func (p *Pipeline) Workers() int { return p.workers }

// Context returns the context the pipeline's stages run under.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Session returns the coordinator session.
func (p *Pipeline) Session() *core.Session { return p.s }

// Lease leases an arena from the pipeline's pool and tracks it for
// Close. Safe to call from stage workers concurrently.
func (p *Pipeline) Lease() *region.Arena {
	a := p.pool.Lease()
	p.mu.Lock()
	p.arenas = append(p.arenas, a)
	p.mu.Unlock()
	return a
}

// Close returns every leased arena to the pool. The pipeline's tables
// die with their arenas, so call it only after the query's rows have
// been fully materialized. Idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	arenas := p.arenas
	p.arenas = nil
	p.mu.Unlock()
	for _, a := range arenas {
		p.pool.Return(a)
	}
}

// padded wraps per-worker state so adjacent workers never share a cache
// line in the hot fold loop.
type padded[T any] struct {
	v T
	_ [64]byte
}

// panicToError converts a recovered panic value into a query-scoped
// error wrapping mem.ErrWorkerPanic, matching the conversion the scan
// layer applies to panics inside scan workers.
func panicToError(r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("%w: %w", mem.ErrWorkerPanic, err)
	}
	return fmt.Errorf("%w: %v", mem.ErrWorkerPanic, r)
}

// Table runs a table-building stage: every scan worker leases a private
// arena and folds blocks into a private region.PartitionedTable[V] via
// kernel, and after the scan the workers' tables merge per partition in
// parallel (region.ParallelMergeInto) into merge-shard arenas, in worker
// order within each partition — deterministic whenever merge itself is.
// The returned table lives in pipeline-tracked arenas (valid until
// p.Close); it is nil when no worker saw a qualifying row. A non-nil
// error means worker sessions were unavailable (epoch-slot exhaustion) —
// callers typically degrade to their serial driver.
func Table[V any](p *Pipeline, src Source, capHint int,
	kernel func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[V]),
	merge func(dst, src *V),
) (merged *region.PartitionedTable[V], err error) {
	if capHint <= 0 {
		capHint = adaptiveHint(capHint, src, p.workers)
	}
	// Every worker table (and the merge destination) uses the same parts
	// argument, so NewPartitionedTable's power-of-two rounding keeps the
	// equal-partition-count invariant for free.
	parts := p.workers
	tables := make([]padded[*region.PartitionedTable[V]], p.workers)
	err = src.ParallelBlocksCtx(p.ctx, p.s, p.workers, func(w int, ws *core.Session, blk *mem.Block) error {
		t := tables[w].v
		if t == nil {
			t = region.NewPartitionedTable[V](p.Lease(), parts, capHint)
			tables[w].v = t
		}
		kernel(ws, blk, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	built := make([]*region.PartitionedTable[V], 0, p.workers)
	for _, t := range tables {
		if t.v != nil {
			built = append(built, t.v)
		}
	}
	switch len(built) {
	case 0:
		return nil, nil
	case 1:
		// One worker built state: its table is the merged state, and the
		// 1-worker baseline pays zero merge overhead.
		return built[0], nil
	}
	shards := p.workers
	if n := built[0].Parts(); shards > n {
		shards = n
	}
	arenas := make([]*region.Arena, shards)
	for i := range arenas {
		arenas[i] = p.Lease()
	}
	// ParallelMergeInto re-raises a merge-shard panic on this goroutine;
	// convert it to a query-scoped error so one poisoned merge callback
	// cannot take the process down (the leased arenas stay tracked and
	// Close returns them).
	defer func() {
		if r := recover(); r != nil {
			merged, err = nil, panicToError(r)
		}
	}()
	return region.ParallelMergeInto(arenas, built, merge), nil
}

// Accum runs a plain-accumulator stage: every scan worker folds blocks
// into a private cache-line-padded A via kernel, and the partials merge
// in worker order after the scan (only workers that received blocks
// participate — A's zero value never reaches merge). The returned
// pointer addresses the merged accumulator; when no worker received a
// block it addresses A's zero value.
func Accum[A any](p *Pipeline, src Source,
	kernel func(w int, ws *core.Session, blk *mem.Block, acc *A),
	merge func(dst, src *A),
) (*A, error) {
	type wacc struct {
		acc  A
		used bool
	}
	var accs []padded[wacc]
	var err error
	if ss, ok := src.(*sharedSource); ok {
		// Shared fan-out: the pass dictates the slot count (its workers
		// plus the catch-up slot), known only at attach time — the
		// accumulators are sized inside the attach callback, which the
		// share layer invokes exactly once before any kernel call.
		err = ss.shr.SharedBlocksPredCtx(p.ctx, p.s, p.workers, ss.pred,
			func(slots int) func(w int, ws *core.Session, blk *mem.Block) error {
				accs = make([]padded[wacc], slots)
				return func(w int, ws *core.Session, blk *mem.Block) error {
					a := &accs[w].v
					a.used = true
					kernel(w, ws, blk, &a.acc)
					return nil
				}
			})
	} else {
		accs = make([]padded[wacc], p.workers)
		err = src.ParallelBlocksCtx(p.ctx, p.s, p.workers, func(w int, ws *core.Session, blk *mem.Block) error {
			a := &accs[w].v
			a.used = true
			kernel(w, ws, blk, &a.acc)
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	if accs == nil {
		// Shared scan with nothing to deliver: attach was never called.
		accs = make([]padded[wacc], 1)
	}
	var out *A
	for w := range accs {
		if !accs[w].v.used {
			continue
		}
		if out == nil {
			out = &accs[w].v.acc
		} else {
			merge(out, &accs[w].v.acc)
		}
	}
	if out == nil {
		out = &accs[0].v.acc
	}
	return out, nil
}

// Rows runs a finishing/dimension-resolution stage: the source's blocks
// shard across the pipeline's workers, each emitting into a private row
// buffer, and the buffers concatenate in worker order. Block-to-worker
// assignment is work-stealing, so the concatenation order is not
// deterministic — callers sort with a total order, as every compiled
// query's finish already does. emit runs inside the worker's critical
// section (dereferences and string reads are safe). The result is
// always non-nil.
func Rows[R any](p *Pipeline, src Source,
	emit func(ws *core.Session, blk *mem.Block, out *[]R),
) ([]R, error) {
	bufs := make([]padded[[]R], p.workers)
	err := src.ParallelBlocksCtx(p.ctx, p.s, p.workers, func(w int, ws *core.Session, blk *mem.Block) error {
		emit(ws, blk, &bufs[w].v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]R, 0)
	for w := range bufs {
		out = append(out, bufs[w].v...)
	}
	return out, nil
}

// Keys runs a key-distillation stage for cross-edge semi-join pruning:
// the source's blocks shard across the pipeline's workers, each emitting
// the synopsis-domain keys of its qualifying rows into a private buffer,
// and the union compiles into a mem.KeySetPredicate (sorted, deduped,
// adjacent keys coalesced into ranges). Combine the result with the next
// edge's predicate via ScanPredicate.InKeySet so blocks whose synopsis
// bounds overlap no surviving key range are never claimed. The returned
// predicate is never nil; when no worker emitted a key it is Empty (and
// InKeySet over it prunes every block, matching semi-join semantics).
// emit runs inside the worker's critical section.
func Keys(p *Pipeline, src Source,
	emit func(ws *core.Session, blk *mem.Block, out *[]int64),
) (*mem.KeySetPredicate, error) {
	keys, err := Rows[int64](p, src, emit)
	if err != nil {
		return nil, err
	}
	return mem.NewKeySetPredicate(keys), nil
}

// RowsUnordered runs a streaming finishing stage: like Rows, the
// source's blocks shard across the pipeline's workers and emit fills a
// per-block row buffer, but each block's rows are handed to sink as soon
// as that block completes instead of waiting for the scan to finish and
// concatenating in worker order. sink calls are serialized (no internal
// locking needed) but arrive in no deterministic order — block-to-worker
// assignment is work-stealing — so consumers needing a total order must
// sort, exactly as Rows callers already do. The rows slice passed to
// sink is reused for the worker's next block: consume or copy it inside
// the call, never retain it. A sink error stops the scan early and is
// returned; emit runs inside the worker's critical section, sink does
// not hold any block.
func RowsUnordered[R any](p *Pipeline, src Source,
	emit func(ws *core.Session, blk *mem.Block, out *[]R),
	sink func(rows []R) error,
) error {
	bufs := make([]padded[[]R], p.workers)
	var mu sync.Mutex
	return src.ParallelBlocksCtx(p.ctx, p.s, p.workers, func(w int, ws *core.Session, blk *mem.Block) error {
		buf := bufs[w].v[:0]
		emit(ws, blk, &buf)
		bufs[w].v = buf
		if len(buf) == 0 {
			return nil
		}
		mu.Lock()
		err := sink(buf)
		mu.Unlock()
		return err
	})
}

// ForEachPartition walks the merged table's partitions sharded across
// the pipeline's workers: fn(i, partition) runs exactly once per
// partition, concurrently across shards. fn must treat the table as
// read-only (partitions are disjoint, so per-partition reads race with
// nothing) and must not touch collections — partition walks need no
// session. A nil table is a no-op. A panic in fn unwinds every shard
// and comes back as a query-scoped error wrapping mem.ErrWorkerPanic
// (remaining partitions of the panicking shard are skipped; other
// shards finish their walk).
func ForEachPartition[V any](p *Pipeline, t *region.PartitionedTable[V], fn func(part int, pt *region.Table[V])) error {
	if t == nil {
		return nil
	}
	parts := t.Parts()
	shards := p.workers
	if shards > parts {
		shards = parts
	}
	if shards <= 1 {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = panicToError(r)
				}
			}()
			for i := 0; i < parts; i++ {
				fn(i, t.Partition(i))
			}
			return nil
		}()
		return err
	}
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = panicToError(r)
					}
					errMu.Unlock()
				}
			}()
			for i := g; i < parts; i += shards {
				fn(i, t.Partition(i))
			}
		}(g)
	}
	wg.Wait()
	return firstErr
}

// PartitionRows materializes rows from a merged table, one private
// buffer per partition in parallel, concatenated in partition order —
// deterministic given the merged table, unlike a Rows scan. The result
// is always non-nil when err is nil; a panic in emit surfaces as a
// query-scoped error (see ForEachPartition).
func PartitionRows[V, R any](p *Pipeline, t *region.PartitionedTable[V],
	emit func(pt *region.Table[V], out *[]R),
) ([]R, error) {
	out := make([]R, 0)
	if t == nil {
		return out, nil
	}
	bufs := make([]padded[[]R], t.Parts())
	if err := ForEachPartition(p, t, func(i int, pt *region.Table[V]) {
		emit(pt, &bufs[i].v)
	}); err != nil {
		return nil, err
	}
	for i := range bufs {
		out = append(out, bufs[i].v...)
	}
	return out, nil
}
