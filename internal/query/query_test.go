package query_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/schema"
)

type row struct {
	Key int64
	Val int64
}

// churnBit marks transient rows the churn test's kernels must ignore.
const churnBit = int64(1) << 40

func testRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	rt := core.MustRuntime(core.Options{BlockSize: 1 << 13, HeapBackend: true})
	t.Cleanup(func() { rt.Close() })
	return rt
}

// sumKernel folds a block into a per-key sum table, skipping churn rows.
func sumKernel(key, val *schema.Field) func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[int64]) {
	return func(_ *core.Session, blk *mem.Block, t *region.PartitionedTable[int64]) {
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			k := *(*int64)(blk.FieldPtr(i, key))
			if k&churnBit != 0 {
				continue
			}
			*t.At(k) += *(*int64)(blk.FieldPtr(i, val))
		}
	}
}

func addI64(dst, src *int64) { *dst += *src }

// tableToMap flattens a merged table for comparison.
func tableToMap(t *region.PartitionedTable[int64]) map[int64]int64 {
	out := make(map[int64]int64)
	if t == nil {
		return out
	}
	t.Range(func(k int64, v *int64) bool {
		out[k] = *v
		return true
	})
	return out
}

// TestParallelPipelineTable: the Table stage must produce exactly the
// serial per-key sums at every worker count — the fan-out, the leases
// and the parallel per-partition merge are invisible to the result.
func TestParallelPipelineTable(t *testing.T) {
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		t.Run(layout.String(), func(t *testing.T) {
			rt := testRuntime(t)
			s := rt.MustSession()
			defer s.Close()
			coll := core.MustCollection[row](rt, "rows", layout)
			const n = 4000
			want := make(map[int64]int64)
			for i := 0; i < n; i++ {
				k := int64(i % 37)
				coll.MustAdd(s, &row{Key: k, Val: int64(i)})
				want[k] += int64(i)
			}
			pool := region.NewArenaPool(nil, 0, 0)
			defer pool.Close()
			sch := coll.Schema()
			kernel := sumKernel(sch.MustField("Key"), sch.MustField("Val"))
			for _, workers := range []int{1, 2, 3, 4, 8} {
				p := query.New(s, pool, workers)
				merged, err := query.Table(p, coll, 64, kernel, addI64)
				if err != nil {
					t.Fatal(err)
				}
				got := tableToMap(merged)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d keys, want %d", workers, len(got), len(want))
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("workers=%d: key %d = %d, want %d", workers, k, got[k], v)
					}
				}
				// PartitionRows is deterministic: two emissions of the same
				// merged table are identical element-for-element.
				emit := func(pt *region.Table[int64], out *[]int64) {
					pt.Range(func(k int64, v *int64) bool {
						*out = append(*out, k<<32|*v&0xffffffff)
						return true
					})
				}
				r1, err1 := query.PartitionRows(p, merged, emit)
				r2, err2 := query.PartitionRows(p, merged, emit)
				if err1 != nil || err2 != nil {
					t.Fatalf("workers=%d: PartitionRows errors %v / %v", workers, err1, err2)
				}
				if len(r1) != len(want) || len(r1) != len(r2) {
					t.Fatalf("workers=%d: PartitionRows %d/%d rows, want %d", workers, len(r1), len(r2), len(want))
				}
				for i := range r1 {
					if r1[i] != r2[i] {
						t.Fatalf("workers=%d: PartitionRows not deterministic at %d", workers, i)
					}
				}
				p.Close()
			}
			// Every leased arena went back to the pool.
			leases, _ := pool.Stats()
			if leases == 0 {
				t.Fatal("pipeline leased no arenas")
			}
		})
	}
}

// TestParallelPipelineTableAdaptiveHint: AdaptiveHint sizes worker
// tables from the source's Len()/workers and must be invisible to the
// result — same merged sums as a static hint at every worker count.
func TestParallelPipelineTableAdaptiveHint(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	const n = 6000
	want := make(map[int64]int64)
	for i := 0; i < n; i++ {
		k := int64(i % 997)
		coll.MustAdd(s, &row{Key: k, Val: int64(i)})
		want[k] += int64(i)
	}
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	sch := coll.Schema()
	kernel := sumKernel(sch.MustField("Key"), sch.MustField("Val"))
	for _, hint := range []int{query.AdaptiveHint, query.AdaptiveSparseHint} {
		for _, workers := range []int{1, 2, 4} {
			p := query.New(s, pool, workers)
			merged, err := query.Table(p, coll, hint, kernel, addI64)
			if err != nil {
				t.Fatal(err)
			}
			got := tableToMap(merged)
			if len(got) != len(want) {
				t.Fatalf("hint=%d workers=%d: %d keys, want %d", hint, workers, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("hint=%d workers=%d: key %d = %d, want %d", hint, workers, k, got[k], v)
				}
			}
			p.Close()
		}
	}
}

// TestParallelPipelineTableEmpty: no qualifying rows → nil table, and
// the pipeline still closes cleanly.
func TestParallelPipelineTableEmpty(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	sch := coll.Schema()
	p := query.New(s, pool, 4)
	defer p.Close()
	merged, err := query.Table(p, coll, 16, sumKernel(sch.MustField("Key"), sch.MustField("Val")), addI64)
	if err != nil {
		t.Fatal(err)
	}
	if merged != nil {
		t.Fatalf("empty scan built a table with %d entries", merged.Len())
	}
	if rows, err := query.PartitionRows(p, merged, func(pt *region.Table[int64], out *[]int64) {}); err != nil || rows == nil || len(rows) != 0 {
		t.Fatalf("PartitionRows(nil) = %v, %v, want empty non-nil", rows, err)
	}
}

// TestParallelPipelineAccum: plain accumulators merge in worker order
// and match the serial sum; an empty collection yields the zero value.
func TestParallelPipelineAccum(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	const n = 3000
	want := int64(0)
	for i := 0; i < n; i++ {
		coll.MustAdd(s, &row{Key: int64(i), Val: int64(i)})
		want += int64(i)
	}
	sch := coll.Schema()
	val := sch.MustField("Val")
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	kernel := func(_ int, _ *core.Session, blk *mem.Block, acc *int64) {
		for i := 0; i < blk.Capacity(); i++ {
			if blk.SlotIsValid(i) {
				*acc += *(*int64)(blk.FieldPtr(i, val))
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := query.New(s, pool, workers)
		got, err := query.Accum(p, coll, kernel, addI64)
		if err != nil {
			t.Fatal(err)
		}
		if *got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, *got, want)
		}
		p.Close()
	}
	empty := core.MustCollection[row](rt, "empty", core.RowIndirect)
	p := query.New(s, pool, 4)
	defer p.Close()
	got, err := query.Accum(p, empty, kernel, addI64)
	if err != nil {
		t.Fatal(err)
	}
	if *got != 0 {
		t.Fatalf("empty Accum = %d, want 0", *got)
	}
}

// TestParallelPipelineRows: the finishing scan emits every qualifying
// row exactly once at every worker count.
func TestParallelPipelineRows(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	const n = 2500
	for i := 0; i < n; i++ {
		coll.MustAdd(s, &row{Key: int64(i), Val: int64(i * 2)})
	}
	sch := coll.Schema()
	key, val := sch.MustField("Key"), sch.MustField("Val")
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	for _, workers := range []int{1, 2, 4} {
		p := query.New(s, pool, workers)
		rows, err := query.Rows(p, coll, func(_ *core.Session, blk *mem.Block, out *[]int64) {
			for i := 0; i < blk.Capacity(); i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				if k := *(*int64)(blk.FieldPtr(i, key)); k%3 == 0 {
					*out = append(*out, *(*int64)(blk.FieldPtr(i, val)))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, len(rows))
		for _, v := range rows {
			if seen[v] {
				t.Fatalf("workers=%d: duplicate row %d", workers, v)
			}
			seen[v] = true
		}
		for i := 0; i < n; i += 3 {
			if !seen[int64(i*2)] {
				t.Fatalf("workers=%d: missing row for key %d", workers, i)
			}
		}
		if want := (n + 2) / 3; len(rows) != want {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), want)
		}
		p.Close()
	}
}

// TestParallelPipelineKeys: the key-distillation stage must return a
// key-set predicate containing exactly the emitted keys — the semi-join
// edge Q3/Q4/Q10 thread between pipeline stages. An empty distillation
// must yield the never-overlapping (prune-everything) set, not nil.
func TestParallelPipelineKeys(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "keys", core.RowIndirect)
	const n = 2500
	for i := 0; i < n; i++ {
		coll.MustAdd(s, &row{Key: int64(i), Val: int64(i * 2)})
	}
	sch := coll.Schema()
	key := sch.MustField("Key")
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	for _, workers := range []int{1, 3} {
		p := query.New(s, pool, workers)
		ks, err := query.Keys(p, coll, func(_ *core.Session, blk *mem.Block, out *[]int64) {
			for i := 0; i < blk.Capacity(); i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				// Runs of four adjacent keys with gaps: coalescable but
				// not one interval.
				if k := *(*int64)(blk.FieldPtr(i, key)); k%5 != 4 {
					*out = append(*out, k)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := n - n/5; ks.Keys() != want {
			t.Fatalf("workers=%d: distilled %d keys, want %d", workers, ks.Keys(), want)
		}
		for i := 0; i < n; i++ {
			if got := ks.Contains(int64(i)); got != (i%5 != 4) {
				t.Fatalf("workers=%d: Contains(%d) = %v", workers, i, got)
			}
		}
		// Adjacent multiples-of-5 coalesce into far fewer ranges than keys.
		if ks.Ranges() >= ks.Keys() {
			t.Fatalf("workers=%d: %d ranges for %d keys (no coalescing)", workers, ks.Ranges(), ks.Keys())
		}
		empty, err := query.Keys(p, coll, func(*core.Session, *mem.Block, *[]int64) {})
		if err != nil {
			t.Fatal(err)
		}
		if empty == nil || !empty.Empty() {
			t.Fatalf("workers=%d: empty distillation returned %v", workers, empty)
		}
		if empty.Overlaps(0, n) {
			t.Fatalf("workers=%d: empty key set overlaps", workers)
		}
		p.Close()
	}
}

// TestParallelPipelineRowsUnordered: the streaming finishing stage
// delivers exactly the rows Rows would, block batch by block batch, with
// serialized sink calls; a sink error stops the scan and surfaces.
func TestParallelPipelineRowsUnordered(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	const n = 2500
	for i := 0; i < n; i++ {
		coll.MustAdd(s, &row{Key: int64(i), Val: int64(i * 2)})
	}
	sch := coll.Schema()
	key, val := sch.MustField("Key"), sch.MustField("Val")
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	emit := func(_ *core.Session, blk *mem.Block, out *[]int64) {
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if k := *(*int64)(blk.FieldPtr(i, key)); k%3 == 0 {
				*out = append(*out, *(*int64)(blk.FieldPtr(i, val)))
			}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		p := query.New(s, pool, workers)
		var streamed []int64
		var batches int
		err := query.RowsUnordered(p, coll, emit, func(rows []int64) error {
			// The batch is reused by the worker: copy, as the contract
			// requires.
			streamed = append(streamed, rows...)
			batches++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, len(streamed))
		for _, v := range streamed {
			if seen[v] {
				t.Fatalf("workers=%d: duplicate row %d", workers, v)
			}
			seen[v] = true
		}
		for i := 0; i < n; i += 3 {
			if !seen[int64(i*2)] {
				t.Fatalf("workers=%d: missing row for key %d", workers, i)
			}
		}
		if want := (n + 2) / 3; len(streamed) != want {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(streamed), want)
		}
		if batches < 2 {
			t.Fatalf("workers=%d: %d sink batches — streaming never split the result", workers, batches)
		}
		p.Close()
	}

	// A failing sink stops the scan early and surfaces its error.
	p := query.New(s, pool, 2)
	defer p.Close()
	sinkErr := errors.New("sink full")
	calls := 0
	err := query.RowsUnordered(p, coll, emit, func([]int64) error {
		calls++
		return sinkErr
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if calls == 0 {
		t.Fatal("sink never ran")
	}
}

// TestParallelPipelineChurn is the -race variant: Table pipelines run
// against concurrent add/remove churn and an active compactor. Churned
// rows carry the churn bit the kernel filters on, so the stable rows
// fully determine the sums; every run must return exactly the quiesced
// answer while blocks appear, empty and compact underneath it.
func TestParallelPipelineChurn(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	const stable = 800
	want := make(map[int64]int64)
	for i := 0; i < stable; i++ {
		k := int64(i % 23)
		coll.MustAdd(s, &row{Key: k, Val: int64(i)})
		want[k] += int64(i)
	}
	sch := coll.Schema()
	kernel := sumKernel(sch.MustField("Key"), sch.MustField("Val"))
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()

	stopCompactor := rt.StartCompactor(time.Millisecond)
	defer stopCompactor()

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs, err := rt.NewSession()
			if err != nil {
				fail.Store(err.Error())
				return
			}
			defer cs.Close()
			var refs []core.Ref[row]
			for {
				select {
				case <-stop:
					return
				default:
				}
				ref, err := coll.Add(cs, &row{Key: churnBit | int64(w), Val: 1})
				if err != nil {
					fail.Store(err.Error())
					return
				}
				refs = append(refs, ref)
				if len(refs) > 12 {
					victim := refs[0]
					refs = refs[1:]
					if err := coll.Remove(cs, victim); err != nil {
						fail.Store(err.Error())
						return
					}
				}
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	runs := 0
	for time.Now().Before(deadline) && fail.Load() == nil {
		workers := 1 + runs%4
		p := query.New(s, pool, workers)
		merged, err := query.Table(p, coll, 64, kernel, addI64)
		if err != nil {
			t.Fatalf("run %d: %v", runs, err)
		}
		got := tableToMap(merged)
		if len(got) != len(want) {
			t.Fatalf("run %d (workers=%d): %d keys, want %d", runs, workers, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("run %d (workers=%d): key %d = %d, want %d", runs, workers, k, got[k], v)
			}
		}
		p.Close()
		runs++
	}
	close(stop)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if runs == 0 {
		t.Fatal("no pipeline runs completed")
	}
}

// TestParallelPipelineCloseIdempotent: double Close must not
// double-return arenas.
func TestParallelPipelineCloseIdempotent(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	p := query.New(s, pool, 2)
	a := p.Lease()
	if a == nil {
		t.Fatal("Lease returned nil")
	}
	p.Close()
	p.Close()
	leases, reuses := pool.Stats()
	if leases != 1 || reuses != 0 {
		t.Fatalf("pool stats after double close: leases=%d reuses=%d", leases, reuses)
	}
}

// TestParallelPipelineWhere: a Where-wrapped source must produce exactly
// the unwrapped stage's results — pruning only removes blocks the
// predicate proves empty, the kernel's residual filter does the rest —
// while actually skipping blocks on a clustered load.
func TestParallelPipelineWhere(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	coll.MustRegisterSynopses("Key")
	const n = 4000
	for i := 0; i < n; i++ {
		coll.MustAdd(s, &row{Key: int64(i), Val: int64(i) * 3})
	}
	const lo, hi = 900, 1100
	want := make(map[int64]int64)
	for i := lo; i <= hi; i++ {
		want[int64(i)] = int64(i) * 3
	}
	key, val := coll.Schema().MustField("Key"), coll.Schema().MustField("Val")
	kernel := func(_ *core.Session, blk *mem.Block, t *region.PartitionedTable[int64]) {
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			k := *(*int64)(blk.FieldPtr(i, key))
			if k < lo || k > hi { // residual predicate stays per-row
				continue
			}
			*t.At(k) += *(*int64)(blk.FieldPtr(i, val))
		}
	}
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	before := rt.StatsSnapshot()
	for _, workers := range []int{1, 2, 4} {
		pl := query.New(s, pool, workers)
		pred := coll.Predicate().Int64Range("Key", lo, hi)
		got, err := query.Table(pl, query.Where(coll, pred), 64, kernel, addI64)
		if err != nil {
			pl.Close()
			t.Fatal(err)
		}
		gotMap := tableToMap(got)
		pl.Close()
		if len(gotMap) != len(want) {
			t.Fatalf("workers=%d: %d keys, want %d", workers, len(gotMap), len(want))
		}
		for k, v := range want {
			if gotMap[k] != v {
				t.Fatalf("workers=%d: key %d = %d, want %d", workers, k, gotMap[k], v)
			}
		}
		// A nil predicate passes the source through untouched.
		if query.Where(coll, nil) != query.Source(coll) {
			t.Fatal("Where(nil) did not return the source unchanged")
		}
	}
	after := rt.StatsSnapshot()
	if after.BlocksPruned == before.BlocksPruned {
		t.Fatal("Where stage pruned no blocks on a clustered load")
	}
}
