package query_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/region"
)

// Robustness suites for the pipeline layer: admission control at NewCtx,
// cancellation propagating from the pipeline context through the
// parallel stages, and panic isolation in kernels and merge callbacks.
// Leak checks ride on the runtime stats snapshot plus the arena pool's
// Leases == Returns balance invariant.

func poolBalanced(t *testing.T, pool *region.ArenaPool) {
	t.Helper()
	leases, _ := pool.Stats()
	if ret := pool.Returns(); ret != leases {
		t.Fatalf("arena pool unbalanced: %d leases, %d returns", leases, ret)
	}
}

func runtimeQuiesced(t *testing.T, rt *core.Runtime) {
	t.Helper()
	st := rt.StatsSnapshot()
	if st.SessionsLeased != st.SessionsReturned {
		t.Fatalf("session pool unbalanced: %d leased, %d returned", st.SessionsLeased, st.SessionsReturned)
	}
	if st.EpochPins != 0 {
		t.Fatalf("%d epoch pins leaked", st.EpochPins)
	}
}

func fillRows(t *testing.T, s *core.Session, coll *core.Collection[row], n int) map[int64]int64 {
	t.Helper()
	want := make(map[int64]int64)
	for i := 0; i < n; i++ {
		k := int64(i % 37)
		coll.MustAdd(s, &row{Key: k, Val: int64(i)})
		want[k] += int64(i)
	}
	return want
}

// TestPipelineBudgetAdmission: NewCtx is the admission gate — over a
// clamped budget it refuses with the typed error (or the caller's
// cancellation cause, when one is set), and after the budget lifts the
// same construction succeeds and the pipeline runs normally.
func TestPipelineBudgetAdmission(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	want := fillRows(t, s, coll, 4000)
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()

	rt.SetMemoryBudget(1) // clamp below the blocks already allocated

	// A canceled caller context wins without waiting out the budget.
	cctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("caller left")
	cancel(boom)
	if _, err := query.NewCtx(cctx, s, pool, 4); !errors.Is(err, boom) {
		t.Fatalf("NewCtx(canceled, over budget) = %v, want cause", err)
	}

	// No deadline: the bounded wait ends in the typed admission error.
	start := time.Now()
	if _, err := query.NewCtx(context.Background(), s, pool, 4); !errors.Is(err, mem.ErrBudgetExceeded) {
		t.Fatalf("NewCtx(over budget) = %v, want ErrBudgetExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("admission rejection took %v", d)
	}

	rt.SetMemoryBudget(0) // unlimited again
	p, err := query.NewCtx(context.Background(), s, pool, 4)
	if err != nil {
		t.Fatalf("NewCtx after lifting the budget: %v", err)
	}
	sch := coll.Schema()
	merged, err := query.Table(p, coll, 64, sumKernel(sch.MustField("Key"), sch.MustField("Val")), addI64)
	if err != nil {
		t.Fatal(err)
	}
	got := tableToMap(merged)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d, want %d", k, got[k], v)
		}
	}
	p.Close()
	poolBalanced(t, pool)
	runtimeQuiesced(t, rt)
}

// TestPipelineCancelMidStage: a cancellation raised while a Table stage
// is fanned out stops the scan at block-claim granularity; the stage
// returns the cause and Close returns every arena.
func TestPipelineCancelMidStage(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	fillRows(t, s, coll, 8000)
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	sch := coll.Schema()
	key, val := sch.MustField("Key"), sch.MustField("Val")

	cctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("stage abandoned")
	p, err := query.NewCtx(cctx, s, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	inner := sumKernel(key, val)
	kernel := func(ws *core.Session, blk *mem.Block, tab *region.PartitionedTable[int64]) {
		cancel(boom) // first block a worker touches cancels everyone
		inner(ws, blk, tab)
	}
	merged, err := query.Table(p, coll, 64, kernel, addI64)
	if !errors.Is(err, boom) {
		t.Fatalf("canceled Table = (%v, %v), want the cancellation cause", merged, err)
	}
	if merged != nil {
		t.Fatal("canceled Table returned a partial result")
	}
	p.Close()
	p.Close() // idempotent, still balanced
	poolBalanced(t, pool)
	runtimeQuiesced(t, rt)
}

// TestPipelineFaultKernelPanic: a panic inside a stage kernel surfaces
// as a query-scoped error wrapping mem.ErrWorkerPanic instead of killing
// the process, at every worker count including the inline workers=1
// path, and the pipeline's pools stay balanced.
func TestPipelineFaultKernelPanic(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	want := fillRows(t, s, coll, 4000)
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	sch := coll.Schema()
	key, val := sch.MustField("Key"), sch.MustField("Val")

	for _, workers := range []int{1, 4} {
		p := query.New(s, pool, workers)
		kernel := func(*core.Session, *mem.Block, *region.PartitionedTable[int64]) {
			panic("kernel corrupted")
		}
		merged, err := query.Table(p, coll, 64, kernel, addI64)
		if !errors.Is(err, mem.ErrWorkerPanic) {
			t.Fatalf("workers=%d: Table with panicking kernel = (%v, %v), want ErrWorkerPanic", workers, merged, err)
		}
		// The same pipeline construction still works after the fault.
		p2 := query.New(s, pool, workers)
		merged, err = query.Table(p2, coll, 64, sumKernel(key, val), addI64)
		if err != nil {
			t.Fatalf("workers=%d: clean Table after fault: %v", workers, err)
		}
		got := tableToMap(merged)
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("workers=%d key %d: got %d, want %d", workers, k, got[k], v)
			}
		}
		p.Close()
		p2.Close()
		poolBalanced(t, pool)
	}
	runtimeQuiesced(t, rt)
}

// TestPipelineFaultMergePanic: panics in the parallel per-partition
// merge and in the row-emission stages are likewise converted to errors.
func TestPipelineFaultMergePanic(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[row](rt, "rows", core.RowIndirect)
	fillRows(t, s, coll, 4000)
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	sch := coll.Schema()
	kernel := sumKernel(sch.MustField("Key"), sch.MustField("Val"))

	p := query.New(s, pool, 4)
	defer p.Close()
	// A fast scan can let one worker claim every block, leaving the other
	// worker tables empty and the merge callback uncalled. Hold each
	// worker at its first block until all four have one, so every worker
	// table gets entries and the per-partition merge must run.
	var entered atomic.Int32
	allIn := make(chan struct{})
	barrierKernel := func(ws *core.Session, blk *mem.Block, tab *region.PartitionedTable[int64]) {
		if entered.Add(1) == 4 {
			close(allIn)
		}
		<-allIn
		kernel(ws, blk, tab)
	}
	badMerge := func(dst, src *int64) { panic("merge corrupted") }
	if merged, err := query.Table(p, coll, 64, barrierKernel, badMerge); !errors.Is(err, mem.ErrWorkerPanic) {
		t.Fatalf("Table with panicking merge = (%v, %v), want ErrWorkerPanic", merged, err)
	}

	// Row emission: PartitionRows converts an emit-stage panic too.
	merged, err := query.Table(p, coll, 64, kernel, addI64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = query.PartitionRows(p, merged, func(*region.Table[int64], *[]int64) {
		panic("emit corrupted")
	})
	if !errors.Is(err, mem.ErrWorkerPanic) {
		t.Fatalf("PartitionRows with panicking emit = %v, want ErrWorkerPanic", err)
	}
}
