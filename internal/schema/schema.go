// Package schema derives off-heap memory layouts from Go struct types.
//
// It is the stand-in for the paper's `tabular` class modifier (§2): a
// struct is *tabular* if every field is a fixed-size primitive, a string
// (stored out-of-place in the collection's string heap, owned by the
// object), or a reference to another tabular type. The check that tabular
// classes only reference other tabular classes — which the paper performs
// in a modified C# compiler — happens here at collection-construction
// time via reflection, so it still fails fast, before any object is
// stored.
//
// A Schema fixes each field's offset inside an off-heap memory slot (row
// layout) and its per-column stride (columnar layout, §4.1). The offsets
// are what the "generated" compiled-query code keys on.
package schema

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/decimal"
	"repro/internal/types"
)

// Kind enumerates the field representations allowed in tabular types.
type Kind uint8

const (
	// Invalid is the zero Kind.
	Invalid Kind = iota
	// Bool is stored as one byte.
	Bool
	// Int32 is a 4-byte signed integer.
	Int32
	// Int64 is an 8-byte signed integer.
	Int64
	// Float64 is an 8-byte IEEE float.
	Float64
	// Date is a types.Date (4 bytes, days since epoch).
	Date
	// Decimal is a decimal.Dec128 (16 bytes fixed point).
	Decimal
	// String is a types.StrRef (8 bytes packed address+length); the
	// bytes live in the collection's string heap and share the object's
	// lifetime (§2).
	String
	// Ref is a 16-byte reference to an object in another (or the same)
	// self-managed collection.
	Ref
)

var kindNames = [...]string{"invalid", "bool", "int32", "int64", "float64", "date", "decimal", "string", "ref"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Size returns the number of bytes the kind occupies in a memory slot.
func (k Kind) Size() uintptr {
	switch k {
	case Bool:
		return 1
	case Int32, Date:
		return 4
	case Int64, Float64, String:
		return 8
	case Decimal, Ref:
		return 16
	}
	return 0
}

// Align returns the required alignment of the kind inside a slot.
func (k Kind) Align() uintptr {
	switch k {
	case Bool:
		return 1
	case Int32, Date:
		return 4
	case Int64, Float64, String, Decimal, Ref:
		return 8
	}
	return 1
}

// Field describes one column of a tabular type.
type Field struct {
	// Name is the Go field name.
	Name string
	// Index is the position in Schema.Fields.
	Index int
	// Kind is the off-heap representation.
	Kind Kind
	// Offset is the field's byte offset inside a row-layout memory slot
	// (excluding any slot header).
	Offset uintptr
	// GoOffset is the field's byte offset inside the Go struct, used by
	// the marshal/unmarshal paths.
	GoOffset uintptr
	// Target is the referent's Go struct type for Ref fields, nil
	// otherwise.
	Target reflect.Type
}

// Schema is the complete off-heap layout of a tabular Go struct type.
type Schema struct {
	// Name is the struct type's name.
	Name string
	// GoType is the reflected struct type.
	GoType reflect.Type
	// Fields lists all columns in declaration order.
	Fields []Field
	// Size is the row-layout slot data size in bytes, padded to 8.
	Size uintptr
	// StringFields indexes the fields of Kind String.
	StringFields []int
	// RefFields indexes the fields of Kind Ref.
	RefFields []int

	byName map[string]int
}

var (
	dec128Type = reflect.TypeOf(decimal.Dec128{})
	dateType   = reflect.TypeOf(types.Date(0))
	refTypedIf = reflect.TypeOf((*types.RefTyped)(nil)).Elem()
)

// Of derives the Schema for T, which must be a tabular struct type.
func Of[T any]() (*Schema, error) {
	var zero T
	return OfType(reflect.TypeOf(zero))
}

// MustOf is Of, panicking on error.
func MustOf[T any]() *Schema {
	s, err := Of[T]()
	if err != nil {
		panic(err)
	}
	return s
}

// OfType derives the Schema for the given struct type.
func OfType(t reflect.Type) (*Schema, error) {
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("schema: %v is not a struct type", t)
	}
	s := &Schema{
		Name:   t.Name(),
		GoType: t,
		byName: make(map[string]int),
	}
	var off uintptr
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			return nil, fmt.Errorf("schema: %s.%s: tabular types cannot have unexported fields", t.Name(), sf.Name)
		}
		if sf.Anonymous {
			return nil, fmt.Errorf("schema: %s.%s: tabular types cannot embed (no base classes, §2)", t.Name(), sf.Name)
		}
		k, target, err := kindOf(sf.Type)
		if err != nil {
			return nil, fmt.Errorf("schema: %s.%s: %w", t.Name(), sf.Name, err)
		}
		a := k.Align()
		off = (off + a - 1) &^ (a - 1)
		f := Field{
			Name:     sf.Name,
			Index:    i,
			Kind:     k,
			Offset:   off,
			GoOffset: sf.Offset,
			Target:   target,
		}
		off += k.Size()
		s.Fields = append(s.Fields, f)
		s.byName[sf.Name] = i
		switch k {
		case String:
			s.StringFields = append(s.StringFields, i)
		case Ref:
			s.RefFields = append(s.RefFields, i)
		}
	}
	if len(s.Fields) == 0 {
		return nil, fmt.Errorf("schema: %s has no fields", t.Name())
	}
	s.Size = (off + 7) &^ 7
	return s, nil
}

func kindOf(t reflect.Type) (Kind, reflect.Type, error) {
	switch t {
	case dec128Type:
		return Decimal, nil, nil
	case dateType:
		return Date, nil, nil
	}
	if t.Kind() == reflect.Struct && t.Implements(refTypedIf) {
		rv := reflect.Zero(t).Interface().(types.RefTyped)
		return Ref, rv.RefTargetType(), nil
	}
	switch t.Kind() {
	case reflect.Bool:
		return Bool, nil, nil
	case reflect.Int32:
		return Int32, nil, nil
	case reflect.Int64:
		return Int64, nil, nil
	case reflect.Float64:
		return Float64, nil, nil
	case reflect.String:
		return String, nil, nil
	case reflect.Int, reflect.Uint, reflect.Uintptr:
		return Invalid, nil, fmt.Errorf("platform-sized integer %v not allowed; use int32 or int64", t)
	case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan, reflect.Interface, reflect.Func:
		return Invalid, nil, fmt.Errorf("%v is a managed reference type; tabular classes may only reference other tabular classes through collection refs (§2)", t)
	default:
		return Invalid, nil, fmt.Errorf("unsupported field type %v", t)
	}
}

// Field returns the field with the given name.
func (s *Schema) Field(name string) (*Field, bool) {
	i, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return &s.Fields[i], true
}

// MustField returns the field with the given name, panicking if absent.
// Compiled query code uses it to resolve constant offsets once at start-up.
func (s *Schema) MustField(name string) *Field {
	f, ok := s.Field(name)
	if !ok {
		panic(fmt.Sprintf("schema: %s has no field %q", s.Name, name))
	}
	return f
}

// Offset returns the row-layout offset of the named field.
func (s *Schema) Offset(name string) uintptr { return s.MustField(name).Offset }

// ColumnarLayout computes the per-column base offsets for a block that
// stores capacity objects of this schema column-by-column (§4.1). Each
// column segment is 8-byte aligned; values within a column are packed at
// the field's natural size.
func (s *Schema) ColumnarLayout(capacity int) (colOff []uintptr, total uintptr) {
	colOff = make([]uintptr, len(s.Fields))
	var off uintptr
	for i, f := range s.Fields {
		off = (off + 7) &^ 7
		colOff[i] = off
		off += f.Kind.Size() * uintptr(capacity)
	}
	return colOff, (off + 7) &^ 7
}

// String renders a human-readable layout description.
func (s *Schema) String() string {
	out := fmt.Sprintf("%s (size %d)", s.Name, s.Size)
	for _, f := range s.Fields {
		out += fmt.Sprintf("\n  %-16s %-8s off=%d", f.Name, f.Kind, f.Offset)
	}
	return out
}

// Sanity checks that pin down representation assumptions the unsafe code
// relies on. They run once at package init; a violation is a build/port
// bug, so panicking is appropriate.
func init() {
	if unsafe.Sizeof(decimal.Dec128{}) != 16 {
		panic("schema: decimal.Dec128 must be 16 bytes")
	}
	if unsafe.Sizeof(types.Ref{}) != 16 {
		panic("schema: types.Ref must be 16 bytes")
	}
	if unsafe.Sizeof(types.StrRef(0)) != 8 {
		panic("schema: types.StrRef must be 8 bytes")
	}
}
