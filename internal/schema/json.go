package schema

// JSON-schema derivation: the serve layer registers each parameterized
// query's request and response as plain Go structs, and this file
// reflects them into JSON Schema documents — the same "derive the wire
// contract from the Go type, fail fast at registration" move the tabular
// Schema makes for off-heap layouts, applied to the HTTP surface. The
// derived documents are served from /queries so clients can discover
// parameter names, types and formats without reading Go source.
//
// The mapping is deliberately small: the wire types the front door needs
// are bools, integers, floats, strings, types.Date (string, format
// "date"), decimal.Dec128 (string, format "decimal" — decimals never
// travel as JSON numbers), nested structs, and slices of any of those.
// Field names honor `json:"..."` tags, including "-" and ",omitempty".

import (
	"fmt"
	"reflect"
	"strings"
)

// JSONSchema is a minimal JSON Schema (draft-07 subset) document.
type JSONSchema struct {
	Type string `json:"type"`
	// Format refines string types: "date" (YYYY-MM-DD) and "decimal"
	// (fixed-point literal, four fractional digits).
	Format string `json:"format,omitempty"`
	// Properties and Required describe object types.
	Properties map[string]*JSONSchema `json:"properties,omitempty"`
	Required   []string               `json:"required,omitempty"`
	// Items describes array element types.
	Items *JSONSchema `json:"items,omitempty"`
}

// JSONOf derives the JSON Schema for a Go type used on the HTTP wire.
func JSONOf(t reflect.Type) (*JSONSchema, error) {
	return jsonOf(t, make(map[reflect.Type]bool))
}

// MustJSONOf is JSONOf, panicking on error. Endpoint registration uses
// it so an unservable request/response type fails at construction, not
// on the first request.
func MustJSONOf(t reflect.Type) *JSONSchema {
	s, err := JSONOf(t)
	if err != nil {
		panic(err)
	}
	return s
}

func jsonOf(t reflect.Type, seen map[reflect.Type]bool) (*JSONSchema, error) {
	switch t {
	case dec128Type:
		return &JSONSchema{Type: "string", Format: "decimal"}, nil
	case dateType:
		return &JSONSchema{Type: "string", Format: "date"}, nil
	}
	switch t.Kind() {
	case reflect.Bool:
		return &JSONSchema{Type: "boolean"}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return &JSONSchema{Type: "integer"}, nil
	case reflect.Float32, reflect.Float64:
		return &JSONSchema{Type: "number"}, nil
	case reflect.String:
		return &JSONSchema{Type: "string"}, nil
	case reflect.Pointer:
		// Pointers model wire optionality (encoding/json emits null or
		// the value); the schema is the pointee's. The seen set still
		// catches recursion through pointer fields.
		return jsonOf(t.Elem(), seen)
	case reflect.Slice, reflect.Array:
		el, err := jsonOf(t.Elem(), seen)
		if err != nil {
			return nil, err
		}
		return &JSONSchema{Type: "array", Items: el}, nil
	case reflect.Struct:
		if seen[t] {
			return nil, fmt.Errorf("schema: recursive type %v cannot be a wire schema", t)
		}
		seen[t] = true
		defer delete(seen, t)
		obj := &JSONSchema{Type: "object", Properties: map[string]*JSONSchema{}}
		for i := 0; i < t.NumField(); i++ {
			sf := t.Field(i)
			if !sf.IsExported() || sf.Anonymous {
				return nil, fmt.Errorf("schema: %v.%s: wire types must have exported, non-embedded fields", t, sf.Name)
			}
			name, optional, skip := jsonFieldName(sf)
			if skip {
				continue
			}
			fs, err := jsonOf(sf.Type, seen)
			if err != nil {
				return nil, fmt.Errorf("%v.%s: %w", t, sf.Name, err)
			}
			obj.Properties[name] = fs
			if !optional {
				obj.Required = append(obj.Required, name)
			}
		}
		return obj, nil
	default:
		return nil, fmt.Errorf("schema: %v cannot travel on the wire", t)
	}
}

// jsonFieldName resolves a struct field's wire name the way
// encoding/json does: `json:"name,omitempty"` tags win, "-" drops the
// field, omitempty marks it optional (absent from Required).
func jsonFieldName(sf reflect.StructField) (name string, optional, skip bool) {
	name = sf.Name
	tag, ok := sf.Tag.Lookup("json")
	if !ok {
		return name, false, false
	}
	parts := strings.Split(tag, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return "", false, true
	}
	if parts[0] != "" {
		name = parts[0]
	}
	for _, p := range parts[1:] {
		if p == "omitempty" {
			optional = true
		}
	}
	return name, optional, false
}
