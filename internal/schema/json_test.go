package schema_test

// Round-trip coverage for the serving wire contract: the JSON-schema
// deriver over the actual serve request/response types, and the
// Date/Dec128 marshalers those schemas promise (strings with formats
// "date"/"decimal" — never JSON numbers). External test package so it
// can import internal/serve without a cycle.

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/decimal"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/tpch"
	"repro/internal/types"
)

// TestJSONSchemaWireFormats pins the leaf mappings: Date and Dec128 are
// strings with formats, and both marshal/unmarshal through exactly the
// representation the schema advertises.
func TestJSONSchemaWireFormats(t *testing.T) {
	ds := schema.MustJSONOf(reflect.TypeOf(types.Date(0)))
	if ds.Type != "string" || ds.Format != "date" {
		t.Fatalf("Date schema = %+v, want string/date", ds)
	}
	cs := schema.MustJSONOf(reflect.TypeOf(decimal.Dec128{}))
	if cs.Type != "string" || cs.Format != "decimal" {
		t.Fatalf("Dec128 schema = %+v, want string/decimal", cs)
	}

	d := types.MustDate("1994-01-01")
	b, err := json.Marshal(d)
	if err != nil || string(b) != `"1994-01-01"` {
		t.Fatalf("Date marshal = %s, %v", b, err)
	}
	var d2 types.Date
	if err := json.Unmarshal(b, &d2); err != nil || d2 != d {
		t.Fatalf("Date round-trip = %v, %v (want %v)", d2, err, d)
	}
	if err := json.Unmarshal([]byte(`19940101`), &d2); err == nil {
		t.Fatal("Date must reject JSON numbers")
	}

	c := decimal.MustParse("123.4567")
	b, err = json.Marshal(c)
	if err != nil || string(b) != `"123.4567"` {
		t.Fatalf("Dec128 marshal = %s, %v", b, err)
	}
	var c2 decimal.Dec128
	if err := json.Unmarshal(b, &c2); err != nil || c2 != c {
		t.Fatalf("Dec128 round-trip = %v, %v (want %v)", c2, err, c)
	}
	if err := json.Unmarshal([]byte(`123.4567`), &c2); err == nil {
		t.Fatal("Dec128 must reject JSON numbers — float64 cannot hold it exactly")
	}
	neg := decimal.MustParse("-0.0500")
	b, _ = json.Marshal(neg)
	var neg2 decimal.Dec128
	if err := json.Unmarshal(b, &neg2); err != nil || neg2 != neg {
		t.Fatalf("negative Dec128 round-trip = %v via %s, want %v", neg2, b, neg)
	}
}

// TestJSONSchemaServeParams derives schemas for every serve params type
// and checks the documents match what a client would need: property
// names from json tags, omitempty fields absent from Required, typed
// formats on dates and decimals.
func TestJSONSchemaServeParams(t *testing.T) {
	q6w := schema.MustJSONOf(reflect.TypeOf(serve.Q6WindowParams{}))
	if q6w.Type != "object" {
		t.Fatalf("Q6WindowParams schema type = %q", q6w.Type)
	}
	var names []string
	for n := range q6w.Properties {
		names = append(names, n)
	}
	sort.Strings(names)
	want := []string{"hi", "lo", "no_pushdown", "reps"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Q6WindowParams properties = %v, want %v", names, want)
	}
	if len(q6w.Required) != 0 {
		t.Fatalf("all Q6WindowParams fields are omitempty; Required = %v", q6w.Required)
	}
	if p := q6w.Properties["lo"]; p.Type != "string" || p.Format != "date" {
		t.Fatalf("lo schema = %+v", p)
	}
	if p := q6w.Properties["reps"]; p.Type != "integer" {
		t.Fatalf("reps schema = %+v", p)
	}

	q6 := schema.MustJSONOf(reflect.TypeOf(serve.Q6Params{}))
	if p := q6.Properties["discount"]; p.Type != "string" || p.Format != "decimal" {
		t.Fatalf("discount schema = %+v", p)
	}
}

// TestJSONSchemaServeResponses covers the response side: the sum
// envelope, a buffered row set (array-of-object with per-field
// formats), the error envelope, and the stream trailer.
func TestJSONSchemaServeResponses(t *testing.T) {
	sum := schema.MustJSONOf(reflect.TypeOf(serve.SumResponse{}))
	if p := sum.Properties["sum"]; p == nil || p.Format != "decimal" {
		t.Fatalf("SumResponse.sum schema = %+v", p)
	}
	if !reflect.DeepEqual(sum.Required, []string{"sum"}) {
		t.Fatalf("SumResponse required = %v", sum.Required)
	}

	rows := schema.MustJSONOf(reflect.TypeOf(serve.RowsResponse[tpch.Q6WindowHit]{}))
	rp := rows.Properties["rows"]
	if rp == nil || rp.Type != "array" || rp.Items == nil || rp.Items.Type != "object" {
		t.Fatalf("RowsResponse.rows schema = %+v", rp)
	}
	if p := rp.Items.Properties["ship_date"]; p == nil || p.Format != "date" {
		t.Fatalf("Q6WindowHit.ship_date schema = %+v", p)
	}
	if p := rp.Items.Properties["revenue"]; p == nil || p.Format != "decimal" {
		t.Fatalf("Q6WindowHit.revenue schema = %+v", p)
	}

	env := schema.MustJSONOf(reflect.TypeOf(serve.ErrorEnvelope{}))
	ep := env.Properties["error"]
	if ep == nil || ep.Type != "object" || ep.Properties["code"] == nil {
		t.Fatalf("ErrorEnvelope schema = %+v", env)
	}

	tr := schema.MustJSONOf(reflect.TypeOf(serve.StreamTrailer{}))
	if p := tr.Properties["done"]; p == nil || p.Type != "boolean" {
		t.Fatalf("StreamTrailer.done schema = %+v", tr)
	}
}

// TestJSONSchemaRoundTripValues re-encodes real serve values and checks
// the bytes validate structurally against the derived schema: every
// emitted key is a declared property, every Required key is present.
func TestJSONSchemaRoundTripValues(t *testing.T) {
	check := func(name string, v any) {
		t.Helper()
		s := schema.MustJSONOf(reflect.TypeOf(v))
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("%s: not an object: %v", name, err)
		}
		for k := range m {
			if s.Properties[k] == nil {
				t.Errorf("%s: emitted key %q not in schema", name, k)
			}
		}
		for _, r := range s.Required {
			if _, ok := m[r]; !ok {
				t.Errorf("%s: required key %q absent from %s", name, r, b)
			}
		}
	}
	check("SumResponse", serve.SumResponse{Sum: decimal.MustParse("7.0000")})
	check("Q6WindowParams", serve.Q6WindowParams{
		Lo: types.MustDate("1994-01-01"), Hi: types.MustDate("1995-06-30"), Reps: 3,
	})
	check("ErrorEnvelope", serve.ErrorEnvelope{Error: serve.APIError{
		Code: "saturated", Message: "no slot", Status: 429,
	}})
	check("StreamTrailer", serve.StreamTrailer{Done: true, Rows: 42})
	check("Q6WindowHit", tpch.Q6WindowHit{
		OrderKey: 7, ShipDate: types.MustDate("1994-02-03"), Revenue: decimal.MustParse("10.5000"),
	})
}

// TestJSONSchemaRejects pins the deriver's refusals: recursive types,
// unexported fields, embedded fields, and unservable kinds fail loudly
// at registration time.
func TestJSONSchemaRejects(t *testing.T) {
	type recursive struct {
		Next []recursive `json:"next"`
	}
	// Slices break the seen-set cycle only per-branch; a truly recursive
	// struct must error rather than loop.
	type selfRef struct {
		Inner *selfRef `json:"inner"`
	}
	type hidden struct {
		Exported int `json:"x"`
		hidden   int
	}
	type chanField struct {
		C chan int `json:"c"`
	}
	if _, err := schema.JSONOf(reflect.TypeOf(recursive{})); err == nil {
		t.Error("recursive slice type must be rejected")
	}
	if _, err := schema.JSONOf(reflect.TypeOf(selfRef{})); err == nil {
		t.Error("self-referential pointer type must be rejected")
	}
	if _, err := schema.JSONOf(reflect.TypeOf(hidden{})); err == nil {
		t.Error("unexported field must be rejected")
	}
	if _, err := schema.JSONOf(reflect.TypeOf(chanField{})); err == nil {
		t.Error("chan field must be rejected")
	}
}
