package schema

import (
	"reflect"
	"testing"

	"repro/internal/decimal"
	"repro/internal/types"
)

// fakeRef mimics core.Ref[T] without importing the collection package.
type fakeRef struct {
	R types.Ref
}

func (fakeRef) RefTargetType() reflect.Type { return reflect.TypeOf(struct{ X int32 }{}) }

type order struct {
	Key      int64
	Total    decimal.Dec128
	Date     types.Date
	Priority string
	Open     bool
	Customer fakeRef
}

func TestOfLayout(t *testing.T) {
	s, err := Of[order]()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "order" {
		t.Errorf("Name = %q", s.Name)
	}
	want := []struct {
		name string
		kind Kind
		off  uintptr
	}{
		{"Key", Int64, 0},
		{"Total", Decimal, 8},
		{"Date", Date, 24},
		{"Priority", String, 32},
		{"Open", Bool, 40},
		{"Customer", Ref, 48},
	}
	if len(s.Fields) != len(want) {
		t.Fatalf("got %d fields", len(s.Fields))
	}
	for i, w := range want {
		f := s.Fields[i]
		if f.Name != w.name || f.Kind != w.kind || f.Offset != w.off {
			t.Errorf("field %d = {%s %s %d}, want {%s %s %d}",
				i, f.Name, f.Kind, f.Offset, w.name, w.kind, w.off)
		}
	}
	if s.Size != 64 {
		t.Errorf("Size = %d, want 64", s.Size)
	}
	if len(s.StringFields) != 1 || s.StringFields[0] != 3 {
		t.Errorf("StringFields = %v", s.StringFields)
	}
	if len(s.RefFields) != 1 || s.RefFields[0] != 5 {
		t.Errorf("RefFields = %v", s.RefFields)
	}
	if s.Fields[5].Target == nil {
		t.Error("Ref field must carry a target type")
	}
}

func TestFieldLookup(t *testing.T) {
	s := MustOf[order]()
	f, ok := s.Field("Total")
	if !ok || f.Kind != Decimal {
		t.Fatalf("Field(Total) = %v, %v", f, ok)
	}
	if _, ok := s.Field("Nope"); ok {
		t.Fatal("Field(Nope) should miss")
	}
	if off := s.Offset("Date"); off != 24 {
		t.Errorf("Offset(Date) = %d", off)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustField on missing field should panic")
		}
	}()
	s.MustField("Nope")
}

func TestRejectedTypes(t *testing.T) {
	type withPtr struct{ P *int32 }
	type withSlice struct{ S []byte }
	type withMap struct{ M map[string]int32 }
	type withInt struct{ N int }
	type withIface struct{ I interface{} }
	type withEmbed struct{ order }
	type withUnexported struct {
		X int32
		y int32 //nolint:unused
	}
	type empty struct{}

	for name, f := range map[string]func() error{
		"ptr":        func() error { _, err := Of[withPtr](); return err },
		"slice":      func() error { _, err := Of[withSlice](); return err },
		"map":        func() error { _, err := Of[withMap](); return err },
		"int":        func() error { _, err := Of[withInt](); return err },
		"iface":      func() error { _, err := Of[withIface](); return err },
		"embed":      func() error { _, err := Of[withEmbed](); return err },
		"unexported": func() error { _, err := Of[withUnexported](); return err },
		"empty":      func() error { _, err := Of[empty](); return err },
		"nonstruct":  func() error { _, err := OfType(reflect.TypeOf(42)); return err },
	} {
		if err := f(); err == nil {
			t.Errorf("%s: expected rejection", name)
		}
	}
}

func TestColumnarLayout(t *testing.T) {
	s := MustOf[order]()
	colOff, total := s.ColumnarLayout(100)
	if len(colOff) != len(s.Fields) {
		t.Fatalf("colOff len = %d", len(colOff))
	}
	// Columns must not overlap and must be 8-aligned.
	for i, off := range colOff {
		if off%8 != 0 {
			t.Errorf("col %d offset %d not aligned", i, off)
		}
		if i > 0 {
			prevEnd := colOff[i-1] + s.Fields[i-1].Kind.Size()*100
			if off < prevEnd {
				t.Errorf("col %d at %d overlaps previous ending %d", i, off, prevEnd)
			}
		}
	}
	last := len(colOff) - 1
	if end := colOff[last] + s.Fields[last].Kind.Size()*100; total < end {
		t.Errorf("total %d < last column end %d", total, end)
	}
}

func TestKindProperties(t *testing.T) {
	for _, k := range []Kind{Bool, Int32, Int64, Float64, Date, Decimal, String, Ref} {
		if k.Size() == 0 {
			t.Errorf("%s Size = 0", k)
		}
		if k.Align() == 0 || k.Size()%k.Align() != 0 {
			t.Errorf("%s: size %d not multiple of align %d", k, k.Size(), k.Align())
		}
	}
	if Invalid.Size() != 0 {
		t.Error("Invalid must have size 0")
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range Kind must still format")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustOf[order]()
	out := s.String()
	if out == "" || len(out) < 20 {
		t.Errorf("String() too short: %q", out)
	}
}
