// Package fault is the engine's fault-injection hook layer: named
// injection points compiled into the production paths (block claims,
// block allocation, compaction group moves, maintainer passes) that the
// robustness stress suites arm to simulate panicking kernels, failing
// allocations and stalled workers.
//
// The design constraint is that the hooks must be free when unused: a
// disarmed Point is one atomic pointer load and a branch — no map
// lookups, no locks, no allocation — so the hooks stay in release
// builds and the hot paths keep their perf envelope. Tests arm a Plan
// (Enable) and disarm it again (the returned func / Disarm); arming is
// process-global, so suites that inject must not run in parallel with
// each other.
package fault

import (
	"sync/atomic"
	"time"
)

// Rule describes what one injection point does once armed.
type Rule struct {
	// At fires the rule on the Nth hit only (1-based); 0 fires on every
	// hit. "Panic at the 3rd block" is {At: 3, Panic: true}.
	At int64
	// Every fires the rule on every hit from At onward (instead of the
	// Nth hit only).
	Every bool
	// Delay stalls the hitting goroutine before any panic/error — the
	// "delayed worker" injection.
	Delay time.Duration
	// Panic makes the point panic with a PanicValue — the "panicking
	// kernel" injection.
	Panic bool
	// Err is returned from Check — the "failing allocation" injection.
	Err error

	hits atomic.Int64
}

// PanicValue is what an armed Panic rule panics with, so recover paths
// and tests can distinguish injected panics from real bugs.
type PanicValue struct {
	Point string
	Hit   int64
}

// Plan is a set of armed rules keyed by injection-point name.
type Plan struct {
	rules map[string]*Rule
}

// active is the armed plan; nil means every point is a no-op.
var active atomic.Pointer[Plan]

// Enable arms a plan. The returned func disarms it (tests defer it).
// Rules are private to the plan: re-enabling a fresh plan resets hit
// counts.
func Enable(rules map[string]*Rule) func() {
	p := &Plan{rules: rules}
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Disarm unconditionally disables injection.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is currently armed.
func Armed() bool { return active.Load() != nil }

// fire evaluates whether this hit triggers the rule.
func (r *Rule) fire() (int64, bool) {
	n := r.hits.Add(1)
	switch {
	case r.At == 0:
		return n, true
	case r.Every:
		return n, n >= r.At
	default:
		return n, n == r.At
	}
}

// Point hits a panic/delay injection point. Disarmed cost: one atomic
// load and a nil branch.
func Point(name string) {
	p := active.Load()
	if p == nil {
		return
	}
	r, ok := p.rules[name]
	if !ok {
		return
	}
	n, hit := r.fire()
	if !hit {
		return
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic {
		panic(PanicValue{Point: name, Hit: n})
	}
}

// Check hits an error injection point: it behaves like Point and
// additionally returns the rule's Err when the rule fires.
func Check(name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, ok := p.rules[name]
	if !ok {
		return nil
	}
	n, hit := r.fire()
	if !hit {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic {
		panic(PanicValue{Point: name, Hit: n})
	}
	return r.Err
}

// Hits reports how many times the named point has been hit under the
// currently armed plan (0 when disarmed or unknown).
func Hits(name string) int64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	r, ok := p.rules[name]
	if !ok {
		return 0
	}
	return r.hits.Load()
}

// Names of the injection points compiled into the engine. Declared here
// so suites and grep share one vocabulary.
const (
	// PointScanBlock hits once per claimed block in every parallel or
	// serial constrained scan, before the caller's kernel runs.
	PointScanBlock = "mem.scan.block"
	// PointAllocBlock hits on every fresh block allocation; an Err rule
	// makes the allocation fail.
	PointAllocBlock = "mem.alloc.block"
	// PointCompactGroup hits once per compaction group claimed by a
	// move-phase worker, before the group moves.
	PointCompactGroup = "mem.compact.group"
	// PointMaintainerPass hits at the top of every maintainer pass.
	PointMaintainerPass = "mem.maintainer.pass"
	// PointShareAttach hits at every shared-scan attach attempt (leading
	// a pass, riding one, or falling back to a private scan); an Err rule
	// fails the query before it joins anything.
	PointShareAttach = "mem.share.attach"
	// PointGovernRebalance hits at the top of every governor rebalance
	// pass; an Err rule aborts the pass (counted, retried on the next
	// pressure signal) without touching any consumer.
	PointGovernRebalance = "mem.govern.rebalance"
	// PointGovernPressure hits on every observed pressure-level
	// transition (Healthy/Tight/Critical), after the new level is
	// published.
	PointGovernPressure = "mem.govern.pressure"
)
