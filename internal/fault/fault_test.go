package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedPointsAreNoOps(t *testing.T) {
	Disarm()
	Point(PointScanBlock) // must not panic
	if err := Check(PointAllocBlock); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true with no plan")
	}
}

func TestPanicAtNthHit(t *testing.T) {
	defer Enable(map[string]*Rule{
		PointScanBlock: {At: 3, Panic: true},
	})()
	Point(PointScanBlock)
	Point(PointScanBlock)
	func() {
		defer func() {
			r := recover()
			pv, ok := r.(PanicValue)
			if !ok {
				t.Fatalf("recovered %T, want PanicValue", r)
			}
			if pv.Point != PointScanBlock || pv.Hit != 3 {
				t.Fatalf("PanicValue = %+v", pv)
			}
		}()
		Point(PointScanBlock)
		t.Fatal("3rd hit did not panic")
	}()
	// Nth-only rule: the 4th hit passes through.
	Point(PointScanBlock)
	if n := Hits(PointScanBlock); n != 4 {
		t.Fatalf("Hits = %d, want 4", n)
	}
}

func TestEveryFromNth(t *testing.T) {
	defer Enable(map[string]*Rule{
		"p": {At: 2, Every: true, Panic: true},
	})()
	Point("p") // hit 1: below At
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("hit %d after At did not panic", i+2)
				}
			}()
			Point("p")
		}()
	}
}

func TestCheckReturnsInjectedError(t *testing.T) {
	errBoom := errors.New("boom")
	defer Enable(map[string]*Rule{
		PointAllocBlock: {At: 2, Err: errBoom},
	})()
	if err := Check(PointAllocBlock); err != nil {
		t.Fatalf("hit 1 returned %v", err)
	}
	if err := Check(PointAllocBlock); !errors.Is(err, errBoom) {
		t.Fatalf("hit 2 returned %v, want boom", err)
	}
	if err := Check(PointAllocBlock); err != nil {
		t.Fatalf("hit 3 returned %v", err)
	}
}

func TestDelayStallsTheHit(t *testing.T) {
	defer Enable(map[string]*Rule{
		"slow": {Delay: 20 * time.Millisecond},
	})()
	start := time.Now()
	Point("slow")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delayed point returned after %v", d)
	}
}

func TestEnableDisarmScoping(t *testing.T) {
	off := Enable(map[string]*Rule{"x": {Panic: true}})
	if !Armed() {
		t.Fatal("not armed after Enable")
	}
	off()
	if Armed() {
		t.Fatal("still armed after disarm func")
	}
	Point("x") // must not panic
	// Disarming an already-replaced plan must not clobber a newer one.
	off2 := Enable(map[string]*Rule{"y": {}})
	off() // stale disarm: no-op
	if !Armed() {
		t.Fatal("stale disarm func removed the newer plan")
	}
	off2()
}
