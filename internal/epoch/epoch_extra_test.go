package epoch

import (
	"sync"
	"testing"
)

func TestAllAtLeast(t *testing.T) {
	m := NewManager()
	a, _ := m.NewSession()
	b, _ := m.NewSession()
	defer a.Close()
	defer b.Close()

	if !m.AllAtLeast(0, nil) {
		t.Fatal("no sessions in critical: AllAtLeast(0) must hold")
	}
	a.Enter()
	// a is at epoch 0; requiring epoch 1 must fail.
	if m.AllAtLeast(1, nil) {
		t.Fatal("session at 0 satisfied AllAtLeast(1)")
	}
	// ... unless a is the excepted session.
	if !m.AllAtLeast(1, a) {
		t.Fatal("except-session not honoured")
	}
	// b idle: does not block.
	if !m.AllAtLeast(0, nil) {
		t.Fatal("AllAtLeast(0) with session at 0 must hold")
	}
	a.Exit()
}

func TestSessionIDStable(t *testing.T) {
	m := NewManager()
	s, _ := m.NewSession()
	id := s.ID()
	if id < 0 || id >= MaxSessions {
		t.Fatalf("ID = %d out of range", id)
	}
	s.Close()
	// The slot recycles to a new session.
	s2, _ := m.NewSession()
	defer s2.Close()
	if s2.ID() != id {
		t.Fatalf("slot not recycled: got %d, want %d", s2.ID(), id)
	}
}

// TestSessionSlotReuseUnderConcurrency churns session registration from
// many goroutines while another advances the epoch; slot accounting must
// stay consistent.
func TestSessionSlotReuseUnderConcurrency(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s, err := m.NewSession()
				if err != nil {
					t.Error(err)
					return
				}
				s.Enter()
				_ = s.Epoch()
				s.Exit()
				if err := s.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.TryAdvance()
			}
		}
	}()
	wg.Wait()
	close(stop)
	if n := m.Sessions(); n != 0 {
		t.Fatalf("sessions leaked: %d", n)
	}
}

func TestDoubleCloseFails(t *testing.T) {
	m := NewManager()
	s, _ := m.NewSession()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("double close should fail")
	}
}
