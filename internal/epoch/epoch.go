// Package epoch implements the epoch-based memory reclamation scheme of
// the paper (§3.4): a continuously increasing global epoch, per-thread
// (here: per-session) critical sections, and the invariant that every
// thread inside a critical section is either in the global epoch e or in
// e-1. Memory freed in epoch e may be reclaimed in epoch e+2, because by
// then no thread can still be inside a grace period that observed e.
//
// Go does not expose OS-thread identity, so the paper's
// sectionCtx[threadId] array becomes explicit Session handles that callers
// register and pin to one goroutine at a time. This mirrors the paper's
// structure exactly; the "threadId" is the session slot index.
//
// Unlike classic three-state epoch schemes [Fraser], and following the
// paper, the epoch is a continuous counter, and advancing it is lazy: the
// memory manager attempts an advance inside its allocation function when
// reclaimable blocks are waiting, and the compaction thread owns an
// advance gate while a compaction is in flight.
package epoch

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MaxSessions is the number of concurrently registered sessions supported
// by one Manager. Sessions are cheap slots in a fixed array so that the
// advance scan touches a predictable, bounded amount of memory (one
// cache line per slot, 64KiB total). Sized for query-storm concurrency:
// a scan-share batch of 512 rider sessions plus the coordinator, worker
// pool and maintenance sessions must fit with headroom.
const MaxSessions = 1024

// cacheLine padding avoids false sharing between session slots on the
// advance-scan path.
const cacheLine = 64

type sessionSlot struct {
	epoch      atomic.Uint64
	inCritical atomic.Uint32
	registered atomic.Uint32
	_          [cacheLine - 20]byte
}

// Manager tracks the global epoch and all registered sessions.
type Manager struct {
	global atomic.Uint64
	// gate holds 1+ownerID while a compaction owns epoch advancement;
	// 0 when advancement is open to everyone (paper §5.1: "no other but
	// the compaction thread can increment the global epoch until the
	// compaction is finished").
	gate atomic.Int64

	mu    sync.Mutex
	slots [MaxSessions]sessionSlot
	free  []int
	inUse int
}

// NewManager returns a Manager with the global epoch at 0.
func NewManager() *Manager {
	m := &Manager{}
	m.free = make([]int, 0, MaxSessions)
	for i := MaxSessions - 1; i >= 0; i-- {
		m.free = append(m.free, i)
	}
	return m
}

// Global returns the current global epoch.
func (m *Manager) Global() uint64 { return m.global.Load() }

// Sessions returns the number of registered sessions.
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// Session is a registered participant in epoch tracking. A Session must
// be used by at most one goroutine at a time. Critical sections nest:
// only the outermost Enter publishes the session's epoch and only the
// outermost Exit clears it.
type Session struct {
	mgr   *Manager
	id    int
	depth int
}

// NewSession registers a new session slot.
func (m *Manager) NewSession() (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		return nil, fmt.Errorf("epoch: all %d session slots in use", MaxSessions)
	}
	id := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.inUse++
	s := &Session{mgr: m, id: id}
	sl := &m.slots[id]
	sl.inCritical.Store(0)
	sl.epoch.Store(0)
	sl.registered.Store(1)
	return s, nil
}

// Close unregisters the session. Closing a session that is inside a
// critical section is an error.
func (s *Session) Close() error {
	if s.depth != 0 {
		return fmt.Errorf("epoch: closing session %d inside a critical section", s.id)
	}
	m := s.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	sl := &m.slots[s.id]
	if sl.registered.Load() == 0 {
		return fmt.Errorf("epoch: session %d already closed", s.id)
	}
	sl.registered.Store(0)
	sl.inCritical.Store(0)
	m.free = append(m.free, s.id)
	m.inUse--
	return nil
}

// ID returns the session's slot index (the paper's threadId).
func (s *Session) ID() int { return s.id }

// Enter begins (or nests into) a critical section / grace period. Upon
// entering, the session publishes the current global epoch as its local
// epoch (paper Fig. 3 and the enter_critical_section listing). The
// publish-and-recheck loop guarantees the session can never be observed
// with a stale epoch more than one behind the global epoch.
func (s *Session) Enter() {
	if s.depth++; s.depth > 1 {
		return
	}
	sl := &s.mgr.slots[s.id]
	for {
		e := s.mgr.global.Load()
		sl.epoch.Store(e)
		sl.inCritical.Store(1) // sequentially consistent: acts as the paper's memory_fence
		if s.mgr.global.Load() == e {
			return
		}
		// The epoch advanced between our read and our publish; the
		// advancer may not have seen us. Retract and retry so the
		// e / e-1 invariant holds.
		sl.inCritical.Store(0)
	}
}

// Exit leaves the critical section opened by the matching Enter.
func (s *Session) Exit() {
	if s.depth <= 0 {
		panic("epoch: Exit without matching Enter")
	}
	if s.depth--; s.depth > 0 {
		return
	}
	s.mgr.slots[s.id].inCritical.Store(0)
}

// InCritical reports whether the session is inside a critical section.
func (s *Session) InCritical() bool { return s.depth > 0 }

// Epoch returns the session's published thread-local epoch. Only
// meaningful while inside a critical section.
func (s *Session) Epoch() uint64 { return s.mgr.slots[s.id].epoch.Load() }

// Refresh re-publishes the current global epoch as the session's local
// epoch without leaving the critical section. Long-running enumerations
// call this between memory blocks so they do not stall epoch advancement
// (paper §4: the query compiler chooses critical-section granularity).
func (s *Session) Refresh() {
	if s.depth == 0 {
		panic("epoch: Refresh outside critical section")
	}
	sl := &s.mgr.slots[s.id]
	for {
		e := s.mgr.global.Load()
		sl.epoch.Store(e)
		if s.mgr.global.Load() == e {
			return
		}
	}
}

// canAdvanceFrom reports whether every in-critical session other than
// exceptID has published epoch >= g.
func (m *Manager) canAdvanceFrom(g uint64, exceptID int) bool {
	for i := range m.slots {
		sl := &m.slots[i]
		if i == exceptID || sl.registered.Load() == 0 {
			continue
		}
		if sl.inCritical.Load() == 1 && sl.epoch.Load() < g {
			return false
		}
	}
	return true
}

// TryAdvance attempts to increment the global epoch by one. It fails if
// any session inside a critical section has not yet reached the current
// global epoch, or if a compaction currently owns the advance gate.
// Returns the new global epoch and whether the advance happened.
func (m *Manager) TryAdvance() (uint64, bool) {
	if m.gate.Load() != 0 {
		return m.global.Load(), false
	}
	return m.tryAdvance(-1)
}

// TryAdvanceOwner is TryAdvance for the gate owner: it ignores the gate
// and excludes the owner's own session from the scan (the compaction
// thread runs inside a critical section pinned at an older epoch, paper
// §5.1).
func (m *Manager) TryAdvanceOwner(owner *Session) (uint64, bool) {
	return m.tryAdvance(owner.id)
}

func (m *Manager) tryAdvance(exceptID int) (uint64, bool) {
	g := m.global.Load()
	if !m.canAdvanceFrom(g, exceptID) {
		return g, false
	}
	if m.global.CompareAndSwap(g, g+1) {
		return g + 1, true
	}
	return m.global.Load(), false
}

// AcquireGate makes owner the only session allowed to advance the global
// epoch. Returns false if another owner already holds the gate.
func (m *Manager) AcquireGate(owner *Session) bool {
	return m.gate.CompareAndSwap(0, int64(owner.id)+1)
}

// ReleaseGate opens epoch advancement to everyone again.
func (m *Manager) ReleaseGate(owner *Session) {
	if !m.gate.CompareAndSwap(int64(owner.id)+1, 0) {
		panic("epoch: ReleaseGate by non-owner")
	}
}

// GateHeld reports whether a compaction owns the advance gate.
func (m *Manager) GateHeld() bool { return m.gate.Load() != 0 }

// InCriticalSessions counts the registered sessions currently inside a
// critical section (epoch pins). The robustness suites use it to assert
// that canceled and panicked queries exited every critical section; a
// quiesced system reads 0.
func (m *Manager) InCriticalSessions() int {
	n := 0
	for i := range m.slots {
		sl := &m.slots[i]
		if sl.registered.Load() == 1 && sl.inCritical.Load() == 1 {
			n++
		}
	}
	return n
}

// AllAtLeast reports whether every in-critical session except the given
// one has published epoch >= e. The compactor uses this to detect that
// all threads have entered the freezing or relocation epoch.
func (m *Manager) AllAtLeast(e uint64, except *Session) bool {
	id := -1
	if except != nil {
		id = except.id
	}
	return m.canAdvanceFrom(e, id)
}

// Reclaimable reports whether memory freed in freedEpoch can be reclaimed
// now: two epochs must have fully passed (paper §3.4).
func Reclaimable(freedEpoch, global uint64) bool {
	return global >= freedEpoch+2
}
