package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newSession(t *testing.T, m *Manager) *Session {
	t.Helper()
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	m := NewManager()
	s := newSession(t, m)
	if m.Sessions() != 1 {
		t.Fatalf("Sessions = %d, want 1", m.Sessions())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Sessions() != 0 {
		t.Fatalf("Sessions = %d, want 0", m.Sessions())
	}
	if err := s.Close(); err == nil {
		t.Fatal("double Close should fail")
	}
}

func TestCloseInsideCriticalFails(t *testing.T) {
	m := NewManager()
	s := newSession(t, m)
	s.Enter()
	if err := s.Close(); err == nil {
		t.Fatal("Close inside critical section should fail")
	}
	s.Exit()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionExhaustion(t *testing.T) {
	m := NewManager()
	var all []*Session
	for i := 0; i < MaxSessions; i++ {
		all = append(all, newSession(t, m))
	}
	if _, err := m.NewSession(); err == nil {
		t.Fatal("expected session exhaustion")
	}
	for _, s := range all {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.NewSession(); err != nil {
		t.Fatalf("slot should be reusable: %v", err)
	}
}

func TestAdvanceBlockedByLaggingSession(t *testing.T) {
	m := NewManager()
	s1 := newSession(t, m)
	s2 := newSession(t, m)

	s1.Enter() // s1 pins epoch 0
	if _, ok := m.TryAdvance(); !ok {
		t.Fatal("advance 0->1 should succeed: s1 is at the current epoch")
	}
	// Now global = 1, s1 still published at 0: no further advance.
	if _, ok := m.TryAdvance(); ok {
		t.Fatal("advance 1->2 must fail while s1 is pinned at 0")
	}
	s2.Enter() // s2 publishes epoch 1
	if _, ok := m.TryAdvance(); ok {
		t.Fatal("s1 still blocks advancement")
	}
	s1.Exit()
	if g, ok := m.TryAdvance(); !ok || g != 2 {
		t.Fatalf("advance after s1 exit: got (%d,%v), want (2,true)", g, ok)
	}
	s2.Exit()
}

func TestNestedCriticalSections(t *testing.T) {
	m := NewManager()
	s := newSession(t, m)
	s.Enter()
	s.Enter()
	s.Exit()
	if !s.InCritical() {
		t.Fatal("outer critical section should still be open")
	}
	// The nested Exit must not clear the published state.
	if _, ok := m.TryAdvance(); !ok {
		t.Fatal("advance should work: s is at the current epoch")
	}
	if _, ok := m.TryAdvance(); ok {
		t.Fatal("s now lags; advance must fail")
	}
	s.Exit()
	if s.InCritical() {
		t.Fatal("critical section should be closed")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	m := NewManager()
	s := newSession(t, m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Exit()
}

func TestRefresh(t *testing.T) {
	m := NewManager()
	s := newSession(t, m)
	s.Enter()
	m.TryAdvance() // 0 -> 1, allowed since s is at 0? No: s pins 0 and global is 0, so advance to 1 works.
	if s.Epoch() != 0 {
		t.Fatalf("session epoch = %d, want 0", s.Epoch())
	}
	if _, ok := m.TryAdvance(); ok {
		t.Fatal("second advance must fail until refresh")
	}
	s.Refresh()
	if s.Epoch() != 1 {
		t.Fatalf("after Refresh epoch = %d, want 1", s.Epoch())
	}
	if g, ok := m.TryAdvance(); !ok || g != 2 {
		t.Fatalf("advance after refresh: (%d,%v)", g, ok)
	}
	s.Exit()
}

func TestGate(t *testing.T) {
	m := NewManager()
	owner := newSession(t, m)
	other := newSession(t, m)
	if !m.AcquireGate(owner) {
		t.Fatal("gate acquire failed")
	}
	if m.AcquireGate(other) {
		t.Fatal("second gate acquire should fail")
	}
	if _, ok := m.TryAdvance(); ok {
		t.Fatal("TryAdvance must fail while gate held")
	}
	// The owner can advance even with the gate held, ignoring itself.
	owner.Enter()
	if _, ok := m.TryAdvanceOwner(owner); !ok {
		t.Fatal("owner advance should succeed")
	}
	owner.Exit()
	m.ReleaseGate(owner)
	if m.GateHeld() {
		t.Fatal("gate should be open")
	}
	if _, ok := m.TryAdvance(); !ok {
		t.Fatal("TryAdvance should work after release")
	}
}

func TestReleaseGateByNonOwnerPanics(t *testing.T) {
	m := NewManager()
	owner := newSession(t, m)
	other := newSession(t, m)
	m.AcquireGate(owner)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReleaseGate(other)
}

func TestReclaimable(t *testing.T) {
	if Reclaimable(5, 6) {
		t.Fatal("e+1 must not be reclaimable")
	}
	if !Reclaimable(5, 7) {
		t.Fatal("e+2 must be reclaimable")
	}
	if !Reclaimable(0, 2) {
		t.Fatal("0+2 must be reclaimable")
	}
}

// TestEpochInvariantUnderConcurrency hammers Enter/Exit on many sessions
// while one goroutine advances the epoch, asserting the core invariant:
// an in-critical session is never more than one epoch behind the global.
func TestEpochInvariantUnderConcurrency(t *testing.T) {
	m := NewManager()
	const workers = 8
	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Enter()
				// Check the invariant from inside: our published
				// epoch must be >= global-1 for the entire section.
				for i := 0; i < 10; i++ {
					g := m.Global()
					e := s.Epoch()
					if e+1 < g {
						violations.Add(1)
					}
				}
				s.Exit()
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			m.TryAdvance()
		}
		close(stop)
	}()
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d epoch invariant violations", v)
	}
	if m.Global() == 0 {
		t.Fatal("epoch never advanced during the stress test")
	}
}

// TestAdvanceMonotonic verifies concurrent TryAdvance calls never skip or
// regress the epoch.
func TestAdvanceMonotonic(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	var maxSeen atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				g, _ := m.TryAdvance()
				for {
					cur := maxSeen.Load()
					if g <= cur || maxSeen.CompareAndSwap(cur, g) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if m.Global() != maxSeen.Load() {
		t.Fatalf("global %d != max seen %d", m.Global(), maxSeen.Load())
	}
}
