package offheap

import (
	"testing"
	"unsafe"
)

func backends(t *testing.T) map[string]*Allocator {
	t.Helper()
	m := map[string]*Allocator{"heap": New(WithHeapBackend())}
	if mmapAvailable {
		m["mmap"] = New()
	}
	return m
}

func TestAllocAlignment(t *testing.T) {
	for name, a := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, align := range []int{64, 4096, 1 << 16, 1 << 20} {
				r, err := a.Alloc(align/2+7, align)
				if err != nil {
					t.Fatalf("Alloc(align=%d): %v", align, err)
				}
				if uintptr(r.Base())&uintptr(align-1) != 0 {
					t.Errorf("base %p not aligned to %d", r.Base(), align)
				}
				if r.Size() != align/2+7 {
					t.Errorf("size = %d", r.Size())
				}
				if err := a.Free(r); err != nil {
					t.Fatalf("Free: %v", err)
				}
			}
		})
	}
}

func TestAllocZeroed(t *testing.T) {
	for name, a := range backends(t) {
		t.Run(name, func(t *testing.T) {
			r, err := a.Alloc(8192, 4096)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Free(r)
			b := unsafe.Slice((*byte)(r.Base()), r.Size())
			for i, v := range b {
				if v != 0 {
					t.Fatalf("byte %d = %d, want 0", i, v)
				}
			}
			// Memory must be writable and stable.
			for i := range b {
				b[i] = byte(i)
			}
			for i := range b {
				if b[i] != byte(i) {
					t.Fatalf("byte %d readback failed", i)
				}
			}
		})
	}
}

func TestAllocErrors(t *testing.T) {
	a := New(WithHeapBackend())
	if _, err := a.Alloc(0, 64); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := a.Alloc(-5, 64); err == nil {
		t.Error("Alloc(-5) should fail")
	}
	if _, err := a.Alloc(64, 0); err == nil {
		t.Error("Alloc(align=0) should fail")
	}
	if _, err := a.Alloc(64, 48); err == nil {
		t.Error("Alloc(align=48) should fail: not a power of two")
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(WithHeapBackend())
	r, err := a.Alloc(128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r); err == nil {
		t.Error("double Free should fail")
	}
	if err := a.Free(nil); err == nil {
		t.Error("Free(nil) should fail")
	}
	if r.Valid() {
		t.Error("region should be invalid after Free")
	}
}

func TestStats(t *testing.T) {
	a := New(WithHeapBackend())
	r1, _ := a.Alloc(1000, 64)
	r2, _ := a.Alloc(2000, 64)
	s := a.Stats()
	if got := s.LiveBytes(); got != 3000 {
		t.Errorf("LiveBytes = %d, want 3000", got)
	}
	if got := s.LiveRegions.Load(); got != 2 {
		t.Errorf("LiveRegions = %d, want 2", got)
	}
	a.Free(r1)
	a.Free(r2)
	if got := s.LiveBytes(); got != 0 {
		t.Errorf("LiveBytes after free = %d, want 0", got)
	}
	if got := s.LiveRegions.Load(); got != 0 {
		t.Errorf("LiveRegions after free = %d, want 0", got)
	}
}

func TestMaskRecoverBase(t *testing.T) {
	// The block-header recovery trick: any interior pointer masked by the
	// block size must yield the region base.
	for name, a := range backends(t) {
		t.Run(name, func(t *testing.T) {
			const bs = 1 << 16
			r, err := a.Alloc(bs, bs)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Free(r)
			for _, off := range []int{0, 1, 8, bs / 2, bs - 1} {
				p := unsafe.Add(r.Base(), off)
				back := unsafe.Add(p, -int(uintptr(p)&uintptr(bs-1)))
				if back != r.Base() {
					t.Fatalf("mask recovery from offset %d failed", off)
				}
			}
		})
	}
}
