//go:build linux

package offheap

import "syscall"

const mmapAvailable = true

// mmapAnon creates a private anonymous mapping of n bytes. Pages are
// allocated lazily by the kernel, so alignment padding that is never
// touched consumes no physical memory.
func mmapAnon(n int) ([]byte, error) {
	return syscall.Mmap(-1, 0, n,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON)
}

func munmap(b []byte) error {
	return syscall.Munmap(b)
}
