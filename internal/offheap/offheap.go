// Package offheap provides aligned memory regions that live outside the
// reach of the Go garbage collector.
//
// The memory manager (internal/mem) carves these regions into the
// single-type memory blocks of the paper (§3.1). Two backends exist:
//
//   - mmap (Linux): anonymous private mappings. The GC never sees them;
//     untouched pages cost no physical memory, so over-allocating to
//     obtain alignment is free in RSS terms.
//   - heap slabs (portable fallback): single pointer-free []byte
//     allocations. The GC treats each slab as one opaque object: it is
//     scanned in O(1) (no interior pointers) and never moved, so interior
//     addresses stay stable. Used on non-Linux platforms and in tests.
//
// Regions are aligned to a caller-chosen power of two, which enables the
// paper's trick of recovering a block's header from any object pointer by
// masking the low address bits.
package offheap

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Region is one aligned off-heap allocation.
type Region struct {
	base unsafe.Pointer // aligned base address handed to the user
	size int            // usable size in bytes
	raw  []byte         // backing mapping or slab (kept alive; nil after Free)
	mmap bool           // true when raw came from mmap
}

// Base returns the aligned base address of the region.
func (r *Region) Base() unsafe.Pointer { return r.base }

// Size returns the usable size of the region in bytes.
func (r *Region) Size() int { return r.size }

// Valid reports whether the region is still allocated.
func (r *Region) Valid() bool { return r.raw != nil }

// Stats counts allocator activity. All fields are updated atomically.
type Stats struct {
	// AllocatedBytes is the total usable bytes handed out over time.
	AllocatedBytes atomic.Int64
	// FreedBytes is the total usable bytes returned over time.
	FreedBytes atomic.Int64
	// LiveRegions is the number of regions currently allocated.
	LiveRegions atomic.Int64
}

// LiveBytes returns the currently outstanding usable bytes.
func (s *Stats) LiveBytes() int64 {
	return s.AllocatedBytes.Load() - s.FreedBytes.Load()
}

// Allocator hands out aligned off-heap regions.
type Allocator struct {
	useMmap bool
	stats   Stats
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithHeapBackend forces the portable heap-slab backend even where mmap is
// available. Useful in tests and for measuring backend overhead.
func WithHeapBackend() Option {
	return func(a *Allocator) { a.useMmap = false }
}

// New returns an allocator using the best backend for the platform.
func New(opts ...Option) *Allocator {
	a := &Allocator{useMmap: mmapAvailable}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Stats returns the allocator's counters.
func (a *Allocator) Stats() *Stats { return &a.stats }

// Alloc returns a zeroed region of the given size whose base address is
// aligned to align (a power of two). The region's memory is excluded from
// garbage collection in the sense that the collector never scans its
// interior and never relocates it.
func (a *Allocator) Alloc(size, align int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("offheap: non-positive size %d", size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("offheap: alignment %d is not a power of two", align)
	}
	var (
		raw []byte
		err error
		mm  bool
	)
	if a.useMmap {
		raw, err = mmapAnon(size + align)
		mm = true
		if err != nil {
			return nil, fmt.Errorf("offheap: mmap: %w", err)
		}
	} else {
		raw = make([]byte, size+align)
	}
	base := unsafe.Pointer(&raw[0])
	if off := int(uintptr(base) & uintptr(align-1)); off != 0 {
		base = unsafe.Add(base, align-off)
	}
	if uintptr(base)+uintptr(size) >= 1<<48 {
		// StrRef and other packed representations assume 48-bit
		// user-space addresses; modern kernels comply unless asked
		// for high mappings, which we never do.
		freeRaw(raw, mm)
		return nil, fmt.Errorf("offheap: address space above 2^48 unsupported")
	}
	a.stats.AllocatedBytes.Add(int64(size))
	a.stats.LiveRegions.Add(1)
	return &Region{base: base, size: size, raw: raw, mmap: mm}, nil
}

// Free releases the region. Accessing the region after Free is undefined;
// callers are expected to delay Free until epoch-based reclamation proves
// no concurrent reader can still hold addresses into it.
func (a *Allocator) Free(r *Region) error {
	if r == nil || r.raw == nil {
		return fmt.Errorf("offheap: double free or nil region")
	}
	raw, mm := r.raw, r.mmap
	r.raw = nil
	r.base = nil
	a.stats.FreedBytes.Add(int64(r.size))
	a.stats.LiveRegions.Add(-1)
	return freeRaw(raw, mm)
}

func freeRaw(raw []byte, mm bool) error {
	if mm {
		return munmap(raw)
	}
	// Heap slab: dropping the reference is enough; the GC reclaims it.
	return nil
}
