//go:build !linux

package offheap

import "errors"

const mmapAvailable = false

func mmapAnon(n int) ([]byte, error) {
	return nil, errors.New("offheap: mmap backend unavailable on this platform")
}

func munmap(b []byte) error {
	return errors.New("offheap: mmap backend unavailable on this platform")
}
