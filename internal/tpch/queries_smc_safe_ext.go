package tpch

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/types"
)

// "Safe" Q7–Q10 over self-managed collections: block enumeration plus
// value-semantics field access, mirroring the compiled managed queries as
// in queries_smc_safe.go. The difference from the unsafe variants is the
// same as for Q1–Q6: every decimal operand is copied out of block memory
// before arithmetic, no in-place pointer math.

// SMCSafeQ7 runs the volume-shipping query with value-semantics access.
func SMCSafeQ7(db *SMCDB, s *core.Session, p Params) []Q7Row {
	q := NewSMCQueries(db)
	nation1 := []byte(p.Q7Nation1)
	nation2 := []byte(p.Q7Nation2)
	one := decimal.FromInt64(1)
	rev := make(map[int32]decimal.Dec128, 4)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ship := dateAt(blk, i, q.lShip)
			if ship < q7DateLo || ship > q7DateHi {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			sn := objStr(snobj, q.nName)
			is1, is2 := bytes.Equal(sn, nation1), bytes.Equal(sn, nation2)
			if !is1 && !is2 {
				continue
			}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			cnobj, err := q.deref(s, &q.frCNation, cobj)
			if err != nil {
				continue
			}
			cn := objStr(cnobj, q.nName)
			if is1 && !bytes.Equal(cn, nation2) {
				continue
			}
			if is2 && !bytes.Equal(cn, nation1) {
				continue
			}
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			k := q7Dir(is1, ship.Year())
			rev[k] = rev[k].Add(ext.Mul(one.Sub(dsc)))
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q7Row, 0, len(rev))
	for k, v := range rev {
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if k&1 == 1 {
			sn, cn = cn, sn
		}
		rows = append(rows, Q7Row{SuppNation: sn, CustNation: cn, Year: k >> 1, Revenue: v})
	}
	SortQ7(rows)
	return rows
}

// SMCSafeQ8 runs the national-market-share query with value-semantics
// access.
func SMCSafeQ8(db *SMCDB, s *core.Session, p Params) []Q8Row {
	q := NewSMCQueries(db)
	nation := []byte(p.Q8Nation)
	region := []byte(p.Q8Region)
	ptype := []byte(p.Q8Type)
	one := decimal.FromInt64(1)
	groups := make(map[int32]*q8Acc, 2)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			od := *(*types.Date)(oobj.Field(q.oDate))
			if od < q7DateLo || od > q7DateHi {
				continue
			}
			pobj, err := q.deref(s, &q.frLPart, l)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(pobj, q.pType), ptype) {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			cnobj, err := q.deref(s, &q.frCNation, cobj)
			if err != nil {
				continue
			}
			crobj, err := q.deref(s, &q.frNRegion, cnobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(crobj, q.rName), region) {
				continue
			}
			y := int32(od.Year())
			a := groups[y]
			if a == nil {
				a = &q8Acc{}
				groups[y] = a
			}
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			vol := ext.Mul(one.Sub(dsc))
			a.total = a.total.Add(vol)
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			if bytes.Equal(objStr(snobj, q.nName), nation) {
				a.nation = a.nation.Add(vol)
			}
		}
	}
	en.Close()
	s.Exit()
	return q8Finish(groups)
}

// SMCSafeQ9 runs the product-type-profit query with value-semantics
// access.
func SMCSafeQ9(db *SMCDB, s *core.Session, p Params) []Q9Row {
	q := NewSMCQueries(db)
	color := []byte(p.Q9Color)
	one := decimal.FromInt64(1)

	s.Enter()
	cost := make(map[psKey]decimal.Dec128, 1024)
	en := db.PartSupps.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ps := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frPSPart, ps)
			if err != nil {
				continue
			}
			sobj, err := q.deref(s, &q.frPSSupp, ps)
			if err != nil {
				continue
			}
			k := psKey{
				Part: *(*int64)(pobj.Field(q.pKey)),
				Supp: *(*int64)(sobj.Field(q.sKey)),
			}
			cost[k] = *decAt(blk, i, q.psCost)
		}
	}
	en.Close()

	type gk struct {
		nation string
		year   int32
	}
	profit := make(map[gk]decimal.Dec128)
	en2 := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frLPart, l)
			if err != nil {
				continue
			}
			if !bytes.Contains(objStr(pobj, q.pName), color) {
				continue
			}
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			k := psKey{
				Part: *(*int64)(pobj.Field(q.pKey)),
				Supp: *(*int64)(sobj.Field(q.sKey)),
			}
			c, ok := cost[k]
			if !ok {
				continue
			}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			qty := *decAt(blk, i, q.lQty)
			amount := ext.Mul(one.Sub(dsc)).Sub(c.Mul(qty))
			g := gk{
				nation: string(objStr(snobj, q.nName)),
				year:   int32((*(*types.Date)(oobj.Field(q.oDate))).Year()),
			}
			profit[g] = profit[g].Add(amount)
		}
	}
	en2.Close()
	s.Exit()

	rows := make([]Q9Row, 0, len(profit))
	for k, v := range profit {
		rows = append(rows, Q9Row{Nation: k.nation, Year: k.year, SumProfit: v})
	}
	SortQ9(rows)
	return rows
}

// SMCSafeQ10 runs the returned-item report with value-semantics access:
// customer fields are copied into the accumulator as they are first seen,
// as the compiled managed query materializes them.
func SMCSafeQ10(db *SMCDB, s *core.Session, p Params) []Q10Row {
	q := NewSMCQueries(db)
	hi := p.Q10Date.AddMonths(3)
	one := decimal.FromInt64(1)
	rev := make(map[int64]*Q10Row)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if i32At(blk, i, q.lRet) != 'R' {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			od := *(*types.Date)(oobj.Field(q.oDate))
			if od < p.Q10Date || od >= hi {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			ck := *(*int64)(cobj.Field(q.cKey))
			row := rev[ck]
			if row == nil {
				row = &Q10Row{
					CustKey: ck,
					Name:    string(objStr(cobj, q.cName)),
					AcctBal: *(*decimal.Dec128)(cobj.Field(q.cBal)),
					Address: string(objStr(cobj, q.cAddr)),
					Phone:   string(objStr(cobj, q.cPhone)),
					Comment: string(objStr(cobj, q.cCmnt)),
				}
				if cnobj, err := q.deref(s, &q.frCNation, cobj); err == nil {
					row.Nation = string(objStr(cnobj, q.nName))
				}
				rev[ck] = row
			}
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			row.Revenue = row.Revenue.Add(ext.Mul(one.Sub(dsc)))
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q10Row, 0, len(rev))
	for _, r := range rev {
		rows = append(rows, *r)
	}
	return SortQ10(rows)
}

// SMCSafeAllX runs the four extended safe-variant queries.
func SMCSafeAllX(db *SMCDB, s *core.Session, p Params) *ResultX {
	return &ResultX{
		Q7:  SMCSafeQ7(db, s, p),
		Q8:  SMCSafeQ8(db, s, p),
		Q9:  SMCSafeQ9(db, s, p),
		Q10: SMCSafeQ10(db, s, p),
	}
}
