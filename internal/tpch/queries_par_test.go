package tpch

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestParallelQueriesMatchSerial: Q1Par/Q6Par must produce the serial
// kernels' exact results at every worker count and layout.
func TestParallelQueriesMatchSerial(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSMCQueries(sdb)
			wantQ1 := q.Q1(s, p)
			wantQ6 := q.Q6(s, p)
			for _, workers := range []int{1, 2, 4} {
				if got := q.Q1Par(s, p, workers); !reflect.DeepEqual(got, wantQ1) {
					t.Fatalf("Q1Par(workers=%d) diverges from Q1:\n got %+v\nwant %+v", workers, got, wantQ1)
				}
				if got := q.Q6Par(s, p, workers); got != wantQ6 {
					t.Fatalf("Q6Par(workers=%d) = %v, want %v", workers, got, wantQ6)
				}
			}
		})
	}
}

// joinWorkerCounts sweeps 1..NumCPU (and at least 1..4 so block-sharded
// merge paths are exercised even on small CI machines).
func joinWorkerCounts() []int {
	max := runtime.NumCPU()
	if max < 4 {
		max = 4
	}
	ws := make([]int, 0, max)
	for w := 1; w <= max; w++ {
		ws = append(ws, w)
	}
	return ws
}

// TestParallelJoinQueriesMatchSerial: Q3Par/Q5Par/Q10Par and the
// pipeline-native Q7Par/Q8Par/Q9Par must produce exactly the serial rows
// at every worker count and layout — the join kernels are shared, the
// parallel drivers only change who scans which block, where the group
// state lives and how it merges. Uses the ext dataset so the extended
// queries' selective predicates produce non-empty baselines.
func TestParallelJoinQueriesMatchSerial(t *testing.T) {
	d := extDataset(t)
	p := DefaultParams()
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSMCQueries(sdb)
			wantQ2 := q.Q2(s, p)
			wantQ3 := q.Q3(s, p)
			wantQ4 := q.Q4(s, p)
			wantQ5 := q.Q5(s, p)
			wantQ10 := q.Q10(s, p)
			wantQ7 := q.Q7(s, p)
			wantQ8 := q.Q8(s, p)
			wantQ9 := q.Q9(s, p)
			if len(wantQ3) == 0 || len(wantQ5) == 0 || len(wantQ10) == 0 {
				t.Fatalf("serial baselines empty (Q3=%d Q5=%d Q10=%d rows): dataset too small to exercise the joins",
					len(wantQ3), len(wantQ5), len(wantQ10))
			}
			if len(wantQ7) == 0 || len(wantQ8) == 0 || len(wantQ9) == 0 {
				t.Fatalf("serial baselines empty (Q7=%d Q8=%d Q9=%d rows): dataset too small to exercise the extended joins",
					len(wantQ7), len(wantQ8), len(wantQ9))
			}
			if len(wantQ2) == 0 {
				t.Fatalf("serial baseline empty (Q2=0 rows): dataset too small to exercise the join")
			}
			for _, workers := range joinWorkerCounts() {
				if got := q.Q2Par(s, p, workers); !reflect.DeepEqual(got, wantQ2) {
					t.Fatalf("Q2Par(workers=%d) diverges from Q2:\n got %+v\nwant %+v", workers, got, wantQ2)
				}
				if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
					t.Fatalf("Q3Par(workers=%d) diverges from Q3:\n got %+v\nwant %+v", workers, got, wantQ3)
				}
				if got := q.Q4Par(s, p, workers); !reflect.DeepEqual(got, wantQ4) {
					t.Fatalf("Q4Par(workers=%d) diverges from Q4:\n got %+v\nwant %+v", workers, got, wantQ4)
				}
				if got := q.Q5Par(s, p, workers); !reflect.DeepEqual(got, wantQ5) {
					t.Fatalf("Q5Par(workers=%d) diverges from Q5:\n got %+v\nwant %+v", workers, got, wantQ5)
				}
				if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
					t.Fatalf("Q10Par(workers=%d) diverges from Q10:\n got %+v\nwant %+v", workers, got, wantQ10)
				}
				if got := q.Q7Par(s, p, workers); !reflect.DeepEqual(got, wantQ7) {
					t.Fatalf("Q7Par(workers=%d) diverges from Q7:\n got %+v\nwant %+v", workers, got, wantQ7)
				}
				if got := q.Q8Par(s, p, workers); !reflect.DeepEqual(got, wantQ8) {
					t.Fatalf("Q8Par(workers=%d) diverges from Q8:\n got %+v\nwant %+v", workers, got, wantQ8)
				}
				if got := q.Q9Par(s, p, workers); !reflect.DeepEqual(got, wantQ9) {
					t.Fatalf("Q9Par(workers=%d) diverges from Q9:\n got %+v\nwant %+v", workers, got, wantQ9)
				}
			}
		})
	}
}

// TestParallelJoinMergeDeterminism: the parallel per-partition merge
// and the partition-sharded finishing passes must be invisible in the
// output — for Q3, Q5 and Q9 every worker count produces byte-identical
// result rows to the serial worker-order merge, and repeated runs at
// one worker count are identical to each other (the nondeterministic
// block-to-worker assignment must never leak into row order or values).
func TestParallelJoinMergeDeterminism(t *testing.T) {
	d := extDataset(t)
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)
	wantQ3, wantQ5, wantQ9 := q.Q3(s, p), q.Q5(s, p), q.Q9(s, p)
	for _, workers := range joinWorkerCounts() {
		for rep := 0; rep < 3; rep++ {
			if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
				t.Fatalf("Q3Par(workers=%d) rep %d not byte-identical to serial merge", workers, rep)
			}
			if got := q.Q5Par(s, p, workers); !reflect.DeepEqual(got, wantQ5) {
				t.Fatalf("Q5Par(workers=%d) rep %d not byte-identical to serial merge", workers, rep)
			}
			if got := q.Q9Par(s, p, workers); !reflect.DeepEqual(got, wantQ9) {
				t.Fatalf("Q9Par(workers=%d) rep %d not byte-identical to serial merge", workers, rep)
			}
		}
	}
	// The query object's arena pool is registered with the runtime: all
	// of the above must be visible in the stats snapshot.
	st := rt.StatsSnapshot()
	found := false
	for _, ap := range st.ArenaPools {
		if ap.Name == "tpch.SMCQueries" {
			found = true
			if ap.Leases == 0 || ap.Reuses == 0 {
				t.Fatalf("pool counters did not move across queries: %+v", ap)
			}
		}
	}
	if !found {
		t.Fatalf("tpch.SMCQueries pool not registered in runtime stats: %+v", st.ArenaPools)
	}
}

// TestParallelJoinConcurrentSerialQueries: concurrent *serial* queries
// on one SMCQueries must not race — each leases its own region from the
// pool (the old shared q.arena design made this a data race).
func TestParallelJoinConcurrentSerialQueries(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)
	wantQ3, wantQ4 := q.Q3(s, p), q.Q4(s, p)
	wantQ5, wantQ9, wantQ10 := q.Q5(s, p), q.Q9(s, p), q.Q10(s, p)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gs := rt.MustSession()
			defer gs.Close()
			for i := 0; i < 3; i++ {
				switch (g + i) % 5 {
				case 0:
					if got := q.Q3(gs, p); !reflect.DeepEqual(got, wantQ3) {
						t.Errorf("concurrent Q3 diverged")
					}
				case 1:
					if got := q.Q4(gs, p); !reflect.DeepEqual(got, wantQ4) {
						t.Errorf("concurrent Q4 diverged")
					}
				case 2:
					if got := q.Q5(gs, p); !reflect.DeepEqual(got, wantQ5) {
						t.Errorf("concurrent Q5 diverged")
					}
				case 3:
					if got := q.Q9(gs, p); !reflect.DeepEqual(got, wantQ9) {
						t.Errorf("concurrent Q9 diverged")
					}
				default:
					if got := q.Q10(gs, p); !reflect.DeepEqual(got, wantQ10) {
						t.Errorf("concurrent Q10 diverged")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelJoinStress runs the parallel join queries — including the
// pipeline-native Q7/Q8/Q9 with their parallel merges and finishing
// passes — against concurrent add/remove churn and an active compactor.
// The churned lineitems are crafted to fail every query's filters (null
// order/part/supplier references, zero ship dates, non-'R' return
// flags), so the stable rows fully determine the answers: every parallel
// run must return exactly the serial baseline while blocks appear, empty
// and compact underneath it.
func TestParallelJoinStress(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)
	wantQ3, wantQ5, wantQ10 := q.Q3(s, p), q.Q5(s, p), q.Q10(s, p)
	wantQ7, wantQ8, wantQ9 := q.Q7(s, p), q.Q8(s, p), q.Q9(s, p)

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup

	// Churners: transient lineitems invisible to Q3/Q5/Q10.
	const churners = 2
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs, err := rt.NewSession()
			if err != nil {
				fail.Store(err.Error())
				return
			}
			defer cs.Close()
			var pool []core.Ref[SLineitem]
			for {
				select {
				case <-stop:
					return
				default:
				}
				ref, err := sdb.Lineitems.Add(cs, &SLineitem{
					OrderKey:   int64(1)<<40 | int64(w),
					ReturnFlag: 'N',
					LineStatus: 'F',
				})
				if err != nil {
					fail.Store(err.Error())
					return
				}
				pool = append(pool, ref)
				if len(pool) > 16 {
					victim := pool[0]
					pool = pool[1:]
					if err := sdb.Lineitems.Remove(cs, victim); err != nil {
						fail.Store(err.Error())
						return
					}
				}
			}
		}(w)
	}

	// Compactor loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := rt.CompactNow(); err != nil {
					fail.Store(err.Error())
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	runs := 0
	for time.Now().Before(deadline) && fail.Load() == nil {
		workers := 1 + runs%4
		if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
			t.Fatalf("run %d: Q3Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q5Par(s, p, workers); !reflect.DeepEqual(got, wantQ5) {
			t.Fatalf("run %d: Q5Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
			t.Fatalf("run %d: Q10Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q7Par(s, p, workers); !reflect.DeepEqual(got, wantQ7) {
			t.Fatalf("run %d: Q7Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q8Par(s, p, workers); !reflect.DeepEqual(got, wantQ8) {
			t.Fatalf("run %d: Q8Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q9Par(s, p, workers); !reflect.DeepEqual(got, wantQ9) {
			t.Fatalf("run %d: Q9Par(workers=%d) diverged under churn", runs, workers)
		}
		runs++
	}
	close(stop)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if runs == 0 {
		t.Fatal("no parallel join runs completed")
	}
}
