package tpch

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestParallelQueriesMatchSerial: Q1Par/Q6Par must produce the serial
// kernels' exact results at every worker count and layout.
func TestParallelQueriesMatchSerial(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSMCQueries(sdb)
			wantQ1 := q.Q1(s, p)
			wantQ6 := q.Q6(s, p)
			for _, workers := range []int{1, 2, 4} {
				if got := q.Q1Par(s, p, workers); !reflect.DeepEqual(got, wantQ1) {
					t.Fatalf("Q1Par(workers=%d) diverges from Q1:\n got %+v\nwant %+v", workers, got, wantQ1)
				}
				if got := q.Q6Par(s, p, workers); got != wantQ6 {
					t.Fatalf("Q6Par(workers=%d) = %v, want %v", workers, got, wantQ6)
				}
			}
		})
	}
}
