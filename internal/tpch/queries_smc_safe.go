package tpch

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/types"
)

// "Safe" compiled queries over self-managed collections: the paper's
// "SMC (C#)" series in Figure 11 — "compiled C# code that, other than the
// enumeration code, is equivalent to the code used for managed
// collections. This illustrates the fraction of the overall improvement
// contributed by the better enumeration performance of smcs."
//
// The enumeration walks the collection's private blocks in memory order
// (slot directory scan), but object access keeps managed-code value
// semantics: every field is loaded *by value* and all decimal arithmetic
// copies 16-byte operands, exactly like the compiled managed queries.
// The unsafe variant (queries_smc.go) differs by passing direct pointers
// into block memory to in-place decimal routines (§7).

// SMCSafeQ1 runs Q1 with value-semantics field access.
func SMCSafeQ1(db *SMCDB, s *core.Session, p Params) []Q1Row {
	cutoff := p.Q1Cutoff()
	q := NewSMCQueries(db)
	groups := make(map[int64]*q1Acc, 8)
	one := decimal.FromInt64(1)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			// Value loads, as managed compiled code would perform.
			ship := dateAt(blk, i, q.lShip)
			if ship > cutoff {
				continue
			}
			qty := *decAt(blk, i, q.lQty)
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			tax := *decAt(blk, i, q.lTax)
			k := q1Key(i32At(blk, i, q.lRet), i32At(blk, i, q.lStat))
			a := groups[k]
			if a == nil {
				a = &q1Acc{}
				groups[k] = a
			}
			a.sumQty = a.sumQty.Add(qty)
			a.sumBase = a.sumBase.Add(ext)
			a.sumDisc = a.sumDisc.Add(dsc)
			disc := ext.Mul(one.Sub(dsc))
			a.sumCharge = a.sumCharge.Add(disc.Mul(one.Add(tax)))
			a.count++
		}
	}
	en.Close()
	s.Exit()
	return q1Finish(groups)
}

// SMCSafeQ2 runs Q2 with value-semantics reference joins.
func SMCSafeQ2(db *SMCDB, s *core.Session, p Params) []Q2Row {
	q := NewSMCQueries(db)
	typeSuffix := []byte(p.Q2Type)
	region := []byte(p.Q2Region)

	s.Enter()
	defer s.Exit()

	qualifies := func(blk *mem.Block, i int) (pobj, sobj, nobj mem.Obj, pk int64, ok bool) {
		ps := mem.Obj{Blk: blk, Slot: i}
		pobj, err := q.deref(s, &q.frPSPart, ps)
		if err != nil {
			return
		}
		if *(*int32)(pobj.Field(q.pSize)) != p.Q2Size {
			return
		}
		if !bytes.HasSuffix(objStr(pobj, q.pType), typeSuffix) {
			return
		}
		sobj, err = q.deref(s, &q.frPSSupp, ps)
		if err != nil {
			return
		}
		nobj, err = q.deref(s, &q.frSNation, sobj)
		if err != nil {
			return
		}
		robj, err := q.deref(s, &q.frNRegion, nobj)
		if err != nil {
			return
		}
		if !bytes.Equal(objStr(robj, q.rName), region) {
			return
		}
		pk = *(*int64)(pobj.Field(q.pKey))
		ok = true
		return
	}

	minCost := make(map[int64]decimal.Dec128)
	en := db.PartSupps.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			_, _, _, pk, ok2 := qualifies(blk, i)
			if !ok2 {
				continue
			}
			cost := *decAt(blk, i, q.psCost)
			cur, found := minCost[pk]
			if !found || cost.Less(cur) {
				minCost[pk] = cost
			}
		}
	}
	en.Close()

	var rows []Q2Row
	en2 := db.PartSupps.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			pobj, sobj, nobj, pk, ok2 := qualifies(blk, i)
			if !ok2 {
				continue
			}
			if mc, found := minCost[pk]; !found || *decAt(blk, i, q.psCost) != mc {
				continue
			}
			rows = append(rows, Q2Row{
				AcctBal: *(*decimal.Dec128)(sobj.Field(q.sBal)),
				SName:   string(objStr(sobj, q.sName)),
				NName:   string(objStr(nobj, q.nName)),
				PartKey: pk,
				Mfgr:    string(objStr(pobj, q.pMfgr)),
				Address: string(objStr(sobj, q.sAddr)),
				Phone:   string(objStr(sobj, q.sPhone)),
				Comment: string(objStr(sobj, q.sCmnt)),
			})
		}
	}
	en2.Close()
	return SortQ2(rows)
}

// SMCSafeQ3 runs Q3 with value-semantics reference joins.
func SMCSafeQ3(db *SMCDB, s *core.Session, p Params) []Q3Row {
	q := NewSMCQueries(db)
	type acc struct {
		rev   decimal.Dec128
		date  types.Date
		sprio int32
	}
	groups := make(map[int64]*acc)
	segment := []byte(p.Q3Segment)
	one := decimal.FromInt64(1)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if dateAt(blk, i, q.lShip) <= p.Q3Date {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			odate := *(*types.Date)(oobj.Field(q.oDate))
			if odate >= p.Q3Date {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(cobj, q.cSeg), segment) {
				continue
			}
			ok64 := *(*int64)(oobj.Field(q.oKey))
			a := groups[ok64]
			if a == nil {
				a = &acc{date: odate, sprio: *(*int32)(oobj.Field(q.oSprio))}
				groups[ok64] = a
			}
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			a.rev = a.rev.Add(ext.Mul(one.Sub(dsc)))
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q3Row, 0, len(groups))
	for k, a := range groups {
		rows = append(rows, Q3Row{OrderKey: k, Revenue: a.rev, OrderDate: a.date, ShipPriority: a.sprio})
	}
	return SortQ3(rows)
}

// SMCSafeQ4 runs Q4 with value-semantics reference joins.
func SMCSafeQ4(db *SMCDB, s *core.Session, p Params) []Q4Row {
	q := NewSMCQueries(db)
	hi := p.Q4Date.AddMonths(3)
	late := make(map[int64]bool)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if dateAt(blk, i, q.lCommit) >= dateAt(blk, i, q.lRecv) {
				continue
			}
			oobj, err := q.frLOrder.Deref(s, mem.Obj{Blk: blk, Slot: i})
			if err != nil {
				continue
			}
			od := *(*types.Date)(oobj.Field(q.oDate))
			if od >= p.Q4Date && od < hi {
				late[i64At(blk, i, q.lOrderKey)] = true
			}
		}
	}
	en.Close()

	counts := make(map[string]int64)
	en2 := db.Orders.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			od := dateAt(blk, i, q.oDate)
			if od < p.Q4Date || od >= hi {
				continue
			}
			if late[i64At(blk, i, q.oKey)] {
				counts[string(strAt(blk, i, q.oPrio))]++
			}
		}
	}
	en2.Close()
	s.Exit()

	rows := make([]Q4Row, 0, len(counts))
	for pr, n := range counts {
		rows = append(rows, Q4Row{Priority: pr, Count: n})
	}
	SortQ4(rows)
	return rows
}

// SMCSafeQ5 runs Q5 with value-semantics reference joins.
func SMCSafeQ5(db *SMCDB, s *core.Session, p Params) []Q5Row {
	q := NewSMCQueries(db)
	hi := p.Q5Date.AddYears(1)
	region := []byte(p.Q5Region)
	rev := make(map[string]decimal.Dec128)
	one := decimal.FromInt64(1)

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			od := *(*types.Date)(oobj.Field(q.oDate))
			if od < p.Q5Date || od >= hi {
				continue
			}
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			robj, err := q.deref(s, &q.frNRegion, snobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(robj, q.rName), region) {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			cnobj, err := q.deref(s, &q.frCNation, cobj)
			if err != nil {
				continue
			}
			if *(*int64)(cnobj.Field(q.nKey)) != *(*int64)(snobj.Field(q.nKey)) {
				continue
			}
			name := string(objStr(snobj, q.nName))
			ext := *decAt(blk, i, q.lExt)
			dsc := *decAt(blk, i, q.lDisc)
			rev[name] = rev[name].Add(ext.Mul(one.Sub(dsc)))
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q5Row, 0, len(rev))
	for n, v := range rev {
		rows = append(rows, Q5Row{Nation: n, Revenue: v})
	}
	SortQ5(rows)
	return rows
}

// SMCSafeQ6 runs Q6 with value-semantics field access.
func SMCSafeQ6(db *SMCDB, s *core.Session, p Params) decimal.Dec128 {
	q := NewSMCQueries(db)
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	var sum decimal.Dec128

	s.Enter()
	en := db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ship := dateAt(blk, i, q.lShip)
			if ship < p.Q6Date || ship >= hi {
				continue
			}
			dsc := *decAt(blk, i, q.lDisc)
			if dsc.Less(lo) || hiD.Less(dsc) {
				continue
			}
			qty := *decAt(blk, i, q.lQty)
			if !qty.Less(p.Q6Quantity) {
				continue
			}
			ext := *decAt(blk, i, q.lExt)
			sum = sum.Add(ext.Mul(dsc))
		}
	}
	en.Close()
	s.Exit()
	return sum
}

// SMCSafeAll runs all six safe-variant queries.
func SMCSafeAll(db *SMCDB, s *core.Session, p Params) *Result {
	return &Result{
		Q1: SMCSafeQ1(db, s, p),
		Q2: SMCSafeQ2(db, s, p),
		Q3: SMCSafeQ3(db, s, p),
		Q4: SMCSafeQ4(db, s, p),
		Q5: SMCSafeQ5(db, s, p),
		Q6: SMCSafeQ6(db, s, p),
	}
}
