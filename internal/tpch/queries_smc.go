package tpch

import (
	"bytes"
	"unsafe"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/region"
	"repro/internal/schema"
	"repro/internal/types"
)

// Compiled "unsafe" queries over self-managed collections: the Go
// equivalent of the paper's compiled unsafe C# (§7). The generated-code
// idioms are reproduced by hand, as the paper itself did: per-block slot
// directory scans, constant field offsets hoisted out of loops, direct
// pointers to 16-byte decimals passed to in-place arithmetic, reference
// joins through FieldRef (indirection or direct pointers per layout), and
// columnar per-column base pointers when the collection is columnar
// (§4.1). Every query runs inside critical sections managed by the block
// enumerator (§4).

// SMCQueries caches the resolved field handles ("compiled" offsets) for
// one SMCDB, plus the arena pool its query intermediates lease from
// ("use memory regions for all intermediate data during query
// processing", §7 — rethought for multi-core). Build it once, run
// queries many times; unlike the old one-arena-per-stream design, every
// query leases private region state from the pool, so concurrent queries
// on one SMCQueries — serial ones on separate sessions, or the *Par
// drivers' scan workers — never share mutable intermediates.
type SMCQueries struct {
	db *SMCDB
	// arenas leases per-query (and, in the *Par drivers, per-worker)
	// regions for intermediates; returned arenas are reset and recycled
	// under the pool's bounded retained footprint.
	arenas *region.ArenaPool
	// rowFast enables the open-coded indirect fast path (row targets).
	rowFast bool

	// lineitem fields
	lShip, lCommit, lRecv      *schema.Field
	lQty, lExt, lDisc, lTax    *schema.Field
	lRet, lStat                *schema.Field
	lOrderKey                  *schema.Field
	frLOrder, frLSupp, frLPart core.FieldRef
	// orders fields
	oKey, oDate, oPrio, oSprio *schema.Field
	frOCust                    core.FieldRef
	// customer fields
	cSeg                       *schema.Field
	cKey, cName, cAddr, cPhone *schema.Field
	cBal, cCmnt                *schema.Field
	frCNation                  core.FieldRef
	// supplier fields
	sKey                              *schema.Field
	sName, sAddr, sPhone, sBal, sCmnt *schema.Field
	frSNation                         core.FieldRef
	// nation fields
	nName, nKey *schema.Field
	frNRegion   core.FieldRef
	// region fields
	rName *schema.Field
	// part fields
	pKey, pSize, pType, pMfgr, pName *schema.Field
	// partsupp fields
	psCost             *schema.Field
	frPSPart, frPSSupp core.FieldRef
}

// NewSMCQueries resolves all field offsets for the database and
// registers the query object's arena pool with the runtime's stats
// surface (core.Runtime.StatsSnapshot reports its lease and retained-
// footprint metrics).
func NewSMCQueries(db *SMCDB) *SMCQueries {
	l := db.Lineitems.Schema()
	o := db.Orders.Schema()
	c := db.Customers.Schema()
	s := db.Suppliers.Schema()
	n := db.Nations.Schema()
	r := db.Regions.Schema()
	pt := db.Parts.Schema()
	ps := db.PartSupps.Schema()
	q := &SMCQueries{
		db:        db,
		arenas:    region.NewArenaPool(nil, 0, 0),
		rowFast:   db.Layout != core.Columnar,
		lShip:     l.MustField("ShipDate"),
		lCommit:   l.MustField("CommitDate"),
		lRecv:     l.MustField("ReceiptDate"),
		lQty:      l.MustField("Quantity"),
		lExt:      l.MustField("ExtendedPrice"),
		lDisc:     l.MustField("Discount"),
		lTax:      l.MustField("Tax"),
		lRet:      l.MustField("ReturnFlag"),
		lStat:     l.MustField("LineStatus"),
		lOrderKey: l.MustField("OrderKey"),
		frLOrder:  db.Lineitems.FieldRefByName("Order"),
		frLSupp:   db.Lineitems.FieldRefByName("Supplier"),
		frLPart:   db.Lineitems.FieldRefByName("Part"),
		oKey:      o.MustField("Key"),
		oDate:     o.MustField("OrderDate"),
		oPrio:     o.MustField("OrderPriority"),
		oSprio:    o.MustField("ShipPriority"),
		frOCust:   db.Orders.FieldRefByName("Customer"),
		cSeg:      c.MustField("MktSegment"),
		cKey:      c.MustField("Key"),
		cName:     c.MustField("Name"),
		cAddr:     c.MustField("Address"),
		cPhone:    c.MustField("Phone"),
		cBal:      c.MustField("AcctBal"),
		cCmnt:     c.MustField("Comment"),
		frCNation: db.Customers.FieldRefByName("Nation"),
		sKey:      s.MustField("Key"),
		sName:     s.MustField("Name"),
		sAddr:     s.MustField("Address"),
		sPhone:    s.MustField("Phone"),
		sBal:      s.MustField("AcctBal"),
		sCmnt:     s.MustField("Comment"),
		frSNation: db.Suppliers.FieldRefByName("Nation"),
		nName:     n.MustField("Name"),
		nKey:      n.MustField("Key"),
		frNRegion: db.Nations.FieldRefByName("Region"),
		rName:     r.MustField("Name"),
		pKey:      pt.MustField("Key"),
		pSize:     pt.MustField("Size"),
		pType:     pt.MustField("Type"),
		pMfgr:     pt.MustField("Mfgr"),
		pName:     pt.MustField("Name"),
		psCost:    ps.MustField("SupplyCost"),
		frPSPart:  db.PartSupps.FieldRefByName("Part"),
		frPSSupp:  db.PartSupps.FieldRefByName("Supplier"),
	}
	db.RT.RegisterArenaPool("tpch.SMCQueries", q.arenas)
	return q
}

// strAt reads an off-heap string field without copying.
func strAt(b *mem.Block, slot int, f *schema.Field) []byte {
	return (*(*types.StrRef)(b.FieldPtr(slot, f))).Bytes()
}

func decAt(b *mem.Block, slot int, f *schema.Field) *decimal.Dec128 {
	return (*decimal.Dec128)(b.FieldPtr(slot, f))
}

func dateAt(b *mem.Block, slot int, f *schema.Field) types.Date {
	return *(*types.Date)(b.FieldPtr(slot, f))
}

func i32At(b *mem.Block, slot int, f *schema.Field) int32 {
	return *(*int32)(b.FieldPtr(slot, f))
}

func i64At(b *mem.Block, slot int, f *schema.Field) int64 {
	return *(*int64)(b.FieldPtr(slot, f))
}

// objStr reads a string field of a dereferenced object.
func objStr(o mem.Obj, f *schema.Field) []byte {
	return (*(*types.StrRef)(o.Field(f))).Bytes()
}

// deref follows a reference field of obj into fr's target collection. It
// open-codes the dereference checks the paper's JIT compiler inlines into
// generated query code — generation match plus clean incarnation match,
// then the payload load — and falls back to the full protocol (flags,
// relocation cases, null) otherwise.
// Deref exposes the open-coded dereference fast path to external
// compiled query code (the benchmark harness and examples).
func (q *SMCQueries) Deref(s *core.Session, fr *core.FieldRef, o mem.Obj) (mem.Obj, error) {
	return q.deref(s, fr, o)
}

func (q *SMCQueries) deref(s *core.Session, fr *core.FieldRef, o mem.Obj) (mem.Obj, error) {
	fp := o.Field(fr.Field)
	if fr.Direct {
		addr := *(*uint64)(fp)
		if addr == 0 {
			return mem.Obj{}, mem.ErrNullReference
		}
		p := types.LaunderAddr(uintptr(addr))
		if mem.SlotIncWord(p) == *(*uint32)(unsafe.Add(fp, 8)) {
			return mem.Obj{Ptr: p}, nil
		}
		return fr.Deref(s, o)
	}
	if q.rowFast {
		r := *(*types.Ref)(fp)
		e := r.Entry
		if e == nil {
			return mem.Obj{}, mem.ErrNullReference
		}
		if mem.EntryGen(e) == r.Gen && mem.EntryIncWord(e) == r.Inc {
			return mem.Obj{Ptr: mem.EntryPayloadRow(e)}, nil
		}
	}
	return fr.Deref(s, o)
}

// Q1 — pricing summary report: the paper's showcase for direct decimal
// pointers ("the query is decimal computation heavy ... calling the
// functions that perform decimal math using pointers and allowing for
// in-place modifications results in a huge performance gain", §7).
func (q *SMCQueries) Q1(s *core.Session, p Params) []Q1Row {
	cutoff := p.Q1Cutoff()
	// Dense accumulator table indexed by (returnflag, linestatus) pairs:
	// the query compiler knows both are single chars. The per-block
	// kernel is shared with Q1Par (queries_smc_par.go).
	var d q1Dense
	columnar := q.db.Layout == core.Columnar

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q1Block(blk, cutoff, columnar, &d)
	}
	en.Close()
	s.Exit()
	return q1Finish(d.groups())
}

// Q2 — minimum-cost supplier, reference joins through partsupp.
func (q *SMCQueries) Q2(s *core.Session, p Params) []Q2Row {
	typeSuffix := []byte(p.Q2Type)
	region := []byte(p.Q2Region)

	s.Enter()
	defer s.Exit()

	// Pass 1: minimum supply cost per qualifying part among suppliers in
	// the region.
	minCost := make(map[int64]decimal.Dec128)
	en := q.db.PartSupps.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ps := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frPSPart, ps)
			if err != nil {
				continue
			}
			if *(*int32)(pobj.Field(q.pSize)) != p.Q2Size {
				continue
			}
			if !bytes.HasSuffix(objStr(pobj, q.pType), typeSuffix) {
				continue
			}
			sobj, err := q.deref(s, &q.frPSSupp, ps)
			if err != nil {
				continue
			}
			nobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			robj, err := q.deref(s, &q.frNRegion, nobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(robj, q.rName), region) {
				continue
			}
			pk := *(*int64)(pobj.Field(q.pKey))
			cost := *decAt(blk, i, q.psCost)
			cur, ok := minCost[pk]
			if !ok || cost.Less(cur) {
				minCost[pk] = cost
			}
		}
	}
	en.Close()

	// Pass 2: emit suppliers achieving the minimum.
	var rows []Q2Row
	en2 := q.db.PartSupps.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ps := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frPSPart, ps)
			if err != nil {
				continue
			}
			pk := *(*int64)(pobj.Field(q.pKey))
			mc, ok := minCost[pk]
			if !ok || *decAt(blk, i, q.psCost) != mc {
				continue
			}
			sobj, err := q.deref(s, &q.frPSSupp, ps)
			if err != nil {
				continue
			}
			nobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			robj, err := q.deref(s, &q.frNRegion, nobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(robj, q.rName), region) {
				continue
			}
			rows = append(rows, Q2Row{
				AcctBal: *(*decimal.Dec128)(sobj.Field(q.sBal)),
				SName:   string(objStr(sobj, q.sName)),
				NName:   string(objStr(nobj, q.nName)),
				PartKey: pk,
				Mfgr:    string(objStr(pobj, q.pMfgr)),
				Address: string(objStr(sobj, q.sAddr)),
				Phone:   string(objStr(sobj, q.sPhone)),
				Comment: string(objStr(sobj, q.sCmnt)),
			})
		}
	}
	en2.Close()
	return SortQ2(rows)
}

// q3Acc is the Q3 group accumulator; pointer-free so it can live in the
// query region.
type q3Acc struct {
	rev   decimal.Dec128
	date  types.Date
	sprio int32
	seen  bool
}

// Q3 — shipping priority, lineitem→order→customer reference joins. The
// group-by state lives in a leased memory region (§7's unsafe-query
// optimization): one table in arena memory, discarded wholesale when the
// query ends. The per-block kernel is shared with Q3Par
// (queries_smc_joins.go).
func (q *SMCQueries) Q3(s *core.Session, p Params) []Q3Row {
	a := q.arenas.Lease()
	defer q.arenas.Return(a)
	groups := region.NewPartitionedTable[q3Acc](a, 1, joinTableHint)
	segment := []byte(p.Q3Segment)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q3Block(s, blk, p.Q3Date, segment, groups)
	}
	en.Close()
	s.Exit()
	return q3Rows(groups)
}

// Q3MapIntermediates is the ablation variant of Q3 with Go-heap map
// intermediates instead of region-backed state; identical otherwise.
func (q *SMCQueries) Q3MapIntermediates(s *core.Session, p Params) []Q3Row {
	groups := make(map[int64]*q3Acc)
	segment := []byte(p.Q3Segment)
	one := decimal.FromInt64(1)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if dateAt(blk, i, q.lShip) <= p.Q3Date {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			if *(*types.Date)(oobj.Field(q.oDate)) >= p.Q3Date {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(cobj, q.cSeg), segment) {
				continue
			}
			ok64 := *(*int64)(oobj.Field(q.oKey))
			a := groups[ok64]
			if a == nil {
				a = &q3Acc{
					date:  *(*types.Date)(oobj.Field(q.oDate)),
					sprio: *(*int32)(oobj.Field(q.oSprio)),
				}
				groups[ok64] = a
			}
			rev := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
			decimal.AddAssign(&a.rev, &rev)
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q3Row, 0, len(groups))
	for k, a := range groups {
		rows = append(rows, Q3Row{OrderKey: k, Revenue: a.rev, OrderDate: a.date, ShipPriority: a.sprio})
	}
	return SortQ3(rows)
}

// q4LateBlock scans one lineitem block for late lines (commit before
// receipt) whose order falls in the Q4 window, folding their order keys
// into the semi-join key table: the compiled per-block kernel, shared by
// the serial Q4 and Q4Par. s must be the session whose critical section
// covers blk.
func (q *SMCQueries) q4LateBlock(s *core.Session, blk *mem.Block, lo, hi types.Date, late *region.PartitionedTable[struct{}]) {
	for i := 0; i < blk.Capacity(); i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		if dateAt(blk, i, q.lCommit) >= dateAt(blk, i, q.lRecv) {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		od := *(*types.Date)(oobj.Field(q.oDate))
		if od >= lo && od < hi {
			late.At(i64At(blk, i, q.lOrderKey))
		}
	}
}

// q4CountBlock counts one orders block's in-window rows per priority
// against the (merged, read-only) late-key table: the per-block counting
// kernel, shared by the serial Q4 and Q4Par. The window check stays the
// residual predicate even when the scan was pruned on OrderDate.
func (q *SMCQueries) q4CountBlock(blk *mem.Block, lo, hi types.Date, late *region.PartitionedTable[struct{}], counts map[string]int64) {
	for i := 0; i < blk.Capacity(); i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		od := dateAt(blk, i, q.oDate)
		if od < lo || od >= hi {
			continue
		}
		if late.Get(i64At(blk, i, q.oKey)) != nil {
			counts[string(strAt(blk, i, q.oPrio))]++
		}
	}
}

// q4Rows materializes the priority counts in Q4's output order.
func q4Rows(counts map[string]int64) []Q4Row {
	rows := make([]Q4Row, 0, len(counts))
	for pr, n := range counts {
		rows = append(rows, Q4Row{Priority: pr, Count: n})
	}
	SortQ4(rows)
	return rows
}

// Q4 — order priority checking (semi-join on orderkey). The semi-join
// key set is region-backed (§7). The per-block kernels are shared with
// Q4Par (queries_smc_joins.go).
func (q *SMCQueries) Q4(s *core.Session, p Params) []Q4Row {
	hi := p.Q4Date.AddMonths(3)
	a := q.arenas.Lease()
	defer q.arenas.Return(a)
	late := region.NewPartitionedTable[struct{}](a, 1, 1024)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q4LateBlock(s, blk, p.Q4Date, hi, late)
	}
	en.Close()

	counts := make(map[string]int64)
	en2 := q.db.Orders.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		q.q4CountBlock(blk, p.Q4Date, hi, late, counts)
	}
	en2.Close()
	s.Exit()
	return q4Rows(counts)
}

// Q5 — local supplier volume: five-way reference join. The revenue
// accumulators live in a leased region keyed by nation key (pointer-free,
// §7); names resolve in a finishing pass over the tiny nation collection.
// The per-block kernel is shared with Q5Par (queries_smc_joins.go).
func (q *SMCQueries) Q5(s *core.Session, p Params) []Q5Row {
	a := q.arenas.Lease()
	defer q.arenas.Return(a)
	rev := region.NewPartitionedTable[decimal.Dec128](a, 1, 64)
	lo, hi := p.Q5Date, p.Q5Date.AddYears(1)
	regionName := []byte(p.Q5Region)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q5Block(s, blk, lo, hi, regionName, rev)
	}
	en.Close()
	s.Exit()
	return q.q5Finish(s, rev)
}

// Q6 — forecasting revenue change: pure scan with decimal predicates.
func (q *SMCQueries) Q6(s *core.Session, p Params) decimal.Dec128 {
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	columnar := q.db.Layout == core.Columnar
	var sum q6Sum

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q6Block(blk, p, hi, lo, hiD, columnar, &sum)
	}
	en.Close()
	s.Exit()
	return sum.sum
}

// All runs Q1–Q6.
func (q *SMCQueries) All(s *core.Session, p Params) *Result {
	return &Result{
		Q1: q.Q1(s, p),
		Q2: q.Q2(s, p),
		Q3: q.Q3(s, p),
		Q4: q.Q4(s, p),
		Q5: q.Q5(s, p),
		Q6: q.Q6(s, p),
	}
}
