package tpch

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
)

// rekeyDateCorrelated returns a copy of the dataset with order keys
// reassigned in order-date order (and lineitems re-keyed and re-sorted
// to follow): the auto-increment shape of an OLTP feed, where key ranges
// and date ranges cluster together. dbgen's native orderkey↔date
// mapping is random, so every block spans the whole key domain and no
// key set could ever prune a block.
func rekeyDateCorrelated(d *Dataset) *Dataset {
	out := *d
	out.Orders = append([]OrderRow(nil), d.Orders...)
	sort.SliceStable(out.Orders, func(i, j int) bool {
		return out.Orders[i].OrderDate < out.Orders[j].OrderDate
	})
	newKey := make(map[int64]int64, len(out.Orders))
	for i := range out.Orders {
		nk := int64(i + 1)
		newKey[out.Orders[i].Key] = nk
		out.Orders[i].Key = nk
	}
	out.Lineitems = append([]LineitemRow(nil), d.Lineitems...)
	for i := range out.Lineitems {
		out.Lineitems[i].OrderKey = newKey[out.Lineitems[i].OrderKey]
	}
	sort.SliceStable(out.Lineitems, func(i, j int) bool {
		return out.Lineitems[i].OrderKey < out.Lineitems[j].OrderKey
	})
	return &out
}

// TestClusterPrunedQueriesMatchOracle is the pruned-query oracle sweep
// under clustered maintenance: a PackCluster runtime, upsert churn that
// scatters 30% of the lineitems into reclaimed slots heap-wide, then a
// maintenance pass that redistributes them by ship date — and every
// pruned parallel driver must still return byte-identical results to
// the serial oracles, across all layouts and 1..NumCPU workers.
func TestClusterPrunedQueriesMatchOracle(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{
				HeapBackend:         true,
				CompactionPacking:   core.PackCluster,
				CompactionThreshold: 0.85,
			})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSMCQueries(sdb)
			wantQ1 := q.Q1(s, p)
			wantQ3 := q.Q3(s, p)
			wantQ4 := q.Q4(s, p)
			wantQ6 := q.Q6(s, p)
			wantQ10 := q.Q10(s, p)

			// Upsert-scatter 30% of the lineitems: logically a no-op (the
			// same rows live on), physically a heap-wide re-shuffle that
			// widens every block's bounds. Lineitems are referenced by
			// nothing, so re-adding under a fresh ref is safe.
			type held struct {
				ref core.Ref[SLineitem]
				row SLineitem
			}
			var rows []held
			sdb.Lineitems.ForEach(s, func(r core.Ref[SLineitem], v *SLineitem) bool {
				rows = append(rows, held{ref: r, row: *v})
				return true
			})
			for i, h := range rows {
				if i%3 != 0 {
					continue
				}
				if err := sdb.Lineitems.Remove(s, h.ref); err != nil {
					t.Fatal(err)
				}
				if _, err := sdb.Lineitems.Add(s, &h.row); err != nil {
					t.Fatal(err)
				}
			}
			rt.Manager().TryAdvanceEpoch()
			if _, err := rt.CompactNow(); err != nil {
				t.Fatal(err)
			}

			for _, workers := range joinWorkerCounts() {
				if got := q.Q1Par(s, p, workers); !reflect.DeepEqual(got, wantQ1) {
					t.Fatalf("clustered heap: Q1Par(workers=%d) diverges from serial Q1", workers)
				}
				if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
					t.Fatalf("clustered heap: Q3Par(workers=%d) diverges from serial Q3", workers)
				}
				if got := q.Q4Par(s, p, workers); !reflect.DeepEqual(got, wantQ4) {
					t.Fatalf("clustered heap: Q4Par(workers=%d) diverges from serial Q4", workers)
				}
				if got := q.Q6Par(s, p, workers); got != wantQ6 {
					t.Fatalf("clustered heap: Q6Par(workers=%d) = %v, want %v", workers, got, wantQ6)
				}
				if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
					t.Fatalf("clustered heap: Q10Par(workers=%d) diverges from serial Q10", workers)
				}
			}
		})
	}
}

// TestClusterCrossEdgePruning: on a date-correlated re-keyed load with
// many small blocks, the Q3/Q10 pipeline drivers must actually prune
// lineitem blocks through the distilled order-key sets (KeySetPruned
// moves), record key-set admissions (SynopsisOverlap moves), and still
// return byte-identical rows to the serial unpruned oracles. Q4's key
// set is dense over the order domain, so it asserts identity only.
func TestClusterCrossEdgePruning(t *testing.T) {
	d := rekeyDateCorrelated(testDataset(t))
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true, BlockSize: 1 << 14})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	if sdb.Lineitems.Context().Blocks() < 8 {
		t.Fatalf("only %d lineitem blocks; cross-edge test needs a multi-block heap",
			sdb.Lineitems.Context().Blocks())
	}
	q := NewSMCQueries(sdb)
	wantQ3 := q.Q3(s, p)
	wantQ4 := q.Q4(s, p)
	wantQ10 := q.Q10(s, p)

	before := rt.StatsSnapshot()
	for _, workers := range []int{1, 2, 4} {
		if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
			t.Fatalf("cross-edge Q3Par(workers=%d) diverges from serial Q3", workers)
		}
		if got := q.Q4Par(s, p, workers); !reflect.DeepEqual(got, wantQ4) {
			t.Fatalf("cross-edge Q4Par(workers=%d) diverges from serial Q4", workers)
		}
		if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
			t.Fatalf("cross-edge Q10Par(workers=%d) diverges from serial Q10", workers)
		}
	}
	after := rt.StatsSnapshot()
	if after.KeySetPruned == before.KeySetPruned {
		t.Fatal("KeySetPruned did not move on a date-correlated heap")
	}
	if after.SynopsisOverlap == before.SynopsisOverlap {
		t.Fatal("SynopsisOverlap did not move")
	}
	// Key-set prunes are a subset of all synopsis prunes.
	if kp, bp := after.KeySetPruned-before.KeySetPruned, after.BlocksPruned-before.BlocksPruned; kp > bp {
		t.Fatalf("KeySetPruned (%d) exceeds BlocksPruned (%d)", kp, bp)
	}
}
