// Package tpch provides the object-oriented adaptation of the TPC-H
// benchmark the paper evaluates with (§7): "tpc-h tables map to
// collections and each record to an object composed of ... primitive
// types and references to other records (all primary-foreign-key
// relations). Based on the latter, most joins are performed using
// references."
//
// The package contains a deterministic dbgen-style data generator that
// produces neutral row values, loaders that materialize those rows into
// every engine under test (managed List / ConcurrentDictionary /
// ConcurrentBag, self-managed collections in each layout, and the column
// store), and compiled implementations of TPC-H queries Q1–Q6 per engine.
package tpch

import (
	"repro/internal/decimal"
	"repro/internal/types"
)

// Scale-factor table cardinalities (dbgen): per SF=1.
const (
	regionCount    = 5
	nationCount    = 25
	suppliersPerSF = 10_000
	customersPerSF = 150_000
	partsPerSF     = 200_000
	ordersPerSF    = 1_500_000
	suppsPerPart   = 4
)

// Neutral row values: plain data with integer foreign keys. Engine
// loaders turn the keys into references (Go pointers, SMC refs) or
// columns.
type (
	// RegionRow is one row of REGION.
	RegionRow struct {
		Key     int64
		Name    string
		Comment string
	}
	// NationRow is one row of NATION.
	NationRow struct {
		Key       int64
		Name      string
		RegionKey int64
		Comment   string
	}
	// SupplierRow is one row of SUPPLIER.
	SupplierRow struct {
		Key       int64
		Name      string
		Address   string
		NationKey int64
		Phone     string
		AcctBal   decimal.Dec128
		Comment   string
	}
	// CustomerRow is one row of CUSTOMER.
	CustomerRow struct {
		Key        int64
		Name       string
		Address    string
		NationKey  int64
		Phone      string
		AcctBal    decimal.Dec128
		MktSegment string
		Comment    string
	}
	// PartRow is one row of PART.
	PartRow struct {
		Key         int64
		Name        string
		Mfgr        string
		Brand       string
		Type        string
		Size        int32
		Container   string
		RetailPrice decimal.Dec128
		Comment     string
	}
	// PartSuppRow is one row of PARTSUPP.
	PartSuppRow struct {
		PartKey     int64
		SupplierKey int64
		AvailQty    int32
		SupplyCost  decimal.Dec128
		Comment     string
	}
	// OrderRow is one row of ORDERS.
	OrderRow struct {
		Key           int64
		CustomerKey   int64
		OrderStatus   int32 // 'F', 'O', 'P'
		TotalPrice    decimal.Dec128
		OrderDate     types.Date
		OrderPriority string
		Clerk         string
		ShipPriority  int32
		Comment       string
	}
	// LineitemRow is one row of LINEITEM.
	LineitemRow struct {
		OrderKey      int64
		PartKey       int64
		SupplierKey   int64
		LineNumber    int32
		Quantity      decimal.Dec128
		ExtendedPrice decimal.Dec128
		Discount      decimal.Dec128
		Tax           decimal.Dec128
		ReturnFlag    int32 // 'R', 'A', 'N'
		LineStatus    int32 // 'O', 'F'
		ShipDate      types.Date
		CommitDate    types.Date
		ReceiptDate   types.Date
		ShipInstruct  string
		ShipMode      string
		Comment       string
	}
)

// Dataset holds generated rows for all eight tables.
type Dataset struct {
	SF        float64
	Regions   []RegionRow
	Nations   []NationRow
	Suppliers []SupplierRow
	Customers []CustomerRow
	Parts     []PartRow
	PartSupps []PartSuppRow
	Orders    []OrderRow
	Lineitems []LineitemRow
}

// Counts returns per-table cardinalities for diagnostics.
func (d *Dataset) Counts() map[string]int {
	return map[string]int{
		"region":   len(d.Regions),
		"nation":   len(d.Nations),
		"supplier": len(d.Suppliers),
		"customer": len(d.Customers),
		"part":     len(d.Parts),
		"partsupp": len(d.PartSupps),
		"orders":   len(d.Orders),
		"lineitem": len(d.Lineitems),
	}
}
