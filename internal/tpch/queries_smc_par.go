package tpch

import (
	"context"
	"math"
	"unsafe"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/types"
)

// Date extremes for one-sided pushdown intervals (synopsis bounds are
// inclusive on both ends).
const (
	dateMin = types.Date(math.MinInt32)
	dateMax = types.Date(math.MaxInt32)
)

// decKeyMin is the most negative decimal the synopsis key space can
// name; it encodes one-sided decimal intervals.
var decKeyMin = decimal.Dec128{Lo: 0, Hi: math.MinInt64}

// oneUnit is the smallest positive decimal step (1e-4): v < x over the
// fixed-point domain is exactly v <= x - oneUnit, which turns strict
// upper bounds into the inclusive intervals synopses prune on.
var oneUnit = decimal.FromUnits(1)

// Parallel compiled queries: the scan-dominated kernels (Q1, Q6) fanned
// out over the pipeline layer's Accum stage. Each worker folds into its
// own accumulator set (cache-line padded against false sharing) and the
// partials merge in worker order after the scan — the paper's per-thread
// generated query state, one per worker instead of one per stream. The
// per-block kernels are shared with the serial Q1/Q6, so serial and
// parallel execute byte-identical inner loops.

// q1Dense is the dense (returnflag, linestatus) accumulator table of the
// compiled Q1 kernel: the query compiler knows both grouping attributes
// are single chars, so four slots cover TPC-H's domain.
type q1Dense struct {
	accs [4]struct {
		q1Acc
		used bool
	}
	_ [64]byte // pad: adjacent workers' tables must not share a line
}

// q1DenseIdx maps the (returnflag, linestatus) domain onto table slots.
func q1DenseIdx(rf, ls int32) int {
	switch {
	case rf == 'A':
		return 0
	case rf == 'N' && ls == 'F':
		return 1
	case rf == 'N':
		return 2
	default:
		return 3 // 'R'
	}
}

// groups converts the dense table into the shared q1Acc map keyed like
// every other Q1 implementation, for q1Finish.
func (d *q1Dense) groups() map[int64]*q1Acc {
	groups := make(map[int64]*q1Acc, 4)
	for i := range d.accs {
		if !d.accs[i].used {
			continue
		}
		var rf, ls int32
		switch i {
		case 0:
			rf, ls = 'A', 'F'
		case 1:
			rf, ls = 'N', 'F'
		case 2:
			rf, ls = 'N', 'O'
		default:
			rf, ls = 'R', 'F'
		}
		a := d.accs[i].q1Acc
		groups[q1Key(rf, ls)] = &a
	}
	return groups
}

// mergeFrom folds another worker's partial table into d.
func (d *q1Dense) mergeFrom(o *q1Dense) {
	for i := range d.accs {
		if !o.accs[i].used {
			continue
		}
		a, b := &d.accs[i], &o.accs[i]
		a.used = true
		decimal.AddAssign(&a.sumQty, &b.sumQty)
		decimal.AddAssign(&a.sumBase, &b.sumBase)
		decimal.AddAssign(&a.sumDisc, &b.sumDisc)
		decimal.AddAssign(&a.sumCharge, &b.sumCharge)
		a.count += b.count
	}
}

// q1Block scans one block into a dense accumulator table: the compiled
// per-block Q1 kernel, shared by the serial and parallel drivers.
func (q *SMCQueries) q1Block(blk *mem.Block, cutoff types.Date, columnar bool, d *q1Dense) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	if columnar {
		shipBase := blk.ColBase(q.lShip)
		qtyBase := blk.ColBase(q.lQty)
		extBase := blk.ColBase(q.lExt)
		discBase := blk.ColBase(q.lDisc)
		taxBase := blk.ColBase(q.lTax)
		retBase := blk.ColBase(q.lRet)
		statBase := blk.ColBase(q.lStat)
		for i := 0; i < n; i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if *(*types.Date)(unsafe.Add(shipBase, uintptr(i)*4)) > cutoff {
				continue
			}
			rf := *(*int32)(unsafe.Add(retBase, uintptr(i)*4))
			ls := *(*int32)(unsafe.Add(statBase, uintptr(i)*4))
			a := &d.accs[q1DenseIdx(rf, ls)]
			a.used = true
			qty := (*decimal.Dec128)(unsafe.Add(qtyBase, uintptr(i)*16))
			ext := (*decimal.Dec128)(unsafe.Add(extBase, uintptr(i)*16))
			dsc := (*decimal.Dec128)(unsafe.Add(discBase, uintptr(i)*16))
			tax := (*decimal.Dec128)(unsafe.Add(taxBase, uintptr(i)*16))
			decimal.AddAssign(&a.sumQty, qty)
			decimal.AddAssign(&a.sumBase, ext)
			decimal.AddAssign(&a.sumDisc, dsc)
			disc := ext.Mul(one.Sub(*dsc))
			charge := disc.Mul(one.Add(*tax))
			decimal.AddAssign(&a.sumCharge, &charge)
			a.count++
		}
		return
	}
	shipOff := q.lShip.Offset
	qtyOff := q.lQty.Offset
	extOff := q.lExt.Offset
	discOff := q.lDisc.Offset
	taxOff := q.lTax.Offset
	retOff := q.lRet.Offset
	statOff := q.lStat.Offset
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		base := blk.SlotData(i)
		if *(*types.Date)(unsafe.Add(base, shipOff)) > cutoff {
			continue
		}
		rf := *(*int32)(unsafe.Add(base, retOff))
		ls := *(*int32)(unsafe.Add(base, statOff))
		a := &d.accs[q1DenseIdx(rf, ls)]
		a.used = true
		qty := (*decimal.Dec128)(unsafe.Add(base, qtyOff))
		ext := (*decimal.Dec128)(unsafe.Add(base, extOff))
		dsc := (*decimal.Dec128)(unsafe.Add(base, discOff))
		tax := (*decimal.Dec128)(unsafe.Add(base, taxOff))
		decimal.AddAssign(&a.sumQty, qty)
		decimal.AddAssign(&a.sumBase, ext)
		decimal.AddAssign(&a.sumDisc, dsc)
		disc := ext.Mul(one.Sub(*dsc))
		charge := disc.Mul(one.Add(*tax))
		decimal.AddAssign(&a.sumCharge, &charge)
		a.count++
	}
}

// q6Sum is one worker's Q6 partial, padded against false sharing.
type q6Sum struct {
	sum decimal.Dec128
	_   [48]byte
}

// q6Block scans one block into a partial revenue sum: the compiled
// per-block Q6 kernel, shared by the serial and parallel drivers.
func (q *SMCQueries) q6Block(blk *mem.Block, p Params, hi types.Date, lo, hiD decimal.Dec128, columnar bool, out *q6Sum) {
	n := blk.Capacity()
	if columnar {
		shipBase := blk.ColBase(q.lShip)
		qtyBase := blk.ColBase(q.lQty)
		extBase := blk.ColBase(q.lExt)
		discBase := blk.ColBase(q.lDisc)
		for i := 0; i < n; i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ship := *(*types.Date)(unsafe.Add(shipBase, uintptr(i)*4))
			if ship < p.Q6Date || ship >= hi {
				continue
			}
			dsc := (*decimal.Dec128)(unsafe.Add(discBase, uintptr(i)*16))
			if dsc.Less(lo) || hiD.Less(*dsc) {
				continue
			}
			qty := (*decimal.Dec128)(unsafe.Add(qtyBase, uintptr(i)*16))
			if !qty.Less(p.Q6Quantity) {
				continue
			}
			ext := (*decimal.Dec128)(unsafe.Add(extBase, uintptr(i)*16))
			decimal.MulAdd(&out.sum, ext, dsc)
		}
		return
	}
	shipOff := q.lShip.Offset
	qtyOff := q.lQty.Offset
	extOff := q.lExt.Offset
	discOff := q.lDisc.Offset
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		base := blk.SlotData(i)
		ship := *(*types.Date)(unsafe.Add(base, shipOff))
		if ship < p.Q6Date || ship >= hi {
			continue
		}
		dsc := (*decimal.Dec128)(unsafe.Add(base, discOff))
		if dsc.Less(lo) || hiD.Less(*dsc) {
			continue
		}
		qty := (*decimal.Dec128)(unsafe.Add(base, qtyOff))
		if !qty.Less(p.Q6Quantity) {
			continue
		}
		ext := (*decimal.Dec128)(unsafe.Add(base, extOff))
		decimal.MulAdd(&out.sum, ext, dsc)
	}
}

// q6WindowBlock sums revenue (extendedprice × discount) over ship dates
// in [lo, hi]: the Q6-style windowed scan kernel the prune figure sweeps
// over selectivities — the window is the whole predicate, so measured
// selectivity is purely date-driven.
func (q *SMCQueries) q6WindowBlock(blk *mem.Block, lo, hi types.Date, columnar bool, out *q6Sum) {
	n := blk.Capacity()
	if columnar {
		shipBase := blk.ColBase(q.lShip)
		extBase := blk.ColBase(q.lExt)
		discBase := blk.ColBase(q.lDisc)
		for i := 0; i < n; i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ship := *(*types.Date)(unsafe.Add(shipBase, uintptr(i)*4))
			if ship < lo || ship > hi {
				continue
			}
			ext := (*decimal.Dec128)(unsafe.Add(extBase, uintptr(i)*16))
			dsc := (*decimal.Dec128)(unsafe.Add(discBase, uintptr(i)*16))
			decimal.MulAdd(&out.sum, ext, dsc)
		}
		return
	}
	shipOff := q.lShip.Offset
	extOff := q.lExt.Offset
	discOff := q.lDisc.Offset
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		base := blk.SlotData(i)
		ship := *(*types.Date)(unsafe.Add(base, shipOff))
		if ship < lo || ship > hi {
			continue
		}
		ext := (*decimal.Dec128)(unsafe.Add(base, extOff))
		dsc := (*decimal.Dec128)(unsafe.Add(base, discOff))
		decimal.MulAdd(&out.sum, ext, dsc)
	}
}

// Q6WindowPar is the Q6-style windowed revenue scan behind the prune
// benchmark figure: sum(extendedprice × discount) over ship dates in
// [lo, hi], fanned out over `workers`, with the window optionally pushed
// down onto the lineitem block synopses. The kernel's residual window
// check runs either way, so pushdown can only skip provably-empty
// blocks, never change the sum.
func (q *SMCQueries) Q6WindowPar(s *core.Session, lo, hi types.Date, workers int, pushdown bool) decimal.Dec128 {
	sum, err := q.Q6WindowParCtx(context.Background(), s, lo, hi, workers, pushdown)
	if err != nil {
		// Worker sessions unavailable: degrade to a serial unpruned scan.
		var acc q6Sum
		columnar := q.db.Layout == core.Columnar
		s.Enter()
		en := q.db.Lineitems.Enumerate(s)
		for {
			blk, ok := en.NextBlock()
			if !ok {
				break
			}
			q.q6WindowBlock(blk, lo, hi, columnar, &acc)
		}
		en.Close()
		s.Exit()
		return acc.sum
	}
	return sum
}

// Q6WindowParCtx is Q6WindowPar bound to a context: the scan is
// admission-gated by the memory budget and cancelable at block-claim
// granularity — a canceled scan returns within one block's work plus
// worker unwind, with every pooled session returned and every leased
// arena back in the pool after Close. It never degrades to the serial
// driver; cancellation and budget rejection surface as the error.
func (q *SMCQueries) Q6WindowParCtx(ctx context.Context, s *core.Session, lo, hi types.Date, workers int, pushdown bool) (decimal.Dec128, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return decimal.Dec128{}, err
	}
	defer pl.Close()
	columnar := q.db.Layout == core.Columnar
	src := query.Source(q.db.Lineitems)
	if pushdown {
		src = query.Where(q.db.Lineitems, q.db.Lineitems.Predicate().DateRange("ShipDate", lo, hi))
	}
	out, err := query.Accum(pl, src,
		func(_ int, _ *core.Session, blk *mem.Block, acc *q6Sum) {
			q.q6WindowBlock(blk, lo, hi, columnar, acc)
		},
		func(dst, src *q6Sum) { decimal.AddAssign(&dst.sum, &src.sum) })
	if err != nil {
		return decimal.Dec128{}, err
	}
	return out.sum, nil
}

// Q6WindowSharedCtx is Q6WindowParCtx routed through the lineitem
// collection's cooperative scan-share group: concurrent windowed scans
// batch onto one shared pass — one decision pass, one epoch-pinned
// snapshot, one trip through memory per block — with this query's kernel
// attached as one rider. The window predicate prunes per rider (each
// keeps its private admit bitmap and this kernel's full residual window
// check), so the sum is exactly Q6WindowParCtx's whether the query led
// the pass, rode one, or fell back to a private scan.
func (q *SMCQueries) Q6WindowSharedCtx(ctx context.Context, s *core.Session, lo, hi types.Date, workers int, pushdown bool) (decimal.Dec128, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return decimal.Dec128{}, err
	}
	defer pl.Close()
	columnar := q.db.Layout == core.Columnar
	var pred *mem.ScanPredicate
	if pushdown {
		pred = q.db.Lineitems.Predicate().DateRange("ShipDate", lo, hi)
	}
	out, err := query.Accum(pl, query.Shared(q.db.Lineitems, pred),
		func(_ int, _ *core.Session, blk *mem.Block, acc *q6Sum) {
			q.q6WindowBlock(blk, lo, hi, columnar, acc)
		},
		func(dst, src *q6Sum) { decimal.AddAssign(&dst.sum, &src.sum) })
	if err != nil {
		return decimal.Dec128{}, err
	}
	return out.sum, nil
}

// Q1Par is Q1 fanned out over `workers` block-sharded scan workers.
// Results are identical to Q1 on a quiesced collection; under concurrent
// mutation both have the enumerator's bag semantics.
func (q *SMCQueries) Q1Par(s *core.Session, p Params, workers int) []Q1Row {
	rows, err := q.Q1ParCtx(context.Background(), s, p, workers)
	if err != nil {
		// Worker sessions were unavailable (slot exhaustion): degrade to
		// the serial kernel rather than failing the query.
		return q.Q1(s, p)
	}
	return rows
}

// Q1ParCtx is Q1Par bound to a context: admission-gated, cancelable at
// block-claim granularity, never degrades to the serial driver.
func (q *SMCQueries) Q1ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q1Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	cutoff := p.Q1Cutoff()
	columnar := q.db.Layout == core.Columnar
	// Pushdown: shipdate <= cutoff. The kernel keeps its per-row check —
	// pruning only drops blocks whose entire date range is past the cut.
	pred := q.db.Lineitems.Predicate().DateRange("ShipDate", dateMin, cutoff)
	total, err := query.Accum(pl, query.Where(q.db.Lineitems, pred),
		func(_ int, _ *core.Session, blk *mem.Block, acc *q1Dense) {
			q.q1Block(blk, cutoff, columnar, acc)
		},
		func(dst, src *q1Dense) { dst.mergeFrom(src) })
	if err != nil {
		return nil, err
	}
	return q1Finish(total.groups()), nil
}

// Q6Par is Q6 fanned out over `workers` block-sharded scan workers.
func (q *SMCQueries) Q6Par(s *core.Session, p Params, workers int) decimal.Dec128 {
	sum, err := q.Q6ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q6(s, p)
	}
	return sum
}

// Q6ParCtx is Q6Par bound to a context: admission-gated, cancelable at
// block-claim granularity, never degrades to the serial driver.
func (q *SMCQueries) Q6ParCtx(ctx context.Context, s *core.Session, p Params, workers int) (decimal.Dec128, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return decimal.Dec128{}, err
	}
	defer pl.Close()
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	columnar := q.db.Layout == core.Columnar
	// Pushdown: the full Q6 interval conjunction — shipdate in [lo, hi),
	// discount in [lo, hiD], quantity < max (strict bounds become
	// inclusive by stepping one date/decimal unit).
	pred := q.db.Lineitems.Predicate().
		DateRange("ShipDate", p.Q6Date, hi-1).
		DecimalRange("Discount", lo, hiD).
		DecimalRange("Quantity", decKeyMin, p.Q6Quantity.Sub(oneUnit))
	out, err := query.Accum(pl, query.Where(q.db.Lineitems, pred),
		func(_ int, _ *core.Session, blk *mem.Block, acc *q6Sum) {
			q.q6Block(blk, p, hi, lo, hiD, columnar, acc)
		},
		func(dst, src *q6Sum) { decimal.AddAssign(&dst.sum, &src.sum) })
	if err != nil {
		return decimal.Dec128{}, err
	}
	return out.sum, nil
}

// Q6WindowHit is one qualifying lineitem of a windowed revenue scan:
// the streaming row shape the serve layer's chunked-row endpoint emits.
type Q6WindowHit struct {
	OrderKey int64          `json:"order_key"`
	ShipDate types.Date     `json:"ship_date"`
	Revenue  decimal.Dec128 `json:"revenue"`
}

// Q6WindowRowsCtx streams the individual qualifying rows of a Q6-style
// windowed revenue scan (ship date in [lo, hi]) through sink as blocks
// finish, via query.RowsUnordered: per-worker row batches are handed
// over as soon as their block completes, in no deterministic order, and
// the batch slice is reused for the worker's next block — consume or
// copy inside the call. The revenue of every streamed hit sums (in any
// order; decimal addition is exact) to exactly Q6WindowParCtx's result
// over the same window, which is how the serve tests and the CI smoke
// pin the chunked response to the serial oracle. A sink error or ctx
// cancellation stops the scan within one block's work per worker.
func (q *SMCQueries) Q6WindowRowsCtx(ctx context.Context, s *core.Session, lo, hi types.Date, workers int, pushdown bool, sink func(rows []Q6WindowHit) error) error {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return err
	}
	defer pl.Close()
	columnar := q.db.Layout == core.Columnar
	src := query.Source(q.db.Lineitems)
	if pushdown {
		src = query.Where(q.db.Lineitems, q.db.Lineitems.Predicate().DateRange("ShipDate", lo, hi))
	}
	return query.RowsUnordered(pl, src,
		func(_ *core.Session, blk *mem.Block, out *[]Q6WindowHit) {
			n := blk.Capacity()
			if columnar {
				shipBase := blk.ColBase(q.lShip)
				extBase := blk.ColBase(q.lExt)
				discBase := blk.ColBase(q.lDisc)
				keyBase := blk.ColBase(q.lOrderKey)
				for i := 0; i < n; i++ {
					if !blk.SlotIsValid(i) {
						continue
					}
					ship := *(*types.Date)(unsafe.Add(shipBase, uintptr(i)*4))
					if ship < lo || ship > hi {
						continue
					}
					ext := (*decimal.Dec128)(unsafe.Add(extBase, uintptr(i)*16))
					dsc := (*decimal.Dec128)(unsafe.Add(discBase, uintptr(i)*16))
					var rev decimal.Dec128
					decimal.MulAdd(&rev, ext, dsc)
					*out = append(*out, Q6WindowHit{
						OrderKey: *(*int64)(unsafe.Add(keyBase, uintptr(i)*8)),
						ShipDate: ship,
						Revenue:  rev,
					})
				}
				return
			}
			shipOff := q.lShip.Offset
			extOff := q.lExt.Offset
			discOff := q.lDisc.Offset
			keyOff := q.lOrderKey.Offset
			for i := 0; i < n; i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				base := blk.SlotData(i)
				ship := *(*types.Date)(unsafe.Add(base, shipOff))
				if ship < lo || ship > hi {
					continue
				}
				ext := (*decimal.Dec128)(unsafe.Add(base, extOff))
				dsc := (*decimal.Dec128)(unsafe.Add(base, discOff))
				var rev decimal.Dec128
				decimal.MulAdd(&rev, ext, dsc)
				*out = append(*out, Q6WindowHit{
					OrderKey: *(*int64)(unsafe.Add(base, keyOff)),
					ShipDate: ship,
					Revenue:  rev,
				})
			}
		},
		sink)
}
