package tpch

import (
	"fmt"

	"repro/internal/decimal"
	"repro/internal/types"
)

// prng is a splitmix64 generator: deterministic across platforms, cheap,
// and good enough for benchmark data.
type prng struct{ state uint64 }

func newPrng(seed uint64) *prng { return &prng{state: seed ^ 0x9e3779b97f4a7c15} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// rng returns a uniform int in [lo, hi] inclusive.
func (p *prng) rng(lo, hi int) int { return lo + p.intn(hi-lo+1) }

// dec returns a uniform decimal in [lo, hi] expressed in cents.
func (p *prng) decCents(lo, hi int) decimal.Dec128 {
	return decimal.FromCents(int64(p.rng(lo, hi)))
}

func (p *prng) pick(list []string) string { return list[p.intn(len(list))] }

// Text pools (dbgen appendix-like vocabularies).
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	// nation -> region mapping follows dbgen's nations.
	nationDefs = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	typeSyll1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyll2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyll3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nounPool   = []string{"packages", "requests", "accounts", "deposits", "foxes", "ideas",
		"theodolites", "instructions", "dependencies", "excuses", "platelets", "asymptotes"}
	// colorPool seeds part names, following dbgen's colour vocabulary;
	// Q9's p_name LIKE '%green%' predicate keys off it.
	colorPool = []string{"almond", "antique", "azure", "beige", "bisque",
		"blush", "burnished", "chartreuse", "cornflower", "firebrick",
		"forest", "frosted", "goldenrod", "green", "honeydew", "indian",
		"ivory", "khaki", "lavender", "maroon"}
	verbPool = []string{"sleep", "wake", "haggle", "nag", "cajole", "detect", "integrate",
		"boost", "doze", "engage", "solve", "lose"}
	adverbPool = []string{"quickly", "slowly", "carefully", "blithely", "furiously",
		"ruthlessly", "silently", "daringly"}
)

// dbgen date bounds.
var (
	startDate   = types.MustDate("1992-01-01")
	endDate     = types.MustDate("1998-08-02") // latest o_orderdate
	currentDate = types.MustDate("1995-06-17") // dbgen's CURRENTDATE
)

func (p *prng) comment() string {
	return p.pick(adverbPool) + " " + p.pick(verbPool) + " " + p.pick(nounPool)
}

func (p *prng) phone(nation int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation, p.rng(100, 999), p.rng(100, 999), p.rng(1000, 9999))
}

func (p *prng) date(lo, hi types.Date) types.Date {
	return lo + types.Date(p.intn(int(hi-lo)+1))
}

// partSuppSupplierKey returns the j-th supplier (0 ≤ j < suppsPerPart) of
// part pk, following dbgen's round-robin spread of suppliers over parts.
// Both PARTSUPP rows and LINEITEM supplier picks use it, so every
// lineitem's (partkey, suppkey) pair has a PARTSUPP row.
func partSuppSupplierKey(pk int64, j, nSupp int) int64 {
	return (pk+int64(j)*int64(nSupp/suppsPerPart+1))%int64(nSupp) + 1
}

// Generate builds a deterministic dataset at the given scale factor.
// The distributions the Q1–Q6 predicates and the paper's refresh streams
// are sensitive to (dates, discount/quantity ranges, segments, regions,
// return flags, 1–7 lineitems per order) follow dbgen.
func Generate(sf float64, seed uint64) *Dataset {
	if sf <= 0 {
		panic("tpch: scale factor must be positive")
	}
	p := newPrng(seed)
	d := &Dataset{SF: sf}

	scale := func(n int) int {
		v := int(float64(n) * sf)
		if v < 1 {
			v = 1
		}
		return v
	}

	// REGION and NATION are fixed-size.
	for i := 0; i < regionCount; i++ {
		d.Regions = append(d.Regions, RegionRow{
			Key: int64(i), Name: regionNames[i], Comment: p.comment(),
		})
	}
	for i, nd := range nationDefs {
		d.Nations = append(d.Nations, NationRow{
			Key: int64(i), Name: nd.name, RegionKey: int64(nd.region), Comment: p.comment(),
		})
	}

	nSupp := scale(suppliersPerSF)
	for i := 0; i < nSupp; i++ {
		nk := int64(p.intn(nationCount))
		d.Suppliers = append(d.Suppliers, SupplierRow{
			Key:       int64(i + 1),
			Name:      fmt.Sprintf("Supplier#%09d", i+1),
			Address:   p.comment(),
			NationKey: nk,
			Phone:     p.phone(nk),
			AcctBal:   p.decCents(-99999, 999999),
			Comment:   p.comment(),
		})
	}

	nCust := scale(customersPerSF)
	for i := 0; i < nCust; i++ {
		nk := int64(p.intn(nationCount))
		d.Customers = append(d.Customers, CustomerRow{
			Key:        int64(i + 1),
			Name:       fmt.Sprintf("Customer#%09d", i+1),
			Address:    p.comment(),
			NationKey:  nk,
			Phone:      p.phone(nk),
			AcctBal:    p.decCents(-99999, 999999),
			MktSegment: p.pick(segments),
			Comment:    p.comment(),
		})
	}

	nPart := scale(partsPerSF)
	for i := 0; i < nPart; i++ {
		mfgr := p.rng(1, 5)
		brand := mfgr*10 + p.rng(1, 5)
		d.Parts = append(d.Parts, PartRow{
			Key:         int64(i + 1),
			Name:        p.pick(colorPool) + " " + p.pick(colorPool) + " " + p.pick(typeSyll3),
			Mfgr:        fmt.Sprintf("Manufacturer#%d", mfgr),
			Brand:       fmt.Sprintf("Brand#%d", brand),
			Type:        p.pick(typeSyll1) + " " + p.pick(typeSyll2) + " " + p.pick(typeSyll3),
			Size:        int32(p.rng(1, 50)),
			Container:   p.pick(containers),
			RetailPrice: decimal.FromCents(int64(90000 + (i+1)%20001)), // 900.00..1100.00
			Comment:     p.comment(),
		})
	}

	for i := 0; i < nPart; i++ {
		for j := 0; j < suppsPerPart; j++ {
			d.PartSupps = append(d.PartSupps, PartSuppRow{
				PartKey:     int64(i + 1),
				SupplierKey: partSuppSupplierKey(int64(i+1), j, nSupp),
				AvailQty:    int32(p.rng(1, 9999)),
				SupplyCost:  p.decCents(100, 100000),
				Comment:     p.comment(),
			})
		}
	}

	nOrd := scale(ordersPerSF)
	lineNo := 0
	for i := 0; i < nOrd; i++ {
		ok := int64(i + 1)
		odate := p.date(startDate, endDate)
		o := OrderRow{
			Key:           ok,
			CustomerKey:   int64(p.intn(nCust)) + 1,
			OrderDate:     odate,
			OrderPriority: p.pick(priorities),
			Clerk:         fmt.Sprintf("Clerk#%09d", p.rng(1, 1000)),
			ShipPriority:  0,
			Comment:       p.comment(),
		}
		nLines := p.rng(1, 7)
		total := decimal.Zero
		allF, anyF := true, false
		for ln := 1; ln <= nLines; ln++ {
			partKey := int64(p.intn(nPart)) + 1
			// The line's supplier is one of the part's PARTSUPP suppliers,
			// as in dbgen — Q9's partsupp join depends on it.
			suppKey := partSuppSupplierKey(partKey, p.intn(suppsPerPart), nSupp)
			qty := p.rng(1, 50)
			price := decimal.FromCents(int64(90000 + p.intn(110001))) // 900.00..2000.00
			ext := price.MulInt64(int64(qty))
			disc := decimal.FromUnits(int64(p.rng(0, 10)) * 100) // 0.00..0.10
			tax := decimal.FromUnits(int64(p.rng(0, 8)) * 100)   // 0.00..0.08
			sdate := odate.AddDays(p.rng(1, 121))
			cdate := odate.AddDays(p.rng(30, 90))
			rdate := sdate.AddDays(p.rng(1, 30))
			var rflag int32
			if rdate <= currentDate {
				if p.intn(2) == 0 {
					rflag = 'R'
				} else {
					rflag = 'A'
				}
			} else {
				rflag = 'N'
			}
			var lstatus int32
			if sdate > currentDate {
				lstatus = 'O'
				allF = false
			} else {
				lstatus = 'F'
				anyF = true
			}
			one := decimal.FromInt64(1)
			charge := ext.Mul(one.Sub(disc)).Mul(one.Add(tax))
			total = total.Add(charge)
			d.Lineitems = append(d.Lineitems, LineitemRow{
				OrderKey:      ok,
				PartKey:       partKey,
				SupplierKey:   suppKey,
				LineNumber:    int32(ln),
				Quantity:      decimal.FromInt64(int64(qty)),
				ExtendedPrice: ext,
				Discount:      disc,
				Tax:           tax,
				ReturnFlag:    rflag,
				LineStatus:    lstatus,
				ShipDate:      sdate,
				CommitDate:    cdate,
				ReceiptDate:   rdate,
				ShipInstruct:  p.pick(instructs),
				ShipMode:      p.pick(shipmodes),
				Comment:       p.comment(),
			})
			lineNo++
		}
		switch {
		case allF:
			o.OrderStatus = 'F'
		case anyF:
			o.OrderStatus = 'P'
		default:
			o.OrderStatus = 'O'
		}
		o.TotalPrice = total
		d.Orders = append(d.Orders, o)
	}
	return d
}
