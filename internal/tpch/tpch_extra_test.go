package tpch

import (
	"testing"

	"repro/internal/decimal"
	"repro/internal/types"
)

// Additional behavioural tests for the TPC-H substrate: sort caps and
// tie-breaks, generator scaling, and the dictionary key packing.

func TestSortQ2CapsAtHundred(t *testing.T) {
	rows := make([]Q2Row, 0, 150)
	for i := 0; i < 150; i++ {
		rows = append(rows, Q2Row{
			AcctBal: decimal.FromInt64(int64(i % 7)),
			NName:   "N",
			SName:   "S",
			PartKey: int64(i),
		})
	}
	out := SortQ2(rows)
	if len(out) != 100 {
		t.Fatalf("Q2 rows = %d, want 100", len(out))
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if c := a.AcctBal.Cmp(b.AcctBal); c < 0 {
			t.Fatal("Q2 not sorted by acctbal desc")
		} else if c == 0 && a.PartKey > b.PartKey {
			t.Fatal("Q2 tie-break by partkey violated")
		}
	}
}

func TestSortQ3CapsAtTen(t *testing.T) {
	rows := make([]Q3Row, 0, 30)
	for i := 0; i < 30; i++ {
		rows = append(rows, Q3Row{
			OrderKey: int64(i),
			Revenue:  decimal.FromInt64(int64(i % 5)),
			OrderDate: types.MustDate("1995-01-01").
				AddDays(i % 3),
		})
	}
	out := SortQ3(rows)
	if len(out) != 10 {
		t.Fatalf("Q3 rows = %d, want 10", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Revenue.Less(out[i].Revenue) {
			t.Fatal("Q3 not sorted by revenue desc")
		}
	}
}

func TestSortQ10CapsAtTwenty(t *testing.T) {
	rows := make([]Q10Row, 0, 50)
	for i := 0; i < 50; i++ {
		rows = append(rows, Q10Row{
			CustKey: int64(i),
			Revenue: decimal.FromInt64(int64(i % 4)),
		})
	}
	out := SortQ10(rows)
	if len(out) != 20 {
		t.Fatalf("Q10 rows = %d, want 20", len(out))
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if c := a.Revenue.Cmp(b.Revenue); c < 0 {
			t.Fatal("Q10 not sorted by revenue desc")
		} else if c == 0 && a.CustKey > b.CustKey {
			t.Fatal("Q10 tie-break by custkey violated")
		}
	}
}

func TestSortQ7Q9Ordering(t *testing.T) {
	q7 := []Q7Row{
		{SuppNation: "B", CustNation: "A", Year: 1995},
		{SuppNation: "A", CustNation: "B", Year: 1996},
		{SuppNation: "A", CustNation: "B", Year: 1995},
	}
	SortQ7(q7)
	if q7[0].SuppNation != "A" || q7[0].Year != 1995 || q7[2].SuppNation != "B" {
		t.Fatalf("Q7 order: %+v", q7)
	}
	q9 := []Q9Row{
		{Nation: "A", Year: 1995},
		{Nation: "A", Year: 1998},
		{Nation: "B", Year: 1992},
	}
	SortQ9(q9)
	// Nation asc, year desc.
	if q9[0].Year != 1998 || q9[1].Year != 1995 || q9[2].Nation != "B" {
		t.Fatalf("Q9 order: %+v", q9)
	}
}

func TestGenerateScalesLinearly(t *testing.T) {
	small := Generate(0.001, 3)
	large := Generate(0.004, 3)
	ratio := func(a, b int) float64 { return float64(b) / float64(a) }
	if r := ratio(len(small.Orders), len(large.Orders)); r < 3.5 || r > 4.5 {
		t.Fatalf("orders scale ratio = %v, want ~4", r)
	}
	if r := ratio(len(small.Customers), len(large.Customers)); r < 3.5 || r > 4.5 {
		t.Fatalf("customers scale ratio = %v, want ~4", r)
	}
	// Fixed-size tables stay fixed.
	if len(small.Regions) != len(large.Regions) || len(small.Nations) != len(large.Nations) {
		t.Fatal("region/nation must not scale")
	}
	// PARTSUPP is exactly 4 rows per part.
	if len(large.PartSupps) != 4*len(large.Parts) {
		t.Fatalf("partsupp = %d for %d parts", len(large.PartSupps), len(large.Parts))
	}
}

func TestGenerateRejectsBadSF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive SF should panic")
		}
	}()
	Generate(0, 1)
}

func TestLineKeyUnique(t *testing.T) {
	seen := make(map[int64]bool)
	for ok := int64(1); ok <= 100; ok++ {
		for ln := int32(1); ln <= 7; ln++ {
			k := LineKey(ok, ln)
			if seen[k] {
				t.Fatalf("LineKey collision at (%d,%d)", ok, ln)
			}
			seen[k] = true
		}
	}
}

func TestPackPSKeyPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized supplier key should panic")
		}
	}()
	packPSKey(1, 1<<24)
}

func TestOrderTotalsMatchLineitems(t *testing.T) {
	// The generator computes o_totalprice as the sum of its lineitems'
	// charges; check the invariant the way Q1 computes charges.
	d := testDataset(t)
	one := decimal.FromInt64(1)
	totals := make(map[int64]decimal.Dec128)
	for _, l := range d.Lineitems {
		charge := l.ExtendedPrice.Mul(one.Sub(l.Discount)).Mul(one.Add(l.Tax))
		totals[l.OrderKey] = totals[l.OrderKey].Add(charge)
	}
	for _, o := range d.Orders {
		if totals[o.Key] != o.TotalPrice {
			t.Fatalf("order %d total %v, lineitems sum %v", o.Key, o.TotalPrice, totals[o.Key])
		}
	}
}

func TestOrderStatusConsistent(t *testing.T) {
	d := testDataset(t)
	status := make(map[int64][2]bool) // anyF, anyO
	for _, l := range d.Lineitems {
		st := status[l.OrderKey]
		if l.LineStatus == 'F' {
			st[0] = true
		} else {
			st[1] = true
		}
		status[l.OrderKey] = st
	}
	for _, o := range d.Orders {
		st := status[o.Key]
		switch {
		case st[0] && !st[1]:
			if o.OrderStatus != 'F' {
				t.Fatalf("order %d all-F but status %c", o.Key, o.OrderStatus)
			}
		case st[0] && st[1]:
			if o.OrderStatus != 'P' {
				t.Fatalf("order %d mixed but status %c", o.Key, o.OrderStatus)
			}
		default:
			if o.OrderStatus != 'O' {
				t.Fatalf("order %d all-O but status %c", o.Key, o.OrderStatus)
			}
		}
	}
}
