package tpch

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/types"
)

// TestSharedScanQ6Oracle: staggered concurrent Q6-window queries routed
// through the scan-share layer — different windows, pushdown on and off,
// some cancelled mid-flight — must each return the byte-identical sum of
// their independent serial oracle, across many cycles, with the session
// pool and epoch pins balanced afterwards. Run with -race in CI.
func TestSharedScanQ6Oracle(t *testing.T) {
	d := testDataset(t)
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)

	dates := make([]types.Date, len(d.Lineitems))
	for i := range d.Lineitems {
		dates[i] = d.Lineitems[i].ShipDate
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i] < dates[j] })
	quantile := func(pct int) types.Date {
		i := len(dates) * pct / 100
		if i >= len(dates) {
			i = len(dates) - 1
		}
		return dates[i]
	}
	windows := [][2]types.Date{
		{dates[0], quantile(10)},
		{dates[0], quantile(60)},
		{dates[0], dates[len(dates)-1]},
	}
	oracles := make([]decimal.Dec128, len(windows))
	for i, w := range windows {
		oracles[i] = q.Q6WindowPar(s, w[0], w[1], 1, false)
	}
	if oracles[2] == (decimal.Dec128{}) {
		t.Fatal("full-window oracle sum is zero — degenerate dataset")
	}

	cycles := 60
	if testing.Short() {
		cycles = 12
	}
	const queriesPerCycle = 5
	type result struct {
		cycle, i int
		win      int
		sum      decimal.Dec128
		err      error
	}
	for c := 0; c < cycles; c++ {
		results := make(chan result, queriesPerCycle)
		for i := 0; i < queriesPerCycle; i++ {
			go func(c, i int) {
				qs := rt.MustSession()
				defer qs.Close()
				win := (c + i) % len(windows)
				cctx := context.Background()
				var cancel context.CancelFunc
				if (c+i)%7 == 0 {
					cctx, cancel = context.WithCancel(cctx)
					go cancel() // racing cancel: detach or completion, both legal
				}
				sum, err := q.Q6WindowSharedCtx(cctx, qs, windows[win][0], windows[win][1], 2, i%2 == 0)
				if cancel != nil {
					cancel()
				}
				results <- result{c, i, win, sum, err}
			}(c, i)
		}
		for i := 0; i < queriesPerCycle; i++ {
			r := <-results
			if r.err != nil {
				if errors.Is(r.err, context.Canceled) {
					continue // discarded; only leak-freedom matters
				}
				t.Fatalf("cycle %d query %d: %v", r.cycle, r.i, r.err)
			}
			if r.sum != oracles[r.win] {
				t.Fatalf("cycle %d query %d window %d: sum %v diverges from serial oracle %v",
					r.cycle, r.i, r.win, r.sum, oracles[r.win])
			}
		}
	}
	st := rt.StatsSnapshot()
	if st.SharedPasses == 0 {
		t.Fatal("oracle stress ran without launching a single shared pass")
	}
	if st.SessionsLeased != st.SessionsReturned {
		t.Fatalf("session pool unbalanced after the stress: %d leased, %d returned",
			st.SessionsLeased, st.SessionsReturned)
	}
	if st.EpochPins != 0 {
		t.Fatalf("%d epoch pins leaked after the stress", st.EpochPins)
	}
}
