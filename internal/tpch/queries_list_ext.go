package tpch

import (
	"strings"

	"repro/internal/decimal"
)

// Compiled Q7–Q10 over the managed List representation: the same
// generated-imperative-code style as Q1–Q6 (queries_list.go), with all
// PK-FK joins performed through Go pointers.

// q7Dir packs a Q7 group key: direction bit (0 = nation1 supplies) and
// ship year.
func q7Dir(firstSupplies bool, year int) int32 {
	k := int32(year) << 1
	if !firstSupplies {
		k |= 1
	}
	return k
}

// ListQ7 runs the volume-shipping query via reference joins.
func ListQ7(db *ManagedDB, p Params) []Q7Row {
	one := decimal.FromInt64(1)
	rev := make(map[int32]*decimal.Dec128, 4)
	for _, l := range db.Lineitems.Items() {
		if l.ShipDate < q7DateLo || l.ShipDate > q7DateHi {
			continue
		}
		sn := l.Supplier.Nation.Name
		cn := l.Order.Customer.Nation.Name
		var first bool
		switch {
		case sn == p.Q7Nation1 && cn == p.Q7Nation2:
			first = true
		case sn == p.Q7Nation2 && cn == p.Q7Nation1:
			first = false
		default:
			continue
		}
		k := q7Dir(first, l.ShipDate.Year())
		a := rev[k]
		if a == nil {
			a = &decimal.Dec128{}
			rev[k] = a
		}
		*a = a.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
	}
	rows := make([]Q7Row, 0, len(rev))
	for k, v := range rev {
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if k&1 == 1 {
			sn, cn = cn, sn
		}
		rows = append(rows, Q7Row{SuppNation: sn, CustNation: cn, Year: k >> 1, Revenue: *v})
	}
	SortQ7(rows)
	return rows
}

// ListQ8 runs the national-market-share query via reference joins.
func ListQ8(db *ManagedDB, p Params) []Q8Row {
	one := decimal.FromInt64(1)
	groups := make(map[int32]*q8Acc, 2)
	for _, l := range db.Lineitems.Items() {
		o := l.Order
		if o.OrderDate < q7DateLo || o.OrderDate > q7DateHi {
			continue
		}
		if l.Part.Type != p.Q8Type {
			continue
		}
		if o.Customer.Nation.Region.Name != p.Q8Region {
			continue
		}
		y := int32(o.OrderDate.Year())
		a := groups[y]
		if a == nil {
			a = &q8Acc{}
			groups[y] = a
		}
		vol := l.ExtendedPrice.Mul(one.Sub(l.Discount))
		a.total = a.total.Add(vol)
		if l.Supplier.Nation.Name == p.Q8Nation {
			a.nation = a.nation.Add(vol)
		}
	}
	return q8Finish(groups)
}

// ListQ9 runs the product-type-profit query: reference joins for part,
// supplier and order; a value join on (partkey, suppkey) for the
// PARTSUPP cost, which has no reference path from lineitem.
func ListQ9(db *ManagedDB, p Params) []Q9Row {
	cost := make(map[psKey]decimal.Dec128, db.PartSupps.Len())
	for _, ps := range db.PartSupps.Items() {
		cost[psKey{ps.Part.Key, ps.Supplier.Key}] = ps.SupplyCost
	}
	one := decimal.FromInt64(1)
	type gk struct {
		nation string
		year   int32
	}
	profit := make(map[gk]*decimal.Dec128)
	for _, l := range db.Lineitems.Items() {
		if !strings.Contains(l.Part.Name, p.Q9Color) {
			continue
		}
		c, ok := cost[psKey{l.Part.Key, l.Supplier.Key}]
		if !ok {
			continue
		}
		amount := l.ExtendedPrice.Mul(one.Sub(l.Discount)).Sub(c.Mul(l.Quantity))
		k := gk{nation: l.Supplier.Nation.Name, year: int32(l.Order.OrderDate.Year())}
		a := profit[k]
		if a == nil {
			a = &decimal.Dec128{}
			profit[k] = a
		}
		*a = a.Add(amount)
	}
	rows := make([]Q9Row, 0, len(profit))
	for k, v := range profit {
		rows = append(rows, Q9Row{Nation: k.nation, Year: k.year, SumProfit: *v})
	}
	SortQ9(rows)
	return rows
}

// ListQ10 runs the returned-item report via reference joins.
func ListQ10(db *ManagedDB, p Params) []Q10Row {
	hi := p.Q10Date.AddMonths(3)
	one := decimal.FromInt64(1)
	rev := make(map[*MCustomer]*decimal.Dec128)
	for _, l := range db.Lineitems.Items() {
		if l.ReturnFlag != 'R' {
			continue
		}
		o := l.Order
		if o.OrderDate < p.Q10Date || o.OrderDate >= hi {
			continue
		}
		c := o.Customer
		a := rev[c]
		if a == nil {
			a = &decimal.Dec128{}
			rev[c] = a
		}
		*a = a.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
	}
	rows := make([]Q10Row, 0, len(rev))
	for c, v := range rev {
		rows = append(rows, Q10Row{
			CustKey: c.Key, Name: c.Name, Revenue: *v, AcctBal: c.AcctBal,
			Nation: c.Nation.Name, Address: c.Address, Phone: c.Phone,
			Comment: c.Comment,
		})
	}
	return SortQ10(rows)
}

// ListAllX runs Q7–Q10 over the managed lists.
func ListAllX(db *ManagedDB, p Params) *ResultX {
	return &ResultX{
		Q7:  ListQ7(db, p),
		Q8:  ListQ8(db, p),
		Q9:  ListQ9(db, p),
		Q10: ListQ10(db, p),
	}
}
