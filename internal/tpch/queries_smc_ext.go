package tpch

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/region"
	"repro/internal/types"
)

// Compiled "unsafe" Q7–Q10 over self-managed collections: the same
// generated-code idioms as queries_smc.go — per-block slot-directory
// scans, hoisted field handles, in-place decimal arithmetic on pointers
// into block memory, and reference joins through the open-coded deref
// fast path. These queries chain three to four dereferences per driving
// row, which is the §6 workload where direct pointers pay off.

// Q7 — volume shipping between two nations, grouped by direction and
// ship year.
func (q *SMCQueries) Q7(s *core.Session, p Params) []Q7Row {
	nation1 := []byte(p.Q7Nation1)
	nation2 := []byte(p.Q7Nation2)
	one := decimal.FromInt64(1)
	rev := make(map[int32]*decimal.Dec128, 4)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ship := dateAt(blk, i, q.lShip)
			if ship < q7DateLo || ship > q7DateHi {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			sn := objStr(snobj, q.nName)
			is1, is2 := bytes.Equal(sn, nation1), bytes.Equal(sn, nation2)
			if !is1 && !is2 {
				continue
			}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			cnobj, err := q.deref(s, &q.frCNation, cobj)
			if err != nil {
				continue
			}
			cn := objStr(cnobj, q.nName)
			if is1 && !bytes.Equal(cn, nation2) {
				continue
			}
			if is2 && !bytes.Equal(cn, nation1) {
				continue
			}
			k := q7Dir(is1, ship.Year())
			a := rev[k]
			if a == nil {
				a = &decimal.Dec128{}
				rev[k] = a
			}
			r := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
			decimal.AddAssign(a, &r)
		}
	}
	en.Close()
	s.Exit()

	rows := make([]Q7Row, 0, len(rev))
	for k, v := range rev {
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if k&1 == 1 {
			sn, cn = cn, sn
		}
		rows = append(rows, Q7Row{SuppNation: sn, CustNation: cn, Year: k >> 1, Revenue: *v})
	}
	SortQ7(rows)
	return rows
}

// Q8 — national market share: per order year, the fraction of volume
// supplied by one nation into one region for one part type.
func (q *SMCQueries) Q8(s *core.Session, p Params) []Q8Row {
	nation := []byte(p.Q8Nation)
	region := []byte(p.Q8Region)
	ptype := []byte(p.Q8Type)
	one := decimal.FromInt64(1)
	groups := make(map[int32]*q8Acc, 2)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			od := *(*types.Date)(oobj.Field(q.oDate))
			if od < q7DateLo || od > q7DateHi {
				continue
			}
			pobj, err := q.deref(s, &q.frLPart, l)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(pobj, q.pType), ptype) {
				continue
			}
			cobj, err := q.deref(s, &q.frOCust, oobj)
			if err != nil {
				continue
			}
			cnobj, err := q.deref(s, &q.frCNation, cobj)
			if err != nil {
				continue
			}
			crobj, err := q.deref(s, &q.frNRegion, cnobj)
			if err != nil {
				continue
			}
			if !bytes.Equal(objStr(crobj, q.rName), region) {
				continue
			}
			y := int32(od.Year())
			a := groups[y]
			if a == nil {
				a = &q8Acc{}
				groups[y] = a
			}
			vol := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
			decimal.AddAssign(&a.total, &vol)
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			if bytes.Equal(objStr(snobj, q.nName), nation) {
				decimal.AddAssign(&a.nation, &vol)
			}
		}
	}
	en.Close()
	s.Exit()
	return q8Finish(groups)
}

// packPSKey packs a (partkey, suppkey) pair into one 64-bit region-table
// key. Supplier keys stay below 2^24 for every realistic scale factor
// (SF 1600 would be needed to overflow); the pack asserts it.
func packPSKey(part, supp int64) int64 {
	if uint64(supp) >= 1<<24 {
		panic(fmt.Sprintf("tpch: supplier key %d overflows packed partsupp key", supp))
	}
	return part<<24 | supp
}

// Q9 — product-type profit: reference joins for part/supplier/order plus
// a value join against the PARTSUPP cost table, built by enumerating the
// partsupp collection's blocks into a region-backed hash table (§7's
// region intermediates).
func (q *SMCQueries) Q9(s *core.Session, p Params) []Q9Row {
	color := []byte(p.Q9Color)
	one := decimal.FromInt64(1)
	ar := q.arenas.Lease()
	defer q.arenas.Return(ar)

	s.Enter()
	// Build the (partkey, suppkey) -> supplycost table in the region.
	cost := region.NewTable[decimal.Dec128](ar, 4096)
	en := q.db.PartSupps.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			ps := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frPSPart, ps)
			if err != nil {
				continue
			}
			sobj, err := q.deref(s, &q.frPSSupp, ps)
			if err != nil {
				continue
			}
			k := packPSKey(
				*(*int64)(pobj.Field(q.pKey)),
				*(*int64)(sobj.Field(q.sKey)),
			)
			*cost.At(k) = *decAt(blk, i, q.psCost)
		}
	}
	en.Close()

	type gk struct {
		nation string
		year   int32
	}
	profit := make(map[gk]*decimal.Dec128)
	en2 := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			l := mem.Obj{Blk: blk, Slot: i}
			pobj, err := q.deref(s, &q.frLPart, l)
			if err != nil {
				continue
			}
			if !bytes.Contains(objStr(pobj, q.pName), color) {
				continue
			}
			sobj, err := q.deref(s, &q.frLSupp, l)
			if err != nil {
				continue
			}
			k := packPSKey(
				*(*int64)(pobj.Field(q.pKey)),
				*(*int64)(sobj.Field(q.sKey)),
			)
			c := cost.Get(k)
			if c == nil {
				continue
			}
			oobj, err := q.deref(s, &q.frLOrder, l)
			if err != nil {
				continue
			}
			snobj, err := q.deref(s, &q.frSNation, sobj)
			if err != nil {
				continue
			}
			amount := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
			amount = amount.Sub(c.Mul(*decAt(blk, i, q.lQty)))
			g := gk{
				nation: string(objStr(snobj, q.nName)),
				year:   int32((*(*types.Date)(oobj.Field(q.oDate))).Year()),
			}
			a := profit[g]
			if a == nil {
				a = &decimal.Dec128{}
				profit[g] = a
			}
			decimal.AddAssign(a, &amount)
		}
	}
	en2.Close()
	s.Exit()

	rows := make([]Q9Row, 0, len(profit))
	for k, v := range profit {
		rows = append(rows, Q9Row{Nation: k.nation, Year: k.year, SumProfit: *v})
	}
	SortQ9(rows)
	return rows
}

// Q10 — returned-item report: group returned lineitems of one quarter by
// customer. Revenue accumulators live in a leased region keyed by
// customer key (pointer-free, §7); the finishing pass joins the table
// back to the customer collection and materializes the output rows
// inside its critical section, as the paper's generated code
// materializes result objects before returning control (§4). The
// per-block kernel is shared with Q10Par (queries_smc_joins.go).
func (q *SMCQueries) Q10(s *core.Session, p Params) []Q10Row {
	ar := q.arenas.Lease()
	defer q.arenas.Return(ar)
	rev := region.NewPartitionedTable[decimal.Dec128](ar, 1, joinTableHint)
	lo, hi := p.Q10Date, p.Q10Date.AddMonths(3)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q10Block(s, blk, lo, hi, rev)
	}
	en.Close()
	s.Exit()
	return q.q10Finish(s, rev)
}

// AllX runs Q7–Q10.
func (q *SMCQueries) AllX(s *core.Session, p Params) *ResultX {
	return &ResultX{
		Q7:  q.Q7(s, p),
		Q8:  q.Q8(s, p),
		Q9:  q.Q9(s, p),
		Q10: q.Q10(s, p),
	}
}
