package tpch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/region"
)

// Compiled "unsafe" Q7–Q10 over self-managed collections: the same
// generated-code idioms as queries_smc.go — per-block slot-directory
// scans, hoisted field handles, in-place decimal arithmetic on pointers
// into block memory, and reference joins through the open-coded deref
// fast path. These queries chain three to four dereferences per driving
// row, which is the §6 workload where direct pointers pay off.

// Q7 — volume shipping between two nations, grouped by direction and
// ship year. The revenue accumulators live in a leased region keyed by
// the packed direction+year (pointer-free, §7). The per-block kernel is
// shared with Q7Par (queries_smc_joins_ext.go).
func (q *SMCQueries) Q7(s *core.Session, p Params) []Q7Row {
	a := q.arenas.Lease()
	defer q.arenas.Return(a)
	rev := region.NewPartitionedTable[decimal.Dec128](a, 1, extTableHint)
	nation1 := []byte(p.Q7Nation1)
	nation2 := []byte(p.Q7Nation2)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q7Block(s, blk, nation1, nation2, rev)
	}
	en.Close()
	s.Exit()

	rows := make([]Q7Row, 0, rev.Len())
	rev.Range(func(k int64, v *decimal.Dec128) bool {
		rows = append(rows, q7Row(p, k, *v))
		return true
	})
	SortQ7(rows)
	return rows
}

// Q8 — national market share: per order year, the fraction of volume
// supplied by one nation into one region for one part type. The per-year
// volume sums live in a leased region keyed by order year (§7). The
// per-block kernel is shared with Q8Par (queries_smc_joins_ext.go).
func (q *SMCQueries) Q8(s *core.Session, p Params) []Q8Row {
	a := q.arenas.Lease()
	defer q.arenas.Return(a)
	groups := region.NewPartitionedTable[q8Acc](a, 1, extTableHint)
	nation := []byte(p.Q8Nation)
	regionName := []byte(p.Q8Region)
	ptype := []byte(p.Q8Type)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q8Block(s, blk, nation, regionName, ptype, groups)
	}
	en.Close()
	s.Exit()

	rows := make([]Q8Row, 0, groups.Len())
	groups.Range(func(k int64, acc *q8Acc) bool {
		rows = append(rows, q8Row(k, acc))
		return true
	})
	SortQ8(rows)
	return rows
}

// packPSKey packs a (partkey, suppkey) pair into one 64-bit region-table
// key. Supplier keys stay below 2^24 for every realistic scale factor
// (SF 1600 would be needed to overflow); the pack asserts it.
func packPSKey(part, supp int64) int64 {
	if uint64(supp) >= 1<<24 {
		panic(fmt.Sprintf("tpch: supplier key %d overflows packed partsupp key", supp))
	}
	return part<<24 | supp
}

// Q9 — product-type profit: reference joins for part/supplier/order plus
// a value join against the PARTSUPP cost table, built by enumerating the
// partsupp collection's blocks into a region-backed hash table (§7's
// region intermediates). Both the cost table and the profit table —
// keyed by the packed (supplier nation, order year) — live in a leased
// region; nation names resolve in a finishing pass over the tiny nation
// collection. The per-block kernels are shared with Q9Par
// (queries_smc_joins_ext.go), whose first pipeline stage fans this very
// cost-table build out over workers.
func (q *SMCQueries) Q9(s *core.Session, p Params) []Q9Row {
	color := []byte(p.Q9Color)
	ar := q.arenas.Lease()
	defer q.arenas.Return(ar)
	cost := region.NewPartitionedTable[decimal.Dec128](ar, 1, q9CostHint)
	profit := region.NewPartitionedTable[decimal.Dec128](ar, 1, q9ProfitHint)

	s.Enter()
	en := q.db.PartSupps.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q9CostBlock(s, blk, cost)
	}
	en.Close()

	en2 := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en2.NextBlock()
		if !ok {
			break
		}
		q.q9Block(s, blk, color, cost, profit)
	}
	en2.Close()
	s.Exit()

	rows := make([]Q9Row, 0, profit.Len())
	if profit.Len() > 0 {
		names := q.nationNames(s)
		profit.Range(func(k int64, v *decimal.Dec128) bool {
			rows = append(rows, q9Row(names, k, *v))
			return true
		})
	}
	SortQ9(rows)
	return rows
}

// Q10 — returned-item report: group returned lineitems of one quarter by
// customer. Revenue accumulators live in a leased region keyed by
// customer key (pointer-free, §7); the finishing pass joins the table
// back to the customer collection and materializes the output rows
// inside its critical section, as the paper's generated code
// materializes result objects before returning control (§4). The
// per-block kernel is shared with Q10Par (queries_smc_joins.go).
func (q *SMCQueries) Q10(s *core.Session, p Params) []Q10Row {
	ar := q.arenas.Lease()
	defer q.arenas.Return(ar)
	rev := region.NewPartitionedTable[decimal.Dec128](ar, 1, joinTableHint)
	lo, hi := p.Q10Date, p.Q10Date.AddMonths(3)

	s.Enter()
	en := q.db.Lineitems.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		q.q10Block(s, blk, lo, hi, rev)
	}
	en.Close()
	s.Exit()
	return q.q10Finish(s, rev)
}

// AllX runs Q7–Q10.
func (q *SMCQueries) AllX(s *core.Session, p Params) *ResultX {
	return &ResultX{
		Q7:  q.Q7(s, p),
		Q8:  q.Q8(s, p),
		Q9:  q.Q9(s, p),
		Q10: q.Q10(s, p),
	}
}
