package tpch

import (
	"repro/internal/decimal"
	"repro/internal/managed"
	"repro/internal/types"
)

// Managed object graph: each record is an individually heap-allocated Go
// object; PK-FK relations are Go pointers, matching the C# reference
// semantics of the paper's managed baselines.
type (
	// MRegion is the managed REGION record.
	MRegion struct {
		Key     int64
		Name    string
		Comment string
	}
	// MNation is the managed NATION record.
	MNation struct {
		Key     int64
		Name    string
		Region  *MRegion
		Comment string
	}
	// MSupplier is the managed SUPPLIER record.
	MSupplier struct {
		Key     int64
		Name    string
		Address string
		Nation  *MNation
		Phone   string
		AcctBal decimal.Dec128
		Comment string
	}
	// MCustomer is the managed CUSTOMER record.
	MCustomer struct {
		Key        int64
		Name       string
		Address    string
		Nation     *MNation
		Phone      string
		AcctBal    decimal.Dec128
		MktSegment string
		Comment    string
	}
	// MPart is the managed PART record.
	MPart struct {
		Key         int64
		Name        string
		Mfgr        string
		Brand       string
		Type        string
		Size        int32
		Container   string
		RetailPrice decimal.Dec128
		Comment     string
	}
	// MPartSupp is the managed PARTSUPP record.
	MPartSupp struct {
		Part       *MPart
		Supplier   *MSupplier
		AvailQty   int32
		SupplyCost decimal.Dec128
		Comment    string
	}
	// MOrder is the managed ORDERS record.
	MOrder struct {
		Key           int64
		Customer      *MCustomer
		OrderStatus   int32
		TotalPrice    decimal.Dec128
		OrderDate     types.Date
		OrderPriority string
		Clerk         string
		ShipPriority  int32
		Comment       string
	}
	// MLineitem is the managed LINEITEM record.
	MLineitem struct {
		Order         *MOrder
		Part          *MPart
		Supplier      *MSupplier
		OrderKey      int64
		LineNumber    int32
		Quantity      decimal.Dec128
		ExtendedPrice decimal.Dec128
		Discount      decimal.Dec128
		Tax           decimal.Dec128
		ReturnFlag    int32
		LineStatus    int32
		ShipDate      types.Date
		CommitDate    types.Date
		ReceiptDate   types.Date
		ShipInstruct  string
		ShipMode      string
		Comment       string
	}
)

// ManagedDB holds the dataset as managed Lists (the List<T> baseline).
type ManagedDB struct {
	Regions   *managed.List[MRegion]
	Nations   *managed.List[MNation]
	Suppliers *managed.List[MSupplier]
	Customers *managed.List[MCustomer]
	Parts     *managed.List[MPart]
	PartSupps *managed.List[MPartSupp]
	Orders    *managed.List[MOrder]
	Lineitems *managed.List[MLineitem]
}

// LoadManaged materializes the dataset as a managed object graph.
func LoadManaged(d *Dataset) *ManagedDB {
	db := &ManagedDB{
		Regions:   managed.NewList[MRegion](len(d.Regions)),
		Nations:   managed.NewList[MNation](len(d.Nations)),
		Suppliers: managed.NewList[MSupplier](len(d.Suppliers)),
		Customers: managed.NewList[MCustomer](len(d.Customers)),
		Parts:     managed.NewList[MPart](len(d.Parts)),
		PartSupps: managed.NewList[MPartSupp](len(d.PartSupps)),
		Orders:    managed.NewList[MOrder](len(d.Orders)),
		Lineitems: managed.NewList[MLineitem](len(d.Lineitems)),
	}
	regionByKey := make(map[int64]*MRegion, len(d.Regions))
	for i := range d.Regions {
		r := &d.Regions[i]
		p := db.Regions.Add(&MRegion{Key: r.Key, Name: r.Name, Comment: r.Comment})
		regionByKey[r.Key] = p
	}
	nationByKey := make(map[int64]*MNation, len(d.Nations))
	for i := range d.Nations {
		n := &d.Nations[i]
		p := db.Nations.Add(&MNation{Key: n.Key, Name: n.Name, Region: regionByKey[n.RegionKey], Comment: n.Comment})
		nationByKey[n.Key] = p
	}
	suppByKey := make(map[int64]*MSupplier, len(d.Suppliers))
	for i := range d.Suppliers {
		s := &d.Suppliers[i]
		p := db.Suppliers.Add(&MSupplier{
			Key: s.Key, Name: s.Name, Address: s.Address,
			Nation: nationByKey[s.NationKey], Phone: s.Phone,
			AcctBal: s.AcctBal, Comment: s.Comment,
		})
		suppByKey[s.Key] = p
	}
	custByKey := make(map[int64]*MCustomer, len(d.Customers))
	for i := range d.Customers {
		c := &d.Customers[i]
		p := db.Customers.Add(&MCustomer{
			Key: c.Key, Name: c.Name, Address: c.Address,
			Nation: nationByKey[c.NationKey], Phone: c.Phone,
			AcctBal: c.AcctBal, MktSegment: c.MktSegment, Comment: c.Comment,
		})
		custByKey[c.Key] = p
	}
	partByKey := make(map[int64]*MPart, len(d.Parts))
	for i := range d.Parts {
		pt := &d.Parts[i]
		p := db.Parts.Add(&MPart{
			Key: pt.Key, Name: pt.Name, Mfgr: pt.Mfgr, Brand: pt.Brand,
			Type: pt.Type, Size: pt.Size, Container: pt.Container,
			RetailPrice: pt.RetailPrice, Comment: pt.Comment,
		})
		partByKey[pt.Key] = p
	}
	for i := range d.PartSupps {
		ps := &d.PartSupps[i]
		db.PartSupps.Add(&MPartSupp{
			Part: partByKey[ps.PartKey], Supplier: suppByKey[ps.SupplierKey],
			AvailQty: ps.AvailQty, SupplyCost: ps.SupplyCost, Comment: ps.Comment,
		})
	}
	orderByKey := make(map[int64]*MOrder, len(d.Orders))
	for i := range d.Orders {
		o := &d.Orders[i]
		p := db.Orders.Add(&MOrder{
			Key: o.Key, Customer: custByKey[o.CustomerKey],
			OrderStatus: o.OrderStatus, TotalPrice: o.TotalPrice,
			OrderDate: o.OrderDate, OrderPriority: o.OrderPriority,
			Clerk: o.Clerk, ShipPriority: o.ShipPriority, Comment: o.Comment,
		})
		orderByKey[o.Key] = p
	}
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		db.Lineitems.Add(&MLineitem{
			Order: orderByKey[l.OrderKey], Part: partByKey[l.PartKey],
			Supplier: suppByKey[l.SupplierKey],
			OrderKey: l.OrderKey, LineNumber: l.LineNumber,
			Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
			Discount: l.Discount, Tax: l.Tax,
			ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
			ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
			ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
		})
	}
	return db
}

// DictDB is the ConcurrentDictionary representation: the same managed
// object graph, but lineitems and orders are reached through dictionary
// enumeration (the thread-safe baseline of Figures 8 and 11).
type DictDB struct {
	*ManagedDB
	LineitemsByKey *managed.ConcurrentDictionary[int64, *MLineitem]
	OrdersByKey    *managed.ConcurrentDictionary[int64, *MOrder]
}

// LineKey builds the dictionary key for a lineitem.
func LineKey(orderKey int64, lineNumber int32) int64 {
	return orderKey<<3 | int64(lineNumber)
}

// LoadDict wraps a managed DB with dictionary-keyed lineitems/orders.
func LoadDict(db *ManagedDB) *DictDB {
	dd := &DictDB{
		ManagedDB:      db,
		LineitemsByKey: managed.NewIntDictionary[*MLineitem](),
		OrdersByKey:    managed.NewIntDictionary[*MOrder](),
	}
	for _, l := range db.Lineitems.Items() {
		p := l
		dd.LineitemsByKey.Store(LineKey(l.OrderKey, l.LineNumber), &p)
	}
	for _, o := range db.Orders.Items() {
		p := o
		dd.OrdersByKey.Store(o.Key, &p)
	}
	return dd
}
