package tpch

import (
	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/types"
)

// Tabular element types for the self-managed collections. References use
// core.Ref, so the PK-FK joins run by reference exactly as in the managed
// graph — but the objects live off-heap in the collections' private
// memory blocks.
type (
	// SRegion is the self-managed REGION record.
	SRegion struct {
		Key     int64
		Name    string
		Comment string
	}
	// SNation is the self-managed NATION record.
	SNation struct {
		Key     int64
		Name    string
		Region  core.Ref[SRegion]
		Comment string
	}
	// SSupplier is the self-managed SUPPLIER record.
	SSupplier struct {
		Key     int64
		Name    string
		Address string
		Nation  core.Ref[SNation]
		Phone   string
		AcctBal decimal.Dec128
		Comment string
	}
	// SCustomer is the self-managed CUSTOMER record.
	SCustomer struct {
		Key        int64
		Name       string
		Address    string
		Nation     core.Ref[SNation]
		Phone      string
		AcctBal    decimal.Dec128
		MktSegment string
		Comment    string
	}
	// SPart is the self-managed PART record.
	SPart struct {
		Key         int64
		Name        string
		Mfgr        string
		Brand       string
		Type        string
		Size        int32
		Container   string
		RetailPrice decimal.Dec128
		Comment     string
	}
	// SPartSupp is the self-managed PARTSUPP record.
	SPartSupp struct {
		Part       core.Ref[SPart]
		Supplier   core.Ref[SSupplier]
		AvailQty   int32
		SupplyCost decimal.Dec128
		Comment    string
	}
	// SOrder is the self-managed ORDERS record.
	SOrder struct {
		Key           int64
		Customer      core.Ref[SCustomer]
		OrderStatus   int32
		TotalPrice    decimal.Dec128
		OrderDate     types.Date
		OrderPriority string
		Clerk         string
		ShipPriority  int32
		Comment       string
	}
	// SLineitem is the self-managed LINEITEM record.
	SLineitem struct {
		Order         core.Ref[SOrder]
		Part          core.Ref[SPart]
		Supplier      core.Ref[SSupplier]
		OrderKey      int64
		LineNumber    int32
		Quantity      decimal.Dec128
		ExtendedPrice decimal.Dec128
		Discount      decimal.Dec128
		Tax           decimal.Dec128
		ReturnFlag    int32
		LineStatus    int32
		ShipDate      types.Date
		CommitDate    types.Date
		ReceiptDate   types.Date
		ShipInstruct  string
		ShipMode      string
		Comment       string
	}
)

// SMCDB holds the dataset in self-managed collections.
type SMCDB struct {
	RT        *core.Runtime
	Layout    core.Layout
	Regions   *core.Collection[SRegion]
	Nations   *core.Collection[SNation]
	Suppliers *core.Collection[SSupplier]
	Customers *core.Collection[SCustomer]
	Parts     *core.Collection[SPart]
	PartSupps *core.Collection[SPartSupp]
	Orders    *core.Collection[SOrder]
	Lineitems *core.Collection[SLineitem]
}

// NewSMCDB creates the eight collections (in dependency order) in the
// given layout.
func NewSMCDB(rt *core.Runtime, layout core.Layout) (*SMCDB, error) {
	db := &SMCDB{RT: rt, Layout: layout}
	var err error
	if db.Regions, err = core.NewCollection[SRegion](rt, "region", layout); err != nil {
		return nil, err
	}
	if db.Nations, err = core.NewCollection[SNation](rt, "nation", layout); err != nil {
		return nil, err
	}
	if db.Suppliers, err = core.NewCollection[SSupplier](rt, "supplier", layout); err != nil {
		return nil, err
	}
	if db.Customers, err = core.NewCollection[SCustomer](rt, "customer", layout); err != nil {
		return nil, err
	}
	if db.Parts, err = core.NewCollection[SPart](rt, "part", layout); err != nil {
		return nil, err
	}
	if db.PartSupps, err = core.NewCollection[SPartSupp](rt, "partsupp", layout); err != nil {
		return nil, err
	}
	if db.Orders, err = core.NewCollection[SOrder](rt, "orders", layout); err != nil {
		return nil, err
	}
	if db.Lineitems, err = core.NewCollection[SLineitem](rt, "lineitem", layout); err != nil {
		return nil, err
	}
	// Block synopses (min/max zone maps) for the columns the compiled
	// queries carry range predicates on: Q1/Q3/Q6 ship-date cuts, Q6's
	// discount/quantity intervals, Q10's return-flag equality and Q4's
	// order-date window. Registered at construction time, before any row
	// exists, so every block in the collections' lifetime carries bounds.
	if err = db.Lineitems.RegisterSynopses("ShipDate", "Discount", "Quantity", "ReturnFlag", "OrderKey"); err != nil {
		return nil, err
	}
	if err = db.Orders.RegisterSynopses("OrderDate", "Key"); err != nil {
		return nil, err
	}
	// OrderKey/Key synopses serve cross-edge semi-join pruning: Q3/Q4/Q10
	// distill an order-key set from their first pipeline stage and skip
	// lineitem (resp. orders) blocks whose key bounds miss it entirely.
	//
	// Cluster keys steer synopsis-aware compaction (inert unless the
	// runtime runs with core.PackCluster): maintenance re-sorts surviving
	// rows by the dominant scan dimension, so churned heaps recover tight,
	// near-disjoint per-block bounds instead of ever-widening ones.
	if err = db.Lineitems.RegisterClusterKey("ShipDate"); err != nil {
		return nil, err
	}
	if err = db.Orders.RegisterClusterKey("OrderDate"); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadSMC materializes the dataset into self-managed collections.
func LoadSMC(rt *core.Runtime, s *core.Session, d *Dataset, layout core.Layout) (*SMCDB, error) {
	db, err := NewSMCDB(rt, layout)
	if err != nil {
		return nil, err
	}
	regionByKey := make(map[int64]core.Ref[SRegion], len(d.Regions))
	for i := range d.Regions {
		r := &d.Regions[i]
		ref, err := db.Regions.Add(s, &SRegion{Key: r.Key, Name: r.Name, Comment: r.Comment})
		if err != nil {
			return nil, err
		}
		regionByKey[r.Key] = ref
	}
	nationByKey := make(map[int64]core.Ref[SNation], len(d.Nations))
	for i := range d.Nations {
		n := &d.Nations[i]
		ref, err := db.Nations.Add(s, &SNation{Key: n.Key, Name: n.Name, Region: regionByKey[n.RegionKey], Comment: n.Comment})
		if err != nil {
			return nil, err
		}
		nationByKey[n.Key] = ref
	}
	suppByKey := make(map[int64]core.Ref[SSupplier], len(d.Suppliers))
	for i := range d.Suppliers {
		sr := &d.Suppliers[i]
		ref, err := db.Suppliers.Add(s, &SSupplier{
			Key: sr.Key, Name: sr.Name, Address: sr.Address,
			Nation: nationByKey[sr.NationKey], Phone: sr.Phone,
			AcctBal: sr.AcctBal, Comment: sr.Comment,
		})
		if err != nil {
			return nil, err
		}
		suppByKey[sr.Key] = ref
	}
	custByKey := make(map[int64]core.Ref[SCustomer], len(d.Customers))
	for i := range d.Customers {
		c := &d.Customers[i]
		ref, err := db.Customers.Add(s, &SCustomer{
			Key: c.Key, Name: c.Name, Address: c.Address,
			Nation: nationByKey[c.NationKey], Phone: c.Phone,
			AcctBal: c.AcctBal, MktSegment: c.MktSegment, Comment: c.Comment,
		})
		if err != nil {
			return nil, err
		}
		custByKey[c.Key] = ref
	}
	partByKey := make(map[int64]core.Ref[SPart], len(d.Parts))
	for i := range d.Parts {
		pt := &d.Parts[i]
		ref, err := db.Parts.Add(s, &SPart{
			Key: pt.Key, Name: pt.Name, Mfgr: pt.Mfgr, Brand: pt.Brand,
			Type: pt.Type, Size: pt.Size, Container: pt.Container,
			RetailPrice: pt.RetailPrice, Comment: pt.Comment,
		})
		if err != nil {
			return nil, err
		}
		partByKey[pt.Key] = ref
	}
	for i := range d.PartSupps {
		ps := &d.PartSupps[i]
		if _, err := db.PartSupps.Add(s, &SPartSupp{
			Part: partByKey[ps.PartKey], Supplier: suppByKey[ps.SupplierKey],
			AvailQty: ps.AvailQty, SupplyCost: ps.SupplyCost, Comment: ps.Comment,
		}); err != nil {
			return nil, err
		}
	}
	orderByKey := make(map[int64]core.Ref[SOrder], len(d.Orders))
	for i := range d.Orders {
		o := &d.Orders[i]
		ref, err := db.Orders.Add(s, &SOrder{
			Key: o.Key, Customer: custByKey[o.CustomerKey],
			OrderStatus: o.OrderStatus, TotalPrice: o.TotalPrice,
			OrderDate: o.OrderDate, OrderPriority: o.OrderPriority,
			Clerk: o.Clerk, ShipPriority: o.ShipPriority, Comment: o.Comment,
		})
		if err != nil {
			return nil, err
		}
		orderByKey[o.Key] = ref
	}
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		if _, err := db.Lineitems.Add(s, &SLineitem{
			Order: orderByKey[l.OrderKey], Part: partByKey[l.PartKey],
			Supplier: suppByKey[l.SupplierKey],
			OrderKey: l.OrderKey, LineNumber: l.LineNumber,
			Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
			Discount: l.Discount, Tax: l.Tax,
			ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
			ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
			ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}
