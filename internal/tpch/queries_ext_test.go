package tpch

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// extSF is larger than testSF so the extended queries' more selective
// predicates (two specific nations for Q7, one exact part type for Q8)
// still produce non-empty results.
const extSF = 0.004

func extDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(extSF, 42)
}

// TestExtendedEnginesAgree extends the gold test to Q7–Q10: List
// (compiled), Dictionary, LINQ, SMC safe and SMC unsafe in all three
// layouts must produce identical results. The column store is checked in
// internal/colstore (import direction).
func TestExtendedEnginesAgree(t *testing.T) {
	d := extDataset(t)
	p := DefaultParams()

	mdb := LoadManaged(d)
	gold := ListAllX(mdb, p)

	if len(gold.Q7) == 0 || len(gold.Q8) == 0 || len(gold.Q9) == 0 || len(gold.Q10) == 0 {
		t.Fatalf("gold extended result suspiciously empty: %d/%d/%d/%d",
			len(gold.Q7), len(gold.Q8), len(gold.Q9), len(gold.Q10))
	}

	t.Run("dict", func(t *testing.T) {
		ddb := LoadDict(mdb)
		if diff := gold.Diff(DictAllX(ddb, p)); diff != "" {
			t.Fatal(diff)
		}
	})
	t.Run("linq", func(t *testing.T) {
		if diff := gold.Diff(LinqAllX(mdb, p)); diff != "" {
			t.Fatal(diff)
		}
	})
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run("smc-"+layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			if diff := gold.Diff(SMCSafeAllX(sdb, s, p)); diff != "" {
				t.Fatalf("safe: %s", diff)
			}
			q := NewSMCQueries(sdb)
			if diff := gold.Diff(q.AllX(s, p)); diff != "" {
				t.Fatalf("unsafe: %s", diff)
			}
		})
	}
}

// TestExtendedQueriesSurviveChurnAndCompaction mirrors the Q1–Q6 churn
// test for the extended set: delete a deterministic lineitem slice from
// both representations, compact online, and compare.
func TestExtendedQueriesSurviveChurnAndCompaction(t *testing.T) {
	d := extDataset(t)
	p := DefaultParams()

	mdb := LoadManaged(d)
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}

	drop := func(orderKey int64) bool { return orderKey%5 == 0 }
	mdb.Lineitems.RemoveWhere(func(l *MLineitem) bool { return drop(l.OrderKey) })

	var victims []core.Ref[SLineitem]
	sdb.Lineitems.ForEach(s, func(r core.Ref[SLineitem], l *SLineitem) bool {
		if drop(l.OrderKey) {
			victims = append(victims, r)
		}
		return true
	})
	for _, v := range victims {
		if err := sdb.Lineitems.Remove(s, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.CompactNow(); err != nil {
		t.Fatal(err)
	}

	gold := ListAllX(mdb, p)
	q := NewSMCQueries(sdb)
	if diff := gold.Diff(q.AllX(s, p)); diff != "" {
		t.Fatalf("after churn+compaction: %s", diff)
	}
}

// TestQ9PartSuppCoverage checks the generator invariant Q9 relies on:
// every lineitem's (partkey, suppkey) has a PARTSUPP row.
func TestQ9PartSuppCoverage(t *testing.T) {
	d := testDataset(t)
	have := make(map[psKey]bool, len(d.PartSupps))
	for _, ps := range d.PartSupps {
		have[psKey{ps.PartKey, ps.SupplierKey}] = true
	}
	for i, l := range d.Lineitems {
		if !have[psKey{l.PartKey, l.SupplierKey}] {
			t.Fatalf("lineitem %d: no partsupp row for (part %d, supp %d)",
				i, l.PartKey, l.SupplierKey)
		}
	}
}

// TestQ9ColorSelectivity checks that the part-name color vocabulary gives
// Q9's LIKE '%green%' filter a plausible hit rate (TPC-H's is ~1/17; ours
// uses a 20-color pool drawn twice).
func TestQ9ColorSelectivity(t *testing.T) {
	d := testDataset(t)
	hits := 0
	for _, pt := range d.Parts {
		if strings.Contains(pt.Name, "green") {
			hits++
		}
	}
	frac := float64(hits) / float64(len(d.Parts))
	if frac < 0.02 || frac > 0.3 {
		t.Fatalf("green-part fraction = %v, want a Q9-like selectivity", frac)
	}
}

// TestResultXDiffDetects exercises the extended diff on every field.
func TestResultXDiffDetects(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	mdb := LoadManaged(d)
	a := ListAllX(mdb, p)
	b := ListAllX(mdb, p)
	if diff := a.Diff(b); diff != "" {
		t.Fatalf("identical results diff: %s", diff)
	}
	if !a.Equal(b) {
		t.Fatal("Equal is false for identical results")
	}
	if len(b.Q7) > 0 {
		b.Q7[0].Revenue = b.Q7[0].Revenue.Add(b.Q7[0].Revenue)
		if a.Diff(b) == "" {
			t.Fatal("Diff missed a Q7 change")
		}
	}
	b2 := ListAllX(mdb, p)
	b2.Q10 = b2.Q10[:0]
	if a.Diff(b2) == "" && len(a.Q10) > 0 {
		t.Fatal("Diff missed a Q10 truncation")
	}
}
