package tpch

import (
	"bytes"
	"context"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/types"
)

// Parallel compiled extended-join queries (Q7, Q8, Q9) on the unified
// pipeline layer. Like Q3/Q5/Q10, the per-block kernels are shared
// verbatim with the serial drivers in queries_smc_ext.go, and the group
// state lives in region tables keyed by packed integers (direction+year,
// year, nation+year) rather than Go-heap maps, so it merges per
// partition in parallel and vanishes wholesale with the leased arenas.
//
// Q9 shows the pipeline's multi-stage shape: its partsupp cost-table
// build — a serial pre-pass before this layer existed — is now a first
// Table stage whose merged result feeds the main lineitem scan
// read-only.

// q7/q8/q9 group tables are tiny (directions×years, years,
// nations×years); q9's cost table is keyed by (partkey, suppkey) and
// sized like the partsupp collection.
const (
	extTableHint  = 16
	q9CostHint    = 4096
	q9ProfitHint  = 1024
	q9NationShift = 16
)

// q7Block scans one lineitem block into a Q7 revenue table keyed by
// q7Dir(direction, ship year): the compiled per-block volume-shipping
// kernel, shared by the serial and parallel drivers. s must be the
// session whose critical section covers blk.
func (q *SMCQueries) q7Block(s *core.Session, blk *mem.Block, nation1, nation2 []byte, rev *region.PartitionedTable[decimal.Dec128]) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		ship := dateAt(blk, i, q.lShip)
		if ship < q7DateLo || ship > q7DateHi {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		sobj, err := q.deref(s, &q.frLSupp, l)
		if err != nil {
			continue
		}
		snobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		sn := objStr(snobj, q.nName)
		is1, is2 := bytes.Equal(sn, nation1), bytes.Equal(sn, nation2)
		if !is1 && !is2 {
			continue
		}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		cobj, err := q.deref(s, &q.frOCust, oobj)
		if err != nil {
			continue
		}
		cnobj, err := q.deref(s, &q.frCNation, cobj)
		if err != nil {
			continue
		}
		cn := objStr(cnobj, q.nName)
		if is1 && !bytes.Equal(cn, nation2) {
			continue
		}
		if is2 && !bytes.Equal(cn, nation1) {
			continue
		}
		r := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		decimal.AddAssign(rev.At(int64(q7Dir(is1, ship.Year()))), &r)
	}
}

// q7Row materializes one merged Q7 group from its packed direction+year
// key, shared by the serial and partition-sharded finishing passes.
func q7Row(p Params, k int64, v decimal.Dec128) Q7Row {
	sn, cn := p.Q7Nation1, p.Q7Nation2
	if k&1 == 1 {
		sn, cn = cn, sn
	}
	return Q7Row{SuppNation: sn, CustNation: cn, Year: int32(k >> 1), Revenue: v}
}

// q8Block scans one lineitem block into a Q8 market-share table keyed by
// order year: the compiled per-block kernel, shared by the serial and
// parallel drivers.
func (q *SMCQueries) q8Block(s *core.Session, blk *mem.Block, nation, regionName, ptype []byte, groups *region.PartitionedTable[q8Acc]) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		od := *(*types.Date)(oobj.Field(q.oDate))
		if od < q7DateLo || od > q7DateHi {
			continue
		}
		pobj, err := q.deref(s, &q.frLPart, l)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(pobj, q.pType), ptype) {
			continue
		}
		cobj, err := q.deref(s, &q.frOCust, oobj)
		if err != nil {
			continue
		}
		cnobj, err := q.deref(s, &q.frCNation, cobj)
		if err != nil {
			continue
		}
		crobj, err := q.deref(s, &q.frNRegion, cnobj)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(crobj, q.rName), regionName) {
			continue
		}
		a := groups.At(int64(od.Year()))
		vol := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		decimal.AddAssign(&a.total, &vol)
		sobj, err := q.deref(s, &q.frLSupp, l)
		if err != nil {
			continue
		}
		snobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		if bytes.Equal(objStr(snobj, q.nName), nation) {
			decimal.AddAssign(&a.nation, &vol)
		}
	}
}

// mergeQ8Acc folds one worker's per-year volume sums into the merged
// state; decimal addition is exact, so merge order cannot change results.
func mergeQ8Acc(dst, src *q8Acc) {
	decimal.AddAssign(&dst.nation, &src.nation)
	decimal.AddAssign(&dst.total, &src.total)
}

// q8Row computes one year's market share from its merged volume sums.
func q8Row(k int64, a *q8Acc) Q8Row {
	share := decimal.Zero
	if !a.total.IsZero() {
		share = a.nation.Div(a.total)
	}
	return Q8Row{Year: int32(k), MktShare: share}
}

// q9CostBlock scans one partsupp block into the (partkey, suppkey) →
// supplycost table: the compiled per-block kernel of Q9's first stage,
// shared by the serial and parallel drivers.
func (q *SMCQueries) q9CostBlock(s *core.Session, blk *mem.Block, cost *region.PartitionedTable[decimal.Dec128]) {
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		ps := mem.Obj{Blk: blk, Slot: i}
		pobj, err := q.deref(s, &q.frPSPart, ps)
		if err != nil {
			continue
		}
		sobj, err := q.deref(s, &q.frPSSupp, ps)
		if err != nil {
			continue
		}
		k := packPSKey(
			*(*int64)(pobj.Field(q.pKey)),
			*(*int64)(sobj.Field(q.sKey)),
		)
		*cost.At(k) = *decAt(blk, i, q.psCost)
	}
}

// mergeCost folds one worker's cost entries into the merged table. A
// (partkey, suppkey) pair identifies at most one live partsupp row, so
// every key is written by at most one worker and assignment suffices
// (worker order still fixes the outcome if churn ever produces
// duplicates).
func mergeCost(dst, src *decimal.Dec128) { *dst = *src }

// packNationYear packs a Q9 group key (supplier nation key, order year)
// into one region-table key.
func packNationYear(nationKey int64, year int32) int64 {
	return nationKey<<q9NationShift | int64(uint16(year))
}

// q9Block scans one lineitem block into a Q9 profit table keyed by
// packNationYear, probing the (read-only) merged cost table from the
// first stage: the compiled per-block kernel, shared by the serial and
// parallel drivers. A nil cost table (empty partsupp) yields no rows.
func (q *SMCQueries) q9Block(s *core.Session, blk *mem.Block, color []byte, cost, profit *region.PartitionedTable[decimal.Dec128]) {
	if cost == nil {
		return
	}
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		pobj, err := q.deref(s, &q.frLPart, l)
		if err != nil {
			continue
		}
		if !bytes.Contains(objStr(pobj, q.pName), color) {
			continue
		}
		sobj, err := q.deref(s, &q.frLSupp, l)
		if err != nil {
			continue
		}
		k := packPSKey(
			*(*int64)(pobj.Field(q.pKey)),
			*(*int64)(sobj.Field(q.sKey)),
		)
		c := cost.Get(k)
		if c == nil {
			continue
		}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		snobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		amount := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		amount = amount.Sub(c.Mul(*decAt(blk, i, q.lQty)))
		g := packNationYear(
			*(*int64)(snobj.Field(q.nKey)),
			int32((*(*types.Date)(oobj.Field(q.oDate))).Year()),
		)
		decimal.AddAssign(profit.At(g), &amount)
	}
}

// nationNames resolves nation key → name by scanning the tiny nation
// collection in its own critical section — the dimension-resolution
// lookup Q9's finishing pass joins the packed group keys against. A
// nation removed in the gap after the scan simply resolves to the empty
// name (removed-object semantics, §2).
func (q *SMCQueries) nationNames(s *core.Session) map[int64]string {
	names := make(map[int64]string, 32)
	s.Enter()
	en := q.db.Nations.Enumerate(s)
	for {
		blk, ok := en.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			names[i64At(blk, i, q.nKey)] = string(strAt(blk, i, q.nName))
		}
	}
	en.Close()
	s.Exit()
	return names
}

// q9Row materializes one merged Q9 group from its packed key; names is
// read-only here, so partition-sharded emission races with nothing.
func q9Row(names map[int64]string, k int64, v decimal.Dec128) Q9Row {
	return Q9Row{
		Nation:    names[k>>q9NationShift],
		Year:      int32(uint16(k)),
		SumProfit: v,
	}
}

// Q7Par is Q7 fanned out over `workers` block-sharded scan workers on
// the pipeline layer, with partition-sharded row emission. Results are
// identical to Q7 on a quiesced collection. Like every Par driver it
// degrades to its serial counterpart when worker sessions are
// unavailable.
func (q *SMCQueries) Q7Par(s *core.Session, p Params, workers int) []Q7Row {
	rows, err := q.Q7ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q7(s, p)
	}
	return rows
}

// Q7ParCtx is Q7Par bound to a context: admission-gated, cancelable at
// block-claim granularity, never degrades to the serial driver.
func (q *SMCQueries) Q7ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q7Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	nation1, nation2 := []byte(p.Q7Nation1), []byte(p.Q7Nation2)
	merged, err := query.Table(pl, q.db.Lineitems, extTableHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[decimal.Dec128]) {
			q.q7Block(ws, blk, nation1, nation2, t)
		}, mergeDec)
	if err != nil {
		return nil, err
	}
	rows, err := query.PartitionRows(pl, merged, func(pt *region.Table[decimal.Dec128], out *[]Q7Row) {
		pt.Range(func(k int64, v *decimal.Dec128) bool {
			*out = append(*out, q7Row(p, k, *v))
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	SortQ7(rows)
	return rows, nil
}

// Q8Par is Q8 fanned out over `workers` block-sharded scan workers on
// the pipeline layer; shares compute from exact merged sums, so worker
// count cannot change them.
func (q *SMCQueries) Q8Par(s *core.Session, p Params, workers int) []Q8Row {
	rows, err := q.Q8ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q8(s, p)
	}
	return rows
}

// Q8ParCtx is Q8Par bound to a context (see Q7ParCtx for the contract).
func (q *SMCQueries) Q8ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q8Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	nation := []byte(p.Q8Nation)
	regionName := []byte(p.Q8Region)
	ptype := []byte(p.Q8Type)
	merged, err := query.Table(pl, q.db.Lineitems, extTableHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[q8Acc]) {
			q.q8Block(ws, blk, nation, regionName, ptype, t)
		}, mergeQ8Acc)
	if err != nil {
		return nil, err
	}
	rows, err := query.PartitionRows(pl, merged, func(pt *region.Table[q8Acc], out *[]Q8Row) {
		pt.Range(func(k int64, a *q8Acc) bool {
			*out = append(*out, q8Row(k, a))
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	SortQ8(rows)
	return rows, nil
}

// Q9Par is Q9 as a two-stage pipeline: the partsupp cost-table build —
// a serial pre-pass before this layer existed — fans out as a first
// Table stage, and its merged result feeds the main lineitem scan
// read-only. The finishing pass resolves nation names against the
// dimension collection and emits rows partition-sharded.
func (q *SMCQueries) Q9Par(s *core.Session, p Params, workers int) []Q9Row {
	rows, err := q.Q9ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q9(s, p)
	}
	return rows
}

// Q9ParCtx is Q9Par bound to a context (see Q7ParCtx for the contract).
func (q *SMCQueries) Q9ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q9Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	color := []byte(p.Q9Color)
	// The cost table keys every (part, supplier) pair — one entry per
	// partsupp row — so it takes the adaptive hint.
	cost, err := query.Table(pl, q.db.PartSupps, query.AdaptiveHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[decimal.Dec128]) {
			q.q9CostBlock(ws, blk, t)
		}, mergeCost)
	if err != nil {
		return nil, err
	}
	profit, err := query.Table(pl, q.db.Lineitems, q9ProfitHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[decimal.Dec128]) {
			q.q9Block(ws, blk, color, cost, t)
		}, mergeDec)
	if err != nil {
		return nil, err
	}
	rows := make([]Q9Row, 0)
	if profit != nil && profit.Len() > 0 {
		names := q.nationNames(s)
		rows, err = query.PartitionRows(pl, profit, func(pt *region.Table[decimal.Dec128], out *[]Q9Row) {
			pt.Range(func(k int64, v *decimal.Dec128) bool {
				*out = append(*out, q9Row(names, k, *v))
				return true
			})
		})
		if err != nil {
			return nil, err
		}
	}
	SortQ9(rows)
	return rows, nil
}
