package tpch

import (
	"strings"

	"repro/internal/decimal"
	"repro/internal/linq"
)

// LINQ-to-objects formulations of Q7–Q10: the same lazily-evaluated
// operator chains as queries_linq.go, extended to the join-heaviest
// queries of the set.

// LinqQ7 runs the volume-shipping query as Where→GroupBy→Select.
func LinqQ7(db *ManagedDB, p Params) []Q7Row {
	one := decimal.FromInt64(1)
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		if l.ShipDate < q7DateLo || l.ShipDate > q7DateHi {
			return false
		}
		sn := l.Supplier.Nation.Name
		cn := l.Order.Customer.Nation.Name
		return (sn == p.Q7Nation1 && cn == p.Q7Nation2) ||
			(sn == p.Q7Nation2 && cn == p.Q7Nation1)
	})
	grouped := linq.GroupBy(matching, func(l *MLineitem) int32 {
		return q7Dir(l.Supplier.Nation.Name == p.Q7Nation1, l.ShipDate.Year())
	})
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[int32, *MLineitem]) Q7Row {
		var rev decimal.Dec128
		for _, l := range g.Items {
			rev = rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		}
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if g.Key&1 == 1 {
			sn, cn = cn, sn
		}
		return Q7Row{SuppNation: sn, CustNation: cn, Year: g.Key >> 1, Revenue: rev}
	}))
	SortQ7(rows)
	return rows
}

// LinqQ8 runs the national-market-share query.
func LinqQ8(db *ManagedDB, p Params) []Q8Row {
	one := decimal.FromInt64(1)
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		o := l.Order
		return o.OrderDate >= q7DateLo && o.OrderDate <= q7DateHi &&
			l.Part.Type == p.Q8Type &&
			o.Customer.Nation.Region.Name == p.Q8Region
	})
	grouped := linq.GroupBy(matching, func(l *MLineitem) int32 {
		return int32(l.Order.OrderDate.Year())
	})
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[int32, *MLineitem]) Q8Row {
		var a q8Acc
		for _, l := range g.Items {
			vol := l.ExtendedPrice.Mul(one.Sub(l.Discount))
			a.total = a.total.Add(vol)
			if l.Supplier.Nation.Name == p.Q8Nation {
				a.nation = a.nation.Add(vol)
			}
		}
		share := decimal.Zero
		if !a.total.IsZero() {
			share = a.nation.Div(a.total)
		}
		return Q8Row{Year: g.Key, MktShare: share}
	}))
	SortQ8(rows)
	return rows
}

// LinqQ9 runs the product-type-profit query; the PARTSUPP cost table is
// folded up front with Aggregate, as the LINQ formulation would via
// ToDictionary.
func LinqQ9(db *ManagedDB, p Params) []Q9Row {
	cost := linq.Aggregate(linq.FromSlice(db.PartSupps.Items()),
		make(map[psKey]decimal.Dec128, db.PartSupps.Len()),
		func(m map[psKey]decimal.Dec128, ps *MPartSupp) map[psKey]decimal.Dec128 {
			m[psKey{ps.Part.Key, ps.Supplier.Key}] = ps.SupplyCost
			return m
		})
	one := decimal.FromInt64(1)
	type gk struct {
		nation string
		year   int32
	}
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		if !strings.Contains(l.Part.Name, p.Q9Color) {
			return false
		}
		_, ok := cost[psKey{l.Part.Key, l.Supplier.Key}]
		return ok
	})
	grouped := linq.GroupBy(matching, func(l *MLineitem) gk {
		return gk{nation: l.Supplier.Nation.Name, year: int32(l.Order.OrderDate.Year())}
	})
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[gk, *MLineitem]) Q9Row {
		var sum decimal.Dec128
		for _, l := range g.Items {
			c := cost[psKey{l.Part.Key, l.Supplier.Key}]
			sum = sum.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)).Sub(c.Mul(l.Quantity)))
		}
		return Q9Row{Nation: g.Key.nation, Year: g.Key.year, SumProfit: sum}
	}))
	SortQ9(rows)
	return rows
}

// LinqQ10 runs the returned-item report.
func LinqQ10(db *ManagedDB, p Params) []Q10Row {
	hi := p.Q10Date.AddMonths(3)
	one := decimal.FromInt64(1)
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		return l.ReturnFlag == 'R' &&
			l.Order.OrderDate >= p.Q10Date && l.Order.OrderDate < hi
	})
	grouped := linq.GroupBy(matching, func(l *MLineitem) *MCustomer {
		return l.Order.Customer
	})
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[*MCustomer, *MLineitem]) Q10Row {
		var rev decimal.Dec128
		for _, l := range g.Items {
			rev = rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		}
		c := g.Key
		return Q10Row{
			CustKey: c.Key, Name: c.Name, Revenue: rev, AcctBal: c.AcctBal,
			Nation: c.Nation.Name, Address: c.Address, Phone: c.Phone,
			Comment: c.Comment,
		}
	}))
	return SortQ10(rows)
}

// LinqAllX runs Q7–Q10 through the LINQ model.
func LinqAllX(db *ManagedDB, p Params) *ResultX {
	return &ResultX{
		Q7:  LinqQ7(db, p),
		Q8:  LinqQ8(db, p),
		Q9:  LinqQ9(db, p),
		Q10: LinqQ10(db, p),
	}
}
