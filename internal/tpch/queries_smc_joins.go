package tpch

import (
	"bytes"
	"context"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/region"
	"repro/internal/types"
)

// Parallel compiled join queries (Q3, Q5, Q10) over the unified
// query-pipeline layer. The §7 unsafe-query optimization — region-
// allocated intermediates discarded wholesale — is rethought for
// multi-core:
//
//   - every scan worker leases a private arena from the query object's
//     ArenaPool and builds a region.PartitionedTable of group state in
//     it, so the hot join loop writes zero shared mutable state;
//   - the per-block kernels (q3Block, q5Block, q10Block) are shared
//     verbatim between the serial queries and the *Par drivers, exactly
//     as Q1Par/Q6Par share q1Block/q6Block;
//   - after the scan the workers' tables merge per partition in
//     parallel (worker order within each partition keeps the fold
//     deterministic) and the finishing/dimension-resolution passes shard
//     too — over dimension blocks (query.Rows) or over the merged
//     table's partitions (query.PartitionRows).
//
// The scaffolding that drives all of this — arena leases, fan-out over
// mem.ScanParallel, parallel merge, parallel finish — is internal/query;
// the drivers here shrink to kernel + finish closures.

// joinTableHint sizes a worker's partitioned group table.
const joinTableHint = 1024

// mergeDec accumulates one worker's revenue partial into the merged
// state; decimal addition is exact, so merge order cannot change results.
func mergeDec(dst, src *decimal.Dec128) { decimal.AddAssign(dst, src) }

// mergeQ3Acc folds one worker's Q3 group partial into the merged state.
// date and sprio are functionally dependent on the group key (they come
// from the one order with that key), so first-wins is deterministic.
func mergeQ3Acc(dst, src *q3Acc) {
	if !dst.seen {
		dst.seen, dst.date, dst.sprio = src.seen, src.date, src.sprio
	}
	decimal.AddAssign(&dst.rev, &src.rev)
}

// q2Min is Q2's per-part minimum-cost state; pointer-free so it can
// live in the query region.
type q2Min struct {
	cost decimal.Dec128
	seen bool
}

// mergeQ2Min folds one worker's per-part minimum into the merged state:
// the smaller cost wins, so merge order cannot change results.
func mergeQ2Min(dst, src *q2Min) {
	if src.seen && (!dst.seen || src.cost.Less(dst.cost)) {
		*dst = *src
	}
}

// q2MinBlock scans one partsupp block into a per-part minimum-cost
// table: the compiled first-pass Q2 kernel (partsupp→part and
// partsupp→supplier→nation→region reference joins), mirroring the
// serial Q2's pass 1 filters exactly.
func (q *SMCQueries) q2MinBlock(s *core.Session, blk *mem.Block, size int32, typeSuffix, regionName []byte, minCost *region.PartitionedTable[q2Min]) {
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		ps := mem.Obj{Blk: blk, Slot: i}
		pobj, err := q.deref(s, &q.frPSPart, ps)
		if err != nil {
			continue
		}
		if *(*int32)(pobj.Field(q.pSize)) != size {
			continue
		}
		if !bytes.HasSuffix(objStr(pobj, q.pType), typeSuffix) {
			continue
		}
		sobj, err := q.deref(s, &q.frPSSupp, ps)
		if err != nil {
			continue
		}
		nobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		robj, err := q.deref(s, &q.frNRegion, nobj)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(robj, q.rName), regionName) {
			continue
		}
		cost := *decAt(blk, i, q.psCost)
		a := minCost.At(*(*int64)(pobj.Field(q.pKey)))
		if !a.seen || cost.Less(a.cost) {
			a.seen, a.cost = true, cost
		}
	}
}

// q2EmitBlock scans one partsupp block for suppliers achieving their
// part's minimum cost, probing the merged first-pass table read-only:
// the compiled second-pass Q2 kernel, mirroring the serial pass 2.
func (q *SMCQueries) q2EmitBlock(s *core.Session, blk *mem.Block, regionName []byte, minCost *region.PartitionedTable[q2Min], out *[]Q2Row) {
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		ps := mem.Obj{Blk: blk, Slot: i}
		pobj, err := q.deref(s, &q.frPSPart, ps)
		if err != nil {
			continue
		}
		pk := *(*int64)(pobj.Field(q.pKey))
		mc := minCost.Get(pk)
		if mc == nil || !mc.seen || *decAt(blk, i, q.psCost) != mc.cost {
			continue
		}
		sobj, err := q.deref(s, &q.frPSSupp, ps)
		if err != nil {
			continue
		}
		nobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		robj, err := q.deref(s, &q.frNRegion, nobj)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(robj, q.rName), regionName) {
			continue
		}
		*out = append(*out, Q2Row{
			AcctBal: *(*decimal.Dec128)(sobj.Field(q.sBal)),
			SName:   string(objStr(sobj, q.sName)),
			NName:   string(objStr(nobj, q.nName)),
			PartKey: pk,
			Mfgr:    string(objStr(pobj, q.pMfgr)),
			Address: string(objStr(sobj, q.sAddr)),
			Phone:   string(objStr(sobj, q.sPhone)),
			Comment: string(objStr(sobj, q.sCmnt)),
		})
	}
}

// Q2Par is Q2 over the query pipeline: a Table stage over partsupp
// builds the per-part minimum-cost state, then a second partsupp scan
// emits the suppliers achieving it, probing the merged table read-only.
// Results are identical to Q2 on a quiesced collection.
func (q *SMCQueries) Q2Par(s *core.Session, p Params, workers int) []Q2Row {
	rows, err := q.Q2ParCtx(context.Background(), s, p, workers)
	if err != nil {
		// Worker sessions were unavailable (slot exhaustion): degrade to
		// the serial kernel rather than failing the query.
		return q.Q2(s, p)
	}
	return rows
}

// Q2ParCtx is Q2Par bound to a context: admission-gated, cancelable at
// block-claim granularity, never degrades to the serial driver.
func (q *SMCQueries) Q2ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q2Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	typeSuffix := []byte(p.Q2Type)
	regionName := []byte(p.Q2Region)
	minCost, err := query.Table(pl, q.db.PartSupps, query.AdaptiveSparseHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[q2Min]) {
			q.q2MinBlock(ws, blk, p.Q2Size, typeSuffix, regionName, t)
		}, mergeQ2Min)
	if err != nil {
		return nil, err
	}
	if minCost == nil {
		return SortQ2(nil), nil
	}
	rows, err := query.Rows(pl, q.db.PartSupps, func(ws *core.Session, blk *mem.Block, out *[]Q2Row) {
		q.q2EmitBlock(ws, blk, regionName, minCost, out)
	})
	if err != nil {
		return nil, err
	}
	return SortQ2(rows), nil
}

// q3Block scans one lineitem block into a Q3 group table: the compiled
// per-block join kernel (lineitem→order→customer), shared by the serial
// and parallel drivers. s must be the session whose critical section
// covers blk.
func (q *SMCQueries) q3Block(s *core.Session, blk *mem.Block, date types.Date, segment []byte, groups *region.PartitionedTable[q3Acc]) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		if dateAt(blk, i, q.lShip) <= date {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		if *(*types.Date)(oobj.Field(q.oDate)) >= date {
			continue
		}
		cobj, err := q.deref(s, &q.frOCust, oobj)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(cobj, q.cSeg), segment) {
			continue
		}
		a := groups.At(*(*int64)(oobj.Field(q.oKey)))
		if !a.seen {
			a.seen = true
			a.date = *(*types.Date)(oobj.Field(q.oDate))
			a.sprio = *(*int32)(oobj.Field(q.oSprio))
		}
		rev := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		decimal.AddAssign(&a.rev, &rev)
	}
}

// q3Row materializes one merged Q3 group, shared by the serial and
// partition-sharded finishing passes.
func q3Row(k int64, a *q3Acc) Q3Row {
	return Q3Row{OrderKey: k, Revenue: a.rev, OrderDate: a.date, ShipPriority: a.sprio}
}

// q3Rows materializes the (merged) Q3 group state serially; nil means no
// group survived the filters.
func q3Rows(groups *region.PartitionedTable[q3Acc]) []Q3Row {
	var rows []Q3Row
	if groups != nil {
		rows = make([]Q3Row, 0, groups.Len())
		groups.Range(func(k int64, a *q3Acc) bool {
			rows = append(rows, q3Row(k, a))
			return true
		})
	} else {
		rows = make([]Q3Row, 0)
	}
	return SortQ3(rows)
}

// q5Block scans one lineitem block into a Q5 revenue table keyed by the
// supplier's nation key: the compiled per-block five-way join kernel,
// shared by the serial and parallel drivers.
func (q *SMCQueries) q5Block(s *core.Session, blk *mem.Block, lo, hi types.Date, regionName []byte, rev *region.PartitionedTable[decimal.Dec128]) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		od := *(*types.Date)(oobj.Field(q.oDate))
		if od < lo || od >= hi {
			continue
		}
		sobj, err := q.deref(s, &q.frLSupp, l)
		if err != nil {
			continue
		}
		snobj, err := q.deref(s, &q.frSNation, sobj)
		if err != nil {
			continue
		}
		robj, err := q.deref(s, &q.frNRegion, snobj)
		if err != nil {
			continue
		}
		if !bytes.Equal(objStr(robj, q.rName), regionName) {
			continue
		}
		cobj, err := q.deref(s, &q.frOCust, oobj)
		if err != nil {
			continue
		}
		cnobj, err := q.deref(s, &q.frCNation, cobj)
		if err != nil {
			continue
		}
		snKey := *(*int64)(snobj.Field(q.nKey))
		if *(*int64)(cnobj.Field(q.nKey)) != snKey {
			continue
		}
		r := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		decimal.AddAssign(rev.At(snKey), &r)
	}
}

// q5Finish resolves nation keys to names by scanning the (tiny) nation
// collection and emits the ordered Q5 rows. It runs in its own critical
// section, after the lineitem scan's sections have closed: on a quiesced
// collection results are exactly the pre-refactor rows, while under
// concurrent mutation a nation removed in the gap between the two
// sections is simply not emitted — the removed-object semantics (§2)
// the rest of the query surface already has, and the price of sharing
// this pass with the parallel drivers (whose scan pins are already
// released by the time the merge completes).
func (q *SMCQueries) q5Finish(s *core.Session, rev *region.PartitionedTable[decimal.Dec128]) []Q5Row {
	rows := make([]Q5Row, 0)
	if rev != nil && rev.Len() > 0 {
		s.Enter()
		en := q.db.Nations.Enumerate(s)
		for {
			blk, ok := en.NextBlock()
			if !ok {
				break
			}
			q.q5FinishBlock(blk, rev, &rows)
		}
		en.Close()
		s.Exit()
	}
	SortQ5(rows)
	return rows
}

// q5FinishBlock resolves one nation block against the merged revenue
// table: the per-block finishing kernel, shared by the serial pass and
// the block-sharded parallel one (the merged table is read-only here, so
// concurrent probes race with nothing).
func (q *SMCQueries) q5FinishBlock(blk *mem.Block, rev *region.PartitionedTable[decimal.Dec128], out *[]Q5Row) {
	for i := 0; i < blk.Capacity(); i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		if v := rev.Get(i64At(blk, i, q.nKey)); v != nil {
			*out = append(*out, Q5Row{Nation: string(strAt(blk, i, q.nName)), Revenue: *v})
		}
	}
}

// q10Block scans one lineitem block into a Q10 revenue table keyed by
// customer key: the compiled per-block join kernel for the returned-item
// report, shared by the serial and parallel drivers.
func (q *SMCQueries) q10Block(s *core.Session, blk *mem.Block, lo, hi types.Date, rev *region.PartitionedTable[decimal.Dec128]) {
	one := decimal.FromInt64(1)
	n := blk.Capacity()
	for i := 0; i < n; i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		if i32At(blk, i, q.lRet) != 'R' {
			continue
		}
		l := mem.Obj{Blk: blk, Slot: i}
		oobj, err := q.deref(s, &q.frLOrder, l)
		if err != nil {
			continue
		}
		od := *(*types.Date)(oobj.Field(q.oDate))
		if od < lo || od >= hi {
			continue
		}
		cobj, err := q.deref(s, &q.frOCust, oobj)
		if err != nil {
			continue
		}
		r := decAt(blk, i, q.lExt).Mul(one.Sub(*decAt(blk, i, q.lDisc)))
		decimal.AddAssign(rev.At(*(*int64)(cobj.Field(q.cKey))), &r)
	}
}

// q10Finish joins the revenue table back to the customer collection
// (scanning customers is how the group attributes are materialized — the
// group state itself stays pointer-free in the region) and emits the
// ordered rows. Like q5Finish it runs in its own critical section after
// the scan: a customer removed in the gap is not emitted (removed-object
// semantics, §2), where the old single-section serial Q10 would have
// emitted its captured fields — both are valid outcomes of a query
// racing a remove, and on quiesced data the rows are identical.
func (q *SMCQueries) q10Finish(s *core.Session, rev *region.PartitionedTable[decimal.Dec128]) []Q10Row {
	rows := make([]Q10Row, 0)
	if rev != nil && rev.Len() > 0 {
		s.Enter()
		en := q.db.Customers.Enumerate(s)
		for {
			blk, ok := en.NextBlock()
			if !ok {
				break
			}
			q.q10FinishBlock(s, blk, rev, &rows)
		}
		en.Close()
		s.Exit()
	}
	return SortQ10(rows)
}

// q10FinishBlock joins one customer block back to the merged revenue
// table and materializes its output rows: the per-block finishing
// kernel, shared by the serial pass and the block-sharded parallel one.
// s must be the session whose critical section covers blk (the nation
// dereference needs it).
func (q *SMCQueries) q10FinishBlock(s *core.Session, blk *mem.Block, rev *region.PartitionedTable[decimal.Dec128], out *[]Q10Row) {
	for i := 0; i < blk.Capacity(); i++ {
		if !blk.SlotIsValid(i) {
			continue
		}
		ck := i64At(blk, i, q.cKey)
		v := rev.Get(ck)
		if v == nil {
			continue
		}
		c := mem.Obj{Blk: blk, Slot: i}
		row := Q10Row{
			CustKey: ck,
			Name:    string(objStr(c, q.cName)),
			Revenue: *v,
			AcctBal: *(*decimal.Dec128)(c.Field(q.cBal)),
			Address: string(objStr(c, q.cAddr)),
			Phone:   string(objStr(c, q.cPhone)),
			Comment: string(objStr(c, q.cCmnt)),
		}
		if cnobj, err := q.deref(s, &q.frCNation, c); err == nil {
			row.Nation = string(objStr(cnobj, q.nName))
		}
		*out = append(*out, row)
	}
}

// Q3Par is Q3 fanned out over `workers` block-sharded scan workers on
// the pipeline layer: per-worker leased arenas, parallel per-partition
// merge, partition-sharded row emission. Results are identical to Q3 on
// a quiesced collection; under concurrent mutation both have the
// enumerator's bag semantics. On pipeline errors (worker-session
// exhaustion) the drivers degrade to their serial counterparts rather
// than failing the query.
func (q *SMCQueries) Q3Par(s *core.Session, p Params, workers int) []Q3Row {
	rows, err := q.Q3ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q3(s, p)
	}
	return rows
}

// Q3ParCtx is Q3Par bound to a context: the query is admission-gated by
// the runtime's memory budget and cancelable at block-claim granularity.
// Unlike Q3Par it never degrades to the serial driver — budget rejection,
// cancellation and worker faults surface as the error.
func (q *SMCQueries) Q3ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q3Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	segment := []byte(p.Q3Segment)
	// Cross-edge semi-join pruning: distill the keys of orders passing
	// the order-date cut (the join's build side) into a key-set predicate
	// over the lineitem blocks' OrderKey synopses. The orders scan itself
	// skips blocks via the OrderDate pushdown; lineitem blocks whose
	// order-key bounds miss every surviving key range are never claimed.
	// The kernel keeps its full residuals, so rows stay byte-identical to
	// the unpruned oracle.
	opred := q.db.Orders.Predicate().DateRange("OrderDate", dateMin, p.Q3Date-1)
	oks, err := query.Keys(pl, query.Where(q.db.Orders, opred),
		func(_ *core.Session, blk *mem.Block, out *[]int64) {
			n := blk.Capacity()
			for i := 0; i < n; i++ {
				if blk.SlotIsValid(i) && dateAt(blk, i, q.oDate) < p.Q3Date {
					*out = append(*out, i64At(blk, i, q.oKey))
				}
			}
		})
	if err != nil {
		return nil, err
	}
	// Pushdown: shipdate > date (the join-side order-date cut stays a
	// residual — it lives on a referenced object, not this scan's block —
	// but its distilled key set prunes at block granularity).
	pred := q.db.Lineitems.Predicate().
		DateRange("ShipDate", p.Q3Date+1, dateMax).
		InKeySet("OrderKey", oks)
	// Group state is per-order: cardinality scales with the input, so the
	// worker tables take an adaptive hint over the static one — the
	// sparse variant, since the segment/date predicate qualifies a small
	// fraction of lineitems.
	merged, err := query.Table(pl, query.Where(q.db.Lineitems, pred), query.AdaptiveSparseHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[q3Acc]) {
			q.q3Block(ws, blk, p.Q3Date, segment, t)
		}, mergeQ3Acc)
	if err != nil {
		return nil, err
	}
	rows, err := query.PartitionRows(pl, merged, func(pt *region.Table[q3Acc], out *[]Q3Row) {
		pt.Range(func(k int64, a *q3Acc) bool {
			*out = append(*out, q3Row(k, a))
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	return SortQ3(rows), nil
}

// Q4Par is Q4 fanned out over the pipeline: a Table stage builds the
// late-order semi-join key set from the lineitem scan (per-worker leased
// tables, no-op merge — presence is idempotent), then an Accum stage
// scans orders with the order-date window pushed down onto the orders
// collection's block synopses, probing the merged key set read-only and
// counting per priority. Results are identical to Q4 on a quiesced
// collection; pipeline errors degrade to the serial driver.
func (q *SMCQueries) Q4Par(s *core.Session, p Params, workers int) []Q4Row {
	rows, err := q.Q4ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q4(s, p)
	}
	return rows
}

// Q4ParCtx is Q4Par bound to a context (see Q3ParCtx for the contract).
func (q *SMCQueries) Q4ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q4Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	hi := p.Q4Date.AddMonths(3)
	// Late-key cardinality scales with the input behind a selective
	// window: sparse adaptive hint, as in Q3Par.
	late, err := query.Table(pl, q.db.Lineitems, query.AdaptiveSparseHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[struct{}]) {
			q.q4LateBlock(ws, blk, p.Q4Date, hi, t)
		},
		func(dst, src *struct{}) {})
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int64)
	if late != nil && late.Len() > 0 {
		// Cross-edge pruning: the late-lineitem key set is exactly the
		// semi-join's probe domain, so orders blocks whose Key bounds miss
		// every late-key range are never claimed — on top of the order-date
		// window pushdown.
		lateKeys := make([]int64, 0, late.Len())
		late.Range(func(k int64, _ *struct{}) bool {
			lateKeys = append(lateKeys, k)
			return true
		})
		// Pushdown: orderdate in [Q4Date, hi) onto the orders scan.
		pred := q.db.Orders.Predicate().
			DateRange("OrderDate", p.Q4Date, hi-1).
			InKeySet("Key", mem.NewKeySetPredicate(lateKeys))
		merged, err := query.Accum(pl, query.Where(q.db.Orders, pred),
			func(_ int, _ *core.Session, blk *mem.Block, acc *map[string]int64) {
				if *acc == nil {
					*acc = make(map[string]int64)
				}
				q.q4CountBlock(blk, p.Q4Date, hi, late, *acc)
			},
			func(dst, src *map[string]int64) {
				for pr, n := range *src {
					(*dst)[pr] += n
				}
			})
		if err != nil {
			return nil, err
		}
		if *merged != nil {
			counts = *merged
		}
	}
	return q4Rows(counts), nil
}

// Q5Par is Q5 fanned out over `workers` block-sharded scan workers; the
// nation-resolution finishing pass shards over the nation collection's
// blocks with the merged revenue table probed read-only.
func (q *SMCQueries) Q5Par(s *core.Session, p Params, workers int) []Q5Row {
	rows, err := q.Q5ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q5(s, p)
	}
	return rows
}

// Q5ParCtx is Q5Par bound to a context (see Q3ParCtx for the contract).
func (q *SMCQueries) Q5ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q5Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	lo, hi := p.Q5Date, p.Q5Date.AddYears(1)
	regionName := []byte(p.Q5Region)
	merged, err := query.Table(pl, q.db.Lineitems, joinTableHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[decimal.Dec128]) {
			q.q5Block(ws, blk, lo, hi, regionName, t)
		}, mergeDec)
	if err != nil {
		return nil, err
	}
	rows := make([]Q5Row, 0)
	if merged != nil && merged.Len() > 0 {
		rows, err = query.Rows(pl, q.db.Nations, func(_ *core.Session, blk *mem.Block, out *[]Q5Row) {
			q.q5FinishBlock(blk, merged, out)
		})
		if err != nil {
			return nil, err
		}
	}
	SortQ5(rows)
	return rows, nil
}

// Q10Par is Q10 fanned out over `workers` block-sharded scan workers;
// the customer-resolution finishing pass shards over the customer
// collection's blocks.
func (q *SMCQueries) Q10Par(s *core.Session, p Params, workers int) []Q10Row {
	rows, err := q.Q10ParCtx(context.Background(), s, p, workers)
	if err != nil {
		return q.Q10(s, p)
	}
	return rows
}

// Q10ParCtx is Q10Par bound to a context (see Q3ParCtx for the contract).
func (q *SMCQueries) Q10ParCtx(ctx context.Context, s *core.Session, p Params, workers int) ([]Q10Row, error) {
	pl, err := query.NewCtx(ctx, s, q.arenas, workers)
	if err != nil {
		return nil, err
	}
	defer pl.Close()
	lo, hi := p.Q10Date, p.Q10Date.AddMonths(3)
	// Cross-edge semi-join pruning, as in Q3ParCtx: the keys of orders
	// inside the one-quarter window prune lineitem blocks by their
	// OrderKey synopsis bounds.
	opred := q.db.Orders.Predicate().DateRange("OrderDate", lo, hi-1)
	oks, err := query.Keys(pl, query.Where(q.db.Orders, opred),
		func(_ *core.Session, blk *mem.Block, out *[]int64) {
			n := blk.Capacity()
			for i := 0; i < n; i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				if od := dateAt(blk, i, q.oDate); od >= lo && od < hi {
					*out = append(*out, i64At(blk, i, q.oKey))
				}
			}
		})
	if err != nil {
		return nil, err
	}
	// Pushdown: returnflag == 'R' as a one-point interval (the order-date
	// window is join-side, so it stays residual — but its distilled key
	// set prunes at block granularity).
	pred := q.db.Lineitems.Predicate().
		Int32Range("ReturnFlag", 'R', 'R').
		InKeySet("OrderKey", oks)
	// Per-customer group state behind a one-quarter window: sparse
	// adaptive hint, as in Q3Par.
	merged, err := query.Table(pl, query.Where(q.db.Lineitems, pred), query.AdaptiveSparseHint,
		func(ws *core.Session, blk *mem.Block, t *region.PartitionedTable[decimal.Dec128]) {
			q.q10Block(ws, blk, lo, hi, t)
		}, mergeDec)
	if err != nil {
		return nil, err
	}
	rows := make([]Q10Row, 0)
	if merged != nil && merged.Len() > 0 {
		rows, err = query.Rows(pl, q.db.Customers, func(ws *core.Session, blk *mem.Block, out *[]Q10Row) {
			q.q10FinishBlock(ws, blk, merged, out)
		})
		if err != nil {
			return nil, err
		}
	}
	return SortQ10(rows), nil
}
