package tpch

import (
	"fmt"
	"sort"

	"repro/internal/decimal"
	"repro/internal/types"
)

// Extended query set: TPC-H Q7–Q10, beyond the paper's Q1–Q6 evaluation.
// These are the join-heaviest queries of the benchmark's first half and
// stress exactly the mechanism §6 motivates — chains of reference
// dereferences through several collections — so they make good extension
// workloads for the direct-pointer and columnar layouts. Every engine
// (managed List, ConcurrentDictionary, LINQ, SMC safe/unsafe in all
// layouts, column store) implements them; results are compared exactly.

// Q7 date window: l_shipdate in [1995-01-01, 1996-12-31].
var (
	q7DateLo = types.MustDate("1995-01-01")
	q7DateHi = types.MustDate("1996-12-31")
)

// Q7Row is one row of the volume-shipping query: revenue shipped between
// the two nations per direction and year.
type Q7Row struct {
	SuppNation string
	CustNation string
	Year       int32
	Revenue    decimal.Dec128
}

// SortQ7 orders by (supp_nation, cust_nation, year).
func SortQ7(rows []Q7Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SuppNation != rows[j].SuppNation {
			return rows[i].SuppNation < rows[j].SuppNation
		}
		if rows[i].CustNation != rows[j].CustNation {
			return rows[i].CustNation < rows[j].CustNation
		}
		return rows[i].Year < rows[j].Year
	})
}

// Q8Row is one row of the national-market-share query.
type Q8Row struct {
	Year     int32
	MktShare decimal.Dec128
}

// SortQ8 orders by year.
func SortQ8(rows []Q8Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Year < rows[j].Year })
}

// q8Acc accumulates the per-year volume sums Q8 divides.
type q8Acc struct {
	nation, total decimal.Dec128
}

func q8Finish(groups map[int32]*q8Acc) []Q8Row {
	rows := make([]Q8Row, 0, len(groups))
	for y, a := range groups {
		share := decimal.Zero
		if !a.total.IsZero() {
			share = a.nation.Div(a.total)
		}
		rows = append(rows, Q8Row{Year: y, MktShare: share})
	}
	SortQ8(rows)
	return rows
}

// Q9Row is one row of the product-type-profit query.
type Q9Row struct {
	Nation    string
	Year      int32
	SumProfit decimal.Dec128
}

// SortQ9 orders by (nation asc, year desc).
func SortQ9(rows []Q9Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nation != rows[j].Nation {
			return rows[i].Nation < rows[j].Nation
		}
		return rows[i].Year > rows[j].Year
	})
}

// psKey identifies one PARTSUPP row; Q9's cost lookup joins on it.
type psKey struct{ Part, Supp int64 }

// Q10Row is one row of the returned-item report.
type Q10Row struct {
	CustKey int64
	Name    string
	Revenue decimal.Dec128
	AcctBal decimal.Dec128
	Nation  string
	Address string
	Phone   string
	Comment string
}

// SortQ10 orders by revenue descending (custkey ascending on ties) and
// caps at 20 rows.
func SortQ10(rows []Q10Row) []Q10Row {
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].Revenue.Cmp(rows[j].Revenue); c != 0 {
			return c > 0
		}
		return rows[i].CustKey < rows[j].CustKey
	})
	if len(rows) > 20 {
		rows = rows[:20]
	}
	return rows
}

// ResultX bundles the extended-query outputs for cross-engine comparison.
type ResultX struct {
	Q7  []Q7Row
	Q8  []Q8Row
	Q9  []Q9Row
	Q10 []Q10Row
}

// Equal compares two extended result sets exactly.
func (r *ResultX) Equal(o *ResultX) bool { return r.Diff(o) == "" }

// Diff describes the first difference between two extended result sets,
// or "".
func (r *ResultX) Diff(o *ResultX) string {
	if len(r.Q7) != len(o.Q7) {
		return fmt.Sprintf("Q7 rows: %d vs %d", len(r.Q7), len(o.Q7))
	}
	for i := range r.Q7 {
		if r.Q7[i] != o.Q7[i] {
			return fmt.Sprintf("Q7[%d]: %+v vs %+v", i, r.Q7[i], o.Q7[i])
		}
	}
	if len(r.Q8) != len(o.Q8) {
		return fmt.Sprintf("Q8 rows: %d vs %d", len(r.Q8), len(o.Q8))
	}
	for i := range r.Q8 {
		if r.Q8[i] != o.Q8[i] {
			return fmt.Sprintf("Q8[%d]: %+v vs %+v", i, r.Q8[i], o.Q8[i])
		}
	}
	if len(r.Q9) != len(o.Q9) {
		return fmt.Sprintf("Q9 rows: %d vs %d", len(r.Q9), len(o.Q9))
	}
	for i := range r.Q9 {
		if r.Q9[i] != o.Q9[i] {
			return fmt.Sprintf("Q9[%d]: %+v vs %+v", i, r.Q9[i], o.Q9[i])
		}
	}
	if len(r.Q10) != len(o.Q10) {
		return fmt.Sprintf("Q10 rows: %d vs %d", len(r.Q10), len(o.Q10))
	}
	for i := range r.Q10 {
		if r.Q10[i] != o.Q10[i] {
			return fmt.Sprintf("Q10[%d]: %+v vs %+v", i, r.Q10[i], o.Q10[i])
		}
	}
	return ""
}
