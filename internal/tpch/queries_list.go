package tpch

import (
	"repro/internal/decimal"
	"repro/internal/types"
)

// Compiled queries over the managed List representation. These loops are
// the Go equivalent of the paper's compiled C# query code over managed
// collections ([13]-style generated imperative code with reference-based
// joins): tight loops, no iterator dispatch, but every object access
// chases a heap pointer.

// ListQ1 runs the pricing summary report over the managed lists.
func ListQ1(db *ManagedDB, p Params) []Q1Row {
	cutoff := p.Q1Cutoff()
	groups := make(map[int64]*q1Acc, 8)
	one := decimal.FromInt64(1)
	for _, l := range db.Lineitems.Items() {
		if l.ShipDate > cutoff {
			continue
		}
		k := q1Key(l.ReturnFlag, l.LineStatus)
		a := groups[k]
		if a == nil {
			a = &q1Acc{}
			groups[k] = a
		}
		a.sumQty = a.sumQty.Add(l.Quantity)
		a.sumBase = a.sumBase.Add(l.ExtendedPrice)
		a.sumDisc = a.sumDisc.Add(l.Discount)
		disc := l.ExtendedPrice.Mul(one.Sub(l.Discount))
		a.sumCharge = a.sumCharge.Add(disc.Mul(one.Add(l.Tax)))
		a.count++
	}
	return q1Finish(groups)
}

// ListQ2 runs the minimum-cost supplier query.
func ListQ2(db *ManagedDB, p Params) []Q2Row {
	// For qualifying parts, find the minimum supply cost among suppliers
	// in the region, then emit the suppliers matching that minimum.
	minCost := make(map[int64]decimal.Dec128)
	for _, ps := range db.PartSupps.Items() {
		pt := ps.Part
		if pt.Size != p.Q2Size || !hasSuffix(pt.Type, p.Q2Type) {
			continue
		}
		if ps.Supplier.Nation.Region.Name != p.Q2Region {
			continue
		}
		cur, ok := minCost[pt.Key]
		if !ok || ps.SupplyCost.Less(cur) {
			minCost[pt.Key] = ps.SupplyCost
		}
	}
	var rows []Q2Row
	for _, ps := range db.PartSupps.Items() {
		pt := ps.Part
		mc, ok := minCost[pt.Key]
		if !ok || ps.SupplyCost != mc {
			continue
		}
		s := ps.Supplier
		if s.Nation.Region.Name != p.Q2Region {
			continue
		}
		if pt.Size != p.Q2Size || !hasSuffix(pt.Type, p.Q2Type) {
			continue
		}
		rows = append(rows, Q2Row{
			AcctBal: s.AcctBal, SName: s.Name, NName: s.Nation.Name,
			PartKey: pt.Key, Mfgr: pt.Mfgr, Address: s.Address,
			Phone: s.Phone, Comment: s.Comment,
		})
	}
	return SortQ2(rows)
}

// ListQ3 runs the shipping-priority query via reference joins.
func ListQ3(db *ManagedDB, p Params) []Q3Row {
	type acc struct {
		rev   decimal.Dec128
		date  types.Date
		sprio int32
	}
	groups := make(map[int64]*acc)
	one := decimal.FromInt64(1)
	for _, l := range db.Lineitems.Items() {
		if l.ShipDate <= p.Q3Date {
			continue
		}
		o := l.Order
		if o.OrderDate >= p.Q3Date || o.Customer.MktSegment != p.Q3Segment {
			continue
		}
		a := groups[o.Key]
		if a == nil {
			a = &acc{date: o.OrderDate, sprio: o.ShipPriority}
			groups[o.Key] = a
		}
		a.rev = a.rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
	}
	rows := make([]Q3Row, 0, len(groups))
	for k, a := range groups {
		rows = append(rows, Q3Row{OrderKey: k, Revenue: a.rev, OrderDate: a.date, ShipPriority: a.sprio})
	}
	return SortQ3(rows)
}

// ListQ4 runs the order-priority checking query (semi-join on orderkey).
func ListQ4(db *ManagedDB, p Params) []Q4Row {
	hi := p.Q4Date.AddMonths(3)
	late := make(map[int64]bool)
	for _, l := range db.Lineitems.Items() {
		if l.CommitDate < l.ReceiptDate {
			o := l.Order
			if o.OrderDate >= p.Q4Date && o.OrderDate < hi {
				late[o.Key] = true
			}
		}
	}
	counts := make(map[string]int64)
	for _, o := range db.Orders.Items() {
		if o.OrderDate >= p.Q4Date && o.OrderDate < hi && late[o.Key] {
			counts[o.OrderPriority]++
		}
	}
	rows := make([]Q4Row, 0, len(counts))
	for pr, n := range counts {
		rows = append(rows, Q4Row{Priority: pr, Count: n})
	}
	SortQ4(rows)
	return rows
}

// ListQ5 runs the local-supplier-volume query via reference joins.
func ListQ5(db *ManagedDB, p Params) []Q5Row {
	hi := p.Q5Date.AddYears(1)
	rev := make(map[string]decimal.Dec128)
	one := decimal.FromInt64(1)
	for _, l := range db.Lineitems.Items() {
		o := l.Order
		if o.OrderDate < p.Q5Date || o.OrderDate >= hi {
			continue
		}
		sn := l.Supplier.Nation
		if sn.Region.Name != p.Q5Region {
			continue
		}
		// Local supplier: customer and supplier share the nation.
		if o.Customer.Nation != sn {
			continue
		}
		rev[sn.Name] = rev[sn.Name].Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
	}
	rows := make([]Q5Row, 0, len(rev))
	for n, v := range rev {
		rows = append(rows, Q5Row{Nation: n, Revenue: v})
	}
	SortQ5(rows)
	return rows
}

// ListQ6 runs the forecasting-revenue-change query.
func ListQ6(db *ManagedDB, p Params) decimal.Dec128 {
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	var sum decimal.Dec128
	for _, l := range db.Lineitems.Items() {
		if l.ShipDate < p.Q6Date || l.ShipDate >= hi {
			continue
		}
		if l.Discount.Less(lo) || hiD.Less(l.Discount) {
			continue
		}
		if !l.Quantity.Less(p.Q6Quantity) {
			continue
		}
		sum = sum.Add(l.ExtendedPrice.Mul(l.Discount))
	}
	return sum
}

// ListAll runs Q1–Q6 over the managed lists.
func ListAll(db *ManagedDB, p Params) *Result {
	return &Result{
		Q1: ListQ1(db, p),
		Q2: ListQ2(db, p),
		Q3: ListQ3(db, p),
		Q4: ListQ4(db, p),
		Q5: ListQ5(db, p),
		Q6: ListQ6(db, p),
	}
}
