package tpch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// TestQ6WindowCancelMidScan: canceling the windowed Q6 scan — before it
// starts and at staggered points while its workers are fanned out —
// returns the cancellation promptly (block-claim granularity plus
// unwind) and leaks nothing: every pooled session returned, every epoch
// pin dropped, every leased arena back in the registered pool. Runs
// that finish before their cancellation must still produce exactly the
// uncancelled sum.
func TestQ6WindowCancelMidScan(t *testing.T) {
	d := testDataset(t)
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)
	lo, hi := types.Date(0), types.Date(1<<30) // full-range window
	want := q.Q6WindowPar(s, lo, hi, 1, false)

	// Pre-canceled: no block work, prompt typed return.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := q.Q6WindowParCtx(cctx, s, lo, hi, 4, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Q6WindowParCtx = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pre-canceled scan took %v to return", d)
	}

	// Staggered mid-scan cancellations: every run either completes with
	// the oracle sum or returns the cancellation, always promptly.
	const rounds = 50
	canceled, completed := 0, 0
	for i := 0; i < rounds; i++ {
		cctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(i%10) * 100 * time.Microsecond
		if i%10 == 9 {
			delay = 50 * time.Millisecond // long enough that the scan wins
		}
		timer := time.AfterFunc(delay, cancel)
		t0 := time.Now()
		sum, err := q.Q6WindowParCtx(cctx, s, lo, hi, 4, i%2 == 0)
		latency := time.Since(t0)
		timer.Stop()
		cancel()
		if latency > 5*time.Second {
			t.Fatalf("round %d: canceled scan took %v to return", i, latency)
		}
		switch {
		case err == nil:
			completed++
			if sum != want {
				t.Fatalf("round %d: completed scan = %v, want %v", i, sum, want)
			}
		case errors.Is(err, context.Canceled):
			canceled++
		default:
			t.Fatalf("round %d: unexpected error %v", i, err)
		}
	}
	t.Logf("%d canceled, %d completed of %d rounds", canceled, completed, rounds)
	if completed == 0 {
		t.Fatal("no round outran its cancellation; the 50ms rounds should complete")
	}

	// An uncancelled ParCtx run after the storm still matches the oracle.
	if sum, err := q.Q6WindowParCtx(context.Background(), s, lo, hi, 4, true); err != nil || sum != want {
		t.Fatalf("uncancelled Q6WindowParCtx after the storm = (%v, %v), want (%v, nil)", sum, err, want)
	}

	// Zero leaks across the whole storm, via the runtime snapshot.
	st := rt.StatsSnapshot()
	if st.SessionsLeased != st.SessionsReturned {
		t.Fatalf("session pool unbalanced: %d leased, %d returned", st.SessionsLeased, st.SessionsReturned)
	}
	if st.EpochPins != 0 {
		t.Fatalf("%d epoch pins leaked", st.EpochPins)
	}
	for _, ap := range st.ArenaPools {
		if ap.Leases != ap.Returns {
			t.Fatalf("arena pool %q unbalanced: %d leases, %d returns", ap.Name, ap.Leases, ap.Returns)
		}
	}
}
