package tpch

import (
	"repro/internal/decimal"
	"repro/internal/types"
)

// Compiled queries over the ConcurrentDictionary representation: the same
// reference joins, but the driving scans enumerate dictionary shards
// (hash order, extra locking, poor locality) — the paper's thread-safe
// managed baseline in Figure 11.

// DictQ1 runs Q1 driving from the lineitem dictionary.
func DictQ1(db *DictDB, p Params) []Q1Row {
	cutoff := p.Q1Cutoff()
	groups := make(map[int64]*q1Acc, 8)
	one := decimal.FromInt64(1)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.ShipDate > cutoff {
			return true
		}
		k := q1Key(l.ReturnFlag, l.LineStatus)
		a := groups[k]
		if a == nil {
			a = &q1Acc{}
			groups[k] = a
		}
		a.sumQty = a.sumQty.Add(l.Quantity)
		a.sumBase = a.sumBase.Add(l.ExtendedPrice)
		a.sumDisc = a.sumDisc.Add(l.Discount)
		disc := l.ExtendedPrice.Mul(one.Sub(l.Discount))
		a.sumCharge = a.sumCharge.Add(disc.Mul(one.Add(l.Tax)))
		a.count++
		return true
	})
	return q1Finish(groups)
}

// DictQ2 runs Q2; partsupp has no dictionary, so the scan reuses the
// managed list while supplier/nation/region hops stay reference-based.
func DictQ2(db *DictDB, p Params) []Q2Row { return ListQ2(db.ManagedDB, p) }

// DictQ3 runs Q3 driving from the lineitem dictionary.
func DictQ3(db *DictDB, p Params) []Q3Row {
	type acc struct {
		rev   decimal.Dec128
		date  types.Date
		sprio int32
	}
	groups := make(map[int64]*acc)
	one := decimal.FromInt64(1)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.ShipDate <= p.Q3Date {
			return true
		}
		o := l.Order
		if o.OrderDate >= p.Q3Date || o.Customer.MktSegment != p.Q3Segment {
			return true
		}
		a := groups[o.Key]
		if a == nil {
			a = &acc{date: o.OrderDate, sprio: o.ShipPriority}
			groups[o.Key] = a
		}
		a.rev = a.rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		return true
	})
	rows := make([]Q3Row, 0, len(groups))
	for k, a := range groups {
		rows = append(rows, Q3Row{OrderKey: k, Revenue: a.rev, OrderDate: a.date, ShipPriority: a.sprio})
	}
	return SortQ3(rows)
}

// DictQ4 runs Q4 driving both scans from dictionaries.
func DictQ4(db *DictDB, p Params) []Q4Row {
	hi := p.Q4Date.AddMonths(3)
	late := make(map[int64]bool)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.CommitDate < l.ReceiptDate {
			o := l.Order
			if o.OrderDate >= p.Q4Date && o.OrderDate < hi {
				late[o.Key] = true
			}
		}
		return true
	})
	counts := make(map[string]int64)
	db.OrdersByKey.Range(func(_ int64, op **MOrder) bool {
		o := *op
		if o.OrderDate >= p.Q4Date && o.OrderDate < hi && late[o.Key] {
			counts[o.OrderPriority]++
		}
		return true
	})
	rows := make([]Q4Row, 0, len(counts))
	for pr, n := range counts {
		rows = append(rows, Q4Row{Priority: pr, Count: n})
	}
	SortQ4(rows)
	return rows
}

// DictQ5 runs Q5 driving from the lineitem dictionary.
func DictQ5(db *DictDB, p Params) []Q5Row {
	hi := p.Q5Date.AddYears(1)
	rev := make(map[string]decimal.Dec128)
	one := decimal.FromInt64(1)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		o := l.Order
		if o.OrderDate < p.Q5Date || o.OrderDate >= hi {
			return true
		}
		sn := l.Supplier.Nation
		if sn.Region.Name != p.Q5Region {
			return true
		}
		if o.Customer.Nation != sn {
			return true
		}
		rev[sn.Name] = rev[sn.Name].Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		return true
	})
	rows := make([]Q5Row, 0, len(rev))
	for n, v := range rev {
		rows = append(rows, Q5Row{Nation: n, Revenue: v})
	}
	SortQ5(rows)
	return rows
}

// DictQ6 runs Q6 driving from the lineitem dictionary.
func DictQ6(db *DictDB, p Params) decimal.Dec128 {
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	var sum decimal.Dec128
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.ShipDate < p.Q6Date || l.ShipDate >= hi {
			return true
		}
		if l.Discount.Less(lo) || hiD.Less(l.Discount) {
			return true
		}
		if !l.Quantity.Less(p.Q6Quantity) {
			return true
		}
		sum = sum.Add(l.ExtendedPrice.Mul(l.Discount))
		return true
	})
	return sum
}

// DictAll runs Q1–Q6 over the dictionary representation.
func DictAll(db *DictDB, p Params) *Result {
	return &Result{
		Q1: DictQ1(db, p),
		Q2: DictQ2(db, p),
		Q3: DictQ3(db, p),
		Q4: DictQ4(db, p),
		Q5: DictQ5(db, p),
		Q6: DictQ6(db, p),
	}
}
