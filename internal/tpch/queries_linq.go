package tpch

import (
	"repro/internal/decimal"
	"repro/internal/linq"
	"repro/internal/types"
)

// LINQ-to-objects formulations of Q1–Q6 over the managed object graph:
// lazily-evaluated operator chains with per-element virtual dispatch.
// This is the query model whose inefficiencies (§1) motivated query
// compilation; §7 reports it 40–400% slower than the compiled queries.

func linqLineitems(db *ManagedDB) linq.Enumerable[*MLineitem] {
	return linq.FromSlice(db.Lineitems.Items())
}

// LinqQ1 runs the pricing summary report as a Where→GroupBy→Select chain.
func LinqQ1(db *ManagedDB, p Params) []Q1Row {
	cutoff := p.Q1Cutoff()
	one := decimal.FromInt64(1)
	filtered := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		return l.ShipDate <= cutoff
	})
	grouped := linq.GroupBy(filtered, func(l *MLineitem) int64 {
		return q1Key(l.ReturnFlag, l.LineStatus)
	})
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[int64, *MLineitem]) Q1Row {
		var a q1Acc
		for _, l := range g.Items {
			a.sumQty = a.sumQty.Add(l.Quantity)
			a.sumBase = a.sumBase.Add(l.ExtendedPrice)
			a.sumDisc = a.sumDisc.Add(l.Discount)
			disc := l.ExtendedPrice.Mul(one.Sub(l.Discount))
			a.sumCharge = a.sumCharge.Add(disc.Mul(one.Add(l.Tax)))
			a.count++
		}
		return Q1Row{
			ReturnFlag: int32(g.Key >> 8),
			LineStatus: int32(g.Key & 0xff),
			SumQty:     a.sumQty,
			SumBase:    a.sumBase,
			SumDisc:    a.sumDisc,
			SumCharge:  a.sumCharge,
			AvgQty:     a.sumQty.DivInt64(a.count),
			AvgPrice:   a.sumBase.DivInt64(a.count),
			AvgDisc:    a.sumDisc.DivInt64(a.count),
			Count:      a.count,
		}
	}))
	SortQ1(rows)
	return rows
}

// LinqQ2 runs the minimum-cost supplier query as nested operator chains.
func LinqQ2(db *ManagedDB, p Params) []Q2Row {
	qualifying := linq.Where(linq.FromSlice(db.PartSupps.Items()), func(ps *MPartSupp) bool {
		return ps.Part.Size == p.Q2Size &&
			hasSuffix(ps.Part.Type, p.Q2Type) &&
			ps.Supplier.Nation.Region.Name == p.Q2Region
	})
	mins := linq.Aggregate(qualifying, map[int64]decimal.Dec128{},
		func(m map[int64]decimal.Dec128, ps *MPartSupp) map[int64]decimal.Dec128 {
			cur, ok := m[ps.Part.Key]
			if !ok || ps.SupplyCost.Less(cur) {
				m[ps.Part.Key] = ps.SupplyCost
			}
			return m
		})
	winners := linq.Where(qualifying, func(ps *MPartSupp) bool {
		return ps.SupplyCost == mins[ps.Part.Key]
	})
	rows := linq.ToSlice(linq.Select(winners, func(ps *MPartSupp) Q2Row {
		s := ps.Supplier
		return Q2Row{
			AcctBal: s.AcctBal, SName: s.Name, NName: s.Nation.Name,
			PartKey: ps.Part.Key, Mfgr: ps.Part.Mfgr, Address: s.Address,
			Phone: s.Phone, Comment: s.Comment,
		}
	}))
	return SortQ2(rows)
}

// LinqQ3 runs the shipping-priority query.
func LinqQ3(db *ManagedDB, p Params) []Q3Row {
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		return l.ShipDate > p.Q3Date &&
			l.Order.OrderDate < p.Q3Date &&
			l.Order.Customer.MktSegment == p.Q3Segment
	})
	one := decimal.FromInt64(1)
	grouped := linq.GroupBy(matching, func(l *MLineitem) int64 { return l.Order.Key })
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[int64, *MLineitem]) Q3Row {
		var rev decimal.Dec128
		for _, l := range g.Items {
			rev = rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		}
		return Q3Row{
			OrderKey:     g.Key,
			Revenue:      rev,
			OrderDate:    g.Items[0].Order.OrderDate,
			ShipPriority: g.Items[0].Order.ShipPriority,
		}
	}))
	return SortQ3(rows)
}

// LinqQ4 runs the order-priority query with an Any-based semi-join.
func LinqQ4(db *ManagedDB, p Params) []Q4Row {
	hi := p.Q4Date.AddMonths(3)
	lateKeys := linq.Aggregate(
		linq.Where(linqLineitems(db), func(l *MLineitem) bool {
			return l.CommitDate < l.ReceiptDate &&
				l.Order.OrderDate >= p.Q4Date && l.Order.OrderDate < hi
		}),
		map[int64]bool{},
		func(m map[int64]bool, l *MLineitem) map[int64]bool {
			m[l.OrderKey] = true
			return m
		})
	matching := linq.Where(linq.FromSlice(db.Orders.Items()), func(o *MOrder) bool {
		return o.OrderDate >= p.Q4Date && o.OrderDate < hi && lateKeys[o.Key]
	})
	grouped := linq.GroupBy(matching, func(o *MOrder) string { return o.OrderPriority })
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[string, *MOrder]) Q4Row {
		return Q4Row{Priority: g.Key, Count: int64(len(g.Items))}
	}))
	SortQ4(rows)
	return rows
}

// LinqQ5 runs the local-supplier-volume query.
func LinqQ5(db *ManagedDB, p Params) []Q5Row {
	hi := p.Q5Date.AddYears(1)
	one := decimal.FromInt64(1)
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		o := l.Order
		return o.OrderDate >= p.Q5Date && o.OrderDate < hi &&
			l.Supplier.Nation.Region.Name == p.Q5Region &&
			o.Customer.Nation == l.Supplier.Nation
	})
	grouped := linq.GroupBy(matching, func(l *MLineitem) string { return l.Supplier.Nation.Name })
	rows := linq.ToSlice(linq.Select(grouped, func(g linq.Grouping[string, *MLineitem]) Q5Row {
		var rev decimal.Dec128
		for _, l := range g.Items {
			rev = rev.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		}
		return Q5Row{Nation: g.Key, Revenue: rev}
	}))
	SortQ5(rows)
	return rows
}

// LinqQ6 runs the forecasting-revenue-change query.
func LinqQ6(db *ManagedDB, p Params) decimal.Dec128 {
	hi := p.Q6Date.AddYears(1)
	lo := p.Q6Discount.Sub(decimal.MustParse("0.01"))
	hiD := p.Q6Discount.Add(decimal.MustParse("0.01"))
	matching := linq.Where(linqLineitems(db), func(l *MLineitem) bool {
		return l.ShipDate >= p.Q6Date && l.ShipDate < hi &&
			!l.Discount.Less(lo) && !hiD.Less(l.Discount) &&
			l.Quantity.Less(p.Q6Quantity)
	})
	return linq.Aggregate(matching, decimal.Zero, func(a decimal.Dec128, l *MLineitem) decimal.Dec128 {
		return a.Add(l.ExtendedPrice.Mul(l.Discount))
	})
}

// LinqAll runs Q1–Q6 through the LINQ model.
func LinqAll(db *ManagedDB, p Params) *Result {
	return &Result{
		Q1: LinqQ1(db, p),
		Q2: LinqQ2(db, p),
		Q3: LinqQ3(db, p),
		Q4: LinqQ4(db, p),
		Q5: LinqQ5(db, p),
		Q6: LinqQ6(db, p),
	}
}

var _ = types.Date(0)
