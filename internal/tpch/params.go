package tpch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/decimal"
	"repro/internal/types"
)

// Params carries the substitution parameters of queries Q1–Q6, defaulted
// to the TPC-H validation values.
type Params struct {
	// Q1: shipdate <= 1998-12-01 - Delta days.
	Q1Delta int
	// Q2: part size, type suffix, region name.
	Q2Size   int32
	Q2Type   string
	Q2Region string
	// Q3: market segment and date.
	Q3Segment string
	Q3Date    types.Date
	// Q4: quarter start.
	Q4Date types.Date
	// Q5: region and year start.
	Q5Region string
	Q5Date   types.Date
	// Q6: year start, discount center, quantity bound.
	Q6Date     types.Date
	Q6Discount decimal.Dec128
	Q6Quantity decimal.Dec128
	// Q7: the two trading nations.
	Q7Nation1 string
	Q7Nation2 string
	// Q8: the nation whose market share is measured, the customers'
	// region, and the exact part type.
	Q8Nation string
	Q8Region string
	Q8Type   string
	// Q9: part-name color fragment (p_name LIKE '%color%').
	Q9Color string
	// Q10: quarter start for the returned-item report.
	Q10Date types.Date
}

// DefaultParams returns the TPC-H validation parameters.
func DefaultParams() Params {
	return Params{
		Q1Delta:    90,
		Q2Size:     15,
		Q2Type:     "BRASS",
		Q2Region:   "EUROPE",
		Q3Segment:  "BUILDING",
		Q3Date:     types.MustDate("1995-03-15"),
		Q4Date:     types.MustDate("1993-07-01"),
		Q5Region:   "ASIA",
		Q5Date:     types.MustDate("1994-01-01"),
		Q6Date:     types.MustDate("1994-01-01"),
		Q6Discount: decimal.MustParse("0.06"),
		Q6Quantity: decimal.FromInt64(24),
		Q7Nation1:  "FRANCE",
		Q7Nation2:  "GERMANY",
		Q8Nation:   "BRAZIL",
		Q8Region:   "AMERICA",
		Q8Type:     "ECONOMY ANODIZED STEEL",
		Q9Color:    "green",
		Q10Date:    types.MustDate("1993-10-01"),
	}
}

// Q1Cutoff computes the Q1 shipdate cutoff.
func (p Params) Q1Cutoff() types.Date {
	return types.MustDate("1998-12-01").AddDays(-p.Q1Delta)
}

// Q1Row is one group of the pricing summary report.
type Q1Row struct {
	ReturnFlag int32
	LineStatus int32
	SumQty     decimal.Dec128
	SumBase    decimal.Dec128
	SumDisc    decimal.Dec128
	SumCharge  decimal.Dec128
	AvgQty     decimal.Dec128
	AvgPrice   decimal.Dec128
	AvgDisc    decimal.Dec128
	Count      int64
}

// SortQ1 orders rows by (returnflag, linestatus).
func SortQ1(rows []Q1Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ReturnFlag != rows[j].ReturnFlag {
			return rows[i].ReturnFlag < rows[j].ReturnFlag
		}
		return rows[i].LineStatus < rows[j].LineStatus
	})
}

// q1Key packs the two grouping chars.
func q1Key(rf, ls int32) int64 { return int64(rf)<<8 | int64(ls) }

// q1Acc is the shared accumulator for Q1 implementations.
type q1Acc struct {
	sumQty, sumBase, sumDisc, sumCharge decimal.Dec128
	count                               int64
}

func q1Finish(groups map[int64]*q1Acc) []Q1Row {
	rows := make([]Q1Row, 0, len(groups))
	for k, a := range groups {
		rows = append(rows, Q1Row{
			ReturnFlag: int32(k >> 8),
			LineStatus: int32(k & 0xff),
			SumQty:     a.sumQty,
			SumBase:    a.sumBase,
			SumDisc:    a.sumDisc,
			SumCharge:  a.sumCharge,
			AvgQty:     a.sumQty.DivInt64(a.count),
			AvgPrice:   a.sumBase.DivInt64(a.count),
			AvgDisc:    a.sumDisc.DivInt64(a.count),
			Count:      a.count,
		})
	}
	SortQ1(rows)
	return rows
}

// Q2Row is one row of the minimum-cost supplier query.
type Q2Row struct {
	AcctBal decimal.Dec128
	SName   string
	NName   string
	PartKey int64
	Mfgr    string
	Address string
	Phone   string
	Comment string
}

// SortQ2 orders by (acctbal desc, nation, supplier, partkey) and caps at
// 100 rows.
func SortQ2(rows []Q2Row) []Q2Row {
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].AcctBal.Cmp(rows[j].AcctBal); c != 0 {
			return c > 0
		}
		if rows[i].NName != rows[j].NName {
			return rows[i].NName < rows[j].NName
		}
		if rows[i].SName != rows[j].SName {
			return rows[i].SName < rows[j].SName
		}
		return rows[i].PartKey < rows[j].PartKey
	})
	if len(rows) > 100 {
		rows = rows[:100]
	}
	return rows
}

// Q3Row is one row of the shipping-priority query.
type Q3Row struct {
	OrderKey     int64
	Revenue      decimal.Dec128
	OrderDate    types.Date
	ShipPriority int32
}

// SortQ3 orders by (revenue desc, orderdate) and caps at 10 rows.
func SortQ3(rows []Q3Row) []Q3Row {
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].Revenue.Cmp(rows[j].Revenue); c != 0 {
			return c > 0
		}
		if rows[i].OrderDate != rows[j].OrderDate {
			return rows[i].OrderDate < rows[j].OrderDate
		}
		return rows[i].OrderKey < rows[j].OrderKey
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// Q4Row is one row of the order-priority checking query.
type Q4Row struct {
	Priority string
	Count    int64
}

// SortQ4 orders by priority.
func SortQ4(rows []Q4Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Priority < rows[j].Priority })
}

// Q5Row is one row of the local-supplier-volume query.
type Q5Row struct {
	Nation  string
	Revenue decimal.Dec128
}

// SortQ5 orders by revenue descending.
func SortQ5(rows []Q5Row) {
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].Revenue.Cmp(rows[j].Revenue); c != 0 {
			return c > 0
		}
		return rows[i].Nation < rows[j].Nation
	})
}

// Result bundles all six query outputs for cross-engine comparison.
type Result struct {
	Q1 []Q1Row
	Q2 []Q2Row
	Q3 []Q3Row
	Q4 []Q4Row
	Q5 []Q5Row
	Q6 decimal.Dec128
}

// Equal compares two result sets exactly.
func (r *Result) Equal(o *Result) bool { return r.Diff(o) == "" }

// Diff describes the first difference between two result sets, or "".
func (r *Result) Diff(o *Result) string {
	if len(r.Q1) != len(o.Q1) {
		return fmt.Sprintf("Q1 rows: %d vs %d", len(r.Q1), len(o.Q1))
	}
	for i := range r.Q1 {
		if r.Q1[i] != o.Q1[i] {
			return fmt.Sprintf("Q1[%d]: %+v vs %+v", i, r.Q1[i], o.Q1[i])
		}
	}
	if len(r.Q2) != len(o.Q2) {
		return fmt.Sprintf("Q2 rows: %d vs %d", len(r.Q2), len(o.Q2))
	}
	for i := range r.Q2 {
		if r.Q2[i] != o.Q2[i] {
			return fmt.Sprintf("Q2[%d]: %+v vs %+v", i, r.Q2[i], o.Q2[i])
		}
	}
	if len(r.Q3) != len(o.Q3) {
		return fmt.Sprintf("Q3 rows: %d vs %d", len(r.Q3), len(o.Q3))
	}
	for i := range r.Q3 {
		if r.Q3[i] != o.Q3[i] {
			return fmt.Sprintf("Q3[%d]: %+v vs %+v", i, r.Q3[i], o.Q3[i])
		}
	}
	if len(r.Q4) != len(o.Q4) {
		return fmt.Sprintf("Q4 rows: %d vs %d", len(r.Q4), len(o.Q4))
	}
	for i := range r.Q4 {
		if r.Q4[i] != o.Q4[i] {
			return fmt.Sprintf("Q4[%d]: %+v vs %+v", i, r.Q4[i], o.Q4[i])
		}
	}
	if len(r.Q5) != len(o.Q5) {
		return fmt.Sprintf("Q5 rows: %d vs %d", len(r.Q5), len(o.Q5))
	}
	for i := range r.Q5 {
		if r.Q5[i] != o.Q5[i] {
			return fmt.Sprintf("Q5[%d]: %+v vs %+v", i, r.Q5[i], o.Q5[i])
		}
	}
	if r.Q6 != o.Q6 {
		return fmt.Sprintf("Q6: %v vs %v", r.Q6, o.Q6)
	}
	return ""
}

// hasSuffix reports whether s ends with suffix (Q2's "type like %BRASS").
func hasSuffix(s, suffix string) bool { return strings.HasSuffix(s, suffix) }
